package vadalog

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"strings"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/rewrite"
)

// ErrNotRun is returned by Session.Result when the session has not been
// run yet: there is no reasoning result to report.
var ErrNotRun = errors.New("vadalog: session has not been run")

// Reasoner is an immutable compiled reasoning program: wardedness
// analysis, harmful-join rewriting, rule compilation and plan
// construction are all performed exactly once, in Compile. A Reasoner is
// safe for concurrent use by any number of goroutines — a typical service
// compiles its programs at startup and serves every request through
// Query, NewSession or Stream, each of which spins up cheap per-request
// runtime state (database, interner, termination strategy, buffers).
type Reasoner struct {
	opts  Options
	prog  *ast.Program
	plc   *pipeline.Compiled
	chc   *chase.Compiled
	binds []boundIO // @bind/@qbind annotations resolved against the driver registry
	diags []Diagnostic
}

// Compile compiles prog into a shareable Reasoner. opts == nil selects
// the defaults (pipeline engine, full termination strategy, default
// rewriting).
func Compile(prog *Program, opts *Options) (*Reasoner, error) {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	r := &Reasoner{opts: o, prog: prog}
	if o.Lint || o.Strict {
		// Lint is read-only: it observes the program as written, before
		// rewriting, so diagnostics point at the author's source.
		r.diags = Lint(prog, "")
		if o.Strict {
			var bad []string
			for _, d := range r.diags {
				if d.Severity >= SeverityWarning {
					bad = append(bad, d.String())
				}
			}
			if len(bad) > 0 {
				return nil, fmt.Errorf("vadalog: strict lint failed:\n%s", strings.Join(bad, "\n"))
			}
		}
	}
	// Bindings are part of the compiled artifact: unknown drivers,
	// malformed @qbind queries and arity-mismatched @mapping projections
	// are compile errors, not run errors.
	binds, err := resolveBindings(prog, o.Drivers)
	if err != nil {
		return nil, err
	}
	r.binds = binds
	var rw *rewrite.Options
	if o.DisableRewriting {
		rw = &rewrite.Options{}
	}
	newPolicy, disableSummary := policyFactory(o.Policy)
	switch o.Engine {
	case EnginePipeline:
		plc, err := pipeline.Compile(prog, pipeline.Options{
			Rewrite:             rw,
			MaxDerivations:      o.MaxDerivations,
			BufferCapacity:      o.BufferCapacity,
			RequireWarded:       o.RequireWarded,
			NewPolicy:           newPolicy,
			DisableSummary:      disableSummary,
			DisableDynamicIndex: o.DisableDynamicIndex,
			DisablePlanner:      o.DisablePlanner,
			Shards:              o.Shards,
			PhaseTiming:         o.PhaseTiming,
		})
		if err != nil {
			return nil, err
		}
		r.plc = plc
	case EngineChase:
		chc, err := chase.Compile(prog, chase.Options{
			Rewrite:             rw,
			MaxDerivations:      o.MaxDerivations,
			RequireWarded:       o.RequireWarded,
			NewPolicy:           newPolicy,
			DisableSummary:      disableSummary,
			DisableDynamicIndex: o.DisableDynamicIndex,
			DisablePlanner:      o.DisablePlanner,
			Parallelism:         o.Parallelism,
			Shards:              o.Shards,
		})
		if err != nil {
			return nil, err
		}
		r.chc = chc
	default:
		return nil, fmt.Errorf("vadalog: unknown engine %d", o.Engine)
	}
	return r, nil
}

// MustCompile compiles prog with Compile and panics on error.
func MustCompile(prog *Program, opts *Options) *Reasoner {
	r, err := Compile(prog, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// NewSession spins up fresh per-request runtime state over the shared
// compiled program. Sessions are cheap (no analysis, rewriting or rule
// compilation happens); each is for use by a single goroutine.
func (r *Reasoner) NewSession() *Session {
	s := &Session{opts: r.opts, prog: r.prog, binds: r.binds}
	if r.plc != nil {
		s.pl = r.plc.NewSession()
	} else {
		s.ch = r.chc.NewEngine()
	}
	return s
}

// Query runs the compiled program over facts in a fresh single-use
// session and returns the materialized result. It is safe to call
// concurrently on a shared Reasoner — with one filesystem caveat: a
// program with @bind'ed *output* predicates writes its bound CSV targets
// on every query, so concurrent queries of such a program race on those
// files. Cancelling ctx aborts the reasoning fixpoint promptly and
// returns ctx's error.
func (r *Reasoner) Query(ctx context.Context, facts []Fact) (*Result, error) {
	s := r.NewSession()
	s.Load(facts...)
	if err := s.RunContext(ctx); err != nil {
		return nil, err
	}
	return s.Result()
}

// Stream runs the compiled program over facts in a fresh single-use
// session and yields the facts of pred lazily as they are derived (the
// volcano next() of the paper, surfaced as a Go 1.23+ range-over-func
// iterator). The sequence yields (fact, nil) pairs until exhaustion; a
// reasoning failure or context cancellation yields one final
// (zero fact, err) pair. It is safe to call concurrently on a shared
// Reasoner.
//
// Monotonic aggregates (msum, mprod, mmin, mmax, mcount, munion) stream
// improving values only: each fact yielded for an aggregate group carries
// the group's best value at pull time, never a superseded one, and
// successive yields for a group only ever improve. Intermediates are
// transient — the engines replace them in place as the aggregate improves
// — so a yielded value may be superseded by the time the fixpoint
// completes; only the final database (Query, Session.Output) is limited
// to exactly one fact per group, the aggregate's limit.
func (r *Reasoner) Stream(ctx context.Context, facts []Fact, pred string) iter.Seq2[Fact, error] {
	return func(yield func(Fact, error) bool) {
		s := r.NewSession()
		// The session is internal and unreachable once iteration ends, so
		// whatever cut it short — an early break, cancellation mid-load —
		// its open input cursor must be released here or it leaks.
		defer s.Close()
		s.Load(facts...)
		for f, err := range s.Facts(ctx, pred) {
			if !yield(f, err) || err != nil {
				return
			}
		}
	}
}

// Plan renders the reasoning access plan compiled into the Reasoner
// (pipeline engine only).
func (r *Reasoner) Plan() (string, error) {
	if r.plc == nil {
		return "", fmt.Errorf("vadalog: access plans are a pipeline-engine artifact")
	}
	return r.plc.Plan(), nil
}

// Explain renders the access plan annotated with the join orders and
// estimates the cost-based planner chooses. A Reasoner has no run-time
// statistics, so the estimates reflect an empty database (every relation
// size 0 — the orders the first fixpoint round starts from); for
// estimates grounded in a run's real statistics, run a Session and call
// its Explain.
func (r *Reasoner) Explain() string { return r.NewSession().Explain() }

// Program returns the program the Reasoner was compiled from.
func (r *Reasoner) Program() *Program { return r.prog }

// Diagnostics returns the static-analysis findings collected at compile
// time, sorted by source position. It is nil unless the Reasoner was
// compiled with Options.Lint (or Options.Strict) set.
func (r *Reasoner) Diagnostics() []Diagnostic { return r.diags }

// Result is the materialized outcome of one reasoning run. Outputs are
// read through it; a Result only exists for sessions that actually ran,
// which makes the "read before run" mistake unrepresentable (cf.
// ErrNotRun).
type Result struct {
	prog        *ast.Program
	output      func(pred string) []Fact
	derivations int
	strategy    core.Policy
}

// Output returns the facts of pred with @post directives applied.
func (res *Result) Output(pred string) []Fact { return res.output(pred) }

// All returns the outputs of every @output predicate (every IDB
// predicate when none are declared), keyed by predicate.
func (res *Result) All() map[string][]Fact {
	preds := res.prog.Outputs
	if len(preds) == 0 {
		preds = res.prog.IDBPreds()
	}
	out := make(map[string][]Fact, len(preds))
	for pred := range preds {
		out[pred] = res.output(pred)
	}
	return out
}

// Derivations reports the number of admitted facts (EDB included).
func (res *Result) Derivations() int { return res.derivations }

// StrategyStats returns the termination-strategy counters when the full
// strategy is in use.
func (res *Result) StrategyStats() (core.Stats, bool) {
	if st, ok := res.strategy.(*core.Strategy); ok {
		return st.Stats(), true
	}
	return core.Stats{}, false
}
