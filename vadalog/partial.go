package vadalog

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/source"
)

// PanicError is a crash recovered on an engine's evaluation path and
// converted into a positioned, typed error: which engine crashed, the
// rule on the stack, the panic value and the goroutine stack. By the
// time one surfaces the engine has rolled back to a consistent boundary
// (the chase requeues the delta batch, the pipeline rewinds the crashed
// firing's cursor), so running the session again resumes the work.
type PanicError = core.PanicError

// IsTransient reports whether err is (or wraps) a transient source I/O
// error — the class Session retries automatically (see RetryPolicy). An
// error that is still transient after the retries were exhausted
// surfaces to the caller with this predicate intact.
func IsTransient(err error) bool { return source.IsTransient(err) }

// TransientError marks a source I/O failure as retryable: the built-in
// drivers classify network timeouts, interrupted reads and the like into
// it, and a custom Driver wraps its own retryable failures the same way
// (&TransientError{Err: err}) to opt them into the Session retry layer.
// IsTransient sees through any further wrapping.
type TransientError = source.Transient

// RetryPolicy tunes how a Session retries transient source I/O failures
// (see IsTransient) while staging @bind'ed inputs. Retries happen at the
// cursor seam: an interrupted chunk pull consumed nothing, so a retry
// resumes exactly where the failure struck and re-reads no rows.
type RetryPolicy struct {
	// MaxAttempts bounds tries per operation (first try included).
	// 0 selects the default, 4; 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5ms);
	// each further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 500ms).
	MaxDelay time.Duration
}

// defaultRetry is the policy a nil Options.Retry selects.
var defaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 500 * time.Millisecond}

// normalized fills zero fields with defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultRetry.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultRetry.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultRetry.MaxDelay
	}
	return p
}

// retryTransient runs op, retrying transient failures with capped
// exponential backoff. Backoff waits are context-aware: a cancelled or
// expired ctx aborts the wait and returns its error immediately.
// Non-transient errors, and transient ones that survive MaxAttempts,
// return as-is.
func (s *Session) retryTransient(ctx context.Context, op func() error) error {
	pol := defaultRetry
	if s.opts.Retry != nil {
		pol = s.opts.Retry.normalized()
	}
	delay := pol.BaseDelay
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !IsTransient(err) || attempt >= pol.MaxAttempts {
			return err
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		if delay *= 2; delay > pol.MaxDelay {
			delay = pol.MaxDelay
		}
	}
}

// PartialResult is the typed error a Session returns when a run is cut
// short by a resource bound — the derivation budget (ErrBudget) or a
// context deadline — rather than a failure: the facts derived so far are
// valid chase output and remain readable, and the session is resumable
// (raise the budget with SetMaxDerivations or supply a fresh context,
// then Resume). Unwrap exposes the bounding error, so
// errors.Is(err, ErrBudget) and errors.Is(err, context.DeadlineExceeded)
// see through it.
//
// Cancellation (context.Canceled) is deliberately NOT a PartialResult:
// it is the caller's own signal and surfaces untouched.
type PartialResult struct {
	s *Session
	// Reason is the bound that cut the run short.
	Reason error
}

func (p *PartialResult) Error() string {
	return fmt.Sprintf("vadalog: partial result (%d facts so far, quiesced=%v): %v",
		p.Derivations(), p.Quiesced(), p.Reason)
}

// Unwrap exposes the bounding error to errors.Is/As.
func (p *PartialResult) Unwrap() error { return p.Reason }

// Output returns the facts of pred derived before the bound struck, with
// @post directives applied — the partial answer.
func (p *PartialResult) Output(pred string) []Fact {
	if p.s.pl != nil {
		return p.s.pl.Output(pred)
	}
	return p.s.ch.Output(pred)
}

// Derivations reports the facts admitted before the bound struck.
func (p *PartialResult) Derivations() int { return p.s.Derivations() }

// Quiesced reports whether the answer is actually complete — the engine
// reached its fixpoint and only a post-run step (writing bound outputs)
// was cut short. False means a resumed run may derive more.
func (p *PartialResult) Quiesced() bool { return p.s.Quiesced() }

// Session returns the resumable session behind the partial result.
func (p *PartialResult) Session() *Session { return p.s }

// Resume continues the interrupted run: re-fires what was rolled back,
// drains the engine and writes bound outputs. Raise the budget first
// (SetMaxDerivations) when the bound was ErrBudget, and pass a context
// with more headroom when it was a deadline — otherwise the same bound
// strikes again.
func (p *PartialResult) Resume(ctx context.Context) error { return p.s.RunContext(ctx) }

// wrapPartial turns a resource-bound error into a *PartialResult over s;
// every other error (cancellation included) passes through.
func (s *Session) wrapPartial(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrBudget) || errors.Is(err, context.DeadlineExceeded) {
		return &PartialResult{s: s, Reason: err}
	}
	return err
}

// SetMaxDerivations replaces the session's derivation budget — how a
// session resumes past an ErrBudget PartialResult. n <= 0 selects the
// default cap (10M). Only safe between runs.
func (s *Session) SetMaxDerivations(n int) {
	if n <= 0 {
		n = 10_000_000
	}
	if s.pl != nil {
		s.pl.SetBudget(n)
		return
	}
	s.ch.SetBudget(n)
}

// Quiesced reports whether the session's reasoning is complete: every
// bound input fully staged, no staged facts waiting, and the engine at
// its fixpoint. After an interrupted run it distinguishes "the answer is
// complete" from "resuming would derive more".
func (s *Session) Quiesced() bool {
	if !s.ran || !s.loaded || len(s.pending) > 0 {
		return false
	}
	if s.pl != nil {
		return s.pl.Quiesced()
	}
	return s.ch.Quiesced()
}
