package vadalog

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/gen/dbpedia"
	"repro/internal/gen/graphs"
	"repro/internal/gen/iwarded"
	"repro/internal/owlqa"
)

// groundOutputs runs prog over facts and returns the sorted ground facts
// of every IDB predicate, as one canonical string.
func groundOutputs(t *testing.T, src string, facts []Fact, opts *Options) string {
	t.Helper()
	prog := MustParse(src)
	sess, err := NewSession(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(facts...)
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for pred := range prog.IDBPreds() {
		if strings.Contains(pred, "__tag") || strings.HasPrefix(pred, "exl_") {
			continue
		}
		for _, f := range sess.Output(pred) {
			if f.IsGround() {
				lines = append(lines, f.String())
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestRandomScenarioPolicyAgreement is the central correctness property:
// on randomly generated warded scenarios, every engine/policy combination
// that terminates yields the same ground answers.
func TestRandomScenarioPolicyAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		mixed := rng.Intn(3)
		ward := 1 + rng.Intn(3)
		noward := rng.Intn(3)
		harmful := rng.Intn(3)
		cfg := iwarded.Config{
			Name:      fmt.Sprintf("rand%d", trial),
			Linear:    6 + rng.Intn(6),
			Join:      mixed + ward + noward + harmful,
			LinearRec: rng.Intn(3),
			JoinRec:   rng.Intn(ward + 1),
			Exist:     2 + rng.Intn(3),
			JoinMixed: mixed, JoinWard: ward, JoinNoWard: noward, JoinHarmful: harmful,
			FactsPerRel:   15,
			ComponentSize: 3,
			Seed:          int64(trial),
		}
		g, err := iwarded.Generate(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		base := groundOutputs(t, g.Source, g.Facts, nil)
		variants := []struct {
			name string
			opts Options
		}{
			{"chase", Options{Engine: EngineChase}},
			{"nosummary", Options{Policy: PolicyNoSummary}},
			{"noindex", Options{DisableDynamicIndex: true}},
		}
		if harmful == 0 {
			// The trivial global isomorphism check is only complete on
			// harmless programs (paper Example 8); the paper's own Sec. 6.6
			// comparison uses AllPSC, which has no harmful joins.
			variants = append(variants, struct {
				name string
				opts Options
			}{"trivial", Options{Policy: PolicyTrivialIso}})
		}
		for _, variant := range variants {
			got := groundOutputs(t, g.Source, g.Facts, &variant.opts)
			if got != base {
				t.Errorf("trial %d: %s diverges from pipeline/full\n baseline %d lines, got %d lines",
					trial, variant.name, len(strings.Split(base, "\n")), len(strings.Split(got, "\n")))
			}
		}
	}
}

// TestEnginesAgreeOnExamples cross-validates the streaming pipeline
// against the reference chase on every examples/ scenario: the two
// engines must return identical ground answers over identical inputs.
func TestEnginesAgreeOnExamples(t *testing.T) {
	ownership := graphs.ScaleFree(120, graphs.PaperParams(), 1)
	persons := dbpedia.Generate(dbpedia.Config{Companies: 80, Persons: 240,
		KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
	quickstart := `
		company(X) -> keyPerson(P, X).
		control(X,Y), keyPerson(P,X) -> keyPerson(P,Y).
		@output("keyPerson").
	`
	quickFacts := []Fact{
		MakeFact("company", Str("acme")),
		MakeFact("company", Str("subco")),
		MakeFact("control", Str("acme"), Str("subco")),
		MakeFact("keyPerson", Str("ada"), Str("acme")),
	}
	spouseFacts := []Fact{
		MakeFact("spouse", Str("a"), Str("b"), Int(1990), Str("nyc"), Int(2000)),
		MakeFact("spouse", Str("c"), Str("d"), Int(1995), Str("rome"), Int(2005)),
	}
	csvpipeline := `
		own(X,Y,W), W > 0.5 -> control(X,Y).
		control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).
		@output("control").
	`
	csvFacts := []Fact{
		MakeFact("own", Str("acme"), Str("subco"), Flt(0.7)),
		MakeFact("own", Str("acme"), Str("other"), Flt(0.2)),
		MakeFact("own", Str("subco"), Str("deepco"), Flt(0.6)),
		MakeFact("own", Str("other"), Str("deepco"), Flt(0.3)),
	}
	// AllPSC (munion) is deliberately absent: monotonic-aggregation
	// intermediates are admission-order dependent, so the two engines
	// retain different non-final pscSet facts (a pre-existing property of
	// monotonic aggregation under set semantics, not an answer bug — the
	// final aggregate per group is order-independent, see
	// TestAggStateOrderIndependence).
	scenarios := []struct {
		name  string
		src   string
		facts []Fact
	}{
		{"quickstart", quickstart, quickFacts},
		{"companycontrol", graphs.ControlProgram, ownership.OwnFacts()},
		{"csvpipeline", csvpipeline, csvFacts},
		{"psc", dbpedia.PSCProgram, persons.All()},
		{"stronglinks", dbpedia.StrongLinksProgram(3), persons.All()},
		{"ontology", owlqa.Example1Spouse + "\n@output(\"spouse\").\n", spouseFacts},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			pipe := groundOutputs(t, sc.src, sc.facts, nil)
			chase := groundOutputs(t, sc.src, sc.facts, &Options{Engine: EngineChase})
			if pipe != chase {
				t.Errorf("engines diverge: pipeline %d lines, chase %d lines",
					len(strings.Split(pipe, "\n")), len(strings.Split(chase, "\n")))
			}
			if pipe == "" {
				t.Error("scenario produced no ground answers (vacuous comparison)")
			}
		})
	}
}

// TestTrivialIsoIncompleteOnHarmfulJoins reproduces paper Example 8: the
// global isomorphism cut of the trivial technique prunes facts whose
// subtrees would have fed harmful joins, losing answers that the full
// strategy (per-tree isomorphism in the warded forest) retains. This is
// precisely why the paper restricts pruning to Harmless Warded Datalog±
// and rewrites harmful joins first.
func TestTrivialIsoIncompleteOnHarmfulJoins(t *testing.T) {
	src := `
		company(X) -> psc(X, P).
		control(Y,X), psc(Y,P) -> psc(X,P).
		psc(X,P), psc(Y,P), X != Y -> strongLink(X,Y).
		@output("strongLink").
	`
	facts := []Fact{
		MakeFact("company", Str("a")),
		MakeFact("company", Str("b")),
		MakeFact("control", Str("a"), Str("b")),
	}
	full := groundOutputs(t, src, facts, nil)
	trivial := groundOutputs(t, src, facts, &Options{Policy: PolicyTrivialIso})
	if !strings.Contains(full, "strongLink(a,b)") {
		t.Fatalf("full strategy must find the link via the shared invented PSC: %q", full)
	}
	if strings.Contains(trivial, "strongLink(a,b)") {
		t.Skip("trivial technique happened to keep the right fact on this ordering")
	}
}

// TestStreamMatchesDrain: streaming a predicate yields exactly the facts
// the drained session materializes.
func TestStreamMatchesDrain(t *testing.T) {
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`
	var facts []Fact
	for i := 0; i < 12; i++ {
		facts = append(facts, MakeFact("edge", Int(int64(i)), Int(int64((i*3+1)%12))))
	}
	drained := groundOutputs(t, src, facts, nil)

	sess, err := NewSession(MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(facts...)
	next := sess.Stream("path")
	var lines []string
	for {
		f, ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		lines = append(lines, f.String())
	}
	sort.Strings(lines)
	if got := strings.Join(lines, "\n"); got != drained {
		t.Errorf("stream (%d) differs from drain (%d)", len(lines), len(strings.Split(drained, "\n")))
	}
}

// TestBufferCapacityDoesNotChangeAnswers: evicting indexes under memory
// pressure must not affect results.
func TestBufferCapacityDoesNotChangeAnswers(t *testing.T) {
	cfg, _ := iwarded.Scenario("synthA")
	cfg.FactsPerRel = 25
	g, err := iwarded.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := groundOutputs(t, g.Source, g.Facts, nil)
	tiny := groundOutputs(t, g.Source, g.Facts, &Options{BufferCapacity: 2048})
	if base != tiny {
		t.Error("buffer eviction changed answers")
	}
}

// TestSkolemPolicyAgreesWhenTerminating: on scenarios without
// null-generating recursion the Skolem chase terminates and must agree.
func TestSkolemPolicyAgreesWhenTerminating(t *testing.T) {
	cfg := iwarded.Config{
		Name: "skolemsafe", Linear: 8, Join: 4,
		JoinMixed: 1, JoinWard: 1, JoinNoWard: 1, JoinHarmful: 1,
		Exist: 2, FactsPerRel: 15, ComponentSize: 3, Seed: 5,
	}
	g, err := iwarded.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := groundOutputs(t, g.Source, g.Facts, nil)
	skolem := groundOutputs(t, g.Source, g.Facts, &Options{Policy: PolicySkolem, MaxDerivations: 2_000_000})
	if base != skolem {
		t.Error("skolem chase diverges on a terminating scenario")
	}
}
