package vadalog

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/gen/dbpedia"
	"repro/internal/gen/graphs"
	"repro/internal/gen/iwarded"
	"repro/internal/owlqa"
)

// groundOutputs runs prog over facts and returns the sorted ground facts
// of every IDB predicate, as one canonical string.
func groundOutputs(t *testing.T, src string, facts []Fact, opts *Options) string {
	t.Helper()
	prog := MustParse(src)
	sess, err := NewSession(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(facts...)
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	var lines []string
	for pred := range prog.IDBPreds() {
		if strings.Contains(pred, "__tag") || strings.HasPrefix(pred, "exl_") {
			continue
		}
		for _, f := range sess.Output(pred) {
			if f.IsGround() {
				lines = append(lines, f.String())
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestRandomScenarioPolicyAgreement is the central correctness property:
// on randomly generated warded scenarios, every engine/policy combination
// that terminates yields the same ground answers.
func TestRandomScenarioPolicyAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		mixed := rng.Intn(3)
		ward := 1 + rng.Intn(3)
		noward := rng.Intn(3)
		harmful := rng.Intn(3)
		cfg := iwarded.Config{
			Name:      fmt.Sprintf("rand%d", trial),
			Linear:    6 + rng.Intn(6),
			Join:      mixed + ward + noward + harmful,
			LinearRec: rng.Intn(3),
			JoinRec:   rng.Intn(ward + 1),
			Exist:     2 + rng.Intn(3),
			JoinMixed: mixed, JoinWard: ward, JoinNoWard: noward, JoinHarmful: harmful,
			FactsPerRel:   15,
			ComponentSize: 3,
			Seed:          int64(trial),
		}
		g, err := iwarded.Generate(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		base := groundOutputs(t, g.Source, g.Facts, nil)
		variants := []struct {
			name string
			opts Options
		}{
			{"chase", Options{Engine: EngineChase}},
			{"nosummary", Options{Policy: PolicyNoSummary}},
			{"noindex", Options{DisableDynamicIndex: true}},
		}
		if harmful == 0 {
			// The trivial global isomorphism check is only complete on
			// harmless programs (paper Example 8); the paper's own Sec. 6.6
			// comparison uses AllPSC, which has no harmful joins.
			variants = append(variants, struct {
				name string
				opts Options
			}{"trivial", Options{Policy: PolicyTrivialIso}})
		}
		for _, variant := range variants {
			got := groundOutputs(t, g.Source, g.Facts, &variant.opts)
			if got != base {
				t.Errorf("trial %d: %s diverges from pipeline/full\n baseline %d lines, got %d lines",
					trial, variant.name, len(strings.Split(base, "\n")), len(strings.Split(got, "\n")))
			}
		}
	}
}

// TestEnginesAgreeOnExamples cross-validates the streaming pipeline
// against the reference chase on every examples/ scenario: the two
// engines must return identical ground answers over identical inputs.
func TestEnginesAgreeOnExamples(t *testing.T) {
	ownership := graphs.ScaleFree(120, graphs.PaperParams(), 1)
	persons := dbpedia.Generate(dbpedia.Config{Companies: 80, Persons: 240,
		KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
	quickstart := `
		company(X) -> keyPerson(P, X).
		control(X,Y), keyPerson(P,X) -> keyPerson(P,Y).
		@output("keyPerson").
	`
	quickFacts := []Fact{
		MakeFact("company", Str("acme")),
		MakeFact("company", Str("subco")),
		MakeFact("control", Str("acme"), Str("subco")),
		MakeFact("keyPerson", Str("ada"), Str("acme")),
	}
	spouseFacts := []Fact{
		MakeFact("spouse", Str("a"), Str("b"), Int(1990), Str("nyc"), Int(2000)),
		MakeFact("spouse", Str("c"), Str("d"), Int(1995), Str("rome"), Int(2005)),
	}
	csvpipeline := `
		own(X,Y,W), W > 0.5 -> control(X,Y).
		control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).
		@output("control").
	`
	csvFacts := []Fact{
		MakeFact("own", Str("acme"), Str("subco"), Flt(0.7)),
		MakeFact("own", Str("acme"), Str("other"), Flt(0.2)),
		MakeFact("own", Str("subco"), Str("deepco"), Flt(0.6)),
		MakeFact("own", Str("other"), Str("deepco"), Flt(0.3)),
	}
	// AllPSC (munion) is included since the supersession layer: aggregate
	// intermediates are transient — an improving group replaces its
	// previously admitted fact in place — so both engines converge to the
	// same final database (exactly one fact per group and rule) and the
	// comparison is strict full-database equality, aggregate predicates
	// included.
	scenarios := []struct {
		name  string
		src   string
		facts []Fact
	}{
		{"quickstart", quickstart, quickFacts},
		{"companycontrol", graphs.ControlProgram, ownership.OwnFacts()},
		{"csvpipeline", csvpipeline, csvFacts},
		{"psc", dbpedia.PSCProgram, persons.All()},
		{"allpsc", dbpedia.AllPSCProgram, persons.All()},
		{"stronglinks", dbpedia.StrongLinksProgram(3), persons.All()},
		{"ontology", owlqa.Example1Spouse + "\n@output(\"spouse\").\n", spouseFacts},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			pipe := groundOutputs(t, sc.src, sc.facts, nil)
			chase := groundOutputs(t, sc.src, sc.facts, &Options{Engine: EngineChase})
			if pipe != chase {
				t.Errorf("engines diverge: pipeline %d lines, chase %d lines",
					len(strings.Split(pipe, "\n")), len(strings.Split(chase, "\n")))
			}
			if pipe == "" {
				t.Error("scenario produced no ground answers (vacuous comparison)")
			}
		})
	}
}

// reverseFacts returns a reversed copy of facts (adversarial admission
// order).
func reverseFacts(facts []Fact) []Fact {
	out := make([]Fact, len(facts))
	for i, f := range facts {
		out[len(facts)-1-i] = f
	}
	return out
}

// TestAggregateAdmissionOrderIndependence is the acceptance property of
// the supersession layer: on the AllPSC/munion scenario, chase and
// pipeline produce identical final databases (intermediate aggregate
// predicates included) under different fact-admission orders — superseded
// intermediates are replaced in place, so only the limit of each group's
// improving stream survives quiescence.
func TestAggregateAdmissionOrderIndependence(t *testing.T) {
	persons := dbpedia.Generate(dbpedia.Config{Companies: 40, Persons: 120,
		KeyPersonRate: 1.4, ControlRate: 0.5, Seed: 11})
	facts := persons.All()
	rev := reverseFacts(facts)
	var dbs []string
	for _, opts := range []Options{{}, {Engine: EngineChase}} {
		for _, order := range [][]Fact{facts, rev} {
			dbs = append(dbs, groundOutputs(t, dbpedia.AllPSCProgram, order, &opts))
		}
	}
	for i, db := range dbs[1:] {
		if db != dbs[0] {
			t.Errorf("variant %d diverges from pipeline/forward: %d vs %d lines",
				i+1, len(strings.Split(db, "\n")), len(strings.Split(dbs[0], "\n")))
		}
	}
	if dbs[0] == "" {
		t.Fatal("scenario produced no facts (vacuous comparison)")
	}
}

// TestAggregateOneFactPerGroup pins the quiescence invariant on a
// handcrafted control chain: each (rule, group) pair retains exactly one
// pscSet fact — the final union — in both engines and both admission
// orders, and set-valued contributions are flattened so c3 inherits the
// union of its ancestors' PSCs, not a set of intermediate set values.
func TestAggregateOneFactPerGroup(t *testing.T) {
	facts := []Fact{
		MakeFact("keyPerson", Str("c1"), Str("p1")),
		MakeFact("keyPerson", Str("c1"), Str("p2")),
		MakeFact("keyPerson", Str("c2"), Str("p3")),
		MakeFact("person", Str("p1")),
		MakeFact("person", Str("p2")),
		MakeFact("person", Str("p3")),
		MakeFact("control", Str("c1"), Str("c2")),
		MakeFact("control", Str("c2"), Str("c3")),
	}
	// Rule 1 (direct key persons) and rule 2 (union of the parent's sets)
	// each keep one fact per company: c2 gets {p3} directly and {p1,p2}
	// from c1; c3 has no direct key persons and inherits the flattened
	// union of both of c2's sets.
	want := strings.Join([]string{
		"pscSet(c1,{p1,p2})",
		"pscSet(c2,{p1,p2})",
		"pscSet(c2,{p3})",
		"pscSet(c3,{p1,p2,p3})",
	}, "\n")
	for _, variant := range []struct {
		name  string
		opts  Options
		facts []Fact
	}{
		{"pipeline", Options{}, facts},
		{"pipeline-reversed", Options{}, reverseFacts(facts)},
		{"chase", Options{Engine: EngineChase}, facts},
		{"chase-reversed", Options{Engine: EngineChase}, reverseFacts(facts)},
	} {
		if got := groundOutputs(t, dbpedia.AllPSCProgram, variant.facts, &variant.opts); got != want {
			t.Errorf("%s:\n got  %q\n want %q", variant.name, got, want)
		}
	}
}

// TestStreamSkipsRetractedIntermediates: when an aggregate improvement
// collides with an independently derived identical fact, the superseded
// row is retracted — and the streaming surface must not yield it.
func TestStreamSkipsRetractedIntermediates(t *testing.T) {
	src := `
		a(X), W = mcount(X) -> size(W).
		seed(W) -> size(W).
		@output("size").
	`
	sess, err := NewSession(MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(
		MakeFact("seed", Int(2)),
		MakeFact("a", Str("x")),
		MakeFact("a", Str("y")),
	)
	// Run to quiescence first: size(1) is superseded by size(2), which
	// (depending on the pull interleaving) either replaced it in place or
	// collided with seed's copy and retracted it. Streaming the quiesced
	// predicate must skip the dead row instead of yielding its stale fact.
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	next := sess.Stream("size")
	var got []string
	for {
		f, ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, f.String())
	}
	sort.Strings(got)
	if strings.Join(got, ";") != "size(2)" {
		t.Errorf("stream yielded %v, want just size(2)", got)
	}
}

// TestNonImprovingMatchStillEmits: a post-aggregate condition that also
// reads a non-group body variable can pass on a later, non-improving
// match; the emission must not be skipped (the improved-only fast path
// applies only when conditions depend on the result and group alone).
func TestNonImprovingMatchStillEmits(t *testing.T) {
	src := `
		a(G, X, T), W = mcount(X), W >= T -> out(G, W).
		@output("out").
	`
	facts := []Fact{
		// First match: W=1, threshold 10 -> condition fails, no emission.
		MakeFact("a", Str("g"), Str("x"), Int(10)),
		// Same contributor, lower threshold: W stays 1 (not improved) but
		// 1 >= 1 now passes -> out(g,1) must be admitted.
		MakeFact("a", Str("g"), Str("x"), Int(1)),
	}
	for _, opts := range []Options{{}, {Engine: EngineChase}} {
		if got := groundOutputs(t, src, facts, &opts); got != "out(g,1)" {
			t.Errorf("engine %d: %q, want out(g,1)", opts.Engine, got)
		}
	}
}

// TestTrivialIsoIncompleteOnHarmfulJoins reproduces paper Example 8: the
// global isomorphism cut of the trivial technique prunes facts whose
// subtrees would have fed harmful joins, losing answers that the full
// strategy (per-tree isomorphism in the warded forest) retains. This is
// precisely why the paper restricts pruning to Harmless Warded Datalog±
// and rewrites harmful joins first.
func TestTrivialIsoIncompleteOnHarmfulJoins(t *testing.T) {
	src := `
		company(X) -> psc(X, P).
		control(Y,X), psc(Y,P) -> psc(X,P).
		psc(X,P), psc(Y,P), X != Y -> strongLink(X,Y).
		@output("strongLink").
	`
	facts := []Fact{
		MakeFact("company", Str("a")),
		MakeFact("company", Str("b")),
		MakeFact("control", Str("a"), Str("b")),
	}
	full := groundOutputs(t, src, facts, nil)
	trivial := groundOutputs(t, src, facts, &Options{Policy: PolicyTrivialIso})
	if !strings.Contains(full, "strongLink(a,b)") {
		t.Fatalf("full strategy must find the link via the shared invented PSC: %q", full)
	}
	if strings.Contains(trivial, "strongLink(a,b)") {
		t.Skip("trivial technique happened to keep the right fact on this ordering")
	}
}

// TestStreamMatchesDrain: streaming a predicate yields exactly the facts
// the drained session materializes.
func TestStreamMatchesDrain(t *testing.T) {
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`
	var facts []Fact
	for i := 0; i < 12; i++ {
		facts = append(facts, MakeFact("edge", Int(int64(i)), Int(int64((i*3+1)%12))))
	}
	drained := groundOutputs(t, src, facts, nil)

	sess, err := NewSession(MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(facts...)
	next := sess.Stream("path")
	var lines []string
	for {
		f, ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		lines = append(lines, f.String())
	}
	sort.Strings(lines)
	if got := strings.Join(lines, "\n"); got != drained {
		t.Errorf("stream (%d) differs from drain (%d)", len(lines), len(strings.Split(drained, "\n")))
	}
}

// TestBufferCapacityDoesNotChangeAnswers: evicting indexes under memory
// pressure must not affect results.
func TestBufferCapacityDoesNotChangeAnswers(t *testing.T) {
	cfg, _ := iwarded.Scenario("synthA")
	cfg.FactsPerRel = 25
	g, err := iwarded.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := groundOutputs(t, g.Source, g.Facts, nil)
	tiny := groundOutputs(t, g.Source, g.Facts, &Options{BufferCapacity: 2048})
	if base != tiny {
		t.Error("buffer eviction changed answers")
	}
}

// TestSkolemPolicyAgreesWhenTerminating: on scenarios without
// null-generating recursion the Skolem chase terminates and must agree.
func TestSkolemPolicyAgreesWhenTerminating(t *testing.T) {
	cfg := iwarded.Config{
		Name: "skolemsafe", Linear: 8, Join: 4,
		JoinMixed: 1, JoinWard: 1, JoinNoWard: 1, JoinHarmful: 1,
		Exist: 2, FactsPerRel: 15, ComponentSize: 3, Seed: 5,
	}
	g, err := iwarded.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := groundOutputs(t, g.Source, g.Facts, nil)
	skolem := groundOutputs(t, g.Source, g.Facts, &Options{Policy: PolicySkolem, MaxDerivations: 2_000_000})
	if base != skolem {
		t.Error("skolem chase diverges on a terminating scenario")
	}
}
