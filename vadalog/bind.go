package vadalog

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/source"
	"repro/internal/term"
)

// Driver is a pluggable record manager serving @bind/@qbind annotations:
// a source.Source (input bindings), a source.Sink (output bindings), or
// both. Register drivers process-wide with RegisterDriver or per-program
// through Options.RegisterDriver.
type Driver = source.Driver

// RecordCursor streams typed rows in chunks from a Driver.
type RecordCursor = source.RecordCursor

// SourceBinding is the resolved binding handed to a Driver's Open and
// WriteAll: target locator plus the selection/projection to apply.
type SourceBinding = source.Binding

// MemDriver is the in-memory record manager: the Go API stores rows (or
// a lazy row iterator) under a table name and @bind("p","mem","name")
// serves them to the engines.
type MemDriver = source.Mem

// RegisterDriver makes a record-manager driver available process-wide
// under name, like database/sql.Register; built-ins are "csv", "tsv",
// "jsonl" and "mem". It panics when name is already registered. For a
// driver visible to a single compiled program only, use
// Options.RegisterDriver instead.
func RegisterDriver(name string, d Driver) { source.Register(name, d) }

// DefaultMem returns the process-global in-memory driver registered as
// "mem": Store rows in it by name, then @bind them.
func DefaultMem() *MemDriver { return source.DefaultMem }

// boundIO is one compile-time-resolved binding: the driver instance plus
// the source.Binding its cursors and sinks receive.
type boundIO struct {
	drv source.Driver
	b   source.Binding
	out bool // output binding: written after the run, not loaded before
}

// resolveBindings validates the program's @bind/@qbind/@mapping
// annotations against the driver registry (overlaid with extra) and
// resolves them into ready-to-open bindings. All failures are
// compile-time errors positioned at the annotation: unknown drivers,
// @bind+@qbind mixes on one predicate, malformed or out-of-range
// queries, arity-mismatched mappings, and drivers lacking the direction
// or capability a binding needs.
func resolveBindings(prog *ast.Program, extra map[string]Driver) ([]boundIO, error) {
	if len(prog.Bindings) == 0 && len(prog.Mappings) == 0 {
		return nil, nil
	}
	arities, err := prog.Predicates()
	if err != nil {
		return nil, err
	}
	mapped := make(map[string]ast.Mapping, len(prog.Mappings))
	for _, m := range prog.Mappings {
		if _, dup := mapped[m.Pred]; dup {
			return nil, bindErr(m.Line, m.Col, "duplicate @mapping for predicate %q", m.Pred)
		}
		if ar, known := arities[m.Pred]; known && len(m.Columns) != ar {
			return nil, bindErr(m.Line, m.Col, "@mapping(%q): %d columns for arity-%d predicate",
				m.Pred, len(m.Columns), ar)
		}
		mapped[m.Pred] = m
	}
	kinds := make(map[string]string, len(prog.Bindings))
	binds := make([]boundIO, 0, len(prog.Bindings))
	for _, ab := range prog.Bindings {
		kind := "@bind"
		if ab.Query != "" {
			kind = "@qbind"
		}
		if prev, seen := kinds[ab.Pred]; seen && prev != kind {
			return nil, bindErr(ab.Line, ab.Col,
				"predicate %q has both @bind and @qbind; bind a predicate one way", ab.Pred)
		}
		kinds[ab.Pred] = kind
		drv, ok := extra[ab.Driver]
		if !ok {
			drv, ok = source.Lookup(ab.Driver)
		}
		if !ok {
			return nil, bindErr(ab.Line, ab.Col, "%s(%q): unknown driver %q (registered: %s)",
				kind, ab.Pred, ab.Driver, strings.Join(source.DriverNames(), ", "))
		}
		b := source.Binding{Pred: ab.Pred, Driver: ab.Driver, Target: ab.Target}
		if ar, known := arities[ab.Pred]; known {
			b.Arity = ar
		}
		if m, ok := mapped[ab.Pred]; ok {
			b.Columns = m.Columns
		}
		isOut := prog.Outputs[ab.Pred]
		if ab.Query != "" {
			if isOut {
				return nil, bindErr(ab.Line, ab.Col,
					"@qbind(%q): query bindings select from sources; %q is an @output sink", ab.Pred, ab.Pred)
			}
			q, err := source.ParseQuery(ab.Query)
			if err != nil {
				return nil, bindErr(ab.Line, ab.Col, "@qbind(%q): %v", ab.Pred, err)
			}
			if b.Arity > 0 && q.MaxCol() > b.Arity {
				return nil, bindErr(ab.Line, ab.Col,
					"@qbind(%q): query references column $%d of an arity-%d predicate",
					ab.Pred, q.MaxCol(), b.Arity)
			}
			b.Query = q
		}
		if isOut {
			if _, ok := drv.(source.Sink); !ok {
				return nil, bindErr(ab.Line, ab.Col,
					"%s(%q): driver %q cannot write @output predicates (no Sink)", kind, ab.Pred, ab.Driver)
			}
		} else {
			if _, ok := drv.(source.Source); !ok {
				return nil, bindErr(ab.Line, ab.Col,
					"%s(%q): driver %q cannot read input predicates (no Source)", kind, ab.Pred, ab.Driver)
			}
			if len(b.Columns) > 0 {
				if _, ok := drv.(source.PushdownSource); !ok {
					return nil, bindErr(ab.Line, ab.Col,
						"@mapping(%q): driver %q cannot project named columns", ab.Pred, ab.Driver)
				}
			}
		}
		binds = append(binds, boundIO{drv: drv, b: b, out: isOut})
	}
	return binds, nil
}

func bindErr(line, col int, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if line > 0 {
		return fmt.Errorf("vadalog: %d:%d: %s", line, col, msg)
	}
	return fmt.Errorf("vadalog: %s", msg)
}

// stage streams the @bind'ed input sources into the engine — program
// facts first, then each binding's cursor chunk by chunk, then (by the
// caller) the staged facts, so the admission order matches the historical
// materialize-all path exactly. Cancellation is honored between chunks;
// a cancelled stage keeps its open cursor and resumes where it stopped
// on the next call, so no rows are lost or re-read. Once every input is
// drained the stage is done for the session's lifetime, however many
// times Run or Stream are invoked afterwards.
//
// Transient source failures (IsTransient) are retried in place with
// capped exponential backoff (Options.Retry): a failed chunk pull
// consumed nothing, so the retry — and, should the retries run out, the
// next stage call — resumes at the exact row the fault struck.
func (s *Session) stage(ctx context.Context) error {
	if s.loaded {
		return nil
	}
	s.loadProgramFacts()
	for ; s.bindIdx < len(s.binds); s.bindIdx++ {
		bio := &s.binds[s.bindIdx]
		if bio.out {
			continue
		}
		if s.cur == nil {
			err := s.retryTransient(ctx, func() error {
				cur, err := source.Open(ctx, bio.drv, bio.b)
				if err == nil {
					s.cur = cur
				}
				return err
			})
			if err != nil {
				return err
			}
		}
		for {
			chunk := s.chunk
			if chunk == nil {
				err := s.retryTransient(ctx, func() error {
					var err error
					chunk, err = s.cur.Next(ctx)
					return err
				})
				if err != nil {
					if ctx.Err() != nil || IsTransient(err) {
						// Cancellation, or a transient fault that outlived its
						// retries: the failed pull consumed nothing, so the
						// cursor stays open and the next call resumes here.
						return err
					}
					s.cur.Close()
					s.cur = nil
					return err
				}
				if len(chunk) == 0 {
					break
				}
			}
			// The cursor has moved past the pulled chunk, so the chunk is
			// held on the session until the engine admits it: a failed or
			// interrupted load resumes by re-admitting it (duplicates are
			// skipped), losing and re-reading nothing.
			s.chunk = chunk
			if err := s.loadRows(ctx, bio.b.Pred, chunk); err != nil {
				return err // chunk and cursor kept: the load resumes here
			}
			s.chunk = nil
		}
		s.cur.Close()
		s.cur = nil
	}
	s.loaded = true
	return nil
}

// loadProgramFacts admits the program's inline facts ahead of the bound
// inputs, once per session (the engines skip duplicates, but the guard
// keeps the work one-shot).
func (s *Session) loadProgramFacts() {
	if s.progLoaded {
		return
	}
	s.progLoaded = true
	if s.pl != nil {
		s.pl.LoadProgramFacts()
	} else {
		s.ch.LoadProgramFacts()
	}
}

// loadRows feeds one cursor chunk into the engine as facts of pred,
// then reports any pending cancellation (the chunk itself is always
// admitted; see Session.stage). Labelled nulls imported from the source
// ("_:nK" cells) reserve their ids in the session's null factory first,
// so they can never collide with nulls the run mints afterwards.
func (s *Session) loadRows(ctx context.Context, pred string, rows [][]term.Value) error {
	facts := make([]ast.Fact, len(rows))
	for i, row := range rows {
		for _, v := range row {
			if v.IsNull() {
				s.nulls().Reserve(v.NullID())
			}
		}
		facts[i] = ast.Fact{Pred: pred, Args: row}
	}
	if s.pl != nil {
		return s.pl.LoadChunk(ctx, facts)
	}
	if err := s.ch.LoadChunk(facts); err != nil {
		return err
	}
	return ctx.Err()
}

// nulls returns the engine's null factory.
func (s *Session) nulls() *term.NullFactory {
	if s.pl != nil {
		return s.pl.DB().Nulls
	}
	return s.ch.DB().Nulls
}

// Close releases the session's record-manager resources: the input
// cursor a cancelled load kept open for resumption. Sessions that ran
// to completion (or were never run) hold nothing, so Close is only
// needed when abandoning a session after a cancelled RunContext. A
// closed session can no longer resume its load.
func (s *Session) Close() error {
	if s.cur == nil {
		return nil
	}
	err := s.cur.Close()
	s.cur = nil
	return err
}

// writeBoundOutputs writes @bind'ed output predicates back through their
// record managers' sinks.
func (s *Session) writeBoundOutputs(ctx context.Context) error {
	for _, bio := range s.binds {
		if !bio.out {
			continue
		}
		sink := bio.drv.(source.Sink) // direction validated at compile time
		facts := s.Output(bio.b.Pred)
		rows := make([][]term.Value, len(facts))
		for i, f := range facts {
			rows[i] = f.Args
		}
		if err := sink.WriteAll(ctx, bio.b, rows); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV reads path into facts of pred, one fact per record, through
// the csv record manager; cells are parsed as Vadalog literals (ints,
// floats, #t/#f, quoted strings, dates, sets). Kept as the materializing
// convenience API; @bind'ed programs stream instead.
func ReadCSV(pred, path string) ([]ast.Fact, error) {
	rows, err := source.ReadAll(context.Background(), source.CSV{Comma: ','},
		source.Binding{Pred: pred, Driver: "csv", Target: path})
	if err != nil {
		return nil, err
	}
	facts := make([]ast.Fact, len(rows))
	for i, row := range rows {
		facts[i] = ast.Fact{Pred: pred, Args: row}
	}
	return facts, nil
}

// WriteCSV writes facts to path, one record per fact, through the csv
// record manager. Cells round-trip: ReadCSV of the written file yields
// the same typed values (strings that look like other literals are
// quoted, integral floats keep ".0").
func WriteCSV(path string, facts []ast.Fact) error {
	rows := make([][]term.Value, len(facts))
	for i, f := range facts {
		rows[i] = f.Args
	}
	return source.CSV{Comma: ','}.WriteAll(context.Background(),
		source.Binding{Driver: "csv", Target: path}, rows)
}
