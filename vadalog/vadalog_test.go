package vadalog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

const controlSrc = `
	own(X,Y,W), W > 0.5 -> control(X,Y).
	control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).
	@output("control").
`

func controlFacts() []Fact {
	// a controls b and d directly; b and d jointly own 0.55 of c, so a
	// controls c through them (Example 2 semantics: msum ranges over the
	// companies a already controls).
	return []Fact{
		MakeFact("own", Str("a"), Str("b"), Flt(0.6)),
		MakeFact("own", Str("a"), Str("d"), Flt(0.7)),
		MakeFact("own", Str("b"), Str("c"), Flt(0.3)),
		MakeFact("own", Str("d"), Str("c"), Flt(0.25)),
	}
}

func TestReasonOneShot(t *testing.T) {
	prog := MustParse(controlSrc)
	out, err := Reason(prog, controlFacts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := out["control"]
	found := map[string]bool{}
	for _, f := range ctrl {
		found[f.Args[0].Str()+">"+f.Args[1].Str()] = true
	}
	if !found["a>b"] || !found["a>c"] {
		t.Errorf("control pairs: %v", ctrl)
	}
}

func TestEnginesAgree(t *testing.T) {
	for _, engine := range []Engine{EnginePipeline, EngineChase} {
		prog := MustParse(controlSrc)
		sess, err := NewSession(prog, &Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		sess.Load(controlFacts()...)
		if err := sess.Run(); err != nil {
			t.Fatal(err)
		}
		if n := len(sess.Output("control")); n == 0 {
			t.Errorf("engine %v: empty output", engine)
		}
		if sess.Derivations() == 0 {
			t.Errorf("engine %v: no derivations", engine)
		}
	}
}

func TestAllPoliciesAgreeOnGroundAnswers(t *testing.T) {
	src := `
		company(X) -> psc(X, P).
		keyPerson(X, P) -> psc(X, P).
		control(Y,X), psc(Y,P) -> psc(X,P).
		psc(X,P), psc(Y,P), X != Y -> strongLink(X,Y).
		@output("strongLink").
	`
	facts := []Fact{
		MakeFact("company", Str("a")),
		MakeFact("company", Str("b")),
		MakeFact("control", Str("a"), Str("b")),
		MakeFact("keyPerson", Str("a"), Str("bob")),
		MakeFact("keyPerson", Str("b"), Str("bob")),
	}
	var want []string
	for _, pol := range []Policy{PolicyFull, PolicyNoSummary, PolicyTrivialIso, PolicyRestricted, PolicySkolem} {
		prog := MustParse(src)
		sess, err := NewSession(prog, &Options{Policy: pol, MaxDerivations: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		sess.Load(facts...)
		if err := sess.Run(); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		var got []string
		for _, f := range sess.Output("strongLink") {
			if f.IsGround() {
				got = append(got, f.String())
			}
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Errorf("policy %v: %d ground answers, want %d", pol, len(got), len(want))
		}
	}
}

func TestStreamAPI(t *testing.T) {
	prog := MustParse(`
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`)
	sess, err := NewSession(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(
		MakeFact("edge", Str("a"), Str("b")),
		MakeFact("edge", Str("b"), Str("c")),
	)
	next := sess.Stream("path")
	count := 0
	for {
		_, ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("streamed %d paths, want 3", count)
	}
}

func TestCheckReport(t *testing.T) {
	rep := Check(MustParse(controlSrc))
	if !rep.Warded || !rep.Stratified || !rep.Recursive {
		t.Errorf("report: %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
	// Non-warded program.
	rep = Check(MustParse(`
		a(X) -> p(X, Z).
		a(X) -> w(X, Z, V).
		w(X, Z, V), p(Y, Z) -> r(V, X, Y).
	`))
	if rep.Warded {
		t.Error("non-warded program reported as warded")
	}
}

func TestInconsistencyError(t *testing.T) {
	prog := MustParse(`
		p(X, X) -> #fail.
		p(X, Y) -> q(X, Y).
		@output("q").
	`)
	sess, err := NewSession(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(MakeFact("p", Str("a"), Str("a")))
	if err := sess.Run(); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("want ErrInconsistent, got %v", err)
	}
}

func TestBudgetError(t *testing.T) {
	prog := MustParse(`
		a(X), a(Y) -> pair(X, Y).
		@output("pair").
	`)
	sess, err := NewSession(prog, &Options{MaxDerivations: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		sess.Load(MakeFact("a", Int(int64(i))))
	}
	if err := sess.Run(); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestCSVEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "own.csv")
	out := filepath.Join(dir, "control.csv")
	if err := os.WriteFile(in, []byte("a,b,0.9\nb,c,0.8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := MustParse(`
		own(X,Y,W), W > 0.5 -> control(X,Y).
		control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).
		@input("own").
		@output("control").
		@bind("own","csv","` + in + `").
		@bind("control","csv","` + out + `").
	`)
	sess, err := NewSession(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty control.csv")
	}
	// Round trip through ReadCSV.
	facts, err := ReadCSV("control", out)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 3 { // a>b, b>c, a>c
		t.Errorf("control rows: %v", facts)
	}
}

func TestStrategyStatsExposed(t *testing.T) {
	prog := MustParse(`
		p(X) -> q(Z, X).
		q(Z, X) -> p(Z).
		@output("p").
	`)
	sess, err := NewSession(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(MakeFact("p", Str("a")))
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	st, ok := sess.StrategyStats()
	if !ok {
		t.Fatal("full strategy must expose stats")
	}
	if st.Checked == 0 {
		t.Error("no checks recorded")
	}
	// Baseline policies do not expose strategy stats.
	sess2, _ := NewSession(MustParse(controlSrc), &Options{Policy: PolicySkolem})
	if _, ok := sess2.StrategyStats(); ok {
		t.Error("skolem policy must not expose strategy stats")
	}
}

func TestDisableRewriting(t *testing.T) {
	prog := MustParse(`
		company(X) -> psc(X, P).
		psc(X,P), psc(Y,P), X != Y -> strongLink(X,Y).
		@output("strongLink").
	`)
	sess, err := NewSession(prog, &Options{DisableRewriting: true, MaxDerivations: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(MakeFact("company", Str("a")), MakeFact("company", Str("b")))
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	// Without rewriting the harmful join runs directly over Skolem nulls:
	// distinct companies get distinct nulls, so no strong links.
	if n := len(sess.Output("strongLink")); n != 0 {
		t.Errorf("unexpected strong links: %d", n)
	}
}
