package vadalog

import (
	"math/rand"
	"strings"
	"testing"
)

// TestKeepMaxPostDirective: the SQL-style final aggregate keeps only the
// extremal monotonic intermediate per group (paper Sec. 5, post-
// processing directives).
func TestKeepMaxPostDirective(t *testing.T) {
	prog := MustParse(`
		keyPerson(X,P) -> psc(X,P).
		company(X) -> psc(X, P).
		control(Y,X), psc(Y,P) -> psc(X,P).
		psc(X,P), psc(Y,P), X > Y, W = mcount(P), W >= 1 -> strongLink(X,Y,W).
		@output("strongLink").
		@post("strongLink","keepMax",3).
	`)
	sess, err := NewSession(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(
		MakeFact("company", Str("a")),
		MakeFact("company", Str("b")),
		MakeFact("control", Str("a"), Str("b")),
		MakeFact("keyPerson", Str("a"), Str("bob")),
		MakeFact("keyPerson", Str("b"), Str("bob")),
		MakeFact("keyPerson", Str("a"), Str("eve")),
		MakeFact("keyPerson", Str("b"), Str("eve")),
	)
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	links := sess.Output("strongLink")
	// Without keepMax the monotonic count emits W=1,2,3 intermediates;
	// with it exactly one row per (X,Y) pair remains, holding the final
	// count.
	seen := map[string]int64{}
	for _, f := range links {
		key := f.Args[0].Str() + "|" + f.Args[1].Str()
		if _, dup := seen[key]; dup {
			t.Fatalf("keepMax left multiple rows for %s: %v", key, links)
		}
		seen[key] = f.Args[2].IntVal()
	}
	if w := seen["b|a"]; w < 2 {
		t.Errorf("final shared-PSC count for (b,a): %d, want ≥2 (bob, eve, invented)", w)
	}
}

// TestIncrementalLoad: facts loaded after a run are visible to subsequent
// pulls (the pipeline keeps its cursors).
func TestIncrementalLoad(t *testing.T) {
	prog := MustParse(`
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`)
	sess, err := NewSession(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(MakeFact("edge", Str("a"), Str("b")))
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(sess.Output("path")); got != 1 {
		t.Fatalf("initial paths: %d", got)
	}
	// Incremental: extend the graph, then continue pulling.
	sess.Load(MakeFact("edge", Str("b"), Str("c")))
	next := sess.Stream("path")
	count := 0
	for {
		_, ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 3 { // a->b, b->c, a->c
		t.Errorf("paths after incremental load: %d, want 3", count)
	}
}

// TestParserNeverPanics fuzzes the parser with mutated fragments of valid
// programs: errors are fine, panics are not.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`own(X,Y,W), W > 0.5 -> control(X,Y).`,
		`company(X) -> keyPerson(P, X).`,
		`p(X,Y), p(X,Z) -> Y = Z.`,
		`own(X,X,W) -> #fail.`,
		`@bind("own","csv","f.csv").`,
		`dom(*), q(X) -> r(X).`,
		`a(X), V = msum(X, <X>) -> b(V).`,
	}
	rng := rand.New(rand.NewSource(77))
	chars := []byte(`(),.->=<>!#@%"XYZabc019 _`)
	for i := 0; i < 3000; i++ {
		s := seeds[rng.Intn(len(seeds))]
		buf := []byte(s)
		for k := 0; k < 1+rng.Intn(4); k++ {
			switch rng.Intn(3) {
			case 0: // mutate
				if len(buf) > 0 {
					buf[rng.Intn(len(buf))] = chars[rng.Intn(len(chars))]
				}
			case 1: // delete
				if len(buf) > 1 {
					p := rng.Intn(len(buf))
					buf = append(buf[:p], buf[p+1:]...)
				}
			case 2: // insert
				p := rng.Intn(len(buf) + 1)
				buf = append(buf[:p], append([]byte{chars[rng.Intn(len(chars))]}, buf[p:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", buf, r)
				}
			}()
			_, _ = Parse(string(buf))
		}()
	}
}

// TestPlanString renders the reasoning access plan without running.
func TestPlanString(t *testing.T) {
	prog := MustParse(`
		company(X) -> psc(X, P).
		psc(X,P), controls(X,Y) -> psc(Y,P).
		@output("psc").
	`)
	plan, err := PlanString(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reasoning access plan", "[warded]", "[linear]", "sink    psc", "source  controls"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}
