package vadalog_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	"repro/vadalog"
)

// lintTestProgram carries one diagnostic of every severity: S001 (info,
// existential P), D002 (warning, singleton X2) — enough to exercise
// Lint and Strict without being an error-level program.
const lintTestProgram = `
	company(X) -> keyPerson(P, X).
	control(X,Y), keyPerson(P,X), control(X2,Y) -> keyPerson(P,Y).
	@output("keyPerson").
`

func lintTestFacts() []vadalog.Fact {
	return []vadalog.Fact{
		vadalog.MakeFact("company", vadalog.Str("acme")),
		vadalog.MakeFact("control", vadalog.Str("acme"), vadalog.Str("sub")),
	}
}

func renderedOutput(t *testing.T, opts *vadalog.Options) string {
	t.Helper()
	r, err := vadalog.Compile(vadalog.MustParse(lintTestProgram), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Query(context.Background(), lintTestFacts())
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, f := range res.Output("keyPerson") {
		lines = append(lines, f.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestLintDoesNotChangeOutput pins the acceptance criterion that Lint
// is observational: reasoning output is byte-identical with it on or
// off, on both engines.
func TestLintDoesNotChangeOutput(t *testing.T) {
	for _, engine := range []vadalog.Engine{vadalog.EnginePipeline, vadalog.EngineChase} {
		plain := renderedOutput(t, &vadalog.Options{Engine: engine})
		linted := renderedOutput(t, &vadalog.Options{Engine: engine, Lint: true})
		if plain != linted {
			t.Errorf("engine %d: output differs with Lint on:\n--- off ---\n%s\n--- on ---\n%s", engine, plain, linted)
		}
		if plain == "" {
			t.Errorf("engine %d: no output at all", engine)
		}
	}
}

func TestDiagnosticsOnlyWithLint(t *testing.T) {
	prog := vadalog.MustParse(lintTestProgram)
	r, err := vadalog.Compile(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds := r.Diagnostics(); ds != nil {
		t.Errorf("Diagnostics without Lint = %v, want nil", ds)
	}
	r, err = vadalog.Compile(prog, &vadalog.Options{Lint: true})
	if err != nil {
		t.Fatal(err)
	}
	ds := r.Diagnostics()
	codes := map[string]bool{}
	for _, d := range ds {
		codes[d.Code] = true
	}
	if !codes["S001"] || !codes["D002"] {
		t.Errorf("Diagnostics = %v, want S001 and D002", ds)
	}
}

// TestStrictLint pins Strict semantics: warnings become compile errors,
// info-only programs still compile, and the failure message carries the
// positioned diagnostics.
func TestStrictLint(t *testing.T) {
	if _, err := vadalog.Compile(vadalog.MustParse(lintTestProgram), &vadalog.Options{Strict: true}); err == nil {
		t.Fatal("Strict compile of a program with warnings succeeded")
	} else if !strings.Contains(err.Error(), "D002") {
		t.Errorf("strict error %q does not name the failing code", err)
	}

	// Info-level findings (the existential) do not fail Strict.
	infoOnly := vadalog.MustParse(`
		company(X) -> keyPerson(P, X).
		control(X,Y), keyPerson(P,X) -> keyPerson(P,Y).
		@output("keyPerson").
	`)
	r, err := vadalog.Compile(infoOnly, &vadalog.Options{Strict: true})
	if err != nil {
		t.Fatalf("Strict compile of info-only program: %v", err)
	}
	if ds := r.Diagnostics(); len(ds) == 0 {
		t.Error("Strict compile kept no diagnostics")
	}
}
