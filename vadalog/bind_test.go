package vadalog

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/source"
	"repro/internal/storage"
	"repro/internal/term"
)

// TestCompileBindingValidation: unknown drivers, @bind+@qbind mixes,
// arity-mismatched mappings, malformed and out-of-range queries are all
// compile errors positioned at the annotation.
func TestCompileBindingValidation(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown driver",
			`@bind("p","postgres","dsn").
			 p(X) -> q(X).`,
			`unknown driver "postgres"`},
		{"bind and qbind on one predicate",
			`@bind("p","csv","a.csv").
			 @qbind("p","csv","b.csv","$1 > 0").
			 p(X) -> q(X).`,
			"both @bind and @qbind"},
		{"mapping arity mismatch",
			`@bind("p","csv","a.csv").
			 @mapping("p","a","b","c").
			 p(X,Y) -> q(X).`,
			"3 columns for arity-2 predicate"},
		{"duplicate mapping",
			`@mapping("p","a","b").
			 @mapping("p","b","a").
			 p(X,Y) -> q(X).`,
			"duplicate @mapping"},
		{"malformed query",
			`@qbind("p","csv","a.csv","$1 ~ 2").
			 p(X) -> q(X).`,
			"no comparison operator"},
		{"query column out of range",
			`@qbind("p","csv","a.csv","$5 > 1").
			 p(X,Y) -> q(X).`,
			"references column $5 of an arity-2 predicate"},
		{"qbind on output sink",
			`@output("q").
			 @qbind("q","csv","out.csv","$1 > 0").
			 p(X) -> q(X).`,
			"@output sink"},
	}
	pos := regexp.MustCompile(`vadalog: \d+:\d+: `)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := MustParse(tc.src)
			_, err := Compile(prog, nil)
			if err == nil {
				t.Fatalf("Compile succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
			if !pos.MatchString(err.Error()) {
				t.Errorf("error %q lacks a line:col position", err)
			}
			// The compile-per-run shim surfaces the same error.
			if _, err := NewSession(prog, nil); err == nil {
				t.Error("NewSession succeeded on an invalid binding")
			}
		})
	}
}

// TestMappingWideCSV: a wide CSV with a header maps onto a narrower
// predicate via @mapping — column selection and reorder.
func TestMappingWideCSV(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "people.csv")
	if err := os.WriteFile(in, []byte(
		"id,name,score,notes\n"+
			"1,ann,9,skip me\n"+
			"2,bo,4,me too\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := MustParse(`
		@bind("p","csv","` + in + `").
		@mapping("p","score","name").
		p(S,N), S > 5 -> top(N).
		@output("top").
	`)
	res, err := MustCompile(prog, nil).Query(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Output("p") // key-sorted by ApplyPost: (4,bo) before (9,ann)
	if len(p) != 2 {
		t.Fatalf("p facts: %v", p)
	}
	if p[1].Args[0] != term.Int(9) || p[1].Args[1] != term.String("ann") {
		t.Errorf("projection wrong: %v", p)
	}
	top := res.Output("top")
	if len(top) != 1 || top[0].Args[0] != term.String("ann") {
		t.Errorf("top = %v", top)
	}
}

// TestQbindPushdownRowCount: the @qbind selection runs inside the csv
// driver, so only matching rows ever surface to the engine — counted via
// the session's admitted-facts metric.
func TestQbindPushdownRowCount(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "p.csv")
	var rows strings.Builder
	matching := 0
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&rows, "r%d,%d\n", i, i*3)
		if i*3 > 10 {
			matching++
		}
	}
	if err := os.WriteFile(in, []byte(rows.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `
		p(X,N) -> q(X,N).
		@output("q").
		@qbind("p","csv","` + in + `","$2 > 10").
	`
	for _, engine := range []Engine{EnginePipeline, EngineChase} {
		res, err := MustCompile(MustParse(src), &Options{Engine: engine}).
			Query(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.Output("q")); got != matching {
			t.Errorf("engine %d: output %d rows, want %d", engine, got, matching)
		}
		// Derivations counts every admitted fact: the p rows the driver
		// surfaced plus one q per surfaced row. 10 rows are in the file;
		// only the matching ones may reach the engine.
		if res.Derivations() != 2*matching {
			t.Errorf("engine %d: %d admissions, want %d (pushdown failed?)",
				engine, res.Derivations(), 2*matching)
		}
	}
}

// TestStreamingLoadMultiChunk: inputs larger than one cursor chunk load
// completely, on both engines.
func TestStreamingLoadMultiChunk(t *testing.T) {
	n := 2*source.ChunkSize + 5
	dir := t.TempDir()
	in := filepath.Join(dir, "edge.csv")
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "n%d,n%d\n", i, i+1)
	}
	if err := os.WriteFile(in, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `
		@bind("edge","csv","` + in + `").
	`
	for _, engine := range []Engine{EnginePipeline, EngineChase} {
		res, err := MustCompile(MustParse(src), &Options{Engine: engine}).
			Query(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.Output("edge")); got != n {
			t.Errorf("engine %d: loaded %d facts, want %d", engine, got, n)
		}
	}
}

// chunkyDriver yields fixed rows in small chunks and can cancel a
// context after the first chunk is delivered — the mid-load
// cancellation harness.
type chunkyDriver struct {
	rows   [][]term.Value
	chunk  int
	cancel context.CancelFunc
	opens  int
}

func (d *chunkyDriver) Open(ctx context.Context, b SourceBinding) (RecordCursor, error) {
	d.opens++
	return &chunkyCursor{d: d}, nil
}

type chunkyCursor struct {
	d   *chunkyDriver
	pos int
}

func (c *chunkyCursor) Next(ctx context.Context) ([][]term.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.pos >= len(c.d.rows) {
		return nil, nil
	}
	end := c.pos + c.d.chunk
	if end > len(c.d.rows) {
		end = len(c.d.rows)
	}
	chunk := c.d.rows[c.pos:end]
	c.pos = end
	if c.d.cancel != nil {
		c.d.cancel() // the next between-chunk check observes it
		c.d.cancel = nil
	}
	return chunk, nil
}

func (c *chunkyCursor) Close() error { return nil }

// TestCancelMidLoadResumes: cancelling mid-load leaves a resumable
// session — the open cursor keeps its position, and a later run with a
// live context finishes the load without losing or re-reading rows
// (mirrors the chase engine's requeue-on-cancel guarantee).
func TestCancelMidLoadResumes(t *testing.T) {
	const n = 10
	rows := make([][]term.Value, n)
	for i := range rows {
		rows[i] = []term.Value{term.Int(int64(i))}
	}
	ctx, cancel := context.WithCancel(context.Background())
	drv := &chunkyDriver{rows: rows, chunk: 3, cancel: cancel}
	opts := (&Options{}).RegisterDriver("chunky", drv)
	prog := MustParse(`
		@bind("p","chunky","t").
	`)
	sess, err := NewSession(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunContext(ctx); err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if sess.Derivations() >= n {
		t.Fatalf("load did not stop at the cancellation: %d facts", sess.Derivations())
	}
	if err := sess.RunContext(context.Background()); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got := len(sess.Output("p")); got != n {
		t.Errorf("resumed session has %d facts, want %d", got, n)
	}
	if sess.Derivations() != n {
		t.Errorf("derivations = %d, want %d (rows lost or double-loaded)", sess.Derivations(), n)
	}
	if drv.opens != 1 {
		t.Errorf("cursor reopened %d times; resume must continue the same cursor", drv.opens)
	}
}

// TestMemDriverEndToEnd: Go-API rows in, reasoning, Go-API rows out,
// no filesystem involved.
func TestMemDriverEndToEnd(t *testing.T) {
	mem := DefaultMem()
	mem.Store("e2e.own", [][]term.Value{
		{term.String("a"), term.String("b"), term.Float(0.9)},
		{term.String("b"), term.String("c"), term.Float(0.8)},
		{term.String("b"), term.String("d"), term.Float(0.2)},
	})
	prog := MustParse(`
		own(X,Y,W), W > 0.5 -> control(X,Y).
		@output("control").
		@bind("own","mem","e2e.own").
		@bind("control","mem","e2e.control").
		@post("control","orderBy",1).
	`)
	if _, err := MustCompile(prog, nil).Query(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	got := mem.Rows("e2e.control")
	if len(got) != 2 {
		t.Fatalf("control rows: %v", got)
	}
	if got[0][0] != term.String("a") || got[0][1] != term.String("b") {
		t.Errorf("rows = %v", got)
	}
}

// TestMemDriverConcurrentQueries: concurrent sessions over a shared
// Reasoner with a mem-bound input are race-free (run under -race).
func TestMemDriverConcurrentQueries(t *testing.T) {
	mem := source.NewMem()
	mem.Store("own", [][]term.Value{
		{term.String("a"), term.String("b"), term.Float(0.9)},
		{term.String("b"), term.String("c"), term.Float(0.8)},
	})
	opts := (&Options{}).RegisterDriver("privmem", mem)
	prog := MustParse(`
		own(X,Y,W), W > 0.5 -> control(X,Y).
		control(X,Y), own(Y,Z,W), W > 0.5 -> control(X,Z).
		@output("control").
		@bind("own","privmem","own").
	`)
	r := MustCompile(prog, opts)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				res, err := r.Query(context.Background(), nil)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if len(res.Output("control")) != 3 {
					t.Errorf("control = %v", res.Output("control"))
					return
				}
			}
		}()
	}
	wg.Wait()
}

// dbBytes renders the session's final database byte-exactly (rows in
// admission order, retraction marks, derivation and null counters).
func dbBytes(t *testing.T, s *Session) string {
	t.Helper()
	var db *storage.Database
	switch {
	case s.pl != nil:
		db = s.pl.DB()
	case s.chRes != nil:
		db = s.chRes.DB
	default:
		t.Fatal("session has no database")
	}
	var sb strings.Builder
	for _, pred := range db.Predicates() {
		rel := db.Lookup(pred)
		fmt.Fprintf(&sb, "%s[%d]\n", pred, rel.Len())
		for i := 0; i < rel.Len(); i++ {
			m := rel.At(i)
			if m.Retracted {
				sb.WriteString("  x ")
			} else {
				sb.WriteString("    ")
			}
			sb.WriteString(m.Fact.String())
			sb.WriteByte('\n')
		}
	}
	fmt.Fprintf(&sb, "derivations=%d nulls=%d\n", s.Derivations(), db.Nulls.Count())
	return sb.String()
}

// TestStreamingMatchesEagerByteIdentical: the streaming chunked load
// produces a byte-identical final database to materializing the whole
// CSV up front and loading it as staged facts, on both engines.
func TestStreamingMatchesEagerByteIdentical(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "own.csv")
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, "c%d,c%d,0.%d\n", i%20, (i+7)%20, 1+i%9)
	}
	if err := os.WriteFile(in, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	rules := `
		own(X,Y,W), W > 0.5 -> control(X,Y).
		control(X,Y), own(Y,Z,W), W > 0.5 -> control(X,Z).
		seed(company). seed(X) -> exists(X).
		@output("control").
	`
	bound := MustParse(rules + `@bind("own","csv","` + in + `").`)
	plain := MustParse(rules)
	for _, engine := range []Engine{EnginePipeline, EngineChase} {
		opts := &Options{Engine: engine}
		streaming, err := NewSession(bound, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := streaming.Run(); err != nil {
			t.Fatal(err)
		}
		facts, err := ReadCSV("own", in)
		if err != nil {
			t.Fatal(err)
		}
		eager, err := NewSession(plain, opts)
		if err != nil {
			t.Fatal(err)
		}
		eager.Load(facts...)
		if err := eager.Run(); err != nil {
			t.Fatal(err)
		}
		sBytes, eBytes := dbBytes(t, streaming), dbBytes(t, eager)
		if sBytes != eBytes {
			t.Errorf("engine %d: streaming and eager databases diverge (%d vs %d bytes)",
				engine, len(sBytes), len(eBytes))
		}
	}
}

// TestJSONLEndToEnd: jsonl input and output bindings round-trip typed
// values through a reasoning run.
func TestJSONLEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "own.jsonl")
	out := filepath.Join(dir, "big.jsonl")
	if err := os.WriteFile(in, []byte(
		`["a", 5]`+"\n"+`["b", 11]`+"\n"+`["c", 20]`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := MustParse(`
		p(X,N), N > 10 -> big(X,N).
		@output("big").
		@bind("p","jsonl","` + in + `").
		@bind("big","jsonl","` + out + `").
		@post("big","orderBy",1).
	`)
	if _, err := MustCompile(prog, nil).Query(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	rows, err := source.ReadAll(context.Background(), source.JSONL{},
		source.Binding{Pred: "big", Target: out})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != term.String("b") || rows[0][1] != term.Int(11) {
		t.Errorf("rows = %v", rows)
	}
}

// TestImportedNullsDoNotCollide: loading "_:nK" cells reserves their
// ids, so an existential rule firing afterwards mints a distinct null
// instead of reusing an imported identity.
func TestImportedNullsDoNotCollide(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "p.csv")
	if err := os.WriteFile(in, []byte("_:n1,a\n_:n7,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := MustParse(`
		p(N,X) -> q(Z,X).
		@output("q").
		@bind("p","csv","` + in + `").
	`)
	res, err := MustCompile(prog, nil).Query(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[term.Value]bool{term.Null(1): true, term.Null(7): true}
	for _, f := range res.Output("q") {
		z := f.Args[0]
		if !z.IsNull() {
			t.Fatalf("existential head not a null: %v", f)
		}
		if seen[z] {
			t.Fatalf("minted null %v collides with an imported id", z)
		}
	}
}

// TestLoadedNullsDoNotCollide: the Session.Load path (ReadCSV facts,
// the CLI -facts flag) reserves imported null ids exactly like the
// @bind streaming path does.
func TestLoadedNullsDoNotCollide(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "p.csv")
	if err := os.WriteFile(in, []byte("_:n1,a\n_:n7,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	facts, err := ReadCSV("p", in)
	if err != nil {
		t.Fatal(err)
	}
	if !facts[0].Args[0].IsNull() {
		t.Fatalf("ParseCell did not materialize the null: %v", facts[0])
	}
	prog := MustParse(`
		p(N,X) -> q(Z,X).
		@output("q").
	`)
	res, err := MustCompile(prog, nil).Query(context.Background(), facts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Output("q") {
		if z := f.Args[0]; z == term.Null(1) || z == term.Null(7) {
			t.Fatalf("minted null %v collides with a loaded id", z)
		}
	}
}

// TestSessionCloseAfterCancel: abandoning a cancelled load through
// Close releases the kept cursor; a completed session's Close is a
// no-op.
func TestSessionCloseAfterCancel(t *testing.T) {
	rows := make([][]term.Value, 10)
	for i := range rows {
		rows[i] = []term.Value{term.Int(int64(i))}
	}
	ctx, cancel := context.WithCancel(context.Background())
	drv := &chunkyDriver{rows: rows, chunk: 3, cancel: cancel}
	opts := (&Options{}).RegisterDriver("chunky2", drv)
	sess, err := NewSession(MustParse(`@bind("p","chunky2","t").`), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.RunContext(ctx); err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if sess.cur == nil {
		t.Fatal("cancelled load kept no cursor")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if sess.cur != nil {
		t.Fatal("Close left the cursor open")
	}
	if err := sess.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestWriteCSVRoundTripTyped: the write→read identity at the public API
// level — a string that looks like an int comes back a string.
func TestWriteCSVRoundTripTyped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	facts := []Fact{
		MakeFact("p", Str("42"), Int(42), Flt(1.0), Str(""), Bool(true)),
	}
	if err := WriteCSV(path, facts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("p", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("facts = %v", got)
	}
	for i, want := range facts[0].Args {
		if got[0].Args[i] != want {
			t.Errorf("arg %d: wrote %v (%v), read %v (%v)",
				i, want, want.Kind(), got[0].Args[i], got[0].Args[i].Kind())
		}
	}
}
