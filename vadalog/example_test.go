package vadalog_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/vadalog"
)

// ExampleRegisterDriver binds a predicate to the built-in in-memory
// record manager: the Go API stores rows under a table name, the
// program @binds them, and a custom driver could be plugged in the same
// way (RegisterDriver for process-wide, Options.RegisterDriver for
// per-program drivers).
func ExampleRegisterDriver() {
	mem := vadalog.DefaultMem() // registered as driver "mem"
	mem.Store("ownership", [][]vadalog.Value{
		{vadalog.Str("a"), vadalog.Str("b"), vadalog.Flt(0.6)},
		{vadalog.Str("b"), vadalog.Str("c"), vadalog.Flt(0.2)},
	})
	prog := vadalog.MustParse(`
		own(X,Y,W), W > 0.5 -> control(X,Y).
		@output("control").
		@bind("own","mem","ownership").
	`)
	res, err := vadalog.MustCompile(prog, nil).Query(context.Background(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.Output("control") {
		fmt.Println(f)
	}
	// Output:
	// control(a,b)
}

// ExampleCompile_qbind pushes a query binding into the record manager:
// the @qbind selection "$2 > 10" is evaluated inside the csv driver (or
// post-filtered for drivers without pushdown), so non-matching rows
// never reach the reasoning engine.
func ExampleCompile_qbind() {
	dir, err := os.MkdirTemp("", "vadalog-qbind")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "m.csv")
	if err := os.WriteFile(path, []byte("a,5\nb,11\nc,20\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	prog := vadalog.MustParse(fmt.Sprintf(`
		m(X,N) -> big(X,N).
		@output("big").
		@qbind("m","csv",%q,"$2 > 10").
		@post("big","orderBy",1).
	`, path))
	res, err := vadalog.MustCompile(prog, nil).Query(context.Background(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.Output("big") {
		fmt.Println(f)
	}
	// Output:
	// big(b,11)
	// big(c,20)
}

// ExampleCompile shows the compile-once serving pattern: the program is
// analyzed, rewritten and planned a single time, then the shared Reasoner
// answers any number of (possibly concurrent) queries over different
// databases.
func ExampleCompile() {
	prog := vadalog.MustParse(`
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`)
	reasoner, err := vadalog.Compile(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, edges := range [][]vadalog.Fact{
		{vadalog.MakeFact("edge", vadalog.Str("a"), vadalog.Str("b"))},
		{
			vadalog.MakeFact("edge", vadalog.Str("a"), vadalog.Str("b")),
			vadalog.MakeFact("edge", vadalog.Str("b"), vadalog.Str("c")),
		},
	} {
		res, err := reasoner.Query(context.Background(), edges)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d edges -> %d paths\n", len(edges), len(res.Output("path")))
	}
	// Output:
	// 1 edges -> 1 paths
	// 2 edges -> 3 paths
}

// ExampleReasoner_Query runs one reasoning task (Example 2 of the paper:
// company control through majority ownership) and reads the result.
func ExampleReasoner_Query() {
	prog := vadalog.MustParse(`
		own(X,Y,W), W > 0.5 -> control(X,Y).
		control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).
		@output("control").
	`)
	reasoner, err := vadalog.Compile(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := reasoner.Query(context.Background(), []vadalog.Fact{
		vadalog.MakeFact("own", vadalog.Str("a"), vadalog.Str("b"), vadalog.Flt(0.6)),
		vadalog.MakeFact("own", vadalog.Str("b"), vadalog.Str("c"), vadalog.Flt(0.7)),
	})
	if err != nil {
		log.Fatal(err)
	}
	var lines []string
	for _, f := range res.Output("control") {
		lines = append(lines, f.String())
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// control(a,b)
	// control(a,c)
	// control(b,c)
}

// ExampleReasoner_Stream consumes derived facts lazily with a
// range-over-func iterator: the pipeline engine derives each fact on
// demand (the volcano next() of the paper), so the loop may stop early
// without materializing the full answer.
func ExampleReasoner_Stream() {
	prog := vadalog.MustParse(`
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`)
	reasoner, err := vadalog.Compile(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	facts := []vadalog.Fact{
		vadalog.MakeFact("edge", vadalog.Str("a"), vadalog.Str("b")),
		vadalog.MakeFact("edge", vadalog.Str("b"), vadalog.Str("c")),
		vadalog.MakeFact("edge", vadalog.Str("c"), vadalog.Str("d")),
	}
	n := 0
	for f, err := range reasoner.Stream(context.Background(), facts, "path") {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(f)
		n++
		if n == 4 { // stop early: the remaining paths are never derived
			break
		}
	}
	// Output:
	// path(a,b)
	// path(a,c)
	// path(b,c)
	// path(a,d)
}

// ExampleReasoner_Diagnostics compiles with static analysis enabled and
// reads the positioned findings. Lint is purely observational — the
// reasoning output is byte-identical with it on or off; Options.Strict
// additionally turns warnings into compile errors.
func ExampleReasoner_Diagnostics() {
	prog := vadalog.MustParse(`company(X) -> keyPerson(P, X).
control(X,Y), keyPerson(P,X), control(X2,Y) -> keyPerson(P,Y).
@output("keyPerson").
`)
	reasoner, err := vadalog.Compile(prog, &vadalog.Options{Lint: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range reasoner.Diagnostics() {
		fmt.Println(d)
	}
	// Output:
	// 1:25: S001: head variable P has no body occurrence: existentially quantified (each firing mints a labelled null)
	// 2:39: D002: variable X2 occurs only once in the rule (typo? use _ to ignore a position)
}
