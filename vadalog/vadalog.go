// Package vadalog is the public API of this Vadalog system reproduction:
// a Datalog±-based reasoner for knowledge graphs implementing Warded
// Datalog± with the termination strategy of Bellomarini, Sallinger and
// Gottlob (VLDB 2018).
//
// A reasoning task is a program (rules + annotations) compiled once into
// an immutable, goroutine-shareable Reasoner and then executed over
// changing databases of facts:
//
//	prog, err := vadalog.Parse(`
//	    own(X,Y,W), W > 0.5 -> control(X,Y).
//	    control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).
//	    @output("control").
//	`)
//	r, err := vadalog.Compile(prog, nil) // analysis+rewrite+plans, once
//	res, err := r.Query(ctx, []vadalog.Fact{
//	    vadalog.MakeFact("own", vadalog.Str("a"), vadalog.Str("b"), vadalog.Flt(0.6)),
//	})
//	for _, f := range res.Output("control") { ... }
//
// Query calls on a shared Reasoner are safe to issue concurrently and
// honor context cancellation mid-fixpoint. Derived facts can also be
// consumed lazily with Reasoner.Stream (a range-over-func iterator), and
// incremental multi-step workloads use Reasoner.NewSession. NewSession
// (package level) and Reason are the original compile-per-run entry
// points, kept as thin shims over Compile.
//
// The default engine is the streaming pipeline of the paper's Sec. 4; the
// reference chase engine and the baseline termination policies of the
// evaluation are selectable through Options.
package vadalog

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/baseline"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/lint"
	"repro/internal/parser"
	"repro/internal/pipeline"
	"repro/internal/term"
)

// Fact is a ground atom over constants and labelled nulls.
type Fact = ast.Fact

// Value is a typed Vadalog runtime value.
type Value = term.Value

// Program is a parsed Vadalog program.
type Program = ast.Program

// Convenience constructors for values and facts.
var (
	Str  = term.String
	Int  = term.Int
	Flt  = term.Float
	Bool = term.Bool
)

// MakeFact builds a fact.
func MakeFact(pred string, args ...Value) Fact { return ast.NewFact(pred, args...) }

// Engine selects the execution engine.
type Engine int

// Engines.
const (
	// EnginePipeline is the streaming pull pipeline (paper Sec. 4); the
	// default.
	EnginePipeline Engine = iota
	// EngineChase is the reference breadth-first chase (Algorithm 2).
	EngineChase
)

// Policy selects the termination policy.
type Policy int

// Termination policies.
const (
	// PolicyFull is Algorithm 1: warded forest + lifted linear forest.
	PolicyFull Policy = iota
	// PolicyNoSummary is Algorithm 1 with horizontal pruning disabled
	// (ablation).
	PolicyNoSummary
	// PolicyTrivialIso is the exhaustive isomorphism check of Sec. 6.6.
	PolicyTrivialIso
	// PolicyRestricted is the restricted-chase homomorphism check
	// (Graal/PDQ/LLunatic-like).
	PolicyRestricted
	// PolicySkolem is the unrestricted Skolem chase (DLV/RDFox-like).
	PolicySkolem
)

// Options tunes a session. The zero value (or nil) gives the production
// configuration: pipeline engine, full termination strategy, default
// rewriting.
type Options struct {
	Engine Engine
	Policy Policy
	// MaxDerivations caps admitted facts (0 = 10M). With baseline
	// policies this is the safeguard against genuine non-termination.
	MaxDerivations int
	// BufferCapacity bounds the pipeline buffer cache (bytes; 0 = off).
	BufferCapacity int64
	// RequireWarded fails session creation when the program is not warded.
	RequireWarded bool
	// DisableRewriting skips the logic optimizer (harmful joins are then
	// evaluated directly over Skolem nulls; termination guarantees weaken).
	DisableRewriting bool
	// DisableDynamicIndex turns off the slot machine join's dynamic
	// indexing (ablation benchmarks).
	DisableDynamicIndex bool
	// DisablePlanner turns off the cost-based join planner (ablation
	// benchmarks): rules run the static schedules compiled into them and
	// common-subexpression body sharing is off. Admitted facts are
	// byte-identical either way; only evaluation order and speed change.
	DisablePlanner bool
	// Lint collects the structured diagnostics of the static analysis
	// layer (wardedness, stratification, arity, dead rules, type
	// conflicts — see Reasoner.Diagnostics) at compile time. Lint is
	// read-only: engine output is byte-identical with it on or off.
	Lint bool
	// Strict implies Lint and additionally fails Compile when any
	// diagnostic of Warning severity or above is reported, not just the
	// errors the engines reject on their own.
	Strict bool
	// Parallelism sets how many worker goroutines the chase engine uses to
	// match each delta batch against a frozen storage epoch; 0 (the
	// default) selects runtime.GOMAXPROCS(0) and 1 evaluates batches on
	// the calling goroutine. Candidate facts are always admitted serially
	// in a canonical order, so every setting yields a byte-identical final
	// database. The streaming pipeline engine is a single-goroutine pull
	// machine and ignores this option.
	Parallelism int
	// Shards sets how many duplicate-table shards each relation keeps —
	// the partition count of the parallel admission dedup pre-pass. For
	// the chase engine 0 selects min(GOMAXPROCS, 8); for the pipeline
	// engine 0 or 1 keeps the classic fully-serial admission. Rounded up
	// to a power of two. The final database is byte-identical for every
	// setting (sharding only parallelizes duplicate detection; admission
	// itself stays serial in canonical order).
	Shards int
	// PhaseTiming makes the engines accumulate the wall-time split
	// between matching, the dedup pre-pass and admission, reported by
	// Session.PhaseStats (the chase engine always collects it; the flag
	// enables the pipeline's per-firing clocks).
	PhaseTiming bool
	// Drivers overlays the process-global record-manager registry for
	// programs compiled with these options: @bind/@qbind driver names
	// resolve through Drivers first, then through the registry
	// (RegisterDriver / source.Register). Use the RegisterDriver method
	// to populate it.
	Drivers map[string]Driver
	// Retry tunes how sessions retry transient source I/O failures while
	// staging @bind'ed inputs (see RetryPolicy and IsTransient). nil
	// selects the default policy (4 attempts, 5ms base backoff doubling
	// to a 500ms cap); MaxAttempts: 1 disables retrying.
	Retry *RetryPolicy
}

// RegisterDriver makes d available to programs compiled with these
// options under name, shadowing any registry driver of the same name.
// It returns o for chaining.
func (o *Options) RegisterDriver(name string, d Driver) *Options {
	if o.Drivers == nil {
		o.Drivers = make(map[string]Driver)
	}
	o.Drivers[name] = d
	return o
}

// ErrInconsistent is returned when a negative constraint fires or an EGD
// equates distinct constants.
var ErrInconsistent = errors.New("vadalog: knowledge base is inconsistent")

// ErrBudget is returned when the derivation budget is exhausted.
var ErrBudget = errors.New("vadalog: derivation budget exceeded")

// Parse parses a Vadalog program in the surface syntax of this repository
// (see README).
func Parse(src string) (*Program, error) { return parser.Parse(src) }

// ParseFile reads and parses a Vadalog program from path; syntax errors
// are labelled file:line:col.
func ParseFile(path string) (*Program, error) { return parser.ParseFile(path) }

// MustParse parses src and panics on error.
func MustParse(src string) *Program { return parser.MustParse(src) }

// Diagnostic is one structured static-analysis finding: a stable code
// (W001 wardedness … T003 aggregate misuse, see package lint), a
// severity, a source position and a message.
type Diagnostic = lint.Diagnostic

// Severity ranks a Diagnostic.
type Severity = lint.Severity

// Diagnostic severities.
const (
	SeverityInfo    = lint.Info
	SeverityWarning = lint.Warning
	SeverityError   = lint.Error
)

// Lint runs every static check over prog and returns the diagnostics
// sorted by source position. file, which may be empty, labels the
// positions. Lint never mutates prog.
func Lint(prog *Program, file string) []Diagnostic {
	return lint.Check(prog, lint.Options{File: file})
}

// Session is one reasoning session over a program: per-run state (facts,
// database, strategy) layered over a compiled Reasoner. Sessions are for
// use by a single goroutine; to serve concurrent requests share the
// Reasoner and give each request its own Session (or just use Query).
type Session struct {
	opts    Options
	prog    *ast.Program
	pl      *pipeline.Session
	ch      *chase.Engine
	chRes   *chase.Result
	pending []ast.Fact
	ran     bool

	// Streaming-load state: the compile-time-resolved bindings shared
	// with the Reasoner, the index of the input binding currently being
	// drained, its open cursor (kept across a cancelled load so the
	// session resumes where it stopped), and the done flags.
	binds      []boundIO
	bindIdx    int
	cur        RecordCursor
	chunk      [][]term.Value // pulled but not yet admitted (engine load failed)
	loaded     bool           // every @bind'ed input has been drained (exactly once)
	progLoaded bool           // inline program facts admitted ahead of bound inputs
}

// NewSession compiles prog and opens a session over it in one step (the
// original compile-per-run entry point). opts == nil selects the
// defaults. To amortize compilation across runs, use Compile once and
// Reasoner.NewSession per run.
func NewSession(prog *Program, opts *Options) (*Session, error) {
	r, err := Compile(prog, opts)
	if err != nil {
		return nil, err
	}
	return r.NewSession(), nil
}

func policyFactory(p Policy) (func(*analysis.Result) core.Policy, bool) {
	switch p {
	case PolicyNoSummary:
		return nil, true
	case PolicyTrivialIso:
		return func(res *analysis.Result) core.Policy { return baseline.NewTrivialIso(res) }, false
	case PolicyRestricted:
		return func(res *analysis.Result) core.Policy { return baseline.NewRestrictedHom(res) }, false
	case PolicySkolem:
		return func(res *analysis.Result) core.Policy { return baseline.NewSkolemChase(res) }, false
	default:
		return nil, false
	}
}

// Load stages facts for the run. Labelled nulls among the facts (e.g.
// "_:nK" cells materialized by ReadCSV) reserve their ids in the
// session's null factory, so nulls the run mints never collide with
// loaded ones.
func (s *Session) Load(facts ...Fact) {
	for _, f := range facts {
		for _, v := range f.Args {
			if v.IsNull() {
				s.nulls().Reserve(v.NullID())
			}
		}
	}
	if s.pl != nil && s.ran {
		s.pl.Load(facts...) // incremental load into a running pipeline
		return
	}
	s.pending = append(s.pending, facts...)
}

// Run executes the reasoning task to completion: it streams any
// @bind'ed inputs and the staged facts into the engine, drains it,
// enforces constraints and EGDs, and writes @bind'ed outputs. It is
// equivalent to RunContext with a background context.
func (s *Session) Run() error { return s.RunContext(context.Background()) }

// RunContext is Run with cancellation: cancelling ctx aborts the
// streaming load between chunks or the reasoning fixpoint between rule
// firings and returns ctx's error; the session stays consistent and a
// later call with a live context resumes (an interrupted load continues
// at its cursor, losing and re-reading nothing). Bound inputs and staged
// facts are loaded exactly once per session; further calls only resume
// the engine (a no-op unless facts were loaded in between).
//
// A run cut short by a resource bound — the derivation budget or ctx's
// deadline — returns a *PartialResult: the facts derived so far plus the
// resumable session (see PartialResult). Transient source I/O failures
// are retried per Options.Retry before surfacing; when one does surface
// it still satisfies IsTransient and the session stays resumable at the
// failed cursor. A crash recovered inside an engine surfaces as a
// *PanicError with the engine rolled back to a consistent, resumable
// boundary.
func (s *Session) RunContext(ctx context.Context) error {
	if err := s.stage(ctx); err != nil {
		// mapErr: a budget can already strike while loading bound inputs,
		// and it must surface as the same typed PartialResult as one
		// striking mid-fixpoint.
		return s.wrapPartial(mapErr(err))
	}
	facts := s.pending
	s.pending = nil
	s.ran = true
	switch {
	case s.pl != nil:
		if err := s.pl.Run(ctx, facts); err != nil {
			// Restore the staged facts: a resumed run re-feeds them, and
			// since loading skips duplicates nothing is admitted twice.
			s.pending = facts
			return s.wrapPartial(mapErr(err))
		}
	default:
		res, err := s.ch.Run(ctx, facts)
		if err != nil {
			s.pending = facts
			return s.wrapPartial(mapErr(err))
		}
		s.chRes = res
	}
	return s.wrapPartial(s.writeBoundOutputs(ctx))
}

func mapErr(err error) error {
	switch {
	case errors.Is(err, pipeline.ErrInconsistent), errors.Is(err, chase.ErrInconsistent):
		return fmt.Errorf("%w: %v", ErrInconsistent, err)
	case errors.Is(err, pipeline.ErrBudget), errors.Is(err, chase.ErrBudget):
		return fmt.Errorf("%w: %v", ErrBudget, err)
	default:
		return err
	}
}

// Output returns the facts of pred with @post directives applied.
//
// Contract: before the session has been run, Output returns nil (there is
// no result yet). Use Result, which fails with ErrNotRun instead of
// silently returning nothing, when "not run yet" must be distinguishable
// from "empty answer".
func (s *Session) Output(pred string) []Fact {
	switch {
	case s.pl != nil:
		return s.pl.Output(pred)
	case s.chRes != nil:
		return s.chRes.Output(pred)
	default:
		return nil
	}
}

// Explain renders the session's access plan annotated, per rule and per
// delta-pinned body atom, with the join order the cost-based planner
// chooses and the estimates that drove it, against the session's
// statistics at call time: before Run the estimates reflect an empty
// database, after Run the orders the fixpoint converged on. With
// Options.DisablePlanner the plain plan is rendered.
func (s *Session) Explain() string {
	if s.pl != nil {
		return s.pl.Explain()
	}
	return s.ch.Explain()
}

// Result returns the session's materialized reasoning result, or ErrNotRun
// when the session has not been run yet.
func (s *Session) Result() (*Result, error) {
	res := &Result{prog: s.prog}
	switch {
	case s.pl != nil && s.ran:
		pl := s.pl
		res.output = pl.Output
		res.derivations = pl.Derivations()
		res.strategy = pl.Strategy()
	case s.chRes != nil:
		chRes := s.chRes
		res.output = chRes.Output
		res.derivations = chRes.Derivations
		res.strategy = chRes.Strategy
	default:
		return nil, ErrNotRun
	}
	return res, nil
}

// Facts pulls the facts of pred lazily as a range-over-func iterator: the
// pipeline engine derives them on demand (volcano next()); the chase
// engine materializes on the first pull and then iterates (facts loaded
// after that point require a new session). The sequence yields (fact,
// nil) pairs until exhaustion; a reasoning failure or context
// cancellation yields one final (zero fact, err) pair and stops.
func (s *Session) Facts(ctx context.Context, pred string) iter.Seq2[Fact, error] {
	return func(yield func(Fact, error) bool) {
		if s.pl != nil {
			if !s.ran {
				if err := s.stage(ctx); err != nil {
					yield(Fact{}, err)
					return
				}
				s.pl.Load(s.pending...)
				s.pending = nil
				s.ran = true
			}
			for n := 0; ; n++ {
				f, ok, err := s.pl.Next(ctx, pred, n)
				if err != nil {
					yield(Fact{}, mapErr(err))
					return
				}
				if !ok {
					return
				}
				if !yield(f, nil) {
					return
				}
			}
		}
		if s.chRes == nil {
			if err := s.RunContext(ctx); err != nil {
				yield(Fact{}, err)
				return
			}
		}
		for _, f := range s.chRes.Output(pred) {
			if !yield(f, nil) {
				return
			}
		}
	}
}

// Stream pulls facts of pred lazily through the pipeline (volcano next());
// it falls back to materialized iteration on the chase engine. The
// returned function yields (fact, true) until exhaustion.
//
// Stream is the original closure-based streaming API; new code should
// range over Session.Facts or Reasoner.Stream instead.
func (s *Session) Stream(pred string) func() (Fact, bool, error) {
	if s.pl != nil {
		if !s.ran {
			if err := s.stage(context.Background()); err != nil {
				return func() (Fact, bool, error) { return Fact{}, false, err }
			}
			s.pl.Load(s.pending...)
			s.pending = nil
			s.ran = true
		}
		n := 0
		return func() (Fact, bool, error) {
			f, ok, err := s.pl.Next(context.Background(), pred, n)
			if ok {
				n++
			}
			return f, ok, mapNilErr(err)
		}
	}
	var facts []Fact
	i := 0
	loaded := false
	return func() (Fact, bool, error) {
		if !loaded {
			if s.chRes == nil {
				if err := s.Run(); err != nil {
					return Fact{}, false, err
				}
			}
			facts = s.chRes.Output(pred)
			loaded = true
		}
		if i >= len(facts) {
			return Fact{}, false, nil
		}
		f := facts[i]
		i++
		return f, true, nil
	}
}

func mapNilErr(err error) error {
	if err == nil {
		return nil
	}
	return mapErr(err)
}

// Derivations reports the number of admitted facts (EDB included).
//
// Contract: before the session has been run it reports the facts admitted
// so far (0 when nothing is loaded); see Result / ErrNotRun to tell "not
// run" apart from "derived nothing".
func (s *Session) Derivations() int {
	switch {
	case s.pl != nil:
		return s.pl.Derivations()
	case s.chRes != nil:
		return s.chRes.Derivations
	case s.ch != nil:
		// No materialized result yet — a run interrupted by a bound or
		// fault: report the engine's live count, which is what a
		// PartialResult's Derivations must reflect.
		return s.ch.Derivations()
	default:
		return 0
	}
}

// StrategyStats returns the termination-strategy counters when the full
// strategy is in use.
func (s *Session) StrategyStats() (core.Stats, bool) {
	var pol core.Policy
	switch {
	case s.pl != nil:
		pol = s.pl.Strategy()
	case s.chRes != nil:
		pol = s.chRes.Strategy
	}
	if st, ok := pol.(*core.Strategy); ok {
		return st.Stats(), true
	}
	return core.Stats{}, false
}

// PhaseStats reports the cumulative wall-time split of the session's
// evaluation phases: matching, the sharded dedup pre-pass and serial
// admission. The chase engine always collects it; the pipeline engine
// only under Options.PhaseTiming (all-zero otherwise, with fused firings
// counted as match time when enabled).
func (s *Session) PhaseStats() (match, prepass, admit time.Duration) {
	if s.pl != nil {
		return s.pl.PhaseStats()
	}
	return s.ch.PhaseStats()
}

// Shards reports the resolved duplicate-table shard count the session's
// engine runs with (Options.Shards after defaulting and power-of-two
// rounding).
func (s *Session) Shards() int {
	if s.pl != nil {
		return s.pl.Shards()
	}
	return s.ch.Shards()
}

// Reason is the one-shot entry point: compile prog, run it over facts and
// collect the outputs of the @output predicates (all IDB predicates when
// none are declared). It is a shim over Compile + Query.
func Reason(prog *Program, facts []Fact, opts *Options) (map[string][]Fact, error) {
	r, err := Compile(prog, opts)
	if err != nil {
		return nil, err
	}
	res, err := r.Query(context.Background(), facts)
	if err != nil {
		return nil, err
	}
	return res.All(), nil
}

// PlanString compiles prog with the default options and renders its
// reasoning access plan (the logic compiler's filter pipeline, paper
// Sec. 4) without running it.
func PlanString(prog *Program) (string, error) {
	c, err := pipeline.Compile(prog, pipeline.Options{})
	if err != nil {
		return "", err
	}
	return c.Plan(), nil
}

// Check analyzes prog and returns a wardedness report without running it.
func Check(prog *Program) *Report {
	res := analysis.Analyze(prog)
	st := analysis.ComputeStats(prog)
	rep := &Report{Warded: res.Warded, Violations: res.Violations, Stats: st}
	g := analysis.BuildDependencyGraph(prog)
	rep.Recursive = len(g.RecursivePreds()) > 0
	if _, err := analysis.Stratify(prog); err != nil {
		rep.Stratified = false
		rep.Violations = append(rep.Violations, err.Error())
	} else {
		rep.Stratified = true
	}
	return rep
}

// Report is the static analysis summary of a program.
type Report struct {
	Warded     bool
	Stratified bool
	Recursive  bool
	Violations []string
	Stats      analysis.Stats
}

// String renders the report for CLI display.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "warded: %v, stratified: %v, recursive: %v\n", r.Warded, r.Stratified, r.Recursive)
	fmt.Fprintf(&sb, "rules: %d linear, %d join (%d mixed, %d ward, %d plain, %d harmful), %d with existentials\n",
		r.Stats.LinearRules, r.Stats.JoinRules, r.Stats.MixedJoins, r.Stats.HarmlessWithWard,
		r.Stats.HarmlessNoWard, r.Stats.HarmfulJoins, r.Stats.ExistentialRules)
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "violation: %s\n", v)
	}
	return sb.String()
}
