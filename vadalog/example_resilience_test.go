package vadalog_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/vadalog"
)

// ExamplePartialResult: a run cut short by a resource bound — the
// derivation budget here, a context deadline just the same — returns a
// typed *PartialResult instead of discarding the work. The facts derived
// so far are readable immediately, and the session behind it resumes:
// raise the budget (or supply a fresh context) and Resume completes the
// fixpoint without re-deriving what the interrupted run already
// admitted.
func ExamplePartialResult() {
	prog := vadalog.MustParse(`
		edge(X,Y) -> path(X,Y).
		edge(X,Y), path(Y,Z) -> path(X,Z).
		@output("path").
	`)
	s, err := vadalog.NewSession(prog, &vadalog.Options{MaxDerivations: 25})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Load(vadalog.MakeFact("edge",
			vadalog.Str(fmt.Sprintf("n%d", i)), vadalog.Str(fmt.Sprintf("n%d", i+1))))
	}

	err = s.Run()
	var pr *vadalog.PartialResult
	if !errors.As(err, &pr) {
		log.Fatal(err)
	}
	fmt.Printf("budget hit: %v, complete: %v, partial facts: %v\n",
		errors.Is(err, vadalog.ErrBudget), pr.Quiesced(), len(pr.Output("path")) > 0)

	pr.Session().SetMaxDerivations(0) // back to the default cap
	if err := pr.Resume(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed: %d paths, complete: %v\n", len(s.Output("path")), s.Quiesced())
	// Output:
	// budget hit: true, complete: false, partial facts: true
	// resumed: 210 paths, complete: true
}

// outageDriver is a record manager whose cursor fails twice before every
// successful pull — a stand-in for a flaky network source. Wrapping the
// failure in TransientError is what opts it into the retry layer.
type outageDriver struct{ outages int }

type outageCursor struct {
	d     *outageDriver
	fails int
	done  bool
}

func (d *outageDriver) Open(ctx context.Context, b vadalog.SourceBinding) (vadalog.RecordCursor, error) {
	return &outageCursor{d: d}, nil
}

func (c *outageCursor) Next(ctx context.Context) ([][]vadalog.Value, error) {
	if c.fails < 2 {
		c.fails++
		c.d.outages++
		return nil, &vadalog.TransientError{Err: fmt.Errorf("connection reset")}
	}
	c.fails = 0
	if c.done {
		return nil, nil
	}
	c.done = true
	return [][]vadalog.Value{
		{vadalog.Str("a"), vadalog.Str("b")},
		{vadalog.Str("b"), vadalog.Str("c")},
	}, nil
}

func (c *outageCursor) Close() error { return nil }

// ExampleRetryPolicy: transient source failures are retried in place
// with capped exponential backoff. The failed pull consumed nothing, so
// a retry resumes at the exact row the outage struck — the run below
// survives two outages per pull without losing, re-reading or
// duplicating a single row.
func ExampleRetryPolicy() {
	d := &outageDriver{}
	opts := (&vadalog.Options{
		Retry: &vadalog.RetryPolicy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 1},
	}).RegisterDriver("flaky", d)
	prog := vadalog.MustParse(`
		edge(X,Y) -> path(X,Y).
		edge(X,Y), path(Y,Z) -> path(X,Z).
		@output("path").
		@bind("edge","flaky","remote").
		@post("path","orderBy",1,2).
	`)
	res, err := vadalog.MustCompile(prog, opts).Query(context.Background(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outages survived: %d\n", d.outages)
	for _, f := range res.Output("path") {
		fmt.Println(f)
	}
	// Output:
	// outages survived: 4
	// path(a,b)
	// path(a,c)
	// path(b,c)
}
