package vadalog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

// The chaos suite drives the transitive closure of a 200-edge graph
// (4 chains of 50 edges — big enough that every chase delta batch
// crosses the worker fan-out threshold) through every registered fault
// site, on both engines and at chase worker counts 1 and 4, and asserts
// the resilience contract: an injected failure either heals in place
// (transparent source retry) or surfaces as a typed, resumable error,
// and after disarming the fault a resumed session converges to a final
// database canonically identical to an unfaulted run's.
//
// Runs are deterministic: hit positions derive from the per-site hit
// counts of a counting run plus a seed (REPRO_FAULT="seed:N", default
// 1), so a failing configuration reproduces exactly.

const chaosChains, chaosChainLen = 4, 50

// chaosProgram writes the edge CSV under dir and returns the @bind'ed
// transitive-closure program over it.
func chaosProgram(t *testing.T, dir string) string {
	t.Helper()
	var rows []string
	for c := 0; c < chaosChains; c++ {
		for i := 0; i < chaosChainLen; i++ {
			rows = append(rows, fmt.Sprintf("n%d_%d,n%d_%d", c, i, c, i+1))
		}
	}
	path := filepath.Join(dir, "edges.csv")
	if err := os.WriteFile(path, []byte(strings.Join(rows, "\n")+"\n"), 0o644); err != nil {
		t.Fatalf("write edges: %v", err)
	}
	return fmt.Sprintf(`
		@bind("edge","csv",%q).
		edge(X,Y) -> tc(X,Y).
		edge(X,Y), tc(Y,Z) -> tc(X,Z).
		@output("tc").
	`, path)
}

// chaosDigest canonicalizes an output: sorted fact renderings, so the
// comparison is insensitive to admission order (a requeued batch may
// legitimately reorder rows).
func chaosDigest(facts []Fact) string {
	strs := make([]string, len(facts))
	for i, f := range facts {
		strs[i] = f.String()
	}
	sort.Strings(strs)
	return strings.Join(strs, "\n")
}

func chaosWant() int { return chaosChains * chaosChainLen * (chaosChainLen + 1) / 2 }

// chaosMix derives a deterministic per-configuration value from the
// suite seed (splitmix64-style), used to pick the hit a fault strikes
// at.
func chaosMix(seed uint64, parts ...string) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 27
		}
	}
	h *= 0x94d049bb133111eb
	return h ^ h>>31
}

// chaosMode is one way of arming a site in the matrix.
type chaosMode struct {
	name string
	// term renders the plan term for a hit position.
	term func(site string, hit uint64) string
	// transparent: the run must succeed as if no fault fired (the retry
	// layer absorbs it). Otherwise the run must fail with a typed error.
	transparent bool
	// wantPanic: the surfaced error must be a *PanicError; wantTransient:
	// it must satisfy IsTransient.
	wantPanic     bool
	wantTransient bool
}

// chaosModes returns the applicable arming modes for a site. Source
// sites are error seams behind the retry layer: a one-shot fault heals
// transparently, a persistent one exhausts the retries and surfaces
// transient. Engine seams surface one-shot faults as positioned errors
// and panics as PanicError. Panic-only sites (storage mutation) always
// crash and must come back as PanicError.
func chaosModes(si fault.SiteInfo) []chaosMode {
	one := func(site string, hit uint64) string { return fmt.Sprintf("%s@%d", site, hit) }
	if si.PanicOnly {
		return []chaosMode{{name: "panic", term: one, wantPanic: true}}
	}
	if strings.HasPrefix(si.Name, "source.") {
		return []chaosMode{
			{name: "oneshot", term: one, transparent: true},
			{name: "persistent", term: func(site string, hit uint64) string {
				return fmt.Sprintf("%s@%d+", site, hit)
			}, wantTransient: true},
		}
	}
	return []chaosMode{
		{name: "oneshot", term: one},
		{name: "panic", term: func(site string, hit uint64) string {
			return fmt.Sprintf("%s@%d!", site, hit)
		}, wantPanic: true},
	}
}

// TestChaosMatrix is the injection matrix: every registered site (that
// the configuration actually exercises) x arming modes x both engines x
// chase worker counts {1, 4}.
func TestChaosMatrix(t *testing.T) {
	seed := uint64(1)
	if s, ok := fault.Seed(); ok {
		seed = s
	}
	src := chaosProgram(t, t.TempDir())
	sites := fault.Sites()
	if len(sites) == 0 {
		t.Fatal("no fault sites registered")
	}

	configs := []struct {
		name string
		opts Options
	}{
		{"pipeline", Options{Engine: EnginePipeline}},
		{"chase_w1", Options{Engine: EngineChase, Parallelism: 1}},
		{"chase_w4", Options{Engine: EngineChase, Parallelism: 4}},
	}
	for _, cfg := range configs {
		cfg := cfg
		// Fast retries keep the persistent-fault runs quick without
		// changing the policy's shape.
		cfg.opts.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: 1, MaxDelay: 1}
		t.Run(cfg.name, func(t *testing.T) {
			r := MustCompile(MustParse(src), &cfg.opts)

			// Baseline: the unfaulted answer this configuration must
			// reproduce under every injection.
			fault.Disable()
			base := r.NewSession()
			if err := base.Run(); err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			baseline := chaosDigest(base.Output("tc"))
			if got := len(base.Output("tc")); got != chaosWant() {
				t.Fatalf("baseline: %d tc facts, want %d", got, chaosWant())
			}

			// Counting run: arm a term that can never fire and record how
			// often each site is consulted, bounding the hit positions the
			// seed can pick.
			if err := fault.Enable(sites[0].Name + "@18446744073709551615"); err != nil {
				t.Fatalf("arm counting plan: %v", err)
			}
			count := r.NewSession()
			if err := count.Run(); err != nil {
				fault.Disable()
				t.Fatalf("counting run: %v", err)
			}
			hits := make(map[string]uint64, len(sites))
			for _, si := range sites {
				hits[si.Name] = fault.Hits(si.Name)
			}
			fault.Disable()

			for _, si := range sites {
				if hits[si.Name] == 0 {
					continue // site not exercised by this engine
				}
				for _, mode := range chaosModes(si) {
					name := strings.ReplaceAll(si.Name, ".", "_") + "/" + mode.name
					t.Run(name, func(t *testing.T) {
						hit := 1 + chaosMix(seed, cfg.name, si.Name, mode.name)%hits[si.Name]
						chaosOne(t, r, mode, si.Name, hit, baseline)
					})
				}
			}
		})
	}
}

// chaosOne runs one cell of the matrix: arm, run, check the failure
// contract, disarm, resume to convergence, compare digests.
func chaosOne(t *testing.T, r *Reasoner, mode chaosMode, site string, hit uint64, baseline string) {
	t.Helper()
	term := mode.term(site, hit)
	if err := fault.Enable(term); err != nil {
		t.Fatalf("arm %q: %v", term, err)
	}
	defer fault.Disable()

	s := r.NewSession()
	defer s.Close()
	err := s.Run()

	if mode.transparent {
		if err != nil {
			t.Fatalf("%s: one-shot source fault was not absorbed by the retry layer: %v", term, err)
		}
	} else {
		if err == nil {
			t.Fatalf("%s: armed fault did not surface", term)
		}
		var fe *fault.Error
		if !errors.As(err, &fe) {
			t.Fatalf("%s: error does not unwrap to the injected fault: %v", term, err)
		}
		if fe.Site != site {
			t.Fatalf("%s: fault attributed to site %q: %v", term, fe.Site, err)
		}
		if mode.wantPanic {
			var pe *core.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("%s: crash did not surface as *PanicError: %v", term, err)
			}
		}
		if mode.wantTransient && !IsTransient(err) {
			t.Fatalf("%s: exhausted retries did not stay transient: %v", term, err)
		}
		// Disarm and resume: the session must pick up exactly where the
		// fault struck and converge.
		fault.Disable()
		for i := 0; err != nil; i++ {
			if i == 5 {
				t.Fatalf("%s: session did not converge after 5 resumes: %v", term, err)
			}
			err = s.Run()
		}
	}
	if got := chaosDigest(s.Output("tc")); got != baseline {
		t.Errorf("%s: final database differs from the unfaulted baseline (%d vs %d facts)",
			term, len(s.Output("tc")), strings.Count(baseline, "\n")+1)
	}
	if !s.Quiesced() {
		t.Errorf("%s: converged session does not report quiescence", term)
	}
}
