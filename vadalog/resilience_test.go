package vadalog

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/source"
	"repro/internal/term"
)

// flakyDriver is a Source whose cursor fails transiently a configured
// number of times before each successful pull, recording every open and
// close — the test double behind the retry-policy and cleanup tests.
type flakyDriver struct {
	rows     [][]term.Value
	failures int // transient failures served before each successful Next
	opened   int
	closed   int
}

type flakyCursor struct {
	d      *flakyDriver
	rows   [][]term.Value
	pos    int
	fails  int
	chunk  int
	closed bool
}

func (d *flakyDriver) Open(ctx context.Context, b source.Binding) (source.RecordCursor, error) {
	d.opened++
	return &flakyCursor{d: d, rows: d.rows, chunk: 1}, nil
}

func (c *flakyCursor) Next(ctx context.Context) ([][]term.Value, error) {
	if c.fails < c.d.failures {
		c.fails++
		return nil, &source.Transient{Err: fmt.Errorf("flaky: simulated outage %d", c.fails)}
	}
	c.fails = 0
	if c.pos >= len(c.rows) {
		return nil, nil
	}
	end := min(c.pos+c.chunk, len(c.rows))
	chunk := c.rows[c.pos:end]
	c.pos = end
	return chunk, nil
}

func (c *flakyCursor) Close() error {
	if !c.closed {
		c.closed = true
		c.d.closed++
	}
	return nil
}

func edgeRows(n int) [][]term.Value {
	rows := make([][]term.Value, n)
	for i := range rows {
		rows[i] = []term.Value{Str(fmt.Sprintf("n%d", i)), Str(fmt.Sprintf("n%d", i+1))}
	}
	return rows
}

const flakyTC = `
	@bind("edge","flaky","edges").
	edge(X,Y) -> tc(X,Y).
	edge(X,Y), tc(Y,Z) -> tc(X,Z).
	@output("tc").
`

// TestRetryPolicyAbsorbsTransientFaults: a source that fails twice
// before every pull is healed in place by the default policy (4
// attempts) — the run succeeds, nothing is re-read, and the answer is
// complete.
func TestRetryPolicyAbsorbsTransientFaults(t *testing.T) {
	d := &flakyDriver{rows: edgeRows(10), failures: 2}
	opts := (&Options{Retry: &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}}).
		RegisterDriver("flaky", d)
	s, err := NewSession(MustParse(flakyTC), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run with transient faults under retry: %v", err)
	}
	if got, want := len(s.Output("tc")), 10*11/2; got != want {
		t.Fatalf("tc: %d facts, want %d", got, want)
	}
	if d.opened != 1 {
		t.Errorf("source opened %d times; retries must not reopen", d.opened)
	}
	if d.closed != 1 {
		t.Errorf("cursor closed %d times, want 1", d.closed)
	}
}

// TestRetryExhaustionIsTransientAndResumable: with retrying disabled
// (MaxAttempts 1) the fault surfaces still satisfying IsTransient, the
// cursor is kept at the failed row, and re-running the session drains
// the source without losing or duplicating rows.
func TestRetryExhaustionIsTransientAndResumable(t *testing.T) {
	d := &flakyDriver{rows: edgeRows(10), failures: 1}
	opts := (&Options{Retry: &RetryPolicy{MaxAttempts: 1}}).RegisterDriver("flaky", d)
	s, err := NewSession(MustParse(flakyTC), opts)
	if err != nil {
		t.Fatal(err)
	}
	runs := 0
	for err := s.Run(); err != nil; err = s.Run() {
		if !IsTransient(err) {
			t.Fatalf("surfaced error is not transient: %v", err)
		}
		if runs++; runs > 2*len(d.rows)+2 {
			t.Fatalf("session did not converge after %d runs: %v", runs, err)
		}
	}
	if runs == 0 {
		t.Fatal("flaky source never surfaced a transient error")
	}
	if got, want := len(s.Output("tc")), 10*11/2; got != want {
		t.Fatalf("tc after resumes: %d facts, want %d", got, want)
	}
	if d.opened != 1 {
		t.Errorf("source opened %d times; resumption must reuse the kept cursor", d.opened)
	}
}

// TestPartialResultOnBudget: a run cut short by the derivation budget
// returns a *PartialResult whose facts are readable, and raising the
// budget and resuming completes the answer.
func TestPartialResultOnBudget(t *testing.T) {
	for _, engine := range []Engine{EnginePipeline, EngineChase} {
		t.Run(fmt.Sprint(engine), func(t *testing.T) {
			prog := MustParse(`
				edge(X,Y) -> tc(X,Y).
				edge(X,Y), tc(Y,Z) -> tc(X,Z).
				@output("tc").
			`)
			s, err := NewSession(prog, &Options{Engine: engine, MaxDerivations: 25})
			if err != nil {
				t.Fatal(err)
			}
			var facts []Fact
			for i := 0; i < 20; i++ {
				facts = append(facts, MakeFact("edge", Str(fmt.Sprintf("n%d", i)), Str(fmt.Sprintf("n%d", i+1))))
			}
			s.Load(facts...)
			err = s.Run()
			var pr *PartialResult
			if !errors.As(err, &pr) {
				t.Fatalf("budget-bounded run returned %v, want *PartialResult", err)
			}
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("PartialResult does not unwrap to ErrBudget: %v", err)
			}
			if pr.Quiesced() {
				t.Fatal("budget-bounded partial result claims quiescence")
			}
			if pr.Derivations() == 0 || len(pr.Output("tc")) == 0 {
				t.Fatalf("partial result is empty: %d derivations, %d tc facts",
					pr.Derivations(), len(pr.Output("tc")))
			}
			pr.Session().SetMaxDerivations(0) // back to the default cap
			for i := 0; err != nil; i++ {
				if i == 5 {
					t.Fatalf("resume did not converge: %v", err)
				}
				err = pr.Resume(context.Background())
			}
			if got, want := len(s.Output("tc")), 20*21/2; got != want {
				t.Fatalf("tc after resume: %d facts, want %d", got, want)
			}
			if !s.Quiesced() {
				t.Error("completed session does not report quiescence")
			}
		})
	}
}

// TestPartialResultOnDeadline: an expired deadline surfaces as a
// *PartialResult (unlike plain cancellation), and a fresh context
// resumes the run to completion.
func TestPartialResultOnDeadline(t *testing.T) {
	prog := MustParse(`
		edge(X,Y) -> tc(X,Y).
		edge(X,Y), tc(Y,Z) -> tc(X,Z).
		@output("tc").
	`)
	s, err := NewSession(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Load(MakeFact("edge", Str(fmt.Sprintf("n%d", i)), Str(fmt.Sprintf("n%d", i+1))))
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err = s.RunContext(ctx)
	var pr *PartialResult
	if !errors.As(err, &pr) {
		t.Fatalf("deadline-bounded run returned %v, want *PartialResult", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("PartialResult does not unwrap to DeadlineExceeded: %v", err)
	}
	if pr.Quiesced() {
		t.Fatal("deadline-bounded partial result claims quiescence")
	}
	if err := pr.Resume(context.Background()); err != nil {
		t.Fatalf("resume with a fresh context: %v", err)
	}
	if got, want := len(s.Output("tc")), 20*21/2; got != want {
		t.Fatalf("tc after resume: %d facts, want %d", got, want)
	}
}

// TestCancellationIsNotPartial: context.Canceled is the caller's own
// signal and must surface untouched, never dressed as a PartialResult.
func TestCancellationIsNotPartial(t *testing.T) {
	s, err := NewSession(MustParse(`a(1). @output("a").`), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	var pr *PartialResult
	if errors.As(err, &pr) {
		t.Fatalf("cancellation surfaced as a PartialResult: %v", err)
	}
}

// TestWorkerPanicIsolation: a panic on a parallel chase match worker is
// recovered into a positioned *PanicError — the process survives, the
// error names the crashed rule, and the session resumes to the complete
// answer.
func TestWorkerPanicIsolation(t *testing.T) {
	prog := MustParse(`
		edge(X,Y) -> tc(X,Y).
		edge(X,Y), tc(Y,Z) -> tc(X,Z).
		@output("tc").
	`)
	s, err := NewSession(prog, &Options{Engine: EngineChase, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 200 edges: delta batches stay above the engine's fan-out threshold,
	// so the crash really happens on a worker goroutine.
	for i := 0; i < 200; i++ {
		s.Load(MakeFact("edge", Str(fmt.Sprintf("n%d", i)), Str(fmt.Sprintf("n%d", i+1))))
	}
	if err := fault.Enable("chase.match@100!"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	err = s.Run()
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("worker crash surfaced as %v, want *PanicError", err)
	}
	if pe.Engine != "chase" {
		t.Errorf("PanicError.Engine = %q, want \"chase\"", pe.Engine)
	}
	if pe.Rule == nil || pe.Rule.Line <= 0 {
		t.Errorf("PanicError is not positioned at the crashed rule: %+v", pe.Rule)
	}
	var fe *fault.Error
	if !errors.As(err, &fe) {
		t.Errorf("PanicError does not unwrap to the injected panic value: %v", err)
	}
	fault.Disable()
	if err := s.Run(); err != nil {
		t.Fatalf("resume after worker panic: %v", err)
	}
	if got, want := len(s.Output("tc")), 200*201/2; got != want {
		t.Fatalf("tc after resume: %d facts, want %d", got, want)
	}
}

// TestStreamEarlyBreakReleasesCursor: breaking out of Reasoner.Stream —
// here because a cancelled context cut the load short, the case that
// leaves a cursor open for resumption — must still release the cursor:
// the internal session is unreachable afterwards, so Stream closes it.
func TestStreamEarlyBreakReleasesCursor(t *testing.T) {
	d := &flakyDriver{rows: edgeRows(10)}
	opts := (&Options{Engine: EngineChase}).RegisterDriver("flaky", d)
	r, err := Compile(MustParse(flakyTC), opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var streamErr error
	for _, e := range r.Stream(ctx, nil, "tc") {
		streamErr = e
	}
	if !errors.Is(streamErr, context.Canceled) {
		t.Fatalf("cancelled stream yielded %v, want context.Canceled", streamErr)
	}
	if d.opened != d.closed {
		t.Fatalf("stream leaked cursors: %d opened, %d closed", d.opened, d.closed)
	}
}

// TestStreamCompletedRunLeavesNoCursor: the plain early-break case — a
// consumer stops after the first fact of a completed load — also ends
// with every cursor released.
func TestStreamCompletedRunLeavesNoCursor(t *testing.T) {
	d := &flakyDriver{rows: edgeRows(10)}
	opts := (&Options{}).RegisterDriver("flaky", d)
	r, err := Compile(MustParse(flakyTC), opts)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range r.Stream(context.Background(), nil, "tc") {
		if e != nil {
			t.Fatal(e)
		}
		if n++; n == 1 {
			break
		}
	}
	if n != 1 {
		t.Fatalf("yielded %d facts before break, want 1", n)
	}
	if d.opened == 0 || d.opened != d.closed {
		t.Fatalf("stream leaked cursors: %d opened, %d closed", d.opened, d.closed)
	}
}

// TestFactsBreakKeepsSessionResumable: breaking out of Session.Facts
// leaves the session consistent — a later Run completes the fixpoint
// and the full answer is readable.
func TestFactsBreakKeepsSessionResumable(t *testing.T) {
	s, err := NewSession(MustParse(`
		edge(X,Y) -> tc(X,Y).
		edge(X,Y), tc(Y,Z) -> tc(X,Z).
		@output("tc").
	`), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Load(MakeFact("edge", Str(fmt.Sprintf("n%d", i)), Str(fmt.Sprintf("n%d", i+1))))
	}
	n := 0
	for _, e := range s.Facts(context.Background(), "tc") {
		if e != nil {
			t.Fatal(e)
		}
		if n++; n == 3 {
			break
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run after early break: %v", err)
	}
	if got, want := len(s.Output("tc")), 10*11/2; got != want {
		t.Fatalf("tc after break+run: %d facts, want %d", got, want)
	}
}
