package vadalog

import (
	"encoding/csv"
	"fmt"
	"os"

	"repro/internal/ast"
	"repro/internal/term"
)

// loadBoundInputs materializes the @bind'ed input sources through record
// managers (paper Sec. 4: components that turn external streaming data
// into facts). The only built-in driver is "csv".
func loadBoundInputs(prog *ast.Program) ([]ast.Fact, error) {
	var out []ast.Fact
	for _, b := range prog.Bindings {
		if prog.Outputs[b.Pred] {
			continue // output binding, handled after the run
		}
		switch b.Driver {
		case "csv":
			facts, err := ReadCSV(b.Pred, b.Target)
			if err != nil {
				return nil, err
			}
			out = append(out, facts...)
		default:
			return nil, fmt.Errorf("vadalog: unknown @bind driver %q for %s", b.Driver, b.Pred)
		}
	}
	return out, nil
}

// writeBoundOutputs writes @bind'ed output predicates back through their
// record managers.
func (s *Session) writeBoundOutputs() error {
	for _, b := range s.prog.Bindings {
		if !s.prog.Outputs[b.Pred] {
			continue
		}
		switch b.Driver {
		case "csv":
			if err := WriteCSV(b.Target, s.Output(b.Pred)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("vadalog: unknown @bind driver %q for %s", b.Driver, b.Pred)
		}
	}
	return nil
}

// ReadCSV reads path into facts of pred, one fact per record; cells are
// parsed as Vadalog literals (ints, floats, #t/#f, strings).
func ReadCSV(pred, path string) ([]ast.Fact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("vadalog: open %s: %w", path, err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	recs, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("vadalog: read %s: %w", path, err)
	}
	out := make([]ast.Fact, 0, len(recs))
	for _, rec := range recs {
		args := make([]term.Value, len(rec))
		for i, cell := range rec {
			v, err := term.ParseLiteral(cell)
			if err != nil {
				v = term.String(cell)
			}
			args[i] = v
		}
		out = append(out, ast.Fact{Pred: pred, Args: args})
	}
	return out, nil
}

// WriteCSV writes facts to path, one record per fact.
func WriteCSV(path string, facts []ast.Fact) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vadalog: create %s: %w", path, err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	for _, fact := range facts {
		rec := make([]string, len(fact.Args))
		for i, a := range fact.Args {
			if a.Kind() == term.KindString {
				rec[i] = a.Str()
			} else {
				rec[i] = a.String()
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
