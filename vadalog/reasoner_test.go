package vadalog

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

const pathSrc = `
	edge(X,Y) -> path(X,Y).
	path(X,Y), edge(Y,Z) -> path(X,Z).
	@output("path").
`

// chainFacts builds a labelled chain n0 -> n1 -> ... -> nk so distinct
// callers get distinct inputs and distinct expected outputs.
func chainFacts(label string, k int) []Fact {
	out := make([]Fact, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, MakeFact("edge",
			Str(fmt.Sprintf("%s%d", label, i)), Str(fmt.Sprintf("%s%d", label, i+1))))
	}
	return out
}

func TestCompileOnceQueryMany(t *testing.T) {
	r, err := Compile(MustParse(pathSrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The same Reasoner serves several queries over different databases;
	// results must be independent (fresh per-query state).
	for k := 1; k <= 4; k++ {
		res, err := r.Query(context.Background(), chainFacts("n", k))
		if err != nil {
			t.Fatal(err)
		}
		want := k * (k + 1) / 2
		if got := len(res.Output("path")); got != want {
			t.Errorf("chain of %d: %d paths, want %d", k, got, want)
		}
	}
}

// TestReasonerConcurrentQueries is the serving scenario: one shared
// compiled Reasoner, many goroutines with distinct fact sets and distinct
// expected outputs. Run under -race this also proves the compiled
// artifact is not mutated at query time.
func TestReasonerConcurrentQueries(t *testing.T) {
	for _, engine := range []Engine{EnginePipeline, EngineChase} {
		r, err := Compile(MustParse(pathSrc), &Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				k := 2 + g // distinct chain length per goroutine
				for it := 0; it < 4; it++ {
					facts := chainFacts(fmt.Sprintf("g%d_%d_", g, it), k)
					res, err := r.Query(context.Background(), facts)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: %v", g, err)
						return
					}
					want := k * (k + 1) / 2
					if got := len(res.Output("path")); got != want {
						errs <- fmt.Errorf("goroutine %d: %d paths, want %d", g, got, want)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Errorf("engine %v: %v", engine, err)
		}
	}
}

// crossSrc times out without cancellation: a cubic blowup far beyond what
// the cancel deadline lets it derive.
const crossSrc = `
	a(X), a(Y) -> pair(X,Y).
	pair(X,Y), a(Z) -> triple(X,Y,Z).
	@output("triple").
`

func bigEDB(n int) []Fact {
	out := make([]Fact, n)
	for i := range out {
		out[i] = MakeFact("a", Int(int64(i)))
	}
	return out
}

// TestQueryCancellation: cancelling the context mid-fixpoint must abort
// the run promptly with context.Canceled on both engines.
func TestQueryCancellation(t *testing.T) {
	for _, engine := range []Engine{EnginePipeline, EngineChase} {
		r, err := Compile(MustParse(crossSrc), &Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err = r.Query(ctx, bigEDB(400)) // ~64M triples: unreachable before the budget
		elapsed := time.Since(start)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %v: want context.Canceled, got %v", engine, err)
		}
		if elapsed > 5*time.Second {
			t.Errorf("engine %v: cancellation not prompt: took %v", engine, elapsed)
		}
	}
}

// TestStreamCancellation: a cancelled context surfaces as the final error
// of the iterator sequence.
func TestStreamCancellation(t *testing.T) {
	r, err := Compile(MustParse(crossSrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the very first pull must fail
	var last error
	n := 0
	for _, err := range r.Stream(ctx, bigEDB(50), "triple") {
		last = err
		n++
	}
	if !errors.Is(last, context.Canceled) {
		t.Fatalf("want context.Canceled from stream, got %v after %d facts", last, n)
	}
}

func TestReasonerStreamIterator(t *testing.T) {
	r, err := Compile(MustParse(pathSrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for f, err := range r.Stream(context.Background(), chainFacts("n", 3), "path") {
		if err != nil {
			t.Fatal(err)
		}
		if f.Pred != "path" {
			t.Fatalf("streamed %v", f)
		}
		count++
	}
	if count != 6 {
		t.Errorf("streamed %d paths, want 6", count)
	}
	// Early break must not wedge the underlying session (iterator contract).
	for range r.Stream(context.Background(), chainFacts("m", 3), "path") {
		break
	}
}

func TestSessionFactsIterator(t *testing.T) {
	r, err := Compile(MustParse(pathSrc), &Options{Engine: EngineChase})
	if err != nil {
		t.Fatal(err)
	}
	s := r.NewSession()
	s.Load(chainFacts("n", 3)...)
	count := 0
	for _, err := range s.Facts(context.Background(), "path") {
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 6 {
		t.Errorf("chase-engine Facts yielded %d, want 6", count)
	}
}

// TestRunAfterStreamDoesNotReloadBinds is the double-loading regression:
// Run after Stream (or a second Run) must not re-read @bind'ed CSV inputs
// nor re-stage pending facts. Deleting the input file between the two
// calls makes any re-read fail loudly.
func TestRunAfterStreamDoesNotReloadBinds(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "own.csv")
	if err := os.WriteFile(in, []byte("a,b,0.9\nb,c,0.8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog := MustParse(`
		own(X,Y,W), W > 0.5 -> control(X,Y).
		@input("own").
		@output("control").
		@bind("own","csv","` + in + `").
	`)
	sess, err := NewSession(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	next := sess.Stream("control")
	streamed := 0
	for {
		_, ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		streamed++
	}
	if streamed != 2 {
		t.Fatalf("streamed %d control facts, want 2", streamed)
	}
	if err := os.Remove(in); err != nil {
		t.Fatal(err)
	}
	// A second pass must not touch the (now deleted) CSV.
	if err := sess.Run(); err != nil {
		t.Fatalf("Run after Stream re-loaded bound inputs: %v", err)
	}
	der := sess.Derivations()
	if err := sess.Run(); err != nil {
		t.Fatalf("second Run re-loaded bound inputs: %v", err)
	}
	if sess.Derivations() != der {
		t.Errorf("second Run re-staged facts: derivations %d -> %d", der, sess.Derivations())
	}
}

// TestDoubleRunDoesNotRestagePending: staged facts are handed to the
// engine exactly once even across repeated Run calls.
func TestDoubleRunDoesNotRestagePending(t *testing.T) {
	sess, err := NewSession(MustParse(pathSrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.Load(chainFacts("n", 3)...)
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	der := sess.Derivations()
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	if sess.Derivations() != der {
		t.Errorf("second Run changed derivations: %d -> %d", der, sess.Derivations())
	}
	if got := len(sess.Output("path")); got != 6 {
		t.Errorf("paths after double Run: %d, want 6", got)
	}
}

func TestResultErrNotRun(t *testing.T) {
	for _, engine := range []Engine{EnginePipeline, EngineChase} {
		sess, err := NewSession(MustParse(pathSrc), &Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Result(); !errors.Is(err, ErrNotRun) {
			t.Fatalf("engine %v: want ErrNotRun before Run, got %v", engine, err)
		}
		// The documented (legacy) contract: silent empties before Run.
		if out := sess.Output("path"); len(out) != 0 {
			t.Errorf("engine %v: Output before Run: %v, want empty", engine, out)
		}
		if d := sess.Derivations(); d != 0 {
			t.Errorf("engine %v: Derivations before Run: %d, want 0", engine, d)
		}
		sess.Load(chainFacts("n", 2)...)
		if err := sess.Run(); err != nil {
			t.Fatal(err)
		}
		res, err := sess.Result()
		if err != nil {
			t.Fatalf("engine %v: Result after Run: %v", engine, err)
		}
		if got := len(res.Output("path")); got != 3 {
			t.Errorf("engine %v: %d paths, want 3", engine, got)
		}
		if res.Derivations() == 0 {
			t.Errorf("engine %v: zero derivations reported", engine)
		}
	}
}

// TestQueryResultAll mirrors Reason's output map on the Result type.
func TestQueryResultAll(t *testing.T) {
	r, err := Compile(MustParse(pathSrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Query(context.Background(), chainFacts("n", 2))
	if err != nil {
		t.Fatal(err)
	}
	all := res.All()
	if len(all) != 1 || len(all["path"]) != 3 {
		t.Errorf("All(): %v", all)
	}
	if _, ok := res.StrategyStats(); !ok {
		t.Error("full strategy must expose stats on Result")
	}
}

func TestReasonerPlan(t *testing.T) {
	r, err := Compile(MustParse(pathSrc), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := r.Plan()
	if err != nil || plan == "" {
		t.Fatalf("plan: %q, %v", plan, err)
	}
	rc, err := Compile(MustParse(pathSrc), &Options{Engine: EngineChase})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Plan(); err == nil {
		t.Error("chase engine must not pretend to have an access plan")
	}
}

// TestStreamIncludesProgramFacts: fact literals written inside the
// program itself must reach the lazy pull path just like Query's batch
// path (regression: the stream loader skipped prog.Facts).
func TestStreamIncludesProgramFacts(t *testing.T) {
	src := `
		edge(a, b).
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`
	r, err := Compile(MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	extra := []Fact{MakeFact("edge", Str("b"), Str("c"))}
	res, err := r.Query(context.Background(), extra)
	if err != nil {
		t.Fatal(err)
	}
	want := len(res.Output("path"))
	if want != 3 {
		t.Fatalf("query: %d paths, want 3", want)
	}
	streamed := 0
	for _, err := range r.Stream(context.Background(), extra, "path") {
		if err != nil {
			t.Fatal(err)
		}
		streamed++
	}
	if streamed != want {
		t.Errorf("stream yielded %d paths, query materialized %d", streamed, want)
	}
	// The legacy closure Stream takes the same loader path.
	sess := r.NewSession()
	sess.Load(extra...)
	next := sess.Stream("path")
	n := 0
	for {
		_, ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != want {
		t.Errorf("legacy Stream yielded %d paths, want %d", n, want)
	}
}

// TestParallelismOption: the chase engine's worker count is threaded from
// the public Options and every setting returns the same answers — with
// concurrent parallel queries on one shared Reasoner race-free.
func TestParallelismOption(t *testing.T) {
	var base []string
	for _, workers := range []int{1, 2, 8} {
		r, err := Compile(MustParse(pathSrc), &Options{Engine: EngineChase, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		outs := make([][]string, 3)
		for k := range outs {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				res, err := r.Query(context.Background(), chainFacts("n", 6))
				if err != nil {
					t.Errorf("workers=%d query %d: %v", workers, k, err)
					return
				}
				for _, f := range res.Output("path") {
					outs[k] = append(outs[k], f.String())
				}
			}(k)
		}
		wg.Wait()
		for k := range outs {
			if len(outs[k]) != 21 {
				t.Fatalf("workers=%d query %d: %d paths, want 21", workers, k, len(outs[k]))
			}
			if base == nil {
				base = outs[k]
			}
			for i := range base {
				if outs[k][i] != base[i] {
					t.Errorf("workers=%d query %d: fact order diverges at %d", workers, k, i)
				}
			}
		}
	}
}
