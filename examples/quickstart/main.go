// Command quickstart is the minimal end-to-end example: parse a warded
// program with recursion and existential quantification, load facts, run
// the reasoner, and print the answers.
package main

import (
	"fmt"
	"log"

	"repro/vadalog"
)

func main() {
	prog, err := vadalog.Parse(`
		% Every company has some key person (existential quantification),
		% and key persons propagate along control (recursion).
		company(X) -> keyPerson(P, X).
		control(X,Y), keyPerson(P,X) -> keyPerson(P,Y).
		@output("keyPerson").
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(vadalog.Check(prog)) // static wardedness report

	sess, err := vadalog.NewSession(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	sess.Load(
		vadalog.MakeFact("company", vadalog.Str("acme")),
		vadalog.MakeFact("company", vadalog.Str("subco")),
		vadalog.MakeFact("control", vadalog.Str("acme"), vadalog.Str("subco")),
		vadalog.MakeFact("keyPerson", vadalog.Str("ada"), vadalog.Str("acme")),
	)
	if err := sess.Run(); err != nil {
		log.Fatal(err)
	}
	for _, f := range sess.Output("keyPerson") {
		fmt.Println(f)
	}
	fmt.Printf("%d facts derived in total\n", sess.Derivations())
}
