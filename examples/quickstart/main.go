// Command quickstart is the minimal end-to-end example: parse a warded
// program with recursion and existential quantification, compile it once
// into a shareable Reasoner, query it, and print the answers.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/vadalog"
)

func main() {
	prog, err := vadalog.Parse(`
		% Every company has some key person (existential quantification),
		% and key persons propagate along control (recursion).
		company(X) -> keyPerson(P, X).
		control(X,Y), keyPerson(P,X) -> keyPerson(P,Y).
		@output("keyPerson").
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(vadalog.Check(prog)) // static wardedness report

	// Compile once: analysis, rewriting and plan construction happen here.
	// The Reasoner is immutable and safe to share across goroutines.
	reasoner, err := vadalog.Compile(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := reasoner.Query(context.Background(), []vadalog.Fact{
		vadalog.MakeFact("company", vadalog.Str("acme")),
		vadalog.MakeFact("company", vadalog.Str("subco")),
		vadalog.MakeFact("control", vadalog.Str("acme"), vadalog.Str("subco")),
		vadalog.MakeFact("keyPerson", vadalog.Str("ada"), vadalog.Str("acme")),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.Output("keyPerson") {
		fmt.Println(f)
	}
	fmt.Printf("%d facts derived in total\n", res.Derivations())
}
