// Command companycontrol runs the paper's Example 2 — company control via
// monotonic aggregation — over a generated scale-free ownership network
// (the synthetic stand-in of Sec. 6.4) and reports the control pairs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/gen/graphs"
	"repro/vadalog"
)

func main() {
	n := flag.Int("companies", 2000, "number of companies in the ownership graph")
	seed := flag.Int64("seed", 1, "graph seed")
	flag.Parse()

	g := graphs.ScaleFree(*n, graphs.PaperParams(), *seed)
	fmt.Printf("ownership graph: %d companies, %d edges\n", g.N, len(g.Edges))

	prog, err := vadalog.Parse(graphs.ControlProgram)
	if err != nil {
		log.Fatal(err)
	}
	reasoner, err := vadalog.Compile(prog, nil)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := reasoner.Query(context.Background(), g.OwnFacts())
	if err != nil {
		log.Fatal(err)
	}
	control := res.Output("control")
	fmt.Printf("control pairs: %d (%.2fs)\n", len(control), time.Since(start).Seconds())
	for i, f := range control {
		if i >= 10 {
			fmt.Printf("... and %d more\n", len(control)-10)
			break
		}
		fmt.Println(f)
	}
}
