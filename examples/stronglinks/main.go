// Command stronglinks runs the StrongLink scenario of paper Sec. 6.3
// (Example 13): companies sharing persons of significant control —
// including invented ones — are strongly linked. The program mixes
// existential quantification, recursion, a harmful join and monotonic
// counting; the run prints the termination-strategy statistics to show
// the guide structures at work.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/gen/dbpedia"
	"repro/vadalog"
)

func main() {
	companies := flag.Int("companies", 1000, "number of companies")
	n := flag.Int("n", 1, "minimum shared PSCs for a strong link")
	flag.Parse()

	data := dbpedia.Generate(dbpedia.Config{
		Companies: *companies, Persons: *companies * 4,
		KeyPersonRate: 1.0, ControlRate: 0.4, Seed: 13,
	})

	prog, err := vadalog.Parse(dbpedia.StrongLinksProgram(*n))
	if err != nil {
		log.Fatal(err)
	}
	rep := vadalog.Check(prog)
	fmt.Printf("program: %d harmful joins, warded: %v\n", rep.Stats.HarmfulJoins, rep.Warded)

	reasoner, err := vadalog.Compile(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := reasoner.Query(context.Background(), data.All())
	if err != nil {
		log.Fatal(err)
	}
	links := res.Output("strongLink")
	fmt.Printf("strong links (N=%d): %d in %.2fs\n", *n, len(links), time.Since(start).Seconds())
	if st, ok := res.StrategyStats(); ok {
		fmt.Printf("termination strategy: %d checks, %d iso checks, %d cut by stop-provenances, %d patterns learnt\n",
			st.Checked, st.IsoChecks, st.BeyondStop, st.Patterns)
	}
	for i, f := range links {
		if i >= 5 {
			break
		}
		fmt.Println(f)
	}
}
