// Command ontology demonstrates requirement (2) of the paper's
// introduction: ontological reasoning over knowledge graphs. An OWL 2 QL
// ontology (class/property hierarchy, domain/range, inverses, an
// existential axiom) is translated to warded Vadalog rules and evaluated
// under the entailment regime over a triple ABox — the TriQ-Lite use the
// paper cites. It also runs Example 1 (the symmetric five-ary Spouse
// relation most ontology languages cannot express).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/owlqa"
	"repro/vadalog"
)

func main() {
	onto := &owlqa.Ontology{}
	onto.Add(owlqa.SubClassOf, "FullProfessor", "", "Professor")
	onto.Add(owlqa.SubClassOf, "Professor", "", "Faculty")
	onto.Add(owlqa.SubClassOf, "Faculty", "", "Person")
	onto.Add(owlqa.SubPropertyOf, "headOf", "", "worksFor")
	onto.Add(owlqa.SomeSubClassOf, "worksFor", "", "Person")
	onto.Add(owlqa.SomeInvSubClassOf, "worksFor", "", "Organization")
	onto.Add(owlqa.InverseOf, "teacherOf", "", "taughtBy")
	onto.Add(owlqa.SubClassOfSome, "Professor", "degreeFrom", "University")
	onto.Add(owlqa.TransitiveProperty, "subOrgOf")
	onto.Add(owlqa.DisjointClasses, "Person", "Organization")

	rules, err := onto.Rules()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("translated ontology:")
	fmt.Println(rules)

	prog, err := onto.Program(`
		% SPARQL-style conjunctive query under the entailment regime:
		% persons with a degree from a university their unit belongs to.
		person(X), worksFor(X, D), subOrgOf(D, U), degreeFrom(X, U2) -> answer(X, U2).
		@output("answer").
	`)
	if err != nil {
		log.Fatal(err)
	}
	rep := vadalog.Check(prog)
	fmt.Printf("warded: %v (existential rules: %d)\n\n", rep.Warded, rep.Stats.ExistentialRules)

	abox, err := owlqa.ParseTurtleLike(`
		ada  a FullProfessor .
		ada  headOf cs .
		cs   subOrgOf uni .
		uni  a Organization .
		ada  teacherOf logic .
	`)
	if err != nil {
		log.Fatal(err)
	}
	reasoner, err := vadalog.Compile(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := reasoner.Query(context.Background(), owlqa.ABoxFacts(abox))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("entailed answers (the degree university is an invented null):")
	for _, f := range res.Output("answer") {
		fmt.Println(" ", f)
	}

	// Example 1 from the paper: higher-arity symmetric relation.
	prog2 := vadalog.MustParse(owlqa.Example1Spouse + `
		spouse(alice, bob, 2001, rome, 2010).
		@output("spouse").
	`)
	res2, err := vadalog.MustCompile(prog2, nil).Query(context.Background(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExample 1 (symmetric 5-ary spouse):")
	for _, f := range res2.Output("spouse") {
		fmt.Println(" ", f)
	}
}
