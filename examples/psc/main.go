// Command psc runs the DBpedia "persons with significant control"
// scenario of paper Sec. 6.3 (Example 11) on synthetic company/person
// data, comparing the pipeline engine with the reference chase engine.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/gen/dbpedia"
	"repro/vadalog"
)

func main() {
	companies := flag.Int("companies", 5000, "number of companies")
	persons := flag.Int("persons", 20000, "number of persons")
	flag.Parse()

	cfg := dbpedia.Config{
		Companies: *companies, Persons: *persons,
		KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7,
	}
	data := dbpedia.Generate(cfg)
	fmt.Printf("dataset: %d companies, %d persons, %d control edges, %d key persons\n",
		len(data.Companies), len(data.Persons), len(data.Controls), len(data.KeyPersons))

	for _, engine := range []struct {
		name string
		eng  vadalog.Engine
	}{
		{"pipeline", vadalog.EnginePipeline},
		{"chase", vadalog.EngineChase},
	} {
		prog, err := vadalog.Parse(dbpedia.PSCProgram)
		if err != nil {
			log.Fatal(err)
		}
		reasoner, err := vadalog.Compile(prog, &vadalog.Options{Engine: engine.eng})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := reasoner.Query(context.Background(), data.All())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s: %6d psc facts in %.2fs\n",
			engine.name, len(res.Output("psc")), time.Since(start).Seconds())
	}
}
