// Command csvpipeline demonstrates the record managers of paper Sec. 4:
// a program whose inputs and outputs are @bind'ed to CSV files, run end
// to end (storage to storage) exactly like the paper's test harness.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/vadalog"
)

func main() {
	dir, err := os.MkdirTemp("", "vadalog-csv")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	ownCSV := filepath.Join(dir, "own.csv")
	controlCSV := filepath.Join(dir, "control.csv")
	if err := os.WriteFile(ownCSV, []byte(
		"acme,subco,0.7\n"+
			"acme,other,0.2\n"+
			"subco,deepco,0.6\n"+
			"other,deepco,0.3\n"), 0o644); err != nil {
		log.Fatal(err)
	}

	prog, err := vadalog.Parse(fmt.Sprintf(`
		own(X,Y,W), W > 0.5 -> control(X,Y).
		control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).
		@input("own").
		@output("control").
		@bind("own","csv",%q).
		@bind("control","csv",%q).
		@post("control","orderBy",1).
	`, ownCSV, controlCSV))
	if err != nil {
		log.Fatal(err)
	}

	reasoner, err := vadalog.Compile(prog, nil)
	if err != nil {
		log.Fatal(err)
	}
	// The @bind'ed CSV inputs are read (and outputs written) by the query
	// itself: storage to storage, no facts passed in code.
	if _, err := reasoner.Query(context.Background(), nil); err != nil {
		log.Fatal(err)
	}

	out, err := os.ReadFile(controlCSV)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control.csv:\n%s", out)
}
