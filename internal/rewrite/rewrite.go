// Package rewrite implements the logic optimizer of paper Sec. 4 (step 1):
// multiple-head elimination, confinement of existential quantification to
// linear rules, and the Harmful Joins Elimination of Sec. 3.2. The static
// elimination (grounding + direct/indirect cause unfolding + Skolem
// simplification) is implemented in hje.go; this file provides the
// elementary rewritings and the dynamic (tag-twin) elimination that the
// engines use by default.
package rewrite

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/ast"
)

// Options selects which rewritings Apply performs.
type Options struct {
	// SplitHeads splits multi-head rules into single-head rules sharing the
	// original rule's Skolem base (so shared existentials keep one null).
	SplitHeads bool
	// LinearizeExistentials moves existential quantification out of
	// non-linear rules through auxiliary predicates, establishing the
	// precondition of Algorithm 1.
	LinearizeExistentials bool
	// EliminateHarmfulJoins replaces joins over harmful variables by joins
	// over ground reifications of null identity (tag twins), making the
	// program harmless warded. See TagPred.
	EliminateHarmfulJoins bool
}

// DefaultOptions enables every rewriting, as the Vadalog logic optimizer
// does.
func DefaultOptions() Options {
	return Options{SplitHeads: true, LinearizeExistentials: true, EliminateHarmfulJoins: true}
}

// Result carries the rewritten program and bookkeeping the engine needs.
type Result struct {
	Program *ast.Program
	// TagPreds maps each predicate that participates in a harmful join to
	// its tag-twin predicate: whenever the engine admits a fact of pred
	// with labelled nulls in affected positions, it must also insert the
	// twin fact with nulls replaced by their canonical ground keys.
	TagPreds map[string]string
	// AuxPreds lists predicates introduced by the rewritings; they are
	// excluded from user-visible output.
	AuxPreds map[string]bool
	// Notes records human-readable descriptions of applied rewritings.
	Notes []string
}

// Apply runs the selected rewritings in the canonical order.
func Apply(p *ast.Program, opts Options) (*Result, error) {
	res := &Result{Program: p, TagPreds: make(map[string]string), AuxPreds: make(map[string]bool)}
	if opts.SplitHeads {
		res.Program = SplitMultiHeads(res.Program)
	}
	if opts.LinearizeExistentials {
		res.Program = LinearizeExistentials(res.Program, res.AuxPreds)
	}
	if opts.EliminateHarmfulJoins {
		prog, tags, notes := EliminateHarmfulJoinsDynamic(res.Program)
		res.Program = prog
		res.Notes = append(res.Notes, notes...)
		for k, v := range tags {
			res.TagPreds[k] = v
			res.AuxPreds[v] = true
		}
	}
	renumber(res.Program)
	return res, nil
}

// renumber reassigns rule IDs after structural rewritings. Skolem bases
// were frozen before renumbering, so null identities are unaffected.
func renumber(p *ast.Program) {
	for i, r := range p.Rules {
		if r.Skolem == "" {
			r.Skolem = r.SkolemBase() // freeze pre-renumbering base
		}
		r.ID = i
	}
}

// SplitMultiHeads returns a program in which every rule has exactly one
// head atom. Split rules share the original Skolem base, so an existential
// variable occurring in several head atoms denotes the same null in all of
// them (cf. Example 6, rule 4 of the paper).
func SplitMultiHeads(p *ast.Program) *ast.Program {
	out := cloneShell(p)
	for _, r := range p.Rules {
		if len(r.Heads) <= 1 || r.IsConstraint || r.EGD != nil {
			out.AddRule(r.Clone())
			continue
		}
		base := r.SkolemBase()
		for _, h := range r.Heads {
			nr := r.Clone()
			nr.Heads = []ast.Atom{h}
			nr.Skolem = base
			// Re-clone the head args slice (Clone copied all heads).
			nr.Heads[0].Args = append([]ast.Arg(nil), h.Args...)
			out.AddRule(nr)
		}
	}
	return out
}

// LinearizeExistentials ensures existential quantification appears only in
// linear rules (precondition 2 of Algorithm 1): a non-linear rule
// body -> ∃z H is split into body -> aux(frontier) and the linear rule
// aux(frontier) -> ∃z H.
func LinearizeExistentials(p *ast.Program, auxPreds map[string]bool) *ast.Program {
	out := cloneShell(p)
	for _, r := range p.Rules {
		if r.IsConstraint || r.EGD != nil || len(r.Existentials()) == 0 || r.IsLinear() {
			out.AddRule(r.Clone())
			continue
		}
		// Frontier: bound variables used in the head.
		bound := r.BoundVars()
		var frontier []string
		seen := make(map[string]bool)
		for _, v := range r.HeadVars() {
			if bound[v] && !seen[v] {
				seen[v] = true
				frontier = append(frontier, v)
			}
		}
		sort.Strings(frontier)
		aux := fmt.Sprintf("exl_%s_%d", r.SkolemBase(), len(out.Rules))
		auxPreds[aux] = true
		args := make([]ast.Arg, len(frontier))
		for i, v := range frontier {
			args[i] = ast.V(v)
		}
		first := r.Clone()
		first.Heads = []ast.Atom{{Pred: aux, Args: args}}
		out.AddRule(first)

		second := &ast.Rule{
			Body:   []ast.Atom{{Pred: aux, Args: append([]ast.Arg(nil), args...)}},
			Heads:  cloneHeadAtoms(r.Heads),
			Skolem: r.SkolemBase(),
		}
		out.AddRule(second)
	}
	return out
}

func cloneHeadAtoms(hs []ast.Atom) []ast.Atom {
	out := make([]ast.Atom, len(hs))
	for i, h := range hs {
		out[i] = h
		out[i].Args = append([]ast.Arg(nil), h.Args...)
	}
	return out
}

// TagPredName returns the tag-twin predicate name for pred.
func TagPredName(pred string) string { return pred + "__tag" }

// EliminateHarmfulJoinsDynamic rewrites every rule containing a harmful
// join (a join over variables that bind only to labelled nulls) so that
// the join runs over the tag twins of the involved predicates. Tag twins
// hold the canonical ground key of each null (see term.NullFactory.KeyOf):
// two positions carry the same null iff their tags are equal, so the
// rewritten join is equivalent — and harmless, because tags are ground.
//
// The engine materializes tag twins as facts are admitted (an auto-insert
// per admitted fact of a tagged predicate), which keeps the twin relation
// exactly synchronized with the admitted chase, including all cuts made by
// the termination strategy. This is the dynamic counterpart of the
// grounding step of the paper's Harmful Joins Elimination: ground values
// act as their own tags, so the Dom-guarded ground copy is subsumed.
func EliminateHarmfulJoinsDynamic(p *ast.Program) (*ast.Program, map[string]string, []string) {
	res := analysis.Analyze(p)
	tags := make(map[string]string)
	var notes []string
	out := cloneShell(p)
	for i, r := range p.Rules {
		ri := res.Rules[i]
		if !ri.HasHarmfulJoin {
			out.AddRule(r.Clone())
			continue
		}
		// Identify the harmful-join variables: harmful (incl. dangerous)
		// variables occurring in ≥2 positive body atoms. In a warded
		// program such variables are never dangerous (a dangerous variable
		// is confined to the ward, which shares only harmless variables),
		// so they do not occur in the head.
		joinVars := make(map[string]bool)
		occ := make(map[string]int)
		for _, a := range r.Body {
			if a.Negated || a.Pred == ast.DomPred {
				continue
			}
			seen := make(map[string]bool)
			for _, arg := range a.Args {
				if arg.IsVar && arg.Var != "_" && !seen[arg.Var] {
					seen[arg.Var] = true
					occ[arg.Var]++
				}
			}
		}
		for v, n := range occ {
			if n >= 2 && ri.Classes[v] != analysis.Harmless {
				joinVars[v] = true
			}
		}
		nr := r.Clone()
		var swapped []string
		for bi := range nr.Body {
			a := &nr.Body[bi]
			if a.Negated || a.Pred == ast.DomPred {
				continue
			}
			has := false
			for _, arg := range a.Args {
				if arg.IsVar && joinVars[arg.Var] {
					has = true
					break
				}
			}
			if !has {
				continue
			}
			tags[a.Pred] = TagPredName(a.Pred)
			swapped = append(swapped, a.Pred)
			a.Pred = TagPredName(a.Pred)
		}
		notes = append(notes, fmt.Sprintf("rule %d: harmful join rewritten over tag twins of %v", r.ID, swapped))
		out.AddRule(nr)
	}
	if len(tags) == 0 {
		return p, tags, nil
	}
	return out, tags, notes
}

func cloneShell(p *ast.Program) *ast.Program {
	out := ast.NewProgram()
	out.Facts = append(out.Facts, p.Facts...)
	for k := range p.Inputs {
		out.Inputs[k] = true
	}
	for k := range p.Outputs {
		out.Outputs[k] = true
	}
	out.Bindings = append(out.Bindings, p.Bindings...)
	out.Posts = append(out.Posts, p.Posts...)
	out.Mappings = append(out.Mappings, p.Mappings...)
	return out
}
