package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ast"
)

// EliminateHarmfulJoinsStatic implements the Harmful Joins Elimination
// Algorithm of paper Sec. 3.2 (cause elimination + Skolem simplification):
//
//   - grounding: a Dom-guarded ground copy of the harmful rule is added;
//   - direct causes: rules whose head existentially creates the null are
//     composed into the harmful rule, the join variable replaced by the
//     cause's Skolem function;
//   - indirect causes: rules that merely propagate the null are unfolded
//     into the harmful rule;
//   - Skolem simplification: rules whose join conditions equate a Skolem
//     term with a constant (1a), two distinct Skolem functions (1b) or a
//     Skolem function with a term containing it (1c) are dropped as
//     virtual joins; two atoms carrying the same Skolem function are
//     linearized by injectivity.
//
// The rewriting terminates for warded programs whose null-propagation
// causes are non-recursive; for recursive causes the unfolding would grow
// without bound, so the algorithm gives up once budget composed rules have
// been generated and returns an error — callers then use the dynamic
// (tag-twin) elimination, which handles recursion exactly.
func EliminateHarmfulJoinsStatic(p *ast.Program, budget int) (*ast.Program, error) {
	if budget <= 0 {
		budget = 4*len(p.Rules) + 256
	}
	prog := cloneProgram(p)
	seen := make(map[string]bool)
	for _, r := range prog.Rules {
		seen[ruleSignature(r)] = true
	}
	generated := 0
	for round := 0; ; round++ {
		if round > budget {
			return nil, fmt.Errorf("rewrite: harmful-join elimination exceeded round budget (recursive causes)")
		}
		res := analysis.Analyze(prog)
		idx := -1
		for i, ri := range res.Rules {
			if ri.HasHarmfulJoin {
				idx = i
				break
			}
		}
		if idx == -1 {
			renumber(prog)
			return prog, nil
		}
		alpha := prog.Rules[idx]
		ri := res.Rules[idx]
		newRules, err := eliminateOne(prog, alpha, ri, &generated, budget, seen)
		if err != nil {
			return nil, err
		}
		// Remove α, append the replacements.
		rest := make([]*ast.Rule, 0, len(prog.Rules)-1+len(newRules))
		rest = append(rest, prog.Rules[:idx]...)
		rest = append(rest, prog.Rules[idx+1:]...)
		rest = append(rest, newRules...)
		prog.Rules = rest
		renumber(prog)
	}
}

// eliminateOne performs one cause-elimination step for rule α.
func eliminateOne(prog *ast.Program, alpha *ast.Rule, ri *analysis.RuleInfo, generated *int, budget int, seen map[string]bool) ([]*ast.Rule, error) {
	h := pickJoinVar(alpha, ri)
	if h == "" {
		return nil, fmt.Errorf("rewrite: rule %d flagged harmful but no join variable found", alpha.ID)
	}
	// A is the first positive atom containing h; it is the atom unfolded.
	aIdx := -1
	for bi, a := range alpha.Body {
		if a.Negated || a.Pred == ast.DomPred {
			continue
		}
		for _, arg := range a.Args {
			if arg.IsVar && arg.Var == h {
				aIdx = bi
			}
		}
		if aIdx >= 0 {
			break
		}
	}
	if aIdx == -1 {
		return nil, fmt.Errorf("rewrite: join variable %s not found in rule %d", h, alpha.ID)
	}
	atomA := alpha.Body[aIdx]

	var out []*ast.Rule

	// Grounding: dom(h), α (with the ground copy the join is harmless).
	grounded := alpha.Clone()
	grounded.DomVars = append(grounded.DomVars, h)
	grounded.Skolem = alpha.SkolemBase()
	out = append(out, grounded)

	// Causes: rules whose head unifies with A.
	for _, beta := range prog.Rules {
		if beta.IsConstraint || beta.EGD != nil || beta.Aggregate != nil {
			continue
		}
		for _, bh := range beta.Heads {
			if bh.Pred != atomA.Pred || len(bh.Args) != len(atomA.Args) {
				continue
			}
			nr, ok, err := compose(alpha, aIdx, h, beta, bh)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue // virtual join or non-unifiable
			}
			sig := ruleSignature(nr)
			if seen[sig] {
				continue
			}
			seen[sig] = true
			*generated++
			if *generated > budget {
				return nil, fmt.Errorf("rewrite: harmful-join elimination exceeded rule budget (recursive causes)")
			}
			out = append(out, nr)
		}
	}
	return out, nil
}

func pickJoinVar(r *ast.Rule, ri *analysis.RuleInfo) string {
	occ := make(map[string]int)
	for _, a := range r.Body {
		if a.Negated || a.Pred == ast.DomPred {
			continue
		}
		local := make(map[string]bool)
		for _, arg := range a.Args {
			if arg.IsVar && arg.Var != "_" && !local[arg.Var] {
				local[arg.Var] = true
				occ[arg.Var]++
			}
		}
	}
	var cands []string
	for v, n := range occ {
		if n >= 2 && ri.Classes[v] != analysis.Harmless {
			cands = append(cands, v)
		}
	}
	sort.Strings(cands)
	if len(cands) == 0 {
		return ""
	}
	return cands[0]
}

// compose unfolds atom A (alpha.Body[aIdx]) of α with cause rule β whose
// head bh unifies with A. It returns ok=false when the unification fails
// or the Skolem simplification classifies the composed join as virtual.
func compose(alpha *ast.Rule, aIdx int, h string, beta *ast.Rule, bh ast.Atom) (*ast.Rule, bool, error) {
	// Rename β's variables apart.
	prefix := fmt.Sprintf("b%d_", beta.ID)
	rb := renameRule(beta, prefix)
	rbh := renameAtom(bh, prefix, beta)

	exists := make(map[string]bool)
	for _, z := range beta.Existentials() {
		exists[prefix+z] = true
	}

	// Build the substitution over α's and renamed-β's variables.
	sub := map[string]ast.Arg{}
	resolve := func(a ast.Arg) ast.Arg {
		for a.IsVar {
			nxt, ok := sub[a.Var]
			if !ok {
				return a
			}
			a = nxt
		}
		return a
	}
	unify := func(x, y ast.Arg) bool {
		x, y = resolve(x), resolve(y)
		if x.IsVar && y.IsVar {
			if x.Var != y.Var {
				sub[x.Var] = y
			}
			return true
		}
		if x.IsVar {
			sub[x.Var] = y
			return true
		}
		if y.IsVar {
			sub[y.Var] = x
			return true
		}
		return x.Const == y.Const
	}

	directPos := -1 // position of h in A where β creates the null
	atomA := alpha.Body[aIdx]
	for i, aArg := range atomA.Args {
		bArg := rbh.Args[i]
		if aArg.IsVar && aArg.Var == h {
			if bArg.IsVar && exists[bArg.Var] {
				directPos = i
				continue // handled via Skolem below
			}
			// Indirect: h unifies with β's universal head variable.
			if !unify(aArg, bArg) {
				return nil, false, nil
			}
			continue
		}
		if bArg.IsVar && exists[bArg.Var] {
			// A requires a specific (non-join) value where β creates a
			// fresh null: if A's arg is a constant this join is virtual
			// (1a); if it is a variable it now carries the Skolem value.
			if !aArg.IsVar {
				return nil, false, nil
			}
		}
		if !unify(aArg, bArg) {
			return nil, false, nil
		}
	}

	nr := &ast.Rule{Skolem: alpha.SkolemBase() + "+" + beta.SkolemBase()}
	nr.Heads = cloneHeadAtoms(alpha.Heads)
	nr.IsConstraint = alpha.IsConstraint
	if alpha.EGD != nil {
		egd := *alpha.EGD
		nr.EGD = &egd
	}
	// Body: β's body (renamed) + α's body minus A.
	nr.Body = append(nr.Body, rb.Body...)
	for bi, a := range alpha.Body {
		if bi == aIdx {
			continue
		}
		nr.Body = append(nr.Body, a)
	}
	nr.Conds = append(append([]ast.Condition(nil), rb.Conds...), alpha.Conds...)
	nr.Assignments = append(append([]ast.Assignment(nil), rb.Assignments...), alpha.Assignments...)
	nr.UsesDom = alpha.UsesDom || beta.UsesDom
	nr.DomVars = append(append([]string(nil), rb.DomVars...), alpha.DomVars...)
	if alpha.Aggregate != nil {
		ag := *alpha.Aggregate
		nr.Aggregate = &ag
	}

	if directPos >= 0 {
		// Direct cause: h becomes the Skolem term of β's existential.
		z := bh.Args[directPos].Var
		bodyVars := beta.BodyVars()
		sort.Strings(bodyVars)
		skArgs := make([]ast.Expr, len(bodyVars))
		for i, v := range bodyVars {
			skArgs[i] = ast.VarExpr{Name: prefix + v}
		}
		skName := "#" + beta.SkolemBase() + ":" + z
		// Simplification 1b/1c/linearization: if h is already bound to a
		// Skolem assignment in α, compare functions.
		for _, asg := range alpha.Assignments {
			if asg.Var != h {
				continue
			}
			if fe, ok := asg.Expr.(ast.FuncExpr); ok && fe.IsSkolem() {
				if fe.Name != skName {
					return nil, false, nil // (1b) distinct functions never equal
				}
				// Linearization: same function — unify the argument lists.
				if len(fe.Args) != len(skArgs) {
					return nil, false, nil
				}
				for i := range fe.Args {
					av, aok := fe.Args[i].(ast.VarExpr)
					bv, bok := skArgs[i].(ast.VarExpr)
					if aok && bok {
						if !unify(ast.V(av.Name), ast.V(bv.Name)) {
							return nil, false, nil
						}
					}
				}
			}
		}
		nr.Assignments = append(nr.Assignments, ast.Assignment{
			Var:  h,
			Expr: ast.FuncExpr{Name: skName, Args: skArgs},
		})
	}

	// Apply the substitution everywhere.
	applySub := func(a *ast.Atom) {
		for i := range a.Args {
			a.Args[i] = resolve(a.Args[i])
		}
	}
	for i := range nr.Body {
		applySub(&nr.Body[i])
	}
	for i := range nr.Heads {
		applySub(&nr.Heads[i])
	}
	for i, c := range nr.Conds {
		nr.Conds[i] = ast.Condition{Op: c.Op, L: substExpr(c.L, resolve), R: substExpr(c.R, resolve)}
	}
	for i, a := range nr.Assignments {
		nv := resolve(ast.V(a.Var))
		if !nv.IsVar {
			return nil, false, nil // assignment target equated to constant: virtual
		}
		nr.Assignments[i] = ast.Assignment{Var: nv.Var, Expr: substExpr(a.Expr, resolve)}
	}
	for i, v := range nr.DomVars {
		if nv := resolve(ast.V(v)); nv.IsVar {
			nr.DomVars[i] = nv.Var
		}
	}
	// Occurs check (1c): a Skolem assignment whose arguments reach the
	// assigned variable denotes f(...f(x)...) = x, never satisfiable.
	for _, asg := range nr.Assignments {
		if fe, ok := asg.Expr.(ast.FuncExpr); ok && fe.IsSkolem() {
			for _, v := range fe.Args {
				if ve, ok := v.(ast.VarExpr); ok && ve.Name == asg.Var {
					return nil, false, nil
				}
			}
		}
	}
	return nr, true, nil
}

func substExpr(e ast.Expr, resolve func(ast.Arg) ast.Arg) ast.Expr {
	switch ex := e.(type) {
	case ast.VarExpr:
		a := resolve(ast.V(ex.Name))
		if a.IsVar {
			return ast.VarExpr{Name: a.Var}
		}
		return ast.ConstExpr{Val: a.Const}
	case ast.BinExpr:
		return ast.BinExpr{Op: ex.Op, L: substExpr(ex.L, resolve), R: substExpr(ex.R, resolve)}
	case ast.FuncExpr:
		args := make([]ast.Expr, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = substExpr(a, resolve)
		}
		return ast.FuncExpr{Name: ex.Name, Args: args}
	default:
		return e
	}
}

func renameRule(r *ast.Rule, prefix string) *ast.Rule {
	nr := r.Clone()
	ren := func(a *ast.Atom) {
		for i := range a.Args {
			if a.Args[i].IsVar && a.Args[i].Var != "_" {
				a.Args[i].Var = prefix + a.Args[i].Var
			}
		}
	}
	for i := range nr.Body {
		ren(&nr.Body[i])
	}
	for i := range nr.Heads {
		ren(&nr.Heads[i])
	}
	rv := func(a ast.Arg) ast.Arg { return a }
	_ = rv
	renExpr := func(e ast.Expr) ast.Expr {
		return substExpr(e, func(a ast.Arg) ast.Arg {
			if a.IsVar && a.Var != "_" && !strings.HasPrefix(a.Var, prefix) {
				return ast.V(prefix + a.Var)
			}
			return a
		})
	}
	for i, c := range nr.Conds {
		nr.Conds[i] = ast.Condition{Op: c.Op, L: renExpr(c.L), R: renExpr(c.R)}
	}
	for i, asg := range nr.Assignments {
		nr.Assignments[i] = ast.Assignment{Var: prefix + asg.Var, Expr: renExpr(asg.Expr)}
	}
	for i, v := range nr.DomVars {
		nr.DomVars[i] = prefix + v
	}
	return nr
}

func renameAtom(a ast.Atom, prefix string, _ *ast.Rule) ast.Atom {
	na := a
	na.Args = append([]ast.Arg(nil), a.Args...)
	for i := range na.Args {
		if na.Args[i].IsVar && na.Args[i].Var != "_" {
			na.Args[i].Var = prefix + na.Args[i].Var
		}
	}
	return na
}

func ruleSignature(r *ast.Rule) string {
	// Canonicalize variable names by first occurrence so α-equivalent
	// rules share a signature.
	names := make(map[string]string)
	var canon func(a ast.Arg) string
	canon = func(a ast.Arg) string {
		if !a.IsVar {
			return a.Const.String()
		}
		n, ok := names[a.Var]
		if !ok {
			n = fmt.Sprintf("V%d", len(names))
			names[a.Var] = n
		}
		return n
	}
	var sb strings.Builder
	atomSig := func(a ast.Atom) {
		if a.Negated {
			sb.WriteString("not ")
		}
		sb.WriteString(a.Pred)
		sb.WriteByte('(')
		for _, arg := range a.Args {
			sb.WriteString(canon(arg))
			sb.WriteByte(',')
		}
		sb.WriteByte(')')
	}
	for _, a := range r.Body {
		atomSig(a)
	}
	sb.WriteString("->")
	for _, a := range r.Heads {
		atomSig(a)
	}
	for _, c := range r.Conds {
		sb.WriteString(c.String())
	}
	for _, asg := range r.Assignments {
		sb.WriteString(asg.String())
	}
	sort.Strings(r.DomVars)
	for _, v := range r.DomVars {
		sb.WriteString("dom:" + canon(ast.V(v)))
	}
	if r.UsesDom {
		sb.WriteString("dom*")
	}
	return sb.String()
}

func cloneProgram(p *ast.Program) *ast.Program {
	out := cloneShell(p)
	for _, r := range p.Rules {
		out.AddRule(r.Clone())
	}
	return out
}
