package rewrite

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/parser"
)

func TestSplitMultiHeads(t *testing.T) {
	prog := parser.MustParse(`
		incorp(X,Y) -> own(Z, X), own(Z, Y).
	`)
	out := SplitMultiHeads(prog)
	if len(out.Rules) != 2 {
		t.Fatalf("rules: %d", len(out.Rules))
	}
	// Both split rules must share the Skolem base so Z denotes one null.
	if out.Rules[0].SkolemBase() != out.Rules[1].SkolemBase() {
		t.Errorf("skolem bases differ: %s vs %s",
			out.Rules[0].SkolemBase(), out.Rules[1].SkolemBase())
	}
}

func TestLinearizeExistentials(t *testing.T) {
	prog := parser.MustParse(`
		a(X,Y), b(Y,Z) -> c(X, W).
	`)
	aux := make(map[string]bool)
	out := LinearizeExistentials(prog, aux)
	if len(out.Rules) != 2 {
		t.Fatalf("rules: %d", len(out.Rules))
	}
	res := analysis.Analyze(out)
	for _, ri := range res.Rules {
		if len(ri.Rule.Existentials()) > 0 && !ri.Rule.IsLinear() {
			t.Errorf("existential rule still non-linear: %s", ri.Rule)
		}
	}
	if len(aux) != 1 {
		t.Errorf("aux preds: %v", aux)
	}
}

func TestDynamicHJEMakesHarmless(t *testing.T) {
	prog := parser.MustParse(`
		keyPerson(X,P) -> psc(X,P).
		company(X) -> psc(X, P).
		control(Y,X), psc(Y,P) -> psc(X,P).
		psc(X,P), psc(Y,P), X > Y -> strongLink(X,Y).
	`)
	out, tags, notes := EliminateHarmfulJoinsDynamic(prog)
	if len(tags) == 0 || tags["psc"] == "" {
		t.Fatalf("psc must get a tag twin: %v", tags)
	}
	if len(notes) == 0 {
		t.Error("expected rewrite notes")
	}
	res := analysis.Analyze(out)
	for _, ri := range res.Rules {
		if ri.HasHarmfulJoin {
			t.Errorf("harmful join survives: %s", ri.Rule)
		}
	}
	if !res.Warded {
		t.Errorf("rewritten program must stay warded: %v", res.Violations)
	}
}

func TestDynamicHJENoChange(t *testing.T) {
	prog := parser.MustParse(`
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
	`)
	out, tags, _ := EliminateHarmfulJoinsDynamic(prog)
	if len(tags) != 0 {
		t.Errorf("no harmful joins, no tags: %v", tags)
	}
	if out != prog {
		t.Error("program without harmful joins should be returned unchanged")
	}
}

// TestStaticHJENonRecursive runs the paper's static algorithm on a
// non-recursive cause structure and checks the result is harmless.
func TestStaticHJENonRecursive(t *testing.T) {
	prog := parser.MustParse(`
		company(X) -> psc(X, P).
		keyPerson(X,P) -> psc(X,P).
		psc(X,P), psc(Y,P), X > Y -> strongLink(X,Y).
	`)
	out, err := EliminateHarmfulJoinsStatic(prog, 0)
	if err != nil {
		t.Fatalf("static HJE: %v", err)
	}
	res := analysis.Analyze(out)
	for _, ri := range res.Rules {
		if ri.HasHarmfulJoin {
			t.Errorf("harmful join survives: %s", ri.Rule)
		}
	}
	// The grounding step must have produced a dom-guarded copy.
	found := false
	for _, r := range out.Rules {
		if len(r.DomVars) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("grounding step missing (no dom-guarded rule)")
	}
}

// TestStaticHJERecursiveGivesUp: recursive causes exceed the budget and
// report an error (callers then use the dynamic elimination).
func TestStaticHJERecursiveGivesUp(t *testing.T) {
	prog := parser.MustParse(`
		company(X) -> psc(X, P).
		control(Y,X), psc(Y,P) -> psc(X,P).
		psc(X,P), psc(Y,P), X > Y -> strongLink(X,Y).
	`)
	_, err := EliminateHarmfulJoinsStatic(prog, 50)
	if err == nil {
		t.Skip("static HJE handled the recursive case (folding not required)")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("expected budget error, got: %v", err)
	}
}

// TestStaticHJESkolemSimplification: a direct cause whose Skolem term
// would need to equal a constant yields a virtual join (dropped).
func TestStaticHJEVirtualJoin(t *testing.T) {
	prog := parser.MustParse(`
		company(X) -> psc(X, P).
		psc(X,P), psc(Y,P), X > Y -> strongLink(X,Y).
	`)
	out, err := EliminateHarmfulJoinsStatic(prog, 0)
	if err != nil {
		t.Fatalf("static HJE: %v", err)
	}
	// The composed rule psc'(X,f(X)), psc(Y,f(X)) linearizes by
	// injectivity: X=Y, contradicting X > Y at runtime — but the rewrite
	// must at least terminate and stay harmless.
	res := analysis.Analyze(out)
	for _, ri := range res.Rules {
		if ri.HasHarmfulJoin {
			t.Errorf("harmful join survives: %s", ri.Rule)
		}
	}
}

func TestApplyDefaultPipeline(t *testing.T) {
	prog := parser.MustParse(`
		incorp(X,Y) -> own(Z, X), own(Z, Y).
		a(X,Y), b(Y,Z) -> c(X, W).
		own(Z,X), own(Z,Y), X != Y -> siblings(X,Y).
	`)
	res, err := Apply(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ana := analysis.Analyze(res.Program)
	if !ana.Warded {
		t.Fatalf("pipeline output must be warded: %v", ana.Violations)
	}
	for _, ri := range ana.Rules {
		if ri.HasHarmfulJoin {
			t.Errorf("harmful join survives Apply: %s", ri.Rule)
		}
		if len(ri.Rule.Existentials()) > 0 && !ri.Rule.IsLinear() {
			t.Errorf("non-linear existential survives Apply: %s", ri.Rule)
		}
		if len(ri.Rule.Heads) > 1 {
			t.Errorf("multi-head survives Apply: %s", ri.Rule)
		}
	}
	// Rule IDs must be consecutive after renumbering.
	for i, r := range res.Program.Rules {
		if r.ID != i {
			t.Errorf("rule %d has ID %d", i, r.ID)
		}
	}
}

func TestRuleSignatureAlphaEquivalence(t *testing.T) {
	r1 := parser.MustParse(`p(X,Y), q(Y,Z) -> r(X,Z).`).Rules[0]
	r2 := parser.MustParse(`p(A,B), q(B,C) -> r(A,C).`).Rules[0]
	r3 := parser.MustParse(`p(A,B), q(C,B) -> r(A,C).`).Rules[0]
	if ruleSignature(r1) != ruleSignature(r2) {
		t.Error("alpha-equivalent rules must share a signature")
	}
	if ruleSignature(r1) == ruleSignature(r3) {
		t.Error("different rules must not share a signature")
	}
}
