package baseline

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/term"
)

func analyzed(t *testing.T, src string) *analysis.Result {
	t.Helper()
	return analysis.Analyze(parser.MustParse(src))
}

func TestTrivialIsoGlobalCut(t *testing.T) {
	res := analyzed(t, `p(X, N) -> p(X, M).`)
	p := NewTrivialIso(res)
	a := p.NewEDBFact(ast.NewFact("p", term.String("a"), term.String("seed")))
	f1 := p.Derive(ast.NewFact("p", term.String("a"), term.Null(1)), 0, []*core.FactMeta{a})
	if !p.CheckTermination(f1) {
		t.Fatal("first null fact admitted")
	}
	// Isomorphic fact from a *different* derivation context is still cut —
	// the global store does not distinguish trees.
	f2 := p.Derive(ast.NewFact("p", term.String("a"), term.Null(9)), 0, []*core.FactMeta{a})
	if p.CheckTermination(f2) {
		t.Fatal("global isomorphism cut must reject")
	}
	if p.Checks != 2 || p.StoredFacts() < 2 {
		t.Errorf("stats: checks=%d stored=%d", p.Checks, p.StoredFacts())
	}
}

func TestRestrictedHomSubsumption(t *testing.T) {
	res := analyzed(t, `c(X) -> p(X, N).`)
	p := NewRestrictedHom(res)
	root := p.NewEDBFact(ast.NewFact("c", term.String("a")))
	f1 := p.Derive(ast.NewFact("p", term.String("a"), term.Null(1)), 0, []*core.FactMeta{root})
	if !p.CheckTermination(f1) {
		t.Fatal("first fact admitted")
	}
	// A fresh-null variant is homomorphically subsumed by f1.
	f2 := p.Derive(ast.NewFact("p", term.String("a"), term.Null(2)), 0, []*core.FactMeta{root})
	if p.CheckTermination(f2) {
		t.Fatal("subsumed fact must be rejected")
	}
	// Different constant: admitted.
	f3 := p.Derive(ast.NewFact("p", term.String("b"), term.Null(3)), 0, []*core.FactMeta{root})
	if !p.CheckTermination(f3) {
		t.Fatal("non-subsumed fact must pass")
	}
	// Ground facts always pass (engine handles exact duplicates).
	g := p.Derive(ast.NewFact("p", term.String("a"), term.String("x")), 0, []*core.FactMeta{root})
	if !p.CheckTermination(g) {
		t.Fatal("ground facts pass")
	}
}

func TestRestrictedHomNullToConstant(t *testing.T) {
	res := analyzed(t, `c(X) -> p(X, N).`)
	p := NewRestrictedHom(res)
	root := p.NewEDBFact(ast.NewFact("c", term.String("a")))
	// A stored fact with a CONSTANT where the candidate has a null also
	// subsumes (h maps the null to the constant)... but only null-carrying
	// facts live in the store; constants pass through. Store a null fact
	// whose positions differ.
	f1 := p.Derive(ast.NewFact("p", term.String("a"), term.Null(1)), 0, []*core.FactMeta{root})
	p.CheckTermination(f1)
	// Candidate with repeated nulls must map consistently.
	f2 := p.Derive(ast.NewFact("p", term.Null(5), term.Null(5)), 0, []*core.FactMeta{root})
	if !p.CheckTermination(f2) {
		t.Fatal("p(n5,n5) is not subsumed by p(a,n1)")
	}
	f3 := p.Derive(ast.NewFact("p", term.Null(6), term.Null(6)), 0, []*core.FactMeta{root})
	if p.CheckTermination(f3) {
		t.Fatal("p(n6,n6) is subsumed by p(n5,n5)")
	}
}

func TestHomSubsumes(t *testing.T) {
	cases := []struct {
		f, g ast.Fact
		want bool
	}{
		{ast.NewFact("p", term.Null(1)), ast.NewFact("p", term.String("a")), true},
		{ast.NewFact("p", term.Null(1), term.Null(1)), ast.NewFact("p", term.String("a"), term.String("a")), true},
		{ast.NewFact("p", term.Null(1), term.Null(1)), ast.NewFact("p", term.String("a"), term.String("b")), false},
		{ast.NewFact("p", term.String("a"), term.Null(1)), ast.NewFact("p", term.String("b"), term.String("c")), false},
		{ast.NewFact("p", term.Null(1), term.Null(2)), ast.NewFact("p", term.String("a"), term.String("a")), true},
	}
	for i, c := range cases {
		if got := homSubsumes(c.f, c.g); got != c.want {
			t.Errorf("case %d: homSubsumes(%v, %v) = %v, want %v", i, c.f, c.g, got, c.want)
		}
	}
}

func TestSkolemChaseAdmitsEverything(t *testing.T) {
	res := analyzed(t, `p(X) -> q(X).`)
	p := NewSkolemChase(res)
	root := p.NewEDBFact(ast.NewFact("p", term.String("a")))
	for i := 0; i < 5; i++ {
		m := p.Derive(ast.NewFact("q", term.Null(int64(i))), 0, []*core.FactMeta{root})
		if !p.CheckTermination(m) {
			t.Fatal("skolem chase never cuts")
		}
	}
}

func TestBulkEngineTransitiveClosure(t *testing.T) {
	prog := parser.MustParse(`
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
	`)
	be, err := NewBulkEngine(prog)
	if err != nil {
		t.Fatal(err)
	}
	edb := []ast.Fact{
		ast.NewFact("edge", term.String("a"), term.String("b")),
		ast.NewFact("edge", term.String("b"), term.String("c")),
		ast.NewFact("edge", term.String("c"), term.String("a")),
	}
	if err := be.Run(edb); err != nil {
		t.Fatal(err)
	}
	if got := be.Count("path"); got != 9 {
		t.Fatalf("paths: %d, want 9", got)
	}
	if be.Iterations < 2 {
		t.Errorf("semi-naive iterations: %d", be.Iterations)
	}
	if be.IndexBuilds == 0 {
		t.Error("bulk engine must rebuild indexes")
	}
}

func TestBulkEngineRejectsExistentials(t *testing.T) {
	prog := parser.MustParse(`p(X) -> q(X, Z).`)
	if _, err := NewBulkEngine(prog); err == nil {
		t.Fatal("existential rules must be rejected")
	}
	prog = parser.MustParse(`p(X), X > 1, T = X + 1 -> q(T).`)
	be, err := NewBulkEngine(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := be.Run([]ast.Fact{ast.NewFact("p", term.Int(5))}); err != nil {
		t.Fatal(err)
	}
	if be.Count("q") != 1 {
		t.Errorf("conditions/assignments in bulk engine: %v", be.Facts("q"))
	}
}
