// Package baseline implements the comparator regimes of the paper's
// evaluation: the trivial termination technique of Sec. 6.6 (exhaustive
// isomorphism check over all generated facts), the restricted-chase
// homomorphism check used by Graal/PDQ/LLunatic-like systems, the
// unrestricted Skolem chase used by DLV/RDFox-like systems, and a bulk
// semi-naive Datalog evaluator standing in for recursive-SQL engines.
// The first three are core.Policy implementations pluggable into both the
// chase and the pipeline engine, so comparisons isolate exactly the
// algorithmic regime the paper attributes the differences to.
package baseline

import (
	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/storage"
)

// TrivialIso is the "trivial technique" of Sec. 6.6: memorize every
// generated fact up to isomorphism (hash-indexed for constant-time
// retrieval) and cut the chase whenever an isomorphic fact was already
// generated anywhere. Unlike the full strategy it keeps a single global
// store, so memory grows with the whole chase and no pattern learning
// (lifted linear forest) amortizes the checks.
type TrivialIso struct {
	res  *analysis.Result
	seen map[string]bool
	// Checks counts isomorphism probes (every candidate fact pays one).
	Checks int
}

// NewTrivialIso builds the policy for an analyzed program.
func NewTrivialIso(res *analysis.Result) *TrivialIso {
	return &TrivialIso{res: res, seen: make(map[string]bool)}
}

// NewEDBFact registers a database fact.
func (p *TrivialIso) NewEDBFact(f ast.Fact) *core.FactMeta {
	p.seen[f.IsoKey()] = true
	return &core.FactMeta{Fact: f, Kind: analysis.KindNonLinear}
}

// Derive wraps a derived fact with minimal metadata.
func (p *TrivialIso) Derive(f ast.Fact, ruleID int, parents []*core.FactMeta) *core.FactMeta {
	return &core.FactMeta{Fact: f, Kind: p.res.Rules[ruleID].Kind, RuleID: ruleID}
}

// CheckTermination admits the fact iff no isomorphic fact was generated
// before, storing it otherwise.
func (p *TrivialIso) CheckTermination(m *core.FactMeta) bool {
	p.Checks++
	k := m.Fact.IsoKey()
	if p.seen[k] {
		return false
	}
	p.seen[k] = true
	return true
}

// NoteSuperseded forgets a superseded aggregate intermediate: the fact is
// no longer stored, so its isomorphism class must not cut a later,
// independent derivation of the same value (core.SupersessionObserver).
func (p *TrivialIso) NoteSuperseded(old ast.Fact) {
	delete(p.seen, old.IsoKey())
}

// StoredFacts returns how many facts the global store holds.
func (p *TrivialIso) StoredFacts() int { return len(p.seen) }

// RestrictedHom emulates the restricted chase of back-end based systems:
// before admitting a fact produced by an existential rule firing (fresh
// labelled nulls), it searches the already-stored null-carrying facts of
// the same predicate for one that subsumes it homomorphically (constants
// fixed, fresh nulls mapped consistently). The scan runs per predicate on
// every existential chase step — modelling the per-step SQL checks those
// systems execute without incremental maintenance (Sec. 7, Example 14).
// Facts that merely propagate pre-existing nulls are admitted untouched:
// their nulls are shared with other facts, so mapping them would not be a
// homomorphism of the instance.
type RestrictedHom struct {
	res   *analysis.Result
	store map[string]*storage.Relation // pred -> facts with nulls
	// Checks counts homomorphism searches; Scanned counts candidate facts
	// visited during them.
	Checks  int
	Scanned int
}

// NewRestrictedHom builds the policy for an analyzed program.
func NewRestrictedHom(res *analysis.Result) *RestrictedHom {
	return &RestrictedHom{res: res, store: make(map[string]*storage.Relation)}
}

// NewEDBFact registers a database fact.
func (p *RestrictedHom) NewEDBFact(f ast.Fact) *core.FactMeta {
	return &core.FactMeta{Fact: f, Kind: analysis.KindNonLinear}
}

// Derive wraps a derived fact with minimal metadata.
func (p *RestrictedHom) Derive(f ast.Fact, ruleID int, parents []*core.FactMeta) *core.FactMeta {
	m := &core.FactMeta{Fact: f, Kind: p.res.Rules[ruleID].Kind, RuleID: ruleID}
	m.FreshNulls = factNullsFresh(f, parents)
	return m
}

// CheckTermination rejects facts subsumed by a stored fact via a null
// homomorphism; ground facts and null-propagating facts pass (the
// engine's exact-duplicate check handles equality). The per-predicate
// scan is intentional: backend systems re-run the check as a query over
// the whole relation on every chase step.
func (p *RestrictedHom) CheckTermination(m *core.FactMeta) bool {
	f := m.Fact
	if f.IsGround() || !m.FreshNulls {
		p.storeFact(f)
		return true
	}
	if m.RuleID >= 0 && len(p.res.Rules[m.RuleID].Rule.Existentials()) == 0 {
		p.storeFact(f)
		return true
	}
	p.Checks++
	rel := p.store[f.Pred]
	if rel == nil {
		rel = storage.NewRelation(f.Pred, len(f.Args))
		p.store[f.Pred] = rel
	}
	for _, row := range rel.Lookup(0, f.Args) {
		p.Scanned++
		if homSubsumes(f, rel.At(int(row)).Fact) {
			return false
		}
	}
	rel.Insert(&core.FactMeta{Fact: f})
	return true
}

// storeFact records an admitted null-carrying fact so later subsumption
// scans see it.
func (p *RestrictedHom) storeFact(f ast.Fact) {
	if f.IsGround() {
		return
	}
	rel := p.store[f.Pred]
	if rel == nil {
		rel = storage.NewRelation(f.Pred, len(f.Args))
		p.store[f.Pred] = rel
	}
	rel.Insert(&core.FactMeta{Fact: f})
}

// factNullsFresh reports whether none of f's nulls occur in the parents.
func factNullsFresh(f ast.Fact, parents []*core.FactMeta) bool {
	for _, v := range f.Args {
		if !v.IsNull() {
			continue
		}
		for _, par := range parents {
			if par == nil {
				continue
			}
			for _, pv := range par.Fact.Args {
				if pv == v {
					return false
				}
			}
		}
	}
	return true
}

// homSubsumes reports whether there is a homomorphism from f to g fixing
// constants and mapping f's nulls to g's terms consistently.
func homSubsumes(f, g ast.Fact) bool {
	if f.Pred != g.Pred || len(f.Args) != len(g.Args) {
		return false
	}
	var m map[int64]int
	for i, x := range f.Args {
		y := g.Args[i]
		if !x.IsNull() {
			if x != y {
				return false
			}
			continue
		}
		if m == nil {
			m = make(map[int64]int, 4)
		}
		// Map null x to position value y; consistency via the value itself.
		key := x.NullID()
		if prev, ok := m[key]; ok {
			if g.Args[prev] != y {
				return false
			}
		} else {
			m[key] = i
		}
	}
	return true
}

// SkolemChase is the unrestricted (semi-oblivious) chase: no termination
// checks beyond the engines' exact-duplicate elimination. It mirrors
// systems that Skolemize existentials and run plain Datalog (DLV with
// Skolemization, RDFox's unrestricted mode). It terminates only when the
// Skolem chase of the program is finite.
type SkolemChase struct {
	res *analysis.Result
}

// NewSkolemChase builds the policy for an analyzed program.
func NewSkolemChase(res *analysis.Result) *SkolemChase { return &SkolemChase{res: res} }

// NewEDBFact registers a database fact.
func (p *SkolemChase) NewEDBFact(f ast.Fact) *core.FactMeta {
	return &core.FactMeta{Fact: f, Kind: analysis.KindNonLinear}
}

// Derive wraps a derived fact with minimal metadata.
func (p *SkolemChase) Derive(f ast.Fact, ruleID int, parents []*core.FactMeta) *core.FactMeta {
	return &core.FactMeta{Fact: f, Kind: p.res.Rules[ruleID].Kind, RuleID: ruleID}
}

// CheckTermination always admits.
func (p *SkolemChase) CheckTermination(m *core.FactMeta) bool { return true }

var (
	_ core.Policy               = (*TrivialIso)(nil)
	_ core.Policy               = (*RestrictedHom)(nil)
	_ core.Policy               = (*SkolemChase)(nil)
	_ core.SupersessionObserver = (*TrivialIso)(nil)
)
