package baseline

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/term"
)

// BulkEngine is a bulk semi-naive Datalog evaluator standing in for the
// relational comparators of Sec. 6.3 (PostgreSQL / MySQL / Oracle
// recursive CTEs, Neo4j): it supports plain Datalog (no existentials, no
// aggregation) and evaluates iteration-wise with hash indexes rebuilt on
// every iteration, the way a recursive CTE re-materializes its work table
// — precisely the behaviour the paper contrasts with the streaming
// pipeline and its persistent dynamic indexes.
type BulkEngine struct {
	prog  *ast.Program
	rels  map[string][]ast.Fact
	exact map[string]map[string]bool

	// Iterations counts the semi-naive rounds executed; IndexBuilds counts
	// hash-index constructions (rebuilt per round per join).
	Iterations  int
	IndexBuilds int
}

// NewBulkEngine validates that prog is plain Datalog and prepares the
// evaluator.
func NewBulkEngine(prog *ast.Program) (*BulkEngine, error) {
	for _, r := range prog.Rules {
		if r.IsConstraint || r.EGD != nil || r.Aggregate != nil {
			return nil, fmt.Errorf("baseline: bulk engine supports plain Datalog only (rule %d)", r.ID)
		}
		if len(r.Existentials()) > 0 {
			return nil, fmt.Errorf("baseline: bulk engine cannot evaluate existential rule %d", r.ID)
		}
		for _, a := range r.Body {
			if a.Negated {
				return nil, fmt.Errorf("baseline: bulk engine does not support negation (rule %d)", r.ID)
			}
		}
	}
	return &BulkEngine{
		prog:  prog,
		rels:  make(map[string][]ast.Fact),
		exact: make(map[string]map[string]bool),
	}, nil
}

func (e *BulkEngine) insert(f ast.Fact) bool {
	set := e.exact[f.Pred]
	if set == nil {
		set = make(map[string]bool)
		e.exact[f.Pred] = set
	}
	k := f.Key()
	if set[k] {
		return false
	}
	set[k] = true
	e.rels[f.Pred] = append(e.rels[f.Pred], f)
	return true
}

// Run evaluates the program over edb to fixpoint.
func (e *BulkEngine) Run(edb []ast.Fact) error {
	for _, f := range e.prog.Facts {
		e.insert(f)
	}
	for _, f := range edb {
		e.insert(f)
	}
	// Semi-naive: delta = newly derived facts of the previous round.
	delta := make(map[string][]ast.Fact, len(e.rels))
	for p, fs := range e.rels {
		delta[p] = fs
	}
	for len(delta) > 0 {
		e.Iterations++
		next := make(map[string][]ast.Fact)
		for _, r := range e.prog.Rules {
			for pin := range r.Body {
				dfs := delta[r.Body[pin].Pred]
				if len(dfs) == 0 {
					continue
				}
				if err := e.applyPinned(r, pin, dfs, next); err != nil {
					return err
				}
			}
		}
		delta = next
	}
	return nil
}

// applyPinned joins rule r with body atom pin ranging over the delta facts
// and the remaining atoms over the full relations, building one hash index
// per non-pinned atom per call (per-iteration rebuild).
func (e *BulkEngine) applyPinned(r *ast.Rule, pin int, dfs []ast.Fact, next map[string][]ast.Fact) error {
	type idx struct {
		mask uint32
		m    map[string][]int
	}
	indexes := make([]*idx, len(r.Body))
	env := make(map[string]term.Value)

	var rec func(order []int, k int) error
	rec = func(order []int, k int) error {
		if k == len(order) {
			for _, c := range r.Conds {
				ok, err := ast.EvalCondition(c, env)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			for _, asg := range r.Assignments {
				v, err := asg.Expr.Eval(env)
				if err != nil {
					return err
				}
				env[asg.Var] = v
			}
			for _, h := range r.Heads {
				args := make([]term.Value, len(h.Args))
				for i, a := range h.Args {
					if a.IsVar {
						args[i] = env[a.Var]
					} else {
						args[i] = a.Const
					}
				}
				f := ast.Fact{Pred: h.Pred, Args: args}
				if e.insert(f) {
					next[f.Pred] = append(next[f.Pred], f)
				}
			}
			return nil
		}
		bi := order[k]
		a := r.Body[bi]
		rel := e.rels[a.Pred]
		// Determine bound positions under env.
		var mask uint32
		var probeParts []string
		for i, arg := range a.Args {
			if !arg.IsVar {
				mask |= 1 << uint(i)
				probeParts = append(probeParts, arg.Const.String())
			} else if v, ok := env[arg.Var]; ok {
				mask |= 1 << uint(i)
				probeParts = append(probeParts, v.String())
			}
		}
		var rows []int
		if mask == 0 {
			rows = make([]int, len(rel))
			for i := range rel {
				rows[i] = i
			}
		} else {
			ix := indexes[bi]
			if ix == nil || ix.mask != mask {
				// Rebuild the hash index for this mask (bulk engines do not
				// keep indexes across iterations).
				e.IndexBuilds++
				ix = &idx{mask: mask, m: make(map[string][]int, len(rel))}
				for i, f := range rel {
					var parts []string
					for p := 0; p < len(f.Args); p++ {
						if mask&(1<<uint(p)) != 0 {
							parts = append(parts, f.Args[p].String())
						}
					}
					key := strings.Join(parts, "\x00")
					ix.m[key] = append(ix.m[key], i)
				}
				indexes[bi] = ix
			}
			rows = ix.m[strings.Join(probeParts, "\x00")]
		}
		for _, row := range rows {
			f := rel[row]
			var bound []string
			ok := true
			for i, arg := range a.Args {
				if !arg.IsVar {
					if f.Args[i] != arg.Const {
						ok = false
						break
					}
					continue
				}
				if v, has := env[arg.Var]; has {
					if v != f.Args[i] {
						ok = false
						break
					}
				} else {
					env[arg.Var] = f.Args[i]
					bound = append(bound, arg.Var)
				}
			}
			if ok {
				if err := rec(order, k+1); err != nil {
					return err
				}
			}
			for _, v := range bound {
				delete(env, v)
			}
		}
		return nil
	}

	order := make([]int, 0, len(r.Body))
	for i := range r.Body {
		if i != pin {
			order = append(order, i)
		}
	}
	for _, df := range dfs {
		clear(env)
		a := r.Body[pin]
		if len(a.Args) != len(df.Args) {
			continue
		}
		ok := true
		for i, arg := range a.Args {
			if !arg.IsVar {
				if df.Args[i] != arg.Const {
					ok = false
					break
				}
				continue
			}
			if v, has := env[arg.Var]; has {
				if v != df.Args[i] {
					ok = false
					break
				}
			} else {
				env[arg.Var] = df.Args[i]
			}
		}
		if !ok {
			continue
		}
		if err := rec(order, 0); err != nil {
			return err
		}
	}
	return nil
}

// Facts returns the facts of pred.
func (e *BulkEngine) Facts(pred string) []ast.Fact { return e.rels[pred] }

// Count returns |pred|.
func (e *BulkEngine) Count(pred string) int { return len(e.rels[pred]) }
