package analysis

import (
	"testing"

	"repro/internal/parser"
)

// TestPaperExample4 checks the affected-position and variable-class
// analysis on paper Example 4.
func TestPaperExample4(t *testing.T) {
	prog := parser.MustParse(`
		p(X) -> q(Z, X).
		q(X, Y), p(Y) -> t(X).
	`)
	res := Analyze(prog)
	if !res.Warded {
		t.Fatalf("example 4 is warded: %v", res.Violations)
	}
	if !res.Affected[Position{"q", 0}] {
		t.Error("q[0] must be affected (existential z)")
	}
	if res.Affected[Position{"q", 1}] {
		t.Error("q[1] must not be affected")
	}
	// In rule 2, X is dangerous (harmful + in head), Y harmless.
	ri := res.Rules[1]
	if ri.Classes["X"] != Dangerous {
		t.Errorf("X: %v, want dangerous", ri.Classes["X"])
	}
	if ri.Classes["Y"] != Harmless {
		t.Errorf("Y: %v, want harmless", ri.Classes["Y"])
	}
	if ri.WardIdx != 0 {
		t.Errorf("ward should be q (body atom 0), got %d", ri.WardIdx)
	}
	if ri.Kind != KindWarded {
		t.Errorf("rule 2 kind: %v", ri.Kind)
	}
}

// TestPaperExample5 checks the more complex PSC example: rule 4 has a
// harmful (but not dangerous) join on P.
func TestPaperExample5(t *testing.T) {
	prog := parser.MustParse(`
		keyPerson(X, P) -> psc(X, P).
		company(X) -> psc(X, P).
		control(Y, X), psc(Y, P) -> psc(X, P).
		psc(X, P), psc(Y, P), X > Y -> strongLink(X, Y).
	`)
	res := Analyze(prog)
	if !res.Warded {
		t.Fatalf("example 5 is warded: %v", res.Violations)
	}
	if !res.Affected[Position{"psc", 1}] {
		t.Error("psc[1] must be affected")
	}
	r3 := res.Rules[2]
	if r3.Classes["P"] != Dangerous {
		t.Errorf("rule 3 P: %v, want dangerous", r3.Classes["P"])
	}
	if r3.WardIdx != 1 {
		t.Errorf("rule 3 ward should be psc (atom 1), got %d", r3.WardIdx)
	}
	r4 := res.Rules[3]
	if r4.Classes["P"] != Harmful {
		t.Errorf("rule 4 P: %v, want harmful (not dangerous)", r4.Classes["P"])
	}
	if !r4.HasHarmfulJoin {
		t.Error("rule 4 has a harmful join")
	}
}

// TestNonWardedDetected: a ward sharing a harmful variable with another
// atom whose position is also affected (weakly-frontier-guarded shape).
func TestNonWardedDetected(t *testing.T) {
	prog := parser.MustParse(`
		a(X) -> p(X, Z).
		a(X) -> w(X, Z, V).
		w(X, Z, V), p(Y, Z) -> r(V, X, Y).
	`)
	// V is dangerous in rule 3 (ward w), but w shares the harmful Z with
	// p: wardedness is violated.
	res := Analyze(prog)
	if res.Warded {
		t.Fatal("program should not be warded")
	}
}

// TestMixedJoinGroundsVariable: joining an affected position against an
// EDB position makes the variable harmless (it can bind only constants).
func TestMixedJoinGroundsVariable(t *testing.T) {
	prog := parser.MustParse(`
		a(X) -> p(X, Z).
		p(X, Z), q(Z, Y) -> p(Y, Z).
	`)
	res := Analyze(prog)
	if !res.Warded {
		t.Fatalf("mixed join is harmless: %v", res.Violations)
	}
	if res.Rules[1].Classes["Z"] != Harmless {
		t.Errorf("Z: %v, want harmless (occurs in EDB position)", res.Rules[1].Classes["Z"])
	}
}

// TestWeaklyFrontierGuardedNotWarded: ward sharing a harmful variable.
func TestWardSharingHarmfulRejected(t *testing.T) {
	prog := parser.MustParse(`
		a(X) -> p(X, Z).
		a(X) -> q(X, Z).
		p(X, Z), q(Y, Z) -> p(Y, Z).
	`)
	res := Analyze(prog)
	if res.Warded {
		t.Fatal("ward shares harmful variable Z: must be rejected")
	}
}

func TestDatalogIsWarded(t *testing.T) {
	// Any plain Datalog program is warded by definition.
	prog := parser.MustParse(`
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		path(X,Y), path(Y,X) -> cycle(X).
	`)
	res := Analyze(prog)
	if !res.Warded {
		t.Fatalf("plain Datalog is always warded: %v", res.Violations)
	}
	for _, ri := range res.Rules {
		for v, c := range ri.Classes {
			if c != Harmless {
				t.Errorf("var %s: %v, want harmless in plain Datalog", v, c)
			}
		}
	}
}

func TestDomGuardMakesHarmless(t *testing.T) {
	prog := parser.MustParse(`
		a(X) -> p(X, Z).
		dom(*), p(X, Z), q(Z, Y) -> r(X, Y).
	`)
	res := Analyze(prog)
	if !res.Warded {
		t.Fatalf("dom(*) grounds the join: %v", res.Violations)
	}
	if res.Rules[1].HasHarmfulJoin {
		t.Error("dom(*) should neutralize the harmful join")
	}
}

func TestSCCsAndRecursion(t *testing.T) {
	prog := parser.MustParse(`
		a(X,Y) -> b(X,Y).
		b(X,Y) -> c(X,Y).
		c(X,Y), a(Y,Z) -> b(X,Z).
		c(X,Y) -> d(X,Y).
	`)
	g := BuildDependencyGraph(prog)
	rec := g.RecursivePreds()
	if !rec["b"] || !rec["c"] {
		t.Errorf("b,c are recursive: %v", rec)
	}
	if rec["a"] || rec["d"] {
		t.Errorf("a,d are not recursive: %v", rec)
	}
	sccs := g.SCCs()
	// Downstream-first emission: d (a sink fed by c) pops before {b,c}.
	seenD := false
	for _, comp := range sccs {
		if len(comp) == 1 && comp[0] == "d" {
			seenD = true
		}
		if len(comp) == 2 && !seenD {
			t.Error("SCC order: {b,c} before its sink d")
		}
	}
	if !seenD {
		t.Error("missing d SCC")
	}
}

func TestStratification(t *testing.T) {
	prog := parser.MustParse(`
		node(X), not bad(X) -> good(X).
		edge(X,Y) -> node(X).
		good(X), edge(X,Y) -> reach(Y).
	`)
	strata, err := Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	if strata["good"] <= strata["bad"]-1 && strata["good"] < strata["bad"]+1 {
		// good must be strictly above bad.
	}
	if strata["good"] < strata["bad"]+1 {
		t.Errorf("good (%d) must be above bad (%d)", strata["good"], strata["bad"])
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	prog := parser.MustParse(`
		p(X), not q(X) -> q(X).
	`)
	if _, err := Stratify(prog); err == nil {
		t.Fatal("negation through recursion must be rejected")
	}
}

func TestComputeStatsCategories(t *testing.T) {
	prog := parser.MustParse(`
		e(X,Y) -> w(X,P).
		w(X,P), e(X,Y) -> w(Y,P).
		w(X,P), w(Y,P) -> gh(X,Y).
		w(X,P), e(P,Z) -> gm(X,Z).
		e(X,Y), e(Y,Z) -> gn(X,Z).
	`)
	st := ComputeStats(prog)
	if st.LinearRules != 1 || st.JoinRules != 4 {
		t.Errorf("rule counts: L=%d J=%d", st.LinearRules, st.JoinRules)
	}
	if st.HarmlessWithWard != 1 {
		t.Errorf("ward joins: %d", st.HarmlessWithWard)
	}
	if st.HarmfulJoins != 1 {
		t.Errorf("harmful joins: %d", st.HarmfulJoins)
	}
	if st.MixedJoins != 1 {
		t.Errorf("mixed joins: %d", st.MixedJoins)
	}
	if st.HarmlessNoWard != 1 {
		t.Errorf("plain joins: %d", st.HarmlessNoWard)
	}
	if st.ExistentialRules != 1 {
		t.Errorf("existential rules: %d", st.ExistentialRules)
	}
	if st.RecursiveJoin != 1 {
		t.Errorf("recursive joins: %d", st.RecursiveJoin)
	}
}

func TestAffectedPropagation(t *testing.T) {
	// Nulls flow a -> b -> c through linear rules.
	prog := parser.MustParse(`
		src(X) -> a(X, Z).
		a(X, Z) -> b(Z, X).
		b(Z, X) -> c(X, Z).
	`)
	res := Analyze(prog)
	for _, pos := range []Position{{"a", 1}, {"b", 0}, {"c", 1}} {
		if !res.Affected[pos] {
			t.Errorf("%v must be affected", pos)
		}
	}
	for _, pos := range []Position{{"a", 0}, {"b", 1}, {"c", 0}} {
		if res.Affected[pos] {
			t.Errorf("%v must not be affected", pos)
		}
	}
}
