// Package analysis implements the static analysis of Vadalog programs from
// Section 2 of the paper: affected positions, the harmless / harmful /
// dangerous classification of variables, ward detection and the wardedness
// check, plus the predicate dependency graph with SCC-based recursion
// detection and stratification of negation.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/ast"
)

// Position identifies the i-th argument position of a predicate, written
// p[i] in the paper (0-based here).
type Position struct {
	Pred string
	Idx  int
}

// String renders the position as p[i].
func (p Position) String() string { return fmt.Sprintf("%s[%d]", p.Pred, p.Idx) }

// VarClass classifies a variable within one rule (paper Sec. 2.1).
type VarClass int

// Variable classes. Dangerous implies harmful.
const (
	Harmless  VarClass = iota // some body occurrence in a non-affected position
	Harmful                   // all body occurrences in affected positions
	Dangerous                 // harmful and also occurs in the head
)

// String renders the class name.
func (c VarClass) String() string {
	switch c {
	case Harmless:
		return "harmless"
	case Harmful:
		return "harmful"
	case Dangerous:
		return "dangerous"
	default:
		return "?"
	}
}

// RuleInfo is the per-rule result of the warded analysis.
type RuleInfo struct {
	Rule    *ast.Rule
	Classes map[string]VarClass
	// WardIdx is the index in Rule.Body of the ward atom when the rule has
	// dangerous variables and is warded; -1 otherwise.
	WardIdx int
	// HasHarmfulJoin reports whether some harmful variable occurs in two or
	// more distinct positive body atoms.
	HasHarmfulJoin bool
	// Kind is the generating-rule kind used by the termination strategy.
	Kind RuleKind
	// Violations lists why the rule breaks wardedness (empty if warded).
	Violations []string
}

// RuleKind is the classification used by Algorithm 1's fact structure:
// linear rules, warded rules (non-linear with a ward propagating a
// dangerous variable), and other non-linear rules.
type RuleKind int

// Rule kinds per Sec. 3.4.
const (
	KindLinear RuleKind = iota
	KindWarded          // non-linear join with dangerous variables confined to a ward
	KindNonLinear
)

// String renders the kind name.
func (k RuleKind) String() string {
	switch k {
	case KindLinear:
		return "linear"
	case KindWarded:
		return "warded"
	case KindNonLinear:
		return "non-linear"
	default:
		return "?"
	}
}

// Result is the whole-program analysis output.
type Result struct {
	Program  *ast.Program
	Affected map[Position]bool
	Rules    []*RuleInfo
	// Warded reports whether every rule satisfies the wardedness conditions.
	Warded bool
	// Violations aggregates all per-rule violations.
	Violations []string
}

// Analyze computes affected positions, per-rule variable classes, wards
// and the wardedness verdict for the program.
func Analyze(p *ast.Program) *Result {
	res := &Result{Program: p, Affected: affectedPositions(p), Warded: true}
	for _, r := range p.Rules {
		ri := analyzeRule(r, res.Affected)
		res.Rules = append(res.Rules, ri)
		if len(ri.Violations) > 0 {
			res.Warded = false
			res.Violations = append(res.Violations, ri.Violations...)
		}
	}
	return res
}

// affectedPositions computes the affected(Σ) fixpoint of Sec. 2.1:
//  1. every position holding an existentially quantified head variable is
//     affected;
//  2. if a rule propagates a variable occurring only in affected body
//     positions into a head position, that head position is affected.
func affectedPositions(p *ast.Program) map[Position]bool {
	affected := make(map[Position]bool)
	for _, r := range p.Rules {
		ex := make(map[string]bool)
		for _, v := range r.Existentials() {
			ex[v] = true
		}
		for _, h := range r.Heads {
			for i, arg := range h.Args {
				if arg.IsVar && ex[arg.Var] {
					affected[Position{h.Pred, i}] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			// Classify each body variable: does it occur in at least one
			// non-affected body position?
			allAffected := make(map[string]bool)
			seen := make(map[string]bool)
			for _, a := range r.Body {
				if a.Negated || a.Pred == ast.DomPred {
					continue
				}
				for i, arg := range a.Args {
					if !arg.IsVar || arg.Var == "_" {
						continue
					}
					v := arg.Var
					aff := affected[Position{a.Pred, i}]
					if !seen[v] {
						seen[v] = true
						allAffected[v] = aff
					} else if !aff {
						allAffected[v] = false
					}
				}
			}
			// Dom(*) grounds every variable: rules guarded by dom(*) bind
			// variables only to active-domain constants, so nothing
			// propagates nulls through them. dom(V) grounds V alone.
			if r.UsesDom {
				continue
			}
			for _, v := range r.DomVars {
				allAffected[v] = false
			}
			for _, h := range r.Heads {
				for i, arg := range h.Args {
					if !arg.IsVar {
						continue
					}
					if seen[arg.Var] && allAffected[arg.Var] {
						pos := Position{h.Pred, i}
						if !affected[pos] {
							affected[pos] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return affected
}

func analyzeRule(r *ast.Rule, affected map[Position]bool) *RuleInfo {
	ri := &RuleInfo{Rule: r, Classes: make(map[string]VarClass), WardIdx: -1}

	// Occurrence map: variable -> body atom indexes (positive atoms only).
	occ := make(map[string][]int)
	inNonAffected := make(map[string]bool)
	for bi, a := range r.Body {
		if a.Negated || a.Pred == ast.DomPred {
			continue
		}
		for i, arg := range a.Args {
			if !arg.IsVar || arg.Var == "_" {
				continue
			}
			v := arg.Var
			if len(occ[v]) == 0 || occ[v][len(occ[v])-1] != bi {
				occ[v] = append(occ[v], bi)
			}
			if !affected[Position{a.Pred, i}] {
				inNonAffected[v] = true
			}
		}
	}
	headVars := make(map[string]bool)
	for _, v := range r.HeadVars() {
		headVars[v] = true
	}
	domGround := make(map[string]bool, len(r.DomVars))
	for _, v := range r.DomVars {
		domGround[v] = true
	}
	for v := range occ {
		switch {
		case inNonAffected[v] || r.UsesDom || domGround[v]:
			ri.Classes[v] = Harmless
		case headVars[v]:
			ri.Classes[v] = Dangerous
		default:
			ri.Classes[v] = Harmful
		}
	}

	// Harmful joins: a harmful (or dangerous) variable occurring in ≥2
	// distinct positive body atoms.
	for v, atoms := range occ {
		if ri.Classes[v] != Harmless && len(atoms) >= 2 {
			ri.HasHarmfulJoin = true
		}
	}

	// Ward detection: all dangerous variables must sit in a single atom,
	// and that atom may share only harmless variables with the rest.
	var dangerous []string
	for v, c := range ri.Classes {
		if c == Dangerous {
			dangerous = append(dangerous, v)
		}
	}
	sort.Strings(dangerous)
	if len(dangerous) > 0 {
		wardIdx := -1
		for _, v := range dangerous {
			cands := candidateAtoms(r, v)
			if len(cands) != 1 {
				ri.Violations = append(ri.Violations,
					fmt.Sprintf("rule %d: dangerous variable %s occurs in %d body atoms", r.ID, v, len(cands)))
				wardIdx = -2
				break
			}
			if wardIdx == -1 {
				wardIdx = cands[0]
			} else if wardIdx != cands[0] {
				ri.Violations = append(ri.Violations,
					fmt.Sprintf("rule %d: dangerous variables spread over multiple atoms", r.ID))
				wardIdx = -2
				break
			}
		}
		if wardIdx >= 0 {
			// The ward may share only harmless variables with other atoms.
			ok := true
			ward := r.Body[wardIdx]
			wardVars := make(map[string]bool)
			for _, arg := range ward.Args {
				if arg.IsVar && arg.Var != "_" {
					wardVars[arg.Var] = true
				}
			}
			for bi, a := range r.Body {
				if bi == wardIdx || a.Negated || a.Pred == ast.DomPred {
					continue
				}
				for _, arg := range a.Args {
					if arg.IsVar && wardVars[arg.Var] && ri.Classes[arg.Var] != Harmless {
						ri.Violations = append(ri.Violations,
							fmt.Sprintf("rule %d: ward %s shares non-harmless variable %s with %s",
								r.ID, ward.Pred, arg.Var, a.Pred))
						ok = false
					}
				}
			}
			if ok {
				ri.WardIdx = wardIdx
			}
		}
	}

	switch {
	case r.IsLinear():
		ri.Kind = KindLinear
	case ri.WardIdx >= 0:
		ri.Kind = KindWarded
	default:
		ri.Kind = KindNonLinear
	}
	return ri
}

// candidateAtoms returns the indexes of positive body atoms containing v.
func candidateAtoms(r *ast.Rule, v string) []int {
	var out []int
	for bi, a := range r.Body {
		if a.Negated || a.Pred == ast.DomPred {
			continue
		}
		for _, arg := range a.Args {
			if arg.IsVar && arg.Var == v {
				out = append(out, bi)
				break
			}
		}
	}
	return out
}

// DependencyGraph is the predicate dependency graph: an edge p -> q when
// some rule has p in the body and q in the head. Negative edges are
// tracked separately for stratification.
type DependencyGraph struct {
	Preds    []string
	Edges    map[string]map[string]bool // body pred -> head preds
	NegEdges map[string]map[string]bool // negated body pred -> head preds
}

// BuildDependencyGraph constructs the graph for p.
func BuildDependencyGraph(p *ast.Program) *DependencyGraph {
	g := &DependencyGraph{
		Edges:    make(map[string]map[string]bool),
		NegEdges: make(map[string]map[string]bool),
	}
	predSet := make(map[string]bool)
	note := func(pred string) {
		if !predSet[pred] {
			predSet[pred] = true
			g.Preds = append(g.Preds, pred)
		}
	}
	for _, r := range p.Rules {
		for _, h := range r.Heads {
			note(h.Pred)
			for _, b := range r.Body {
				if b.Pred == ast.DomPred {
					continue
				}
				note(b.Pred)
				dst := g.Edges
				if b.Negated {
					dst = g.NegEdges
				}
				if dst[b.Pred] == nil {
					dst[b.Pred] = make(map[string]bool)
				}
				dst[b.Pred][h.Pred] = true
			}
		}
	}
	for _, f := range p.Facts {
		note(f.Pred)
	}
	sort.Strings(g.Preds)
	return g
}

// SCCs returns the strongly connected components of the positive+negative
// dependency graph using Tarjan's algorithm. Components are emitted
// downstream-first: every component appears before the components whose
// facts feed it (a component's successors — the heads it derives — are
// emitted earlier).
func (g *DependencyGraph) SCCs() [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	counter := 0

	succ := func(p string) []string {
		var out []string
		for q := range g.Edges[p] {
			out = append(out, q)
		}
		for q := range g.NegEdges[p] {
			out = append(out, q)
		}
		sort.Strings(out)
		return out
	}

	// Iterative Tarjan to survive deep graphs.
	type frame struct {
		node  string
		succs []string
		next  int
	}
	var strongconnect func(root string)
	strongconnect = func(root string) {
		frames := []frame{{node: root, succs: succ(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.next < len(f.succs) {
				w := f.succs[f.next]
				f.next++
				if _, seen := index[w]; !seen {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succs: succ(w)})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
			}
			if advanced {
				continue
			}
			// Pop f.
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.node] {
					low[parent.node] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Strings(comp)
				sccs = append(sccs, comp)
			}
		}
	}
	for _, p := range g.Preds {
		if _, seen := index[p]; !seen {
			strongconnect(p)
		}
	}
	return sccs
}

// RecursivePreds returns the predicates involved in recursion: members of
// a multi-node SCC or with a self-loop.
func (g *DependencyGraph) RecursivePreds() map[string]bool {
	rec := make(map[string]bool)
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			for _, p := range comp {
				rec[p] = true
			}
		} else if p := comp[0]; g.Edges[p][p] || g.NegEdges[p][p] {
			rec[p] = true
		}
	}
	return rec
}

// Stratify computes a stratification of the program's predicates under
// stratified negation: pred -> stratum (0-based). It returns an error when
// negation occurs inside a recursive cycle.
func Stratify(p *ast.Program) (map[string]int, error) {
	g := BuildDependencyGraph(p)
	sccs := g.SCCs()
	comp := make(map[string]int)
	for i, c := range sccs {
		for _, pred := range c {
			comp[pred] = i
		}
	}
	// Negation within an SCC is unstratifiable.
	for from, tos := range g.NegEdges {
		for to := range tos {
			if comp[from] == comp[to] {
				return nil, fmt.Errorf("analysis: negation through recursive predicate %s is not stratified", from)
			}
		}
	}
	// Longest-path strata over the SCC condensation: stratum(head SCC) ≥
	// stratum(body SCC), strictly greater across negation. Tarjan emits
	// downstream components first, so iterate in reverse (bodies before
	// heads) for a single pass.
	strata := make([]int, len(sccs))
	for i := len(sccs) - 1; i >= 0; i-- {
		s := 0
		// Consider incoming edges: body pred -> head pred where head in c.
		for from, tos := range g.Edges {
			for to := range tos {
				if comp[to] == i && comp[from] != i && strata[comp[from]] > s {
					s = strata[comp[from]]
				}
			}
		}
		for from, tos := range g.NegEdges {
			for to := range tos {
				if comp[to] == i && strata[comp[from]]+1 > s {
					s = strata[comp[from]] + 1
				}
			}
		}
		strata[i] = s
	}
	out := make(map[string]int, len(comp))
	for pred, ci := range comp {
		out[pred] = strata[ci]
	}
	return out, nil
}

// Stats summarizes a program the way Figure 6 of the paper tabulates
// iWarded scenarios. Join rules are categorized by their most severe join
// variable: a variable whose occurrences are all in affected positions
// makes the join harmful-harmful (hrmf⋈hrmf); one with both affected and
// non-affected occurrences makes it mixed (hrml⋈hrmf, firing on ground
// values only); otherwise the join is harmless-harmless, split by whether
// the rule has a ward.
type Stats struct {
	LinearRules      int
	JoinRules        int // non-linear ("1 rules" in Fig. 6)
	RecursiveLinear  int
	RecursiveJoin    int
	ExistentialRules int
	MixedJoins       int // hrml⋈hrmf: affected + non-affected occurrences
	HarmlessWithWard int // hrml⋈hrml where the rule has a ward
	HarmlessNoWard   int // hrml⋈hrml with no ward involved
	HarmfulJoins     int // hrmf⋈hrmf: all occurrences affected
	Constraints      int
	EGDs             int
	Aggregations     int
}

// ComputeStats derives Fig.6-style statistics for a program.
func ComputeStats(p *ast.Program) Stats {
	var st Stats
	res := Analyze(p)
	g := BuildDependencyGraph(p)
	rec := g.RecursivePreds()
	for i, r := range p.Rules {
		ri := res.Rules[i]
		if r.IsConstraint {
			st.Constraints++
			continue
		}
		if r.EGD != nil {
			st.EGDs++
			continue
		}
		if r.Aggregate != nil {
			st.Aggregations++
		}
		isRec := false
		for _, b := range r.Body {
			if b.Negated || b.Pred == ast.DomPred {
				continue
			}
			if rec[b.Pred] {
				for _, h := range r.Heads {
					if rec[h.Pred] {
						isRec = true
					}
				}
			}
		}
		if len(r.Existentials()) > 0 {
			st.ExistentialRules++
		}
		if r.IsLinear() {
			st.LinearRules++
			if isRec {
				st.RecursiveLinear++
			}
			continue
		}
		st.JoinRules++
		if isRec {
			st.RecursiveJoin++
		}
		switch classifyJoin(r, res.Affected) {
		case joinHarmful:
			st.HarmfulJoins++
		case joinMixed:
			st.MixedJoins++
		default:
			if ri.WardIdx >= 0 {
				st.HarmlessWithWard++
			} else {
				st.HarmlessNoWard++
			}
		}
	}
	return st
}

type joinClass int

const (
	joinHarmless joinClass = iota
	joinMixed
	joinHarmful
)

// classifyJoin inspects the variables shared between positive body atoms
// and returns the most severe class among them.
func classifyJoin(r *ast.Rule, affected map[Position]bool) joinClass {
	type occ struct {
		atoms           map[int]bool
		inAff, inNonAff bool
	}
	occs := make(map[string]*occ)
	for bi, a := range r.Body {
		if a.Negated || a.Pred == ast.DomPred {
			continue
		}
		for i, arg := range a.Args {
			if !arg.IsVar || arg.Var == "_" {
				continue
			}
			o := occs[arg.Var]
			if o == nil {
				o = &occ{atoms: make(map[int]bool)}
				occs[arg.Var] = o
			}
			o.atoms[bi] = true
			if affected[Position{a.Pred, i}] {
				o.inAff = true
			} else {
				o.inNonAff = true
			}
		}
	}
	cls := joinHarmless
	for _, o := range occs {
		if len(o.atoms) < 2 {
			continue
		}
		switch {
		case o.inAff && !o.inNonAff:
			return joinHarmful
		case o.inAff && o.inNonAff:
			cls = joinMixed
		}
	}
	return cls
}
