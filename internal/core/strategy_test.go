package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

func analyzed(t *testing.T, src string) *analysis.Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Analyze(prog)
}

func TestProvTrie(t *testing.T) {
	tr := &provTrie{}
	tr.insert([]int{1, 2, 3})
	cases := []struct {
		prov           []int
		beyond, within bool
	}{
		{[]int{1, 2, 3}, true, false},    // equal: beyond (λ ⊆ p)
		{[]int{1, 2, 3, 4}, true, false}, // extension: beyond
		{[]int{1, 2}, false, true},       // strict prefix: within
		{[]int{1}, false, true},          // strict prefix: within
		{[]int{}, false, true},           // empty prefix: within
		{[]int{2, 1}, false, false},      // unrelated
		{[]int{1, 3}, false, false},      // diverging
	}
	for _, c := range cases {
		beyond, within := tr.query(c.prov)
		if beyond != c.beyond || within != c.within {
			t.Errorf("query(%v): beyond=%v within=%v, want %v %v",
				c.prov, beyond, within, c.beyond, c.within)
		}
	}
}

func TestProvTrieMultiple(t *testing.T) {
	tr := &provTrie{}
	tr.insert([]int{1, 2})
	tr.insert([]int{1, 3, 4})
	if b, _ := tr.query([]int{1, 2, 9}); !b {
		t.Error("extension of a stop-provenance must be beyond")
	}
	if b, w := tr.query([]int{1, 3}); b || !w {
		t.Error("prefix of the second stop-provenance must be within")
	}
	if b, w := tr.query([]int{1, 4}); b || w {
		t.Error("diverging path must be neither")
	}
}

// TestStrategyCutsNullRecursion exercises Algorithm 1 directly: a linear
// null-generating cycle must be cut by the per-tree isomorphism check,
// and the stop-provenance must then prune the second tree without any
// isomorphism check (horizontal pruning via the lifted linear forest).
func TestStrategyCutsNullRecursion(t *testing.T) {
	res := analyzed(t, `
		p(X, N) -> p(X, M).
	`)
	s := NewStrategy(res)
	nulls := term.NewNullFactory()

	mkRoot := func(name string) *FactMeta {
		// EDB facts are ground; the rule then invents nulls.
		return s.NewEDBFact(ast.NewFact("p", term.String(name), term.String("seed")))
	}
	root1 := mkRoot("a")
	// First application: p(a, n2) from p(a, n1).
	f1 := s.Derive(ast.NewFact("p", term.String("a"), nulls.Fresh()), 0, []*FactMeta{root1})
	if !s.CheckTermination(f1) {
		t.Fatal("first derivation must be admitted")
	}
	// Second application: isomorphic to f1 within the same tree: cut, and
	// the stop-provenance is learnt.
	f2 := s.Derive(ast.NewFact("p", term.String("a"), nulls.Fresh()), 0, []*FactMeta{f1})
	if s.CheckTermination(f2) {
		t.Fatal("isomorphic repetition must be cut")
	}
	st := s.Stats()
	if st.IsoHits != 1 {
		t.Fatalf("iso hits: %d", st.IsoHits)
	}

	// A second tree with a different constant: same pattern. The cut must
	// now come from the summary structure, with no isomorphism check.
	root2 := mkRoot("b")
	g1 := s.Derive(ast.NewFact("p", term.String("b"), nulls.Fresh()), 0, []*FactMeta{root2})
	if !s.CheckTermination(g1) {
		t.Fatal("first derivation in second tree must be admitted (within stop-provenance)")
	}
	g2 := s.Derive(ast.NewFact("p", term.String("b"), nulls.Fresh()), 0, []*FactMeta{g1})
	if s.CheckTermination(g2) {
		t.Fatal("second tree must be cut at the stop-provenance")
	}
	st = s.Stats()
	if st.BeyondStop == 0 {
		t.Error("horizontal pruning did not fire")
	}
	if st.WithinStop == 0 {
		t.Error("within-stop fast path did not fire")
	}
	if st.IsoChecks != 2 {
		t.Errorf("iso checks: %d, want 2 (second tree must skip them)", st.IsoChecks)
	}
}

func TestStrategyGroundFastPath(t *testing.T) {
	res := analyzed(t, `
		a(X,Y), b(Y,Z) -> c(X,Z).
	`)
	s := NewStrategy(res)
	pa := s.NewEDBFact(ast.NewFact("a", term.String("x"), term.String("y")))
	pb := s.NewEDBFact(ast.NewFact("b", term.String("y"), term.String("z")))
	f := ast.NewFact("c", term.String("x"), term.String("z"))
	m1 := s.Derive(f, 0, []*FactMeta{pa, pb})
	if !s.CheckTermination(m1) {
		t.Fatal("fresh ground fact must open a new tree")
	}
	// Per the Policy contract the engines eliminate exact duplicates
	// before consulting the strategy, so ground facts are always admitted
	// — and never stored in the ground structure (only null-carrying
	// facts participate in isomorphism).
	if got := s.Stats().GroundFacts; got != 0 {
		t.Errorf("ground structure should hold no ground facts, has %d", got)
	}
	if got := s.Stats().NewTrees; got != 3 {
		t.Errorf("trees: %d, want 3", got)
	}
}

func TestDisableSummary(t *testing.T) {
	res := analyzed(t, `
		p(X, N) -> p(X, M).
	`)
	s := NewStrategy(res)
	s.DisableSummary = true
	nulls := term.NewNullFactory()
	root := s.NewEDBFact(ast.NewFact("p", term.String("a"), term.String("seed")))
	f1 := s.Derive(ast.NewFact("p", term.String("a"), nulls.Fresh()), 0, []*FactMeta{root})
	if !s.CheckTermination(f1) {
		t.Fatal("admit first")
	}
	f2 := s.Derive(ast.NewFact("p", term.String("a"), nulls.Fresh()), 0, []*FactMeta{f1})
	if s.CheckTermination(f2) {
		t.Fatal("iso cut must still work without the summary")
	}
	if s.SummarySize() != 0 {
		t.Error("summary must stay empty when disabled")
	}
}

func TestWardedDeriveKeepsWardTree(t *testing.T) {
	res := analyzed(t, `
		c(X) -> w(X, N).
		w(X, N), e(X, Y) -> w(Y, N).
	`)
	s := NewStrategy(res)
	nulls := term.NewNullFactory()
	root := s.NewEDBFact(ast.NewFact("c", term.String("a")))
	w1 := s.Derive(ast.NewFact("w", term.String("a"), nulls.Fresh()), 0, []*FactMeta{root})
	if !s.CheckTermination(w1) {
		t.Fatal("admit injector output")
	}
	edge := s.NewEDBFact(ast.NewFact("e", term.String("a"), term.String("b")))
	w2 := s.Derive(ast.NewFact("w", term.String("b"), w1.Fact.Args[1]), 1, []*FactMeta{w1, edge})
	if !s.CheckTermination(w2) {
		t.Fatal("admit warded propagation")
	}
	if w2.WRoot != w1.WRoot {
		t.Error("warded rule must keep the ward's tree")
	}
	if w2.LRoot != w2 {
		t.Error("warded rule must start a new linear-forest tree")
	}
	if len(w2.Provenance) != 0 {
		t.Error("warded rule must reset provenance")
	}
}

func TestEvictTree(t *testing.T) {
	res := analyzed(t, `
		p(X, N) -> q(X, N).
	`)
	s := NewStrategy(res)
	nulls := term.NewNullFactory()
	root := s.NewEDBFact(ast.NewFact("p", term.String("a"), nulls.Fresh()))
	f := s.Derive(ast.NewFact("q", term.String("a"), root.Fact.Args[1]), 0, []*FactMeta{root})
	if !s.CheckTermination(f) {
		t.Fatal("admit")
	}
	before := s.Stats().GroundFacts
	s.EvictTree(root)
	if after := s.Stats().GroundFacts; after >= before {
		t.Errorf("eviction should shrink the ground structure: %d -> %d", before, after)
	}
}

func TestFactMetaString(t *testing.T) {
	res := analyzed(t, `p(X) -> q(X).`)
	s := NewStrategy(res)
	m := s.NewEDBFact(ast.NewFact("p", term.String("a")))
	if m.String() == "" {
		t.Error("empty String()")
	}
	if len(s.Patterns()) != 0 {
		t.Error("no patterns before any learning")
	}
}
