package core

import (
	"fmt"

	"repro/internal/ast"
)

// PanicError is a panic recovered on an engine's evaluation path,
// converted into a positioned, typed error: which engine crashed, the
// rule whose firing was on the stack (nil for crashes outside rule
// evaluation, e.g. during an EDB load), the recovered value and the
// goroutine stack at the point of recovery.
//
// A PanicError is the engines' resumable crash report: by the time one
// surfaces, the engine has rolled its work queue back to a consistent
// boundary (the chase requeues the whole delta batch, the pipeline
// rewinds the delta cursor of the crashed firing), so running the
// session again retries the work — idempotently, since admission skips
// duplicates — instead of silently dropping derivations.
type PanicError struct {
	// Engine names the evaluation machine that crashed ("chase",
	// "pipeline") or the phase for crashes outside rule evaluation
	// ("chase load", "pipeline load").
	Engine string
	// Rule is the rule whose firing panicked, nil outside rule evaluation.
	Rule *ast.Rule
	// Value is the recovered panic value.
	Value any
	// Stack is the crashed goroutine's stack at recovery.
	Stack []byte
}

// Error renders the crash with the rule's source position when one is on
// record.
func (e *PanicError) Error() string {
	if e.Rule == nil {
		return fmt.Sprintf("%s: panic recovered: %v", e.Engine, e.Value)
	}
	if e.Rule.Line > 0 {
		return fmt.Sprintf("%s: %d:%d: panic in rule %d: %v", e.Engine, e.Rule.Line, e.Rule.Col, e.Rule.ID, e.Value)
	}
	return fmt.Sprintf("%s: panic in rule %d: %v", e.Engine, e.Rule.ID, e.Value)
}

// Unwrap exposes panic values that are themselves errors (injected
// faults carry *fault.Error), so errors.As sees through the recovery.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}
