package core

import (
	"sync"
	"testing"
)

func TestMeterCharges(t *testing.T) {
	m := NewMeter(3)
	m.Charge() // unconditional (EDB)
	if !m.TryCharge() || !m.TryCharge() {
		t.Fatal("charges within budget must succeed")
	}
	if m.TryCharge() {
		t.Fatal("charge beyond the budget must fail")
	}
	if m.Used() != 3 {
		t.Fatalf("used: %d", m.Used())
	}
	// Unconditional charges may exceed the budget (loads are never
	// rejected); subsequent TryCharge still fails.
	m.Charge()
	if m.Used() != 4 || m.TryCharge() {
		t.Fatalf("used=%d after overload", m.Used())
	}
}

func TestMeterReserveHeadroom(t *testing.T) {
	// A tight budget still gets the reservation floor: candidate buffering
	// is a runaway backstop, not a budget check, so duplicate-heavy
	// batches under small MaxDerivations must not trip it.
	m := NewMeter(10)
	if !m.Reserve(reserveFloor) {
		t.Fatal("reservations up to the floor rejected under a tight budget")
	}
	if m.Reserve(1) {
		t.Fatal("reservation beyond the floor accepted")
	}
	m.ResetPending()
	if !m.Reserve(1) {
		t.Fatal("reservation after reset rejected")
	}
	if m.Used() != 0 {
		t.Fatalf("reservations must not count as derivations: %d", m.Used())
	}
	// A budget above the floor scales the ceiling by the headroom factor.
	big := NewMeter(reserveFloor)
	if !big.Reserve(reserveHeadroom * reserveFloor) {
		t.Fatal("headroom-scaled ceiling rejected in-bounds reservation")
	}
	if big.Reserve(1) {
		t.Fatal("reservation beyond the scaled ceiling accepted")
	}
}

func TestMeterConcurrentReserve(t *testing.T) {
	m := NewMeter(10)
	const chunk = reserveFloor / 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	rejected := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := 0
			for i := 0; i < 1; i++ {
				if !m.Reserve(chunk) {
					mine++
				}
			}
			mu.Lock()
			rejected += mine
			mu.Unlock()
		}()
	}
	wg.Wait()
	// 8 chunks of floor/4 against the floor ceiling: exactly 4 must fail.
	if rejected != 4 {
		t.Fatalf("rejected %d chunks, want 4", rejected)
	}
}
