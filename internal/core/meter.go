package core

import "sync/atomic"

// reserveHeadroom and reserveFloor bound transient worker-side
// reservations: a frozen-epoch match phase may buffer far more candidates
// than it will admit (duplicates and strategy-rejected facts are only
// filtered on the serial admit path, and were never budget-charged by the
// serial engine either), so the reservation ceiling is a runaway-memory
// backstop, not a budget check — reserveHeadroom× the budget, but never
// below reserveFloor so tight user budgets cannot make duplicate-heavy
// batches fail spuriously. Admissions themselves are always metered
// exactly, by the serial admit path.
const (
	reserveHeadroom = 4
	reserveFloor    = 1 << 20
)

// Meter is the engines' derivation budget, safe for concurrent use. The
// serial admission path charges admitted facts exactly (Charge/TryCharge),
// while parallel match workers reserve candidate capacity transiently
// (Reserve) so a batch of a non-terminating program aborts instead of
// buffering unbounded candidate facts. Reservations are released wholesale
// at batch boundaries (ResetPending); they never count as derivations.
type Meter struct {
	limit   int64
	used    atomic.Int64
	pending atomic.Int64

	// Per-shard accounting of the partitioned admission pre-pass. The
	// slices are plain ints, not atomics, because the slots are exclusive:
	// shardCands/shardDups[s] is written only by the pre-pass goroutine
	// owning shard s, shardAdmits only by the serial merge, and the
	// pre-pass WaitGroup orders the two phases.
	shardCands  []int64
	shardDups   []int64
	shardAdmits []int64
}

// NewMeter returns a meter admitting at most limit derivations.
func NewMeter(limit int) *Meter {
	return &Meter{limit: int64(limit)}
}

// Limit returns the derivation budget.
func (m *Meter) Limit() int { return int(m.limit) }

// SetLimit replaces the derivation budget. It is only safe between runs
// (no workers in flight): raising the budget is how a session resumes
// after a budget-exhausted partial result.
func (m *Meter) SetLimit(limit int) { m.limit = int64(limit) }

// Used returns the number of derivations charged so far.
func (m *Meter) Used() int { return int(m.used.Load()) }

// Charge records one derivation unconditionally (EDB loads, which are
// never rejected).
func (m *Meter) Charge() { m.used.Add(1) }

// TryCharge records one derivation unless the budget is exhausted; it
// reports whether the charge was accepted. Callers reject the chase step
// on false.
func (m *Meter) TryCharge() bool {
	for {
		u := m.used.Load()
		if u >= m.limit {
			return false
		}
		if m.used.CompareAndSwap(u, u+1) {
			return true
		}
	}
}

// Reserve transiently accounts n candidate facts a match worker is about
// to buffer; it reports false when charged derivations plus pending
// reservations exceed the runaway ceiling (reserveHeadroom× the budget,
// floored at reserveFloor), telling the worker to stop buffering.
// Whether a batch crosses the ceiling at all is scheduling-independent
// (reservations only accumulate within a batch), though which caller
// observes the crossing is not — engines must turn a failed reservation
// into a whole-batch abort, never a partial one.
func (m *Meter) Reserve(n int) bool {
	p := m.pending.Add(int64(n))
	ceil := reserveHeadroom * m.limit
	if ceil < reserveFloor {
		ceil = reserveFloor
	}
	return m.used.Load()+p <= ceil
}

// ResetPending releases all transient reservations (batch boundary).
func (m *Meter) ResetPending() { m.pending.Store(0) }

// SetShards sizes the per-shard counters for the partitioned admission
// pre-pass. Safe only between batches (no pre-pass in flight); existing
// counts are preserved when the shard count is unchanged.
func (m *Meter) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	if len(m.shardCands) == n {
		return
	}
	m.shardCands = make([]int64, n)
	m.shardDups = make([]int64, n)
	m.shardAdmits = make([]int64, n)
}

// NoteShardScan records that the pre-pass goroutine owning shard
// inspected cands candidates and found dups duplicates. Called only from
// that shard's goroutine.
func (m *Meter) NoteShardScan(shard, cands, dups int) {
	if shard < len(m.shardCands) {
		m.shardCands[shard] += int64(cands)
		m.shardDups[shard] += int64(dups)
	}
}

// NoteShardAdmit records one admission whose dedup hash belongs to shard.
// Called only from the serial merge.
func (m *Meter) NoteShardAdmit(shard int) {
	if shard < len(m.shardAdmits) {
		m.shardAdmits[shard]++
	}
}

// ShardStats returns copies of the per-shard pre-pass counters:
// candidates scanned, duplicates detected, and admissions per shard. Nil
// slices when no pre-pass ever ran.
func (m *Meter) ShardStats() (cands, dups, admits []int64) {
	return append([]int64(nil), m.shardCands...),
		append([]int64(nil), m.shardDups...),
		append([]int64(nil), m.shardAdmits...)
}
