// Package core implements the paper's primary contribution: the
// termination strategy of Section 3 (Algorithm 1). It maintains the three
// guide structures — the warded forest (ground structure G), the linear
// forest (per-fact roots and provenance) and the lifted linear forest
// (summary structure S of stop-provenances) — and decides, for every fact
// the chase is about to generate, whether generating it can be skipped
// without compromising the universal answer.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ast"
)

// FactMeta is the paper's "fact structure": a fact annotated with the kind
// of rule that generated it, its roots in the linear and warded forests,
// and its provenance (the rule IDs applied from l_root to reach it).
type FactMeta struct {
	Fact ast.Fact
	// Kind of the generating rule (linear / warded / non-linear). EDB facts
	// are non-linear roots.
	Kind analysis.RuleKind
	// LRoot is the root of this fact's tree in the linear forest.
	LRoot *FactMeta
	// WRoot is the root of this fact's tree in the warded forest.
	WRoot *FactMeta
	// Provenance is the ordered list of rule IDs applied from LRoot.
	Provenance []int
	// RuleID identifies the generating rule (-1 for EDB facts).
	RuleID int
	// FreshNulls reports whether every labelled null in Fact was minted by
	// this very derivation (i.e. none occurs in the parents). Policies use
	// it to recognize genuine existential chase steps.
	FreshNulls bool
	// Retracted marks a fact superseded by a monotonic-aggregation
	// improvement whose value already existed as another stored fact: the
	// row keeps its position in its relation (cursor and row-index
	// stability) but is no longer part of the database — lookups,
	// duplicate checks, outputs and the engines skip it.
	Retracted bool
	// id distinguishes tree roots inside the strategy's maps; pattern
	// memoizes the fact's PatternKey (computed lazily for roots).
	id      int64
	pattern string
}

// ReplaceFact substitutes the fact this metadata describes, keeping kind,
// forest roots, provenance and generating rule: a supersession update of a
// monotonic-aggregation intermediate by an improved value, not a fresh
// derivation — the termination strategy is not consulted again and the
// guide structures keep the original entry. The memoized pattern key is
// invalidated (recomputed lazily).
func (m *FactMeta) ReplaceFact(f ast.Fact) {
	m.Fact = f
	m.pattern = ""
}

// patternKey returns the memoized pattern of the fact.
func (m *FactMeta) patternKey() string {
	if m.pattern == "" {
		m.pattern = m.Fact.PatternKey()
	}
	return m.pattern
}

// String renders the fact with its provenance for diagnostics.
func (m *FactMeta) String() string {
	var sb strings.Builder
	sb.WriteString(m.Fact.String())
	sb.WriteString(" [")
	sb.WriteString(m.Kind.String())
	sb.WriteString(" prov=")
	for i, r := range m.Provenance {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", r)
	}
	sb.WriteByte(']')
	return sb.String()
}

// provTrie stores a set of stop-provenances (rule-ID sequences) supporting
// the two prefix queries of Algorithm 1.
type provTrie struct {
	children map[int]*provTrie
	terminal bool
}

func (t *provTrie) insert(prov []int) {
	n := t
	for _, r := range prov {
		if n.children == nil {
			n.children = make(map[int]*provTrie)
		}
		c := n.children[r]
		if c == nil {
			c = &provTrie{}
			n.children[r] = c
		}
		n = c
	}
	n.terminal = true
}

// query walks the trie along prov and classifies it:
// beyond   — some stop-provenance λ is a (possibly equal) prefix of prov;
// within   — prov is a strict prefix of some stop-provenance;
// neither  — exploration continues.
func (t *provTrie) query(prov []int) (beyond, within bool) {
	n := t
	for _, r := range prov {
		if n.terminal {
			return true, false
		}
		if n.children == nil {
			return false, false
		}
		c := n.children[r]
		if c == nil {
			return false, false
		}
		n = c
	}
	if n.terminal {
		return true, false // λ == prov counts as λ ⊆ prov
	}
	return false, len(n.children) > 0
}

// Policy is the interface between the engines and a termination strategy.
// The production implementation is Strategy (Algorithm 1); the baselines
// of Sec. 6.5/6.6 (trivial isomorphism check, restricted-chase
// homomorphism check, plain Skolem chase) implement the same interface in
// internal/baseline.
//
// Contract: the engines eliminate exact duplicates (set semantics) before
// consulting the policy, so CheckTermination only ever sees facts that are
// not yet stored anywhere.
type Policy interface {
	// NewEDBFact wraps a database fact as a root of the guide structures.
	NewEDBFact(f ast.Fact) *FactMeta
	// Derive builds metadata for a fact produced by ruleID from parents
	// (ward first for warded rules). The parents slice is a buffer the
	// engines reuse across emissions: implementations may retain its
	// elements but must not retain the slice itself.
	Derive(f ast.Fact, ruleID int, parents []*FactMeta) *FactMeta
	// CheckTermination decides whether the chase step adding the fact may
	// be activated.
	CheckTermination(m *FactMeta) bool
}

// SupersessionObserver is implemented by termination policies that
// memorize generated facts (e.g. the trivial global isomorphism check)
// and must be told when a monotonic-aggregation intermediate is
// superseded — replaced in place by an improved value or retracted — so
// their memory stays consistent with the database: a fact that is no
// longer stored must not block a later, independent derivation of the
// same value. The engines call NoteSuperseded with the superseded fact
// after every successful Replace.
type SupersessionObserver interface {
	NoteSuperseded(old ast.Fact)
}

var _ Policy = (*Strategy)(nil)

// Stats counts the strategy's decisions; exposed for the experimental
// evaluation (Sec. 6.6) and ablations.
type Stats struct {
	Checked        int // termination checks performed
	IsoChecks      int // facts that reached the isomorphism check
	IsoHits        int // isomorphism found (vertical pruning learnt)
	BeyondStop     int // cut by a learnt stop-provenance (no iso check)
	WithinStop     int // allowed without iso check (inside stop-provenance)
	NewTrees       int // new warded-forest trees opened
	RedundantTrees int // duplicate ground roots rejected
	GroundFacts    int // facts stored in the ground structure G
	Patterns       int // distinct l_root patterns in the summary S
}

// Strategy is the termination strategy of Algorithm 1. It is not
// goroutine-safe; the engines serialize access (a strategy instance per
// reasoning session).
type Strategy struct {
	rules []*analysis.RuleInfo // indexed by rule ID

	// ground is the ground structure G: warded-forest tree root id ->
	// iso-keys of the facts stored for that tree. Storing canonical iso
	// keys makes the per-tree isomorphism check a single map lookup while
	// remaining faithful to "each fact is checked only against the other
	// facts in the same tree".
	ground map[int64]map[string]bool

	// summary is the summary structure S: lifted-linear-forest root
	// pattern -> trie of stop-provenances.
	summary map[string]*provTrie

	nextID int64
	stats  Stats

	// DisableSummary turns off horizontal pruning (the lifted linear
	// forest) for the ablation benchmarks; every fact then takes the
	// isomorphism-check path.
	DisableSummary bool
}

// NewStrategy builds a termination strategy for an analyzed program.
func NewStrategy(res *analysis.Result) *Strategy {
	return &Strategy{
		rules:   res.Rules,
		ground:  make(map[int64]map[string]bool),
		summary: make(map[string]*provTrie),
	}
}

// Stats returns a snapshot of the decision counters.
func (s *Strategy) Stats() Stats {
	s.stats.Patterns = len(s.summary)
	return s.stats
}

// NewEDBFact wraps a database fact as a root of both forests. Ground
// facts (the usual case) are not stored in the ground structure: only
// null-carrying facts participate in isomorphism.
func (s *Strategy) NewEDBFact(f ast.Fact) *FactMeta {
	m := &FactMeta{Fact: f, Kind: analysis.KindNonLinear, RuleID: -1}
	m.id = s.nextID
	s.nextID++
	m.LRoot = m
	m.WRoot = m
	if !f.IsGround() {
		s.addToGround(m)
	}
	s.stats.NewTrees++
	return m
}

// Derive builds the fact structure for a fact freshly produced by rule
// (identified by ruleID) from the given parent facts. For linear rules
// parents has one element; for warded rules the ward parent must be
// passed first. The returned metadata is not yet admitted: call
// CheckTermination to decide whether the chase step may proceed.
func (s *Strategy) Derive(f ast.Fact, ruleID int, parents []*FactMeta) *FactMeta {
	ri := s.rules[ruleID]
	m := &FactMeta{Fact: f, Kind: ri.Kind, RuleID: ruleID}
	m.FreshNulls = freshNulls(f, parents)
	m.id = s.nextID
	s.nextID++
	switch ri.Kind {
	case analysis.KindLinear:
		p := parents[0]
		m.LRoot = p.LRoot
		m.WRoot = p.WRoot
		m.Provenance = append(append(make([]int, 0, len(p.Provenance)+1), p.Provenance...), ruleID)
	case analysis.KindWarded:
		// The warded forest keeps the edge from the ward; the linear
		// forest starts a new tree here (provenance reset).
		ward := parents[0]
		m.WRoot = ward.WRoot
		m.LRoot = m
		m.Provenance = nil
	default:
		// Other non-linear rules open a new tree in both forests.
		m.WRoot = m
		m.LRoot = m
		m.Provenance = nil
	}
	return m
}

// CheckTermination is Algorithm 1: it reports whether the chase step that
// would add a may be activated. On admission the guide structures are
// updated (a is recorded in G; learnt stop-provenances are recorded in S).
//
// Facts without labelled nulls take a fast path: isomorphism on a ground
// fact is plain equality, which the engines' exact-duplicate elimination
// already rules out, so ground facts need neither the per-tree check nor
// storage in the ground structure (only null-carrying facts can ever be
// isomorphic to them). The stop-provenance queries still apply: a learnt
// stop-provenance cuts the whole repeated subtree, ground members
// included (Theorem 1: the cut subtree's ground facts equal the kept
// twin's).
func (s *Strategy) CheckTermination(a *FactMeta) bool {
	s.stats.Checked++
	if a.Kind == analysis.KindLinear || a.Kind == analysis.KindWarded {
		if !s.DisableSummary {
			if trie := s.summary[a.LRoot.patternKey()]; trie != nil {
				beyond, within := trie.query(a.Provenance)
				if beyond {
					s.stats.BeyondStop++
					return false // beyond a stop provenance
				}
				if within {
					s.stats.WithinStop++
					return true // within a stop provenance
				}
			}
		}
		if a.Fact.IsGround() {
			return true // equality-isomorphism already excluded by dedup
		}
		// Continue exploration: local isomorphism check in the warded tree.
		s.stats.IsoChecks++
		tree := s.ground[a.WRoot.id]
		iso := a.Fact.IsoKey()
		if tree != nil && tree[iso] {
			s.stats.IsoHits++
			if !s.DisableSummary {
				s.learnStop(a)
			}
			return false // isomorphism found
		}
		s.addToGround(a)
		return true // isomorphism not found
	}
	// Other non-linear generating rules: the produced fact is ground (the
	// rewriting confines existentials to linear rules), so tree redundancy
	// is set containment of ground facts — guaranteed fresh by the
	// engines' duplicate elimination.
	s.stats.NewTrees++
	return true
}

// learnStop records a.provenance as a stop-provenance for the pattern of
// a's linear-forest root.
func (s *Strategy) learnStop(a *FactMeta) {
	pk := a.LRoot.patternKey()
	trie := s.summary[pk]
	if trie == nil {
		trie = &provTrie{}
		s.summary[pk] = trie
	}
	trie.insert(a.Provenance)
}

func (s *Strategy) addToGround(a *FactMeta) {
	tree := s.ground[a.WRoot.id]
	if tree == nil {
		tree = make(map[string]bool)
		s.ground[a.WRoot.id] = tree
	}
	tree[a.Fact.IsoKey()] = true
	s.stats.GroundFacts++
}

// EvictTree drops the stored ground values of a fully-explored warded tree
// (except its root), the memory optimization noted at the end of Sec. 3.4.
func (s *Strategy) EvictTree(root *FactMeta) {
	if tree := s.ground[root.id]; tree != nil {
		s.stats.GroundFacts -= len(tree)
		rootKey := root.Fact.IsoKey()
		s.ground[root.id] = map[string]bool{rootKey: true}
		s.stats.GroundFacts++
	}
}

// SummarySize returns the number of stop-provenances currently stored, a
// proxy for the memory footprint of the lifted linear forest.
func (s *Strategy) SummarySize() int {
	n := 0
	for _, t := range s.summary {
		n += countTerminals(t)
	}
	return n
}

func countTerminals(t *provTrie) int {
	n := 0
	if t.terminal {
		n++
	}
	for _, c := range t.children {
		n += countTerminals(c)
	}
	return n
}

// Patterns returns the sorted distinct l_root patterns in the summary,
// useful in tests asserting horizontal-pruning behaviour.
func (s *Strategy) Patterns() []string {
	out := make([]string, 0, len(s.summary))
	for k := range s.summary {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// freshNulls reports whether every labelled null of f is absent from the
// parent facts (i.e. was minted by this derivation).
func freshNulls(f ast.Fact, parents []*FactMeta) bool {
	for _, v := range f.Args {
		if !v.IsNull() {
			continue
		}
		for _, p := range parents {
			if p == nil {
				continue
			}
			for _, pv := range p.Fact.Args {
				if pv == v {
					return false
				}
			}
		}
	}
	return true
}
