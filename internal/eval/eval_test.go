package eval

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/term"
)

func compileFirst(t *testing.T, src string) (*CompiledRule, *analysis.Result) {
	t.Helper()
	prog := parser.MustParse(src)
	res := analysis.Analyze(prog)
	cr, err := Compile(prog.Rules[0], res.Rules[0])
	if err != nil {
		t.Fatal(err)
	}
	return cr, res
}

func loadDB(t *testing.T, res *analysis.Result, facts ...ast.Fact) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	strat := core.NewStrategy(res)
	for _, f := range facts {
		db.InsertEDB(f, strat)
	}
	return db
}

func collectMatches(t *testing.T, cr *CompiledRule, db *storage.Database, pinned int, m *core.FactMeta) [][]term.Value {
	t.Helper()
	mt := &Matcher{DB: db}
	b := NewBinding(cr)
	var out [][]term.Value
	err := mt.MatchPinned(cr, pinned, m, b, func(b *Binding) error {
		row := make([]term.Value, len(b.IDs))
		for s := range row {
			if b.Bound[s] {
				row[s] = b.Val(s)
			}
		}
		out = append(out, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompileSlots(t *testing.T) {
	cr, _ := compileFirst(t, `p(X,Y), q(Y,Z), Z > 1 -> r(X,Z).`)
	if len(cr.Pos) != 2 || len(cr.Conds) != 1 || len(cr.Heads) != 1 {
		t.Fatalf("shape: pos=%d conds=%d heads=%d", len(cr.Pos), len(cr.Conds), len(cr.Heads))
	}
	if cr.NSlots != 3 {
		t.Fatalf("slots: %d", cr.NSlots)
	}
}

func TestMatchJoin(t *testing.T) {
	cr, res := compileFirst(t, `p(X,Y), q(Y,Z) -> r(X,Z).`)
	db := loadDB(t, res,
		ast.NewFact("p", term.Int(1), term.Int(2)),
		ast.NewFact("p", term.Int(5), term.Int(6)),
		ast.NewFact("q", term.Int(2), term.Int(3)),
		ast.NewFact("q", term.Int(2), term.Int(4)),
	)
	rel := db.Lookup("p")
	got := collectMatches(t, cr, db, 0, rel.At(0)) // p(1,2)
	if len(got) != 2 {
		t.Fatalf("matches: %d, want 2", len(got))
	}
	got = collectMatches(t, cr, db, 0, rel.At(1)) // p(5,6): no q(6,_)
	if len(got) != 0 {
		t.Fatalf("matches: %d, want 0", len(got))
	}
}

func TestMatchRepeatedVariable(t *testing.T) {
	cr, res := compileFirst(t, `p(X,X) -> r(X).`)
	db := loadDB(t, res,
		ast.NewFact("p", term.Int(1), term.Int(1)),
		ast.NewFact("p", term.Int(1), term.Int(2)),
	)
	rel := db.Lookup("p")
	if got := collectMatches(t, cr, db, 0, rel.At(0)); len(got) != 1 {
		t.Fatalf("p(1,1) must match: %d", len(got))
	}
	if got := collectMatches(t, cr, db, 0, rel.At(1)); len(got) != 0 {
		t.Fatalf("p(1,2) must not match: %d", len(got))
	}
}

func TestMatchConstantInAtom(t *testing.T) {
	cr, res := compileFirst(t, `p(a, Y) -> r(Y).`)
	db := loadDB(t, res,
		ast.NewFact("p", term.String("a"), term.Int(1)),
		ast.NewFact("p", term.String("b"), term.Int(2)),
	)
	rel := db.Lookup("p")
	if got := collectMatches(t, cr, db, 0, rel.At(1)); len(got) != 0 {
		t.Fatal("constant mismatch must fail")
	}
	if got := collectMatches(t, cr, db, 0, rel.At(0)); len(got) != 1 {
		t.Fatal("constant match must succeed")
	}
}

func TestConditionPushdown(t *testing.T) {
	// The schedule must evaluate X > 3 before matching q (selection
	// push-down): we verify by behaviour — no q facts needed to reject.
	cr, _ := compileFirst(t, `p(X), X > 3, q(X,Y) -> r(Y).`)
	sched := cr.schedules[0]
	condPos, matchPos := -1, -1
	for i, st := range sched {
		if st.Kind == StepCond && condPos == -1 {
			condPos = i
		}
		if st.Kind == StepMatch && matchPos == -1 {
			matchPos = i
		}
	}
	if condPos == -1 || matchPos == -1 || condPos > matchPos {
		t.Fatalf("condition not pushed down: %v", sched)
	}
}

func TestExistentialSkolemDeterminism(t *testing.T) {
	cr, res := compileFirst(t, `p(X) -> q(X, Z).`)
	db := loadDB(t, res, ast.NewFact("p", term.String("a")))
	mt := &Matcher{DB: db}
	b := NewBinding(cr)
	rel := db.Lookup("p")
	var first, second term.Value
	for round := 0; round < 2; round++ {
		err := mt.MatchPinned(cr, 0, rel.At(0), b, func(b *Binding) error {
			mt.InstantiateExistentials(cr, b)
			heads, err := HeadFacts(cr, b, nil)
			if err != nil {
				return err
			}
			if round == 0 {
				first = heads[0].Args[1]
			} else {
				second = heads[0].Args[1]
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !first.IsNull() {
		t.Fatal("existential must be a null")
	}
	if first != second {
		t.Error("skolem nulls must be deterministic across re-evaluation")
	}
}

func TestWardFirstParents(t *testing.T) {
	prog := parser.MustParse(`
		c(X) -> w(X, N).
		w(X, N), e(X, Y) -> w(Y, N).
	`)
	res := analysis.Analyze(prog)
	cr, err := Compile(prog.Rules[1], res.Rules[1])
	if err != nil {
		t.Fatal(err)
	}
	if cr.WardPos != 0 {
		t.Fatalf("ward pos: %d", cr.WardPos)
	}
	b := NewBinding(cr)
	w := &core.FactMeta{Fact: ast.NewFact("w", term.String("a"), term.Null(1))}
	e := &core.FactMeta{Fact: ast.NewFact("e", term.String("a"), term.String("b"))}
	b.Parents[0] = w
	b.Parents[1] = e
	parents := WardFirstParents(cr, b)
	if parents[0] != w {
		t.Error("ward parent must come first")
	}
}

func TestAggStateMSum(t *testing.T) {
	st := NewAggState("msum", nil)
	g := []term.Value{term.Int(1)}
	// Same contributor y=2 contributes max(5,3)=5; y=3 adds 7.
	v, improved, err := st.Update(g, []term.Value{term.Int(2)}, term.Int(5))
	if err != nil || v != term.Int(5) || !improved {
		t.Fatalf("v=%v improved=%v err=%v", v, improved, err)
	}
	v, improved, _ = st.Update(g, []term.Value{term.Int(2)}, term.Int(3))
	if v != term.Int(5) {
		t.Errorf("non-improving contribution changed the sum: %v", v)
	}
	if improved {
		t.Error("non-improving contribution reported improved")
	}
	v, improved, _ = st.Update(g, []term.Value{term.Int(3)}, term.Int(7))
	if v != term.Int(12) || !improved {
		t.Errorf("sum: %v (improved=%v), want 12", v, improved)
	}
	// Improvement for contributor 2: 5 -> 6.
	v, improved, _ = st.Update(g, []term.Value{term.Int(2)}, term.Int(6))
	if v != term.Int(13) || !improved {
		t.Errorf("sum after improvement: %v (improved=%v), want 13", v, improved)
	}
	if st.Groups() != 1 {
		t.Errorf("groups: %d", st.Groups())
	}
}

func TestAggStateDomainErrors(t *testing.T) {
	st := NewAggState("msum", nil)
	if _, _, err := st.Update(nil, nil, term.Int(-1)); err == nil {
		t.Error("msum over a negative contribution must error (monotonicity)")
	}
	pr := NewAggState("mprod", nil)
	if _, _, err := pr.Update(nil, nil, term.Float(0.5)); err == nil {
		t.Error("mprod over a contribution < 1 must error (monotonicity)")
	}
	if _, _, err := pr.Update(nil, nil, term.Int(0)); err == nil {
		t.Error("mprod over 0 must error, not poison the product forever")
	}
}

func TestAggStateMProdInt(t *testing.T) {
	st := NewAggState("mprod", nil)
	st.Update(nil, []term.Value{term.Int(1)}, term.Int(2))
	v, _, err := st.Update(nil, []term.Value{term.Int(2)}, term.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if v != term.Int(6) {
		t.Errorf("mprod over ints must return an int: %v (%s)", v, v.Kind())
	}
	// Improvement for contributor 1: 2 -> 4; the old factor divides out
	// exactly (contributions ≥ 1).
	v, _, _ = st.Update(nil, []term.Value{term.Int(1)}, term.Int(4))
	if v != term.Int(12) {
		t.Errorf("mprod after improvement: %v, want 12", v)
	}
	// A float contribution switches to deterministic float recomputation.
	v, _, _ = st.Update(nil, []term.Value{term.Int(3)}, term.Float(1.5))
	if v != term.Float(4*3*1.5) {
		t.Errorf("mixed mprod: %v", v)
	}
}

// TestAggStateKeyCollision: group/contributor keys are interned-ID based,
// so string values whose renderings collide under a separator-joined
// encoding (the old keyOf) stay distinct groups.
func TestAggStateKeyCollision(t *testing.T) {
	st := NewAggState("msum", nil)
	g1 := []term.Value{term.String("a\x00b"), term.String("c")}
	g2 := []term.Value{term.String("a"), term.String("b\x00c")}
	st.Update(g1, nil, term.Int(1))
	st.Update(g2, nil, term.Int(2))
	if st.Groups() != 2 {
		t.Fatalf("colliding renderings merged groups: %d groups", st.Groups())
	}
	if v, _ := st.Final(g1); v != term.Int(1) {
		t.Errorf("g1 final: %v", v)
	}
	if v, _ := st.Final(g2); v != term.Int(2) {
		t.Errorf("g2 final: %v", v)
	}
}

// TestAggStateMunionFlattensSets: a set-valued contribution unions its
// elements, so aggregates consuming an improving set stream converge to
// the union of the final sets regardless of which intermediates were seen.
func TestAggStateMunionFlattensSets(t *testing.T) {
	st := NewAggState("munion", nil)
	st.Update(nil, nil, term.Set([]term.Value{term.String("a")}))
	st.Update(nil, nil, term.Set([]term.Value{term.String("a"), term.String("b")}))
	v, improved, err := st.Update(nil, nil, term.String("c"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Str() != "{a,b,c}" || !improved {
		t.Errorf("flattened munion: %v (improved=%v)", v, improved)
	}
	// Re-feeding a subset of what is already absorbed does not improve.
	_, improved, _ = st.Update(nil, nil, term.Set([]term.Value{term.String("b")}))
	if improved {
		t.Error("subset contribution reported improved")
	}
}

// TestAggStateFloatDeterminism: float sums are recomputed over the
// retained contributions in sorted order, so any arrival order yields the
// bit-identical value.
func TestAggStateFloatDeterminism(t *testing.T) {
	vals := []float64{0.1, 0.7, 1e-9, 3.3, 0.2, 1e9, 0.9}
	perms := [][]int{{0, 1, 2, 3, 4, 5, 6}, {6, 5, 4, 3, 2, 1, 0}, {3, 0, 6, 2, 5, 1, 4}}
	var want term.Value
	for pi, perm := range perms {
		st := NewAggState("msum", nil)
		var last term.Value
		for _, i := range perm {
			last, _, _ = st.Update(nil, []term.Value{term.Int(int64(i))}, term.Float(vals[i]))
		}
		if pi == 0 {
			want = last
		} else if last != want {
			t.Errorf("perm %d: %v != %v (order-dependent float rounding)", pi, last, want)
		}
	}
}

func TestAggStateOrderIndependence(t *testing.T) {
	// Property: the final msum value is the same for any arrival order.
	type upd struct {
		c, x int64
	}
	updates := []upd{{1, 5}, {1, 3}, {2, 7}, {3, 2}, {2, 1}, {3, 9}}
	perms := [][]int{
		{0, 1, 2, 3, 4, 5}, {5, 4, 3, 2, 1, 0}, {2, 0, 5, 1, 4, 3}, {3, 5, 0, 4, 2, 1},
	}
	var want term.Value
	for pi, perm := range perms {
		st := NewAggState("msum", nil)
		var last term.Value
		for _, i := range perm {
			u := updates[i]
			v, _, err := st.Update(nil, []term.Value{term.Int(u.c)}, term.Int(u.x))
			if err != nil {
				t.Fatal(err)
			}
			last = v
		}
		final, _ := st.Final(nil)
		if last != final {
			t.Errorf("perm %d: last update %v != final %v", pi, last, final)
		}
		if pi == 0 {
			want = final
		} else if final != want {
			t.Errorf("perm %d: final %v, want %v", pi, final, want)
		}
	}
	if want != term.Int(5+7+9) {
		t.Errorf("final: %v, want 21", want)
	}
}

func TestAggStateMinMaxCountUnion(t *testing.T) {
	min := NewAggState("mmin", nil)
	min.Update(nil, nil, term.Int(5))
	v, _, _ := min.Update(nil, nil, term.Int(2))
	if v != term.Int(2) {
		t.Errorf("mmin: %v", v)
	}
	max := NewAggState("mmax", nil)
	max.Update(nil, nil, term.Int(5))
	v, _, _ = max.Update(nil, nil, term.Int(2))
	if v != term.Int(5) {
		t.Errorf("mmax: %v", v)
	}
	cnt := NewAggState("mcount", nil)
	cnt.Update(nil, nil, term.String("a"))
	cnt.Update(nil, nil, term.String("a"))
	v, _, _ = cnt.Update(nil, nil, term.String("b"))
	if v != term.Int(2) {
		t.Errorf("mcount distinct: %v", v)
	}
	un := NewAggState("munion", nil)
	un.Update(nil, nil, term.String("b"))
	v, _, _ = un.Update(nil, nil, term.String("a"))
	if v.Str() != "{a,b}" {
		t.Errorf("munion canonical: %v", v)
	}
}

func TestNullSubstUnionFind(t *testing.T) {
	ns := NewNullSubst()
	if !ns.Empty() {
		t.Fatal("fresh subst must be empty")
	}
	if err := ns.Unify(term.Null(1), term.Null(2)); err != nil {
		t.Fatal(err)
	}
	if ns.Resolve(term.Null(1)) != ns.Resolve(term.Null(2)) {
		t.Error("unified nulls must resolve equally")
	}
	if err := ns.Unify(term.Null(2), term.String("bob")); err != nil {
		t.Fatal(err)
	}
	if ns.Resolve(term.Null(1)) != term.String("bob") {
		t.Errorf("resolve: %v", ns.Resolve(term.Null(1)))
	}
	if err := ns.Unify(term.Null(1), term.String("alice")); err == nil {
		t.Error("conflicting constants must error")
	}
	if len(ns.SortedGroundings()) != 1 {
		t.Errorf("groundings: %v", ns.SortedGroundings())
	}
}

func TestNegationLookup(t *testing.T) {
	cr, res := compileFirst(t, `p(X), not q(X, _) -> r(X).`)
	db := loadDB(t, res,
		ast.NewFact("p", term.Int(1)),
		ast.NewFact("p", term.Int(2)),
		ast.NewFact("q", term.Int(2), term.Int(9)),
	)
	rel := db.Lookup("p")
	if got := collectMatches(t, cr, db, 0, rel.At(0)); len(got) != 1 {
		t.Error("p(1) has no q: must match")
	}
	if got := collectMatches(t, cr, db, 0, rel.At(1)); len(got) != 0 {
		t.Error("p(2) has q(2,9): must not match")
	}
}

// TestAggStateMProdOverflowDegrades: the exact-int product must not wrap
// around int64; it degrades to the deterministic float fold instead.
func TestAggStateMProdOverflowDegrades(t *testing.T) {
	st := NewAggState("mprod", nil)
	var v term.Value
	for i := 0; i < 70; i++ {
		var err error
		v, _, err = st.Update(nil, []term.Value{term.Int(int64(i))}, term.Int(2))
		if err != nil {
			t.Fatal(err)
		}
		if v.Kind() == term.KindInt && v.IntVal() <= 0 {
			t.Fatalf("int mprod wrapped around after %d contributions: %v", i+1, v)
		}
	}
	if v.Kind() != term.KindFloat || v.FloatVal() != math.Pow(2, 70) {
		t.Errorf("overflowed mprod: %v, want 2^70 as float", v)
	}
}
