package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/term"
)

// AggState holds the stateful record-level monotonic aggregation operators
// of paper Sec. 5 for one rule: per group-by tuple, the current aggregate
// and the best contribution seen per contributor tuple.
type AggState struct {
	fn     string
	groups map[string]*groupState
}

type groupState struct {
	// contribs maps a contributor key to its best (max for increasing,
	// min for decreasing aggregations) contribution so far.
	contribs map[string]term.Value
	// distinct collects values for mcount/munion.
	distinct map[term.Value]bool
	// cur is the running aggregate for mmin/mmax.
	cur    term.Value
	hasCur bool
	// sum caches the current sum/product to avoid rescanning contributors.
	sum    float64
	sumInt int64
	isInt  bool
	prod   float64
}

// NewAggState creates the state for aggregation function fn.
func NewAggState(fn string) *AggState {
	return &AggState{fn: fn, groups: make(map[string]*groupState)}
}

func keyOf(vals []term.Value) string {
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteString(v.String())
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// Update feeds one body match into the aggregate: group is the group-by
// tuple, contrib the contributor tuple (may be empty), x the aggregated
// value. It returns the updated monotonic aggregate for the group.
//
// Per the paper, for each contributor value the maximum (for increasing
// functions: msum over non-negative, mprod over ≥1, mmax, mcount, munion)
// or minimum (mmin) contribution is retained, and the aggregate is
// recomputed over the retained contributions; subsequent invocations yield
// updated values whose limit is the final aggregate.
func (st *AggState) Update(group, contrib []term.Value, x term.Value) (term.Value, error) {
	gk := keyOf(group)
	g := st.groups[gk]
	if g == nil {
		g = &groupState{
			contribs: make(map[string]term.Value),
			isInt:    true,
			prod:     1,
		}
		if st.fn == "mcount" || st.fn == "munion" {
			g.distinct = make(map[term.Value]bool)
		}
		st.groups[gk] = g
	}
	switch st.fn {
	case "msum", "mprod":
		if !x.IsNumeric() {
			return term.Value{}, fmt.Errorf("eval: %s over non-numeric value %s", st.fn, x)
		}
		ck := keyOf(contrib)
		if len(contrib) == 0 {
			// No windowing: set semantics — each distinct value per group
			// contributes once (idempotent under re-derivation).
			ck = keyOf([]term.Value{x})
		}
		old, had := g.contribs[ck]
		if had && term.Compare(x, old) <= 0 {
			// Not an improvement; aggregate unchanged.
			return st.currentSumProd(g), nil
		}
		g.contribs[ck] = x
		if x.Kind() != term.KindInt {
			g.isInt = false
		}
		if st.fn == "msum" {
			if had {
				g.sum -= old.FloatVal()
				g.sumInt -= intOf(old)
			}
			g.sum += x.FloatVal()
			g.sumInt += intOf(x)
		} else {
			if had && old.FloatVal() != 0 {
				g.prod /= old.FloatVal()
			}
			g.prod *= x.FloatVal()
		}
		return st.currentSumProd(g), nil
	case "mmin":
		if !g.hasCur || term.Compare(x, g.cur) < 0 {
			g.cur = x
			g.hasCur = true
		}
		return g.cur, nil
	case "mmax":
		if !g.hasCur || term.Compare(x, g.cur) > 0 {
			g.cur = x
			g.hasCur = true
		}
		return g.cur, nil
	case "mcount":
		key := x
		if len(contrib) > 0 {
			key = term.String(keyOf(contrib))
		}
		g.distinct[key] = true
		return term.Int(int64(len(g.distinct))), nil
	case "munion":
		g.distinct[x] = true
		return setValue(g.distinct), nil
	default:
		return term.Value{}, fmt.Errorf("eval: unknown aggregation function %s", st.fn)
	}
}

func (st *AggState) currentSumProd(g *groupState) term.Value {
	if st.fn == "mprod" {
		return term.Float(g.prod)
	}
	if g.isInt {
		return term.Int(g.sumInt)
	}
	return term.Float(g.sum)
}

func intOf(v term.Value) int64 {
	if v.Kind() == term.KindInt {
		return v.IntVal()
	}
	return 0
}

// Final returns the current (final, once the chase has quiesced) aggregate
// for a group, if present.
func (st *AggState) Final(group []term.Value) (term.Value, bool) {
	g := st.groups[keyOf(group)]
	if g == nil {
		return term.Value{}, false
	}
	switch st.fn {
	case "msum", "mprod":
		return st.currentSumProd(g), true
	case "mmin", "mmax":
		return g.cur, g.hasCur
	case "mcount":
		return term.Int(int64(len(g.distinct))), true
	case "munion":
		return setValue(g.distinct), true
	}
	return term.Value{}, false
}

// Groups returns the number of distinct group-by tuples seen.
func (st *AggState) Groups() int { return len(st.groups) }

// setValue renders a set of values as a canonical string constant
// "{a,b,c}" with sorted elements; Vadalog's composite set type is modeled
// as this canonical form so values stay comparable map keys.
func setValue(set map[term.Value]bool) term.Value {
	elems := make([]term.Value, 0, len(set))
	for v := range set {
		elems = append(elems, v)
	}
	term.SortValues(elems)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range elems {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte('}')
	return term.String(sb.String())
}

// NullSubst is a union-find substitution over labelled nulls, produced by
// equality-generating dependencies: a null may be unified with another
// null or promoted to a constant. Engines normalize freshly created facts
// through Resolve and apply the substitution again when emitting results.
type NullSubst struct {
	parent map[int64]int64      // null id -> representative null id
	value  map[int64]term.Value // representative null id -> ground value
}

// NewNullSubst returns an empty substitution.
func NewNullSubst() *NullSubst {
	return &NullSubst{parent: make(map[int64]int64), value: make(map[int64]term.Value)}
}

func (ns *NullSubst) find(id int64) int64 {
	root := id
	for {
		p, ok := ns.parent[root]
		if !ok {
			break
		}
		root = p
	}
	// Path compression.
	for id != root {
		next := ns.parent[id]
		ns.parent[id] = root
		id = next
	}
	return root
}

// Resolve maps v through the substitution: nulls resolve to their
// representative null or to the ground value they were equated with.
func (ns *NullSubst) Resolve(v term.Value) term.Value {
	if !v.IsNull() {
		return v
	}
	root := ns.find(v.NullID())
	if gv, ok := ns.value[root]; ok {
		return gv
	}
	return term.Null(root)
}

// Unify records a = b. It returns an error when two distinct ground values
// are equated (a hard EGD violation).
func (ns *NullSubst) Unify(a, b term.Value) error {
	a, b = ns.Resolve(a), ns.Resolve(b)
	if a == b {
		return nil
	}
	switch {
	case a.IsNull() && b.IsNull():
		ra, rb := ns.find(a.NullID()), ns.find(b.NullID())
		if ra != rb {
			ns.parent[ra] = rb
		}
	case a.IsNull():
		ns.value[ns.find(a.NullID())] = b
	case b.IsNull():
		ns.value[ns.find(b.NullID())] = a
	default:
		return fmt.Errorf("eval: EGD violation: %s = %s over distinct constants", a, b)
	}
	return nil
}

// Empty reports whether no equation has been recorded.
func (ns *NullSubst) Empty() bool { return len(ns.parent) == 0 && len(ns.value) == 0 }

// Size returns the number of recorded equations (for diagnostics).
func (ns *NullSubst) Size() int { return len(ns.parent) + len(ns.value) }

// SortedGroundings lists null->constant promotions for tests.
func (ns *NullSubst) SortedGroundings() []string {
	var out []string
	for id, v := range ns.value {
		out = append(out, fmt.Sprintf("n%d=%s", id, v))
	}
	sort.Strings(out)
	return out
}
