package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/term"
)

// AggState holds the stateful record-level monotonic aggregation operators
// of paper Sec. 5 for one rule: per group-by tuple, the best contribution
// retained per contributor tuple, the current aggregate, and the facts the
// owning rule last admitted for the group. The latter is the supersession
// layer: the stream of intermediate aggregates is transient — only its
// limit belongs in the final database — so when a group's aggregate
// improves, the engines replace the previously admitted fact in place
// (storage.Relation.Replace) instead of letting superseded intermediates
// accumulate. At quiescence exactly one fact per group and rule remains,
// the final one, regardless of rule-application order.
//
// Group and contributor tuples are keyed by interned term IDs (packed,
// fixed-width), not rendered strings: keys cannot collide for values whose
// renderings coincide (e.g. strings containing a separator byte) and the
// per-Update hot path never renders values.
//
// msum and mprod enforce the paper's monotonicity domains (contributions
// ≥ 0 for msum, ≥ 1 for mprod) and recompute float aggregates over the
// retained contributions in sorted order, so the value emitted after an
// improvement is a deterministic function of the retained set — identical
// across engines and admission orders down to the last bit.
type AggState struct {
	fn     string
	in     *storage.Interner
	groups map[string]*groupState
	// cur is the group touched by the most recent Update; LastEmitted and
	// RecordEmitted address it without re-deriving the group key.
	cur    *groupState
	keyBuf []byte
}

type groupState struct {
	// contribs maps a contributor key to its best (max for increasing,
	// min for decreasing aggregations) contribution so far.
	contribs map[string]term.Value
	// distinct collects values for mcount/munion.
	distinct map[term.Value]bool
	// cur is the running aggregate for mmin/mmax.
	cur    term.Value
	hasCur bool
	// Exact integer accumulators, valid while every contribution is an
	// int and (for mprod) the product fits int64; otherwise the aggregate
	// is folded over sorted, the retained contributions kept in ascending
	// order, so float rounding depends only on the retained multiset
	// (deterministic across engines and admission orders).
	sumInt  int64
	prodInt int64
	isInt   bool
	sorted  []float64
	sumF    float64
	prodF   float64
	// last is the value returned by the previous Update for this group:
	// Update reports improved=false when the value did not change, which
	// lets the engines skip emission entirely.
	last    term.Value
	hasLast bool
	// emitted tracks, per head-atom index, the fact the owning rule last
	// admitted for this group (the supersession target).
	emitted []Emitted
}

// Emitted identifies a fact admitted for a group: its metadata and its row
// index in its predicate's relation. Rows keep their index across
// Replace, so the pair stays valid for the lifetime of the run.
type Emitted struct {
	Meta *core.FactMeta
	Row  int
}

// NewAggState creates the state for aggregation function fn, keying
// groups and contributors through in — pass the database's interner so
// stored values are keyed without re-interning; nil allocates a private
// table (tests, standalone use).
func NewAggState(fn string, in *storage.Interner) *AggState {
	if in == nil {
		in = storage.NewInterner()
	}
	return &AggState{fn: fn, in: in, groups: make(map[string]*groupState)}
}

// key packs the interned IDs of vals into a fixed-width byte string:
// collision-free by construction and allocation-light (one string per
// lookup, no rendering).
func (st *AggState) key(vals []term.Value) string {
	b := st.keyBuf[:0]
	for _, v := range vals {
		id := st.in.Intern(v)
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	st.keyBuf = b
	return string(b)
}

// Update feeds one body match into the aggregate: group is the group-by
// tuple, contrib the contributor tuple (may be empty), x the aggregated
// value. It returns the updated monotonic aggregate for the group and
// whether it improved on the previous Update's value — when improved is
// false the engines skip head emission: the group's admitted fact already
// carries this value.
//
// Per the paper, for each contributor value the maximum (for increasing
// functions: msum over non-negative, mprod over ≥1, mmax, mcount, munion)
// or minimum (mmin) contribution is retained, and the aggregate is
// recomputed over the retained contributions; subsequent invocations yield
// updated values whose limit is the final aggregate. A set-valued munion
// contribution is flattened into its elements, so unioning an improving
// set-valued stream (e.g. an aggregate consuming its own predicate, as in
// AllPSC) converges to the union of the final sets independent of which
// intermediates were observed.
func (st *AggState) Update(group, contrib []term.Value, x term.Value) (term.Value, bool, error) {
	gk := st.key(group)
	g := st.groups[gk]
	if g == nil {
		g = &groupState{
			contribs: make(map[string]term.Value),
			isInt:    true,
			prodInt:  1,
		}
		if st.fn == "mcount" || st.fn == "munion" {
			g.distinct = make(map[term.Value]bool)
		}
		st.groups[gk] = g
	}
	st.cur = g
	v, err := st.apply(g, contrib, x)
	if err != nil {
		return term.Value{}, false, err
	}
	improved := !g.hasLast || v != g.last
	g.last, g.hasLast = v, true
	return v, improved, nil
}

func (st *AggState) apply(g *groupState, contrib []term.Value, x term.Value) (term.Value, error) {
	switch st.fn {
	case "msum", "mprod":
		if !x.IsNumeric() {
			return term.Value{}, fmt.Errorf("eval: %s over non-numeric value %s", st.fn, x)
		}
		if st.fn == "msum" && x.FloatVal() < 0 {
			return term.Value{}, fmt.Errorf("eval: msum over negative contribution %s (monotonic sum requires contributions ≥ 0)", x)
		}
		if st.fn == "mprod" && x.FloatVal() < 1 {
			return term.Value{}, fmt.Errorf("eval: mprod over contribution %s < 1 (monotonic product requires contributions ≥ 1)", x)
		}
		var ck string
		if len(contrib) == 0 {
			// No windowing: set semantics — each distinct value per group
			// contributes once (idempotent under re-derivation).
			ck = st.key([]term.Value{x})
		} else {
			ck = st.key(contrib)
		}
		old, had := g.contribs[ck]
		if had && term.Compare(x, old) <= 0 {
			// Not an improvement; aggregate unchanged.
			return st.currentSumProd(g), nil
		}
		g.contribs[ck] = x
		wasInt := g.isInt
		if x.Kind() != term.KindInt {
			g.isInt = false
		}
		switch {
		case g.isInt && st.fn == "msum":
			if had {
				g.sumInt -= old.IntVal()
			}
			g.sumInt += x.IntVal()
		case g.isInt: // mprod
			// old ≥ 1 (domain-checked) divides the product exactly.
			if had {
				g.prodInt /= old.IntVal()
			}
			if v := x.IntVal(); g.prodInt > math.MaxInt64/v {
				// The exact product would overflow int64: degrade to the
				// deterministic float fold instead of wrapping around.
				g.isInt = false
				g.rebuildSorted()
			} else {
				g.prodInt *= v
			}
		case wasInt:
			// First non-int contribution: normalize the retained set once.
			g.rebuildSorted()
		default:
			if had {
				g.sorted = removeSorted(g.sorted, old.FloatVal())
			}
			g.sorted = insertSorted(g.sorted, x.FloatVal())
		}
		if !g.isInt {
			st.foldFloat(g)
		}
		return st.currentSumProd(g), nil
	case "mmin":
		if !g.hasCur || term.Compare(x, g.cur) < 0 {
			g.cur = x
			g.hasCur = true
		}
		return g.cur, nil
	case "mmax":
		if !g.hasCur || term.Compare(x, g.cur) > 0 {
			g.cur = x
			g.hasCur = true
		}
		return g.cur, nil
	case "mcount":
		key := x
		if len(contrib) > 0 {
			key = term.String(st.key(contrib))
		}
		g.distinct[key] = true
		return term.Int(int64(len(g.distinct))), nil
	case "munion":
		if x.Kind() == term.KindSet {
			for _, el := range x.SetElems() {
				g.distinct[el] = true
			}
		} else {
			g.distinct[x] = true
		}
		return setValue(g.distinct), nil
	default:
		return term.Value{}, fmt.Errorf("eval: unknown aggregation function %s", st.fn)
	}
}

// rebuildSorted normalizes the retained contributions into the sorted
// float slice the deterministic fold runs over (paid once, when the group
// leaves the exact-int fast path).
func (g *groupState) rebuildSorted() {
	g.sorted = g.sorted[:0]
	for _, v := range g.contribs {
		g.sorted = append(g.sorted, v.FloatVal())
	}
	sort.Float64s(g.sorted)
}

// foldFloat recomputes the float aggregate by folding the sorted retained
// contributions in ascending order: the result depends only on the
// retained multiset, never on arrival order, so both engines round
// identically however their fixpoints interleave. The slice is maintained
// incrementally (binary-search insert/remove), so a fold is one linear
// pass with no sorting or allocation on the hot path.
func (st *AggState) foldFloat(g *groupState) {
	if st.fn == "msum" {
		s := 0.0
		for _, f := range g.sorted {
			s += f
		}
		g.sumF = s
	} else {
		p := 1.0
		for _, f := range g.sorted {
			p *= f
		}
		g.prodF = p
	}
}

// removeSorted deletes one occurrence of f, falling back to a linear scan
// when the binary search misses (NaN contributions break the sort
// invariant; any fold containing NaN is NaN regardless of order, so the
// disorder stays harmless).
func removeSorted(s []float64, f float64) []float64 {
	i := sort.SearchFloat64s(s, f)
	if i >= len(s) || s[i] != f {
		i = -1
		for j, v := range s {
			if v == f || (math.IsNaN(v) && math.IsNaN(f)) {
				i = j
				break
			}
		}
		if i < 0 {
			return s
		}
	}
	return append(s[:i], s[i+1:]...)
}

// insertSorted inserts f keeping the slice sorted.
func insertSorted(s []float64, f float64) []float64 {
	i := sort.SearchFloat64s(s, f)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = f
	return s
}

func (st *AggState) currentSumProd(g *groupState) term.Value {
	if st.fn == "mprod" {
		if g.isInt {
			return term.Int(g.prodInt)
		}
		return term.Float(g.prodF)
	}
	if g.isInt {
		return term.Int(g.sumInt)
	}
	return term.Float(g.sumF)
}

// LastEmitted returns the fact the owning rule last admitted for head
// index hi of the group touched by the most recent Update, or ok=false
// when no fact has been admitted for it yet.
func (st *AggState) LastEmitted(hi int) (Emitted, bool) {
	if st.cur == nil || hi >= len(st.cur.emitted) || st.cur.emitted[hi].Meta == nil {
		return Emitted{}, false
	}
	return st.cur.emitted[hi], true
}

// RecordEmitted notes m (stored at row in its predicate's relation) as the
// admitted fact for head index hi of the most recent Update's group.
func (st *AggState) RecordEmitted(hi int, m *core.FactMeta, row int) {
	g := st.cur
	for len(g.emitted) <= hi {
		g.emitted = append(g.emitted, Emitted{})
	}
	g.emitted[hi] = Emitted{Meta: m, Row: row}
}

// Final returns the current (final, once the chase has quiesced) aggregate
// for a group, if present.
func (st *AggState) Final(group []term.Value) (term.Value, bool) {
	g := st.groups[st.key(group)]
	if g == nil {
		return term.Value{}, false
	}
	switch st.fn {
	case "msum", "mprod":
		return st.currentSumProd(g), true
	case "mmin", "mmax":
		return g.cur, g.hasCur
	case "mcount":
		return term.Int(int64(len(g.distinct))), true
	case "munion":
		return setValue(g.distinct), true
	}
	return term.Value{}, false
}

// Groups returns the number of distinct group-by tuples seen.
func (st *AggState) Groups() int { return len(st.groups) }

// setValue collects a distinct-value map into the canonical set constant.
func setValue(set map[term.Value]bool) term.Value {
	elems := make([]term.Value, 0, len(set))
	//vadalint:ordered term.Set dedups and sorts elems into the canonical order itself
	for v := range set {
		elems = append(elems, v)
	}
	return term.Set(elems)
}

// NullSubst is a union-find substitution over labelled nulls, produced by
// equality-generating dependencies: a null may be unified with another
// null or promoted to a constant. Engines normalize freshly created facts
// through Resolve and apply the substitution again when emitting results.
type NullSubst struct {
	parent map[int64]int64      // null id -> representative null id
	value  map[int64]term.Value // representative null id -> ground value
}

// NewNullSubst returns an empty substitution.
func NewNullSubst() *NullSubst {
	return &NullSubst{parent: make(map[int64]int64), value: make(map[int64]term.Value)}
}

func (ns *NullSubst) find(id int64) int64 {
	root := id
	for {
		p, ok := ns.parent[root]
		if !ok {
			break
		}
		root = p
	}
	// Path compression.
	for id != root {
		next := ns.parent[id]
		ns.parent[id] = root
		id = next
	}
	return root
}

// Resolve maps v through the substitution: nulls resolve to their
// representative null or to the ground value they were equated with.
func (ns *NullSubst) Resolve(v term.Value) term.Value {
	if !v.IsNull() {
		return v
	}
	root := ns.find(v.NullID())
	if gv, ok := ns.value[root]; ok {
		return gv
	}
	return term.Null(root)
}

// Unify records a = b. It returns an error when two distinct ground values
// are equated (a hard EGD violation).
func (ns *NullSubst) Unify(a, b term.Value) error {
	a, b = ns.Resolve(a), ns.Resolve(b)
	if a == b {
		return nil
	}
	switch {
	case a.IsNull() && b.IsNull():
		ra, rb := ns.find(a.NullID()), ns.find(b.NullID())
		if ra != rb {
			ns.parent[ra] = rb
		}
	case a.IsNull():
		ns.value[ns.find(a.NullID())] = b
	case b.IsNull():
		ns.value[ns.find(b.NullID())] = a
	default:
		return fmt.Errorf("eval: EGD violation: %s = %s over distinct constants", a, b)
	}
	return nil
}

// Empty reports whether no equation has been recorded.
func (ns *NullSubst) Empty() bool { return len(ns.parent) == 0 && len(ns.value) == 0 }

// Size returns the number of recorded equations (for diagnostics).
func (ns *NullSubst) Size() int { return len(ns.parent) + len(ns.value) }

// SortedGroundings lists null->constant promotions for tests.
func (ns *NullSubst) SortedGroundings() []string {
	var out []string
	for id, v := range ns.value {
		out = append(out, fmt.Sprintf("n%d=%s", id, v))
	}
	sort.Strings(out)
	return out
}
