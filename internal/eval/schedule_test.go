package eval

import "testing"

func matchOrder(steps []Step) []int {
	var order []int
	for _, st := range steps {
		if st.Kind == StepMatch {
			order = append(order, st.Index)
		}
	}
	return order
}

// TestStaticScheduleTieBreakSourceOrder pins the static schedule's
// documented tie-break: when several candidate atoms bind equally many
// positions, the earliest source-order atom is matched first. This is the
// fallback order the cost-based planner is measured against, so it must
// not drift.
func TestStaticScheduleTieBreakSourceOrder(t *testing.T) {
	cr, _ := compileFirst(t, `a(X), b(X), c(X) -> h(X).`)
	got := matchOrder(cr.Schedule(0))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("pinned 0: match order %v, want [1 2]", got)
	}
	// Pinned on the last atom the tie is between a and b: source order again.
	got = matchOrder(cr.Schedule(2))
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("pinned 2: match order %v, want [0 1]", got)
	}
}

// TestScheduleForExplicitOrder: ScheduleFor honors the planner's explicit
// atom order, and an exhausted explicit order falls back to the greedy
// picker rather than dropping atoms.
func TestScheduleForExplicitOrder(t *testing.T) {
	cr, _ := compileFirst(t, `a(X), b(X), c(X) -> h(X).`)
	got := matchOrder(cr.ScheduleFor(0, []int{2, 1}))
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("explicit order: %v, want [2 1]", got)
	}
	got = matchOrder(cr.ScheduleFor(0, []int{2}))
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("partial order must complete greedily: %v, want [2 1]", got)
	}
}
