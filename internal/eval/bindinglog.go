package eval

import (
	"sort"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/term"
)

// BindingLog is a packed log of complete rule bindings, the hand-off
// between the parallel chase's match phase and its serial admit phase: a
// worker goroutine enumerating matches against a frozen storage epoch
// captures each complete binding (slot values plus matched parents) into
// its task's log, and the engine later restores them — in task order, on
// one goroutine — to run the side-effecting emit path (aggregation, EGD
// unification, existential instantiation, admission). Captured values are
// decoded to term.Values, so a restored binding never needs the worker's
// interner state.
//
// Entries are packed into flat arrays (slot stride NSlots, parent stride
// len(Pos)) so capturing a match costs amortized appends, not per-match
// allocations. A BindingLog belongs to one task at a time; Reset rebinds
// it to a rule shape and clears it.
type BindingLog struct {
	n      int
	nslots int
	npos   int

	vals    []term.Value
	bound   []bool
	parents []*core.FactMeta
	rows    []int32 // matched storage rows per entry (stride npos)

	// Err is the error that aborted the producing enumeration, if any; the
	// engine surfaces it after replaying the captured prefix, which is
	// exactly the order the serial engine would have observed.
	Err error
}

// Reset clears the log and shapes it for capturing matches of cr. The
// previous batch's entries are zeroed before truncation so captured
// values and parent metadata do not stay reachable through the buffers'
// capacity for the engine's lifetime (the cost is proportional to the
// work the previous batch actually did).
func (lg *BindingLog) Reset(cr *CompiledRule) {
	clear(lg.vals)
	clear(lg.parents)
	lg.n = 0
	lg.nslots = cr.NSlots
	lg.npos = len(cr.Pos)
	lg.vals = lg.vals[:0]
	lg.bound = lg.bound[:0]
	lg.parents = lg.parents[:0]
	lg.rows = lg.rows[:0]
	lg.Err = nil
}

// Len returns the number of captured bindings.
func (lg *BindingLog) Len() int { return lg.n }

// Capture appends the bound slots and matched parents of b. It must be
// called from the binding's own enumeration (one goroutine per log).
func (lg *BindingLog) Capture(b *Binding) {
	for s := 0; s < lg.nslots; s++ {
		if b.Bound[s] {
			lg.vals = append(lg.vals, b.Val(s))
			lg.bound = append(lg.bound, true)
		} else {
			lg.vals = append(lg.vals, term.Value{})
			lg.bound = append(lg.bound, false)
		}
	}
	lg.parents = append(lg.parents, b.Parents[:lg.npos]...)
	lg.rows = append(lg.rows, b.ParentRows[:lg.npos]...)
	lg.n++
}

// Restore rebuilds the i-th captured binding into b (decoding through in
// where needed). b must have been allocated for the same rule the log was
// Reset with — or, for CSE body sharing, for a member rule whose body
// slots coincide with the log's rule: slots past the log's stride are
// cleared, so a wider member binding never sees a previous entry's
// leftovers.
func (lg *BindingLog) Restore(i int, in *storage.Interner, b *Binding) {
	b.in = in
	off := i * lg.nslots
	for s := 0; s < lg.nslots; s++ {
		if lg.bound[off+s] {
			b.Set(s, lg.vals[off+s])
		} else {
			b.Bound[s] = false
			b.hasVal[s] = false
		}
	}
	for s := lg.nslots; s < len(b.Bound); s++ {
		b.Bound[s] = false
		b.hasVal[s] = false
	}
	copy(b.Parents, lg.parents[i*lg.npos:(i+1)*lg.npos])
	copy(b.ParentRows, lg.rows[i*lg.npos:(i+1)*lg.npos])
}

// CanonicalOrder appends to perm[:0] the entry indexes in canonical
// admission order: ascending lexicographic comparison of the matched
// storage rows in body-atom source order. The key depends only on which
// rows matched, never on the join order that enumerated them, so every
// plan choice — static, cost-based, or deliberately worst-case — admits
// the same candidates in the same order, which is what keeps reasoning
// output byte-identical across plans. Entries with equal keys are
// identical bindings, so their relative order is immaterial.
func (lg *BindingLog) CanonicalOrder(perm []int32) []int32 {
	perm = perm[:0]
	for i := 0; i < lg.n; i++ {
		perm = append(perm, int32(i))
	}
	if lg.n < 2 || lg.npos < 2 {
		return perm // ≤1 entry, or a single atom enumerated in row order
	}
	rows, np := lg.rows, lg.npos
	sort.Slice(perm, func(a, b int) bool {
		ra := rows[int(perm[a])*np : int(perm[a])*np+np]
		rb := rows[int(perm[b])*np : int(perm[b])*np+np]
		for k := 0; k < np; k++ {
			if ra[k] != rb[k] {
				return ra[k] < rb[k]
			}
		}
		return false
	})
	return perm
}
