package eval

import (
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/term"
)

// BindingLog is a packed log of complete rule bindings, the hand-off
// between the parallel chase's match phase and its serial admit phase: a
// worker goroutine enumerating matches against a frozen storage epoch
// captures each complete binding (slot values plus matched parents) into
// its task's log, and the engine later restores them — in task order, on
// one goroutine — to run the side-effecting emit path (aggregation, EGD
// unification, existential instantiation, admission). Captured values are
// decoded to term.Values, so a restored binding never needs the worker's
// interner state.
//
// Entries are packed into flat arrays (slot stride NSlots, parent stride
// len(Pos)) so capturing a match costs amortized appends, not per-match
// allocations. A BindingLog belongs to one task at a time; Reset rebinds
// it to a rule shape and clears it.
type BindingLog struct {
	n      int
	nslots int
	npos   int

	vals    []term.Value
	bound   []bool
	parents []*core.FactMeta

	// Err is the error that aborted the producing enumeration, if any; the
	// engine surfaces it after replaying the captured prefix, which is
	// exactly the order the serial engine would have observed.
	Err error
}

// Reset clears the log and shapes it for capturing matches of cr. The
// previous batch's entries are zeroed before truncation so captured
// values and parent metadata do not stay reachable through the buffers'
// capacity for the engine's lifetime (the cost is proportional to the
// work the previous batch actually did).
func (lg *BindingLog) Reset(cr *CompiledRule) {
	clear(lg.vals)
	clear(lg.parents)
	lg.n = 0
	lg.nslots = cr.NSlots
	lg.npos = len(cr.Pos)
	lg.vals = lg.vals[:0]
	lg.bound = lg.bound[:0]
	lg.parents = lg.parents[:0]
	lg.Err = nil
}

// Len returns the number of captured bindings.
func (lg *BindingLog) Len() int { return lg.n }

// Capture appends the bound slots and matched parents of b. It must be
// called from the binding's own enumeration (one goroutine per log).
func (lg *BindingLog) Capture(b *Binding) {
	for s := 0; s < lg.nslots; s++ {
		if b.Bound[s] {
			lg.vals = append(lg.vals, b.Val(s))
			lg.bound = append(lg.bound, true)
		} else {
			lg.vals = append(lg.vals, term.Value{})
			lg.bound = append(lg.bound, false)
		}
	}
	lg.parents = append(lg.parents, b.Parents[:lg.npos]...)
	lg.n++
}

// Restore rebuilds the i-th captured binding into b (decoding through in
// where needed). b must have been allocated for the same rule the log was
// Reset with.
func (lg *BindingLog) Restore(i int, in *storage.Interner, b *Binding) {
	b.in = in
	off := i * lg.nslots
	for s := 0; s < lg.nslots; s++ {
		if lg.bound[off+s] {
			b.Set(s, lg.vals[off+s])
		} else {
			b.Bound[s] = false
			b.hasVal[s] = false
		}
	}
	copy(b.Parents, lg.parents[i*lg.npos:(i+1)*lg.npos])
}
