package eval

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/term"
)

// BindingLog is a packed log of complete rule bindings, the hand-off
// between the parallel chase's match phase and its serial admit phase: a
// worker goroutine enumerating matches against a frozen storage epoch
// captures each complete binding (slot values plus matched parents) into
// its task's log, and the engine later restores them — in task order, on
// one goroutine — to run the side-effecting emit path (aggregation, EGD
// unification, existential instantiation, admission). Captured values are
// decoded to term.Values, so a restored binding never needs the worker's
// interner state.
//
// Entries are packed into flat arrays (slot stride NSlots, parent stride
// len(Pos)) so capturing a match costs amortized appends, not per-match
// allocations. A BindingLog belongs to one task at a time; Reset rebinds
// it to a rule shape and clears it.
type BindingLog struct {
	n      int
	nslots int
	npos   int

	vals    []term.Value
	bound   []bool
	parents []*core.FactMeta
	rows    []int32 // matched storage rows per entry (stride npos)

	// Prepared-head extension (partitioned admission): when headsN > 0 the
	// log also carries, per entry, the materialized head facts plus their
	// interned rows and duplicate-table hashes, all computed on the match
	// worker against the frozen epoch. headPrep marks entries whose every
	// head materialized and fully resolved through the interner; entries
	// where it is false (an unbound head slot, a computed value the
	// interner has never seen) take the classic Restore+emit path, which
	// reproduces the exact serial behavior including its errors.
	headsN    int   // heads per entry (0 = preparation off)
	headOff   []int // per-head row offsets within an entry (len headsN+1)
	headFacts []ast.Fact
	headRows  []uint32
	headHash  []uint64
	headPrep  []bool

	// Err is the error that aborted the producing enumeration, if any; the
	// engine surfaces it after replaying the captured prefix, which is
	// exactly the order the serial engine would have observed.
	Err error
}

// Reset clears the log and shapes it for capturing matches of cr. The
// previous batch's entries are zeroed before truncation so captured
// values and parent metadata do not stay reachable through the buffers'
// capacity for the engine's lifetime (the cost is proportional to the
// work the previous batch actually did).
func (lg *BindingLog) Reset(cr *CompiledRule) {
	clear(lg.vals)
	clear(lg.parents)
	clear(lg.headFacts)
	lg.n = 0
	lg.nslots = cr.NSlots
	lg.npos = len(cr.Pos)
	lg.vals = lg.vals[:0]
	lg.bound = lg.bound[:0]
	lg.parents = lg.parents[:0]
	lg.rows = lg.rows[:0]
	lg.headsN = 0
	lg.headFacts = lg.headFacts[:0]
	lg.headRows = lg.headRows[:0]
	lg.headHash = lg.headHash[:0]
	lg.headPrep = lg.headPrep[:0]
	lg.Err = nil
}

// PrepareHeads switches the log into prepared-head capture for cr: every
// subsequent Capture must be followed by a CaptureHeads. Call after Reset,
// only for rules on the prepared admission path (parallel-safe, no
// aggregate, no EGD, no existentials, at least one head).
func (lg *BindingLog) PrepareHeads(cr *CompiledRule) {
	lg.headsN = len(cr.Heads)
	lg.headOff = lg.headOff[:0]
	off := 0
	for hi := range cr.Heads {
		lg.headOff = append(lg.headOff, off)
		off += len(cr.Heads[hi].IsVar)
	}
	lg.headOff = append(lg.headOff, off)
}

// Len returns the number of captured bindings.
func (lg *BindingLog) Len() int { return lg.n }

// Capture appends the bound slots and matched parents of b. It must be
// called from the binding's own enumeration (one goroutine per log).
func (lg *BindingLog) Capture(b *Binding) {
	for s := 0; s < lg.nslots; s++ {
		if b.Bound[s] {
			lg.vals = append(lg.vals, b.Val(s))
			lg.bound = append(lg.bound, true)
		} else {
			lg.vals = append(lg.vals, term.Value{})
			lg.bound = append(lg.bound, false)
		}
	}
	lg.parents = append(lg.parents, b.Parents[:lg.npos]...)
	lg.rows = append(lg.rows, b.ParentRows[:lg.npos]...)
	lg.n++
}

// Restore rebuilds the i-th captured binding into b (decoding through in
// where needed). b must have been allocated for the same rule the log was
// Reset with — or, for CSE body sharing, for a member rule whose body
// slots coincide with the log's rule: slots past the log's stride are
// cleared, so a wider member binding never sees a previous entry's
// leftovers.
func (lg *BindingLog) Restore(i int, in *storage.Interner, b *Binding) {
	b.in = in
	off := i * lg.nslots
	for s := 0; s < lg.nslots; s++ {
		if lg.bound[off+s] {
			b.Set(s, lg.vals[off+s])
		} else {
			b.Bound[s] = false
			b.hasVal[s] = false
		}
	}
	for s := lg.nslots; s < len(b.Bound); s++ {
		b.Bound[s] = false
		b.hasVal[s] = false
	}
	copy(b.Parents, lg.parents[i*lg.npos:(i+1)*lg.npos])
	copy(b.ParentRows, lg.rows[i*lg.npos:(i+1)*lg.npos])
}

// CaptureHeads materializes the head facts of the binding just Captured,
// together with their interned rows and duplicate-table hashes — the
// worker-side half of partitioned admission. It must be called exactly
// once after each Capture, on the capturing goroutine, against a frozen
// interner (reads only: IDOf/ValueOf). subst is the EGD null substitution
// to resolve head values through; engines that cannot guarantee a stable
// substitution between capture and merge must not prepare such rules at
// all (the chase disables preparation program-wide when any EGD exists).
//
// Preparation never fails: an entry whose heads cannot fully materialize
// or resolve (unbound head slot, value absent from the interner) is
// marked unprepared and padded, and the merge falls back to the classic
// Restore+emit path for it.
func (lg *BindingLog) CaptureHeads(cr *CompiledRule, b *Binding, subst *NullSubst) {
	baseF, baseR := len(lg.headFacts), len(lg.headRows)
	ok := true
capture:
	for hi := 0; hi < lg.headsN; hi++ {
		h := &cr.Heads[hi]
		args := make([]term.Value, h.arity())
		rowStart := len(lg.headRows)
		for i, isv := range h.IsVar {
			var id uint32
			if !isv {
				args[i] = h.Const[i]
				cid, idOK := b.in.IDOf(h.Const[i])
				if !idOK {
					ok = false
					break capture
				}
				id = cid
			} else {
				s := h.Slot[i]
				if !b.Bound[s] {
					ok = false // the classic path reproduces the unbound-slot error
					break capture
				}
				if subst == nil && !b.hasVal[s] {
					// Matched slot: the interned ID is already in hand.
					id = b.IDs[s]
					args[i] = b.in.ValueOf(id)
				} else {
					v := b.Val(s)
					if subst != nil {
						v = subst.Resolve(v)
					}
					vid, idOK := b.in.IDOf(v)
					if !idOK {
						ok = false // a value no stored fact contains: cannot pre-hash
						break capture
					}
					args[i] = v
					id = vid
				}
			}
			lg.headRows = append(lg.headRows, id)
		}
		lg.headFacts = append(lg.headFacts, ast.Fact{Pred: h.Pred, Args: args})
		lg.headHash = append(lg.headHash, storage.HashRow(lg.headRows[rowStart:]))
	}
	if !ok {
		// Pad the entry so strides stay aligned; the merge replays it
		// through Restore+emit.
		lg.headFacts = lg.headFacts[:baseF]
		lg.headRows = lg.headRows[:baseR]
		lg.headHash = lg.headHash[:baseF]
		for hi := 0; hi < lg.headsN; hi++ {
			lg.headFacts = append(lg.headFacts, ast.Fact{})
			lg.headHash = append(lg.headHash, 0)
		}
		lg.headRows = append(lg.headRows, make([]uint32, lg.headOff[lg.headsN])...)
	}
	lg.headPrep = append(lg.headPrep, ok)
}

// EntryPrepared reports whether entry i's heads were fully materialized
// and resolved by CaptureHeads.
func (lg *BindingLog) EntryPrepared(i int) bool {
	return lg.headsN > 0 && lg.headPrep[i]
}

// PreparedHead returns entry i's hi-th head fact with its interned row
// and duplicate-table hash. Valid only when EntryPrepared(i). The row
// aliases log storage: valid until the next Reset, never mutated by the
// caller.
func (lg *BindingLog) PreparedHead(i, hi int) (ast.Fact, []uint32, uint64) {
	stride := lg.headOff[lg.headsN]
	rows := lg.headRows[i*stride:]
	return lg.headFacts[i*lg.headsN+hi],
		rows[lg.headOff[hi]:lg.headOff[hi+1]:lg.headOff[hi+1]],
		lg.headHash[i*lg.headsN+hi]
}

// ParentsAppend appends entry i's matched parents in ward-first order —
// what core.Policy.Derive expects — straight from the log, without
// restoring a Binding. Mirrors WardFirstParentsAppend.
func (lg *BindingLog) ParentsAppend(cr *CompiledRule, i int, out []*core.FactMeta) []*core.FactMeta {
	parents := lg.parents[i*lg.npos : (i+1)*lg.npos]
	if cr.WardPos >= 0 && cr.WardPos < len(parents) {
		out = append(out, parents[cr.WardPos])
		for k, p := range parents {
			if k != cr.WardPos && p != nil {
				out = append(out, p)
			}
		}
		return out
	}
	for _, p := range parents {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// CanonicalOrder appends to perm[:0] the entry indexes in canonical
// admission order: ascending lexicographic comparison of the matched
// storage rows in body-atom source order. The key depends only on which
// rows matched, never on the join order that enumerated them, so every
// plan choice — static, cost-based, or deliberately worst-case — admits
// the same candidates in the same order, which is what keeps reasoning
// output byte-identical across plans. Entries with equal keys are
// identical bindings, so their relative order is immaterial.
func (lg *BindingLog) CanonicalOrder(perm []int32) []int32 {
	perm = perm[:0]
	for i := 0; i < lg.n; i++ {
		perm = append(perm, int32(i))
	}
	if lg.n < 2 || lg.npos < 2 {
		return perm // ≤1 entry, or a single atom enumerated in row order
	}
	rows, np := lg.rows, lg.npos
	sort.Slice(perm, func(a, b int) bool {
		ra := rows[int(perm[a])*np : int(perm[a])*np+np]
		rb := rows[int(perm[b])*np : int(perm[b])*np+np]
		for k := 0; k < np; k++ {
			if ra[k] != rb[k] {
				return ra[k] < rb[k]
			}
		}
		return false
	})
	return perm
}
