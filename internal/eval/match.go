package eval

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/term"
)

// Binding is the runtime slot environment of one rule evaluation. Slots
// bound by atom matching hold interned term IDs (IDs); slots bound to
// computed values — assignments, aggregate results, existential nulls —
// hold the term.Value itself in an overlay (vals/hasVal) so transient
// intermediate values never pollute the database interner. Values are
// decoded only at expression-evaluation and output boundaries via Val.
// Buffers are reused across matches of the same rule.
type Binding struct {
	IDs   []uint32
	Bound []bool
	// Parents collects the fact metadata matched per positive atom, in Pos
	// order, for the termination strategy.
	Parents []*core.FactMeta
	// ParentRows records the storage row index matched per positive atom
	// (-1 for the pinned atom and unmatched atoms). The tuple identifies a
	// candidate independently of the join order that enumerated it, which
	// is what lets the engines admit candidates in a canonical order no
	// matter which plan produced them.
	ParentRows []int32

	in *storage.Interner // set by the Matcher on each MatchPinned

	hasVal []bool
	vals   []term.Value

	envBuf map[string]term.Value
	// probes holds one reusable lookup buffer per positive body atom;
	// negProbes per negated atom; skArgs for Skolem argument evaluation.
	probes    [][]uint32
	negProbes [][]uint32
	skArgs    []term.Value
	newly     []int
}

// NewBinding allocates a binding for cr.
func NewBinding(cr *CompiledRule) *Binding {
	b := &Binding{
		IDs:        make([]uint32, cr.NSlots),
		Bound:      make([]bool, cr.NSlots),
		hasVal:     make([]bool, cr.NSlots),
		vals:       make([]term.Value, cr.NSlots),
		Parents:    make([]*core.FactMeta, len(cr.Pos)),
		ParentRows: make([]int32, len(cr.Pos)),
		envBuf:     make(map[string]term.Value),
		probes:     make([][]uint32, len(cr.Pos)),
		newly:      make([]int, 0, cr.NSlots),
	}
	for i := range cr.Pos {
		b.probes[i] = make([]uint32, cr.Pos[i].arity())
	}
	b.negProbes = make([][]uint32, len(cr.Neg))
	for i := range cr.Neg {
		b.negProbes[i] = make([]uint32, cr.Neg[i].arity())
	}
	return b
}

// Val decodes the value bound in slot s.
func (b *Binding) Val(s int) term.Value {
	if b.hasVal[s] {
		return b.vals[s]
	}
	return b.in.ValueOf(b.IDs[s])
}

// Set binds slot s to a computed value without interning it.
func (b *Binding) Set(s int, v term.Value) {
	b.vals[s] = v
	b.hasVal[s] = true
	b.Bound[s] = true
}

// bindID binds slot s to an interned ID (atom matching).
func (b *Binding) bindID(s int, id uint32) {
	b.IDs[s] = id
	b.hasVal[s] = false
	b.Bound[s] = true
}

// slotID returns the interned ID of the (bound) slot s; ok is false when
// the slot holds a computed value absent from the interner, i.e. a value
// occurring in no stored fact.
func (b *Binding) slotID(s int) (uint32, bool) {
	if b.hasVal[s] {
		return b.in.IDOf(b.vals[s])
	}
	return b.IDs[s], true
}

// env materializes a variable->value map for expression evaluation,
// restricted to the slots the expression actually reads (deps). A nil
// deps materializes every bound variable — the fallback for callers that
// cannot enumerate their reads. On wide rules the restriction is what
// keeps condition evaluation O(|deps|) instead of O(|vars|) per match.
func (b *Binding) env(cr *CompiledRule, deps []int) map[string]term.Value {
	clear(b.envBuf)
	if deps == nil {
		//vadalint:ordered keyed writes: each variable maps to its own slot's value; Val is a pure read
		for v, s := range cr.VarSlot {
			if b.Bound[s] {
				b.envBuf[v] = b.Val(s)
			}
		}
		return b.envBuf
	}
	for _, s := range deps {
		if b.Bound[s] {
			b.envBuf[cr.SlotVar[s]] = b.Val(s)
		}
	}
	return b.envBuf
}

// Env materializes the variable environment for expression evaluation,
// restricted to the slots in deps (nil = every bound variable). The map is
// a buffer owned by the binding, reused across calls: evaluate before the
// next Env call and do not retain it.
func (b *Binding) Env(cr *CompiledRule, deps []int) map[string]term.Value {
	return b.env(cr, deps)
}

// Matcher runs compiled rules against a database. It owns no mutable state
// beyond per-rule reusable bindings, so one Matcher per engine suffices —
// and in Snapshot mode several Matchers (one per worker goroutine) can
// probe the same frozen database concurrently.
type Matcher struct {
	DB *storage.Database
	// OnIndexProbe, when set, is invoked with the predicate name on each
	// index lookup (buffer-manager touch hook).
	OnIndexProbe func(pred string)
	// Snapshot makes every probe strictly read-only against a database
	// frozen with Database.Freeze: lookups neither build nor extend
	// dynamic indexes and the interner is never written, so any number of
	// Snapshot matchers may run concurrently over one database. Masks
	// without a covering index fall back to scans and are reported through
	// OnIndexMiss for promotion at the next batch boundary.
	Snapshot bool
	// OnIndexMiss, when set, is invoked with (predicate, mask) whenever a
	// Snapshot probe had to scan because no current index covers the mask.
	OnIndexMiss func(pred string, mask uint32)
}

// lookupRows dispatches a probe to the mutating slot-machine lookup or,
// in Snapshot mode, its read-only counterpart.
func (mt *Matcher) lookupRows(rel *storage.Relation, pred string, mask uint32, probe []uint32) []int32 {
	if !mt.Snapshot {
		//vadalint:frozenwrite guarded by !mt.Snapshot: workers always take the SnapshotLookupIDs branch
		return rel.LookupIDs(mask, probe)
	}
	rows, indexed := rel.SnapshotLookupIDs(mask, probe)
	if !indexed && mt.OnIndexMiss != nil {
		mt.OnIndexMiss(pred, mask)
	}
	return rows
}

// countRows is lookupRows' counting counterpart (negated atoms): neither
// path materializes a row slice beyond the index bucket.
func (mt *Matcher) countRows(rel *storage.Relation, pred string, mask uint32, probe []uint32) int {
	if !mt.Snapshot {
		//vadalint:frozenwrite guarded by !mt.Snapshot: workers always take the SnapshotLookupCountIDs branch
		return rel.LookupCountIDs(mask, probe)
	}
	n, indexed := rel.SnapshotLookupCountIDs(mask, probe)
	if !indexed && mt.OnIndexMiss != nil {
		mt.OnIndexMiss(pred, mask)
	}
	return n
}

// unifyPinned binds the pinned atom against fact; reports success. ro
// (Snapshot mode) forbids interner writes: pinned facts are stored facts,
// so their arguments are already interned and IDOf suffices.
func unifyPinned(b *Binding, a *CAtom, m *core.FactMeta, ro bool) bool {
	f := m.Fact
	if len(f.Args) != a.arity() {
		return false
	}
	for i, isv := range a.IsVar {
		if !isv {
			if f.Args[i] != a.Const[i] {
				return false
			}
			continue
		}
		var id uint32
		if ro {
			var ok bool
			if id, ok = b.in.IDOf(f.Args[i]); !ok {
				return false // not a stored fact: cannot match read-only
			}
		} else {
			// Pinned facts are (in practice) stored facts, so interning here
			// is a lookup; it also keeps exotic callers with foreign metas
			// decodable.
			//vadalint:frozenwrite guarded by ro: Snapshot callers pass ro=true and take the IDOf branch
			id = b.in.Intern(f.Args[i])
		}
		s := a.Slot[i]
		if b.Bound[s] {
			sid, ok := b.slotID(s)
			if !ok || sid != id {
				return false
			}
		} else {
			b.bindID(s, id)
		}
	}
	return true
}

// MatchPinned enumerates all matches of cr's positive body where Pos
// [pinned] is bound to pinnedMeta, invoking emit for each complete
// binding. emit must not retain b (copy what it needs). Returning an
// error from emit aborts the enumeration.
//
// When pinned == len(cr.Pos) the rule is evaluated without a pin (naive
// evaluation over the whole database).
func (mt *Matcher) MatchPinned(cr *CompiledRule, pinned int, pinnedMeta *core.FactMeta, b *Binding, emit func(b *Binding) error) error {
	return mt.MatchPinnedSteps(cr, pinned, pinnedMeta, cr.schedules[pinned], b, emit)
}

// MatchPinnedSteps is MatchPinned running an explicit schedule instead
// of the compiled static one — the seam through which the engines feed
// planner-derived schedules. steps must cover the same assignments,
// conditions and non-pinned atoms as cr.Schedule(pinned) (only their
// order may differ); ScheduleFor produces exactly such schedules.
func (mt *Matcher) MatchPinnedSteps(cr *CompiledRule, pinned int, pinnedMeta *core.FactMeta, steps []Step, b *Binding, emit func(b *Binding) error) error {
	b.in = mt.DB.Interner()
	for i := range b.Bound {
		b.Bound[i] = false
		b.hasVal[i] = false
	}
	for i := range b.Parents {
		b.Parents[i] = nil
		b.ParentRows[i] = -1
	}
	if pinned < len(cr.Pos) {
		if !unifyPinned(b, &cr.Pos[pinned], pinnedMeta, mt.Snapshot) {
			return nil
		}
		b.Parents[pinned] = pinnedMeta
	}
	return mt.runSteps(cr, steps, 0, b, emit)
}

// Replay runs steps (assignments, conditions — no matches) over an
// already populated binding, then the negation/dom tail, then emit.
// It is the member half of CSE body sharing: after a shared body match
// is restored into b, Replay applies the member rule's private
// PostMatchSteps and hands complete bindings to emit.
func (mt *Matcher) Replay(cr *CompiledRule, steps []Step, b *Binding, emit func(b *Binding) error) error {
	b.in = mt.DB.Interner()
	return mt.runSteps(cr, steps, 0, b, emit)
}

func (mt *Matcher) runSteps(cr *CompiledRule, steps []Step, si int, b *Binding, emit func(b *Binding) error) error {
	for ; si < len(steps); si++ {
		st := steps[si]
		switch st.Kind {
		case StepAssign:
			ok, err := mt.evalAssign(cr, &cr.Assigns[st.Index], b)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		case StepCond:
			c := &cr.Conds[st.Index]
			if c.Fast {
				if !c.EvalFast(b) {
					return nil
				}
				continue
			}
			ok, err := ast.EvalCondition(c.Cond, b.env(cr, c.Deps))
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		case StepMatch:
			return mt.matchAtom(cr, steps, si, st.Index, b, emit)
		}
	}
	// All steps done: negation, dom guard, then emit.
	for i := range cr.Neg {
		cnt, err := mt.negCount(&cr.Neg[i], b, b.negProbes[i])
		if err != nil {
			return err
		}
		if cnt > 0 {
			return nil
		}
	}
	for _, s := range cr.DomSlots {
		if !b.Bound[s] {
			return nil
		}
		if b.hasVal[s] {
			if !mt.DB.InActiveDomain(b.vals[s]) {
				return nil
			}
		} else if !mt.DB.InActiveDomainID(b.IDs[s]) {
			return nil
		}
	}
	return emit(b)
}

// matchAtom enumerates the facts matching Pos[ai] under the current
// binding using the dynamic index, then recurses into the remaining
// steps. Probes and candidate verification work entirely on interned
// IDs; no probe allocates or renders values.
func (mt *Matcher) matchAtom(cr *CompiledRule, steps []Step, si int, ai int, b *Binding, emit func(b *Binding) error) error {
	a := &cr.Pos[ai]
	rel := mt.DB.Lookup(a.Pred)
	if rel == nil {
		return nil
	}
	if mt.OnIndexProbe != nil {
		mt.OnIndexProbe(a.Pred)
	}
	probe := b.probes[ai]
	var mask uint32
	for i, isv := range a.IsVar {
		if !isv {
			id, ok := b.in.IDOf(a.Const[i])
			if !ok {
				return nil // constant occurs in no stored fact
			}
			mask |= 1 << uint(i)
			probe[i] = id
		} else if b.Bound[a.Slot[i]] {
			id, ok := b.slotID(a.Slot[i])
			if !ok {
				return nil // bound value occurs in no stored fact
			}
			mask |= 1 << uint(i)
			probe[i] = id
		}
	}
	rows := mt.lookupRows(rel, a.Pred, mask, probe)
	markNewly := len(b.newly)
	for _, rowIdx := range rows {
		row := rel.Row(int(rowIdx))
		ok := true
		for i, isv := range a.IsVar {
			if !isv || mask&(1<<uint(i)) != 0 {
				continue // constants and pre-bound positions guaranteed by index
			}
			if row[i] == 0 {
				// Arity-padding ID (restrided relation): the fact has no
				// value at this position, so it cannot match the atom.
				ok = false
				break
			}
			s := a.Slot[i]
			if b.Bound[s] {
				sid, sok := b.slotID(s)
				if !sok || sid != row[i] { // repeated variable within atom
					ok = false
					break
				}
			} else {
				b.bindID(s, row[i])
				b.newly = append(b.newly, s)
			}
		}
		if ok {
			b.Parents[ai] = rel.At(int(rowIdx))
			b.ParentRows[ai] = rowIdx
			if err := mt.runSteps(cr, steps, si+1, b, emit); err != nil {
				return err
			}
			b.Parents[ai] = nil
			b.ParentRows[ai] = -1
		}
		// Unbind this row's bindings (deeper levels restored theirs on
		// return, so everything past markNewly belongs to this level).
		for _, s := range b.newly[markNewly:] {
			b.Bound[s] = false
		}
		b.newly = b.newly[:markNewly]
	}
	return nil
}

// negCount returns how many stored facts match the (fully bound) negated
// atom.
func (mt *Matcher) negCount(a *CAtom, b *Binding, probe []uint32) (int, error) {
	rel := mt.DB.Lookup(a.Pred)
	if rel == nil {
		return 0, nil
	}
	var mask uint32
	for i, isv := range a.IsVar {
		if !isv {
			id, ok := b.in.IDOf(a.Const[i])
			if !ok {
				return 0, nil // constant occurs in no stored fact
			}
			mask |= 1 << uint(i)
			probe[i] = id
			continue
		}
		s := a.Slot[i]
		if !b.Bound[s] {
			// Anonymous variable in a negated atom: wildcard position.
			continue
		}
		id, ok := b.slotID(s)
		if !ok {
			return 0, nil
		}
		mask |= 1 << uint(i)
		probe[i] = id
	}
	return mt.countRows(rel, a.Pred, mask, probe), nil
}

// evalAssign computes one assignment; Skolem calls mint deterministic
// nulls. It reports false (no error) when a type error should simply
// filter the binding out — we treat evaluation errors as match failures
// only for conditions; assignments propagate errors.
func (mt *Matcher) evalAssign(cr *CompiledRule, a *CAssign, b *Binding) (bool, error) {
	if a.IsSkolem {
		b.skArgs = b.skArgs[:0]
		env := b.env(cr, a.Deps)
		for _, e := range a.SkArgs {
			v, err := e.Eval(env)
			if err != nil {
				return false, err
			}
			b.skArgs = append(b.skArgs, v)
		}
		//vadalint:frozenwrite skolem-assign rules are not parSafe: the chase runs them on the serial path only
		b.Set(a.Slot, mt.DB.Nulls.Skolem(a.SkName, b.skArgs...))
		return true, nil
	}
	v, err := a.Expr.Eval(b.env(cr, a.Deps))
	if err != nil {
		return false, err
	}
	b.Set(a.Slot, v)
	return true, nil
}

// InstantiateExistentials fills the existential slots of b with the rule's
// deterministic Skolem nulls.
func (mt *Matcher) InstantiateExistentials(cr *CompiledRule, b *Binding) {
	for _, ex := range cr.Exists {
		b.skArgs = b.skArgs[:0]
		for _, s := range ex.ArgSlots {
			b.skArgs = append(b.skArgs, b.Val(s))
		}
		//vadalint:frozenwrite runs on the serial emit/admit path, after workers have returned their bindings
		b.Set(ex.Slot, mt.DB.Nulls.Skolem(ex.SkName, b.skArgs...))
	}
}

// HeadFacts materializes the head atoms of cr under b (after existential
// instantiation), applying the null substitution subst when non-nil.
// This is the decode boundary: interned slot IDs become term.Values.
func HeadFacts(cr *CompiledRule, b *Binding, subst *NullSubst) ([]ast.Fact, error) {
	return HeadFactsAppend(cr, b, subst, make([]ast.Fact, 0, len(cr.Heads)))
}

// HeadFactsAppend is HeadFacts appending into a caller-owned buffer, so
// engines reuse one container slice across emissions. The per-head Args
// slices are still freshly allocated — stored facts retain them.
func HeadFactsAppend(cr *CompiledRule, b *Binding, subst *NullSubst, out []ast.Fact) ([]ast.Fact, error) {
	for hi := range cr.Heads {
		h := &cr.Heads[hi]
		args := make([]term.Value, h.arity())
		for i, isv := range h.IsVar {
			if !isv {
				args[i] = h.Const[i]
				continue
			}
			s := h.Slot[i]
			if !b.Bound[s] {
				return nil, fmt.Errorf("eval: head variable slot %d unbound in rule %d", s, cr.Rule.ID)
			}
			v := b.Val(s)
			if subst != nil {
				v = subst.Resolve(v)
			}
			args[i] = v
		}
		out = append(out, ast.Fact{Pred: h.Pred, Args: args})
	}
	return out, nil
}

// WardFirstParents orders the matched parents so that the ward's fact
// comes first, as core.Strategy.Derive expects for warded rules.
func WardFirstParents(cr *CompiledRule, b *Binding) []*core.FactMeta {
	return WardFirstParentsAppend(cr, b, make([]*core.FactMeta, 0, len(b.Parents)))
}

// WardFirstParentsAppend is WardFirstParents appending into a caller-owned
// buffer reused across emissions; safe because termination policies may
// retain parent facts but never the slice itself (see core.Policy).
func WardFirstParentsAppend(cr *CompiledRule, b *Binding, out []*core.FactMeta) []*core.FactMeta {
	if cr.WardPos >= 0 && cr.WardPos < len(b.Parents) {
		out = append(out, b.Parents[cr.WardPos])
		for i, p := range b.Parents {
			if i != cr.WardPos && p != nil {
				out = append(out, p)
			}
		}
		return out
	}
	for _, p := range b.Parents {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}
