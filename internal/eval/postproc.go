package eval

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/term"
)

// ApplyPost implements the post-processing directives of paper Sec. 5
// (Annotations → Post-processing Directives) for one output predicate:
//
//	certain        — drop facts with labelled nulls (certain answers);
//	orderBy n      — sort by column n (1-based);
//	limit n        — keep the first n facts;
//	keepMax n      — per group (all columns except n), keep only the row
//	                 with the maximal value in column n: the SQL-style
//	                 final aggregate over the monotonic intermediates;
//	keepMin n      — dually, the minimal row.
//
// The EGD null substitution is resolved first when non-nil. The input
// slice is modified in place and returned.
func ApplyPost(facts []ast.Fact, posts []ast.PostDirective, pred string, subst *NullSubst) []ast.Fact {
	if subst != nil && !subst.Empty() {
		for i, f := range facts {
			args := make([]term.Value, len(f.Args))
			for j, v := range f.Args {
				args[j] = subst.Resolve(v)
			}
			facts[i] = ast.Fact{Pred: f.Pred, Args: args}
		}
		facts = dedupFacts(facts)
	}
	certain := false
	orderBy, limit := -1, -1
	keepMax, keepMin := -1, -1
	for _, d := range posts {
		if d.Pred != pred {
			continue
		}
		switch d.Kind {
		case "certain":
			certain = true
		case "orderBy":
			orderBy = d.Arg - 1
		case "limit":
			limit = d.Arg
		case "keepMax":
			keepMax = d.Arg - 1
		case "keepMin":
			keepMin = d.Arg - 1
		}
	}
	if certain {
		kept := facts[:0]
		for _, f := range facts {
			if f.IsGround() {
				kept = append(kept, f)
			}
		}
		facts = kept
	}
	if keepMax >= 0 {
		facts = keepExtremal(facts, keepMax, true)
	}
	if keepMin >= 0 {
		facts = keepExtremal(facts, keepMin, false)
	}
	if orderBy >= 0 {
		sort.SliceStable(facts, func(i, j int) bool {
			if orderBy < len(facts[i].Args) && orderBy < len(facts[j].Args) {
				return term.Compare(facts[i].Args[orderBy], facts[j].Args[orderBy]) < 0
			}
			return false
		})
	} else {
		sort.Slice(facts, func(i, j int) bool { return facts[i].Key() < facts[j].Key() })
	}
	if limit >= 0 && len(facts) > limit {
		facts = facts[:limit]
	}
	return facts
}

// keepExtremal groups facts by every column except col and keeps the row
// with the maximal (or minimal) value at col.
func keepExtremal(facts []ast.Fact, col int, max bool) []ast.Fact {
	best := make(map[string]int, len(facts))
	for i, f := range facts {
		if col >= len(f.Args) {
			continue
		}
		key := groupKey(f, col)
		j, ok := best[key]
		if !ok {
			best[key] = i
			continue
		}
		cmp := term.Compare(f.Args[col], facts[j].Args[col])
		if (max && cmp > 0) || (!max && cmp < 0) {
			best[key] = i
		}
	}
	kept := make([]ast.Fact, 0, len(best))
	for i, f := range facts {
		if col >= len(f.Args) {
			kept = append(kept, f)
			continue
		}
		if best[groupKey(f, col)] == i {
			kept = append(kept, f)
		}
	}
	return kept
}

func groupKey(f ast.Fact, skip int) string {
	g := ast.Fact{Pred: f.Pred, Args: make([]term.Value, 0, len(f.Args)-1)}
	for i, a := range f.Args {
		if i != skip {
			g.Args = append(g.Args, a)
		}
	}
	return g.Key()
}

func dedupFacts(facts []ast.Fact) []ast.Fact {
	seen := make(map[string]bool, len(facts))
	out := facts[:0]
	for _, f := range facts {
		k := f.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}
	return out
}
