// Package eval compiles Vadalog rules into slot-based executable plans and
// implements body matching against the indexed store (the slot machine
// join of paper Sec. 4), head instantiation with deterministic Skolem
// nulls, monotonic aggregation state, and the null substitution used for
// equality-generating dependencies.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/term"
)

// CAtom is a body or head atom compiled to slots.
type CAtom struct {
	Pred  string
	IsVar []bool
	Slot  []int        // slot per position (valid when IsVar)
	Const []term.Value // constant per position (valid when !IsVar)
	// BodyIdx is the index of this atom in Rule.Body (body atoms only).
	BodyIdx int
}

func (a *CAtom) arity() int { return len(a.IsVar) }

// Arity returns the number of argument positions of the compiled atom.
func (a *CAtom) Arity() int { return len(a.IsVar) }

// CAssign is a compiled assignment Var = expr; Skolem calls are flagged so
// the engine can route them through the null factory.
type CAssign struct {
	Slot     int
	Expr     ast.Expr
	Deps     []int // slots read by Expr
	IsSkolem bool
	SkName   string
	SkArgs   []ast.Expr
}

// CCond is a compiled condition with its slot dependencies. Conditions
// whose sides are a plain variable or constant take a fast path that
// avoids materializing an environment map.
type CCond struct {
	Cond ast.Condition
	Deps []int

	Fast           bool
	LSlot, RSlot   int // slot index, or -1 when the side is a constant
	LConst, RConst term.Value
}

// compileFast recognizes var/const comparison sides.
func (c *CCond) compileFast(varSlot map[string]int) {
	side := func(e ast.Expr) (int, term.Value, bool) {
		switch ex := e.(type) {
		case ast.VarExpr:
			if s, ok := varSlot[ex.Name]; ok {
				return s, term.Value{}, true
			}
		case ast.ConstExpr:
			return -1, ex.Val, true
		}
		return 0, term.Value{}, false
	}
	ls, lc, lok := side(c.Cond.L)
	rs, rc, rok := side(c.Cond.R)
	if lok && rok {
		c.Fast = true
		c.LSlot, c.LConst = ls, lc
		c.RSlot, c.RConst = rs, rc
	}
}

// EvalFast evaluates a fast-path condition against the binding's slots,
// decoding interned IDs to values only for the two sides involved.
func (c *CCond) EvalFast(b *Binding) bool {
	l, r := c.LConst, c.RConst
	if c.LSlot >= 0 {
		l = b.Val(c.LSlot)
	}
	if c.RSlot >= 0 {
		r = b.Val(c.RSlot)
	}
	if l.IsNull() || r.IsNull() {
		switch c.Cond.Op {
		case ast.CmpEq:
			return l == r
		case ast.CmpNeq:
			return l != r
		default:
			return false // ordering undefined on labelled nulls
		}
	}
	switch c.Cond.Op {
	case ast.CmpEq:
		return term.Equal(l, r)
	case ast.CmpNeq:
		return !term.Equal(l, r)
	case ast.CmpLt:
		return term.Compare(l, r) < 0
	case ast.CmpLe:
		return term.Compare(l, r) <= 0
	case ast.CmpGt:
		return term.Compare(l, r) > 0
	case ast.CmpGe:
		return term.Compare(l, r) >= 0
	}
	return false
}

// CAgg is a compiled monotonic aggregation. ArgSlot is the fast path for
// the common case where the aggregated expression is a plain variable.
type CAgg struct {
	ResultSlot   int
	Func         string
	Arg          ast.Expr
	ArgSlot      int // ≥0 when Arg is a plain variable
	ArgDeps      []int
	ContribSlots []int
	GroupSlots   []int

	// SkipSafe reports that a non-improving Update can skip emission
	// entirely: the rule mints no existential nulls and every condition
	// reading the aggregate result depends only on the result and the
	// group-by slots, so a non-improving match evaluates exactly like the
	// improving one that already emitted. When false the engines must run
	// the full emission path even for non-improving matches (a condition
	// over another body variable may pass now although it failed then).
	SkipSafe bool
}

// Step is one element of the execution schedule produced at compile time:
// match an atom, evaluate an assignment, or test a condition.
type Step struct {
	Kind  StepKind
	Index int // atom index (Pos), assignment index, or condition index
}

// StepKind discriminates schedule steps.
type StepKind int

// Schedule step kinds.
const (
	StepMatch StepKind = iota
	StepAssign
	StepCond
)

// ExistSlot describes how one existential head variable is instantiated:
// a deterministic Skolem application over the rule's universal variables.
type ExistSlot struct {
	Var      string
	Slot     int
	SkName   string
	ArgSlots []int
}

// CompiledRule is an executable plan for one rule.
type CompiledRule struct {
	Rule *ast.Rule
	Info *analysis.RuleInfo

	VarSlot map[string]int
	// SlotVar is the inverse of VarSlot: the variable name per slot, used
	// to materialize dependency-restricted expression environments without
	// walking the whole variable map.
	SlotVar []string
	NSlots  int

	Pos []CAtom // positive, non-dom body atoms in source order
	Neg []CAtom

	// WardPos is the index in Pos of the ward atom for warded rules, else -1.
	WardPos int

	Assigns []CAssign
	Conds   []CCond
	Agg     *CAgg

	Heads  []CAtom
	Exists []ExistSlot

	// DomSlots lists the body-variable slots that dom(*) restricts to the
	// active domain.
	DomSlots []int

	// schedules[i] is the execution schedule when Pos[i] is the pinned
	// (delta) atom; schedules[len(Pos)] is the schedule with no pin
	// (full evaluation), used by naive engines.
	schedules [][]Step
}

// Compile translates rule (with its analysis info) into an executable plan.
func Compile(rule *ast.Rule, info *analysis.RuleInfo) (*CompiledRule, error) {
	cr := &CompiledRule{Rule: rule, Info: info, VarSlot: make(map[string]int), WardPos: -1}
	slot := func(v string) int {
		s, ok := cr.VarSlot[v]
		if !ok {
			s = cr.NSlots
			cr.VarSlot[v] = s
			cr.SlotVar = append(cr.SlotVar, v)
			cr.NSlots++
		}
		return s
	}

	compileAtom := func(a ast.Atom, bodyIdx int) CAtom {
		ca := CAtom{Pred: a.Pred, BodyIdx: bodyIdx,
			IsVar: make([]bool, len(a.Args)),
			Slot:  make([]int, len(a.Args)),
			Const: make([]term.Value, len(a.Args))}
		for i, arg := range a.Args {
			if arg.IsVar && arg.Var != "_" {
				ca.IsVar[i] = true
				ca.Slot[i] = slot(arg.Var)
			} else if arg.IsVar { // anonymous: give it a throwaway slot
				ca.IsVar[i] = true
				ca.Slot[i] = slot(fmt.Sprintf("_anon%d_%d", bodyIdx, i))
			} else {
				ca.Const[i] = arg.Const
			}
		}
		return ca
	}

	for bi, a := range rule.Body {
		if a.Pred == ast.DomPred {
			continue
		}
		if a.Negated {
			continue // compiled after positives so slots for shared vars exist
		}
		ca := compileAtom(a, bi)
		if info.WardIdx == bi {
			cr.WardPos = len(cr.Pos)
		}
		cr.Pos = append(cr.Pos, ca)
	}
	for bi, a := range rule.Body {
		if a.Negated {
			cr.Neg = append(cr.Neg, compileAtom(a, bi))
		}
	}

	slotsOf := func(vars []string) []int {
		out := make([]int, 0, len(vars))
		for _, v := range vars {
			out = append(out, slot(v))
		}
		return out
	}

	for _, asg := range rule.Assignments {
		ca := CAssign{Slot: slot(asg.Var), Expr: asg.Expr, Deps: slotsOf(asg.Expr.Vars(nil))}
		if fe, ok := asg.Expr.(ast.FuncExpr); ok && fe.IsSkolem() {
			ca.IsSkolem = true
			ca.SkName = fe.Name
			ca.SkArgs = fe.Args
		}
		cr.Assigns = append(cr.Assigns, ca)
	}
	for _, c := range rule.Conds {
		cc := CCond{Cond: c, Deps: slotsOf(c.L.Vars(c.R.Vars(nil)))}
		cc.compileFast(cr.VarSlot)
		cr.Conds = append(cr.Conds, cc)
	}
	if rule.Aggregate != nil {
		ag := rule.Aggregate
		ca := &CAgg{
			ResultSlot:   slot(ag.Result),
			Func:         ag.Func,
			Arg:          ag.Arg,
			ArgSlot:      -1,
			ArgDeps:      slotsOf(ag.Arg.Vars(nil)),
			ContribSlots: slotsOf(ag.Contributors),
		}
		if ve, ok := ag.Arg.(ast.VarExpr); ok {
			ca.ArgSlot = slot(ve.Name)
		}
		// Group-by arguments: bound head variables other than the result.
		bound := rule.BoundVars()
		seen := map[string]bool{ag.Result: true}
		for _, v := range rule.HeadVars() {
			if bound[v] && !seen[v] {
				seen[v] = true
				ca.GroupSlots = append(ca.GroupSlots, slot(v))
			}
		}
		ca.SkipSafe = len(rule.Existentials()) == 0
		if ca.SkipSafe {
			safe := map[int]bool{ca.ResultSlot: true}
			for _, s := range ca.GroupSlots {
				safe[s] = true
			}
			for _, cc := range cr.Conds {
				readsAgg := false
				for _, d := range cc.Deps {
					if d == ca.ResultSlot {
						readsAgg = true
					}
				}
				if !readsAgg {
					continue // evaluated in-schedule, before aggregation
				}
				for _, d := range cc.Deps {
					if !safe[d] {
						ca.SkipSafe = false
					}
				}
			}
		}
		cr.Agg = ca
	}

	// Existential head variables: deterministic Skolem over the rule's
	// universal (body) variables, named after the rule's Skolem base so
	// that rewritten/split rules can share null identities.
	exVars := rule.Existentials()
	if len(exVars) > 0 {
		bodyVars := rule.BodyVars()
		sort.Strings(bodyVars)
		argSlots := slotsOf(bodyVars)
		base := rule.SkolemBase()
		for _, v := range exVars {
			cr.Exists = append(cr.Exists, ExistSlot{
				Var:      v,
				Slot:     slot(v),
				SkName:   "#" + base + ":" + v,
				ArgSlots: argSlots,
			})
		}
	}

	for _, h := range rule.Heads {
		cr.Heads = append(cr.Heads, compileAtom(h, -1))
	}

	if rule.UsesDom {
		seen := make(map[int]bool)
		for _, a := range cr.Pos {
			for i, isv := range a.IsVar {
				if isv && !seen[a.Slot[i]] {
					seen[a.Slot[i]] = true
					cr.DomSlots = append(cr.DomSlots, a.Slot[i])
				}
			}
		}
	}
	for _, v := range rule.DomVars {
		if s, ok := cr.VarSlot[v]; ok {
			cr.DomSlots = append(cr.DomSlots, s)
		}
	}

	cr.buildSchedules()
	return cr, nil
}

// buildSchedules precomputes, for each pinned atom (and for the unpinned
// case), a greedy execution order: assignments and conditions run as soon
// as their dependencies are bound (selection push-down), and the next atom
// to match is the one with the most already-bound positions (join
// reordering) — the paper's execution-optimizer behaviour.
func (cr *CompiledRule) buildSchedules() {
	n := len(cr.Pos)
	cr.schedules = make([][]Step, n+1)
	for pinned := 0; pinned <= n; pinned++ {
		cr.schedules[pinned] = cr.buildSchedule(pinned)
	}
}

func (cr *CompiledRule) buildSchedule(pinned int) []Step {
	return cr.scheduleWith(pinned, nil)
}

// Schedule returns the compiled static schedule for the given pinned
// atom (len(Pos) selects the unpinned schedule). The slice is shared;
// callers must not modify it.
func (cr *CompiledRule) Schedule(pinned int) []Step { return cr.schedules[pinned] }

// ScheduleFor builds an execution schedule that matches the positive
// body atoms in the given order (the non-pinned atom indexes, each
// exactly once), interleaving assignments and conditions as soon as
// their dependencies are bound — the same selection push-down the static
// schedule applies. It is the seam the cost-based planner emits plans
// through: the planner chooses only the join order, the compiler owns
// step assembly.
func (cr *CompiledRule) ScheduleFor(pinned int, order []int) []Step {
	return cr.scheduleWith(pinned, order)
}

// scheduleWith assembles a schedule visiting atoms in the explicit order
// when non-nil, else by the static most-bound-positions greedy.
func (cr *CompiledRule) scheduleWith(pinned int, order []int) []Step {
	n := len(cr.Pos)
	bound := make([]bool, cr.NSlots)
	matched := make([]bool, n)
	asgDone := make([]bool, len(cr.Assigns))
	condDone := make([]bool, len(cr.Conds))
	var steps []Step

	bindAtom := func(i int) {
		for p, isv := range cr.Pos[i].IsVar {
			if isv {
				bound[cr.Pos[i].Slot[p]] = true
			}
		}
	}
	allBound := func(deps []int) bool {
		for _, s := range deps {
			if !bound[s] {
				return false
			}
		}
		return true
	}
	aggSlot := -1
	if cr.Agg != nil {
		aggSlot = cr.Agg.ResultSlot
	}
	flush := func() {
		for progress := true; progress; {
			progress = false
			for i, a := range cr.Assigns {
				if !asgDone[i] && allBound(a.Deps) {
					asgDone[i] = true
					bound[a.Slot] = true
					steps = append(steps, Step{StepAssign, i})
					progress = true
				}
			}
			for i, c := range cr.Conds {
				if condDone[i] || !allBound(c.Deps) {
					continue
				}
				// Conditions reading the aggregate result wait for the
				// aggregation step performed by the engine after matching.
				readsAgg := false
				if aggSlot >= 0 {
					for _, d := range c.Deps {
						if d == aggSlot {
							readsAgg = true
						}
					}
				}
				if readsAgg {
					continue
				}
				condDone[i] = true
				steps = append(steps, Step{StepCond, i})
				progress = true
			}
		}
	}

	pick := func() int {
		if order != nil {
			for _, i := range order {
				if i >= 0 && i < n && !matched[i] {
					return i
				}
			}
			// An incomplete explicit order falls through to the greedy
			// picker so the schedule always covers every atom.
		}
		best, bestScore := -1, -1
		for i := range cr.Pos {
			if matched[i] {
				continue
			}
			score := 0
			for p, isv := range cr.Pos[i].IsVar {
				if !isv || bound[cr.Pos[i].Slot[p]] {
					score++
				}
			}
			// Strict > breaks ties toward the earliest source-order atom —
			// the documented fallback order the planner is measured against.
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		return best
	}

	if pinned < n {
		matched[pinned] = true
		bindAtom(pinned)
	}
	flush()
	for {
		best := pick()
		if best == -1 {
			break
		}
		matched[best] = true
		steps = append(steps, Step{StepMatch, best})
		bindAtom(best)
		flush()
	}
	return steps
}

// NBodySlots returns the number of slots occupied by the positive body
// atoms. Slots are allocated in first-occurrence order over the body
// (positives first), so body slots are exactly [0, NBodySlots()) and two
// rules with identical positive bodies number them identically — the
// canonical renaming that makes cross-rule body sharing sound.
func (cr *CompiledRule) NBodySlots() int {
	nb := 0
	for _, a := range cr.Pos {
		for p, isv := range a.IsVar {
			if isv && a.Slot[p] >= nb {
				nb = a.Slot[p] + 1
			}
		}
	}
	return nb
}

// BodySignature renders the positive body under canonical slot naming,
// and reports whether the rule is eligible for common-subexpression
// sharing of that body. Rules sharing an equal, eligible signature can
// be matched through one shared body cursor per delta and replay only
// their private assignments, conditions and heads per match (the CSE of
// the paper's execution optimizer). Ineligible are rules whose body
// match itself is not a pure function of the frozen store: negated
// atoms and dom() restrictions (their evaluation time matters when the
// database grows mid-batch), Skolem-minting assignments (null identity
// depends on firing order), and assignments feeding slots matched by
// body atoms (the body then depends on assignment interleaving).
func (cr *CompiledRule) BodySignature() (string, bool) {
	if len(cr.Pos) < 2 || len(cr.Neg) > 0 || len(cr.DomSlots) > 0 {
		return "", false
	}
	inBody := make(map[int]bool)
	for _, a := range cr.Pos {
		for p, isv := range a.IsVar {
			if isv {
				inBody[a.Slot[p]] = true
			}
		}
	}
	for _, asg := range cr.Assigns {
		if asg.IsSkolem || inBody[asg.Slot] {
			return "", false
		}
	}
	var sb strings.Builder
	for _, a := range cr.Pos {
		sb.WriteString(a.Pred)
		sb.WriteByte('(')
		for p := range a.IsVar {
			if p > 0 {
				sb.WriteByte(',')
			}
			if a.IsVar[p] {
				fmt.Fprintf(&sb, "s%d", a.Slot[p])
			} else {
				fmt.Fprintf(&sb, "k%d:%s", a.Const[p].Kind(), a.Const[p].String())
			}
		}
		sb.WriteString(")|")
	}
	return sb.String(), true
}

// BodyMatcher compiles a match-only twin of the rule: same positive
// body atoms and slot numbering, no assignments, conditions, negation,
// aggregation or heads. Engines use it as the shared cursor for a CSE
// group — one enumeration of the body feeds every member rule, which
// then replays its private PostMatchSteps per captured match.
func (cr *CompiledRule) BodyMatcher() *CompiledRule {
	nb := cr.NBodySlots()
	m := &CompiledRule{
		Rule:    cr.Rule,
		Info:    cr.Info,
		VarSlot: cr.VarSlot,
		SlotVar: cr.SlotVar[:nb],
		NSlots:  nb,
		Pos:     cr.Pos,
		WardPos: -1,
	}
	m.buildSchedules()
	return m
}

// PostMatchSteps returns the assignment and condition steps a CSE group
// member replays after its shared body matched: every assignment and
// condition, in dependency order, with all body slots bound (conditions
// reading the aggregate result stay excluded — the engine's aggregation
// path runs them, exactly as with in-schedule matching).
func (cr *CompiledRule) PostMatchSteps() []Step {
	bound := make([]bool, cr.NSlots)
	for _, a := range cr.Pos {
		for p, isv := range a.IsVar {
			if isv {
				bound[a.Slot[p]] = true
			}
		}
	}
	aggSlot := -1
	if cr.Agg != nil {
		aggSlot = cr.Agg.ResultSlot
	}
	asgDone := make([]bool, len(cr.Assigns))
	condDone := make([]bool, len(cr.Conds))
	steps := []Step{}
	for progress := true; progress; {
		progress = false
		for i, a := range cr.Assigns {
			ok := !asgDone[i]
			for _, s := range a.Deps {
				ok = ok && bound[s]
			}
			if ok {
				asgDone[i] = true
				bound[a.Slot] = true
				steps = append(steps, Step{StepAssign, i})
				progress = true
			}
		}
		for i, c := range cr.Conds {
			ok := !condDone[i]
			for _, s := range c.Deps {
				if !bound[s] || s == aggSlot {
					ok = false
				}
			}
			if ok {
				condDone[i] = true
				steps = append(steps, Step{StepCond, i})
				progress = true
			}
		}
	}
	return steps
}

// PosIndexesByPred returns the indexes of positive body atoms with the
// given predicate (used by engines to pin deltas).
func (cr *CompiledRule) PosIndexesByPred(pred string) []int {
	var out []int
	for i, a := range cr.Pos {
		if a.Pred == pred {
			out = append(out, i)
		}
	}
	return out
}

// SkolemBaseOf formats the default Skolem base name of a rule.
func SkolemBaseOf(id int) string { return fmt.Sprintf("r%d", id) }

// String renders the plan compactly for diagnostics.
func (cr *CompiledRule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rule %d (%s): %s", cr.Rule.ID, cr.Info.Kind, cr.Rule.String())
	return sb.String()
}
