package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/term"
)

func fillRel(n int) *Relation {
	r := NewRelation("p", 2)
	for i := 0; i < n; i++ {
		r.Insert(meta("p", term.String(fmt.Sprintf("k%d", i%7)), term.Int(int64(i))))
	}
	return r
}

// TestSnapshotLookupMatchesLookup: after Freeze, the read-only probe
// answers every mask exactly like the mutating slot-machine lookup.
func TestSnapshotLookupMatchesLookup(t *testing.T) {
	r := fillRel(60)
	r.EnsureIndex(1) // pre-built index: snapshot must report indexed
	r.Freeze()
	in := r.Interner()
	for i := 0; i < 7; i++ {
		id, ok := in.IDOf(term.String(fmt.Sprintf("k%d", i)))
		if !ok {
			t.Fatalf("key k%d not interned", i)
		}
		probe := []uint32{id, 0}
		got, indexed := r.SnapshotLookupIDs(1, probe)
		if !indexed {
			t.Errorf("k%d: pre-built index not used", i)
		}
		want := r.LookupIDs(1, probe)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("k%d: snapshot %v vs lookup %v", i, got, want)
		}
	}
	// A mask with no index must scan, flag the miss, and still be exact.
	id, _ := in.IDOf(term.Int(3))
	probe := []uint32{0, id}
	got, indexed := r.SnapshotLookupIDs(2, probe)
	if indexed {
		t.Error("mask 2 has no index; snapshot should report a scan")
	}
	if len(got) != 1 {
		t.Errorf("scan found %d rows, want 1", len(got))
	}
	// Promotion at the batch boundary: EnsureIndex makes the next snapshot
	// probe indexed without changing the answer.
	r.EnsureIndex(2)
	got2, indexed := r.SnapshotLookupIDs(2, probe)
	if !indexed {
		t.Error("EnsureIndex did not cover mask 2")
	}
	if fmt.Sprint(got2) != fmt.Sprint(got) {
		t.Errorf("promotion changed the answer: %v vs %v", got2, got)
	}
}

// TestSnapshotConcurrentProbes hammers a frozen relation from many
// goroutines (run under -race): probes of indexed masks, scanned masks and
// the live-row cache must all be pure reads.
func TestSnapshotConcurrentProbes(t *testing.T) {
	r := fillRel(200)
	r.EnsureIndex(1)
	r.Freeze()
	in := r.Interner()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			probe := make([]uint32, 2)
			for i := 0; i < 200; i++ {
				id, _ := in.IDOf(term.String(fmt.Sprintf("k%d", (i+w)%7)))
				probe[0] = id
				if rows, _ := r.SnapshotLookupIDs(1, probe); len(rows) == 0 {
					t.Error("indexed probe found nothing")
					return
				}
				if id, ok := in.IDOf(term.Int(int64(i))); ok {
					probe[1] = id
					if n, _ := r.SnapshotLookupCountIDs(2, probe); n != 1 {
						t.Errorf("scan count: %d", n)
						return
					}
				}
				if rows, _ := r.SnapshotLookupIDs(0, nil); len(rows) != 200 {
					t.Errorf("live rows: %d", len(rows))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestLiveRowCache: repeated full-scan lookups reuse one cached slice,
// the cache extends over appended rows, and retraction invalidates it.
func TestLiveRowCache(t *testing.T) {
	r := fillRel(50)
	a := r.LookupIDs(0, nil)
	b := r.LookupIDs(0, nil)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("live scan: %d/%d", len(a), len(b))
	}
	if &a[0] != &b[0] {
		t.Error("mask-0 lookups should share the cached live-row slice")
	}
	r.Insert(meta("p", term.String("new"), term.Int(999)))
	if got := r.LookupIDs(0, nil); len(got) != 51 {
		t.Errorf("cache did not extend over the append: %d", len(got))
	}
	// Retract via Replace-to-existing: row 0 collides with row 1's value.
	f1 := r.At(1).Fact
	if out := r.Replace(0, f1); out != ReplaceRetracted {
		t.Fatalf("replace outcome: %v", out)
	}
	got := r.LookupIDs(0, nil)
	if len(got) != 50 {
		t.Errorf("after retraction: %d live rows, want 50", len(got))
	}
	for _, ri := range got {
		if ri == 0 {
			t.Error("retracted row 0 still in the live cache")
		}
	}
}

// TestFreezeEpoch: Freeze records the watermark and covers every index.
func TestFreezeEpoch(t *testing.T) {
	db := NewDatabase()
	r := db.Rel("p", 2)
	for i := 0; i < 20; i++ {
		r.Insert(meta("p", term.Int(int64(i%3)), term.Int(int64(i))))
	}
	r.EnsureIndex(1)
	r.Insert(meta("p", term.Int(7), term.Int(100)))
	db.Freeze()
	if r.Epoch() != 21 {
		t.Errorf("epoch: %d, want 21", r.Epoch())
	}
	id, _ := db.Interner().IDOf(term.Int(7))
	rows, indexed := r.SnapshotLookupIDs(1, []uint32{id, 0})
	if !indexed || len(rows) != 1 {
		t.Errorf("frozen index missed the post-build append: indexed=%v rows=%v", indexed, rows)
	}
}
