package storage

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/term"
)

// TestNullaryFactInsert: inserting a zero-arity fact must not touch the
// prep memo's &Args[0] (regression: the fast-path guard used to evaluate
// the address before checking the length) and must dedup like any fact.
func TestNullaryFactInsert(t *testing.T) {
	r := NewRelation("flag", 0)
	if r.Contains(ast.NewFact("flag")) {
		t.Fatal("empty relation must not contain the nullary fact")
	}
	// The Contains→Insert admit pattern with an empty Args slice: the
	// memo must stay unset and the insert must not panic.
	if !r.Insert(meta("flag")) {
		t.Fatal("first nullary insert must succeed")
	}
	if r.Insert(meta("flag")) {
		t.Fatal("duplicate nullary insert must fail")
	}
	if !r.Contains(ast.NewFact("flag")) {
		t.Fatal("contains after insert")
	}
	if r.Len() != 1 {
		t.Fatalf("len: %d", r.Len())
	}
}

// TestSetShardsRebucket: re-bucketing the exact table preserves dedup and
// probe behavior at every shard count, before and after further inserts.
func TestSetShardsRebucket(t *testing.T) {
	r := NewRelation("p", 2)
	for i := 0; i < 100; i++ {
		r.Insert(meta("p", term.Int(int64(i)), term.String(fmt.Sprint(i))))
	}
	for _, n := range []int{8, 1, 3, 256} {
		r.SetShards(n)
		want := ceilPow2(n)
		if r.Shards() != want {
			t.Fatalf("SetShards(%d): %d shards, want %d", n, r.Shards(), want)
		}
		for i := 0; i < 100; i++ {
			f := ast.NewFact("p", term.Int(int64(i)), term.String(fmt.Sprint(i)))
			if !r.Contains(f) {
				t.Fatalf("shards=%d: lost fact %v", n, f)
			}
			if r.Insert(meta("p", term.Int(int64(i)), term.String(fmt.Sprint(i)))) {
				t.Fatalf("shards=%d: duplicate admitted for %v", n, f)
			}
			row := r.Row(i)
			if !r.ContainsRowHash(row, HashRow(row)) {
				t.Fatalf("shards=%d: ContainsRowHash missed row %d", n, i)
			}
		}
		if r.Contains(ast.NewFact("p", term.Int(-1), term.String("x"))) {
			t.Fatalf("shards=%d: phantom fact", n)
		}
	}
	// Growth after re-bucketing stays consistent.
	r.SetShards(4)
	if r.Insert(meta("p", term.Int(7), term.String("7"))) {
		t.Fatal("duplicate after re-bucket")
	}
	if !r.Insert(meta("p", term.Int(1000), term.String("new"))) {
		t.Fatal("fresh insert after re-bucket")
	}
}

// TestInsertPrepared: the prepared insert dedups against stored rows,
// admits fresh ones identically to Insert, and falls back to the classic
// path when the row's stride no longer matches the relation.
func TestInsertPrepared(t *testing.T) {
	in := NewInterner()
	r := NewRelationInterned("p", 2, in)
	r.SetShards(4)
	row1 := []uint32{in.Intern(term.Int(1)), in.Intern(term.String("a"))}
	m1 := meta("p", term.Int(1), term.String("a"))
	if !r.InsertPrepared(m1, row1, HashRow(row1)) {
		t.Fatal("fresh prepared insert must succeed")
	}
	if r.InsertPrepared(meta("p", term.Int(1), term.String("a")), row1, HashRow(row1)) {
		t.Fatal("duplicate prepared insert must fail")
	}
	if !r.Contains(ast.NewFact("p", term.Int(1), term.String("a"))) {
		t.Fatal("Contains must see the prepared insert")
	}
	if !r.ContainsRowHash(row1, HashRow(row1)) {
		t.Fatal("ContainsRowHash must see the prepared insert")
	}
	// Interleaving with classic Insert keeps one dedup table.
	if r.Insert(meta("p", term.Int(1), term.String("a"))) {
		t.Fatal("classic duplicate of a prepared insert must fail")
	}
	if !r.Insert(meta("p", term.Int(2), term.String("b"))) {
		t.Fatal("classic fresh insert")
	}
	row2 := []uint32{in.Intern(term.Int(2)), in.Intern(term.String("b"))}
	if r.InsertPrepared(meta("p", term.Int(2), term.String("b")), row2, HashRow(row2)) {
		t.Fatal("prepared duplicate of a classic insert must fail")
	}
	// Stride drift: a short row falls back to Insert, which re-interns.
	short := []uint32{in.Intern(term.Int(3))}
	if !r.InsertPrepared(meta("p", term.Int(3)), short, HashRow(short)) {
		t.Fatal("drifted prepared insert must fall back and succeed")
	}
	if !r.Contains(ast.NewFact("p", term.Int(3))) {
		t.Fatal("fallback insert must be stored")
	}
}

// TestRetractGen: the retraction generation advances exactly on retract
// (via Replace supersession), invalidating pre-pass verdicts.
func TestRetractGen(t *testing.T) {
	r := NewRelation("p", 2)
	r.Insert(meta("p", term.Int(1), term.Int(10)))
	r.Insert(meta("p", term.Int(1), term.Int(20)))
	if r.RetractGen() != 0 {
		t.Fatalf("gen after inserts: %d", r.RetractGen())
	}
	// Replacing row 0 with the fact already stored at row 1 retracts it.
	if got := r.Replace(0, ast.NewFact("p", term.Int(1), term.Int(20))); got != ReplaceRetracted {
		t.Fatalf("replace outcome: %v", got)
	}
	if r.RetractGen() != 1 {
		t.Fatalf("gen after retract: %d", r.RetractGen())
	}
}

// prepassFixture builds cands large enough to trigger the parallel
// pre-pass (≥ prepassMinCands): nStored candidates duplicating stored
// facts, nFresh fresh ones, then one batch-duplicate of each fresh one.
func prepassFixture(t *testing.T, r *Relation, in *Interner, nStored, nFresh int) []PrepassCand {
	t.Helper()
	var cands []PrepassCand
	addRow := func(a, b int64) {
		row := []uint32{in.Intern(term.Int(a)), in.Intern(term.Int(b))}
		cands = append(cands, PrepassCand{Rel: r, Row: row, Hash: HashRow(row), Gen: r.RetractGen()})
	}
	for i := 0; i < nStored; i++ {
		r.Insert(meta("p", term.Int(int64(i)), term.Int(int64(i))))
	}
	for i := 0; i < nStored; i++ {
		addRow(int64(i), int64(i))
	}
	for i := 0; i < nFresh; i++ {
		addRow(int64(1000+i), int64(i))
	}
	for i := 0; i < nFresh; i++ {
		addRow(int64(1000+i), int64(i))
	}
	return cands
}

func runPrepassOn(cands []PrepassCand, shards int, meter *core.Meter) ([]uint8, []int32) {
	verdict := make([]uint8, len(cands))
	dupOf := make([]int32, len(cands))
	for i := range dupOf {
		dupOf[i] = -1
	}
	RunPrepass(cands, verdict, dupOf, shards, meter)
	return verdict, dupOf
}

// TestRunPrepassVerdicts: stored duplicates, fresh candidates and
// batch-local duplicates each get the exact verdict, and the per-shard
// meter counters account for every candidate.
func TestRunPrepassVerdicts(t *testing.T) {
	in := NewInterner()
	r := NewRelationInterned("p", 2, in)
	r.SetShards(4)
	const nStored, nFresh = 100, 120
	cands := prepassFixture(t, r, in, nStored, nFresh)
	meter := core.NewMeter(1 << 20)
	meter.SetShards(4)
	verdict, dupOf := runPrepassOn(cands, 4, meter)
	for i := 0; i < nStored; i++ {
		if verdict[i] != PrepassDupStored {
			t.Fatalf("cand %d: verdict %d, want DupStored", i, verdict[i])
		}
	}
	for i := nStored; i < nStored+nFresh; i++ {
		if verdict[i] != PrepassFresh {
			t.Fatalf("cand %d: verdict %d, want Fresh", i, verdict[i])
		}
	}
	for i := nStored + nFresh; i < len(cands); i++ {
		if verdict[i] != PrepassDupBatch {
			t.Fatalf("cand %d: verdict %d, want DupBatch", i, verdict[i])
		}
		if want := int32(i - nFresh); dupOf[i] != want {
			t.Fatalf("cand %d: dupOf %d, want %d", i, dupOf[i], want)
		}
	}
	scans, dups, _ := meter.ShardStats()
	var totScan, totDup int64
	for s := range scans {
		totScan += scans[s]
		totDup += dups[s]
	}
	if totScan != int64(len(cands)) {
		t.Fatalf("shard scans: %d, want %d", totScan, len(cands))
	}
	if totDup != int64(nStored+nFresh) {
		t.Fatalf("shard dups: %d, want %d", totDup, nStored+nFresh)
	}
}

// TestRunPrepassSmallBatch: below the fan-out threshold every verdict
// stays Unknown — the merge re-probes, so sharding small batches would
// only add goroutine overhead.
func TestRunPrepassSmallBatch(t *testing.T) {
	in := NewInterner()
	r := NewRelationInterned("p", 2, in)
	cands := prepassFixture(t, r, in, 10, 20)
	verdict, _ := runPrepassOn(cands, 4, nil)
	for i, v := range verdict {
		if v != PrepassUnknown {
			t.Fatalf("cand %d: verdict %d, want Unknown (batch below threshold)", i, v)
		}
	}
}

// TestRunPrepassSerialShardsSkips: shards <= 1 never fans out.
func TestRunPrepassSerialShardsSkips(t *testing.T) {
	in := NewInterner()
	r := NewRelationInterned("p", 2, in)
	cands := prepassFixture(t, r, in, 150, 150)
	verdict, _ := runPrepassOn(cands, 1, nil)
	for i, v := range verdict {
		if v != PrepassUnknown {
			t.Fatalf("cand %d: verdict %d, want Unknown (serial)", i, v)
		}
	}
}

// TestRunPrepassCollision: with every hash forced equal, all candidates
// land in one shard and dedup must fall through to row comparison —
// distinct rows stay fresh, equal rows are still caught.
func TestRunPrepassCollision(t *testing.T) {
	old := hashRow
	hashRow = func([]uint32) uint64 { return 7 }
	defer func() { hashRow = old }()

	in := NewInterner()
	r := NewRelationInterned("p", 2, in)
	r.SetShards(4)
	const nStored, nFresh = 100, 120
	cands := prepassFixture(t, r, in, nStored, nFresh)
	verdict, dupOf := runPrepassOn(cands, 4, nil)
	for i := 0; i < nStored; i++ {
		if verdict[i] != PrepassDupStored {
			t.Fatalf("cand %d: verdict %d, want DupStored under collision", i, verdict[i])
		}
	}
	for i := nStored; i < nStored+nFresh; i++ {
		if verdict[i] != PrepassFresh {
			t.Fatalf("cand %d: verdict %d, want Fresh under collision", i, verdict[i])
		}
	}
	for i := nStored + nFresh; i < len(cands); i++ {
		if verdict[i] != PrepassDupBatch || dupOf[i] != int32(i-nFresh) {
			t.Fatalf("cand %d: verdict %d dupOf %d under collision", i, verdict[i], dupOf[i])
		}
	}
}

// TestRunPrepassSkipsNilRel: placeholder candidates (fallback entries,
// drifted heads) are ignored by every shard.
func TestRunPrepassSkipsNilRel(t *testing.T) {
	in := NewInterner()
	r := NewRelationInterned("p", 2, in)
	cands := prepassFixture(t, r, in, 150, 100)
	for i := 0; i < len(cands); i += 3 {
		cands[i] = PrepassCand{}
	}
	verdict, _ := runPrepassOn(cands, 4, nil)
	for i, v := range verdict {
		if i%3 == 0 && v != PrepassUnknown {
			t.Fatalf("placeholder cand %d got verdict %d", i, v)
		}
	}
}

// TestDatabaseSetShards: the shard count applies to present and future
// relations and reports 1 when unset.
func TestDatabaseSetShards(t *testing.T) {
	db := NewDatabase()
	if db.Shards() != 1 {
		t.Fatalf("default shards: %d", db.Shards())
	}
	before := db.Rel("a", 2)
	db.SetShards(6) // rounds to 8
	if db.Shards() != 8 {
		t.Fatalf("shards: %d, want 8", db.Shards())
	}
	if before.Shards() != 8 {
		t.Fatalf("existing relation shards: %d", before.Shards())
	}
	if db.Rel("b", 1).Shards() != 8 {
		t.Fatalf("new relation shards: %d", db.Rel("b", 1).Shards())
	}
}
