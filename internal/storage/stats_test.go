package storage

import (
	"testing"

	"repro/internal/term"
)

// TestDistinctEstimateAccuracy: the per-column sketches estimate distinct
// interned IDs within HyperLogLog accuracy (m=64 gives ~13% standard
// error; the bounds here are deliberately generous) and keep constant
// columns near 1.
func TestDistinctEstimateAccuracy(t *testing.T) {
	r := NewRelation("p", 2)
	for i := 0; i < 1000; i++ {
		r.Insert(meta("p", term.Int(int64(i)), term.String("const")))
	}
	st := r.Stats()
	if st.Live != 1000 {
		t.Fatalf("live: %d, want 1000", st.Live)
	}
	if len(st.Distinct) != 2 {
		t.Fatalf("distinct columns: %d, want 2", len(st.Distinct))
	}
	if st.Distinct[0] < 600 || st.Distinct[0] > 1600 {
		t.Errorf("distinct[0]: %.0f, want ~1000", st.Distinct[0])
	}
	if st.Distinct[1] > 2 {
		t.Errorf("distinct[1]: %.2f, want ~1 (constant column)", st.Distinct[1])
	}
}

// TestFrozenStatsSnapshot: FrozenStats reports the numbers captured at the
// last Freeze — not the live state — and the generation counts epochs.
func TestFrozenStatsSnapshot(t *testing.T) {
	r := NewRelation("p", 1)
	for i := 0; i < 10; i++ {
		r.Insert(meta("p", term.Int(int64(i))))
	}
	if !r.FrozenStats().Empty() {
		t.Fatal("unfrozen relation must report empty frozen stats")
	}
	r.Freeze()
	if st := r.FrozenStats(); st.Live != 10 || st.Gen != 1 {
		t.Fatalf("after first freeze: live=%d gen=%d, want 10/1", st.Live, st.Gen)
	}
	for i := 10; i < 30; i++ {
		r.Insert(meta("p", term.Int(int64(i))))
	}
	if st := r.FrozenStats(); st.Live != 10 {
		t.Fatalf("frozen stats moved with live inserts: live=%d, want 10", st.Live)
	}
	if st := r.Stats(); st.Live != 30 {
		t.Fatalf("live stats: %d, want 30", st.Live)
	}
	r.Freeze()
	if st := r.FrozenStats(); st.Live != 30 || st.Gen != 2 {
		t.Fatalf("after second freeze: live=%d gen=%d, want 30/2", st.Live, st.Gen)
	}
}

// TestDatabaseStatsGen: the database-level generation advances with every
// Freeze and RelStats routes to the live or frozen view.
func TestDatabaseStatsGen(t *testing.T) {
	db := NewDatabase()
	rel := db.Rel("p", 1)
	rel.Insert(meta("p", term.Int(1)))
	if db.StatsGen() != 0 {
		t.Fatalf("fresh gen: %d", db.StatsGen())
	}
	db.Freeze()
	if db.StatsGen() != 1 {
		t.Fatalf("gen after freeze: %d", db.StatsGen())
	}
	rel.Insert(meta("p", term.Int(2)))
	live, ok := db.RelStats("p", false)
	if !ok || live.Live != 2 {
		t.Fatalf("live RelStats: %+v ok=%v", live, ok)
	}
	frozen, ok := db.RelStats("p", true)
	if !ok || frozen.Live != 1 {
		t.Fatalf("frozen RelStats: %+v ok=%v", frozen, ok)
	}
	if _, ok := db.RelStats("missing", false); ok {
		t.Fatal("missing predicate must report !ok")
	}
}

// TestIndexUsageCounters: index probes count as hits, and the counters
// survive eviction (DropIndexes folds the per-build hit count in).
func TestIndexUsageCounters(t *testing.T) {
	r := NewRelation("p", 2)
	for i := 0; i < 50; i++ {
		r.Insert(meta("p", term.Int(int64(i%5)), term.Int(int64(i))))
	}
	probe := []term.Value{term.Int(3), {}}
	for i := 0; i < 3; i++ {
		r.Lookup(1, probe)
	}
	builds, hits, _ := r.IndexUsage(1)
	if builds != 1 || hits != 3 {
		t.Fatalf("builds=%d hits=%d, want 1/3", builds, hits)
	}
	r.DropIndexes()
	builds, hits, _ = r.IndexUsage(1)
	if builds != 1 || hits != 3 {
		t.Fatalf("after eviction: builds=%d hits=%d, want 1/3 (folded)", builds, hits)
	}
	r.Lookup(1, probe)
	builds, hits, _ = r.IndexUsage(1)
	if builds != 2 || hits != 4 {
		t.Fatalf("after rebuild: builds=%d hits=%d, want 2/4", builds, hits)
	}
}

// TestColdIndexNotRepromoted: a mask whose index was built and evicted
// without a single hit is cold — PromoteIndex declines to rebuild it,
// until a later build actually serves probes.
func TestColdIndexNotRepromoted(t *testing.T) {
	r := NewRelation("p", 2)
	for i := 0; i < 20; i++ {
		r.Insert(meta("p", term.Int(int64(i%4)), term.Int(int64(i))))
	}
	if !r.PromoteIndex(1, 8) {
		t.Fatal("first promotion must build")
	}
	if r.IndexCount() != 1 {
		t.Fatalf("index count: %d", r.IndexCount())
	}
	r.DropIndexes() // evicted with zero hits: cold
	if r.PromoteIndex(1, 8) {
		t.Fatal("cold mask must not be re-promoted")
	}
	if r.IndexCount() != 0 {
		t.Fatalf("cold promotion built anyway: %d indexes", r.IndexCount())
	}
	// A direct lookup builds the index and serves a hit; after the next
	// eviction the mask is warm again.
	probe := []term.Value{term.Int(2), {}}
	if got := len(r.Lookup(1, probe)); got != 5 {
		t.Fatalf("lookup rows: %d, want 5", got)
	}
	r.DropIndexes()
	if !r.PromoteIndex(1, 8) {
		t.Fatal("warm mask (hits in last build) must be re-promoted")
	}
}
