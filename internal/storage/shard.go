package storage

import (
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
)

// This file implements the partitioned admission pre-pass: candidate head
// facts whose rows were interned and hashed on match workers are bucketed
// into shards by the low bits of the row hash, and one goroutine per shard
// computes a dedup verdict for every candidate it owns — against the
// relation's own duplicate-table shard (pre-batch state) and against the
// earlier candidates of the same shard (batch-local duplicates). Verdicts
// are advisory for freshness and exact for duplication at pre-pass time:
// the serial merge re-validates anything a concurrent serial-path mutation
// (aggregate supersession, EGD, Skolem admission) could have invalidated,
// so the final database stays byte-identical to the unsharded run.

// siteMerge guards the shard-merge boundary: it fires on the calling
// (serial) goroutine before any shard goroutine spawns and before any
// candidate is admitted, so an injected crash leaves the store exactly at
// the previous batch's state and the engines' requeue paths resume it.
var siteMerge = fault.NewPanicSite("storage.merge")

// PrepassCand is one candidate head fact flattened for the pre-pass: the
// target relation, the row interned and hashed during the match phase
// (len(Row) must equal Rel.Arity()), and the relation's retraction
// generation at flatten time — the merge-time guard that invalidates
// verdicts once a retraction intervenes.
type PrepassCand struct {
	Rel  *Relation
	Row  []uint32
	Hash uint64
	Gen  uint64
}

// Pre-pass verdicts. Only duplicate verdicts let the merge skip its own
// probe (and only while the candidate's retraction generation still
// holds); Unknown and Fresh both take the merge's O(1) re-probe, so a
// skipped or raced pre-pass is never a correctness problem.
const (
	// PrepassUnknown: the candidate was not examined (pre-pass skipped).
	PrepassUnknown uint8 = iota
	// PrepassFresh: no equal row stored pre-batch, no earlier equal candidate.
	PrepassFresh
	// PrepassDupStored: an equal row was already stored before the batch.
	PrepassDupStored
	// PrepassDupBatch: equal to the earlier candidate dupOf[i] of this batch.
	PrepassDupBatch
)

// prepassMinCands bounds the goroutine fan-out: batches with fewer
// candidates than this are merged probe-only (the verdict phase would cost
// more than it saves). The threshold depends only on the candidate count,
// never on scheduling, so determinism is unaffected — verdicts only ever
// remove work the merge would redo identically.
const prepassMinCands = 256

// prepass carries the shard goroutines' shared state. The slices are
// written in owner-exclusive slots: goroutine s writes verdict[i]/dupOf[i]
// only for candidates whose hash maps to shard s, and the WaitGroup in
// RunPrepass orders all writes before the merge reads them.
type prepass struct {
	cands   []PrepassCand
	verdict []uint8
	dupOf   []int32
	next    []int32 // batch-local hash chains, 1-based (0 = end); slot i written only by the shard owning cands[i]
	mask    uint64
	meter   *core.Meter

	panicMu  sync.Mutex
	panicVal any
}

// RunPrepass computes dedup verdicts for cands into verdict/dupOf (both
// len(cands), pre-filled with PrepassUnknown). It fires the storage.merge
// fault seam on the calling goroutine, then — when shards > 1 and the
// batch is large enough — fans one goroutine per shard out over the
// candidates. A panic on a shard goroutine is latched and re-raised on
// the calling goroutine, so engine panic isolation converts it into a
// typed resumable error exactly like a serial-phase crash.
func RunPrepass(cands []PrepassCand, verdict []uint8, dupOf []int32, shards int, meter *core.Meter) {
	if len(cands) == 0 {
		return
	}
	siteMerge.Hit()
	if shards <= 1 || len(cands) < prepassMinCands {
		return
	}
	p := &prepass{cands: cands, verdict: verdict, dupOf: dupOf,
		next: make([]int32, len(cands)), mask: uint64(shards - 1), meter: meter}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			p.runShard(s)
		}(s)
	}
	wg.Wait()
	if p.panicVal != nil {
		panic(p.panicVal)
	}
}

// noteShardPanic latches the first shard-goroutine crash for re-raising on
// the merge goroutine.
func (p *prepass) noteShardPanic(r any) {
	p.panicMu.Lock()
	defer p.panicMu.Unlock()
	if p.panicVal == nil {
		p.panicVal = r
	}
}

// runShard computes the verdicts of every candidate whose hash maps to
// shard s. It touches only shard-local structures: the relation
// duplicate-table shard its candidates' hashes select (reads via
// ContainsRowHash — safe concurrently because no mutation runs during the
// pre-pass, and aligned with s when the relation's shard count matches the
// pre-pass's), a private batch-local pending table, and the owner-exclusive
// verdict slots of its own candidates. The frozenwrite analyzer roots this
// method and verifies no mutating storage call is reachable from it.
func (p *prepass) runShard(s int) {
	defer func() {
		if r := recover(); r != nil { //vadalint:panicguard shard isolation: latch the crash; RunPrepass re-raises it on the merge goroutine where engine recovery converts it into a typed resumable error
			p.noteShardPanic(r)
		}
	}()
	// pending maps a hash to the 1-based index of this shard's most recent
	// fresh candidate with that hash; earlier ones chain through p.next.
	// One map entry per distinct hash instead of a slice per fresh
	// candidate keeps the pre-pass's own allocations off the admission
	// ledger (reading the nil map before the first fresh candidate is a
	// plain zero).
	var pending map[uint64]int32
	scanned, dups := 0, 0
	for i := range p.cands {
		c := &p.cands[i]
		if c.Rel == nil || c.Hash&p.mask != uint64(s) {
			continue
		}
		scanned++
		if c.Rel.ContainsRowHash(c.Row, c.Hash) {
			p.verdict[i] = PrepassDupStored
			dups++
			continue
		}
		dup := int32(-1)
		for j := pending[c.Hash]; j != 0; j = p.next[j-1] {
			d := &p.cands[j-1]
			if d.Rel == c.Rel && rowsEqual(d.Row, c.Row) {
				dup = j - 1
				break
			}
		}
		if dup >= 0 {
			p.verdict[i] = PrepassDupBatch
			p.dupOf[i] = dup
			dups++
			continue
		}
		p.verdict[i] = PrepassFresh
		if pending == nil {
			pending = make(map[uint64]int32, 64)
		}
		p.next[i] = pending[c.Hash]
		pending[c.Hash] = int32(i) + 1
	}
	if p.meter != nil {
		p.meter.NoteShardScan(s, scanned, dups)
	}
}

// rowsEqual reports whether two interned rows are identical.
func rowsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
