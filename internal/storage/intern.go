package storage

import (
	"math"

	"repro/internal/term"
)

// Interner is the database-wide symbol table: it maps each distinct
// term.Value to a dense uint32 ID and back. Relations store facts as
// interned tuples ([]uint32), so duplicate checks and index probes
// compare and hash machine words instead of rendered strings.
//
// ID 0 is reserved as "invalid / absent"; real IDs start at 1. Labelled
// nulls intern like any other value: two nulls receive the same ID iff
// they have the same null identity (term.Value equality), so null
// identity survives interning exactly.
//
// Equality semantics: IDs coincide iff the term.Values are identical
// (strict Value identity; float NaNs excepted, see nanID). This is a
// deliberate cleanup over the rendered-string keys it replaces, which
// conflated values with equal renderings — notably Int(1) and
// Float(1.0) — in duplicate checks and index probes while unification
// kept them distinct. Interned storage applies strict identity
// uniformly across dedup, indexes and unification; numeric-widening
// comparison remains available in conditions via term.Equal/Compare.
//
// Concurrency: the Interner is single-writer. IDOf and ValueOf are safe
// to call from multiple goroutines only while no Intern call is in
// flight (reads touch the map and the slice without synchronization).
// Both engines are single-goroutine today; a future parallel engine
// must either shard interners or wrap Intern in its own mutex.
type Interner struct {
	ids  map[term.Value]uint32
	vals []term.Value
	// nanID is the single ID shared by all float NaN values: NaN never
	// compares equal to itself, so it can never be found in ids; the
	// rendered-key representation this replaces collapsed every NaN to
	// the string "NaN", and conflating them here preserves that exact
	// duplicate-detection behaviour (and with it chase termination).
	nanID uint32
	bytes int64
}

func isNaN(v term.Value) bool {
	return v.Kind() == term.KindFloat && math.IsNaN(v.FloatVal())
}

// NewInterner returns an empty interner; slot 0 holds the invalid Value.
func NewInterner() *Interner {
	return &Interner{
		ids:  make(map[term.Value]uint32),
		vals: make([]term.Value, 1),
	}
}

// Intern returns the ID of v, assigning the next dense ID on first use.
// All float NaNs intern to one shared ID (see nanID).
func (in *Interner) Intern(v term.Value) uint32 {
	if isNaN(v) {
		if in.nanID == 0 {
			in.nanID = uint32(len(in.vals))
			in.vals = append(in.vals, v)
			in.bytes += 64
		}
		return in.nanID
	}
	if id, ok := in.ids[v]; ok {
		return id
	}
	id := uint32(len(in.vals))
	in.ids[v] = id
	in.vals = append(in.vals, v)
	// Value struct + string payload + map entry overhead.
	in.bytes += int64(len(v.Str())) + 64
	return id
}

// IDOf returns the ID of v without interning it; ok is false when v has
// never been interned (hence occurs in no stored fact).
func (in *Interner) IDOf(v term.Value) (uint32, bool) {
	if isNaN(v) {
		return in.nanID, in.nanID != 0
	}
	id, ok := in.ids[v]
	return id, ok
}

// ValueOf decodes an ID back to its Value. ID 0 (and any out-of-range
// ID) decodes to the invalid zero Value.
func (in *Interner) ValueOf(id uint32) term.Value {
	if int(id) >= len(in.vals) {
		return term.Value{}
	}
	return in.vals[id]
}

// Len returns the number of interned values (excluding the reserved
// invalid slot).
func (in *Interner) Len() int { return len(in.vals) - 1 }

// Bytes returns the rough retained size of the symbol table.
func (in *Interner) Bytes() int64 { return in.bytes }
