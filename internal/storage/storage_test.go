package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/term"
)

func meta(pred string, args ...term.Value) *core.FactMeta {
	return &core.FactMeta{Fact: ast.NewFact(pred, args...)}
}

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation("p", 2)
	if !r.Insert(meta("p", term.String("a"), term.Int(1))) {
		t.Fatal("first insert must succeed")
	}
	if r.Insert(meta("p", term.String("a"), term.Int(1))) {
		t.Fatal("duplicate insert must fail")
	}
	if r.Len() != 1 {
		t.Fatalf("len: %d", r.Len())
	}
	if !r.Contains(ast.NewFact("p", term.String("a"), term.Int(1))) {
		t.Fatal("contains")
	}
}

func TestDynamicIndexLookup(t *testing.T) {
	r := NewRelation("p", 2)
	for i := 0; i < 100; i++ {
		r.Insert(meta("p", term.Int(int64(i%10)), term.Int(int64(i))))
	}
	probe := []term.Value{term.Int(3), {}}
	rows := r.Lookup(1, probe) // mask = position 0
	if len(rows) != 10 {
		t.Fatalf("lookup rows: %d, want 10", len(rows))
	}
	for _, row := range rows {
		if r.At(int(row)).Fact.Args[0] != term.Int(3) {
			t.Fatal("index returned wrong fact")
		}
	}
	if r.IndexCount() != 1 {
		t.Fatalf("index count: %d", r.IndexCount())
	}
}

// TestDynamicIndexExtension: facts inserted after an index was built are
// found by later lookups (the lazy extension of the slot machine join).
func TestDynamicIndexExtension(t *testing.T) {
	r := NewRelation("p", 2)
	r.Insert(meta("p", term.Int(1), term.Int(10)))
	probe := []term.Value{term.Int(1), {}}
	if got := len(r.Lookup(1, probe)); got != 1 {
		t.Fatalf("initial: %d", got)
	}
	r.Insert(meta("p", term.Int(1), term.Int(11)))
	if got := len(r.Lookup(1, probe)); got != 2 {
		t.Fatalf("after extension: %d", got)
	}
}

// TestLookupMatchesScan is a property test: for random relations, masks
// and probes, the indexed lookup equals the naive scan.
func TestLookupMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		r := NewRelation("p", 3)
		n := 5 + rng.Intn(60)
		for i := 0; i < n; i++ {
			r.Insert(meta("p",
				term.Int(int64(rng.Intn(4))),
				term.Int(int64(rng.Intn(4))),
				term.Int(int64(rng.Intn(4)))))
		}
		mask := uint32(rng.Intn(8))
		probe := []term.Value{
			term.Int(int64(rng.Intn(4))),
			term.Int(int64(rng.Intn(4))),
			term.Int(int64(rng.Intn(4))),
		}
		got := map[int32]bool{}
		for _, row := range r.Lookup(mask, probe) {
			got[row] = true
		}
		for i := 0; i < r.Len(); i++ {
			f := r.At(i).Fact
			match := true
			for p := 0; p < 3; p++ {
				if mask&(1<<uint(p)) != 0 && f.Args[p] != probe[p] {
					match = false
				}
			}
			if match != got[int32(i)] {
				t.Fatalf("trial %d: row %d mask %b: scan=%v index=%v", trial, i, mask, match, got[int32(i)])
			}
		}
	}
}

func TestNoIndexMode(t *testing.T) {
	r := NewRelation("p", 2)
	r.SetNoIndex(true)
	for i := 0; i < 20; i++ {
		r.Insert(meta("p", term.Int(int64(i%5)), term.Int(int64(i))))
	}
	rows := r.Lookup(1, []term.Value{term.Int(2), {}})
	if len(rows) != 4 {
		t.Fatalf("scan rows: %d", len(rows))
	}
	if r.IndexCount() != 0 {
		t.Fatal("no index must be built in no-index mode")
	}
}

func TestDropIndexes(t *testing.T) {
	r := NewRelation("p", 2)
	r.Insert(meta("p", term.Int(1), term.Int(2)))
	r.Lookup(1, []term.Value{term.Int(1), {}})
	if r.IndexCount() != 1 {
		t.Fatal("index expected")
	}
	r.DropIndexes()
	if r.IndexCount() != 0 {
		t.Fatal("indexes must be dropped")
	}
	// Rebuilt on demand.
	if got := len(r.Lookup(1, []term.Value{term.Int(1), {}})); got != 1 {
		t.Fatalf("after rebuild: %d", got)
	}
}

func TestDatabaseActiveDomain(t *testing.T) {
	db := NewDatabase()
	strat := &fakePolicy{}
	db.InsertEDB(ast.NewFact("p", term.String("a"), term.Int(5)), strat)
	if !db.InActiveDomain(term.String("a")) || !db.InActiveDomain(term.Int(5)) {
		t.Error("EDB constants must be in the active domain")
	}
	if db.InActiveDomain(term.String("zz")) {
		t.Error("unknown constant must not be in the active domain")
	}
	if db.InActiveDomain(term.Null(1)) {
		t.Error("nulls are never in the active domain")
	}
	if db.ActiveDomainSize() != 2 {
		t.Errorf("ACDom size: %d", db.ActiveDomainSize())
	}
}

type fakePolicy struct{}

func (f *fakePolicy) NewEDBFact(fa ast.Fact) *core.FactMeta { return &core.FactMeta{Fact: fa} }
func (f *fakePolicy) Derive(fa ast.Fact, ruleID int, parents []*core.FactMeta) *core.FactMeta {
	return &core.FactMeta{Fact: fa}
}
func (f *fakePolicy) CheckTermination(m *core.FactMeta) bool { return true }

func TestBufferManagerEviction(t *testing.T) {
	bm := NewBufferManager(200)
	rels := make([]*Relation, 3)
	for i := range rels {
		rels[i] = NewRelation(fmt.Sprintf("p%d", i), 2)
		bm.Register(fmt.Sprintf("p%d", i), rels[i])
		for k := 0; k < 20; k++ {
			rels[i].Insert(meta(fmt.Sprintf("p%d", i), term.Int(int64(k)), term.Int(int64(k))))
		}
		rels[i].Lookup(1, []term.Value{term.Int(1), {}})
	}
	bm.Pin("p2")
	bm.Touch("p0")
	bm.Touch("p1")
	bm.Touch("p0") // p1 is now least recently used among evictables
	if bm.Evictions == 0 {
		t.Fatal("expected evictions under pressure")
	}
	if rels[2].IndexCount() == 0 {
		t.Error("pinned segment must keep its indexes")
	}
}

func TestDatabaseTotals(t *testing.T) {
	db := NewDatabase()
	strat := &fakePolicy{}
	db.InsertEDB(ast.NewFact("p", term.Int(1)), strat)
	db.InsertEDB(ast.NewFact("q", term.Int(2), term.Int(3)), strat)
	if db.TotalFacts() != 2 {
		t.Errorf("total: %d", db.TotalFacts())
	}
	if len(db.Predicates()) != 2 {
		t.Errorf("preds: %v", db.Predicates())
	}
	if db.Bytes() <= 0 {
		t.Error("bytes accounting")
	}
	if got := db.FactsOf("p"); len(got) != 1 {
		t.Errorf("FactsOf: %v", got)
	}
	if db.Lookup("nope") != nil {
		t.Error("missing relation must be nil")
	}
}

func TestRelationReplaceInPlace(t *testing.T) {
	r := NewRelation("agg", 2)
	r.Insert(meta("agg", term.String("g"), term.Int(1)))
	r.Insert(meta("agg", term.String("h"), term.Int(5)))
	// Build an index over position 0 so Replace must maintain it.
	if got := len(r.Lookup(1, []term.Value{term.String("g"), {}})); got != 1 {
		t.Fatalf("pre-replace lookup: %d", got)
	}
	if out := r.Replace(0, ast.NewFact("agg", term.String("g"), term.Int(3))); out != ReplaceDone {
		t.Fatalf("replace outcome: %v", out)
	}
	// The row keeps its index, the old tuple is gone, the new one found.
	if r.Len() != 2 || r.Live() != 2 {
		t.Fatalf("len/live: %d/%d", r.Len(), r.Live())
	}
	if r.At(0).Fact.Args[1] != term.Int(3) {
		t.Errorf("row 0 fact not updated: %v", r.At(0).Fact)
	}
	if r.Contains(ast.NewFact("agg", term.String("g"), term.Int(1))) {
		t.Error("superseded tuple still passes the duplicate check")
	}
	if !r.Contains(ast.NewFact("agg", term.String("g"), term.Int(3))) {
		t.Error("superseding tuple missing from the duplicate check")
	}
	if got := len(r.Lookup(2, []term.Value{{}, term.Int(3)})); got != 1 {
		t.Errorf("index over replaced position finds %d rows, want 1", got)
	}
	if got := len(r.Lookup(2, []term.Value{{}, term.Int(1)})); got != 0 {
		t.Errorf("index still finds the superseded value: %d rows", got)
	}
	// Replacing with the identical tuple is a no-op.
	if out := r.Replace(0, ast.NewFact("agg", term.String("g"), term.Int(3))); out != ReplaceUnchanged {
		t.Errorf("identical replace: %v", out)
	}
}

func TestRelationReplaceDeltaLog(t *testing.T) {
	r := NewRelation("agg", 2)
	r.Insert(meta("agg", term.String("g"), term.Int(1)))
	if r.DeltaLen() != 1 {
		t.Fatalf("delta len: %d", r.DeltaLen())
	}
	r.Replace(0, ast.NewFact("agg", term.String("g"), term.Int(2)))
	// The replaced row is re-delivered: cursors past the original insert
	// observe the superseding fact as a fresh delta.
	if r.DeltaLen() != 2 {
		t.Fatalf("delta len after replace: %d", r.DeltaLen())
	}
	if r.DeltaAt(1) != r.At(0) {
		t.Error("replacement delta must alias the replaced row")
	}
	r.Insert(meta("agg", term.String("h"), term.Int(9)))
	if r.DeltaLen() != 3 || r.DeltaAt(2) != r.At(1) {
		t.Error("inserts after a replace must append to the delta log")
	}
}

func TestRelationReplaceRetractsOnDuplicate(t *testing.T) {
	r := NewRelation("agg", 2)
	r.Insert(meta("agg", term.String("g"), term.Int(1)))
	r.Insert(meta("agg", term.String("g"), term.Int(2)))
	r.Lookup(1, []term.Value{term.String("g"), {}})
	// Row 0's improvement collides with row 1: row 0 is retracted, not
	// duplicated.
	if out := r.Replace(0, ast.NewFact("agg", term.String("g"), term.Int(2))); out != ReplaceRetracted {
		t.Fatalf("outcome: %v", out)
	}
	if !r.At(0).Retracted {
		t.Error("superseded row not marked retracted")
	}
	if r.Len() != 2 || r.Live() != 1 {
		t.Errorf("len/live: %d/%d", r.Len(), r.Live())
	}
	if got := len(r.Facts()); got != 1 {
		t.Errorf("Facts includes retracted rows: %d", got)
	}
	if r.Contains(ast.NewFact("agg", term.String("g"), term.Int(1))) {
		t.Error("retracted tuple still passes the duplicate check")
	}
	if got := len(r.Lookup(1, []term.Value{term.String("g"), {}})); got != 1 {
		t.Errorf("lookup returns retracted rows: %d", got)
	}
	if got := len(r.LookupIDs(0, nil)); got != 1 {
		t.Errorf("full scan returns retracted rows: %d", got)
	}
	// A fresh index built after the retraction must skip the dead row.
	r.DropIndexes()
	if got := len(r.Lookup(2, []term.Value{{}, term.Int(1)})); got != 0 {
		t.Errorf("rebuilt index resurrected a retracted row: %d", got)
	}
	if _, found := r.FindExact(ast.NewFact("agg", term.String("g"), term.Int(1))); found {
		t.Error("FindExact located a retracted row")
	}
	if idx, found := r.FindExact(ast.NewFact("agg", term.String("g"), term.Int(2))); !found || idx != 1 {
		t.Errorf("FindExact: idx=%d found=%v", idx, found)
	}
}
