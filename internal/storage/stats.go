package storage

import (
	"math"
	"math/bits"
)

// This file holds the cheap per-relation statistics that feed the
// cost-based join planner (paper Sec. 6, Optimizations): a live-row
// count, per-column distinct-ID estimates maintained incrementally at
// insert/replace time, and per-index usage counters. Statistics are
// snapshotted at the Freeze epoch boundary so that parallel-chase
// workers plan against exactly the numbers they match against.

// sketchRegisters is the register count (m) of the per-column distinct
// sketches. 64 registers give a ~13% standard error — far more precision
// than join ordering needs — at 64 bytes per column.
const sketchRegisters = 64

// alpha64 is the HyperLogLog bias-correction constant for m = 64:
// 0.7213 / (1 + 1.079/m).
const alpha64 = 0.709

// distinctSketch is a small HyperLogLog estimator over interned IDs.
// Updates are O(1) and allocation-free; deletions are not supported, so
// after aggregate supersession (Replace) the estimate may slightly
// overcount — acceptable for ordering decisions, which only need the
// right order of magnitude.
type distinctSketch struct {
	reg [sketchRegisters]uint8
}

// add folds one interned ID into the sketch. The FNV state is passed
// through a murmur-style finalizer: interned IDs are small sequential
// integers and FNV-1a alone leaves their low bits too regular for the
// trailing-zeros rank (estimates skewed ~60% high without it).
func (s *distinctSketch) add(id uint32) {
	h := mixID(fnvOffset64, id)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	idx := h & (sketchRegisters - 1)
	// Rank of the remaining bits: position of the lowest set bit, 1-based.
	// The sentinel bit caps the rank so the register never overflows.
	rank := uint8(bits.TrailingZeros64(h>>6|1<<57)) + 1
	if rank > s.reg[idx] {
		s.reg[idx] = rank
	}
}

// estimate returns the sketch's cardinality estimate with the standard
// small-range correction.
func (s *distinctSketch) estimate() float64 {
	sum := 0.0
	zeros := 0
	for _, r := range s.reg {
		sum += 1.0 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	const m = float64(sketchRegisters)
	est := alpha64 * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// RelStats is a snapshot of one relation's planner-facing statistics.
type RelStats struct {
	// Gen counts the relation's Freeze epochs; a frozen snapshot carries
	// the generation it was captured at, so plan caches can key on it.
	Gen uint64
	// Live is the number of non-retracted facts at snapshot time.
	Live int
	// Distinct estimates the number of distinct interned IDs per column
	// (len = arity). Estimates only grow (no deletions), so columns with
	// superseded aggregate intermediates may overcount slightly.
	Distinct []float64
}

// Empty reports whether the snapshot describes a relation with no
// usable statistics (no live rows observed).
func (st RelStats) Empty() bool { return st.Live == 0 && st.Distinct == nil }

// observeRow folds a freshly stored (or replacing) row into the
// per-column sketches.
func (r *Relation) observeRow(row []uint32) {
	if len(r.sketches) < r.arity {
		s := make([]distinctSketch, r.arity)
		copy(s, r.sketches)
		r.sketches = s
	}
	for i, id := range row {
		r.sketches[i].add(id)
	}
}

// Stats computes the relation's statistics from its current contents:
// the live view the single-threaded pipeline engine plans against.
func (r *Relation) Stats() RelStats {
	st := RelStats{Gen: r.gen, Live: r.Live()}
	if len(r.sketches) > 0 {
		st.Distinct = make([]float64, len(r.sketches))
		for i := range r.sketches {
			st.Distinct[i] = r.sketches[i].estimate()
		}
	}
	return st
}

// FrozenStats returns the snapshot captured by the last Freeze. Workers
// of the parallel chase must use this — never Stats — so every worker
// plans against the same numbers it matches against. The Distinct slice
// is shared; callers must not modify it.
func (r *Relation) FrozenStats() RelStats { return r.frozen }

// idxUsage records, per position bitmask, how often the mask's dynamic
// index was built, how often it was probed, and how many frozen-epoch
// probes had to fall back to a full scan. lastHits remembers the hit
// count of the most recently evicted build: a mask that was built and
// then evicted without a single hit is "cold" and is not worth
// re-promoting at every epoch boundary.
type idxUsage struct {
	builds   int64
	scans    int64
	hits     int64 // hits folded in from evicted builds
	lastHits int64 // hits during the most recently evicted build's lifetime
	built    bool  // a build has happened (and possibly been evicted)
}

// usage returns (creating on demand) the usage record for mask.
func (r *Relation) usage(mask uint32) *idxUsage {
	u := r.idxUse[mask]
	if u == nil {
		if r.idxUse == nil {
			r.idxUse = make(map[uint32]*idxUsage)
		}
		u = &idxUsage{}
		r.idxUse[mask] = u
	}
	return u
}

// IndexUsage reports the accumulated counters for mask: builds, probes
// served by an index (current build included), and frozen-epoch scan
// fallbacks recorded at batch boundaries.
func (r *Relation) IndexUsage(mask uint32) (builds, hits, scans int64) {
	u := r.idxUse[mask]
	if u == nil {
		return 0, 0, 0
	}
	hits = u.hits
	if ix := r.indexes[mask]; ix != nil {
		hits += ix.hits.Load()
	}
	return u.builds, hits, u.scans
}

// PromoteIndex is the batch-boundary promotion for a mask that
// SnapshotLookupIDs had to scan during a frozen epoch. It records the
// scan and builds (or extends) the index — unless the mask is cold: a
// previously built index that was evicted without ever serving a hit is
// not rebuilt, so relations whose probes never repeat stop paying an
// index build every epoch. sizeHint presizes a fresh index's bucket
// table (0 means unknown). It reports whether the index is (now) built.
func (r *Relation) PromoteIndex(mask uint32, sizeHint int) bool {
	if mask == 0 || r.noIndex {
		return false
	}
	u := r.usage(mask)
	u.scans++
	if r.indexes[mask] == nil && u.built && u.lastHits == 0 {
		return false
	}
	r.ensureIndexSized(mask, sizeHint)
	return true
}
