package storage

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/term"
)

// siteFreeze guards the epoch boundary. Freeze has no error path, so the
// site is panic-only, and it fires before any relation is touched — an
// injected crash leaves every snapshot at the previous epoch, which is
// exactly the state a resumed run re-freezes from.
var siteFreeze = fault.NewPanicSite("storage.freeze")

// Database is the in-memory instance the engines operate on: one relation
// per predicate, a null factory, the database-wide term interner shared
// by all relations, and the active constant domain (ACDom) collected
// from EDB facts (paper Sec. 2, Modeling Features).
type Database struct {
	rels  map[string]*Relation
	names []string

	// Nulls mints labelled nulls; Skolem functions are memoized here so
	// that repeated rule firings are deterministic.
	Nulls *term.NullFactory

	in        *Interner
	activeDom map[uint32]struct{} // interned IDs of ACDom constants
	noIndex   bool
	shards    int    // duplicate-table shards per relation (0 = 1)
	gen       uint64 // Freeze epochs opened so far (plan-cache keying)
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		rels:      make(map[string]*Relation),
		Nulls:     term.NewNullFactory(),
		in:        NewInterner(),
		activeDom: make(map[uint32]struct{}),
	}
}

// Interner returns the database-wide symbol table.
func (db *Database) Interner() *Interner { return db.in }

// DisableIndexes makes every relation (present and future) scan instead
// of using dynamic indexes — the slot-machine-join ablation.
func (db *Database) DisableIndexes() {
	db.noIndex = true
	for _, name := range db.names {
		db.rels[name].SetNoIndex(true)
	}
}

// SetShards sets how many duplicate-table shards every relation (present
// and future) keeps — the partition count of the parallel admission
// pre-pass. Rounded up to a power of two. Engines call it once at
// construction; like all mutation it is single-goroutine.
func (db *Database) SetShards(n int) {
	db.shards = ceilPow2(n)
	for _, name := range db.names {
		db.rels[name].SetShards(db.shards)
	}
}

// Shards returns the per-relation duplicate-table shard count.
func (db *Database) Shards() int {
	if db.shards < 1 {
		return 1
	}
	return db.shards
}

// Rel returns the relation for pred, creating it with the given arity on
// first use.
func (db *Database) Rel(pred string, arity int) *Relation {
	r := db.rels[pred]
	if r == nil {
		r = NewRelationInterned(pred, arity, db.in)
		r.SetNoIndex(db.noIndex)
		if db.shards > 1 {
			r.SetShards(db.shards)
		}
		db.rels[pred] = r
		db.names = append(db.names, pred)
		sort.Strings(db.names)
	}
	return r
}

// Lookup returns the relation for pred or nil.
func (db *Database) Lookup(pred string) *Relation { return db.rels[pred] }

// Predicates returns the sorted predicate names present.
func (db *Database) Predicates() []string {
	return append([]string(nil), db.names...)
}

// Freeze opens a read-only evaluation epoch over every relation: dynamic
// indexes and live-row caches are eagerly extended to cover all stored
// rows, after which SnapshotLookupIDs probes (and the interner's read
// paths) are safe from any number of goroutines until the next mutation.
// The parallel chase freezes the database before fanning a delta batch
// out to its match workers and mutates it only on the serial admit path.
func (db *Database) Freeze() {
	siteFreeze.Hit()
	db.gen++
	for _, name := range db.names {
		db.rels[name].Freeze()
	}
}

// StatsGen counts the Freeze epochs opened so far. Plan caches key on it
// to detect that a new consistent statistics snapshot exists.
func (db *Database) StatsGen() uint64 { return db.gen }

// RelStats returns planner statistics for pred. Frozen selects the
// snapshot captured by the last Freeze (what parallel-chase workers must
// plan against); otherwise the statistics are computed live (the
// single-threaded pipeline's view). The boolean is false when the
// predicate has no relation yet.
func (db *Database) RelStats(pred string, frozen bool) (RelStats, bool) {
	r := db.rels[pred]
	if r == nil {
		return RelStats{}, false
	}
	if frozen {
		return r.FrozenStats(), true
	}
	return r.Stats(), true
}

// Insert stores m in its predicate's relation; it reports whether the fact
// was new.
func (db *Database) Insert(m *core.FactMeta) bool {
	return db.Rel(m.Fact.Pred, len(m.Fact.Args)).Insert(m)
}

// InsertEDB stores a database fact, registers its constants in the active
// domain and wires its termination-strategy metadata through strat.
// It reports whether the fact was new.
func (db *Database) InsertEDB(f ast.Fact, strat core.Policy) bool {
	rel := db.Rel(f.Pred, len(f.Args))
	if rel.Contains(f) {
		return false
	}
	m := strat.NewEDBFact(f)
	rel.Insert(m)
	for _, v := range f.Args {
		if v.IsGround() {
			db.activeDom[db.in.Intern(v)] = struct{}{}
		}
	}
	return true
}

// InActiveDomain reports whether v is a constant of the active domain.
func (db *Database) InActiveDomain(v term.Value) bool {
	if !v.IsGround() {
		return false
	}
	id, ok := db.in.IDOf(v)
	if !ok {
		return false
	}
	_, in := db.activeDom[id]
	return in
}

// InActiveDomainID reports whether the interned ID denotes an ACDom
// constant.
func (db *Database) InActiveDomainID(id uint32) bool {
	_, in := db.activeDom[id]
	return in
}

// ActiveDomainSize returns |ACDom|.
func (db *Database) ActiveDomainSize() int { return len(db.activeDom) }

// TotalFacts counts all stored rows, retracted rows included.
func (db *Database) TotalFacts() int {
	n := 0
	for _, name := range db.names {
		n += db.rels[name].Len()
	}
	return n
}

// LiveFacts counts the facts actually in the database (retracted
// monotonic-aggregation intermediates excluded).
func (db *Database) LiveFacts() int {
	n := 0
	for _, name := range db.names {
		n += db.rels[name].Live()
	}
	return n
}

// Bytes returns the rough retained size of all relations and indexes,
// plus the shared symbol table.
func (db *Database) Bytes() int64 {
	b := db.in.Bytes()
	for _, name := range db.names {
		b += db.rels[name].Bytes()
	}
	return b
}

// FactsOf returns a snapshot of the facts of pred (nil when absent).
func (db *Database) FactsOf(pred string) []ast.Fact {
	r := db.rels[pred]
	if r == nil {
		return nil
	}
	return r.Facts()
}
