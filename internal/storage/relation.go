// Package storage implements the in-memory fact store of the Vadalog
// system: append-only relations with exact-duplicate elimination, the
// dynamic in-memory indexes that back the slot-machine join (paper
// Sec. 4), the active constant domain (ACDom) and a buffer manager with
// per-segment accounting and LRU index eviction.
//
// Facts are stored as interned tuples: every term.Value is mapped to a
// dense uint32 ID by the database-wide Interner, and each relation keeps
// its rows as a flat []uint32 (arity IDs per fact). Duplicate checks and
// dynamic-index probes hash those IDs with FNV-1a into uint64 keys;
// hash buckets chain row indexes and every candidate is verified by ID
// comparison, so collisions are resolved exactly and no probe allocates.
package storage

import (
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/term"
)

// siteInsert guards fact admission. Insert has no error path (it reports
// new/duplicate), so the site is panic-only; it fires before the relation
// mutates, keeping the store consistent through an injected crash.
var siteInsert = fault.NewPanicSite("storage.insert")

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mixID folds one interned ID into an FNV-1a hash state, byte by byte.
func mixID(h uint64, id uint32) uint64 {
	h ^= uint64(id & 0xff)
	h *= fnvPrime64
	h ^= uint64((id >> 8) & 0xff)
	h *= fnvPrime64
	h ^= uint64((id >> 16) & 0xff)
	h *= fnvPrime64
	h ^= uint64(id >> 24)
	h *= fnvPrime64
	return h
}

// hashRow is the FNV-1a hash of a full interned row. It is a variable
// only so collision-handling tests can force every row into one bucket.
var hashRow = func(row []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range row {
		h = mixID(h, id)
	}
	return h
}

// hashMasked is the FNV-1a hash of the masked positions of an interned
// row. Like hashRow it is a variable only for collision tests.
var hashMasked = func(row []uint32, mask uint32) uint64 {
	h := uint64(fnvOffset64)
	for i, id := range row {
		if mask&(1<<uint(i)) != 0 {
			h = mixID(h, id)
		}
	}
	return h
}

// Relation stores the facts of one predicate together with their
// termination-strategy metadata. Facts are kept in insertion order;
// duplicates (by exact interned tuple, null identities included) are
// rejected.
type Relation struct {
	name  string
	arity int
	in    *Interner
	metas []*core.FactMeta

	// rows holds the interned tuples flattened: row i occupies
	// rows[i*arity : (i+1)*arity]. Facts shorter than arity (possible
	// only for inconsistent programs) are padded with the invalid ID 0,
	// which no real value interns to, so padding is exact.
	rows []uint32

	// exact chains row indexes per full-row hash for duplicate detection.
	// It is sharded by the low bits of the hash (shard = hash & shardMask,
	// len(exact) a power of two): the partitioned admission pre-pass probes
	// each shard from its own goroutine, which is safe exactly because a
	// row's hash fully determines its shard. One shard (the default) is the
	// unsharded layout with one map.
	exact     []map[uint64][]int32
	shardMask uint64

	// retractGen counts retractions. The partitioned admission pre-pass
	// snapshots it per candidate: a dedup verdict computed against the
	// pre-batch table is trusted at merge time only while no retraction has
	// intervened (aggregate supersession on the serial path can retract the
	// very row a verdict points at).
	retractGen uint64

	// indexes maps a position bitmask to a dynamically built hash index
	// over those positions. Indexes are created on first lookup and
	// extended lazily to cover facts appended since the last probe —
	// the "dynamic indexing" of the slot machine join.
	indexes map[uint32]*dynIndex
	noIndex bool

	// log is the delta stream consumed by cursor-based engines: nil means
	// "identical to row order". It is materialized by the first Replace,
	// which re-appends the replaced row's index so the superseding fact is
	// delivered as a fresh delta without disturbing existing cursors.
	log []int32

	// liveRows caches the ascending row indexes of the live (non-retracted)
	// rows; liveUpTo counts how many stored rows have been folded into it.
	// The cache is extended lazily by full-scan lookups (and eagerly by
	// Freeze) and invalidated by retraction, so mask-0 probes stop
	// allocating a fresh slice per call.
	liveRows []int32
	liveUpTo int

	// epoch is the row watermark recorded by the last Freeze: rows
	// [0, epoch) are covered by every dynamic index and by the live-row
	// cache, making SnapshotLookupIDs a pure read. Appends after Freeze
	// move len(metas) past epoch; the next Freeze re-covers them.
	epoch int

	// retracted counts rows whose metadata is marked Retracted: physically
	// present (row indexes stay stable) but no longer part of the
	// database — excluded from lookups, duplicate checks and Facts.
	retracted int

	bytes int64 // rough retained-size accounting for the buffer manager

	// Planner statistics (see stats.go): per-column distinct sketches
	// maintained at insert/replace, the snapshot captured by the last
	// Freeze, its generation counter, and per-mask index-usage records.
	sketches []distinctSketch
	frozen   RelStats
	gen      uint64
	idxUse   map[uint32]*idxUsage

	scratch  []uint32 // reusable row buffer for Insert/Contains
	probeBuf []uint32 // reusable probe-ID buffer for value-based Lookup
	replBuf  []uint32 // reusable old-row copy for Replace

	// prep memoizes the interned row (in scratch) and its hash computed by
	// the last Contains miss, so the engines' admit pattern — Contains(f),
	// then Insert of a meta wrapping the same f — interns and hashes each
	// tuple once instead of twice. prepArgs identifies the fact by its
	// args-slice address; any other scratch writer invalidates the memo.
	prepArgs *term.Value
	prepLen  int
	prepHash uint64
	prepOK   bool
}

type dynIndex struct {
	mask    uint32
	entries map[uint64][]int32
	upTo    int // facts [0, upTo) are indexed
	bytes   int64

	// hits counts probes served by this index since it was built. Atomic
	// because frozen-epoch probes (SnapshotLookupIDs) run concurrently
	// from match workers; all other access is single-goroutine.
	hits atomic.Int64
}

// NewRelation creates an empty relation for pred with the given arity
// and a private interner (standalone use, e.g. baseline policies and
// tests). Relations inside a Database share its interner via
// NewRelationInterned.
func NewRelation(pred string, arity int) *Relation {
	return NewRelationInterned(pred, arity, NewInterner())
}

// NewRelationInterned creates an empty relation whose tuples intern
// through the shared symbol table in.
func NewRelationInterned(pred string, arity int, in *Interner) *Relation {
	return &Relation{
		name:    pred,
		arity:   arity,
		in:      in,
		exact:   make([]map[uint64][]int32, 1),
		indexes: make(map[uint32]*dynIndex),
	}
}

// exactShard returns the duplicate-table shard owning hash h, possibly
// nil (shard maps allocate lazily on first write, so sharding a database
// of many small relations does not cost len(exact) empty maps each).
// Reads — probes and range — are safe on the nil map.
func (r *Relation) exactShard(h uint64) map[uint64][]int32 {
	return r.exact[h&r.shardMask]
}

// exactShardMut returns the shard owning hash h for writing, allocating
// it on first use.
func (r *Relation) exactShardMut(h uint64) map[uint64][]int32 {
	s := h & r.shardMask
	if r.exact[s] == nil {
		r.exact[s] = make(map[uint64][]int32)
	}
	return r.exact[s]
}

// Shards returns the number of duplicate-table shards.
func (r *Relation) Shards() int { return len(r.exact) }

// SetShards re-buckets the exact-duplicate table into n shards (rounded up
// to a power of two, minimum 1). Like all mutation it is single-goroutine;
// engines call it once at construction, before any facts are stored.
func (r *Relation) SetShards(n int) {
	n = ceilPow2(n)
	if n == len(r.exact) {
		return
	}
	shards := make([]map[uint64][]int32, n)
	mask := uint64(n - 1)
	for _, old := range r.exact {
		//vadalint:ordered keyed moves: each hash lands in the one shard its low bits select
		for h, bucket := range old {
			s := h & mask
			if shards[s] == nil {
				shards[s] = make(map[uint64][]int32)
			}
			shards[s][h] = bucket
		}
	}
	r.exact = shards
	r.shardMask = mask
}

// ceilPow2 rounds n up to the nearest power of two, minimum 1, capped at
// 256 (more shards than that buys nothing for a dedup table).
func ceilPow2(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 256 {
		n = 256
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// RetractGen counts retractions performed so far — the merge-time guard
// for dedup verdicts computed by the partitioned admission pre-pass.
func (r *Relation) RetractGen() uint64 { return r.retractGen }

// HashRow returns the duplicate-table hash of a fully interned row. It is
// the hash ContainsRowHash and InsertPrepared expect; exporting the
// wrapper (not the variable) keeps collision-test overrides effective.
func HashRow(row []uint32) uint64 { return hashRow(row) }

// Name returns the predicate name.
func (r *Relation) Name() string { return r.name }

// Arity returns the declared arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of stored rows, retracted rows included (rows
// keep their index for the lifetime of the relation; see Live for the
// number of facts actually in the database).
func (r *Relation) Len() int { return len(r.metas) }

// Live returns the number of non-retracted facts.
func (r *Relation) Live() int { return len(r.metas) - r.retracted }

// At returns the i-th stored fact.
func (r *Relation) At(i int) *core.FactMeta { return r.metas[i] }

// LiveAt returns the n-th live (non-retracted) fact, nil when fewer than
// n+1 live facts exist. With no retractions (the overwhelmingly common
// case) it is a direct index; otherwise it scans, which only the rare
// retraction path pays.
func (r *Relation) LiveAt(n int) *core.FactMeta {
	if r.retracted == 0 {
		if n < len(r.metas) {
			return r.metas[n]
		}
		return nil
	}
	for i := range r.metas {
		if r.metas[i].Retracted {
			continue
		}
		if n == 0 {
			return r.metas[i]
		}
		n--
	}
	return nil
}

// DeltaLen returns the length of the relation's delta stream: every
// insertion contributes one event, and every in-place Replace re-appends
// the replaced row so cursor-based consumers observe the superseding fact
// as a fresh delta.
func (r *Relation) DeltaLen() int {
	if r.log == nil {
		return len(r.metas)
	}
	return len(r.log)
}

// DeltaAt returns the fact of the i-th delta event. Consumers must skip
// events whose metadata is marked Retracted.
func (r *Relation) DeltaAt(i int) *core.FactMeta {
	if r.log == nil {
		return r.metas[i]
	}
	return r.metas[r.log[i]]
}

// Row returns the interned tuple of the i-th stored fact. The slice
// aliases the relation's storage; callers must not modify or retain it
// across inserts.
func (r *Relation) Row(i int) []uint32 {
	return r.rows[i*r.arity : (i+1)*r.arity]
}

// Interner exposes the symbol table this relation's tuples intern
// through.
func (r *Relation) Interner() *Interner { return r.in }

// Bytes returns the rough retained size of the relation incl. indexes.
func (r *Relation) Bytes() int64 {
	b := r.bytes
	for _, ix := range r.indexes {
		b += ix.bytes
	}
	return b
}

// internRow encodes args into r.scratch, interning new values, padded
// with the invalid ID 0 up to the relation's arity.
func (r *Relation) internRow(args []term.Value) []uint32 {
	row := r.scratch[:0]
	for _, v := range args {
		row = append(row, r.in.Intern(v))
	}
	for len(row) < r.arity {
		row = append(row, 0)
	}
	r.scratch = row
	return row
}

// rowEqual reports whether stored row ri equals row (stride-length).
func (r *Relation) rowEqual(ri int, row []uint32) bool {
	stored := r.rows[ri*r.arity : (ri+1)*r.arity]
	for i, id := range stored {
		if id != row[i] {
			return false
		}
	}
	return true
}

// Insert appends m unless an exactly equal fact is already stored.
// It reports whether the fact was new.
func (r *Relation) Insert(m *core.FactMeta) bool {
	// The injection site fires before any mutation: an injected crash
	// mid-batch leaves the relation exactly as admitted so far, and the
	// engines' requeue paths re-derive the rest on resume.
	siteInsert.Hit()
	if len(m.Fact.Args) > r.arity {
		r.restride(len(m.Fact.Args))
	}
	var row []uint32
	var h uint64
	if r.prepOK && len(m.Fact.Args) > 0 && r.prepLen == len(m.Fact.Args) && &m.Fact.Args[0] == r.prepArgs {
		// The row was interned and hashed by the Contains call that just
		// missed on this very fact; reuse both. The length guard keeps the
		// nullary case from taking &Args[0] of an empty slice.
		row, h = r.scratch, r.prepHash
	} else {
		row = r.internRow(m.Fact.Args)
		h = hashRow(row)
	}
	r.prepOK = false
	return r.insertRow(m, row, h)
}

// insertRow is the shared admission tail of Insert and InsertPrepared:
// duplicate probe against the hash's shard, then append to every
// structure. row must have exactly the relation's arity.
func (r *Relation) insertRow(m *core.FactMeta, row []uint32, h uint64) bool {
	for _, ri := range r.exactShard(h)[h] {
		if r.rowEqual(int(ri), row) {
			return false
		}
	}
	shard := r.exactShardMut(h)
	shard[h] = append(shard[h], int32(len(r.metas)))
	if r.log != nil {
		r.log = append(r.log, int32(len(r.metas)))
	}
	r.metas = append(r.metas, m)
	r.rows = append(r.rows, row...)
	r.bytes += int64(4*r.arity) + 48
	r.observeRow(row)
	return true
}

// ContainsRowHash reports whether a fact whose interned row is exactly row
// (stride = the relation's arity; h = HashRow(row)) is stored — the
// read-only merge-time probe of the partitioned admission path. Unlike
// Contains it neither interns nor memoizes; callers have already resolved
// and hashed the row on a match worker.
func (r *Relation) ContainsRowHash(row []uint32, h uint64) bool {
	for _, ri := range r.exactShard(h)[h] {
		if r.rowEqual(int(ri), row) {
			return true
		}
	}
	return false
}

// InsertPrepared appends m using a row interned and hashed during the
// match phase, skipping the serial re-intern/re-hash of Insert. When the
// relation's arity drifted since the row was prepared (restride by an
// inconsistent-arity program) it falls back to the classic path. It
// reports whether the fact was new.
func (r *Relation) InsertPrepared(m *core.FactMeta, row []uint32, h uint64) bool {
	if len(row) != r.arity {
		return r.Insert(m)
	}
	// Same crash seam as Insert: fire before any mutation.
	siteInsert.Hit()
	r.prepOK = false
	return r.insertRow(m, row, h)
}

// ReplaceOutcome reports what Replace did with a superseded row.
type ReplaceOutcome int

// Replace outcomes.
const (
	// ReplaceUnchanged: the new fact equals the stored one (or the row is
	// already retracted); nothing changed.
	ReplaceUnchanged ReplaceOutcome = iota
	// ReplaceDone: the row was overwritten in place and re-appended to the
	// delta stream.
	ReplaceDone
	// ReplaceRetracted: the new fact is already stored in another row, so
	// the superseded row was retracted instead of duplicated.
	ReplaceRetracted
)

// Replace supersedes the fact stored at row i with f — the retraction
// primitive behind deterministic monotonic aggregation: an improving
// aggregate overwrites the intermediate it replaces instead of
// accumulating next to it. The row keeps its index (engine cursors, the
// delta log and recorded Emitted rows stay valid), the duplicate-check
// entry is rehashed, every dynamic index covering the row is updated in
// place, and the row's FactMeta is updated via core.ReplaceFact (same
// roots and provenance — a supersession, not a new derivation). When f is
// already stored elsewhere in the relation, the superseded row is
// retracted instead, so the relation never holds duplicate facts.
func (r *Relation) Replace(i int, f ast.Fact) ReplaceOutcome {
	if i < 0 || i >= len(r.metas) || r.metas[i].Retracted {
		return ReplaceUnchanged
	}
	if len(f.Args) > r.arity {
		r.restride(len(f.Args))
	}
	r.prepOK = false
	newRow := r.internRow(f.Args)
	if r.rowEqual(i, newRow) {
		return ReplaceUnchanged
	}
	newH := hashRow(newRow)
	for _, rj := range r.exactShard(newH)[newH] {
		if int(rj) != i && r.rowEqual(int(rj), newRow) {
			r.retract(i)
			return ReplaceRetracted
		}
	}
	old := append(r.replBuf[:0], r.Row(i)...)
	r.replBuf = old
	oldH := hashRow(old)
	removeRow(r.exactShard(oldH), oldH, i)
	copy(r.rows[i*r.arity:(i+1)*r.arity], newRow)
	moved := r.exactShardMut(newH)
	moved[newH] = append(moved[newH], int32(i))
	//vadalint:ordered each dynamic index is updated independently from its own mask and buckets
	for _, ix := range r.indexes {
		if i >= ix.upTo || maskedIDsEqual(old, newRow, ix.mask) {
			continue
		}
		removeRow(ix.entries, hashMasked(old, ix.mask), i)
		nh := hashMasked(newRow, ix.mask)
		ix.entries[nh] = append(ix.entries[nh], int32(i))
	}
	r.metas[i].ReplaceFact(f)
	r.observeRow(newRow)
	if r.log == nil {
		r.log = make([]int32, len(r.metas), len(r.metas)+8)
		for k := range r.log {
			r.log[k] = int32(k)
		}
	}
	r.log = append(r.log, int32(i))
	return ReplaceDone
}

// retract removes row i from the duplicate-check table and every dynamic
// index and marks its metadata Retracted. The row keeps its position so
// indexes into the relation stay stable; it is simply no longer a fact.
// The live-row cache is invalidated (rebuilt on the next full-scan probe);
// retraction is the rare path, so the rebuild cost stays off the hot loop.
func (r *Relation) retract(i int) {
	row := r.Row(i)
	h := hashRow(row)
	removeRow(r.exactShard(h), h, i)
	r.retractGen++
	//vadalint:ordered each dynamic index drops the row from its own buckets independently
	for _, ix := range r.indexes {
		if i < ix.upTo {
			removeRow(ix.entries, hashMasked(row, ix.mask), i)
		}
	}
	r.metas[i].Retracted = true
	r.retracted++
	r.liveRows = nil
	r.liveUpTo = 0
}

// liveSnapshot extends the cached live-row list over rows appended since
// the last call and returns it. The returned slice is shared: callers must
// not modify it, and it reflects liveness at call time (rows retracted
// afterwards invalidate the cache, not slices already handed out — the
// exact semantics the per-call allocation it replaces had).
func (r *Relation) liveSnapshot() []int32 {
	if r.liveRows == nil && r.liveUpTo == 0 && len(r.metas) > 0 {
		r.liveRows = make([]int32, 0, len(r.metas)-r.retracted)
	}
	for ; r.liveUpTo < len(r.metas); r.liveUpTo++ {
		if !r.metas[r.liveUpTo].Retracted {
			r.liveRows = append(r.liveRows, int32(r.liveUpTo))
		}
	}
	return r.liveRows
}

// removeRow deletes row index i from the hash bucket at h.
func removeRow(m map[uint64][]int32, h uint64, i int) {
	bucket := m[h]
	for k, ri := range bucket {
		if ri == int32(i) {
			m[h] = append(bucket[:k], bucket[k+1:]...)
			return
		}
	}
}

// maskedIDsEqual reports whether a and b agree on every masked position.
func maskedIDsEqual(a, b []uint32, mask uint32) bool {
	for i := range a {
		if mask&(1<<uint(i)) != 0 && a[i] != b[i] {
			return false
		}
	}
	return true
}

// FindExact returns the row index of the stored fact exactly equal to f.
// Like Contains it never interns.
func (r *Relation) FindExact(f ast.Fact) (int, bool) {
	r.prepOK = false
	if len(f.Args) > r.arity {
		return 0, false
	}
	row := r.scratch[:0]
	for _, v := range f.Args {
		id, ok := r.in.IDOf(v)
		if !ok {
			return 0, false
		}
		row = append(row, id)
	}
	for len(row) < r.arity {
		row = append(row, 0)
	}
	r.scratch = row
	h := hashRow(row)
	for _, ri := range r.exactShard(h)[h] {
		if r.rowEqual(int(ri), row) {
			return int(ri), true
		}
	}
	return 0, false
}

// Contains reports whether an exactly equal fact is stored. It never
// interns: a value absent from the symbol table occurs in no stored
// fact. A miss whose tuple resolved fully is memoized so an immediately
// following Insert of the same fact skips re-interning and re-hashing.
func (r *Relation) Contains(f ast.Fact) bool {
	r.prepOK = false
	if len(f.Args) > r.arity {
		return false
	}
	row := r.scratch[:0]
	for _, v := range f.Args {
		id, ok := r.in.IDOf(v)
		if !ok {
			return false
		}
		row = append(row, id)
	}
	for len(row) < r.arity {
		row = append(row, 0)
	}
	r.scratch = row
	h := hashRow(row)
	for _, ri := range r.exactShard(h)[h] {
		if r.rowEqual(int(ri), row) {
			return true
		}
	}
	if len(f.Args) > 0 {
		r.prepArgs = &f.Args[0]
		r.prepLen = len(f.Args)
		r.prepHash = h
		r.prepOK = true
	}
	return false
}

// restride migrates the relation to a larger arity (inconsistent-arity
// programs only): rows are re-flattened with 0-padding, the exact map is
// rehashed and dynamic indexes dropped (rebuilt on demand).
func (r *Relation) restride(arity int) {
	old, oldStride := r.rows, r.arity
	r.arity = arity
	r.rows = make([]uint32, 0, len(r.metas)*arity)
	r.exact = make([]map[uint64][]int32, len(r.exact))
	for i := range r.metas {
		start := len(r.rows)
		r.rows = append(r.rows, old[i*oldStride:(i+1)*oldStride]...)
		for len(r.rows)-start < arity {
			r.rows = append(r.rows, 0)
		}
		if r.metas[i].Retracted {
			continue // retracted rows keep their position but no key
		}
		h := hashRow(r.rows[start:])
		sh := r.exactShardMut(h)
		sh[h] = append(sh[h], int32(i))
	}
	r.indexes = make(map[uint32]*dynIndex)
	r.scratch = nil
	r.probeBuf = nil
	r.replBuf = nil
	r.prepOK = false
}

// NoIndex disables dynamic indexing for this relation: every Lookup scans
// (the ablation baseline for the slot machine join).
func (r *Relation) SetNoIndex(v bool) { r.noIndex = v }

// maskedEqual reports whether the masked positions of stored row ri
// equal the corresponding positions of probe.
func (r *Relation) maskedEqual(ri int, mask uint32, probe []uint32) bool {
	row := r.rows[ri*r.arity : (ri+1)*r.arity]
	for i, id := range row {
		if mask&(1<<uint(i)) != 0 && id != probe[i] {
			return false
		}
	}
	return true
}

// LookupIDs returns the indexes of all facts whose masked positions
// equal the corresponding positions of probe (interned IDs). It builds
// or extends the dynamic index for mask as a side effect (optimistic
// probe, then scan of the unindexed suffix, as in the paper's slot
// machine join). Candidates from the hash bucket are verified by ID
// comparison, so hash collisions never leak into the result.
//
// The returned slice aliases shared storage (an index bucket, or the
// live-row cache for the trivial mask): callers must not modify it, and
// it reflects liveness at call time only.
func (r *Relation) LookupIDs(mask uint32, probe []uint32) []int32 {
	if mask == 0 {
		return r.liveSnapshot()
	}
	if r.noIndex {
		return r.scanMasked(mask, probe)
	}
	ix := r.ensureIndexSized(mask, 0)
	ix.hits.Add(1)
	return r.filterBucket(ix.entries[hashMasked(probe, mask)], mask, probe)
}

// extendIndex covers facts appended since the index's last probe;
// retracted rows (removed from every index at retraction) never enter.
func (r *Relation) extendIndex(ix *dynIndex) {
	for ; ix.upTo < len(r.metas); ix.upTo++ {
		if r.metas[ix.upTo].Retracted {
			continue
		}
		h := hashMasked(r.rows[ix.upTo*r.arity:(ix.upTo+1)*r.arity], ix.mask)
		ix.entries[h] = append(ix.entries[h], int32(ix.upTo))
		ix.bytes += 20
	}
}

// filterBucket verifies a hash bucket's candidates by ID comparison. Fast
// path: the whole bucket matches (collisions are rare), so the bucket is
// returned as-is without allocating.
func (r *Relation) filterBucket(bucket []int32, mask uint32, probe []uint32) []int32 {
	for k, ri := range bucket {
		if r.maskedEqual(int(ri), mask, probe) {
			continue
		}
		filtered := make([]int32, k, len(bucket))
		copy(filtered, bucket[:k])
		for _, rj := range bucket[k+1:] {
			if r.maskedEqual(int(rj), mask, probe) {
				filtered = append(filtered, rj)
			}
		}
		return filtered
	}
	return bucket
}

// scanMasked is the index-free probe: a full scan verifying the masked
// positions of every live row.
func (r *Relation) scanMasked(mask uint32, probe []uint32) []int32 {
	var out []int32
	for i := range r.metas {
		if !r.metas[i].Retracted && r.maskedEqual(i, mask, probe) {
			out = append(out, int32(i))
		}
	}
	return out
}

// Freeze prepares the relation for a read-only evaluation epoch: every
// dynamic index and the live-row cache are eagerly extended to cover all
// stored rows, and the row watermark is recorded. After Freeze — and until
// the next Insert/Replace — SnapshotLookupIDs probes are pure reads, safe
// to issue from any number of goroutines concurrently. Freeze itself (and
// all mutation) must stay single-goroutine.
func (r *Relation) Freeze() {
	r.liveSnapshot()
	//vadalint:ordered extendIndex touches only its argument index; the extensions commute
	for _, ix := range r.indexes {
		r.extendIndex(ix)
	}
	r.epoch = len(r.metas)
	r.gen++
	r.frozen = r.Stats()
}

// Epoch returns the row watermark of the last Freeze: rows [0, Epoch())
// are covered by every dynamic index and the live-row cache.
func (r *Relation) Epoch() int { return r.epoch }

// EnsureIndex builds (or extends to full coverage) the dynamic index for
// mask without probing it — the batch-boundary promotion for masks that
// SnapshotLookupIDs had to scan during a frozen epoch. A no-op for the
// trivial mask and under SetNoIndex.
func (r *Relation) EnsureIndex(mask uint32) {
	if mask == 0 || r.noIndex {
		return
	}
	r.ensureIndexSized(mask, 0)
}

// EnsureIndexSized is EnsureIndex with a bucket-count hint for a fresh
// index — the planner's presized-join hook: when the plan estimates how
// many distinct keys an index will hold, the bucket table is allocated
// once instead of growing through rehashes. The hint is ignored for an
// already existing index.
func (r *Relation) EnsureIndexSized(mask uint32, sizeHint int) {
	if mask == 0 || r.noIndex {
		return
	}
	r.ensureIndexSized(mask, sizeHint)
}

// ensureIndexSized builds (presized when sizeHint > 0) or extends the
// dynamic index for mask and returns it.
func (r *Relation) ensureIndexSized(mask uint32, sizeHint int) *dynIndex {
	ix := r.indexes[mask]
	if ix == nil {
		ix = &dynIndex{mask: mask, entries: make(map[uint64][]int32, sizeHint)}
		r.indexes[mask] = ix
		u := r.usage(mask)
		u.builds++
		u.built = true
	}
	r.extendIndex(ix)
	return ix
}

// SnapshotLookupIDs is the read-only counterpart of LookupIDs for frozen
// epochs: it answers the same probe without building or extending any
// index, so concurrent probes from worker goroutines are safe between
// Freeze and the next mutation. The boolean reports whether an index (or
// the live-row cache) served the probe; false means the probe fell back to
// a full scan because no current index covers mask — callers should record
// the miss and EnsureIndex at the next batch boundary. Returned slices
// alias shared storage exactly like LookupIDs' and must not be modified.
func (r *Relation) SnapshotLookupIDs(mask uint32, probe []uint32) ([]int32, bool) {
	if mask == 0 {
		if r.liveUpTo == len(r.metas) {
			return r.liveRows, true
		}
		// Unfrozen caller: serve a private scan rather than touch the cache.
		out := make([]int32, 0, len(r.metas)-r.retracted)
		for i := range r.metas {
			if !r.metas[i].Retracted {
				out = append(out, int32(i))
			}
		}
		return out, true
	}
	if r.noIndex {
		return r.scanMasked(mask, probe), true
	}
	if ix := r.indexes[mask]; ix != nil && ix.upTo == len(r.metas) {
		ix.hits.Add(1)
		return r.filterBucket(ix.entries[hashMasked(probe, mask)], mask, probe), true
	}
	return r.scanMasked(mask, probe), false
}

// SnapshotLookupCountIDs counts matches with SnapshotLookupIDs semantics
// without materializing a row slice even on the scan fallback.
func (r *Relation) SnapshotLookupCountIDs(mask uint32, probe []uint32) (int, bool) {
	if mask == 0 {
		return len(r.metas) - r.retracted, true
	}
	if !r.noIndex {
		if ix := r.indexes[mask]; ix != nil && ix.upTo == len(r.metas) {
			ix.hits.Add(1)
			n := 0
			for _, ri := range ix.entries[hashMasked(probe, mask)] {
				if r.maskedEqual(int(ri), mask, probe) {
					n++
				}
			}
			return n, true
		}
	}
	n := 0
	for i := range r.metas {
		if !r.metas[i].Retracted && r.maskedEqual(i, mask, probe) {
			n++
		}
	}
	return n, r.noIndex
}

// Lookup is the value-based probe: vals must have the relation's arity
// with only masked positions inspected. A masked value that was never
// interned matches nothing.
func (r *Relation) Lookup(mask uint32, probe []term.Value) []int32 {
	if mask == 0 {
		return r.LookupIDs(0, nil)
	}
	if len(probe) < r.arity && mask>>uint(len(probe)) != 0 {
		return nil // masked positions beyond the probe match nothing
	}
	if cap(r.probeBuf) < r.arity {
		r.probeBuf = make([]uint32, r.arity)
	}
	ids := r.probeBuf[:r.arity]
	for i := 0; i < len(probe) && i < r.arity; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		id, ok := r.in.IDOf(probe[i])
		if !ok {
			return nil
		}
		ids[i] = id
	}
	return r.LookupIDs(mask, ids)
}

// LookupCount returns how many facts match without materializing a slice
// beyond the index bucket.
func (r *Relation) LookupCount(mask uint32, probe []term.Value) int {
	return len(r.Lookup(mask, probe))
}

// LookupCountIDs is the ID-based counterpart of LookupCount.
func (r *Relation) LookupCountIDs(mask uint32, probe []uint32) int {
	return len(r.LookupIDs(mask, probe))
}

// DropIndexes discards all dynamic indexes (they are rebuilt on demand);
// used by the buffer manager under memory pressure. Each evicted build's
// hit count is folded into the mask's usage record, so a later
// PromoteIndex can tell a cold index (built, never hit) from a hot one.
func (r *Relation) DropIndexes() {
	if len(r.indexes) == 0 {
		return
	}
	//vadalint:ordered each index's hits fold into its own mask's usage record
	for mask, ix := range r.indexes {
		u := r.usage(mask)
		h := ix.hits.Load()
		u.hits += h
		u.lastHits = h
	}
	r.indexes = make(map[uint32]*dynIndex)
}

// IndexCount returns how many dynamic indexes currently exist.
func (r *Relation) IndexCount() int { return len(r.indexes) }

// Facts returns a snapshot slice of the stored facts (no metadata),
// retracted rows excluded.
func (r *Relation) Facts() []ast.Fact {
	out := make([]ast.Fact, 0, len(r.metas)-r.retracted)
	for _, m := range r.metas {
		if !m.Retracted {
			out = append(out, m.Fact)
		}
	}
	return out
}
