// Package storage implements the in-memory fact store of the Vadalog
// system: append-only relations with exact-duplicate elimination, the
// dynamic in-memory indexes that back the slot-machine join (paper
// Sec. 4), the active constant domain (ACDom) and a buffer manager with
// per-segment accounting and LRU index eviction.
//
// Facts are stored as interned tuples: every term.Value is mapped to a
// dense uint32 ID by the database-wide Interner, and each relation keeps
// its rows as a flat []uint32 (arity IDs per fact). Duplicate checks and
// dynamic-index probes hash those IDs with FNV-1a into uint64 keys;
// hash buckets chain row indexes and every candidate is verified by ID
// comparison, so collisions are resolved exactly and no probe allocates.
package storage

import (
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/term"
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mixID folds one interned ID into an FNV-1a hash state, byte by byte.
func mixID(h uint64, id uint32) uint64 {
	h ^= uint64(id & 0xff)
	h *= fnvPrime64
	h ^= uint64((id >> 8) & 0xff)
	h *= fnvPrime64
	h ^= uint64((id >> 16) & 0xff)
	h *= fnvPrime64
	h ^= uint64(id >> 24)
	h *= fnvPrime64
	return h
}

// hashRow is the FNV-1a hash of a full interned row. It is a variable
// only so collision-handling tests can force every row into one bucket.
var hashRow = func(row []uint32) uint64 {
	h := uint64(fnvOffset64)
	for _, id := range row {
		h = mixID(h, id)
	}
	return h
}

// hashMasked is the FNV-1a hash of the masked positions of an interned
// row. Like hashRow it is a variable only for collision tests.
var hashMasked = func(row []uint32, mask uint32) uint64 {
	h := uint64(fnvOffset64)
	for i, id := range row {
		if mask&(1<<uint(i)) != 0 {
			h = mixID(h, id)
		}
	}
	return h
}

// Relation stores the facts of one predicate together with their
// termination-strategy metadata. Facts are kept in insertion order;
// duplicates (by exact interned tuple, null identities included) are
// rejected.
type Relation struct {
	name  string
	arity int
	in    *Interner
	metas []*core.FactMeta

	// rows holds the interned tuples flattened: row i occupies
	// rows[i*arity : (i+1)*arity]. Facts shorter than arity (possible
	// only for inconsistent programs) are padded with the invalid ID 0,
	// which no real value interns to, so padding is exact.
	rows []uint32

	// exact chains row indexes per full-row hash for duplicate detection.
	exact map[uint64][]int32

	// indexes maps a position bitmask to a dynamically built hash index
	// over those positions. Indexes are created on first lookup and
	// extended lazily to cover facts appended since the last probe —
	// the "dynamic indexing" of the slot machine join.
	indexes map[uint32]*dynIndex
	noIndex bool

	bytes int64 // rough retained-size accounting for the buffer manager

	scratch  []uint32 // reusable row buffer for Insert/Contains
	probeBuf []uint32 // reusable probe-ID buffer for value-based Lookup
}

type dynIndex struct {
	mask    uint32
	entries map[uint64][]int32
	upTo    int // facts [0, upTo) are indexed
	bytes   int64
}

// NewRelation creates an empty relation for pred with the given arity
// and a private interner (standalone use, e.g. baseline policies and
// tests). Relations inside a Database share its interner via
// NewRelationInterned.
func NewRelation(pred string, arity int) *Relation {
	return NewRelationInterned(pred, arity, NewInterner())
}

// NewRelationInterned creates an empty relation whose tuples intern
// through the shared symbol table in.
func NewRelationInterned(pred string, arity int, in *Interner) *Relation {
	return &Relation{
		name:    pred,
		arity:   arity,
		in:      in,
		exact:   make(map[uint64][]int32),
		indexes: make(map[uint32]*dynIndex),
	}
}

// Name returns the predicate name.
func (r *Relation) Name() string { return r.name }

// Arity returns the declared arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of stored facts.
func (r *Relation) Len() int { return len(r.metas) }

// At returns the i-th stored fact.
func (r *Relation) At(i int) *core.FactMeta { return r.metas[i] }

// Row returns the interned tuple of the i-th stored fact. The slice
// aliases the relation's storage; callers must not modify or retain it
// across inserts.
func (r *Relation) Row(i int) []uint32 {
	return r.rows[i*r.arity : (i+1)*r.arity]
}

// Interner exposes the symbol table this relation's tuples intern
// through.
func (r *Relation) Interner() *Interner { return r.in }

// Bytes returns the rough retained size of the relation incl. indexes.
func (r *Relation) Bytes() int64 {
	b := r.bytes
	for _, ix := range r.indexes {
		b += ix.bytes
	}
	return b
}

// internRow encodes args into r.scratch, interning new values, padded
// with the invalid ID 0 up to the relation's arity.
func (r *Relation) internRow(args []term.Value) []uint32 {
	row := r.scratch[:0]
	for _, v := range args {
		row = append(row, r.in.Intern(v))
	}
	for len(row) < r.arity {
		row = append(row, 0)
	}
	r.scratch = row
	return row
}

// rowEqual reports whether stored row ri equals row (stride-length).
func (r *Relation) rowEqual(ri int, row []uint32) bool {
	stored := r.rows[ri*r.arity : (ri+1)*r.arity]
	for i, id := range stored {
		if id != row[i] {
			return false
		}
	}
	return true
}

// Insert appends m unless an exactly equal fact is already stored.
// It reports whether the fact was new.
func (r *Relation) Insert(m *core.FactMeta) bool {
	if len(m.Fact.Args) > r.arity {
		r.restride(len(m.Fact.Args))
	}
	row := r.internRow(m.Fact.Args)
	h := hashRow(row)
	for _, ri := range r.exact[h] {
		if r.rowEqual(int(ri), row) {
			return false
		}
	}
	r.exact[h] = append(r.exact[h], int32(len(r.metas)))
	r.metas = append(r.metas, m)
	r.rows = append(r.rows, row...)
	r.bytes += int64(4*r.arity) + 48
	return true
}

// Contains reports whether an exactly equal fact is stored. It never
// interns: a value absent from the symbol table occurs in no stored
// fact.
func (r *Relation) Contains(f ast.Fact) bool {
	if len(f.Args) > r.arity {
		return false
	}
	row := r.scratch[:0]
	for _, v := range f.Args {
		id, ok := r.in.IDOf(v)
		if !ok {
			return false
		}
		row = append(row, id)
	}
	for len(row) < r.arity {
		row = append(row, 0)
	}
	r.scratch = row
	h := hashRow(row)
	for _, ri := range r.exact[h] {
		if r.rowEqual(int(ri), row) {
			return true
		}
	}
	return false
}

// restride migrates the relation to a larger arity (inconsistent-arity
// programs only): rows are re-flattened with 0-padding, the exact map is
// rehashed and dynamic indexes dropped (rebuilt on demand).
func (r *Relation) restride(arity int) {
	old, oldStride := r.rows, r.arity
	r.arity = arity
	r.rows = make([]uint32, 0, len(r.metas)*arity)
	r.exact = make(map[uint64][]int32, len(r.metas))
	for i := range r.metas {
		start := len(r.rows)
		r.rows = append(r.rows, old[i*oldStride:(i+1)*oldStride]...)
		for len(r.rows)-start < arity {
			r.rows = append(r.rows, 0)
		}
		h := hashRow(r.rows[start:])
		r.exact[h] = append(r.exact[h], int32(i))
	}
	r.indexes = make(map[uint32]*dynIndex)
	r.scratch = nil
	r.probeBuf = nil
}

// NoIndex disables dynamic indexing for this relation: every Lookup scans
// (the ablation baseline for the slot machine join).
func (r *Relation) SetNoIndex(v bool) { r.noIndex = v }

// maskedEqual reports whether the masked positions of stored row ri
// equal the corresponding positions of probe.
func (r *Relation) maskedEqual(ri int, mask uint32, probe []uint32) bool {
	row := r.rows[ri*r.arity : (ri+1)*r.arity]
	for i, id := range row {
		if mask&(1<<uint(i)) != 0 && id != probe[i] {
			return false
		}
	}
	return true
}

// LookupIDs returns the indexes of all facts whose masked positions
// equal the corresponding positions of probe (interned IDs). It builds
// or extends the dynamic index for mask as a side effect (optimistic
// probe, then scan of the unindexed suffix, as in the paper's slot
// machine join). Candidates from the hash bucket are verified by ID
// comparison, so hash collisions never leak into the result.
func (r *Relation) LookupIDs(mask uint32, probe []uint32) []int32 {
	if mask == 0 {
		out := make([]int32, len(r.metas))
		for i := range r.metas {
			out[i] = int32(i)
		}
		return out
	}
	if r.noIndex {
		var out []int32
		for i := range r.metas {
			if r.maskedEqual(i, mask, probe) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	ix := r.indexes[mask]
	if ix == nil {
		ix = &dynIndex{mask: mask, entries: make(map[uint64][]int32)}
		r.indexes[mask] = ix
	}
	// Extend the index over facts appended since the last probe.
	for ; ix.upTo < len(r.metas); ix.upTo++ {
		h := hashMasked(r.rows[ix.upTo*r.arity:(ix.upTo+1)*r.arity], mask)
		ix.entries[h] = append(ix.entries[h], int32(ix.upTo))
		ix.bytes += 20
	}
	bucket := ix.entries[hashMasked(probe, mask)]
	// Fast path: the whole bucket matches (collisions are rare), so the
	// bucket is returned as-is without allocating.
	for k, ri := range bucket {
		if r.maskedEqual(int(ri), mask, probe) {
			continue
		}
		filtered := make([]int32, k, len(bucket))
		copy(filtered, bucket[:k])
		for _, rj := range bucket[k+1:] {
			if r.maskedEqual(int(rj), mask, probe) {
				filtered = append(filtered, rj)
			}
		}
		return filtered
	}
	return bucket
}

// Lookup is the value-based probe: vals must have the relation's arity
// with only masked positions inspected. A masked value that was never
// interned matches nothing.
func (r *Relation) Lookup(mask uint32, probe []term.Value) []int32 {
	if mask == 0 {
		return r.LookupIDs(0, nil)
	}
	if len(probe) < r.arity && mask>>uint(len(probe)) != 0 {
		return nil // masked positions beyond the probe match nothing
	}
	if cap(r.probeBuf) < r.arity {
		r.probeBuf = make([]uint32, r.arity)
	}
	ids := r.probeBuf[:r.arity]
	for i := 0; i < len(probe) && i < r.arity; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		id, ok := r.in.IDOf(probe[i])
		if !ok {
			return nil
		}
		ids[i] = id
	}
	return r.LookupIDs(mask, ids)
}

// LookupCount returns how many facts match without materializing a slice
// beyond the index bucket.
func (r *Relation) LookupCount(mask uint32, probe []term.Value) int {
	return len(r.Lookup(mask, probe))
}

// LookupCountIDs is the ID-based counterpart of LookupCount.
func (r *Relation) LookupCountIDs(mask uint32, probe []uint32) int {
	return len(r.LookupIDs(mask, probe))
}

// DropIndexes discards all dynamic indexes (they are rebuilt on demand);
// used by the buffer manager under memory pressure.
func (r *Relation) DropIndexes() {
	if len(r.indexes) > 0 {
		r.indexes = make(map[uint32]*dynIndex)
	}
}

// IndexCount returns how many dynamic indexes currently exist.
func (r *Relation) IndexCount() int { return len(r.indexes) }

// Facts returns a snapshot slice of the stored facts (no metadata).
func (r *Relation) Facts() []ast.Fact {
	out := make([]ast.Fact, len(r.metas))
	for i, m := range r.metas {
		out[i] = m.Fact
	}
	return out
}
