// Package storage implements the in-memory fact store of the Vadalog
// system: append-only relations with exact-duplicate elimination, the
// dynamic in-memory indexes that back the slot-machine join (paper
// Sec. 4), the active constant domain (ACDom) and a buffer manager with
// per-segment accounting and LRU index eviction.
package storage

import (
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/term"
)

// Relation stores the facts of one predicate together with their
// termination-strategy metadata. Facts are kept in insertion order;
// duplicates (by exact key, null identities included) are rejected.
type Relation struct {
	name  string
	arity int
	metas []*core.FactMeta
	exact map[string]int32

	// indexes maps a position bitmask to a dynamically built hash index
	// over those positions. Indexes are created on first lookup and
	// extended lazily to cover facts appended since the last probe —
	// the "dynamic indexing" of the slot machine join.
	indexes map[uint32]*dynIndex
	noIndex bool

	bytes int64 // rough retained-size accounting for the buffer manager
}

type dynIndex struct {
	mask    uint32
	entries map[string][]int32
	upTo    int // facts [0, upTo) are indexed
	bytes   int64
}

// NewRelation creates an empty relation for pred with the given arity.
func NewRelation(pred string, arity int) *Relation {
	return &Relation{
		name:    pred,
		arity:   arity,
		exact:   make(map[string]int32),
		indexes: make(map[uint32]*dynIndex),
	}
}

// Name returns the predicate name.
func (r *Relation) Name() string { return r.name }

// Arity returns the declared arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of stored facts.
func (r *Relation) Len() int { return len(r.metas) }

// At returns the i-th stored fact.
func (r *Relation) At(i int) *core.FactMeta { return r.metas[i] }

// Bytes returns the rough retained size of the relation incl. indexes.
func (r *Relation) Bytes() int64 {
	b := r.bytes
	for _, ix := range r.indexes {
		b += ix.bytes
	}
	return b
}

// Insert appends m unless an exactly equal fact is already stored.
// It reports whether the fact was new.
func (r *Relation) Insert(m *core.FactMeta) bool {
	key := m.Fact.Key()
	if _, dup := r.exact[key]; dup {
		return false
	}
	r.exact[key] = int32(len(r.metas))
	r.metas = append(r.metas, m)
	r.bytes += int64(len(key)) + 64
	return true
}

// Contains reports whether an exactly equal fact is stored.
func (r *Relation) Contains(f ast.Fact) bool {
	_, ok := r.exact[f.Key()]
	return ok
}

// lookupKey encodes the values of the masked positions.
func lookupKey(args []term.Value, mask uint32) string {
	var sb strings.Builder
	for i := 0; i < len(args); i++ {
		if mask&(1<<uint(i)) != 0 {
			sb.WriteString(args[i].String())
			sb.WriteByte('\x00')
		}
	}
	return sb.String()
}

// LookupKeyOf builds the probe key for a lookup with the given bound
// values; vals must have the relation's arity with only masked positions
// inspected.
func LookupKeyOf(vals []term.Value, mask uint32) string { return lookupKey(vals, mask) }

// NoIndex disables dynamic indexing for this relation: every Lookup scans
// (the ablation baseline for the slot machine join).
func (r *Relation) SetNoIndex(v bool) { r.noIndex = v }

// Lookup returns the indexes of all facts whose masked positions equal the
// corresponding positions of probe. It builds or extends the dynamic index
// for mask as a side effect (optimistic probe, then scan of the unindexed
// suffix, as in the paper's slot machine join).
func (r *Relation) Lookup(mask uint32, probe []term.Value) []int32 {
	if mask == 0 {
		out := make([]int32, len(r.metas))
		for i := range r.metas {
			out[i] = int32(i)
		}
		return out
	}
	if r.noIndex {
		key := lookupKey(probe, mask)
		var out []int32
		for i, m := range r.metas {
			if lookupKey(m.Fact.Args, mask) == key {
				out = append(out, int32(i))
			}
		}
		return out
	}
	ix := r.indexes[mask]
	if ix == nil {
		ix = &dynIndex{mask: mask, entries: make(map[string][]int32)}
		r.indexes[mask] = ix
	}
	// Extend the index over facts appended since the last probe.
	for ; ix.upTo < len(r.metas); ix.upTo++ {
		f := r.metas[ix.upTo]
		k := lookupKey(f.Fact.Args, mask)
		ix.entries[k] = append(ix.entries[k], int32(ix.upTo))
		ix.bytes += int64(len(k)) + 16
	}
	return ix.entries[lookupKey(probe, mask)]
}

// LookupCount returns how many facts match without materializing a slice
// beyond the index bucket.
func (r *Relation) LookupCount(mask uint32, probe []term.Value) int {
	return len(r.Lookup(mask, probe))
}

// DropIndexes discards all dynamic indexes (they are rebuilt on demand);
// used by the buffer manager under memory pressure.
func (r *Relation) DropIndexes() {
	if len(r.indexes) > 0 {
		r.indexes = make(map[uint32]*dynIndex)
	}
}

// IndexCount returns how many dynamic indexes currently exist.
func (r *Relation) IndexCount() int { return len(r.indexes) }

// Facts returns a snapshot slice of the stored facts (no metadata).
func (r *Relation) Facts() []ast.Fact {
	out := make([]ast.Fact, len(r.metas))
	for i, m := range r.metas {
		out[i] = m.Fact
	}
	return out
}
