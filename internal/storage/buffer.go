package storage

import "sort"

// BufferManager implements the fragmented buffer management scheme of
// Sec. 4: each pipeline filter owns a buffer segment; segments are mapped
// into one overall buffer cache with a capacity. Under pressure the
// manager evicts rebuildable state — the dynamic join indexes — from the
// least-recently-used segments (facts themselves are never dropped; they
// are the reasoning result).
type BufferManager struct {
	capacity int64
	clock    int64
	segments map[string]*Segment

	// Evictions counts how many segments had their indexes dropped.
	Evictions int
}

// Segment is one filter's buffer segment.
type Segment struct {
	Name     string
	rel      *Relation
	lastUsed int64
	pinned   bool
}

// NewBufferManager creates a manager with the given capacity in bytes;
// capacity <= 0 disables eviction.
func NewBufferManager(capacity int64) *BufferManager {
	return &BufferManager{capacity: capacity, segments: make(map[string]*Segment)}
}

// Register attaches a relation to the named segment.
func (bm *BufferManager) Register(name string, rel *Relation) *Segment {
	s := &Segment{Name: name, rel: rel}
	bm.segments[name] = s
	return s
}

// Pin marks a segment non-evictable (e.g. the termination-strategy
// structures' host).
func (bm *BufferManager) Pin(name string) {
	if s := bm.segments[name]; s != nil {
		s.pinned = true
	}
}

// Touch records an access to the named segment and runs eviction when the
// total retained size exceeds capacity.
func (bm *BufferManager) Touch(name string) {
	bm.clock++
	if s := bm.segments[name]; s != nil {
		s.lastUsed = bm.clock
	}
	bm.maybeEvict()
}

// Usage returns the current retained bytes across all segments.
func (bm *BufferManager) Usage() int64 {
	var b int64
	//vadalint:ordered integer fold; Bytes is a pure size read
	for _, s := range bm.segments {
		if s.rel != nil {
			b += s.rel.Bytes()
		}
	}
	return b
}

func (bm *BufferManager) maybeEvict() {
	if bm.capacity <= 0 || bm.Usage() <= bm.capacity {
		return
	}
	// LRU over evictable segments that still hold indexes.
	var victims []*Segment
	for _, s := range bm.segments {
		if !s.pinned && s.rel != nil && s.rel.IndexCount() > 0 {
			victims = append(victims, s)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].lastUsed < victims[j].lastUsed })
	for _, s := range victims {
		if bm.Usage() <= bm.capacity {
			return
		}
		s.rel.DropIndexes()
		bm.Evictions++
	}
}
