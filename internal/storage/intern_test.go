package storage

import (
	"math"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/term"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	vals := []term.Value{
		term.String("alice"),
		term.String(""),
		term.Int(42),
		term.Int(-42),
		term.Float(3.5),
		term.Bool(true),
		term.Bool(false),
		term.Date(19000),
		term.Null(7),
	}
	ids := make([]uint32, len(vals))
	for i, v := range vals {
		ids[i] = in.Intern(v)
		if ids[i] == 0 {
			t.Fatalf("ID 0 is reserved, got it for %v", v)
		}
	}
	for i, v := range vals {
		if got := in.Intern(v); got != ids[i] {
			t.Errorf("re-intern %v: %d, want %d", v, got, ids[i])
		}
		if got := in.ValueOf(ids[i]); got != v {
			t.Errorf("ValueOf(%d) = %v, want %v", ids[i], got, v)
		}
		id, ok := in.IDOf(v)
		if !ok || id != ids[i] {
			t.Errorf("IDOf(%v) = %d,%v want %d,true", v, id, ok, ids[i])
		}
	}
	if in.Len() != len(vals) {
		t.Errorf("Len: %d, want %d", in.Len(), len(vals))
	}
	// Distinct values must have distinct dense IDs.
	seen := map[uint32]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("ID %d assigned twice", id)
		}
		seen[id] = true
		if int(id) > len(vals) {
			t.Errorf("ID %d not dense (max %d)", id, len(vals))
		}
	}
}

func TestInternerNullIdentity(t *testing.T) {
	in := NewInterner()
	n1 := in.Intern(term.Null(1))
	n2 := in.Intern(term.Null(2))
	if n1 == n2 {
		t.Fatal("distinct labelled nulls must intern to distinct IDs")
	}
	if in.Intern(term.Null(1)) != n1 {
		t.Fatal("same labelled null must intern to the same ID")
	}
	if !in.ValueOf(n1).IsNull() || in.ValueOf(n1).NullID() != 1 {
		t.Fatal("null identity lost in round trip")
	}
	// A null and a string that renders identically must stay distinct.
	s := in.Intern(term.String("_:n1"))
	if s == n1 {
		t.Fatal("null and look-alike string conflated")
	}
}

// TestInternerNaN: NaN never equals itself, so it can never be found in
// a Value-keyed map; the interner must still deduplicate NaN facts the
// way the rendered-key representation did (every NaN rendered "NaN").
func TestInternerNaN(t *testing.T) {
	in := NewInterner()
	nan := term.Float(math.NaN())
	if _, ok := in.IDOf(nan); ok {
		t.Fatal("IDOf before interning")
	}
	id := in.Intern(nan)
	if id == 0 {
		t.Fatal("NaN got the invalid ID")
	}
	if in.Intern(term.Float(math.NaN())) != id {
		t.Fatal("NaN must intern to one stable ID")
	}
	if got, ok := in.IDOf(nan); !ok || got != id {
		t.Fatalf("IDOf(NaN) = %d,%v", got, ok)
	}
	if !math.IsNaN(in.ValueOf(id).FloatVal()) {
		t.Fatal("NaN round trip lost")
	}
	r := NewRelation("p", 1)
	if !r.Insert(meta("p", term.Float(math.NaN()))) {
		t.Fatal("first NaN fact rejected")
	}
	if r.Insert(meta("p", term.Float(math.NaN()))) {
		t.Fatal("duplicate NaN fact admitted (chase would not terminate)")
	}
}

func TestInternerUnknownAndInvalid(t *testing.T) {
	in := NewInterner()
	if _, ok := in.IDOf(term.Int(5)); ok {
		t.Fatal("IDOf must not invent IDs")
	}
	if v := in.ValueOf(0); v.Kind() != term.KindInvalid {
		t.Fatalf("ValueOf(0) must be invalid, got %v", v)
	}
	if v := in.ValueOf(999); v.Kind() != term.KindInvalid {
		t.Fatalf("ValueOf(out of range) must be invalid, got %v", v)
	}
	if in.Len() != 0 {
		t.Fatalf("Len of empty interner: %d", in.Len())
	}
}

// forceCollisions makes every tuple hash to one bucket for the duration
// of the test, exercising the bucket-chaining exact resolution.
func forceCollisions(t *testing.T) {
	t.Helper()
	oldRow, oldMasked := hashRow, hashMasked
	hashRow = func([]uint32) uint64 { return 42 }
	hashMasked = func([]uint32, uint32) uint64 { return 42 }
	t.Cleanup(func() { hashRow, hashMasked = oldRow, oldMasked })
}

func TestRelationDuplicateDetectionUnderCollisions(t *testing.T) {
	forceCollisions(t)
	r := NewRelation("p", 2)
	for i := 0; i < 50; i++ {
		if !r.Insert(meta("p", term.Int(int64(i)), term.Int(int64(i%7)))) {
			t.Fatalf("fresh fact %d rejected despite colliding hash", i)
		}
	}
	for i := 0; i < 50; i++ {
		if r.Insert(meta("p", term.Int(int64(i)), term.Int(int64(i%7)))) {
			t.Fatalf("duplicate fact %d admitted", i)
		}
		if !r.Contains(ast.NewFact("p", term.Int(int64(i)), term.Int(int64(i%7)))) {
			t.Fatalf("Contains misses stored fact %d", i)
		}
	}
	if r.Contains(ast.NewFact("p", term.Int(0), term.Int(1))) {
		t.Fatal("Contains reports a never-stored fact (collision leaked)")
	}
	if r.Len() != 50 {
		t.Fatalf("len: %d", r.Len())
	}
}

func TestLookupExactUnderCollisions(t *testing.T) {
	forceCollisions(t)
	r := NewRelation("p", 2)
	for i := 0; i < 40; i++ {
		r.Insert(meta("p", term.Int(int64(i%8)), term.Int(int64(i))))
	}
	rows := r.Lookup(1, []term.Value{term.Int(3), {}})
	if len(rows) != 5 {
		t.Fatalf("lookup rows: %d, want 5 (collisions must be filtered)", len(rows))
	}
	for _, row := range rows {
		if r.At(int(row)).Fact.Args[0] != term.Int(3) {
			t.Fatal("collision candidate leaked into lookup result")
		}
	}
	// Probing a value that shares the bucket but matches nothing.
	if got := r.Lookup(1, []term.Value{term.Int(int64(100)), {}}); got != nil {
		t.Fatalf("unknown constant matched %d rows", len(got))
	}
}

func TestSharedInternerAcrossRelations(t *testing.T) {
	db := NewDatabase()
	strat := &fakePolicy{}
	db.InsertEDB(ast.NewFact("p", term.String("x")), strat)
	db.InsertEDB(ast.NewFact("q", term.String("x"), term.Int(1)), strat)
	p, q := db.Lookup("p"), db.Lookup("q")
	if p.Interner() != q.Interner() || p.Interner() != db.Interner() {
		t.Fatal("relations must share the database interner")
	}
	if p.Row(0)[0] != q.Row(0)[0] {
		t.Fatal("same constant must have one ID database-wide")
	}
}

func TestRelationRowAccess(t *testing.T) {
	r := NewRelation("p", 3)
	r.Insert(meta("p", term.String("a"), term.Int(1), term.Null(2)))
	row := r.Row(0)
	if len(row) != 3 {
		t.Fatalf("row len: %d", len(row))
	}
	in := r.Interner()
	if in.ValueOf(row[0]) != term.String("a") ||
		in.ValueOf(row[1]) != term.Int(1) ||
		in.ValueOf(row[2]) != term.Null(2) {
		t.Fatal("row does not decode to the inserted fact")
	}
}

// TestRelationRestride covers the inconsistent-arity fallback: a longer
// fact migrates the relation to the larger stride without losing exact
// duplicate detection or lookups.
func TestRelationRestride(t *testing.T) {
	r := NewRelation("p", 1)
	r.Insert(meta("p", term.Int(1)))
	r.Lookup(1, []term.Value{term.Int(1)}) // build an index pre-migration
	if !r.Insert(&core.FactMeta{Fact: ast.NewFact("p", term.Int(1), term.Int(2))}) {
		t.Fatal("wider fact rejected")
	}
	if r.Insert(meta("p", term.Int(1))) {
		t.Fatal("pre-migration fact no longer deduplicated")
	}
	if !r.Contains(ast.NewFact("p", term.Int(1))) {
		t.Fatal("pre-migration fact lost")
	}
	if got := len(r.Lookup(1, []term.Value{term.Int(1), {}})); got != 2 {
		t.Fatalf("post-migration lookup: %d rows, want 2", got)
	}
}
