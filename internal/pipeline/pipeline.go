// Package pipeline implements the Vadalog system's production engine: the
// pipe-and-filters architecture of paper Sec. 4. Rules compile into filter
// nodes connected by pipes (an edge from filter a to filter b when a's
// head unifies with an atom in b's body); reasoning is a pull (volcano)
// data stream driven by the sinks. Filters poll their predecessors
// round-robin; runtime invocation cycles are detected and reported as
// cyclic misses (notifyCycle) distinct from real misses; each filter wraps
// fact production in a termination-strategy wrapper running Algorithm 1.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/planner"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/term"
)

// siteLoad guards the streaming-load seam: it fires at the head of
// LoadChunk, before the chunk is admitted, so an injected failure drops
// nothing the engine has accepted.
var siteLoad = fault.NewSite("pipeline.load")

// ErrInconsistent mirrors chase.ErrInconsistent for the pipeline engine.
var ErrInconsistent = errors.New("pipeline: knowledge base is inconsistent")

// ErrBudget is returned when the derivation budget is exceeded.
var ErrBudget = errors.New("pipeline: derivation budget exceeded")

// Options configures a pipeline session.
type Options struct {
	Rewrite        *rewrite.Options
	DisableSummary bool
	MaxDerivations int
	RequireWarded  bool
	// BufferCapacity bounds the buffer cache in (approximate) bytes;
	// 0 disables eviction.
	BufferCapacity int64
	// NewPolicy overrides the termination policy (nil = the full strategy
	// of Algorithm 1). Baselines live in internal/baseline.
	NewPolicy func(*analysis.Result) core.Policy
	// DisableDynamicIndex turns off the slot machine join's dynamic
	// in-memory indexing (ablation): lookups scan.
	DisableDynamicIndex bool
	// DisablePlanner turns off cost-based join planning (ablation): rules
	// run their static compile-time schedules. Admission order is
	// canonical either way, so reasoning output is byte-identical with the
	// planner on or off.
	DisablePlanner bool
	// Shards sets how many duplicate-table shards each relation keeps and
	// enables the partitioned admission pre-pass on the buffered
	// canonical-order path: a firing's candidate heads are pre-interned and
	// pre-hashed during capture and deduplicated by parallel per-shard
	// goroutines before the serial merge admits them. Rounded up to a power
	// of two; 0 or 1 keeps the classic fully-serial replay. Output is
	// byte-identical for every setting.
	Shards int
	// PhaseTiming accumulates the wall-time split between matching, the
	// dedup pre-pass and admission (Session.PhaseStats). Firings on the
	// fused inline/short-rule paths count as match time.
	PhaseTiming bool
}

// stepResult is a filter's answer to a pull: it produced a fact, it cannot
// right now because of a runtime cycle (cyclic miss), or it is dry (real
// miss).
type stepResult int

const (
	stepProduced stepResult = iota
	stepCyclicMiss
	stepDry
)

// Session is the per-run state of one reasoning task over a shared
// Compiled artifact: database, interner, termination strategy, buffers,
// bindings and cursors. Sessions are cheap to create (Compiled.NewSession)
// and are for use by a single goroutine; share the Compiled, not the
// Session.
type Session struct {
	c     *Compiled
	db    *storage.Database
	strat core.Policy
	mt    *eval.Matcher
	subst *eval.NullSubst
	bm    *storage.BufferManager

	filters []*ruleFilter
	hubs    map[string]*hub

	// ctx is the context of the drive call currently on the stack; the
	// recursive pull machinery checks it between rule firings. ctxDone
	// latches an observed cancellation until the next drive call;
	// pollTick strides the ctx.Err polls (see cancelled).
	ctx      context.Context
	ctxDone  bool
	pollTick uint32

	derivations int
	budget      int
	failure     error
	quiesced    bool

	// groupBuf/contribBuf/headsBuf/parentsBuf are reused across emissions
	// so emit allocates no per-match container slices (AggState keys copy
	// what they keep; stored facts retain only the per-head Args slices,
	// which stay freshly allocated).
	groupBuf   []term.Value
	contribBuf []term.Value
	headsBuf   []ast.Fact
	parentsBuf []*core.FactMeta

	// pl derives cost-based join schedules from live statistics (nil when
	// Options.DisablePlanner). log and permBuf buffer one firing's
	// candidate bindings so they are admitted in canonical order
	// regardless of the join order that enumerated them.
	pl      *planner.Planner
	log     eval.BindingLog
	permBuf []int32

	// Partitioned admission (Options.Shards > 1): the flattened candidate
	// buffers one firing's captured heads are deduplicated through. The
	// slices are reused across firings; candInserted marks candidates the
	// merge actually admitted, which is what validates PrepassDupBatch
	// verdicts pointing at them.
	shards       int
	cands        []storage.PrepassCand
	candVerdict  []uint8
	candDupOf    []int32
	candInserted []bool

	// timing/clock accumulate the phase wall-time split when
	// Options.PhaseTiming is set.
	timing bool
	clock  phaseClock
}

// phaseClock is the cumulative wall-time split of evaluation phases:
// match enumeration (fused firings included), the sharded dedup pre-pass,
// and serial admission.
type phaseClock struct{ match, prepass, admit time.Duration }

// now returns the current time when phase timing is on (zero otherwise, so
// untimed sessions never touch the clock).
func (s *Session) now() time.Time {
	if !s.timing {
		return time.Time{}
	}
	return time.Now()
}

// lap accrues the time since t0 into *d when phase timing is on.
func (s *Session) lap(d *time.Duration, t0 time.Time) {
	if s.timing {
		*d += time.Since(t0)
	}
}

// PhaseStats reports cumulative wall time spent matching (fused firings
// included), in the sharded dedup pre-pass, and in serial admission. All
// zero unless the session was created with Options.PhaseTiming.
func (s *Session) PhaseStats() (match, prepass, admit time.Duration) {
	return s.clock.match, s.clock.prepass, s.clock.admit
}

// Shards returns the resolved duplicate-table shard count the session
// runs with.
func (s *Session) Shards() int { return s.shards }

// replanStride paces adaptive re-planning: the pipeline has no epoch
// boundaries, so its statistics generation advances once per stride of
// admitted facts, which is when cached plans are revalidated against the
// current relation sizes. Must be a power of two.
const replanStride = 1024

// sessionCatalog adapts a session's live database statistics to the
// planner's Catalog, deriving the generation from the derivation count.
type sessionCatalog struct{ s *Session }

// RelStats implements planner.Catalog.
func (c sessionCatalog) RelStats(pred string) (storage.RelStats, bool) {
	return c.s.db.RelStats(pred, false)
}

// Gen implements planner.Catalog.
func (c sessionCatalog) Gen() uint64 { return uint64(c.s.derivations / replanStride) }

// hub is the meeting point of all producers of one predicate: the
// predicate's buffered relation plus the filters feeding it.
type hub struct {
	pred      string
	rel       *storage.Relation
	producers []*ruleFilter
	rr        int
}

// ruleFilter is one rule's filter node with its termination-strategy
// wrapper state. cr and postAgg are shared read-only with the Compiled
// artifact; everything else is per-session.
type ruleFilter struct {
	idx     int
	cr      *eval.CompiledRule
	binding *eval.Binding
	agg     *eval.AggState
	postAgg []eval.CCond

	// cursors[i] counts facts of body atom i's relation already consumed
	// as deltas.
	cursors []int
	rr      int
	active  bool // on the current pull stack (runtime cycle detection)

	// sized[pos] is the last plan whose presize hints were applied for
	// firings pinned at pos; hints re-apply only when re-planning yields
	// a new plan, not on every firing.
	sized []*planner.Plan

	produced int
}

// New compiles prog and opens a session over it in one step (the
// compile-per-run convenience path). To share the compilation across
// sessions, use Compile once and Compiled.NewSession per run.
func New(prog *ast.Program, opts Options) (*Session, error) {
	c, err := Compile(prog, opts)
	if err != nil {
		return nil, err
	}
	return c.NewSession(), nil
}

// Load admits EDB facts into the pipeline's source relations. Loading
// after the pipeline has quiesced resumes it: new facts can enable new
// derivations (incremental reasoning).
func (s *Session) Load(facts ...ast.Fact) {
	for _, f := range facts {
		rel := s.db.Rel(f.Pred, len(f.Args))
		if rel.Contains(f) {
			continue
		}
		s.db.InsertEDB(f, s.strat)
		s.derivations++
		s.insertTagTwin(f)
		if s.hubs[f.Pred] == nil {
			s.hubs[f.Pred] = &hub{pred: f.Pred, rel: rel}
		}
		s.quiesced = false
	}
}

// LoadChunk admits one chunk of EDB facts and then reports any pending
// cancellation — the streaming-load entry point: record managers feed
// their cursors through it instead of materializing the whole source
// into one slice. The chunk is always admitted before the context is
// consulted, so a chunk already pulled from a cursor is never dropped
// (the caller stops before pulling the next one); duplicates are
// skipped, so re-feeding after an interrupted load stays idempotent.
// A crash mid-chunk (storage fault) is recovered into a typed error with
// the already-admitted prefix intact, so re-feeding the chunk resumes
// exactly where the crash struck.
func (s *Session) LoadChunk(ctx context.Context, facts []ast.Fact) (err error) {
	defer func() {
		if r := recover(); r != nil { //vadalint:panicguard load-path crash isolation: convert storage faults into typed resumable errors
			err = &core.PanicError{Engine: "pipeline load", Value: r, Stack: debug.Stack()}
		}
	}()
	if err := siteLoad.Check(); err != nil {
		return fmt.Errorf("pipeline: load: %w", err)
	}
	s.Load(facts...)
	return ctx.Err()
}

func (s *Session) insertTagTwin(f ast.Fact) {
	twin, ok := s.c.rw.TagPreds[f.Pred]
	if !ok {
		return
	}
	tf := s.tagTwinFact(twin, f)
	rel := s.db.Rel(twin, len(tf.Args))
	if rel.Contains(tf) {
		return
	}
	rel.Insert(s.strat.NewEDBFact(tf))
	if s.hubs[twin] == nil {
		s.hubs[twin] = &hub{pred: twin, rel: rel}
	}
}

// tagTwinFact renders the tag-twin image of f: labelled nulls replaced by
// their canonical ground keys.
func (s *Session) tagTwinFact(twin string, f ast.Fact) ast.Fact {
	args := make([]term.Value, len(f.Args))
	for i, v := range f.Args {
		if v.IsNull() {
			args[i] = term.String("\x00" + s.db.Nulls.KeyOf(v))
		} else {
			args[i] = v
		}
	}
	return ast.Fact{Pred: twin, Args: args}
}

// Next ensures at least n+1 facts of pred exist, pulling through the
// pipeline on demand (the volcano next() of the paper). It returns false
// on a real miss: no further facts of pred can be derived. Cancelling ctx
// aborts the pull between rule firings; the session stays consistent and
// can be driven again with a live context.
//
// Facts are addressed by live-row position: retracted rows (superseded
// aggregate intermediates whose value already existed elsewhere) are
// skipped, and for an aggregate predicate a row's fact is the group's best
// value at pull time — it may later be superseded in place by an improved
// one (monotonic-aggregation intermediates are transient; only the limit
// survives quiescence).
func (s *Session) Next(ctx context.Context, pred string, n int) (ast.Fact, bool, error) {
	s.ctx, s.ctxDone = ctx, false
	s.clearResumableFailure()
	h := s.hubs[pred]
	if h == nil {
		return ast.Fact{}, false, nil
	}
	for h.rel.Live() <= n {
		if err := ctx.Err(); err != nil {
			return ast.Fact{}, false, err
		}
		if s.failure != nil {
			return ast.Fact{}, false, s.failure
		}
		if s.quiesced {
			return ast.Fact{}, false, nil
		}
		if !s.pull(h) {
			// All producers report dry or cyclic: one global sweep decides
			// whether the cycles can still be fed (real-miss detection).
			if !s.sweep() {
				if err := ctx.Err(); err != nil {
					// The dry round was (possibly) a cancellation unwind, not
					// a real miss: report the cancellation, not exhaustion.
					return ast.Fact{}, false, err
				}
				s.quiesced = s.allQuiesced()
				if h.rel.Live() <= n {
					return ast.Fact{}, false, s.failure
				}
			}
		}
	}
	return h.rel.LiveAt(n).Fact, true, s.failure
}

// pull polls h's producers round-robin; it reports whether some producer
// delivered a new fact for h.
func (s *Session) pull(h *hub) bool {
	if len(h.producers) == 0 {
		return false
	}
	before := h.rel.Len()
	for k := 0; k < len(h.producers); k++ {
		p := h.producers[(h.rr+k)%len(h.producers)]
		res := s.step(p)
		if res == stepProduced && h.rel.Len() > before {
			h.rr = (h.rr + k + 1) % len(h.producers)
			return true
		}
	}
	return h.rel.Len() > before
}

// step asks filter f to produce at least one new admitted fact. It first
// drains already-available deltas (facts its body relations hold beyond
// its cursors), then pulls its predecessor hubs recursively. Runtime
// cycles surface as cyclic misses via the active flag (notifyCycle).
func (s *Session) step(f *ruleFilter) stepResult {
	if f.active {
		return stepCyclicMiss
	}
	if s.cancelled() {
		return stepDry
	}
	f.active = true
	defer func() { f.active = false }()

	sawCyclic := false
	for rounds := 0; rounds < len(f.cr.Pos)+1; rounds++ {
		// Round-robin over body atoms, preferring available deltas.
		for k := 0; k < len(f.cr.Pos); k++ {
			i := (f.rr + k) % len(f.cr.Pos)
			rel := s.db.Rel(f.cr.Pos[i].Pred, f.cr.Pos[i].Arity())
			for f.cursors[i] < rel.DeltaLen() {
				if s.cancelled() {
					return stepDry
				}
				m := rel.DeltaAt(f.cursors[i])
				f.cursors[i]++
				if m.Retracted {
					continue // superseded aggregate intermediate
				}
				got, err := s.fireGuarded(f, i, m)
				if err != nil {
					// The delta's firing did not complete: rewind the cursor
					// so a resumed session re-fires it (idempotently) instead
					// of silently losing its derivations.
					f.cursors[i]--
					s.failure = err
					return stepDry
				}
				if got > 0 {
					f.rr = i
					return stepProduced
				}
			}
		}
		// No deltas left: pull each predecessor hub once.
		progressed := false
		for k := 0; k < len(f.cr.Pos); k++ {
			i := (f.rr + k) % len(f.cr.Pos)
			ph := s.hubs[f.cr.Pos[i].Pred]
			if ph == nil {
				continue
			}
			if s.pullGuarded(ph, &sawCyclic) {
				progressed = true
				break
			}
		}
		if !progressed {
			break
		}
	}
	if sawCyclic {
		return stepCyclicMiss
	}
	return stepDry
}

// pullGuarded polls ph's producers, recording cyclic misses.
func (s *Session) pullGuarded(ph *hub, sawCyclic *bool) bool {
	before := ph.rel.Len()
	for k := 0; k < len(ph.producers); k++ {
		p := ph.producers[(ph.rr+k)%len(ph.producers)]
		switch s.step(p) {
		case stepProduced:
			ph.rr = (ph.rr + k + 1) % len(ph.producers)
			return true
		case stepCyclicMiss:
			*sawCyclic = true
		}
	}
	return ph.rel.Len() > before
}

// pollStride bounds how often the per-tuple loops poll the context:
// ctx.Err takes a lock, so paying it on every delta tuple would tax the
// hot path the interned-ID work keeps allocation-free. Polling every
// 256 firings keeps cancellation latency far below the millisecond
// scale the API promises. Must be a power of two.
const pollStride = 256

// cancelled reports whether the context of the current drive call has
// been cancelled, polling the context once per pollStride calls and
// latching the answer for the rest of the drive. The skipped work leaves
// cursors behind, so an unwound pull never admits partial state or
// reports a spurious quiescence.
func (s *Session) cancelled() bool {
	if s.ctxDone {
		return true
	}
	if s.ctx == nil {
		return false
	}
	if s.pollTick++; s.pollTick&(pollStride-1) != 0 {
		return false
	}
	if s.ctx.Err() != nil {
		s.ctxDone = true
		return true
	}
	return false
}

// sweep runs every filter once over its available deltas (no recursive
// pulls); it reports whether anything new was admitted. A full sweep with
// no progress turns outstanding cyclic misses into real misses.
func (s *Session) sweep() bool {
	progress := false
	for _, f := range s.filters {
		if f.active {
			continue
		}
		for i := range f.cr.Pos {
			rel := s.db.Rel(f.cr.Pos[i].Pred, f.cr.Pos[i].Arity())
			for f.cursors[i] < rel.DeltaLen() {
				if s.cancelled() {
					return false
				}
				m := rel.DeltaAt(f.cursors[i])
				f.cursors[i]++
				if m.Retracted {
					continue
				}
				got, err := s.fireGuarded(f, i, m)
				if err != nil {
					f.cursors[i]-- // resume re-fires the delta (see step)
					s.failure = err
					return false
				}
				if got > 0 {
					progress = true
				}
			}
		}
	}
	return progress
}

func (s *Session) allQuiesced() bool {
	for _, f := range s.filters {
		for i := range f.cr.Pos {
			rel := s.db.Lookup(f.cr.Pos[i].Pred)
			if rel != nil && f.cursors[i] < rel.DeltaLen() {
				return false
			}
		}
	}
	return true
}

// fireGuarded runs fire with crash isolation: a panic during the firing
// (a storage fault mid-admission, say) is recovered into a positioned
// engine error. Mutations are per-fact atomic and the caller rewinds the
// delta cursor on error, so the session stays consistent and resumable.
func (s *Session) fireGuarded(f *ruleFilter, pos int, m *core.FactMeta) (n int, err error) {
	defer func() {
		if r := recover(); r != nil { //vadalint:panicguard firing crash isolation: surface a positioned resumable error, cursor rewinds at the call site
			err = &core.PanicError{Engine: "pipeline", Rule: f.cr.Rule, Value: r, Stack: debug.Stack()}
		}
	}()
	return s.fire(f, pos, m)
}

// clearResumableFailure lifts a latched terminal failure the session can
// in fact recover from, at the start of a fresh drive call: a recovered
// crash (the crashed delta's cursor was rewound, re-firing is
// idempotent) always clears; a budget failure clears once the budget has
// been raised past the admitted count. Inconsistency and genuine rule
// errors stay terminal — re-firing would just reproduce them.
func (s *Session) clearResumableFailure() {
	if s.failure == nil {
		return
	}
	var pe *core.PanicError
	if errors.As(s.failure, &pe) {
		s.failure = nil
		return
	}
	if errors.Is(s.failure, ErrBudget) && s.derivations < s.budget {
		s.failure = nil
	}
}

// fire evaluates filter f with body atom pos pinned to delta m, admitting
// any derived head facts; it returns how many facts were admitted.
//
// Rules marked inline run the legacy path: the static schedule, with each
// complete match emitted as it is enumerated. Everything else runs the
// planned path: the (possibly cost-based) schedule enumerates candidates
// into a binding log against pre-firing state, and the candidates are
// admitted in canonical order (eval.BindingLog.CanonicalOrder) — the order
// depends only on which rows matched, so every join order produces
// byte-identical output.
func (s *Session) fire(f *ruleFilter, pos int, m *core.FactMeta) (int, error) {
	cr := f.cr
	if s.c.inline[f.idx] {
		t0 := s.now()
		defer s.lap(&s.clock.match, t0) // fused: matching and admission interleave
		admitted := 0
		err := s.mt.MatchPinned(cr, pos, m, f.binding, func(b *eval.Binding) error {
			n, err := s.emit(f, b)
			admitted += n
			return err
		})
		return admitted, err
	}
	steps := cr.Schedule(pos)
	if s.pl != nil {
		p := s.pl.PlanFor(cr, pos)
		steps = p.Steps
		if f.sized[pos] != p {
			f.sized[pos] = p
			for _, pr := range p.Probes {
				if rel := s.db.Lookup(pr.Pred); rel != nil {
					rel.EnsureIndexSized(pr.Mask, pr.Keys)
				}
			}
		}
	}
	if len(cr.Pos) <= 2 {
		// At most one body atom remains after pinning, so there is only
		// one possible join order: enumeration order is plan-independent
		// (storage row order) and already canonical. Admit inline and
		// skip the capture/sort/replay round trip.
		t0 := s.now()
		defer s.lap(&s.clock.match, t0) // fused: matching and admission interleave
		admitted := 0
		err := s.mt.MatchPinnedSteps(cr, pos, m, steps, f.binding, func(b *eval.Binding) error {
			n, err := s.emit(f, b)
			admitted += n
			return err
		})
		return admitted, err
	}
	prepared := s.shards > 1 && s.c.prepared[f.idx]
	lg := &s.log
	lg.Reset(cr)
	if prepared {
		lg.PrepareHeads(cr)
	}
	tm := s.now()
	err := s.mt.MatchPinnedSteps(cr, pos, m, steps, f.binding, func(b *eval.Binding) error {
		lg.Capture(b)
		if prepared {
			lg.CaptureHeads(cr, b, s.subst)
		}
		return nil
	})
	s.lap(&s.clock.match, tm)
	if err != nil {
		return 0, err
	}
	perm := lg.CanonicalOrder(s.permBuf)
	s.permBuf = perm
	if prepared {
		return s.mergeFiring(f, lg, perm)
	}
	ta := s.now()
	defer s.lap(&s.clock.admit, ta)
	admitted := 0
	for _, idx := range perm {
		lg.Restore(int(idx), s.db.Interner(), f.binding)
		n, err := s.emit(f, f.binding)
		admitted += n
		if err != nil {
			return admitted, err
		}
	}
	return admitted, nil
}

// mergeFiring admits one firing's captured candidates through partitioned
// admission: the heads pre-interned and pre-hashed during capture are
// flattened in canonical (perm, head) order, the sharded pre-pass computes
// dedup verdicts in parallel (storage.RunPrepass), and the serial merge
// walks the same order admitting exactly what the classic replay loop
// would — unprepared entries fall back to Restore+emit, candidates whose
// relation drifted fall back to the classic admit, everything else takes
// the O(1) verdict-or-reprobe path. The subst snapshot taken at capture
// time is still current here: only this rule emits between capture and
// merge, and prepared rules never unify nulls.
func (s *Session) mergeFiring(f *ruleFilter, lg *eval.BindingLog, perm []int32) (int, error) {
	cr := f.cr
	nh := len(cr.Heads)
	tp := s.now()
	s.cands = s.cands[:0]
	for _, idx := range perm {
		if !lg.EntryPrepared(int(idx)) {
			for hi := 0; hi < nh; hi++ {
				s.cands = append(s.cands, storage.PrepassCand{})
			}
			continue
		}
		for hi := 0; hi < nh; hi++ {
			hf, row, h := lg.PreparedHead(int(idx), hi)
			rel := s.db.Rel(hf.Pred, len(hf.Args))
			if rel.Arity() != len(row) {
				s.cands = append(s.cands, storage.PrepassCand{}) // drifted stride: classic admit below
				continue
			}
			s.cands = append(s.cands, storage.PrepassCand{Rel: rel, Row: row, Hash: h, Gen: rel.RetractGen()})
		}
	}
	n := len(s.cands)
	if cap(s.candVerdict) < n {
		s.candVerdict = make([]uint8, n)
		s.candDupOf = make([]int32, n)
		s.candInserted = make([]bool, n)
	}
	s.candVerdict = s.candVerdict[:n]
	s.candDupOf = s.candDupOf[:n]
	s.candInserted = s.candInserted[:n]
	for i := 0; i < n; i++ {
		s.candVerdict[i] = storage.PrepassUnknown
		s.candDupOf[i] = -1
		s.candInserted[i] = false
	}
	storage.RunPrepass(s.cands, s.candVerdict, s.candDupOf, s.shards, nil)
	s.lap(&s.clock.prepass, tp)

	ta := s.now()
	defer s.lap(&s.clock.admit, ta)
	admitted := 0
	for k, idx := range perm {
		i := int(idx)
		if !lg.EntryPrepared(i) {
			lg.Restore(i, s.db.Interner(), f.binding)
			an, err := s.emit(f, f.binding)
			admitted += an
			if err != nil {
				return admitted, err
			}
			continue
		}
		var parents []*core.FactMeta
		for hi := 0; hi < nh; hi++ {
			ci := k*nh + hi
			c := &s.cands[ci]
			if c.Rel == nil || c.Rel.Arity() != len(c.Row) {
				// Flatten-time or mid-merge arity drift: the row no longer
				// matches the relation's stride — admit classically.
				hf, _, _ := lg.PreparedHead(i, hi)
				if parents == nil {
					parents = lg.ParentsAppend(cr, i, s.parentsBuf[:0])
					s.parentsBuf = parents
				}
				m, err := s.admit(hf, cr.Rule.ID, parents)
				if err != nil {
					return admitted, err
				}
				if m != nil {
					admitted++
					f.produced++
				}
				continue
			}
			if c.Rel.RetractGen() == c.Gen {
				v := s.candVerdict[ci]
				if v == storage.PrepassDupStored ||
					(v == storage.PrepassDupBatch && s.candInserted[s.candDupOf[ci]]) {
					continue
				}
			}
			if c.Rel.ContainsRowHash(c.Row, c.Hash) {
				continue
			}
			hf, _, _ := lg.PreparedHead(i, hi)
			if parents == nil {
				parents = lg.ParentsAppend(cr, i, s.parentsBuf[:0])
				s.parentsBuf = parents
			}
			m := s.strat.Derive(hf, cr.Rule.ID, parents)
			if !s.strat.CheckTermination(m) {
				continue
			}
			if s.derivations >= s.budget {
				return admitted, fmt.Errorf("%w (%d facts)", ErrBudget, s.derivations)
			}
			c.Rel.InsertPrepared(m, c.Row, c.Hash)
			s.candInserted[ci] = true
			s.derivations++
			s.bm.Touch(hf.Pred)
			s.insertTagTwin(hf)
			admitted++
			f.produced++
		}
	}
	return admitted, nil
}

func (s *Session) emit(f *ruleFilter, b *eval.Binding) (int, error) {
	cr := f.cr
	rule := cr.Rule
	switch {
	case rule.IsConstraint:
		return 0, fmt.Errorf("%w: constraint fired: %s", ErrInconsistent, rule.String())
	case rule.EGD != nil:
		l := b.Val(cr.VarSlot[rule.EGD.Left])
		r := b.Val(cr.VarSlot[rule.EGD.Right])
		if err := s.subst.Unify(l, r); err != nil {
			return 0, fmt.Errorf("%w: %v (egd %s)", ErrInconsistent, err, rule.String())
		}
		return 0, nil
	}
	if cr.Agg != nil {
		// Group/contrib tuples live in session-owned buffers reused across
		// firings: AggState keys copy what they retain, so nothing escapes.
		group := s.groupBuf[:0]
		for _, sl := range cr.Agg.GroupSlots {
			group = append(group, b.Val(sl))
		}
		s.groupBuf = group
		contrib := s.contribBuf[:0]
		for _, sl := range cr.Agg.ContribSlots {
			contrib = append(contrib, b.Val(sl))
		}
		s.contribBuf = contrib
		var x term.Value
		if cr.Agg.ArgSlot >= 0 {
			x = b.Val(cr.Agg.ArgSlot)
		} else {
			var err error
			x, err = cr.Agg.Arg.Eval(b.Env(cr, cr.Agg.ArgDeps))
			if err != nil {
				return 0, err
			}
		}
		agg, improved, err := f.agg.Update(group, contrib, x)
		if err != nil {
			return 0, err
		}
		if !improved && cr.Agg.SkipSafe {
			// The group's aggregate did not change and the post-aggregate
			// conditions depend only on (result, group): this match
			// evaluates exactly like the one that already emitted, so
			// there is nothing new to emit. Unsafe rules (conditions over
			// other body variables, existential heads) fall through to the
			// full path; supersession makes re-emission idempotent.
			return 0, nil
		}
		b.Set(cr.Agg.ResultSlot, agg)
		for i := range f.postAgg {
			c := &f.postAgg[i]
			if c.Fast {
				if !c.EvalFast(b) {
					return 0, nil
				}
				continue
			}
			// The aggregate result reaches the environment through its slot
			// (set above), so the dependency-restricted env suffices.
			ok, err := ast.EvalCondition(c.Cond, b.Env(cr, c.Deps))
			if err != nil {
				return 0, err
			}
			if !ok {
				return 0, nil
			}
		}
	}
	s.mt.InstantiateExistentials(cr, b)
	heads, err := eval.HeadFactsAppend(cr, b, s.subst, s.headsBuf[:0])
	s.headsBuf = heads
	if err != nil {
		return 0, err
	}
	parents := eval.WardFirstParentsAppend(cr, b, s.parentsBuf[:0])
	s.parentsBuf = parents
	admitted := 0
	for hi, hf := range heads {
		// Existential aggregate heads mint per-binding nulls: each binding
		// is its own fact, not an improvement of the previous one, so they
		// take the plain admission path (no supersession).
		if cr.Agg != nil && len(cr.Exists) == 0 {
			n, err := s.admitAggregate(f, hi, hf, rule.ID, parents)
			admitted += n
			f.produced += n
			if err != nil {
				return admitted, err
			}
			continue
		}
		m, err := s.admit(hf, rule.ID, parents)
		if err != nil {
			return admitted, err
		}
		if m != nil {
			admitted++
			f.produced++
		}
	}
	return admitted, nil
}

// admitAggregate admits an aggregate-head fact with supersession, the
// pipeline counterpart of the chase engine's: an improving group replaces
// the fact the filter previously admitted for it in place. The relation's
// delta log re-delivers the replaced row, so downstream filters observe
// the improved value as a fresh delta while their cursors stay put.
// Replacements count as produced facts (step progress) and against the
// derivation budget.
func (s *Session) admitAggregate(f *ruleFilter, hi int, hf ast.Fact, ruleID int, parents []*core.FactMeta) (int, error) {
	prev, ok := f.agg.LastEmitted(hi)
	if !ok {
		m, err := s.admit(hf, ruleID, parents)
		if err != nil {
			return 0, err
		}
		if m == nil {
			return 0, nil
		}
		rel := s.db.Rel(hf.Pred, len(hf.Args))
		f.agg.RecordEmitted(hi, m, rel.Len()-1)
		return 1, nil
	}
	old := prev.Meta.Fact
	rel := s.db.Rel(hf.Pred, len(hf.Args))
	switch rel.Replace(prev.Row, hf) {
	case storage.ReplaceUnchanged:
		return 0, nil // e.g. the aggregate result does not occur in the head
	case storage.ReplaceRetracted:
		// The improved value already exists as an independently stored
		// fact; the superseded intermediate was retracted. The next
		// improvement starts fresh.
		f.agg.RecordEmitted(hi, nil, 0)
		s.noteSuperseded(old)
		return 0, nil
	default: // ReplaceDone
		if s.derivations >= s.budget {
			return 0, fmt.Errorf("%w (%d facts)", ErrBudget, s.derivations)
		}
		s.derivations++
		s.bm.Touch(hf.Pred)
		s.noteSuperseded(old)
		s.replaceTagTwin(old, hf)
		return 1, nil
	}
}

// noteSuperseded tells fact-memorizing termination policies that old is no
// longer stored.
func (s *Session) noteSuperseded(old ast.Fact) {
	if obs, ok := s.strat.(core.SupersessionObserver); ok {
		obs.NoteSuperseded(old)
	}
}

func (s *Session) admit(hf ast.Fact, ruleID int, parents []*core.FactMeta) (*core.FactMeta, error) {
	rel := s.db.Rel(hf.Pred, len(hf.Args))
	if rel.Contains(hf) {
		return nil, nil
	}
	m := s.strat.Derive(hf, ruleID, parents)
	if !s.strat.CheckTermination(m) {
		return nil, nil
	}
	if s.derivations >= s.budget {
		return nil, fmt.Errorf("%w (%d facts)", ErrBudget, s.derivations)
	}
	rel.Insert(m)
	s.derivations++
	s.bm.Touch(hf.Pred)
	s.insertTagTwin(hf)
	return m, nil
}

// replaceTagTwin mirrors an aggregate supersession into the tag twin of a
// tagged predicate.
func (s *Session) replaceTagTwin(old, hf ast.Fact) {
	twin, ok := s.c.rw.TagPreds[hf.Pred]
	if !ok {
		return
	}
	oldTwin := s.tagTwinFact(twin, old)
	newTwin := s.tagTwinFact(twin, hf)
	rel := s.db.Rel(twin, len(newTwin.Args))
	idx, found := rel.FindExact(oldTwin)
	if !found {
		s.insertTagTwin(hf)
		return
	}
	rel.Replace(idx, newTwin)
}

// Drain materializes the complete reasoning result (all output predicates
// to exhaustion, constraints and EGDs enforced). It is the batch entry
// point; the streaming API is Next.
func (s *Session) Drain(ctx context.Context) error {
	s.ctx, s.ctxDone = ctx, false
	s.clearResumableFailure()
	// Drive every output hub to exhaustion; if the program declares no
	// outputs, drive every IDB predicate (universal tuple inference).
	targets := make([]string, 0, len(s.c.prog.Outputs))
	for pred := range s.c.prog.Outputs {
		targets = append(targets, pred)
	}
	if len(targets) == 0 {
		for pred := range s.c.prog.IDBPreds() {
			targets = append(targets, pred)
		}
	}
	sort.Strings(targets)
	for _, pred := range targets {
		n := 0
		for {
			_, ok, err := s.Next(ctx, pred, n)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			n++
		}
	}
	// Sweep to fixpoint so constraint/EGD filters observe every fact.
	for s.sweep() {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.failure != nil {
		return s.failure
	}
	return nil
}

// LoadProgramFacts admits the program's inline fact literals — the same
// facts Run loads before the EDB. Streaming callers that drive Next
// directly (bypassing Run) must call it once before pulling.
func (s *Session) LoadProgramFacts() {
	for _, f := range s.c.prog.Facts {
		s.Load(f)
	}
}

// Run loads facts, drains the pipeline and returns the materialized
// result. Cancelling ctx aborts the fixpoint between rule firings.
func (s *Session) Run(ctx context.Context, edb []ast.Fact) error {
	if err := s.loadGuarded(edb); err != nil {
		return err
	}
	return s.Drain(ctx)
}

// loadGuarded runs Run's initial loads under the same crash isolation as
// LoadChunk: loading skips duplicates, so a resumed Run re-feeding the
// same facts admits only what the crash cut off.
func (s *Session) loadGuarded(edb []ast.Fact) (err error) {
	defer func() {
		if r := recover(); r != nil { //vadalint:panicguard load-path crash isolation: convert storage faults into typed resumable errors
			err = &core.PanicError{Engine: "pipeline load", Value: r, Stack: debug.Stack()}
		}
	}()
	s.LoadProgramFacts()
	s.Load(edb...)
	return nil
}

// Output returns pred's facts with @post directives applied, like
// chase.Result.Output.
func (s *Session) Output(pred string) []ast.Fact {
	return eval.ApplyPost(s.db.FactsOf(pred), s.c.prog.Posts, pred, s.subst)
}

// DB exposes the session's database (benchmarks, diagnostics).
func (s *Session) DB() *storage.Database { return s.db }

// Planner exposes the session's join planner for its statistics and
// -explain rendering; nil when Options.DisablePlanner.
func (s *Session) Planner() *planner.Planner { return s.pl }

// Strategy exposes the termination policy for its statistics.
func (s *Session) Strategy() core.Policy { return s.strat }

// Buffer exposes the buffer manager for its statistics.
func (s *Session) Buffer() *storage.BufferManager { return s.bm }

// Derivations reports the number of admitted facts.
func (s *Session) Derivations() int { return s.derivations }

// SetBudget replaces the derivation budget for subsequent admissions —
// how a session resumes after an ErrBudget partial result (the latched
// budget failure clears on the next drive once the budget allows more).
func (s *Session) SetBudget(n int) { s.budget = n }

// Quiesced reports whether the pipeline has reached its fixpoint: no
// failure is latched and no filter has unconsumed deltas. After an
// interrupted run it distinguishes "the answer is complete" from "a
// resume would derive more".
func (s *Session) Quiesced() bool { return s.failure == nil && s.allQuiesced() }

// Program returns the rewritten program the session executes.
func (s *Session) Program() *ast.Program { return s.c.prog }

// Analysis returns the warded analysis of the executed program.
func (s *Session) Analysis() *analysis.Result { return s.c.res }

// Compiled returns the shared compile-time artifact backing the session.
func (s *Session) Compiled() *Compiled { return s.c }
