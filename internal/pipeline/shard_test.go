package pipeline

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

// fanoutProgram joins three atoms so firings take the buffered
// canonical-order path, with a fan-out wide enough (wide² matches per
// trigger delta) to push one firing past the pre-pass goroutine
// threshold.
const fanoutProgram = `
	t(X), a(X,Y), b(Y,Z) -> out(X,Y,Z).
	out(X,Y,Z), a(X,Y), b(Y,W) -> out2(X,Y,W).
	@output("out").
	@output("out2").
`

func fanoutFacts(wide int) []ast.Fact {
	var facts []ast.Fact
	facts = append(facts, ast.NewFact("t", term.String("x")))
	for y := 0; y < wide; y++ {
		ys := term.String(fmt.Sprintf("y%03d", y))
		facts = append(facts, ast.NewFact("a", term.String("x"), ys))
		for z := 0; z < wide; z++ {
			facts = append(facts, ast.NewFact("b", ys, term.String(fmt.Sprintf("z%03d", z))))
		}
	}
	return facts
}

func runShardedPipeline(t *testing.T, src string, edb []ast.Fact, shards int) *Session {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := New(prog, Options{Shards: shards, PhaseTiming: true})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.Run(context.Background(), edb); err != nil {
		t.Fatalf("run (shards=%d): %v", shards, err)
	}
	return s
}

// TestPipelineShardDeterminism: the partitioned admission path of the
// pipeline engine produces a database byte-identical to the classic
// serial replay, across shard counts, on a firing wide enough to fan the
// pre-pass out.
func TestPipelineShardDeterminism(t *testing.T) {
	facts := fanoutFacts(20) // 400 candidates in the trigger firing
	base := sessionBytes(runShardedPipeline(t, fanoutProgram, facts, 1))
	if !strings.Contains(base, "out[") || len(base) < 100 {
		t.Fatalf("vacuous database: %q", base)
	}
	for _, shards := range []int{2, 8} {
		s := runShardedPipeline(t, fanoutProgram, facts, shards)
		if got := sessionBytes(s); got != base {
			t.Errorf("shards=%d diverges from serial (%d vs %d bytes)", shards, len(got), len(base))
		}
		if s.Shards() != shards {
			t.Errorf("resolved shards %d, want %d", s.Shards(), shards)
		}
	}
}

// TestPipelineShardDedup: re-deriving the same heads through the prepared
// path admits nothing twice (stored-duplicate verdicts) and duplicate
// heads within one firing collapse (batch-duplicate verdicts).
func TestPipelineShardDedup(t *testing.T) {
	// Two trigger paths derive identical out facts: the second firing's
	// candidates are all stored duplicates.
	src := `
		t(X), a(X,Y), b(Y,Z) -> out(X,Z).
		u(X), a(X,Y), b(Y,Z) -> out(X,Z).
		@output("out").
	`
	facts := append(fanoutFacts(20), ast.NewFact("u", term.String("x")))
	s := runShardedPipeline(t, src, facts, 8)
	want := 20 // out(x, z) for each z; Y collapsed
	if got := len(s.Output("out")); got != want {
		t.Fatalf("out facts: %d, want %d", got, want)
	}
	base := sessionBytes(runShardedPipeline(t, src, facts, 1))
	if got := sessionBytes(s); got != base {
		t.Error("sharded dedup diverges from serial")
	}
}

// TestPipelinePhaseTiming: with PhaseTiming on, wall time lands in the
// phase clocks (fused firings count as match).
func TestPipelinePhaseTiming(t *testing.T) {
	s := runShardedPipeline(t, fanoutProgram, fanoutFacts(12), 2)
	match, _, admit := s.PhaseStats()
	if match <= 0 {
		t.Errorf("no match time recorded: %v", match)
	}
	if admit <= 0 {
		t.Errorf("no admit time recorded: %v", admit)
	}
}
