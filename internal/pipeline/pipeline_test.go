package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/parser"
	"repro/internal/term"
)

func runPipeline(t *testing.T, src string, edb []ast.Fact) *Session {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := New(prog, Options{})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.Run(context.Background(), edb); err != nil {
		t.Fatalf("run: %v", err)
	}
	return s
}

func TestPipelineTransitiveClosure(t *testing.T) {
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`
	edb := []ast.Fact{
		ast.NewFact("edge", term.String("a"), term.String("b")),
		ast.NewFact("edge", term.String("b"), term.String("c")),
		ast.NewFact("edge", term.String("c"), term.String("a")),
	}
	s := runPipeline(t, src, edb)
	if got := len(s.Output("path")); got != 9 {
		t.Fatalf("want 9 paths, got %d", got)
	}
}

func TestPipelineStreaming(t *testing.T) {
	// The pull model must deliver facts one by one without draining first.
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`
	prog := parser.MustParse(src)
	s, err := New(prog, Options{})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	var edb []ast.Fact
	for i := 0; i < 10; i++ {
		edb = append(edb, ast.NewFact("edge",
			term.String(fmt.Sprintf("n%d", i)), term.String(fmt.Sprintf("n%d", i+1))))
	}
	s.Load(edb...)
	count := 0
	for {
		_, ok, err := s.Next(context.Background(), "path", count)
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 10+9+8+7+6+5+4+3+2+1 {
		t.Fatalf("streamed %d paths, want 55", count)
	}
}

func TestPipelineCycleManagement(t *testing.T) {
	// Mutually recursive predicates: runtime cycles must resolve to real
	// misses, not hangs or premature termination.
	src := `
		a(X,Y) -> b(X,Y).
		b(X,Y), a(Y,Z) -> a(X,Z).
		b(X,Y) -> c(X,Y).
		c(X,Y), b(Y,Z) -> b(X,Z).
		@output("c").
	`
	edb := []ast.Fact{
		ast.NewFact("a", term.String("1"), term.String("2")),
		ast.NewFact("a", term.String("2"), term.String("3")),
		ast.NewFact("a", term.String("3"), term.String("4")),
	}
	s := runPipeline(t, src, edb)
	if got := len(s.Output("c")); got == 0 {
		t.Fatal("cycle starved the pipeline: no c facts")
	}
}

func TestPipelineInconsistency(t *testing.T) {
	src := `
		own(X,X,W) -> #fail.
		own(X,Y,W) -> link(X,Y).
		@output("link").
	`
	prog := parser.MustParse(src)
	s, err := New(prog, Options{})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	err = s.Run(context.Background(), []ast.Fact{ast.NewFact("own", term.String("a"), term.String("a"), term.Float(1))})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("want ErrInconsistent, got %v", err)
	}
}

// crossValidate runs both engines on the same program and EDB and compares
// the ground (certain) answers of the given predicates.
func crossValidate(t *testing.T, src string, edb []ast.Fact, preds ...string) {
	t.Helper()
	prog1 := parser.MustParse(src)
	ch, err := chase.Run(context.Background(), prog1, edb, chase.Options{})
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	prog2 := parser.MustParse(src)
	pl, err := New(prog2, Options{})
	if err != nil {
		t.Fatalf("pipeline new: %v", err)
	}
	if err := pl.Run(context.Background(), edb); err != nil {
		t.Fatalf("pipeline run: %v", err)
	}
	for _, pred := range preds {
		a := groundSet(ch.Output(pred))
		b := groundSet(pl.Output(pred))
		if len(a) != len(b) {
			t.Errorf("%s: chase has %d ground facts, pipeline %d", pred, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Errorf("%s: pipeline missing %s", pred, k)
			}
		}
		for k := range b {
			if !a[k] {
				t.Errorf("%s: pipeline extra %s", pred, k)
			}
		}
	}
}

func groundSet(fs []ast.Fact) map[string]bool {
	out := make(map[string]bool)
	for _, f := range fs {
		if f.IsGround() {
			out[f.String()] = true
		}
	}
	return out
}

func TestCrossValidationSuite(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		edb   []ast.Fact
		preds []string
	}{
		{
			name: "transitive closure",
			src: `
				edge(X,Y) -> path(X,Y).
				path(X,Y), edge(Y,Z) -> path(X,Z).
			`,
			edb: []ast.Fact{
				ast.NewFact("edge", term.String("a"), term.String("b")),
				ast.NewFact("edge", term.String("b"), term.String("c")),
				ast.NewFact("edge", term.String("c"), term.String("d")),
				ast.NewFact("edge", term.String("d"), term.String("b")),
			},
			preds: []string{"path"},
		},
		{
			name: "running example 7",
			src: `
				company(X) -> owns(P, S, X).
				owns(P,S,X) -> stock(X, S).
				owns(P,S,X) -> psc(X, P).
				psc(X,P), controls(X,Y) -> owns(P, S2, Y).
				psc(X,P), psc(Y,P), X != Y -> strongLink(X,Y).
				strongLink(X,Y) -> owns(P2, S3, X).
				strongLink(X,Y) -> owns(P3, S4, Y).
				stock(X,S) -> company(X).
			`,
			edb: []ast.Fact{
				ast.NewFact("company", term.String("hsbc")),
				ast.NewFact("company", term.String("hsb")),
				ast.NewFact("company", term.String("iba")),
				ast.NewFact("controls", term.String("hsbc"), term.String("hsb")),
				ast.NewFact("controls", term.String("hsb"), term.String("iba")),
			},
			preds: []string{"strongLink", "company"},
		},
		{
			name: "aggregation",
			src: `
				own(X,Y,W), W > 0.5 -> control(X,Y).
				control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).
			`,
			edb: []ast.Fact{
				ast.NewFact("own", term.String("a"), term.String("b"), term.Float(0.6)),
				ast.NewFact("own", term.String("b"), term.String("c"), term.Float(0.4)),
				ast.NewFact("own", term.String("a"), term.String("c"), term.Float(0.2)),
				ast.NewFact("own", term.String("c"), term.String("d"), term.Float(0.9)),
			},
			preds: []string{"control"},
		},
		{
			name: "negation",
			src: `
				node(X), not bad(X) -> good(X).
				edge(X,Y) -> node(X).
				edge(X,Y) -> node(Y).
			`,
			edb: []ast.Fact{
				ast.NewFact("edge", term.String("a"), term.String("b")),
				ast.NewFact("edge", term.String("b"), term.String("c")),
				ast.NewFact("bad", term.String("b")),
			},
			preds: []string{"good"},
		},
		{
			name: "harmful join",
			src: `
				keyPerson(X,P) -> psc(X,P).
				company(X) -> psc(X, P).
				control(Y,X), psc(Y,P) -> psc(X,P).
				psc(X,P), psc(Y,P), X != Y -> strongLink(X,Y).
			`,
			edb: []ast.Fact{
				ast.NewFact("company", term.String("a")),
				ast.NewFact("company", term.String("b")),
				ast.NewFact("company", term.String("c")),
				ast.NewFact("control", term.String("a"), term.String("b")),
				ast.NewFact("control", term.String("b"), term.String("c")),
				ast.NewFact("keyPerson", term.String("c"), term.String("bob")),
				ast.NewFact("keyPerson", term.String("a"), term.String("bob")),
			},
			preds: []string{"strongLink"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			crossValidate(t, tc.src, tc.edb, tc.preds...)
		})
	}
}

func TestPipelineNullRecursionTerminates(t *testing.T) {
	src := `
		p(X) -> q(Z, X).
		q(Z, X) -> p(Z).
		@output("p").
	`
	s := runPipeline(t, src, []ast.Fact{ast.NewFact("p", term.String("a"))})
	if s.Derivations() > 100 {
		t.Fatalf("expected termination with few facts, got %d", s.Derivations())
	}
}

func TestPipelineBufferEviction(t *testing.T) {
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`
	prog := parser.MustParse(src)
	s, err := New(prog, Options{BufferCapacity: 1024}) // tiny: force eviction
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	var edb []ast.Fact
	for i := 0; i < 60; i++ {
		edb = append(edb, ast.NewFact("edge",
			term.String(fmt.Sprintf("n%d", i)), term.String(fmt.Sprintf("n%d", i+1))))
	}
	if err := s.Run(context.Background(), edb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if s.Buffer().Evictions == 0 {
		t.Error("expected index evictions under a tiny buffer capacity")
	}
	// Correctness unaffected by eviction.
	want := 60 * 61 / 2
	if got := len(s.Output("path")); got != want {
		t.Fatalf("want %d paths, got %d", want, got)
	}
}

func TestPipelineDeterminism(t *testing.T) {
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`
	var edb []ast.Fact
	for i := 0; i < 15; i++ {
		edb = append(edb, ast.NewFact("edge",
			term.String(fmt.Sprintf("n%d", i)), term.String(fmt.Sprintf("n%d", (i+3)%15))))
	}
	render := func() string {
		s := runPipeline(t, src, edb)
		var sb strings.Builder
		for _, f := range s.Output("path") {
			sb.WriteString(f.String())
			sb.WriteByte(';')
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if render() != first {
			t.Fatalf("non-deterministic pipeline output")
		}
	}
}

// TestCompiledSharedAcrossSessions: one Compiled artifact, several
// sessions over different databases — per-run state must be fully
// isolated (fresh interner, strategy, cursors).
func TestCompiledSharedAcrossSessions(t *testing.T) {
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`
	c, err := Compile(parser.MustParse(src), Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for k := 1; k <= 3; k++ {
		s := c.NewSession()
		var edb []ast.Fact
		for i := 0; i < k; i++ {
			edb = append(edb, ast.NewFact("edge",
				term.String(fmt.Sprintf("s%d_%d", k, i)), term.String(fmt.Sprintf("s%d_%d", k, i+1))))
		}
		if err := s.Run(context.Background(), edb); err != nil {
			t.Fatalf("run %d: %v", k, err)
		}
		if got, want := len(s.Output("path")), k*(k+1)/2; got != want {
			t.Errorf("session %d: %d paths, want %d", k, got, want)
		}
	}
}

// TestPipelineCancellation: a cancelled context aborts both the batch
// drain and the streaming pull without corrupting the session.
func TestPipelineCancellation(t *testing.T) {
	src := `
		a(X), a(Y) -> pair(X,Y).
		pair(X,Y), a(Z) -> triple(X,Y,Z).
		@output("triple").
	`
	s, err := New(parser.MustParse(src), Options{})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	var edb []ast.Fact
	for i := 0; i < 300; i++ {
		edb = append(edb, ast.NewFact("a", term.Int(int64(i))))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Run(ctx, edb); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The session must remain consistent: a live context finishes the job.
	small, err := New(parser.MustParse(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Run(ctx, edb[:5]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context must also stop a small run, got %v", err)
	}
	if err := small.Drain(context.Background()); err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	if got := len(small.Output("triple")); got != 5*5*5 {
		t.Errorf("resumed run: %d triples, want 125", got)
	}
}

// TestPipelineAggregateSupersession: the pipeline counterpart of the chase
// supersession test — the relation's delta log re-delivers replaced rows,
// so downstream filters observe the improved aggregate even though their
// cursors had already consumed the superseded intermediate.
func TestPipelineAggregateSupersession(t *testing.T) {
	src := `
		member(G, X), W = mcount(X) -> size(G, W).
		size(G, W), W >= 3 -> big(G).
		@output("size").
		@output("big").
	`
	edb := []ast.Fact{
		ast.NewFact("member", term.String("g1"), term.String("a")),
		ast.NewFact("member", term.String("g1"), term.String("b")),
		ast.NewFact("member", term.String("g1"), term.String("c")),
		ast.NewFact("member", term.String("g2"), term.String("z")),
	}
	s := runPipeline(t, src, edb)
	size := s.Output("size")
	if len(size) != 2 {
		t.Fatalf("live size facts: %v, want one per group", factList(size))
	}
	var got []string
	for _, f := range size {
		got = append(got, f.String())
	}
	if strings.Join(got, ";") != "size(g1,3);size(g2,1)" {
		t.Errorf("final sizes: %v", got)
	}
	if big := s.Output("big"); len(big) != 1 || big[0].String() != "big(g1)" {
		t.Errorf("downstream rule missed the improved aggregate: %v", factList(big))
	}
	if rel := s.DB().Lookup("size"); rel.Live() != 2 {
		t.Errorf("live rows: %d, want 2", rel.Live())
	}
}

func factList(fs []ast.Fact) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}
