package pipeline

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lint"
	"repro/internal/planner"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

// constraintHub is the synthetic hub that drives constraint and EGD
// filters (side-effect sinks without a head predicate of their own).
const constraintHub = "#constraints"

// Compiled is the immutable compile-time artifact of a program: the
// rewritten rules, their warded analysis, the per-rule executable plans
// and the filter/pipe topology. Compilation happens exactly once; a
// Compiled is safe for concurrent use by any number of goroutines, each
// deriving cheap per-run state with NewSession.
type Compiled struct {
	opts Options
	prog *ast.Program // rewritten program
	res  *analysis.Result
	rw   *rewrite.Result

	rules   []*eval.CompiledRule
	postAgg [][]eval.CCond // conditions depending on the aggregate result
	// inline marks rules whose firings bypass the buffered canonical-order
	// admission path: Skolem assignments in the body mint nulls while
	// matching, so their enumeration order is part of the result and must
	// stay the static schedule's; negated atoms are checked against live
	// state, so admissions interleave with matching exactly as the serial
	// semantics prescribe.
	inline []bool
	// prepared marks rules eligible for partitioned admission (Options.
	// Shards > 1): buffered-path rules with plain admission effects — no
	// aggregate supersession, no EGD unification, no constraint, no
	// existential instantiation, at least one head — whose candidate heads
	// can therefore be materialized and hashed at capture time. Unlike the
	// chase, EGDs elsewhere in the program do not disqualify a rule: within
	// one firing nothing unifies nulls between capture and merge, so the
	// capture-time substitution snapshot stays exact.
	prepared []bool

	// preds maps every predicate of the rewritten program to its arity;
	// producers maps a predicate (or constraintHub) to the indexes of the
	// rules feeding it, in rule order.
	preds     map[string]int
	producers map[string][]int

	budget int
}

// Compile runs rewriting, wardedness analysis and rule compilation on
// prog and returns the shareable artifact. This is the expensive step:
// sessions created from the result skip all of it.
func Compile(prog *ast.Program, opts Options) (*Compiled, error) {
	rwOpts := rewrite.DefaultOptions()
	if opts.Rewrite != nil {
		rwOpts = *opts.Rewrite
	}
	rw, err := rewrite.Apply(prog, rwOpts)
	if err != nil {
		return nil, err
	}
	res := analysis.Analyze(rw.Program)
	if opts.RequireWarded {
		if err := lint.RequireWarded(res); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
	}
	c := &Compiled{
		opts:      opts,
		prog:      rw.Program,
		res:       res,
		rw:        rw,
		producers: make(map[string][]int),
		budget:    opts.MaxDerivations,
	}
	if c.budget <= 0 {
		c.budget = 10_000_000
	}
	preds, err := rw.Program.Predicates()
	if err != nil {
		return nil, err
	}
	c.preds = preds
	for i, r := range rw.Program.Rules {
		cr, err := eval.Compile(r, res.Rules[i])
		if err != nil {
			return nil, err
		}
		if len(cr.Pos) == 0 {
			return nil, fmt.Errorf("pipeline: rule %d has no positive body atom: %s", r.ID, r.String())
		}
		var pa []eval.CCond
		if cr.Agg != nil {
			for _, cond := range cr.Conds {
				for _, d := range cond.Deps {
					if d == cr.Agg.ResultSlot {
						pa = append(pa, cond)
						break
					}
				}
			}
		}
		inl := len(cr.Neg) > 0
		for _, asg := range cr.Assigns {
			if asg.IsSkolem {
				inl = true
			}
		}
		c.rules = append(c.rules, cr)
		c.postAgg = append(c.postAgg, pa)
		c.inline = append(c.inline, inl)
		c.prepared = append(c.prepared, !inl && cr.Agg == nil && r.EGD == nil &&
			!r.IsConstraint && len(cr.Exists) == 0 && len(cr.Heads) > 0)
		switch {
		case r.IsConstraint, r.EGD != nil:
			c.producers[constraintHub] = append(c.producers[constraintHub], i)
		default:
			c.producers[r.Heads[0].Pred] = append(c.producers[r.Heads[0].Pred], i)
		}
	}
	return c, nil
}

// NewSession derives fresh run-time state (database, interner, strategy,
// buffers, bindings, cursors) over the shared compiled artifact. Sessions
// are cheap; each is for use by a single goroutine.
func (c *Compiled) NewSession() *Session {
	s := &Session{
		c:      c,
		db:     storage.NewDatabase(),
		subst:  eval.NewNullSubst(),
		hubs:   make(map[string]*hub),
		budget: c.budget,
		bm:     storage.NewBufferManager(c.opts.BufferCapacity),
		timing: c.opts.PhaseTiming,
	}
	if c.opts.Shards > 1 {
		s.db.SetShards(c.opts.Shards)
	}
	s.shards = s.db.Shards()
	if c.opts.NewPolicy != nil {
		s.strat = c.opts.NewPolicy(c.res)
	} else {
		full := core.NewStrategy(c.res)
		full.DisableSummary = c.opts.DisableSummary
		s.strat = full
	}
	if c.opts.DisableDynamicIndex {
		s.db.DisableIndexes()
	}
	if !c.opts.DisablePlanner {
		s.pl = planner.New(sessionCatalog{s: s})
	}
	s.mt = &eval.Matcher{DB: s.db, OnIndexProbe: func(pred string) { s.bm.Touch(pred) }}
	//vadalint:ordered keyed effects only: Rel keeps db.names sorted, hub/segment registration is per-pred
	for pred, arity := range c.preds {
		rel := s.db.Rel(pred, arity)
		s.hubs[pred] = &hub{pred: pred, rel: rel}
		s.bm.Register(pred, rel)
	}
	for i, cr := range c.rules {
		f := &ruleFilter{
			idx:     i,
			cr:      cr,
			binding: eval.NewBinding(cr),
			cursors: make([]int, len(cr.Pos)),
			postAgg: c.postAgg[i],
			sized:   make([]*planner.Plan, len(cr.Pos)),
		}
		if cr.Rule.Aggregate != nil {
			f.agg = eval.NewAggState(cr.Rule.Aggregate.Func, s.db.Interner())
		}
		s.filters = append(s.filters, f)
	}
	//vadalint:ordered each hub's producer list is built from its own key's ruleIdxs only
	for pred, ruleIdxs := range c.producers {
		h := s.hubs[pred]
		if h == nil { // the synthetic constraint sink
			h = &hub{pred: pred, rel: s.db.Rel(pred, 1)}
			s.hubs[pred] = h
		}
		for _, ri := range ruleIdxs {
			h.producers = append(h.producers, s.filters[ri])
		}
	}
	return s
}

// Program returns the rewritten program the artifact executes.
func (c *Compiled) Program() *ast.Program { return c.prog }

// Analysis returns the warded analysis of the rewritten program.
func (c *Compiled) Analysis() *analysis.Result { return c.res }
