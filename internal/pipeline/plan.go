package pipeline

import (
	"fmt"
	"sort"
	"strings"
)

// Plan renders the compiled reasoning access plan (paper Sec. 4, step 2:
// the logic compiler's pipeline of filters and pipes): one line per filter
// with its generating-rule kind and termination-wrapper role, and the
// pipes from the predicates it reads to the predicate it feeds. The plan
// is a compile-time artifact: it exists before any session runs.
func (c *Compiled) Plan() string {
	var sb strings.Builder
	sb.WriteString("reasoning access plan (filters and pipes)\n")

	// Source filters: EDB predicates (never produced by a rule).
	idb := c.prog.IDBPreds()
	var sources []string
	for pred := range c.preds {
		if !idb[pred] {
			sources = append(sources, pred)
		}
	}
	sort.Strings(sources)
	for _, pred := range sources {
		fmt.Fprintf(&sb, "  source  %s\n", pred)
	}

	for _, cr := range c.rules {
		r := cr.Rule
		var reads []string
		for _, a := range cr.Pos {
			reads = append(reads, a.Pred)
		}
		role := "filter"
		switch {
		case r.IsConstraint:
			role = "constraint"
		case r.EGD != nil:
			role = "egd"
		case r.Aggregate != nil:
			role = "aggregate"
		}
		head := "⊥"
		if len(r.Heads) > 0 {
			head = r.Heads[0].Pred
		} else if r.EGD != nil {
			head = r.EGD.Left + "=" + r.EGD.Right
		}
		fmt.Fprintf(&sb, "  %-10s r%-3d [%s] %s -> %s\n",
			role, r.ID, cr.Info.Kind, strings.Join(reads, " ⋈ "), head)
	}

	var sinks []string
	for pred := range c.prog.Outputs {
		sinks = append(sinks, pred)
	}
	sort.Strings(sinks)
	for _, pred := range sinks {
		fmt.Fprintf(&sb, "  sink    %s\n", pred)
	}
	return sb.String()
}

// Plan renders the session's reasoning access plan (delegates to the
// shared compiled artifact).
func (s *Session) Plan() string { return s.c.Plan() }
