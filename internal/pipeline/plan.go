package pipeline

import (
	"repro/internal/eval"
	"repro/internal/planner"
)

// Plan renders the compiled reasoning access plan (paper Sec. 4, step 2:
// the logic compiler's pipeline of filters and pipes): one line per filter
// with its generating-rule kind and termination-wrapper role, and the
// pipes from the predicates it reads to the predicate it feeds. The plan
// is a compile-time artifact: it exists before any session runs.
func (c *Compiled) Plan() string {
	return planner.RenderPlan(c.prog, c.preds, c.rules, nil)
}

// Plan renders the session's reasoning access plan (delegates to the
// shared compiled artifact).
func (s *Session) Plan() string { return s.c.Plan() }

// Explain renders the access plan annotated, per rule and per delta-pinned
// body atom, with the join order the cost-based planner chooses and the
// estimates that drove it — against the session's statistics at call time,
// so explaining after Run shows the orders the fixpoint converged on.
// Inline rules (Skolem body assignments, negation) run their static
// schedules and carry no annotation; with the planner disabled, Explain
// renders the plain plan.
func (s *Session) Explain() string {
	var annotate func(ri int, cr *eval.CompiledRule) []string
	if s.pl != nil {
		annotate = func(ri int, cr *eval.CompiledRule) []string {
			if s.c.inline[ri] {
				return []string{"static schedule (inline rule)"}
			}
			lines := make([]string, 0, len(cr.Pos))
			for pi := range cr.Pos {
				lines = append(lines, s.pl.Describe(cr, pi))
			}
			return lines
		}
	}
	return planner.RenderPlan(s.c.prog, s.c.preds, s.c.rules, annotate)
}
