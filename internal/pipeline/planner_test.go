package pipeline

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/gen/dbpedia"
	"repro/internal/gen/graphs"
	"repro/internal/parser"
	"repro/internal/term"
)

// sessionBytes renders a session's final database byte-exactly (the
// pipeline counterpart of the chase tests' dbBytes): same facts in the
// same stored order with the same null identities iff the runs agree.
func sessionBytes(s *Session) string {
	var sb strings.Builder
	for _, pred := range s.db.Predicates() {
		rel := s.db.Lookup(pred)
		fmt.Fprintf(&sb, "%s[%d]\n", pred, rel.Len())
		for i := 0; i < rel.Len(); i++ {
			m := rel.At(i)
			if m.Retracted {
				sb.WriteString("  x ")
			} else {
				sb.WriteString("    ")
			}
			sb.WriteString(m.Fact.String())
			sb.WriteByte('\n')
		}
	}
	fmt.Fprintf(&sb, "derivations=%d nulls=%d\n", s.derivations, s.db.Nulls.Count())
	return sb.String()
}

func plannerScenarios(t *testing.T) []struct {
	name  string
	src   string
	facts []ast.Fact
} {
	t.Helper()
	ownership := graphs.ScaleFree(100, graphs.PaperParams(), 2)
	persons := dbpedia.Generate(dbpedia.Config{Companies: 40, Persons: 120,
		KeyPersonRate: 1.2, ControlRate: 0.4, Seed: 9})
	return []struct {
		name  string
		src   string
		facts []ast.Fact
	}{
		{"companycontrol", graphs.ControlProgram, ownership.OwnFacts()},
		{"allpsc", dbpedia.AllPSCProgram, persons.All()},
		{"stronglinks", dbpedia.StrongLinksProgram(3), persons.All()},
	}
}

func runSession(t *testing.T, src string, facts []ast.Fact, opts Options, worst bool) *Session {
	t.Helper()
	prog := parser.MustParse(src)
	s, err := New(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if worst {
		s.pl.Worst = true
	}
	if err := s.Run(context.Background(), facts); err != nil {
		t.Fatalf("run: %v", err)
	}
	return s
}

// TestPipelinePlannerByteIdentical: the pipeline admits each firing's
// candidates in canonical order whatever schedule enumerated them, so the
// planner on, off, or adversarially inverted (worst-case joins) all
// produce byte-identical databases.
func TestPipelinePlannerByteIdentical(t *testing.T) {
	for _, sc := range plannerScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			base := sessionBytes(runSession(t, sc.src, sc.facts, Options{DisablePlanner: true}, false))
			if len(base) < 40 {
				t.Fatalf("vacuous database: %q", base)
			}
			if got := sessionBytes(runSession(t, sc.src, sc.facts, Options{}, false)); got != base {
				t.Errorf("planner on diverges from planner off (%d vs %d bytes)", len(got), len(base))
			}
			if got := sessionBytes(runSession(t, sc.src, sc.facts, Options{}, true)); got != base {
				t.Errorf("worst-case plans diverge from planner off (%d vs %d bytes)", len(got), len(base))
			}
		})
	}
}

// TestPipelineExplain: Explain annotates planned rules with join orders
// and estimates, and falls back to the plain access plan when the planner
// is disabled.
func TestPipelineExplain(t *testing.T) {
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
		@output("path").
	`
	edb := []ast.Fact{
		ast.NewFact("edge", term.String("a"), term.String("b")),
		ast.NewFact("edge", term.String("b"), term.String("c")),
	}
	s := runSession(t, src, edb, Options{}, false)
	out := s.Explain()
	for _, want := range []string{"reasoning access plan", "Δpath: path* ⋈ edge(est", "rows"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	off := runSession(t, src, edb, Options{DisablePlanner: true}, false)
	if out := off.Explain(); strings.Contains(out, "est") {
		t.Errorf("disabled planner must render the plain plan:\n%s", out)
	}
}

// TestPipelinePlannerAdaptive: a fixpoint long enough to cross the
// re-planning stride derives plans and revalidates them as statistics
// generations advance.
func TestPipelinePlannerAdaptive(t *testing.T) {
	sc := plannerScenarios(t)[0]
	s := runSession(t, sc.src, sc.facts, Options{}, false)
	if s.Planner() == nil {
		t.Fatal("planner missing")
	}
	if s.Planner().Derives() == 0 {
		t.Error("no plans derived")
	}
}
