package lint

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/parser"
)

var update = flag.Bool("update", false, "rewrite the golden .out files")

// TestGolden lints every testdata/*.vada program and compares the
// rendered diagnostics against the sibling .out golden file
// (regenerate with go test ./internal/lint -run Golden -update).
func TestGolden(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.vada"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, file := range files {
		t.Run(strings.TrimSuffix(filepath.Base(file), ".vada"), func(t *testing.T) {
			prog, err := parser.ParseFile(file)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			got := Render(Check(prog, Options{File: filepath.Base(file)}))
			golden := strings.TrimSuffix(file, ".vada") + ".out"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenJSON pins the machine-readable rendering beside the .out
// corpus: every testdata program's diagnostics are compared against the
// sibling .json golden (JSON Lines, the `vada vet -json` wire format;
// regenerate with -update). A change in these files is a change to the
// wire contract.
func TestGoldenJSON(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.vada"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs: %v", err)
	}
	for _, file := range files {
		t.Run(strings.TrimSuffix(filepath.Base(file), ".vada"), func(t *testing.T) {
			prog, err := parser.ParseFile(file)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			got := RenderJSON(Check(prog, Options{File: filepath.Base(file)}))
			golden := strings.TrimSuffix(file, ".vada") + ".json"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("json mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenCoversAllCodes keeps the golden corpus honest: every
// diagnostic code the package documents must be exercised by at least
// one testdata program.
func TestGoldenCoversAllCodes(t *testing.T) {
	all := []string{"W001", "W002", "N001", "S001", "A001", "B001", "D001", "D002", "T001", "T002", "T003"}
	seen := map[string]bool{}
	files, _ := filepath.Glob(filepath.Join("testdata", "*.vada"))
	for _, file := range files {
		prog, err := parser.ParseFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, d := range Check(prog, Options{}) {
			seen[d.Code] = true
		}
	}
	var missing []string
	for _, code := range all {
		if !seen[code] {
			missing = append(missing, code)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		t.Errorf("codes not covered by testdata corpus: %s", strings.Join(missing, ", "))
	}
}

// TestExamplesLintClean sweeps the shipped example programs: none may
// carry an Error, and only the pinned expected warnings may appear.
func TestExamplesLintClean(t *testing.T) {
	expected := map[string][]string{
		// The strong-links join on P is harmful by design; the engine
		// grounds it via dom() (paper Example 13).
		"stronglinks.vada": {"W002"},
	}
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "programs", "*.vada"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, file := range files {
		base := filepath.Base(file)
		t.Run(base, func(t *testing.T) {
			prog, err := parser.ParseFile(file)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			allowed := map[string]bool{}
			for _, code := range expected[base] {
				allowed[code] = true
			}
			for _, d := range Check(prog, Options{File: base}) {
				if d.Severity == Info || allowed[d.Code] {
					continue
				}
				t.Errorf("unexpected diagnostic: %s", d)
			}
		})
	}
}

// TestPositions pins the exact file:line:col anchoring for a
// representative diagnostic of each positional shape (rule-anchored,
// argument-anchored, condition-anchored).
func TestPositions(t *testing.T) {
	src := "a(X, Y) -> b(X).\n" + // D002 on Y at 1:6
		"b(X), X > 2, X < 1 -> c(X).\n" + // T002 on the closing X < 1 at 2:14
		"@output(\"b\").\n@output(\"c\").\n"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"D002": "1:6",
		"T002": "2:14",
	}
	for _, d := range Check(prog, Options{}) {
		pos, ok := want[d.Code]
		if !ok {
			continue
		}
		if got := d.Pos.String(); got != pos {
			t.Errorf("%s anchored at %s, want %s (%s)", d.Code, got, pos, d.Message)
		}
		delete(want, d.Code)
	}
	for code := range want {
		t.Errorf("%s not reported at all", code)
	}
}
