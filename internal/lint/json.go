package lint

import (
	"bytes"
	"encoding/json"
	"io"
)

// jsonDiag is the machine-readable form of one Diagnostic. The field
// names are the stable wire contract of `vada vet -json`: editors and CI
// annotators may depend on them, so they change never — only grow.
type jsonDiag struct {
	File     string        `json:"file"`
	Line     int           `json:"line"`
	Col      int           `json:"col"`
	Code     string        `json:"code"`
	Severity string        `json:"severity"`
	Message  string        `json:"message"`
	Related  []jsonRelated `json:"related,omitempty"`
}

// jsonRelated is a secondary location on the wire.
type jsonRelated struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func toJSONDiag(d Diagnostic) jsonDiag {
	j := jsonDiag{
		File:     d.Pos.File,
		Line:     d.Pos.Line,
		Col:      d.Pos.Col,
		Code:     d.Code,
		Severity: d.Severity.String(),
		Message:  d.Message,
	}
	for _, r := range d.Related {
		j.Related = append(j.Related, jsonRelated{
			File:    r.Pos.File,
			Line:    r.Pos.Line,
			Col:     r.Pos.Col,
			Message: r.Message,
		})
	}
	return j
}

// WriteJSON renders diags as JSON Lines — one object per diagnostic, in
// the given order — the `vada vet -json` output format.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if err := enc.Encode(toJSONDiag(d)); err != nil {
			return err
		}
	}
	return nil
}

// RenderJSON returns the JSON Lines rendering of diags as a string.
func RenderJSON(diags []Diagnostic) string {
	var buf bytes.Buffer
	_ = WriteJSON(&buf, diags)
	return buf.String()
}
