// Package lint is the structured diagnostics layer over parsed Vadalog
// programs: it re-surfaces the paper's Section 2 static analysis
// (wardedness, harmful joins, stratification) with source positions and
// adds compiler-grade program checks — unsafe heads, arity drift, dead
// rules, singleton variables, per-position type inference and condition
// satisfiability — each under a stable diagnostic code.
//
// Codes:
//
//	W001  error    rule breaks wardedness (Sec. 2.1)
//	W002  warning  harmful join (all occurrences of a join variable in
//	               affected positions; dom-grounded at runtime)
//	N001  error    negation through a recursive predicate cycle
//	S001  info     existential head variable (derives labelled nulls)
//	A001  error    predicate used with inconsistent arities
//	D001  warning  rule unreachable from any @output
//	D002  warning  variable occurs exactly once in a rule body
//	T001  warning  join variable whose position types cannot unify
//	T002  warning  statically unsatisfiable condition set
//	T003  error    msum/mprod over a non-numeric argument
//	B001  warning  @bind/@qbind on a predicate never declared @input
//	               or @output
//
// The vet front end additionally emits E001 (error) for files that do
// not parse; it never originates here — Check requires a parsed program.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ast"
)

// Severity ranks a diagnostic: Info diagnostics are informational (the
// construct is a deliberate language feature), Warning marks probable
// mistakes that do not stop compilation, Error marks programs the
// engines reject.
type Severity int

// Severities, in increasing order.
const (
	Info Severity = iota
	Warning
	Error
)

// String renders the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return "?"
	}
}

// Pos is a source position. File may be empty (source not read from a
// file); Line/Col are zero for programs built programmatically.
type Pos struct {
	File      string
	Line, Col int
}

// String renders "file:line:col", omitting the file when unknown.
func (p Pos) String() string {
	if p.File != "" {
		return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Related is a secondary location attached to a diagnostic, e.g. the
// first use of a predicate whose arity later drifts.
type Related struct {
	Pos     Pos
	Message string
}

// Diagnostic is one finding: a stable code, a severity, the primary
// source position and a human-readable message, plus optional related
// positions.
type Diagnostic struct {
	Code     string
	Severity Severity
	Pos      Pos
	Message  string
	Related  []Related
}

// String renders the go-vet-style "file:line:col: CODE: message" line;
// related positions follow on tab-indented lines.
func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s: %s", d.Pos, d.Code, d.Message)
	for _, r := range d.Related {
		fmt.Fprintf(&sb, "\n\t%s: %s", r.Pos, r.Message)
	}
	return sb.String()
}

// Render joins the diagnostics into the multi-line vet report.
func Render(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MaxSeverity returns the highest severity among diags (Info when empty).
func MaxSeverity(diags []Diagnostic) Severity {
	max := Info
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// Options configures a lint run.
type Options struct {
	// File labels every diagnostic position with the source filename.
	File string
}

// Check runs every lint pass over prog and returns the diagnostics
// sorted by position, then code. Check never mutates prog.
func Check(prog *ast.Program, opts Options) []Diagnostic {
	c := &checker{prog: prog, file: opts.File, res: analysis.Analyze(prog)}
	c.checkWarded()
	c.checkStratification()
	c.checkExistentials()
	c.checkArity()
	c.checkDeadRules()
	c.checkSingletons()
	c.checkConditions()
	c.checkBindings()
	types := inferTypes(prog)
	c.checkJoinTypes(types)
	c.checkAggregates(types)
	sort.SliceStable(c.diags, func(i, j int) bool {
		a, b := c.diags[i], c.diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
	return c.diags
}

type checker struct {
	prog  *ast.Program
	file  string
	res   *analysis.Result
	diags []Diagnostic
}

func (c *checker) pos(line, col int) Pos { return Pos{File: c.file, Line: line, Col: col} }

func (c *checker) add(sev Severity, code string, line, col int, format string, args ...any) *Diagnostic {
	c.diags = append(c.diags, Diagnostic{
		Code:     code,
		Severity: sev,
		Pos:      c.pos(line, col),
		Message:  fmt.Sprintf(format, args...),
	})
	return &c.diags[len(c.diags)-1]
}

// WardedDiagnostics converts the analyzer's verdict on res.Program into
// positioned W001 (wardedness violation, error) and W002 (harmful join,
// warning) diagnostics. It is the single rendering both engines'
// RequireWarded gates and the vet front end share.
func WardedDiagnostics(res *analysis.Result, file string) []Diagnostic {
	c := &checker{prog: res.Program, file: file, res: res}
	c.checkWarded()
	return c.diags
}

// RequireWarded is the shared compile-time gate: it returns nil when res
// is warded and otherwise an error rendering every violation with its
// rule position.
func RequireWarded(res *analysis.Result) error {
	if res.Warded {
		return nil
	}
	var parts []string
	for _, d := range WardedDiagnostics(res, "") {
		if d.Severity == Error {
			parts = append(parts, fmt.Sprintf("%s: %s: %s", d.Pos, d.Code, d.Message))
		}
	}
	return fmt.Errorf("program is not warded: %s", strings.Join(parts, "; "))
}

// checkWarded re-surfaces the wardedness analysis: one W001 error per
// violation and one W002 warning per rule with a harmful join.
func (c *checker) checkWarded() {
	for _, ri := range c.res.Rules {
		r := ri.Rule
		for _, v := range ri.Violations {
			// Per-rule violations are prefixed "rule N: "; the position
			// replaces that.
			msg := strings.TrimPrefix(v, fmt.Sprintf("rule %d: ", r.ID))
			c.add(Error, "W001", r.Line, r.Col, "rule is not warded: %s", msg)
		}
		if ri.HasHarmfulJoin {
			var vars []string
			for v, cl := range ri.Classes {
				if cl != analysis.Harmless && len(occurrenceAtoms(r, v)) >= 2 {
					vars = append(vars, v)
				}
			}
			sort.Strings(vars)
			c.add(Warning, "W002", r.Line, r.Col,
				"harmful join on %s: every occurrence is in an affected position, so the join may compare labelled nulls (grounded via dom() at rewrite time)",
				strings.Join(vars, ", "))
		}
	}
}

// occurrenceAtoms returns the indexes of distinct positive body atoms
// containing variable v.
func occurrenceAtoms(r *ast.Rule, v string) []int {
	var out []int
	for bi, a := range r.Body {
		if a.Negated || a.Pred == ast.DomPred {
			continue
		}
		for _, arg := range a.Args {
			if arg.IsVar && arg.Var == v {
				out = append(out, bi)
				break
			}
		}
	}
	return out
}

// checkStratification renders unstratifiable negation as the offending
// predicate cycle (N001), positioned at a negated atom on the cycle.
func (c *checker) checkStratification() {
	if _, err := analysis.Stratify(c.prog); err == nil {
		return
	}
	g := analysis.BuildDependencyGraph(c.prog)
	comp := make(map[string]int)
	for i, cset := range g.SCCs() {
		for _, pred := range cset {
			comp[pred] = i
		}
	}
	reported := make(map[string]bool)
	for _, from := range sortedKeys(g.NegEdges) {
		tos := make([]string, 0, len(g.NegEdges[from]))
		for to := range g.NegEdges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if comp[from] != comp[to] || reported[from+"\x00"+to] {
				continue
			}
			reported[from+"\x00"+to] = true
			cycle := cyclePath(g, comp, to, from)
			line, col := negatedAtomPos(c.prog, from, to)
			c.add(Error, "N001", line, col,
				"negation is not stratified: not %s feeds %s, which derives %s again (cycle: not %s -> %s)",
				from, to, from, from, strings.Join(cycle, " -> "))
		}
	}
}

func sortedKeys(m map[string]map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// cyclePath returns the predicate path from 'to' back to 'from' within
// their shared SCC, following positive and negative dependency edges.
func cyclePath(g *analysis.DependencyGraph, comp map[string]int, to, from string) []string {
	target := comp[from]
	prev := map[string]string{to: ""}
	queue := []string{to}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p == from {
			var path []string
			for q := p; q != ""; q = prev[q] {
				path = append([]string{q}, path...)
			}
			return path
		}
		var succs []string
		for q := range g.Edges[p] {
			succs = append(succs, q)
		}
		for q := range g.NegEdges[p] {
			succs = append(succs, q)
		}
		sort.Strings(succs)
		for _, q := range succs {
			if comp[q] != target {
				continue
			}
			if _, seen := prev[q]; !seen {
				prev[q] = p
				queue = append(queue, q)
			}
		}
	}
	return []string{to, from}
}

// negatedAtomPos locates a rule with head pred 'to' whose body negates
// 'from' and returns the negated atom's position.
func negatedAtomPos(prog *ast.Program, from, to string) (int, int) {
	for _, r := range prog.Rules {
		heads := false
		for _, h := range r.Heads {
			if h.Pred == to {
				heads = true
			}
		}
		if !heads {
			continue
		}
		for _, a := range r.Body {
			if a.Negated && a.Pred == from {
				return a.Line, a.Col
			}
		}
	}
	return 0, 0
}

// checkExistentials reports each existentially quantified head variable
// (S001, info): the defining Datalog± feature, surfaced so authors see
// where labelled nulls will be minted.
func (c *checker) checkExistentials() {
	for _, r := range c.prog.Rules {
		for _, v := range r.Existentials() {
			line, col := r.Line, r.Col
			for _, h := range r.Heads {
				for _, arg := range h.Args {
					if arg.IsVar && arg.Var == v && arg.Line > 0 {
						line, col = arg.Line, arg.Col
					}
				}
			}
			c.add(Info, "S001", line, col,
				"head variable %s has no body occurrence: existentially quantified (each firing mints a labelled null)", v)
		}
	}
}

// checkArity reports predicates used with inconsistent arities (A001):
// each drifting use site is flagged, with the first-seen site attached.
func (c *checker) checkArity() {
	type site struct {
		arity     int
		line, col int
		what      string
	}
	first := make(map[string]site)
	note := func(pred string, arity, line, col int, what string) {
		if pred == ast.DomPred {
			return
		}
		f, ok := first[pred]
		if !ok {
			first[pred] = site{arity: arity, line: line, col: col, what: what}
			return
		}
		if f.arity != arity {
			d := c.add(Error, "A001", line, col,
				"predicate %s used with arity %d here but arity %d elsewhere", pred, arity, f.arity)
			d.Related = append(d.Related, Related{
				Pos:     c.pos(f.line, f.col),
				Message: fmt.Sprintf("%s with arity %d", f.what, f.arity),
			})
		}
	}
	for _, f := range c.prog.Facts {
		note(f.Pred, len(f.Args), f.Line, f.Col, "fact")
	}
	for _, r := range c.prog.Rules {
		for _, a := range r.Body {
			note(a.Pred, a.Arity(), a.Line, a.Col, "body atom")
		}
		for _, h := range r.Heads {
			note(h.Pred, h.Arity(), h.Line, h.Col, "head atom")
		}
	}
	for _, m := range c.prog.Mappings {
		note(m.Pred, len(m.Columns), m.Line, m.Col, "@mapping")
	}
}

// checkDeadRules reports rules unreachable from any @output (D001):
// their derivations can never influence an answer. Constraints and EGDs
// are always live (they restrict the model itself). Programs with no
// @output are library fragments; the check is skipped.
func (c *checker) checkDeadRules() {
	if len(c.prog.Outputs) == 0 {
		return
	}
	live := make(map[string]bool)
	for p := range c.prog.Outputs {
		live[p] = true
	}
	for changed := true; changed; {
		changed = false
		for _, r := range c.prog.Rules {
			alive := r.IsConstraint || r.EGD != nil
			for _, h := range r.Heads {
				if live[h.Pred] {
					alive = true
				}
			}
			if !alive {
				continue
			}
			for _, a := range r.Body {
				if a.Pred != ast.DomPred && !live[a.Pred] {
					live[a.Pred] = true
					changed = true
				}
			}
		}
	}
	for _, r := range c.prog.Rules {
		if r.IsConstraint || r.EGD != nil {
			continue
		}
		dead := true
		var heads []string
		for _, h := range r.Heads {
			if live[h.Pred] {
				dead = false
			}
			if !containsStr(heads, h.Pred) {
				heads = append(heads, h.Pred)
			}
		}
		if dead {
			c.add(Warning, "D001", r.Line, r.Col,
				"dead rule: %s unreachable from any @output", strings.Join(heads, ", "))
		}
	}
}

// checkSingletons reports variables occurring exactly once in a rule and
// that once in a body atom (D002): almost always a typo for another
// variable or for the anonymous _. Head-only singletons are existential
// quantification and belong to S001.
func (c *checker) checkSingletons() {
	for _, r := range c.prog.Rules {
		count := make(map[string]int)
		type bodyOcc struct{ line, col int }
		inBody := make(map[string]bodyOcc)
		bump := func(v string) {
			if v != "_" && v != "*" {
				count[v]++
			}
		}
		for _, a := range r.Body {
			for _, arg := range a.Args {
				if arg.IsVar {
					bump(arg.Var)
					if _, ok := inBody[arg.Var]; !ok {
						inBody[arg.Var] = bodyOcc{arg.Line, arg.Col}
					}
				}
			}
		}
		for _, h := range r.Heads {
			for _, arg := range h.Args {
				if arg.IsVar {
					bump(arg.Var)
				}
			}
		}
		for _, cond := range r.Conds {
			for _, v := range cond.L.Vars(cond.R.Vars(nil)) {
				bump(v)
			}
		}
		for _, asg := range r.Assignments {
			bump(asg.Var)
			for _, v := range asg.Expr.Vars(nil) {
				bump(v)
			}
		}
		if r.Aggregate != nil {
			bump(r.Aggregate.Result)
			for _, v := range r.Aggregate.Arg.Vars(nil) {
				bump(v)
			}
			for _, v := range r.Aggregate.Contributors {
				bump(v)
			}
		}
		if r.EGD != nil {
			bump(r.EGD.Left)
			bump(r.EGD.Right)
		}
		for _, v := range r.DomVars {
			bump(v)
		}
		var singles []string
		for v, n := range count {
			if n == 1 {
				if _, ok := inBody[v]; ok {
					singles = append(singles, v)
				}
			}
		}
		sort.Strings(singles)
		for _, v := range singles {
			o := inBody[v]
			c.add(Warning, "D002", o.line, o.col,
				"variable %s occurs only once in the rule (typo? use _ to ignore a position)", v)
		}
	}
}

// checkBindings reports bindings on undeclared predicates (B001): a
// @bind/@qbind whose predicate is never marked @input or @output still
// loads (the @input annotation is declarative), but the missing
// declaration usually means a typo'd predicate name or a forgotten
// @input — and the record-manager pushdown (@qbind) plans around input
// declarations.
func (c *checker) checkBindings() {
	for _, b := range c.prog.Bindings {
		if c.prog.Inputs[b.Pred] || c.prog.Outputs[b.Pred] {
			continue
		}
		dir := "@bind"
		if b.Query != "" {
			dir = "@qbind"
		}
		c.add(Warning, "B001", b.Line, b.Col,
			"%s on %s, which is never declared @input or @output: declare @input(\"%s\") (or @output) so the binding's role is explicit",
			dir, b.Pred, b.Pred)
	}
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
