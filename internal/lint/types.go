package lint

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/term"
)

// kindMask is a bitmask over term kinds: the set of kinds a predicate
// position (or expression) may hold. The empty mask is "nothing flows
// here yet" (bottom), mAny is "unconstrained".
type kindMask uint8

const (
	mString kindMask = 1 << iota
	mInt
	mFloat
	mBool
	mDate
	mSet
	mNull // labelled nulls from existential quantification
)

const (
	mAny     = mString | mInt | mFloat | mBool | mDate | mSet | mNull
	mNumeric = mInt | mFloat
)

// String renders the mask as "int|float" style for messages.
func (m kindMask) String() string {
	if m == mAny {
		return "any"
	}
	var parts []string
	for _, e := range []struct {
		bit  kindMask
		name string
	}{
		{mString, "string"}, {mInt, "int"}, {mFloat, "float"},
		{mBool, "bool"}, {mDate, "date"}, {mSet, "set"}, {mNull, "null"},
	} {
		if m&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

func kindBit(k term.Kind) kindMask {
	switch k {
	case term.KindString:
		return mString
	case term.KindInt:
		return mInt
	case term.KindFloat:
		return mFloat
	case term.KindBool:
		return mBool
	case term.KindDate:
		return mDate
	case term.KindSet:
		return mSet
	case term.KindNull:
		return mNull
	default:
		return mAny
	}
}

// inferTypes computes, per predicate position, the set of term kinds
// that can flow there: inline facts seed EDB positions; externally fed
// predicates (@input, @bind/@qbind, @mapping, or no producer at all,
// since facts may be loaded at runtime) are unconstrained; IDB positions
// take the union of what every producing rule's head can emit, to a
// fixpoint. Masks only grow, so the fixpoint terminates.
func inferTypes(prog *ast.Program) map[analysis.Position]kindMask {
	masks := make(map[analysis.Position]kindMask)
	arity := make(map[string]int) // max observed, tolerant of A001 drift
	noteArity := func(pred string, n int) {
		if n > arity[pred] {
			arity[pred] = n
		}
	}
	for _, f := range prog.Facts {
		noteArity(f.Pred, len(f.Args))
	}
	for _, r := range prog.Rules {
		for _, a := range r.Body {
			noteArity(a.Pred, a.Arity())
		}
		for _, h := range r.Heads {
			noteArity(h.Pred, h.Arity())
		}
	}
	for _, m := range prog.Mappings {
		noteArity(m.Pred, len(m.Columns))
	}

	idb := prog.IDBPreds()
	hasFacts := make(map[string]bool)
	for _, f := range prog.Facts {
		hasFacts[f.Pred] = true
		for i, a := range f.Args {
			masks[analysis.Position{Pred: f.Pred, Idx: i}] |= kindBit(a.Kind())
		}
	}
	external := make(map[string]bool)
	for p := range prog.Inputs {
		external[p] = true
	}
	for _, b := range prog.Bindings {
		external[b.Pred] = true
	}
	for _, m := range prog.Mappings {
		external[m.Pred] = true
	}
	for pred, n := range arity {
		if pred == ast.DomPred {
			continue
		}
		if external[pred] || (!idb[pred] && !hasFacts[pred]) {
			for i := 0; i < n; i++ {
				masks[analysis.Position{Pred: pred, Idx: i}] = mAny
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, r := range prog.Rules {
			if r.IsConstraint || r.EGD != nil {
				continue
			}
			vm := ruleVarMasks(r, masks)
			for _, h := range r.Heads {
				for i, arg := range h.Args {
					pos := analysis.Position{Pred: h.Pred, Idx: i}
					var add kindMask
					if arg.IsVar {
						add = vm[arg.Var]
					} else {
						add = kindBit(arg.Const.Kind())
					}
					if masks[pos]|add != masks[pos] {
						masks[pos] |= add
						changed = true
					}
				}
			}
		}
	}
	return masks
}

// ruleVarMasks computes the kind mask of each variable of r under the
// current position masks: body variables intersect their positive
// occurrence positions, assignment and aggregate variables take their
// expression's mask, and existential variables are labelled nulls.
func ruleVarMasks(r *ast.Rule, masks map[analysis.Position]kindMask) map[string]kindMask {
	vm := make(map[string]kindMask)
	seen := make(map[string]bool)
	for _, a := range r.Body {
		if a.Negated || a.Pred == ast.DomPred {
			continue
		}
		for i, arg := range a.Args {
			if !arg.IsVar || arg.Var == "_" {
				continue
			}
			m := masks[analysis.Position{Pred: a.Pred, Idx: i}]
			if !seen[arg.Var] {
				seen[arg.Var] = true
				vm[arg.Var] = m
			} else {
				vm[arg.Var] &= m
			}
		}
	}
	expr := func(e ast.Expr) kindMask { return exprMask(e, vm) }
	for _, asg := range r.Assignments {
		vm[asg.Var] = expr(asg.Expr)
	}
	if agg := r.Aggregate; agg != nil {
		am := expr(agg.Arg)
		switch agg.Func {
		case "mcount":
			vm[agg.Result] = mInt
		case "munion":
			vm[agg.Result] = mSet
		case "msum", "mprod":
			vm[agg.Result] = am & mNumeric
		default: // mmin, mmax preserve the argument's kinds
			vm[agg.Result] = am
		}
	}
	for _, v := range r.Existentials() {
		vm[v] = mNull
	}
	// Variables grounded only through dom(V) range over the active
	// domain: any ground kind.
	for _, v := range r.DomVars {
		if !seen[v] {
			vm[v] = mAny &^ mNull
		}
	}
	return vm
}

// exprMask infers the kinds an expression can evaluate to, given the
// masks of the variables it reads.
func exprMask(e ast.Expr, vm map[string]kindMask) kindMask {
	switch x := e.(type) {
	case ast.ConstExpr:
		return kindBit(x.Val.Kind())
	case ast.VarExpr:
		if m, ok := vm[x.Name]; ok {
			return m
		}
		return mAny
	case ast.BinExpr:
		switch x.Op {
		case "&&", "||":
			return mBool
		case "+":
			l, r := exprMask(x.L, vm), exprMask(x.R, vm)
			m := (l | r) & (mNumeric | mString)
			if m == 0 {
				m = mNumeric | mString
			}
			return m
		case "^":
			return mFloat
		default: // - * / %
			return mNumeric
		}
	case ast.FuncExpr:
		if x.IsSkolem() {
			return mNull
		}
		switch x.Name {
		case "startsWith", "endsWith", "contains":
			return mBool
		case "indexOf", "length":
			return mInt
		case "substring", "upper", "lower", "concat", "toString":
			return mString
		case "toInt":
			return mInt
		case "toFloat":
			return mFloat
		case "abs":
			return mNumeric
		case "min", "max":
			var m kindMask
			for _, a := range x.Args {
				m |= exprMask(a, vm)
			}
			if m == 0 {
				m = mAny
			}
			return m
		default:
			return mAny
		}
	default:
		return mAny
	}
}

// checkJoinTypes reports join variables whose positive body occurrences
// sit in positions with disjoint inferred kinds (T001): no pair of facts
// can ever agree on the variable, so the join is statically empty.
func (c *checker) checkJoinTypes(masks map[analysis.Position]kindMask) {
	for _, r := range c.prog.Rules {
		type occ struct {
			atom      string
			idx       int
			line, col int
			mask      kindMask
		}
		occs := make(map[string][]occ)
		var order []string
		for _, a := range r.Body {
			if a.Negated || a.Pred == ast.DomPred {
				continue
			}
			for i, arg := range a.Args {
				if !arg.IsVar || arg.Var == "_" {
					continue
				}
				if len(occs[arg.Var]) == 0 {
					order = append(order, arg.Var)
				}
				occs[arg.Var] = append(occs[arg.Var], occ{
					atom: a.Pred, idx: i, line: arg.Line, col: arg.Col,
					mask: masks[analysis.Position{Pred: a.Pred, Idx: i}],
				})
			}
		}
		for _, v := range order {
			os := occs[v]
			if len(os) < 2 {
				continue
			}
			inter := mAny
			known := true
			for _, o := range os {
				if o.mask == 0 {
					known = false // nothing flows here yet: vacuous, not a conflict
					break
				}
				inter &= o.mask
			}
			if !known || inter != 0 {
				continue
			}
			// Find a witness pair with disjoint masks for the message.
			wi, wj := 0, 1
			for i := 0; i < len(os) && os[wi].mask&os[wj].mask != 0; i++ {
				for j := i + 1; j < len(os); j++ {
					if os[i].mask&os[j].mask == 0 {
						wi, wj = i, j
					}
				}
			}
			a, b := os[wi], os[wj]
			d := c.add(Warning, "T001", b.line, b.col,
				"join variable %s can never unify: %s[%d] holds %s but %s[%d] holds %s",
				v, b.atom, b.idx, b.mask, a.atom, a.idx, a.mask)
			d.Related = append(d.Related, Related{
				Pos:     c.pos(a.line, a.col),
				Message: fmt.Sprintf("%s[%d] inferred as %s", a.atom, a.idx, a.mask),
			})
		}
	}
}

// checkAggregates reports msum/mprod whose aggregated expression is
// inferred non-numeric (T003): the engine rejects the first firing at
// runtime, so surface it statically.
func (c *checker) checkAggregates(masks map[analysis.Position]kindMask) {
	for _, r := range c.prog.Rules {
		agg := r.Aggregate
		if agg == nil || (agg.Func != "msum" && agg.Func != "mprod") {
			continue
		}
		vm := ruleVarMasks(r, masks)
		m := exprMask(agg.Arg, vm)
		if m != 0 && m&mNumeric == 0 {
			c.add(Error, "T003", agg.Line, agg.Col,
				"%s aggregates a non-numeric argument (inferred %s)", agg.Func, m)
		}
	}
}

// condBound is one side of a variable's inferred numeric interval.
type condBound struct {
	val    float64
	strict bool
}

// condState accumulates the constraints a rule's conditions place on one
// variable: a numeric interval, a required equality, and disequalities.
type condState struct {
	lo, hi  *condBound
	eq      *term.Value
	neq     []term.Value
	condPos [][2]int // every contributing condition, for related info
}

func (s *condState) tightenLo(f float64, strict bool) {
	if s.lo == nil || f > s.lo.val || (f == s.lo.val && strict) {
		s.lo = &condBound{val: f, strict: strict}
	}
}

func (s *condState) tightenHi(f float64, strict bool) {
	if s.hi == nil || f < s.hi.val || (f == s.hi.val && strict) {
		s.hi = &condBound{val: f, strict: strict}
	}
}

// checkConditions reports condition sets that no binding can satisfy
// (T002): contradictory bounds (X > 5, X < 3), conflicting equalities,
// an equality excluded by a disequality, or self-contradictions (X != X).
func (c *checker) checkConditions() {
	for _, r := range c.prog.Rules {
		states := make(map[string]*condState)
		get := func(v string) *condState {
			s := states[v]
			if s == nil {
				s = &condState{}
				states[v] = s
			}
			return s
		}
		report := func(v string, line, col int, format string, args ...any) {
			d := c.add(Warning, "T002", line, col,
				"conditions on %s are unsatisfiable: %s", v, fmt.Sprintf(format, args...))
			for _, p := range states[v].condPos {
				if p[0] == line && p[1] == col {
					continue
				}
				d.Related = append(d.Related, Related{
					Pos:     c.pos(p[0], p[1]),
					Message: fmt.Sprintf("conflicting condition on %s", v),
				})
			}
		}
		done := make(map[string]bool)
		for _, cond := range r.Conds {
			v, cval, op, ok := varConstCond(cond)
			if !ok {
				// X op X with the same variable on both sides is decidable
				// without constants.
				if lv, lok := cond.L.(ast.VarExpr); lok {
					if rv, rok := cond.R.(ast.VarExpr); rok && lv.Name == rv.Name {
						switch cond.Op {
						case ast.CmpNeq, ast.CmpLt, ast.CmpGt:
							c.add(Warning, "T002", cond.Line, cond.Col,
								"conditions on %s are unsatisfiable: %s %s %s can never hold",
								lv.Name, lv.Name, cond.Op, lv.Name)
						}
					}
				}
				continue
			}
			if done[v] {
				continue
			}
			s := get(v)
			s.condPos = append(s.condPos, [2]int{cond.Line, cond.Col})
			switch op {
			case ast.CmpEq:
				if s.eq != nil && !term.Equal(*s.eq, cval) {
					report(v, cond.Line, cond.Col, "%s == %s conflicts with %s == %s",
						v, ast.SourceString(cval), v, ast.SourceString(*s.eq))
					done[v] = true
					continue
				}
				cv := cval
				s.eq = &cv
			case ast.CmpNeq:
				s.neq = append(s.neq, cval)
			default:
				if !cval.IsNumeric() {
					continue
				}
				f := cval.FloatVal()
				switch op {
				case ast.CmpLt:
					s.tightenHi(f, true)
				case ast.CmpLe:
					s.tightenHi(f, false)
				case ast.CmpGt:
					s.tightenLo(f, true)
				case ast.CmpGe:
					s.tightenLo(f, false)
				}
			}
			// Re-evaluate satisfiability after each contribution so the
			// diagnostic lands on the condition that closed the interval.
			if s.lo != nil && s.hi != nil &&
				(s.lo.val > s.hi.val || (s.lo.val == s.hi.val && (s.lo.strict || s.hi.strict))) {
				report(v, cond.Line, cond.Col, "bounds %s and %s exclude every value",
					renderLo(s.lo.val, s.lo.strict), renderHi(s.hi.val, s.hi.strict))
				done[v] = true
				continue
			}
			if s.eq != nil {
				bad := ""
				if s.eq.IsNumeric() {
					f := s.eq.FloatVal()
					if s.lo != nil && (f < s.lo.val || (f == s.lo.val && s.lo.strict)) {
						bad = fmt.Sprintf("%s == %s violates %s", v, ast.SourceString(*s.eq), renderLo(s.lo.val, s.lo.strict))
					}
					if s.hi != nil && (f > s.hi.val || (f == s.hi.val && s.hi.strict)) {
						bad = fmt.Sprintf("%s == %s violates %s", v, ast.SourceString(*s.eq), renderHi(s.hi.val, s.hi.strict))
					}
				}
				for _, nv := range s.neq {
					if term.Equal(*s.eq, nv) {
						bad = fmt.Sprintf("%s == %s conflicts with %s != %s",
							v, ast.SourceString(*s.eq), v, ast.SourceString(nv))
					}
				}
				if bad != "" {
					report(v, cond.Line, cond.Col, "%s", bad)
					done[v] = true
				}
			}
		}
	}
}

// renderLo/renderHi format interval bounds for messages.
func renderLo(v float64, strict bool) string {
	op := ">="
	if strict {
		op = ">"
	}
	return fmt.Sprintf("%s %s", op, trimFloat(v))
}

func renderHi(v float64, strict bool) string {
	op := "<="
	if strict {
		op = "<"
	}
	return fmt.Sprintf("%s %s", op, trimFloat(v))
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// varConstCond decomposes a condition into (variable, constant, op) when
// one side is a plain variable and the other a constant, normalizing the
// operator so the variable is on the left.
func varConstCond(c ast.Condition) (string, term.Value, ast.CmpOp, bool) {
	if lv, ok := c.L.(ast.VarExpr); ok {
		if rc, ok := c.R.(ast.ConstExpr); ok {
			return lv.Name, rc.Val, c.Op, true
		}
	}
	if lc, ok := c.L.(ast.ConstExpr); ok {
		if rv, ok := c.R.(ast.VarExpr); ok {
			return rv.Name, lc.Val, flipCmp(c.Op), true
		}
	}
	return "", term.Value{}, 0, false
}

func flipCmp(op ast.CmpOp) ast.CmpOp {
	switch op {
	case ast.CmpLt:
		return ast.CmpGt
	case ast.CmpLe:
		return ast.CmpGe
	case ast.CmpGt:
		return ast.CmpLt
	case ast.CmpGe:
		return ast.CmpLe
	default:
		return op
	}
}
