package experiments

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/baseline"
	"repro/internal/gen/dbpedia"
	"repro/internal/gen/doctors"
	"repro/internal/gen/graphs"
	"repro/internal/gen/ibench"
	"repro/internal/gen/iwarded"
	"repro/internal/gen/lubm"
	"repro/internal/parser"
	"repro/vadalog"
)

// Figure6 reproduces the scenario-statistics table: it generates every
// iWarded scenario and tabulates the measured rule statistics (they must
// match the configured ones; the iwarded tests assert equality).
func Figure6() (*Table, error) {
	t := &Table{ID: "Fig6", Title: "iWarded scenario statistics (generated vs paper)"}
	for _, cfg := range iwarded.Scenarios() {
		cfg.FactsPerRel = 10
		g, err := iwarded.Generate(cfg)
		if err != nil {
			return nil, err
		}
		prog, err := parser.Parse(g.Source)
		if err != nil {
			return nil, err
		}
		st := analysis.ComputeStats(prog)
		t.Rows = append(t.Rows, Row{
			Scenario: cfg.Name, System: "iwarded",
			Param: fmt.Sprintf("L=%d J=%d", st.LinearRules, st.JoinRules),
			Note: fmt.Sprintf("Lrec=%d Jrec=%d ∃=%d mixed=%d ward=%d noward=%d harmful=%d",
				st.RecursiveLinear, st.RecursiveJoin, st.ExistentialRules,
				st.MixedJoins, st.HarmlessWithWard, st.HarmlessNoWard, st.HarmfulJoins),
		})
	}
	return t, nil
}

// Figure5a measures the reasoning time of the eight iWarded scenarios
// (all 100 rules activated by draining every output).
func Figure5a(scale float64) (*Table, error) {
	t := &Table{ID: "Fig5a", Title: "iWarded scenarios synthA-synthH, reasoning time"}
	factsPerRel := int(1000 * scale)
	if factsPerRel < 40 {
		factsPerRel = 40
	}
	for _, cfg := range iwarded.Scenarios() {
		cfg.FactsPerRel = factsPerRel
		g, err := iwarded.Generate(cfg)
		if err != nil {
			return nil, err
		}
		if err := addRow(t, cfg.Name, "vadalog", fmt.Sprint(factsPerRel), g.Source, g.Facts, "", nil); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Figure5b measures the iBench scenarios STB-128 and ONT-256 against the
// chase-system baselines, averaging over each scenario's query mix.
func Figure5b(scale float64) (*Table, error) {
	t := &Table{ID: "Fig5b", Title: "iBench STB-128 / ONT-256 vs chase-based baselines (avg over queries)"}
	for _, cfg := range []ibench.Config{ibench.STB128(), ibench.ONT256()} {
		cfg.FactsPerSource = int(float64(cfg.FactsPerSource) * scale)
		// The value domain scales with the instance; below ~50 facts per
		// source the joins become artificially dense, so floor there.
		if cfg.FactsPerSource < 50 {
			cfg.FactsPerSource = 50
		}
		g := ibench.Generate(cfg)
		// Each query is a separate end-to-end session (as in the paper);
		// at reduced scale a representative subset keeps the suite fast.
		queries := g.Queries
		if scale < 0.2 && len(queries) > 3 {
			queries = queries[:3]
		}
		for _, sys := range []struct {
			name string
			opts vadalog.Options
		}{
			{"vadalog", vadalog.Options{}},
			{"restricted", vadalog.Options{Policy: vadalog.PolicyRestricted, MaxDerivations: 4_000_000}},
			{"skolem", vadalog.Options{Policy: vadalog.PolicySkolem, MaxDerivations: 4_000_000}},
		} {
			var total time.Duration
			outputs, derived := 0, 0
			note := ""
			for qi, q := range queries {
				r, err := run(g.Source+q, g.Facts, fmt.Sprintf("ans%d", qi), &sys.opts)
				if err != nil {
					return nil, fmt.Errorf("%s/%s q%d: %w", cfg.Name, sys.name, qi, err)
				}
				total += r.seconds
				outputs += r.output
				derived = r.derived
				if r.note != "" {
					note = r.note
				}
			}
			t.Rows = append(t.Rows, Row{
				Scenario: cfg.Name, System: sys.name,
				Param:   fmt.Sprintf("%d/%d queries", len(queries), len(g.Queries)),
				Seconds: total.Seconds() / float64(len(queries)),
				Output:  outputs, Derived: derived, Note: note,
			})
		}
	}
	return t, nil
}

// personsAxis is the paper's Fig. 5(c) x-axis: 1K..1.5M persons.
var personsAxis = []int{1_000, 10_000, 100_000, 1_000_000, 1_500_000}

// Figure5c measures PSC and AllPSC over DBpedia-scale data while scaling
// the person pool, including the bulk (recursive-SQL-like) comparator on
// the plain-Datalog PSC task.
func Figure5c(scale float64) (*Table, error) {
	t := &Table{ID: "Fig5c", Title: "DBpedia PSC / AllPSC scaling persons"}
	companies := int(67_000 * scale)
	if companies < 500 {
		companies = 500
	}
	for _, persons := range scalePoints(personsAxis, scale, 100) {
		cfg := dbpedia.Config{Companies: companies, Persons: persons,
			KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7}
		data := dbpedia.Generate(cfg)
		param := fmt.Sprint(persons)
		if err := addRow(t, "PSC", "vadalog", param, dbpedia.PSCProgram, data.All(), "psc", nil); err != nil {
			return nil, err
		}
		if err := addRow(t, "AllPSC", "vadalog", param, dbpedia.AllPSCProgram, data.All(), "pscSet", nil); err != nil {
			return nil, err
		}
		// Relational comparator (recursive-CTE-style bulk evaluation).
		r, err := runBulk(dbpedia.PSCProgram, data.All(), "psc")
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Scenario: "PSC", System: "bulk-sql", Param: param,
			Seconds: r.seconds.Seconds(), Output: r.output, Note: r.note})
	}
	return t, nil
}

func runBulk(src string, facts []ast.Fact, outPred string) (runResult, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return runResult{}, err
	}
	be, err := baseline.NewBulkEngine(prog)
	if err != nil {
		return runResult{}, err
	}
	start := time.Now()
	if err := be.Run(facts); err != nil {
		return runResult{}, err
	}
	return runResult{seconds: time.Since(start), output: be.Count(outPred)}, nil
}

// companiesAxis is Fig. 5(d)'s x-axis: 1K..67K companies.
var companiesAxis = []int{1_000, 10_000, 25_000, 50_000, 67_000}

// Figure5d measures SpecStrongLinks (N=1, one company) and AllStrongLinks
// (N=3, all pairs) while scaling companies.
func Figure5d(scale float64) (*Table, error) {
	t := &Table{ID: "Fig5d", Title: "DBpedia SpecStrongLinks / AllStrongLinks scaling companies"}
	for _, companies := range scalePoints(companiesAxis, scale, 200) {
		cfg := dbpedia.Config{Companies: companies, Persons: companies * 3,
			KeyPersonRate: 1.0, ControlRate: 0.35, Seed: 13}
		data := dbpedia.Generate(cfg)
		param := fmt.Sprint(companies)
		if err := addRow(t, "SpecStrongLinks", "vadalog", param,
			dbpedia.SpecStrongLinksProgram(0, 1), data.All(), "strongLink", nil); err != nil {
			return nil, err
		}
		if err := addRow(t, "AllStrongLinks", "vadalog", param,
			dbpedia.StrongLinksProgram(3), data.All(), "strongLink", nil); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Figure5e measures company control on "real-like" ownership graphs
// (AllReal: all pairs; QueryReal: 10 specific source companies averaged).
func Figure5e(scale float64) (*Table, error) {
	return controlFigure("Fig5e", "Company control on real-like ownership graphs",
		[]int{10, 100, 1_000, 10_000, 50_000}, scale,
		func(n int, seed int64) *graphs.Graph { return graphs.RealLike(n, seed) },
		"AllReal", "QueryReal")
}

// Figure5f measures company control on scale-free graphs with the paper's
// learned parameters, up to 1M companies.
func Figure5f(scale float64) (*Table, error) {
	return controlFigure("Fig5f", "Company control on scale-free graphs (α=0.71 β=0.09 γ=0.2)",
		[]int{10, 100, 1_000, 10_000, 100_000, 1_000_000}, scale,
		func(n int, seed int64) *graphs.Graph { return graphs.ScaleFree(n, graphs.PaperParams(), seed) },
		"AllRand", "QueryRand")
}

func controlFigure(id, title string, axis []int, scale float64,
	gen func(int, int64) *graphs.Graph, allName, queryName string) (*Table, error) {
	t := &Table{ID: id, Title: title}
	for _, n := range scalePoints(axis, scale, 10) {
		g := gen(n, 42)
		facts := g.OwnFacts()
		param := fmt.Sprint(n)
		if err := addRow(t, allName, "vadalog", param, graphs.ControlProgram, facts, "control", nil); err != nil {
			return nil, err
		}
		// Query variant: 10 separate source companies, averaged.
		var total time.Duration
		outputs := 0
		queries := 10
		for q := 0; q < queries; q++ {
			src := (q * 7) % g.N
			r, err := run(graphs.QueryControlProgram(src), facts, "control", nil)
			if err != nil {
				return nil, err
			}
			total += r.seconds
			outputs += r.output
		}
		t.Rows = append(t.Rows, Row{Scenario: queryName, System: "vadalog", Param: param,
			Seconds: total.Seconds() / float64(queries), Output: outputs})
	}
	return t, nil
}

// doctorsAxis is Fig. 5(g,h)'s x-axis: 10K..1M source facts.
var doctorsAxis = []int{10_000, 100_000, 500_000, 1_000_000}

// Figure5g measures the Doctors scenario (plain schema mapping) against
// the baselines, averaging the 9-query mix.
func Figure5g(scale float64) (*Table, error) {
	return doctorsFigure("Fig5g", "Doctors (schema mapping, avg over 9 queries)", doctors.Program, scale)
}

// Figure5h is Doctors with target functional dependencies (EGDs).
func Figure5h(scale float64) (*Table, error) {
	return doctorsFigure("Fig5h", "DoctorsFD (schema mapping + EGDs, avg over 9 queries)", doctors.FDProgram, scale)
}

func doctorsFigure(id, title, mapping string, scale float64) (*Table, error) {
	t := &Table{ID: id, Title: title}
	for _, n := range scalePoints(doctorsAxis, scale, 500) {
		facts := doctors.Generate(n, 5)
		for _, sys := range []struct {
			name string
			opts vadalog.Options
		}{
			{"vadalog", vadalog.Options{}},
			{"restricted", vadalog.Options{Policy: vadalog.PolicyRestricted, MaxDerivations: 6_000_000}},
			{"skolem", vadalog.Options{Policy: vadalog.PolicySkolem, MaxDerivations: 6_000_000}},
		} {
			var total time.Duration
			note := ""
			outputs := 0
			qs := doctors.Queries()
			for qi, q := range qs {
				r, err := run(mapping+q, facts, fmt.Sprintf("q%d", qi), &sys.opts)
				if err != nil {
					return nil, err
				}
				total += r.seconds
				outputs += r.output
				if r.note != "" {
					note = r.note
				}
			}
			t.Rows = append(t.Rows, Row{Scenario: id, System: sys.name, Param: fmt.Sprint(n),
				Seconds: total.Seconds() / float64(len(qs)), Output: outputs, Note: note})
		}
	}
	return t, nil
}

// lubmAxis approximates the paper's 90K..120M facts via university counts.
var lubmAxis = []int{1, 3, 10, 25}

// Figure5i measures LUBM (ontology + 14 queries) against the baselines.
func Figure5i(scale float64) (*Table, error) {
	t := &Table{ID: "Fig5i", Title: "LUBM (ontological reasoning, avg over 14 queries)"}
	for _, unis := range scalePoints(lubmAxis, scale, 1) {
		facts := lubm.Generate(lubm.Config{Universities: unis, Seed: 3})
		for _, sys := range []struct {
			name string
			opts vadalog.Options
		}{
			{"vadalog", vadalog.Options{}},
			{"restricted", vadalog.Options{Policy: vadalog.PolicyRestricted, MaxDerivations: 8_000_000}},
			{"skolem", vadalog.Options{Policy: vadalog.PolicySkolem, MaxDerivations: 8_000_000}},
		} {
			var total time.Duration
			outputs := 0
			note := ""
			qs := lubm.Queries()
			for qi, q := range qs {
				r, err := run(lubm.Ontology+q, facts, fmt.Sprintf("q%d", qi+1), &sys.opts)
				if err != nil {
					return nil, err
				}
				total += r.seconds
				outputs += r.output
				if r.note != "" {
					note = r.note
				}
			}
			t.Rows = append(t.Rows, Row{Scenario: "LUBM", System: sys.name,
				Param:   fmt.Sprintf("%d unis (%d facts)", unis, len(facts)),
				Seconds: total.Seconds() / float64(len(qs)), Output: outputs, Note: note})
		}
	}
	return t, nil
}

// Figure7 compares the full termination strategy (guide structures)
// against the trivial exhaustive isomorphism check of Sec. 6.6 on the
// AllPSC scenario, scaling persons (including the paper's extra synthetic
// 2M point).
func Figure7(scale float64) (*Table, error) {
	t := &Table{ID: "Fig7", Title: "AllPSC: full strategy vs trivial isomorphism check"}
	companies := int(67_000 * scale)
	if companies < 500 {
		companies = 500
	}
	axis := append(append([]int{}, personsAxis...), 2_000_000)
	for _, persons := range scalePoints(axis, scale, 100) {
		data := dbpedia.Generate(dbpedia.Config{Companies: companies, Persons: persons,
			KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
		param := fmt.Sprint(persons)
		if err := addRow(t, "AllPSC", "full", param, dbpedia.AllPSCProgram, data.All(), "pscSet", nil); err != nil {
			return nil, err
		}
		if err := addRow(t, "AllPSC", "trivial-iso", param, dbpedia.AllPSCProgram, data.All(), "pscSet",
			&vadalog.Options{Policy: vadalog.PolicyTrivialIso}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Figure8 reproduces the four scaling studies over SynthB: database size,
// rule count (independent blocks), body atoms, and arity.
func Figure8(scale float64) (*Table, error) {
	t := &Table{ID: "Fig8", Title: "Scaling SynthB: db size / #rules / #atoms / arity"}
	base, _ := iwarded.Scenario("synthB")
	if base.EDBRelations == 0 {
		base.EDBRelations = 4
	}

	// (a) DbSize: 10k, 50k, 100k, 500k source facts.
	for _, facts := range scalePoints([]int{10_000, 50_000, 100_000, 500_000}, scale, 400) {
		cfg := base
		cfg.FactsPerRel = facts / cfg.EDBRelations
		g, err := iwarded.Generate(cfg)
		if err != nil {
			return nil, err
		}
		if err := addRow(t, "DbSize", "vadalog", fmt.Sprint(facts), g.Source, g.Facts, "", nil); err != nil {
			return nil, err
		}
	}
	// (b) Rule count: 100..1000 rules as independent blocks.
	for _, blocks := range []int{1, 2, 5, 10} {
		cfg := base
		cfg.FactsPerRel = int(250 * scale)
		if cfg.FactsPerRel < 20 {
			cfg.FactsPerRel = 20
		}
		cfg.Blocks = blocks
		g, err := iwarded.Generate(cfg)
		if err != nil {
			return nil, err
		}
		if err := addRow(t, "Rule#", "vadalog", fmt.Sprint(blocks*100), g.Source, g.Facts, "", nil); err != nil {
			return nil, err
		}
	}
	// (c) Body atoms: 2, 4, 8, 16 atoms in join bodies.
	for _, atoms := range []int{2, 4, 8, 16} {
		cfg := base
		cfg.FactsPerRel = int(250 * scale)
		if cfg.FactsPerRel < 20 {
			cfg.FactsPerRel = 20
		}
		cfg.ExtraBodyAtoms = atoms - 2
		g, err := iwarded.Generate(cfg)
		if err != nil {
			return nil, err
		}
		if err := addRow(t, "Atom#", "vadalog", fmt.Sprint(atoms), g.Source, g.Facts, "", nil); err != nil {
			return nil, err
		}
	}
	// (d) Arity: 3, 6, 12, 24.
	for _, arity := range []int{3, 6, 12, 24} {
		cfg := base
		cfg.FactsPerRel = int(250 * scale)
		if cfg.FactsPerRel < 20 {
			cfg.FactsPerRel = 20
		}
		cfg.Arity = arity
		g, err := iwarded.Generate(cfg)
		if err != nil {
			return nil, err
		}
		if err := addRow(t, "Arity", "vadalog", fmt.Sprint(arity), g.Source, g.Facts, "", nil); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Ablations measures the design-choice ablations DESIGN.md calls out:
// dynamic indexing on/off, horizontal pruning on/off, pipeline vs chase.
func Ablations(scale float64) (*Table, error) {
	t := &Table{ID: "Ablations", Title: "Design ablations (dynamic index, pruning, engine)"}
	companies := int(20_000 * scale)
	if companies < 300 {
		companies = 300
	}
	data := dbpedia.Generate(dbpedia.Config{Companies: companies, Persons: companies * 4,
		KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
	param := fmt.Sprint(companies)

	cases := []struct {
		scenario, system string
		opts             vadalog.Options
	}{
		{"PSC", "index-on", vadalog.Options{}},
		{"PSC", "index-off", vadalog.Options{DisableDynamicIndex: true}},
		{"StrongLinks", "summary-on", vadalog.Options{}},
		{"StrongLinks", "summary-off", vadalog.Options{Policy: vadalog.PolicyNoSummary}},
		{"PSC", "pipeline", vadalog.Options{Engine: vadalog.EnginePipeline}},
		{"PSC", "chase", vadalog.Options{Engine: vadalog.EngineChase}},
	}
	for _, c := range cases {
		src, out := dbpedia.PSCProgram, "psc"
		if c.scenario == "StrongLinks" {
			src, out = dbpedia.StrongLinksProgram(2), "strongLink"
		}
		if err := addRow(t, c.scenario, c.system, param, src, data.All(), out, &c.opts); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// All runs the entire suite at the given scale.
func All(scale float64) ([]*Table, error) {
	type gen func(float64) (*Table, error)
	fig6 := func(float64) (*Table, error) { return Figure6() }
	gens := []gen{fig6, Figure5a, Figure5b, Figure5c, Figure5d, Figure5e, Figure5f,
		Figure5g, Figure5h, Figure5i, Figure7, Figure8, Ablations}
	var out []*Table
	for _, g := range gens {
		tb, err := g(scale)
		if err != nil {
			return out, err
		}
		out = append(out, tb)
	}
	return out, nil
}
