package experiments

import "testing"

// TestAllFiguresTiny runs every figure at a tiny scale, catching breakage
// in any scenario end to end.
func TestAllFiguresTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, err := All(0.002)
	if err != nil {
		t.Fatalf("suite: %v", err)
	}
	if len(tables) != 13 {
		t.Fatalf("expected 13 tables, got %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("table %s has no rows", tb.ID)
		}
		if tb.String() == "" {
			t.Errorf("table %s renders empty", tb.ID)
		}
	}
}

// TestFig7ShapeHolds checks the paper's qualitative claim at small scale:
// the trivial isomorphism check stores every generated fact, so its
// memory-proxy (derived facts are equal) but its bookkeeping exceeds the
// full strategy's; at growing scale its time diverges. Here we assert the
// outputs agree — the performance shape is asserted in EXPERIMENTS.md from
// bench output.
func TestFig7OutputsAgree(t *testing.T) {
	tb, err := Figure7(0.004)
	if err != nil {
		t.Fatalf("fig7: %v", err)
	}
	byParam := map[string][2]int{}
	for _, r := range tb.Rows {
		v := byParam[r.Param]
		if r.System == "full" {
			v[0] = r.Output
		} else {
			v[1] = r.Output
		}
		byParam[r.Param] = v
	}
	for p, v := range byParam {
		if v[0] != v[1] {
			t.Errorf("persons=%s: full=%d trivial=%d outputs differ", p, v[0], v[1])
		}
	}
}
