// Package experiments implements the paper's full experimental evaluation
// (Sec. 6): one function per table/figure, each returning the rows the
// paper plots. The root bench_test.go and cmd/vadabench are thin shells
// around this package. Scale factors shrink the paper's instance sizes so
// the suite runs on laptop budgets while preserving the shapes (who wins,
// growth class, crossovers).
package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/vadalog"
)

// Row is one measured configuration.
type Row struct {
	Scenario string
	System   string
	Param    string  // the x-axis value (persons, companies, facts, ...)
	Seconds  float64 // elapsed reasoning time
	Output   int     // output facts
	Derived  int     // total admitted facts
	Note     string  // DNF reasons etc.
}

// Table is one reproduced figure/table.
type Table struct {
	ID    string // e.g. "Fig5a"
	Title string
	Rows  []Row
}

// String renders the table in the aligned text format vadabench prints.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "%-22s %-14s %-12s %10s %10s %10s  %s\n",
		"scenario", "system", "param", "seconds", "output", "derived", "note")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-22s %-14s %-12s %10.3f %10d %10d  %s\n",
			r.Scenario, r.System, r.Param, r.Seconds, r.Output, r.Derived, r.Note)
	}
	return sb.String()
}

// runResult is the outcome of one reasoning run.
type runResult struct {
	seconds time.Duration
	output  int
	derived int
	note    string
}

// run executes src over facts with opts, counting the facts of outPred.
// Budget overruns are reported as DNF rows instead of errors (that is the
// expected outcome for some baselines, cf. Sec. 6.5).
func run(src string, facts []ast.Fact, outPred string, opts *vadalog.Options) (runResult, error) {
	prog, err := vadalog.Parse(src)
	if err != nil {
		return runResult{}, err
	}
	sess, err := vadalog.NewSession(prog, opts)
	if err != nil {
		return runResult{}, err
	}
	sess.Load(facts...)
	start := time.Now()
	runErr := sess.Run()
	elapsed := time.Since(start)
	res := runResult{seconds: elapsed, derived: sess.Derivations()}
	if runErr != nil {
		if errors.Is(runErr, vadalog.ErrBudget) {
			res.note = "DNF (budget)"
			return res, nil
		}
		return res, runErr
	}
	if outPred != "" {
		res.output = len(sess.Output(outPred))
	}
	return res, nil
}

// addRow measures one configuration and appends it.
func addRow(t *Table, scenario, system, param, src string, facts []ast.Fact, outPred string, opts *vadalog.Options) error {
	r, err := run(src, facts, outPred, opts)
	if err != nil {
		return fmt.Errorf("%s/%s/%s: %w", scenario, system, param, err)
	}
	t.Rows = append(t.Rows, Row{
		Scenario: scenario, System: system, Param: param,
		Seconds: r.seconds.Seconds(), Output: r.output, Derived: r.derived, Note: r.note,
	})
	return nil
}

// scalePoints shrinks a series of paper-scale x-axis values by factor,
// keeping at least lo.
func scalePoints(points []int, factor float64, lo int) []int {
	out := make([]int, len(points))
	for i, p := range points {
		v := int(float64(p) * factor)
		if v < lo {
			v = lo
		}
		out[i] = v
	}
	return out
}
