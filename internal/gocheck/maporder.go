package gocheck

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over a map on the determinism-bearing packages
// unless the loop is provably order-insensitive or follows the
// collect-then-sort idiom. Go randomizes map iteration order, so any map
// range whose body's effects depend on visit order — emitting facts,
// admitting deltas, rendering output, building diagnostics — breaks the
// byte-identical-database invariant the engines are tested under.
//
// A loop passes without annotation when either
//
//   - every effect in its body is order-insensitive: writes to maps or
//     loop-local variables, deletes, integer accumulation (+=, |=, ...;
//     floats are floatfold's domain), guarded by call-free conditions; or
//   - the body only collects keys/values into function-local slices that
//     are all sorted later in the same function (the sortedKeys idiom).
//
// Everything else needs //vadalint:ordered <reason>.
var MapOrder = &Analyzer{
	Name: "maporder",
	Tag:  "ordered",
	Doc:  "flags range over a map on an order-sensitive path without a sort",
	Run:  runMapOrder,
}

// mapOrderScope is the set of package-path suffixes maporder watches:
// the storage→eval→engine emission spine plus the planner and the lint
// renderer, whose outputs are all pinned byte-identical by tests.
var mapOrderScope = []string{
	"internal/chase",
	"internal/pipeline",
	"internal/eval",
	"internal/storage",
	"internal/planner",
	"internal/lint",
}

func runMapOrder(pass *Pass) error {
	if !inScope(pass.Pkg.PkgPath, mapOrderScope) {
		return nil
	}
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body, fd.Body)
		}
	}
	return nil
}

// checkMapRanges walks body for map ranges; encl is the innermost
// function body, the scope searched for collect-then-sort sorting calls.
// Function literals open a new enclosing scope.
func checkMapRanges(pass *Pass, encl *ast.BlockStmt, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkMapRanges(pass, n.Body, n.Body)
			return false
		case *ast.RangeStmt:
			t := pass.Pkg.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			oc := &orderChecker{info: pass.Pkg.Info, lo: n.Body.Pos(), hi: n.Body.End()}
			if oc.insensitiveBlock(n.Body.List) {
				return true
			}
			if collectThenSorted(pass, encl, n) {
				return true
			}
			pass.Reportf(n.Pos(),
				"range over map %s is order-sensitive (Go randomizes iteration): sort a key snapshot first, or annotate //vadalint:ordered <reason>",
				exprString(pass.Pkg.Fset, n.X))
		}
		return true
	})
}

// orderChecker decides order-insensitivity of statements inside one map
// range body spanning [lo, hi).
type orderChecker struct {
	info   *types.Info
	lo, hi token.Pos
}

// local reports whether id resolves to a variable declared inside the
// loop body: writes to such variables cannot leak across iterations.
func (oc *orderChecker) local(id *ast.Ident) bool {
	obj := objOf(oc.info, id)
	return obj != nil && obj.Pos() >= oc.lo && obj.Pos() < oc.hi
}

// insensitiveBlock reports whether every statement's effect is
// independent of iteration order.
func (oc *orderChecker) insensitiveBlock(stmts []ast.Stmt) bool {
	for _, st := range stmts {
		if !oc.insensitiveStmt(st) {
			return false
		}
	}
	return true
}

func (oc *orderChecker) insensitiveStmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.AssignStmt:
		switch st.Tok {
		case token.ASSIGN, token.DEFINE:
			// Writes must land in maps (keyed stores commute), loop-local
			// variables or the blank identifier; values must not call
			// anything that could emit.
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if id.Name == "_" || oc.local(id) {
						continue
					}
					return false
				}
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					return false
				}
				t := oc.info.TypeOf(ix.X)
				if t == nil {
					return false
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return false
				}
			}
			for _, rhs := range st.Rhs {
				if hasCall(oc.info, rhs) {
					return false
				}
			}
			return true
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative-associative folds are order-free for integers;
			// float folds are not (see floatfold) and fail here.
			if !isIntegerType(oc.info.TypeOf(st.Lhs[0])) {
				return false
			}
			return !hasCall(oc.info, st.Rhs[0])
		}
		return false
	case *ast.IncDecStmt:
		return isIntegerType(oc.info.TypeOf(st.X))
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && isBuiltin(oc.info, id, "delete")
	case *ast.IfStmt:
		if st.Init != nil && !oc.insensitiveStmt(st.Init) {
			return false
		}
		if hasCall(oc.info, st.Cond) {
			return false
		}
		if !oc.insensitiveBlock(st.Body.List) {
			return false
		}
		if st.Else != nil {
			return oc.insensitiveStmt(st.Else)
		}
		return true
	case *ast.BlockStmt:
		return oc.insensitiveBlock(st.List)
	case *ast.ForStmt:
		// A nested counted loop is insensitive when its header is
		// call-free and its body is.
		if st.Init != nil && !oc.insensitiveStmt(st.Init) {
			return false
		}
		if st.Cond != nil && hasCall(oc.info, st.Cond) {
			return false
		}
		if st.Post != nil && !oc.insensitiveStmt(st.Post) {
			return false
		}
		return oc.insensitiveBlock(st.Body.List)
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE || st.Tok == token.BREAK
	}
	return false
}

// collectThenSorted recognizes the sortedKeys idiom: the range body only
// appends keys/values (or order-insensitive effects) into collection
// targets — function-local slices or call-free field selectors like
// g.sorted — and every target is passed to a sort call later in the same
// function body. Targets are compared by printed expression, so field
// collectors participate. Conditions guarding the appends are ignored —
// a filter does not order anything.
func collectThenSorted(pass *Pass, encl *ast.BlockStmt, rs *ast.RangeStmt) bool {
	info := pass.Pkg.Info
	fset := pass.Pkg.Fset
	oc := &orderChecker{info: info, lo: rs.Body.Pos(), hi: rs.Body.End()}
	collected := make(map[string]bool)
	ok := true
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			ok = false
			return false
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && appendsToSelf(info, fset, lhs, n.Rhs[i]) && collectTarget(oc, lhs) {
					collected[exprString(fset, lhs)] = true
					continue
				}
				if !oc.insensitiveStmt(&ast.AssignStmt{
					Lhs: []ast.Expr{lhs}, Tok: n.Tok,
					Rhs: []ast.Expr{&ast.Ident{Name: "_"}},
				}) {
					ok = false
				}
			}
			return false
		case *ast.IncDecStmt, *ast.ExprStmt:
			if !oc.insensitiveStmt(n.(ast.Stmt)) {
				ok = false
			}
			return false
		}
		return true
	})
	if !ok || len(collected) == 0 {
		return false
	}
	// Every collected target must be sorted after the loop.
	sorted := make(map[string]bool)
	ast.Inspect(encl, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		pkgID, isPkg := sel.X.(*ast.Ident)
		if !isPkg || (pkgID.Name != "sort" && pkgID.Name != "slices") {
			return true
		}
		sorted[exprString(fset, call.Args[0])] = true
		return true
	})
	for key := range collected {
		if !sorted[key] {
			return false
		}
	}
	return true
}

// collectTarget reports whether lhs can serve as a collection target: a
// non-loop-local identifier, or a call-free selector (a field of a
// long-lived value).
func collectTarget(oc *orderChecker, lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return !oc.local(lhs)
	case *ast.SelectorExpr:
		return !hasCall(oc.info, lhs)
	}
	return false
}

// appendsToSelf reports whether rhs is append(lhs, ...) growing lhs.
func appendsToSelf(info *types.Info, fset *token.FileSet, lhs ast.Expr, rhs ast.Expr) bool {
	call, isCall := rhs.(*ast.CallExpr)
	if !isCall || len(call.Args) == 0 {
		return false
	}
	fn, isFn := call.Fun.(*ast.Ident)
	if !isFn || !isBuiltin(info, fn, "append") {
		return false
	}
	return exprString(fset, call.Args[0]) == exprString(fset, lhs)
}

// hasCall reports whether e contains a function call other than a type
// conversion or a pure builtin (len, cap, min, max).
func hasCall(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isIdent := call.Fun.(*ast.Ident); isIdent {
			switch {
			case isBuiltin(info, id, "len"), isBuiltin(info, id, "cap"),
				isBuiltin(info, id, "min"), isBuiltin(info, id, "max"):
				return true
			}
		}
		if isConversion(info, call) {
			return true
		}
		found = true
		return false
	})
	return found
}

// isConversion reports whether call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltin reports whether id names the predeclared builtin name.
func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	obj := info.Uses[id]
	_, isB := obj.(*types.Builtin)
	return isB
}

// isIntegerType reports whether t's underlying type is an integer.
func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// objOf resolves an identifier to its object (use or definition).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// exprString renders a (small) expression back to source for messages.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
