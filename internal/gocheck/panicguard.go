package gocheck

import (
	"go/ast"
	"go/types"
)

// PanicGuard keeps the engines' crash-isolation discipline auditable:
// a recover() is a deliberate decision to keep running after an
// invariant was violated, so every site must say why that is safe —
// which error the caller sees, and why the session stays consistent.
// The analyzer flags every call to the builtin recover unless the line
// (or the enclosing function's doc comment) carries
// //vadalint:panicguard <reason>. It runs over the whole tree: a
// recover() anywhere in library code is load-bearing and must be
// justified.
var PanicGuard = &Analyzer{
	Name: "panicguard",
	Doc:  "flags recover() sites lacking a //vadalint:panicguard justification",
	Run:  runPanicGuard,
}

func runPanicGuard(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isBuiltinRecover(info, call) {
					return true
				}
				// The function doc comment is an accepted suppression
				// site, mirroring program analyzers' ReportfIn.
				pass.ReportfIn(pass.Pkg, fd.Doc, call.Pos(),
					"recover() without a justification: state what error the caller sees and why the session stays consistent (//vadalint:panicguard <reason>)")
				return true
			})
		}
	}
	return nil
}

// isBuiltinRecover reports whether call invokes the builtin recover —
// not a shadowing local function or method of the same name.
func isBuiltinRecover(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "recover" {
		return false
	}
	_, ok = objOf(info, id).(*types.Builtin)
	return ok
}
