package gocheck

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// vadalintTagRe matches any //vadalint:<tag> comment and captures the
// tag and the trailing reason text.
var vadalintTagRe = regexp.MustCompile(`//vadalint:([A-Za-z0-9_-]+)(.*)`)

// TestAllowlistReasons walks every Go file in the repository and fails
// on any //vadalint: suppression without a reason: a bare tag does not
// suppress (the analyzers re-emit the finding), so one in the tree is
// either dead weight or a misunderstanding — both worth failing the
// build over. Testdata trees are exempt: the fixtures deliberately
// contain a reasonless tag to pin the needs-a-reason behavior.
func TestAllowlistReasons(t *testing.T) {
	root := repoRoot(t)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		line := 0
		for sc.Scan() {
			line++
			for _, m := range vadalintTagRe.FindAllStringSubmatch(sc.Text(), -1) {
				if strings.TrimSpace(m[2]) == "" {
					rel, _ := filepath.Rel(root, path)
					t.Errorf("%s:%d: //vadalint:%s has no reason; suppressions must explain themselves", rel, line, m[1])
				}
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
}
