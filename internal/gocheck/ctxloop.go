package gocheck

import (
	"go/ast"
	"go/types"
)

// CtxLoop guards cancellation responsiveness of the engines: the chase
// is not guaranteed to terminate (warded recursion with existentials can
// run for a very long time even when it does), so every potentially
// unbounded loop in the engine packages must observe its context each
// iteration. The analyzer flags condition-free `for { ... }` and
// bare-condition `for cond { ... }` loops inside functions that receive
// a context.Context when neither the condition nor the body references
// that context value.
//
// Bounded loops — `for i := 0; ...`, `for range x` — never hang on their
// own and are not flagged. A loop that genuinely cannot spin (e.g. it
// drains a bounded channel) is allowlisted with
// //vadalint:ctxloop <reason>.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "flags unbounded engine loops that never observe their context",
	Run:  runCtxLoop,
}

var ctxLoopScope = []string{
	"internal/chase",
	"internal/pipeline",
}

func runCtxLoop(pass *Pass) error {
	if !inScope(pass.Pkg.PkgPath, ctxLoopScope) {
		return nil
	}
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxLoops(pass, fd.Type, fd.Body)
		}
	}
	return nil
}

// checkCtxLoops finds the context parameters of ft and flags unbounded
// loops in body that never mention any of them. Function literals are
// checked against their own signature: a goroutine body that captures
// ctx lexically still references the same objects, so captured contexts
// count too — ctxObjs accumulates down the tree.
func checkCtxLoops(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ctxObjs := contextParams(info, ft)
	var walk func(n ast.Node, ctxs map[types.Object]bool)
	walk = func(n ast.Node, ctxs map[types.Object]bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				inner := contextParams(info, n.Type)
				for o := range ctxs {
					inner[o] = true
				}
				walk(n.Body, inner)
				return false
			case *ast.ForStmt:
				if len(ctxs) == 0 {
					return true
				}
				if n.Init != nil || n.Post != nil {
					return true // counted loop: bounded by construction
				}
				if n.Cond != nil && referencesAny(info, n.Cond, ctxs) {
					return true
				}
				if referencesAny(info, n.Body, ctxs) {
					return true
				}
				pass.Reportf(n.Pos(),
					"unbounded loop in a context-carrying function never observes ctx: check ctx.Err()/ctx.Done() each iteration, or annotate //vadalint:ctxloop <reason>")
			}
			return true
		})
	}
	walk(body, ctxObjs)
}

// contextParams collects the parameter objects of ft whose type is
// context.Context.
func contextParams(info *types.Info, ft *ast.FuncType) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	if ft.Params == nil {
		return objs
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				objs[obj] = true
			}
		}
	}
	return objs
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// referencesAny reports whether n mentions any of the given objects.
func referencesAny(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
