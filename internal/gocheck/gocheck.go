// Package gocheck is the repository's static-analysis layer over its own
// Go source: a small, dependency-free mirror of the
// golang.org/x/tools/go/analysis model (Analyzer, Pass, positioned
// diagnostics) plus a package loader built on `go list -export` and the
// standard library's export-data importer, so the suite runs with
// nothing beyond the Go toolchain itself.
//
// The analyzers encode the invariants every engine PR has pinned
// dynamically — byte-identical databases across engines, worker counts
// and admission orders — as compile-time checks:
//
//	maporder     range over a map on an emission/ordering-sensitive
//	             path without a sort (determinism)
//	internid     raw integers or cross-interner values flowing into
//	             interned-ID positions (ID-space discipline)
//	frozenwrite  mutating Relation/Database/Interner calls reachable
//	             from the frozen-epoch snapshot match path
//	ctxloop      unbounded fixpoint/drain loops that never observe ctx
//	floatfold    float accumulation inside unsorted map iteration
//	             (bit-determinism)
//	panicguard   recover() sites lacking a justification comment
//	             (crash-isolation discipline)
//
// A finding is suppressed by an allowlist comment on the flagged line
// (or the line above, or the enclosing function's doc comment):
//
//	//vadalint:<tag> <reason>
//
// where <tag> is the analyzer's suppression tag (maporder uses
// "ordered"; the others use their analyzer name). The reason is
// mandatory: a bare tag does not suppress, and the allowlist meta-test
// fails the build on reasonless tags anywhere in the tree.
package gocheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a name, a one-line doc, a suppression
// tag and a Run function. Per-package analyzers receive each loaded
// target package in turn; program analyzers (Program true) run once per
// load with every target package visible, which is what whole-program
// call-graph checks need.
type Analyzer struct {
	Name string
	Doc  string
	// Tag is the suppression-comment tag (defaults to Name when empty):
	// //vadalint:<tag> <reason>.
	Tag string
	// Program marks a whole-program analyzer: Run is invoked once with
	// pass.Pkg nil and pass.Prog holding every target package.
	Program bool
	Run     func(pass *Pass) error
}

func (a *Analyzer) tag() string {
	if a.Tag != "" {
		return a.Tag
	}
	return a.Name
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the go-vet-style "file:line:col: [analyzer] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer invocation: the package under analysis (nil
// for program analyzers), the full set of loaded target packages, and
// the diagnostic sink. Suppression comments are honored inside Reportf,
// so analyzers report unconditionally.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     []*Package
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an allowlist comment with a
// reason covers that line. A reasonless allowlist comment does not
// suppress: the diagnostic is emitted with a note demanding the reason.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(p.Pkg, nil, pos, format, args...)
}

// ReportfIn is Reportf for program analyzers, which report into
// packages other than a single pass.Pkg. doc, when non-nil, is an
// additional suppression site (the enclosing function's doc comment).
func (p *Pass) ReportfIn(pkg *Package, doc *ast.CommentGroup, pos token.Pos, format string, args ...any) {
	p.report(pkg, doc, pos, format, args...)
}

func (p *Pass) report(pkg *Package, doc *ast.CommentGroup, pos token.Pos, format string, args ...any) {
	tag := p.Analyzer.tag()
	msg := fmt.Sprintf(format, args...)
	if pkg != nil {
		reason, found := pkg.SuppressionAt(pos, tag)
		if !found && doc != nil {
			reason, found = suppressionIn(doc, tag)
		}
		if found {
			if strings.TrimSpace(reason) != "" {
				return
			}
			msg += fmt.Sprintf(" (//vadalint:%s needs a reason to suppress)", tag)
		}
	}
	var position token.Position
	if pkg != nil {
		position = pkg.Fset.Position(pos)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  msg,
	})
}

// Package is one loaded, type-checked target package.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info

	// comments indexes every comment by file and line for allowlist
	// lookup: comments[file][line] holds the comment text on that line.
	comments map[string]map[int]string
}

// indexComments builds the per-line comment index used by SuppressionAt.
func (pkg *Package) indexComments() {
	pkg.comments = make(map[string]map[int]string)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				m := pkg.comments[pos.Filename]
				if m == nil {
					m = make(map[int]string)
					pkg.comments[pos.Filename] = m
				}
				m[pos.Line] = c.Text
			}
		}
	}
}

// SuppressionAt reports whether an allowlist comment //vadalint:<tag>
// covers pos — on the same line or the line directly above — and
// returns its reason text.
func (pkg *Package) SuppressionAt(pos token.Pos, tag string) (reason string, found bool) {
	p := pkg.Fset.Position(pos)
	lines := pkg.comments[p.Filename]
	for _, ln := range []int{p.Line, p.Line - 1} {
		if text, ok := lines[ln]; ok {
			if r, ok := parseSuppression(text, tag); ok {
				return r, true
			}
		}
	}
	return "", false
}

// suppressionIn scans a comment group (a function's doc comment) for the
// allowlist tag.
func suppressionIn(doc *ast.CommentGroup, tag string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if r, ok := parseSuppression(c.Text, tag); ok {
			return r, true
		}
	}
	return "", false
}

// parseSuppression extracts the reason from "//vadalint:<tag> <reason>".
func parseSuppression(comment, tag string) (string, bool) {
	const prefix = "//vadalint:"
	i := strings.Index(comment, prefix)
	if i < 0 {
		return "", false
	}
	rest := comment[i+len(prefix):]
	if !strings.HasPrefix(rest, tag) {
		return "", false
	}
	rest = rest[len(tag):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // a longer tag, e.g. "ordered2"
	}
	return strings.TrimSpace(rest), true
}

// Analyzers is the full suite, in reporting order.
var Analyzers = []*Analyzer{
	MapOrder,
	InternID,
	FrozenWrite,
	CtxLoop,
	FloatFold,
	PanicGuard,
}

// Check runs every analyzer in suite over the loaded target packages and
// returns the diagnostics sorted by position.
func Check(pkgs []*Package, suite []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range suite {
		if a.Program {
			pass := &Pass{Analyzer: a, Prog: pkgs, diags: &diags}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{Analyzer: a.Name, Message: fmt.Sprintf("internal error: %v", err)})
			}
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: pkgs, diags: &diags}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{Analyzer: a.Name, Message: fmt.Sprintf("internal error (%s): %v", pkg.PkgPath, err)})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// inScope reports whether a package path falls under one of the path
// suffixes an analyzer watches. Packages under a testdata tree are
// always in scope, so analyzer test fixtures exercise the real checks.
func inScope(pkgPath string, suffixes []string) bool {
	if strings.Contains(pkgPath, "/testdata/") {
		return true
	}
	for _, s := range suffixes {
		if strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}
