package gocheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns (package paths, ./... patterns, or directories —
// including explicit testdata directories, which the go tool accepts
// when named directly) to type-checked target packages. Dependencies are
// imported from compiler export data produced by `go list -export`, so
// the loader needs no source for anything but the targets themselves and
// no tooling beyond the Go toolchain. dir is the working directory for
// the go tool ("" = current).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("gocheck: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	importMaps := make(map[string]map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("gocheck: go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("gocheck: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.ImportMap) > 0 {
			importMaps[p.ImportPath] = p.ImportMap
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	// The lookup importer resolves every import from the export data the
	// go tool just wrote; one importer serves all targets because the
	// module graph maps each import path to a single package.
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("gocheck: %v", err)
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: remapImporter{imp: imp, remap: importMaps[t.ImportPath]}}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("gocheck: typecheck %s: %v", t.ImportPath, err)
		}
		pkg := &Package{
			PkgPath: t.ImportPath,
			Fset:    fset,
			Syntax:  files,
			Types:   tpkg,
			Info:    info,
		}
		pkg.indexComments()
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// remapImporter applies a package's vendor/ImportMap renames before
// delegating to the export-data importer (identity in this module, but
// cheap to honor).
type remapImporter struct {
	imp   types.Importer
	remap map[string]string
}

func (r remapImporter) Import(path string) (*types.Package, error) {
	if r.remap != nil {
		if m, ok := r.remap[path]; ok {
			path = m
		}
	}
	return r.imp.Import(path)
}
