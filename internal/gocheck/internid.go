package gocheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// InternID guards the ID-space discipline of the interned-term storage
// layer: interned IDs are dense per-Interner handles, so
//
//   - a raw integer literal or named constant (other than the reserved
//     invalid ID 0) passed where a function expects an interned ID is
//     meaningless,
//   - arithmetic on IDs (id+1, id*2, ...) never denotes a value, and
//   - an ID obtained from one Interner compared against — or decoded
//     through — a different Interner silently yields the wrong value.
//
// A parameter is ID-typed when its type is (or is derived from) uint32
// and it is named "id" or carries an "ID" suffix, the storage layer's
// naming convention. Cross-interner tracking is per-function and
// syntactic: IDs are attributed to the printed receiver expression of
// the Intern/IDOf call that produced them.
var InternID = &Analyzer{
	Name: "internid",
	Doc:  "flags raw integers, ID arithmetic and cross-interner ID flow",
	Run:  runInternID,
}

var internIDScope = []string{
	"internal/chase",
	"internal/pipeline",
	"internal/eval",
	"internal/storage",
	"internal/planner",
}

func runInternID(pass *Pass) error {
	if !inScope(pass.Pkg.PkgPath, internIDScope) {
		return nil
	}
	for _, f := range pass.Pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkInternID(pass, fd)
		}
	}
	return nil
}

func checkInternID(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	// origins maps local ID variables to the printed receiver of the
	// Intern/IDOf call that produced them.
	origins := make(map[types.Object]string)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		key, isID := internerCallKey(pass, info, as.Rhs[0])
		if !isID {
			return true
		}
		// x := in.Intern(v)  or  x, ok := in.IDOf(v)
		if id, isIdent := as.Lhs[0].(*ast.Ident); isIdent {
			if obj := objOf(info, id); obj != nil {
				origins[obj] = key
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkCrossCompare(pass, info, origins, n)
		case *ast.CallExpr:
			checkIDArgs(pass, info, n)
			checkCrossDecode(pass, info, origins, n)
		}
		return true
	})
}

// internerCallKey recognizes in.Intern(v) / in.IDOf(v) expressions and
// returns a key identifying the interner receiver.
func internerCallKey(pass *Pass, info *types.Info, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Intern" && sel.Sel.Name != "IDOf" {
		return "", false
	}
	if !isInternerType(info.TypeOf(sel.X)) {
		return "", false
	}
	return internerKey(pass, sel.X), true
}

// internerKey renders the receiver expression, canonicalizing the
// ".Interner()" accessor away so db and db.Interner() share a key.
func internerKey(pass *Pass, recv ast.Expr) string {
	s := exprString(pass.Pkg.Fset, recv)
	s = strings.TrimSuffix(s, ".Interner()")
	return s
}

// isInternerType reports whether t (possibly a pointer) is a named type
// called Interner declared in a storage package (or a testdata fixture).
func isInternerType(t types.Type) bool {
	return isNamedIn(t, "Interner", "storage")
}

// isNamedIn reports whether t (possibly behind a pointer) is a named
// type with the given name whose package path ends in pkgSuffix or lies
// under a testdata tree.
func isNamedIn(t types.Type, name, pkgSuffix string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != name || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return strings.HasSuffix(path, "/"+pkgSuffix) || path == pkgSuffix ||
		strings.Contains(path, "/testdata/")
}

// checkCrossCompare flags comparisons between IDs attributed to
// different interner receivers.
func checkCrossCompare(pass *Pass, info *types.Info, origins map[types.Object]string, be *ast.BinaryExpr) {
	switch be.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	lk, lok := exprOrigin(pass, info, origins, be.X)
	rk, rok := exprOrigin(pass, info, origins, be.Y)
	if lok && rok && lk != rk {
		pass.Reportf(be.OpPos,
			"comparing interned IDs from different interners (%s vs %s): IDs are only meaningful within one Interner", lk, rk)
	}
}

// checkCrossDecode flags in.ValueOf(x) where x is an ID attributed to a
// different interner receiver.
func checkCrossDecode(pass *Pass, info *types.Info, origins map[types.Object]string, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ValueOf" || len(call.Args) != 1 {
		return
	}
	if !isInternerType(info.TypeOf(sel.X)) {
		return
	}
	recvKey := internerKey(pass, sel.X)
	if argKey, known := exprOrigin(pass, info, origins, call.Args[0]); known && argKey != recvKey {
		pass.Reportf(call.Args[0].Pos(),
			"decoding an ID interned by %s through %s: the ID spaces are unrelated", argKey, recvKey)
	}
}

// exprOrigin attributes an expression to the interner that produced it:
// a tracked local variable, or directly a nested Intern/IDOf call.
func exprOrigin(pass *Pass, info *types.Info, origins map[types.Object]string, e ast.Expr) (string, bool) {
	if id, ok := e.(*ast.Ident); ok {
		if obj := objOf(info, id); obj != nil {
			if key, tracked := origins[obj]; tracked {
				return key, true
			}
		}
		return "", false
	}
	return internerCallKey(pass, info, e)
}

// checkIDArgs flags raw integer constants (except the invalid ID 0) and
// arithmetic expressions passed as interned-ID parameters.
func checkIDArgs(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		p := params.At(pi)
		if !isIDParam(p) {
			continue
		}
		if tv, has := info.Types[arg]; has && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if v, exact := constant.Int64Val(tv.Value); !exact || v != 0 {
				pass.Reportf(arg.Pos(),
					"raw integer %s passed as interned-ID parameter %q of %s: IDs come from an Interner (0 is the only valid literal, the reserved invalid ID)",
					tv.Value, p.Name(), fn.Name())
			}
			continue
		}
		if be, isBin := arg.(*ast.BinaryExpr); isBin && isArithOp(be.Op) {
			pass.Reportf(arg.Pos(),
				"arithmetic expression passed as interned-ID parameter %q of %s: ID arithmetic never denotes a value",
				p.Name(), fn.Name())
		}
	}
}

// calleeFunc resolves the statically called function/method of call.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isIDParam reports whether p follows the interned-ID parameter
// convention: uint32-based and named "id" or suffixed "ID".
func isIDParam(p *types.Var) bool {
	b, ok := p.Type().Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Uint32 {
		return false
	}
	return p.Name() == "id" || strings.HasSuffix(p.Name(), "ID")
}

func isArithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
		return true
	}
	return false
}
