package gocheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatFold guards bit-level determinism of aggregate evaluation: IEEE
// float addition and multiplication are not associative, so folding
// floats in Go's randomized map iteration order yields run-to-run
// different bits — which the byte-identical-database invariant turns
// into test flakes and cross-engine divergence. The monotonic aggregate
// layer sorts contributions before folding for exactly this reason.
//
// The analyzer flags float accumulation (s += x, s = s + x, s *= x, ...)
// into variables declared outside the loop, inside any `range` over a
// map in the watched packages. Fixes: fold over a sorted snapshot, or
// accumulate integers/use an order-free reduction (min/max are safe).
// Deliberate approximate folds are allowlisted with
// //vadalint:floatfold <reason>.
var FloatFold = &Analyzer{
	Name: "floatfold",
	Doc:  "flags float accumulation inside unsorted map iteration",
	Run:  runFloatFold,
}

var floatFoldScope = []string{
	"internal/chase",
	"internal/pipeline",
	"internal/eval",
	"internal/storage",
	"internal/planner",
}

func runFloatFold(pass *Pass) error {
	if !inScope(pass.Pkg.PkgPath, floatFoldScope) {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkFloatFolds(pass, rs)
			return true
		})
	}
	return nil
}

// checkFloatFolds flags float accumulations inside rs's body whose
// target is declared outside the loop body (loop-local accumulators
// reset each iteration and cannot carry order dependence).
func checkFloatFolds(pass *Pass, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	oc := &orderChecker{info: info, lo: rs.Body.Pos(), hi: rs.Body.End()}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) == 1 && floatAccumTarget(oc, as.Lhs[0]) {
				pass.Reportf(as.Pos(),
					"float accumulation into %s inside map iteration is order-dependent (IEEE addition is not associative): fold over a sorted snapshot, or annotate //vadalint:floatfold <reason>",
					exprString(pass.Pkg.Fset, as.Lhs[0]))
			}
		case token.ASSIGN:
			// s = s + x / s = x + s (and -, *, /) spelled out.
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) || !floatAccumTarget(oc, lhs) {
					continue
				}
				be, isBin := as.Rhs[i].(*ast.BinaryExpr)
				if !isBin {
					continue
				}
				switch be.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
				default:
					continue
				}
				if sameObjectExpr(info, lhs, be.X) || sameObjectExpr(info, lhs, be.Y) {
					pass.Reportf(as.Pos(),
						"float accumulation into %s inside map iteration is order-dependent (IEEE addition is not associative): fold over a sorted snapshot, or annotate //vadalint:floatfold <reason>",
						exprString(pass.Pkg.Fset, lhs))
				}
			}
		}
		return true
	})
}

// floatAccumTarget reports whether lhs is a float-typed target declared
// outside the loop body.
func floatAccumTarget(oc *orderChecker, lhs ast.Expr) bool {
	t := oc.info.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return false
	}
	if id, isIdent := lhs.(*ast.Ident); isIdent {
		return !oc.local(id)
	}
	// Field/index targets live beyond the iteration by construction.
	return true
}

// sameObjectExpr reports whether a and b are identifiers resolving to
// the same object.
func sameObjectExpr(info *types.Info, a, b ast.Expr) bool {
	ai, ok := a.(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := b.(*ast.Ident)
	if !ok {
		return false
	}
	ao, bo := objOf(info, ai), objOf(info, bi)
	return ao != nil && ao == bo
}
