package gocheck

import (
	"path/filepath"
	"testing"
)

// repoRoot resolves the module root (two levels up from this package),
// the working directory for the go tool.
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolve repo root: %v", err)
	}
	return abs
}

func TestMapOrderFixture(t *testing.T) {
	RunAnalyzer(t, repoRoot(t), []*Analyzer{MapOrder}, fixturePattern("maporder"))
}

func TestInternIDFixture(t *testing.T) {
	RunAnalyzer(t, repoRoot(t), []*Analyzer{InternID}, fixturePattern("internid"))
}

func TestFrozenWriteFixture(t *testing.T) {
	RunAnalyzer(t, repoRoot(t), []*Analyzer{FrozenWrite}, fixturePattern("frozenwrite"))
}

func TestCtxLoopFixture(t *testing.T) {
	RunAnalyzer(t, repoRoot(t), []*Analyzer{CtxLoop}, fixturePattern("ctxloop"))
}

func TestFloatFoldFixture(t *testing.T) {
	RunAnalyzer(t, repoRoot(t), []*Analyzer{FloatFold}, fixturePattern("floatfold"))
}

func TestPanicGuardFixture(t *testing.T) {
	RunAnalyzer(t, repoRoot(t), []*Analyzer{PanicGuard}, fixturePattern("panicguard"))
}

// TestTreeClean runs the full suite over the real tree, mirroring the
// CI vadalint step: the repository must stay free of unsuppressed
// findings. (go list's ./... pattern skips testdata trees, so the
// deliberately-dirty fixtures do not count.)
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	diags := Check(pkgs, Analyzers)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		comment, tag string
		reason       string
		found        bool
	}{
		{"//vadalint:ordered per-index loop", "ordered", "per-index loop", true},
		{"//vadalint:ordered", "ordered", "", true},
		{"//vadalint:ordered2 reason", "ordered", "", false},
		{"// plain comment", "ordered", "", false},
		{"//vadalint:ctxloop drains bounded queue", "ctxloop", "drains bounded queue", true},
		{"\t//vadalint:frozenwrite guarded by !mt.Snapshot", "frozenwrite", "guarded by !mt.Snapshot", true},
	}
	for _, c := range cases {
		reason, found := parseSuppression(c.comment, c.tag)
		if found != c.found || reason != c.reason {
			t.Errorf("parseSuppression(%q, %q) = (%q, %v), want (%q, %v)",
				c.comment, c.tag, reason, found, c.reason, c.found)
		}
	}
}
