package gocheck

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// expectation is one `// want "substring"` annotation in a testdata
// fixture: a diagnostic from the analyzer under test must land on the
// annotated line and contain the substring.
type expectation struct {
	file string
	line int
	want string
	hit  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// TestingT is the subset of *testing.T the runner needs (avoids
// importing testing into the non-test package).
type TestingT interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunAnalyzer loads the given patterns (testdata fixture directories,
// resolved relative to dir) and checks suite's diagnostics against the
// fixtures' `// want "substring"` annotations: every annotated line must
// produce a matching diagnostic, and every diagnostic must be annotated.
// Lines carrying no annotation assert cleanliness, so each fixture is
// both the flagged and the clean case for its analyzer.
func RunAnalyzer(t TestingT, dir string, suite []*Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		t.Fatalf("gocheck: load %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("gocheck: load %v: no packages", patterns)
	}
	diags := Check(pkgs, suite)

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pos := pkg.Fset.Position(c.Pos())
						wants = append(wants, &expectation{
							file: pos.Filename,
							line: pos.Line,
							want: unescapeWant(m[1]),
						})
					}
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	for _, d := range diags {
		if exp := matchWant(wants, d.Pos, d.Message); exp != nil {
			exp.hit = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, exp := range wants {
		if !exp.hit {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", exp.file, exp.line, exp.want)
		}
	}
}

// matchWant finds the first unconsumed expectation on the diagnostic's
// line whose substring matches.
func matchWant(wants []*expectation, pos token.Position, msg string) *expectation {
	for _, exp := range wants {
		if exp.hit || exp.file != pos.Filename || exp.line != pos.Line {
			continue
		}
		if strings.Contains(msg, exp.want) {
			return exp
		}
	}
	return nil
}

// unescapeWant resolves \" and \\ escapes in a want substring.
func unescapeWant(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			b.WriteByte(s[i])
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// fixturePattern builds the package pattern for one analyzer's testdata
// tree, e.g. fixturePattern("maporder") =
// "./internal/gocheck/testdata/src/maporder/...".
func fixturePattern(name string) string {
	return fmt.Sprintf("./internal/gocheck/testdata/src/%s/...", name)
}
