package gocheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FrozenWrite enforces the frozen-epoch discipline of the parallel
// chase: between Database.Freeze and the next serial mutation, match
// workers probe storage concurrently, so nothing reachable from the
// snapshot match path may mutate a Relation, a Database, the Interner or
// the null factory.
//
// Roots of the frozen region are (a) every method of the eval Matcher —
// the dual-mode matcher whose whole method set runs under Snapshot
// workers — (b) any function that constructs a Matcher with
// Snapshot: true or calls the read-only SnapshotLookup probes directly,
// and (c) the storage prepass's runShard method — the per-shard dedup
// goroutines of partitioned admission, which probe relation shards
// concurrently and must stay read-only for the same reason workers must.
// The analyzer walks the static call graph from the roots and reports
// every call edge into a mutating storage method (the sink set below).
//
// Runtime-guarded dispatch sites (the !mt.Snapshot branches) are the
// expected suppressions: annotate the call line or the enclosing
// function's doc comment with //vadalint:frozenwrite <reason> stating
// why the mutating branch cannot execute on the worker path.
var FrozenWrite = &Analyzer{
	Name:    "frozenwrite",
	Doc:     "flags mutating storage calls reachable from the snapshot match path",
	Program: true,
	Run:     runFrozenWrite,
}

// frozenSinks lists the mutating methods per receiver type name. Type
// names are matched together with their declaring package's path suffix
// (storage, term), so testdata fixtures participate.
var frozenSinks = map[string]map[string]string{
	"Relation": {
		"Insert": "storage", "Replace": "storage", "retract": "storage",
		"restride": "storage", "Freeze": "storage", "EnsureIndex": "storage",
		"EnsureIndexSized": "storage", "ensureIndexSized": "storage",
		"extendIndex": "storage", "liveSnapshot": "storage",
		"SetNoIndex": "storage", "DropIndexes": "storage",
		"LookupIDs": "storage", "Lookup": "storage",
		"LookupCount": "storage", "LookupCountIDs": "storage",
		"PromoteIndex": "storage", "observeRow": "storage",
		"usage": "storage", "internRow": "storage",
		"InsertPrepared": "storage", "insertRow": "storage",
		"SetShards": "storage",
	},
	"Database": {
		"Insert": "storage", "InsertEDB": "storage", "Rel": "storage",
		"Freeze": "storage", "DisableIndexes": "storage",
	},
	"Interner": {
		"Intern": "storage",
	},
	"NullFactory": {
		"Skolem": "term", "Fresh": "term", "Reserve": "term",
	},
}

// funcNode is one function in the static call graph. The graph is keyed
// by types.Func.FullName() rather than object identity: each target
// package typechecks against export data, so the *types.Func for a
// storage method seen from eval is a different object than the one from
// storage's own source — but their full names coincide.
type funcNode struct {
	decl  *ast.FuncDecl
	pkg   *Package
	calls []callEdge
}

// callEdge is one static call site: the callee's full name, the sink
// label when the callee is a mutating storage method ("" otherwise), and
// the call position.
type callEdge struct {
	callee string
	sink   string
	pos    token.Pos
}

func runFrozenWrite(pass *Pass) error {
	nodes := make(map[string]*funcNode)
	var roots []string

	// Pass 1: index declarations, collect call edges, classify sinks at
	// the edge (by callee name), and mark roots.
	for _, pkg := range pass.Prog {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &funcNode{decl: fd, pkg: pkg}
				nodes[fn.FullName()] = node
				isRoot := isMatcherMethod(fn) || isShardGoroutine(fn)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						if callee := calleeFunc(pkg.Info, n); callee != nil {
							label, _ := sinkLabel(callee)
							node.calls = append(node.calls, callEdge{
								callee: callee.FullName(), sink: label, pos: n.Pos(),
							})
							if callee.Name() == "SnapshotLookupIDs" || callee.Name() == "SnapshotLookupCountIDs" {
								isRoot = true
							}
						}
					case *ast.CompositeLit:
						if snapshotTrueLiteral(pkg.Info, n) {
							isRoot = true
						}
					case *ast.AssignStmt:
						if assignsSnapshotTrue(pkg.Info, n) {
							isRoot = true
						}
					}
					return true
				})
				if isRoot {
					roots = append(roots, fn.FullName())
				}
			}
		}
	}

	// Pass 2: BFS over static call edges from the roots; sink edges
	// terminate paths (their internals are the mutation, not a path
	// through it).
	parent := make(map[string]string)
	reached := make(map[string]bool)
	sort.Strings(roots)
	queue := append([]string(nil), roots...)
	for _, r := range queue {
		reached[r] = true
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		node := nodes[name]
		if node == nil {
			continue
		}
		for _, e := range node.calls {
			if e.sink != "" || reached[e.callee] {
				continue
			}
			if nodes[e.callee] == nil {
				continue // outside the loaded program (stdlib, pure helpers)
			}
			reached[e.callee] = true
			parent[e.callee] = name
			queue = append(queue, e.callee)
		}
	}

	// Pass 3: report every edge from a reached function into a sink.
	var names []string
	for name := range reached {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		node := nodes[name]
		if node == nil {
			continue
		}
		for _, e := range node.calls {
			if e.sink == "" {
				continue
			}
			pass.ReportfIn(node.pkg, node.decl.Doc, e.pos,
				"mutating %s call is reachable from the frozen-epoch match path (%s): workers probe concurrently between Freeze and the next serial mutation; guard it and annotate //vadalint:frozenwrite <reason>",
				e.sink, chainString(parent, name))
		}
	}
	return nil
}

// sinkLabel classifies fn as a mutating storage method, returning its
// "Type.Method" label.
func sinkLabel(fn *types.Func) (string, bool) {
	recv := recvTypeName(fn)
	if recv == "" {
		return "", false
	}
	methods, ok := frozenSinks[recv]
	if !ok {
		return "", false
	}
	pkgSuffix, ok := methods[fn.Name()]
	if !ok {
		return "", false
	}
	if fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if !strings.HasSuffix(path, "/"+pkgSuffix) && path != pkgSuffix &&
		!strings.Contains(path, "/testdata/") {
		return "", false
	}
	return recv + "." + fn.Name(), true
}

// recvTypeName returns the name of fn's receiver type ("" for plain
// functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if n, isNamed := t.(*types.Named); isNamed {
		return n.Obj().Name()
	}
	return ""
}

// isMatcherMethod reports whether fn is a method of the eval Matcher
// (or a testdata fixture's Matcher).
func isMatcherMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedIn(sig.Recv().Type(), "Matcher", "eval")
}

// isShardGoroutine reports whether fn is the storage prepass's runShard
// method (or a fixture's) — the body of a shard-local dedup goroutine of
// partitioned admission, which may probe but never mutate.
func isShardGoroutine(fn *types.Func) bool {
	if fn.Name() != "runShard" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedIn(sig.Recv().Type(), "prepass", "storage")
}

// snapshotTrueLiteral matches Matcher{..., Snapshot: true, ...}.
func snapshotTrueLiteral(info *types.Info, cl *ast.CompositeLit) bool {
	if !isNamedIn(info.TypeOf(cl), "Matcher", "eval") {
		return false
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Snapshot" {
			continue
		}
		if v, ok := kv.Value.(*ast.Ident); ok && v.Name == "true" {
			return true
		}
	}
	return false
}

// assignsSnapshotTrue matches m.Snapshot = true.
func assignsSnapshotTrue(info *types.Info, as *ast.AssignStmt) bool {
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Snapshot" {
			continue
		}
		if !isNamedIn(info.TypeOf(sel.X), "Matcher", "eval") {
			continue
		}
		if i < len(as.Rhs) {
			if v, ok := as.Rhs[i].(*ast.Ident); ok && v.Name == "true" {
				return true
			}
		}
	}
	return false
}

// chainString renders the BFS path from a root to fn, e.g.
// "via (*...eval.Matcher).lookupRows -> helper".
func chainString(parent map[string]string, name string) string {
	var hops []string
	for n := name; n != ""; n = parent[n] {
		hops = append([]string{shortFuncName(n)}, hops...)
		if len(hops) > 6 {
			hops = append([]string{"..."}, hops[1:]...)
			break
		}
	}
	return "via " + strings.Join(hops, " -> ")
}

// shortFuncName strips package paths from a FullName for readable
// chains: "(*repro/internal/eval.Matcher).lookupRows" becomes
// "(*Matcher).lookupRows".
func shortFuncName(full string) string {
	out := full
	if i := strings.LastIndex(out, "/"); i >= 0 {
		// Trim the import path inside "(*path/to/pkg.Type).Method" or
		// "path/to/pkg.Func".
		head := out[:i]
		tail := out[i+1:]
		for _, lead := range []string{"(*", "("} {
			if strings.HasPrefix(head, lead) {
				return lead + tail
			}
		}
		return tail
	}
	return out
}
