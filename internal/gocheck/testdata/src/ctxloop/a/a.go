// Package a is the ctxloop fixture: unbounded loops with and without
// context observation.
package a

import "context"

// drainForever spins without ever observing ctx: flagged.
func drainForever(ctx context.Context, ch chan int) int {
	n := 0
	for { // want "never observes ctx"
		v, ok := <-ch
		if !ok {
			return n
		}
		n += v
	}
}

// condLoop has a bare condition that ignores ctx: flagged.
func condLoop(ctx context.Context, ch chan int) int {
	n := 0
	done := false
	for !done { // want "never observes ctx"
		v, ok := <-ch
		if !ok {
			done = true
			continue
		}
		n += v
	}
	return n
}

// drainChecked selects on ctx.Done each iteration: clean.
func drainChecked(ctx context.Context, ch chan int) int {
	n := 0
	for {
		select {
		case <-ctx.Done():
			return n
		case v, ok := <-ch:
			if !ok {
				return n
			}
			n += v
		}
	}
}

// errChecked polls ctx.Err in the condition: clean.
func errChecked(ctx context.Context, work func() bool) {
	for ctx.Err() == nil {
		if !work() {
			return
		}
	}
}

// counted is bounded by construction: clean.
func counted(ctx context.Context, work func()) {
	for i := 0; i < 64; i++ {
		work()
	}
}

// noCtx has no context to observe: clean (cancellation is the caller's
// problem).
func noCtx(ch chan int) int {
	n := 0
	for {
		v, ok := <-ch
		if !ok {
			return n
		}
		n += v
	}
}

// workerCapture launches a goroutine whose loop captures ctx lexically:
// clean.
func workerCapture(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
}

// workerBad launches a goroutine whose loop ignores the captured ctx:
// flagged.
func workerBad(ctx context.Context, ch chan int) {
	go func() {
		for { // want "never observes ctx"
			_, ok := <-ch
			if !ok {
				return
			}
		}
	}()
}

// allowlisted drains a pre-closed bounded channel: the reasoned
// suppression silences the finding.
func allowlisted(ctx context.Context, ch chan int) int {
	n := 0
	//vadalint:ctxloop fixture: ch is closed before entry, loop is bounded
	for {
		v, ok := <-ch
		if !ok {
			return n
		}
		n += v
	}
}
