// Package a is the internid fixture: a miniature Interner with the real
// storage layer's shape, plus flagged and clean ID flows.
package a

// Value stands in for the storage term value.
type Value struct{ S string }

// Interner mirrors the storage Interner's API surface.
type Interner struct {
	ids  map[string]uint32
	vals []Value
}

// Intern returns the dense ID for v, allocating one if needed.
func (in *Interner) Intern(v Value) uint32 {
	if id, ok := in.ids[v.S]; ok {
		return id
	}
	id := uint32(len(in.vals) + 1)
	in.ids[v.S] = id
	in.vals = append(in.vals, v)
	return id
}

// IDOf returns the ID for v without allocating.
func (in *Interner) IDOf(v Value) (uint32, bool) {
	id, ok := in.ids[v.S]
	return id, ok
}

// ValueOf decodes an ID.
func (in *Interner) ValueOf(id uint32) Value {
	return in.vals[id-1]
}

// lookup is a consumer with an ID-typed parameter.
func lookup(id uint32) bool { return id != 0 }

// probe is a consumer with a suffixed ID parameter.
func probe(rowID uint32) bool { return rowID != 0 }

// rawLiteral passes a raw integer where an ID is expected: flagged.
func rawLiteral() bool {
	return lookup(7) // want "raw integer"
}

// namedConst is still a raw constant: flagged.
func namedConst() bool {
	const magic = 42
	return probe(magic) // want "raw integer"
}

// invalidZero passes the reserved invalid ID: clean.
func invalidZero() bool {
	return lookup(0)
}

// arithmetic performs ID arithmetic into an ID position: flagged.
func arithmetic(in *Interner, v Value) bool {
	id := in.Intern(v)
	return lookup(id + 1) // want "arithmetic"
}

// properFlow passes an interned ID straight through: clean.
func properFlow(in *Interner, v Value) bool {
	id := in.Intern(v)
	return lookup(id)
}

// crossCompare compares IDs from two different interners: flagged.
func crossCompare(a, b *Interner, v Value) bool {
	x := a.Intern(v)
	y := b.Intern(v)
	return x == y // want "different interners"
}

// sameCompare compares IDs from one interner: clean.
func sameCompare(a *Interner, v, w Value) bool {
	x := a.Intern(v)
	y := a.Intern(w)
	return x == y
}

// crossDecode decodes an ID through the wrong interner: flagged.
func crossDecode(a, b *Interner, v Value) Value {
	id := a.Intern(v)
	return b.ValueOf(id) // want "ID spaces are unrelated"
}

// sameDecode decodes through the producing interner: clean.
func sameDecode(a *Interner, v Value) Value {
	id := a.Intern(v)
	return a.ValueOf(id)
}
