// Package a is the panicguard fixture: recover() sites with and
// without a justification comment.
package a

import "fmt"

// bareRecover has no justification anywhere: flagged.
func bareRecover() (err error) {
	defer func() {
		if r := recover(); r != nil { // want "recover\(\) without a justification"
			err = fmt.Errorf("recovered: %v", r)
		}
	}()
	return nil
}

// lineJustified carries the allowlist comment on the recover line: clean.
func lineJustified() (err error) {
	defer func() {
		if r := recover(); r != nil { //vadalint:panicguard fixture: caller sees a wrapped error, no state mutated yet
			err = fmt.Errorf("recovered: %v", r)
		}
	}()
	return nil
}

// docJustified justifies every recover in its doc comment: clean.
//
//vadalint:panicguard fixture: both recovers convert crashes to errors before any mutation
func docJustified() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovered: %v", r)
		}
	}()
	defer func() {
		recover()
	}()
	return nil
}

// reasonless tags the line but gives no reason: still flagged, with the
// demand for a reason appended.
func reasonless() {
	defer func() {
		//vadalint:panicguard
		recover() // want "needs a reason to suppress"
	}()
}

// shadowed calls a local function named recover, not the builtin: clean.
func shadowed() {
	recover := func() any { return nil }
	if r := recover(); r != nil {
		panic(r)
	}
}
