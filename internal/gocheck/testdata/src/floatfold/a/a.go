// Package a is the floatfold fixture: float folds inside map iteration,
// order-dependent and safe.
package a

import "sort"

// sumUnsorted folds floats in map order: flagged.
func sumUnsorted(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want "order-dependent"
	}
	return s
}

// spelledOut writes the fold as s = s + v: flagged.
func spelledOut(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s = s + v // want "order-dependent"
	}
	return s
}

// productUnsorted multiplies in map order: flagged.
func productUnsorted(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want "order-dependent"
	}
	return p
}

// sumSorted folds over a sorted snapshot: clean (the loop is over a
// slice, not a map).
func sumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// countKeys folds integers, which commute exactly: clean.
func countKeys(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// maxValue uses an order-free reduction: clean (comparison, not
// accumulation).
func maxValue(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// localAccum resets its accumulator each iteration: clean.
func localAccum(m map[string][]float64, out map[string]float64) {
	for k, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
}

// allowlisted is a deliberate approximate fold: silent.
func allowlisted(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		//vadalint:floatfold fixture: diagnostic estimate, bits do not matter
		s += v
	}
	return s
}
