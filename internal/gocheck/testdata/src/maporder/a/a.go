// Package a is the maporder fixture: each function is one flagged or
// clean shape for range-over-map order sensitivity.
package a

import "sort"

// emitUnsorted appends map values in iteration order: flagged.
func emitUnsorted(m map[string]int, out []int) []int {
	for _, v := range m { // want "order-sensitive"
		out = append(out, v)
	}
	return out
}

// callPerKey calls an emitting function per key: flagged.
func callPerKey(m map[string]int, emit func(string)) {
	for k := range m { // want "order-sensitive"
		emit(k)
	}
}

// sortedKeys is the collect-then-sort idiom: clean.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// invert only writes into a map: keyed stores commute, clean.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// countMatching folds integers under a call-free filter: clean.
func countMatching(m map[string]int, limit int) int {
	n := 0
	for _, v := range m {
		if v < limit {
			n++
		}
	}
	return n
}

// pruneZero deletes during iteration (spec-sanctioned): clean.
func pruneZero(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// localTemps uses loop-local variables freely: clean.
func localTemps(m map[string]int, seen map[int]bool) {
	for _, v := range m {
		_, ok := seen[v]
		if !ok {
			seen[v] = true
		}
	}
}

// allowlisted carries a reasoned suppression: silent.
func allowlisted(m map[string]int, out []int) []int {
	//vadalint:ordered fixture: order feeds an order-agnostic set union
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// bareTag carries a reasonless suppression: still flagged, with the
// needs-a-reason note appended.
func bareTag(m map[string]int, out []int) []int {
	//vadalint:ordered
	for _, v := range m { // want "needs a reason"
		out = append(out, v)
	}
	return out
}

// collectNoSort collects into a slice but never sorts it: flagged.
func collectNoSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "order-sensitive"
		keys = append(keys, k)
	}
	return keys
}
