// Package a is the frozenwrite fixture: a miniature Relation/Matcher
// pair reproducing the frozen-epoch worker topology.
package a

// Relation mirrors the storage Relation's mutating and snapshot APIs.
type Relation struct {
	rows   [][]uint32
	frozen bool
}

// Insert is a mutating sink.
func (r *Relation) Insert(row []uint32) bool {
	r.rows = append(r.rows, row)
	return true
}

// Freeze is a mutating sink.
func (r *Relation) Freeze() { r.frozen = true }

// EnsureIndex is a mutating sink.
func (r *Relation) EnsureIndex(cols []int) {}

// SnapshotLookupIDs is the pure frozen-epoch probe (a root marker for
// its callers, not a sink).
func (r *Relation) SnapshotLookupIDs(key []uint32) [][]uint32 { return nil }

// Matcher mirrors the eval Matcher: its whole method set is a root.
type Matcher struct{ Snapshot bool }

// matchBad mutates storage from the match path: flagged.
func (m *Matcher) matchBad(r *Relation) {
	r.Insert(nil) // want "Relation.Insert"
}

// matchVia reaches a sink through a helper: the helper's call site is
// flagged with the chain.
func (m *Matcher) matchVia(r *Relation) {
	deepHelper(r)
}

func deepHelper(r *Relation) {
	r.Freeze() // want "Relation.Freeze"
}

// matchClean only probes the snapshot: clean.
func (m *Matcher) matchClean(r *Relation) [][]uint32 {
	return r.SnapshotLookupIDs(nil)
}

// guardedDispatch mirrors the engine's dual-mode lookup: the mutating
// branch is runtime-guarded by !m.Snapshot, so the suppression carries
// the reason.
func (m *Matcher) guardedDispatch(r *Relation) {
	if !m.Snapshot {
		//vadalint:frozenwrite fixture: non-snapshot branch runs serially
		r.EnsureIndex(nil)
	}
}

// workerLaunch constructs a Snapshot matcher, making it a root; the
// sink it reaches downstream is flagged.
func workerLaunch(r *Relation) {
	m := Matcher{Snapshot: true}
	_ = m
	launchHelper(r)
}

func launchHelper(r *Relation) {
	r.Insert(nil) // want "Relation.Insert"
}

// serialAdmission is never reached from any root: mutating freely is
// clean.
func serialAdmission(r *Relation) {
	r.Insert(nil)
	r.Freeze()
}

// probeCaller calls the snapshot probe directly, becoming a root; its
// own mutation is flagged.
func probeCaller(r *Relation) {
	_ = r.SnapshotLookupIDs(nil)
	r.Freeze() // want "Relation.Freeze"
}

// InsertPrepared is a mutating sink (serial-merge only).
func (r *Relation) InsertPrepared(row []uint32) bool {
	r.rows = append(r.rows, row)
	return true
}

// ContainsRowHash is the pure concurrent-read probe of partitioned
// admission (not a sink).
func (r *Relation) ContainsRowHash(row []uint32, h uint64) bool { return false }

// prepass mirrors the storage prepass: runShard is the body of a
// shard-local dedup goroutine and roots the frozen region.
type prepass struct{ rels []*Relation }

// runShard probing is clean; mutating — directly or via a helper — is
// flagged.
func (p *prepass) runShard(s int) {
	for _, r := range p.rels {
		_ = r.ContainsRowHash(nil, 0)
	}
	shardHelper(p.rels[s])
}

func shardHelper(r *Relation) {
	r.InsertPrepared(nil) // want "Relation.InsertPrepared"
}
