package parser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/term"
)

// AggregateFuncs is the set of monotonic aggregation function names
// recognized by the parser (paper Sec. 5).
var AggregateFuncs = map[string]bool{
	"msum":   true,
	"mprod":  true,
	"mmin":   true,
	"mmax":   true,
	"mcount": true,
	"munion": true,
}

// Parse parses a full Vadalog program.
func Parse(src string) (*ast.Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := ast.NewProgram()
	for p.tok.kind != tokEOF {
		if err := p.statement(prog); err != nil {
			return nil, err
		}
	}
	// Arity consistency is deliberately NOT checked here: the lint layer
	// reports drift per use site (A001) and the engines reject it at
	// compile time via Program.Predicates.
	return prog, nil
}

// ParseRule parses a single rule (ending with '.').
func ParseRule(src string) (*ast.Rule, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) != 1 || len(prog.Facts) != 0 {
		return nil, fmt.Errorf("parser: expected exactly one rule in %q", src)
	}
	return prog.Rules[0], nil
}

// MustParse parses a program and panics on error; intended for tests and
// generators with programmatically constructed sources.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errorf("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) statement(prog *ast.Program) error {
	if p.tok.kind == tokAt {
		return p.annotation(prog)
	}
	return p.ruleOrFact(prog)
}

// annotation := '@' ident '(' literal {',' literal} ')' '.'
func (p *parser) annotation(prog *ast.Program) error {
	at := p.tok                         // position of '@', recorded on bindings/mappings for compile errors
	if err := p.advance(); err != nil { // consume @
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var args []term.Value
	for p.tok.kind != tokRParen {
		v, err := p.literal()
		if err != nil {
			return err
		}
		args = append(args, v)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
		}
	}
	if err := p.advance(); err != nil { // consume )
		return err
	}
	if _, err := p.expect(tokDot); err != nil {
		return err
	}
	strArg := func(i int) (string, error) {
		if i >= len(args) || args[i].Kind() != term.KindString {
			return "", p.errorf("@%s: argument %d must be a string", name.text, i+1)
		}
		return args[i].Str(), nil
	}
	switch name.text {
	case "input":
		s, err := strArg(0)
		if err != nil {
			return err
		}
		prog.Inputs[s] = true
	case "output":
		s, err := strArg(0)
		if err != nil {
			return err
		}
		prog.Outputs[s] = true
	case "bind", "qbind":
		// @bind(pred, driver, target) attaches a record manager;
		// @qbind(pred, driver, target, query) additionally pushes the
		// query — a constant selection like "$2 > 10" — into the source.
		want := 3
		if name.text == "qbind" {
			want = 4
		}
		if len(args) != want {
			if want == 4 {
				return p.errorf("@qbind expects (predicate, driver, target, query)")
			}
			return p.errorf("@bind expects (predicate, driver, target)")
		}
		pred, err := strArg(0)
		if err != nil {
			return err
		}
		driver, err := strArg(1)
		if err != nil {
			return err
		}
		target, err := strArg(2)
		if err != nil {
			return err
		}
		b := ast.Binding{Pred: pred, Driver: driver, Target: target, Line: at.line, Col: at.col}
		if name.text == "qbind" {
			if b.Query, err = strArg(3); err != nil {
				return err
			}
			if b.Query == "" {
				return p.errorf("@qbind: empty query (use @bind for unconditional bindings)")
			}
		}
		prog.Bindings = append(prog.Bindings, b)
	case "mapping":
		if len(args) < 2 {
			return p.errorf("@mapping expects (predicate, col1, ...)")
		}
		pred, err := strArg(0)
		if err != nil {
			return err
		}
		cols := make([]string, 0, len(args)-1)
		for i := 1; i < len(args); i++ {
			c, err := strArg(i)
			if err != nil {
				return err
			}
			cols = append(cols, c)
		}
		prog.Mappings = append(prog.Mappings, ast.Mapping{Pred: pred, Columns: cols, Line: at.line, Col: at.col})
	case "post":
		if len(args) < 2 {
			return p.errorf("@post expects (predicate, kind [, arg])")
		}
		pred, err := strArg(0)
		if err != nil {
			return err
		}
		kind, err := strArg(1)
		if err != nil {
			return err
		}
		d := ast.PostDirective{Pred: pred, Kind: kind}
		if len(args) > 2 {
			if !args[2].IsNumeric() {
				return p.errorf("@post: third argument must be numeric")
			}
			d.Arg = int(args[2].IntVal())
		}
		switch kind {
		case "orderBy", "certain", "limit", "keepMax", "keepMin":
		default:
			return p.errorf("@post: unknown directive %q", kind)
		}
		prog.Posts = append(prog.Posts, d)
	default:
		return p.errorf("unknown annotation @%s", name.text)
	}
	return nil
}

// ruleOrFact parses `body -> head .` or `atom .` (a fact).
func (p *parser) ruleOrFact(prog *ast.Program) error {
	start := p.tok
	rule := &ast.Rule{Line: start.line, Col: start.col}
	if err := p.body(rule); err != nil {
		return err
	}
	if p.tok.kind == tokDot {
		// A fact or a headless item; only a single ground atom qualifies.
		if err := p.advance(); err != nil {
			return err
		}
		if len(rule.Body) != 1 || len(rule.Conds) != 0 || len(rule.Assignments) != 0 || rule.Aggregate != nil {
			return p.errorf("a statement without '->' must be a single ground fact")
		}
		a := rule.Body[0]
		if a.Negated {
			return p.errorf("a fact cannot be negated")
		}
		f := ast.Fact{Pred: a.Pred, Line: a.Line, Col: a.Col}
		for _, arg := range a.Args {
			if arg.IsVar {
				return p.errorf("fact %s contains variable %s", a.Pred, arg.Var)
			}
			f.Args = append(f.Args, arg.Const)
		}
		prog.Facts = append(prog.Facts, f)
		return nil
	}
	if _, err := p.expect(tokArrow); err != nil {
		return err
	}
	if err := p.head(rule); err != nil {
		return err
	}
	if _, err := p.expect(tokDot); err != nil {
		return err
	}
	if err := validateRule(rule); err != nil {
		return &Error{Line: rule.Line, Col: rule.Col, Msg: err.Error()}
	}
	prog.AddRule(rule)
	return nil
}

// body := item {',' item} where item is an atom, negated atom, condition,
// assignment or aggregation.
func (p *parser) body(rule *ast.Rule) error {
	for {
		if err := p.bodyItem(rule); err != nil {
			return err
		}
		if p.tok.kind != tokComma {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

func (p *parser) bodyItem(rule *ast.Rule) error {
	start := p.tok
	switch p.tok.kind {
	case tokNot:
		if err := p.advance(); err != nil {
			return err
		}
		a, err := p.atom()
		if err != nil {
			return err
		}
		a.Negated = true
		rule.Body = append(rule.Body, a)
		return nil
	case tokVar:
		// Could be: assignment/aggregate (Var = ...), or a condition whose
		// left side starts with a variable.
		name := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tokAssign {
			if err := p.advance(); err != nil {
				return err
			}
			return p.assignmentOrAggregate(rule, name, start)
		}
		// Condition with left side an expression starting at `name`.
		left, err := p.exprContinue(ast.VarExpr{Name: name})
		if err != nil {
			return err
		}
		return p.conditionTail(rule, left, start)
	case tokIdent:
		// Could be an atom `p(...)` or a condition starting with a function
		// call or constant. An identifier followed by '(' is an atom unless
		// it is a known builtin function.
		name := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind == tokLParen && !builtinFunc(name) {
			a, err := p.atomArgs(name, start)
			if err != nil {
				return err
			}
			if a.Pred == ast.DomPred {
				// dom(*) grounds every body variable; dom(V) grounds V only.
				if len(a.Args) == 1 && a.Args[0].IsVar && a.Args[0].Var == "*" {
					rule.UsesDom = true
				} else {
					for _, arg := range a.Args {
						if !arg.IsVar {
							return p.errorf("dom() arguments must be variables")
						}
						rule.DomVars = append(rule.DomVars, arg.Var)
					}
				}
				return nil
			}
			rule.Body = append(rule.Body, a)
			return nil
		}
		var base ast.Expr
		if p.tok.kind == tokLParen {
			args, err := p.callArgs()
			if err != nil {
				return err
			}
			base = ast.FuncExpr{Name: name, Args: args}
		} else {
			base = ast.ConstExpr{Val: term.String(name)}
		}
		left, err := p.exprContinue(base)
		if err != nil {
			return err
		}
		return p.conditionTail(rule, left, start)
	default:
		// Condition starting with a literal or parenthesized expression.
		left, err := p.expr()
		if err != nil {
			return err
		}
		return p.conditionTail(rule, left, start)
	}
}

// assignmentOrAggregate parses the right side of `Var = ...` in a body;
// start is the token of the assigned variable, stamped onto the result.
func (p *parser) assignmentOrAggregate(rule *ast.Rule, name string, start token) error {
	if p.tok.kind == tokIdent && AggregateFuncs[p.tok.text] {
		fn := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		arg, err := p.expr()
		if err != nil {
			return err
		}
		var contributors []string
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
			if _, err := p.expect(tokLt); err != nil {
				return err
			}
			for {
				v, err := p.expect(tokVar)
				if err != nil {
					return err
				}
				contributors = append(contributors, v.text)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return err
				}
			}
			if _, err := p.expect(tokGt); err != nil {
				return err
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		if rule.Aggregate != nil {
			return p.errorf("a rule may contain at most one aggregation")
		}
		rule.Aggregate = &ast.AggregateSpec{Result: name, Func: fn, Arg: arg, Contributors: contributors, Line: start.line, Col: start.col}
		return nil
	}
	e, err := p.expr()
	if err != nil {
		return err
	}
	rule.Assignments = append(rule.Assignments, ast.Assignment{Var: name, Expr: e, Line: start.line, Col: start.col})
	return nil
}

// conditionTail parses the operator and right side of a condition; start
// is the first token of the left expression, stamped onto the condition.
func (p *parser) conditionTail(rule *ast.Rule, left ast.Expr, start token) error {
	var op ast.CmpOp
	switch p.tok.kind {
	case tokEq:
		op = ast.CmpEq
	case tokNeq:
		op = ast.CmpNeq
	case tokLt:
		op = ast.CmpLt
	case tokLe:
		op = ast.CmpLe
	case tokGt:
		op = ast.CmpGt
	case tokGe:
		op = ast.CmpGe
	default:
		return p.errorf("expected comparison operator, found %s", p.tok.kind)
	}
	if err := p.advance(); err != nil {
		return err
	}
	right, err := p.expr()
	if err != nil {
		return err
	}
	rule.Conds = append(rule.Conds, ast.Condition{Op: op, L: left, R: right, Line: start.line, Col: start.col})
	return nil
}

// head := '#fail' | Var '=' Var | atom {',' atom}
func (p *parser) head(rule *ast.Rule) error {
	if p.tok.kind == tokHash {
		if p.tok.text != "fail" {
			return p.errorf("unexpected #%s in head (only #fail)", p.tok.text)
		}
		rule.IsConstraint = true
		return p.advance()
	}
	if p.tok.kind == tokVar {
		// EGD head: X = Y.
		left := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return err
		}
		right, err := p.expect(tokVar)
		if err != nil {
			return err
		}
		rule.EGD = &ast.EGDSpec{Left: left, Right: right.text}
		return nil
	}
	for {
		a, err := p.atom()
		if err != nil {
			return err
		}
		rule.Heads = append(rule.Heads, a)
		if p.tok.kind != tokComma {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

func (p *parser) atom() (ast.Atom, error) {
	name := p.tok
	if _, err := p.expect(tokIdent); err != nil {
		return ast.Atom{}, err
	}
	return p.atomArgs(name.text, name)
}

// atomArgs parses '(' term {',' term} ')' for predicate pred; '*' yields
// the dom(*) guard. start is the predicate-name token; its position is
// stamped onto the atom (and each argument token's onto its Arg).
func (p *parser) atomArgs(pred string, start token) (ast.Atom, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return ast.Atom{}, err
	}
	a := ast.Atom{Pred: pred, Line: start.line, Col: start.col}
	if p.tok.kind == tokStar {
		star := p.tok
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return ast.Atom{}, err
		}
		a.Args = []ast.Arg{{IsVar: true, Var: "*", Line: star.line, Col: star.col}}
		return a, nil
	}
	for p.tok.kind != tokRParen {
		at := p.tok
		switch p.tok.kind {
		case tokVar:
			a.Args = append(a.Args, ast.Arg{IsVar: true, Var: at.text, Line: at.line, Col: at.col})
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
		default:
			v, err := p.literal()
			if err != nil {
				return ast.Atom{}, err
			}
			a.Args = append(a.Args, ast.Arg{Const: v, Line: at.line, Col: at.col})
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
			if p.tok.kind == tokRParen {
				return ast.Atom{}, p.errorf("trailing comma in argument list of %s", pred)
			}
		} else if p.tok.kind != tokRParen {
			return ast.Atom{}, p.errorf("expected , or ) in argument list of %s", pred)
		}
	}
	if err := p.advance(); err != nil { // consume )
		return ast.Atom{}, err
	}
	if len(a.Args) == 0 {
		return ast.Atom{}, p.errorf("predicate %s needs at least one argument", pred)
	}
	return a, nil
}

// literal parses a constant: number, string, #t/#f, negative number, or a
// lowercase identifier (treated as a string constant).
func (p *parser) literal() (term.Value, error) {
	switch p.tok.kind {
	case tokNumber:
		v, err := numberValue(p.tok.text)
		if err != nil {
			return term.Value{}, p.errorf("%v", err)
		}
		return v, p.advance()
	case tokMinus:
		if err := p.advance(); err != nil {
			return term.Value{}, err
		}
		n, err := p.expect(tokNumber)
		if err != nil {
			return term.Value{}, err
		}
		v, err := numberValue(n.text)
		if err != nil {
			return term.Value{}, p.errorf("%v", err)
		}
		if v.Kind() == term.KindInt {
			return term.Int(-v.IntVal()), nil
		}
		return term.Float(-v.FloatVal()), nil
	case tokString:
		v := term.String(p.tok.text)
		return v, p.advance()
	case tokIdent:
		v := term.String(p.tok.text)
		return v, p.advance()
	case tokHash:
		switch p.tok.text {
		case "t":
			return term.Bool(true), p.advance()
		case "f":
			return term.Bool(false), p.advance()
		}
		return term.Value{}, p.errorf("unexpected #%s as literal", p.tok.text)
	default:
		return term.Value{}, p.errorf("expected literal, found %s %q", p.tok.kind, p.tok.text)
	}
}

func numberValue(text string) (term.Value, error) {
	if !strings.ContainsAny(text, ".eE") {
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return term.Value{}, fmt.Errorf("bad integer literal %q", text)
		}
		return term.Int(i), nil
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return term.Value{}, fmt.Errorf("bad float literal %q", text)
	}
	return term.Float(f), nil
}

// expr parses an arithmetic/string/boolean expression (no comparisons).
func (p *parser) expr() (ast.Expr, error) {
	e, err := p.unary()
	if err != nil {
		return nil, err
	}
	return p.exprContinue(e)
}

// exprContinue parses binary operator tails with precedence, starting from
// an already-parsed left operand (precedence floor 0).
func (p *parser) exprContinue(left ast.Expr) (ast.Expr, error) {
	return p.binaryTail(left, 0)
}

func precedence(k tokKind) int {
	switch k {
	case tokOrOr:
		return 1
	case tokAndAnd:
		return 2
	case tokPlus, tokMinus:
		return 3
	case tokStar, tokSlash, tokPercent:
		return 4
	case tokCaret:
		return 5
	default:
		return 0
	}
}

func opText(k tokKind) string {
	switch k {
	case tokOrOr:
		return "||"
	case tokAndAnd:
		return "&&"
	case tokPlus:
		return "+"
	case tokMinus:
		return "-"
	case tokStar:
		return "*"
	case tokSlash:
		return "/"
	case tokPercent:
		return "%"
	case tokCaret:
		return "^"
	default:
		return "?"
	}
}

func (p *parser) binaryTail(left ast.Expr, minPrec int) (ast.Expr, error) {
	for {
		prec := precedence(p.tok.kind)
		if prec == 0 || prec < minPrec {
			return left, nil
		}
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		for {
			nextPrec := precedence(p.tok.kind)
			if nextPrec == 0 || nextPrec <= prec {
				break
			}
			right, err = p.binaryTail(right, nextPrec)
			if err != nil {
				return nil, err
			}
		}
		left = ast.BinExpr{Op: opText(op), L: left, R: right}
	}
}

func (p *parser) unary() (ast.Expr, error) {
	switch p.tok.kind {
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return ast.BinExpr{Op: "-", L: ast.ConstExpr{Val: term.Int(0)}, R: e}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokVar:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return ast.VarExpr{Name: name}, nil
	case tokNumber, tokString:
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return ast.ConstExpr{Val: v}, nil
	case tokHash:
		// #t / #f booleans, or a Skolem function call #f(X,...).
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return ast.FuncExpr{Name: "#" + name, Args: args}, nil
		}
		switch name {
		case "t":
			return ast.ConstExpr{Val: term.Bool(true)}, nil
		case "f":
			return ast.ConstExpr{Val: term.Bool(false)}, nil
		}
		return nil, p.errorf("unexpected #%s in expression", name)
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return ast.FuncExpr{Name: name, Args: args}, nil
		}
		return ast.ConstExpr{Val: term.String(name)}, nil
	default:
		return nil, p.errorf("expected expression, found %s %q", p.tok.kind, p.tok.text)
	}
}

func (p *parser) callArgs() ([]ast.Expr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var args []ast.Expr
	for p.tok.kind != tokRParen {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.tok.kind != tokRParen {
			return nil, p.errorf("expected , or ) in call arguments")
		}
	}
	return args, p.advance()
}

func builtinFunc(name string) bool {
	switch name {
	case "startsWith", "endsWith", "contains", "indexOf", "substring",
		"length", "upper", "lower", "concat", "abs", "min", "max",
		"toInt", "toFloat", "toString":
		return true
	}
	return AggregateFuncs[name]
}

// validateRule runs the structural checks that are independent of the
// whole-program analysis. Messages carry no position or "parser:" prefix;
// the caller wraps them in a positioned *Error at the rule's location.
func validateRule(r *ast.Rule) error {
	if len(r.Heads) == 0 && !r.IsConstraint && r.EGD == nil {
		return fmt.Errorf("rule %s has no head", r.String())
	}
	bound := r.BoundVars()
	for _, c := range r.Conds {
		for _, v := range c.L.Vars(c.R.Vars(nil)) {
			if !bound[v] {
				return fmt.Errorf("condition variable %s is unbound in %s", v, r.String())
			}
		}
	}
	for _, asg := range r.Assignments {
		for _, v := range asg.Expr.Vars(nil) {
			if !bound[v] || v == asg.Var {
				if v == asg.Var {
					return fmt.Errorf("assignment %s is self-referential", asg.Var)
				}
				return fmt.Errorf("assignment to %s reads unbound variable %s", asg.Var, v)
			}
		}
	}
	if r.Aggregate != nil {
		bodyVars := make(map[string]bool)
		for _, v := range r.BodyVars() {
			bodyVars[v] = true
		}
		for _, v := range r.Aggregate.Arg.Vars(nil) {
			if !bodyVars[v] {
				return fmt.Errorf("aggregate argument reads unbound variable %s", v)
			}
		}
		for _, c := range r.Aggregate.Contributors {
			if !bodyVars[c] {
				return fmt.Errorf("aggregate contributor %s is unbound", c)
			}
		}
	}
	if r.EGD != nil {
		bodyVars := make(map[string]bool)
		for _, v := range r.BodyVars() {
			bodyVars[v] = true
		}
		if !bodyVars[r.EGD.Left] || !bodyVars[r.EGD.Right] {
			return fmt.Errorf("EGD head variables must occur in the body")
		}
	}
	// Negated atoms must be safe: every variable bound positively.
	posVars := make(map[string]bool)
	for _, v := range r.BodyVars() {
		posVars[v] = true
	}
	for _, a := range r.Body {
		if !a.Negated {
			continue
		}
		for _, arg := range a.Args {
			if arg.IsVar && arg.Var != "_" && !posVars[arg.Var] {
				return fmt.Errorf("variable %s of negated atom %s is not bound positively", arg.Var, a.String())
			}
		}
	}
	return nil
}
