package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/term"
)

func TestParseBasicRule(t *testing.T) {
	r, err := ParseRule(`own(X,Y,W), W > 0.5 -> control(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 1 || r.Body[0].Pred != "own" {
		t.Fatalf("body: %v", r.Body)
	}
	if len(r.Conds) != 1 || r.Conds[0].Op != ast.CmpGt {
		t.Fatalf("conds: %v", r.Conds)
	}
	if len(r.Heads) != 1 || r.Heads[0].Pred != "control" {
		t.Fatalf("heads: %v", r.Heads)
	}
}

func TestParseExistential(t *testing.T) {
	r, err := ParseRule(`company(X) -> keyPerson(P, X).`)
	if err != nil {
		t.Fatal(err)
	}
	ex := r.Existentials()
	if len(ex) != 1 || ex[0] != "P" {
		t.Fatalf("existentials: %v", ex)
	}
}

func TestParseAggregate(t *testing.T) {
	r, err := ParseRule(`control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Aggregate == nil || r.Aggregate.Func != "msum" || r.Aggregate.Result != "V" {
		t.Fatalf("aggregate: %+v", r.Aggregate)
	}
	if len(r.Aggregate.Contributors) != 1 || r.Aggregate.Contributors[0] != "Y" {
		t.Fatalf("contributors: %v", r.Aggregate.Contributors)
	}
}

func TestParseConstraintAndEGD(t *testing.T) {
	r, err := ParseRule(`own(X,X,W) -> #fail.`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsConstraint {
		t.Fatal("expected constraint")
	}
	r, err = ParseRule(`p(X,Y), p(X,Z) -> Y = Z.`)
	if err != nil {
		t.Fatal(err)
	}
	if r.EGD == nil || r.EGD.Left != "Y" || r.EGD.Right != "Z" {
		t.Fatalf("egd: %+v", r.EGD)
	}
}

func TestParseDomGuards(t *testing.T) {
	r, err := ParseRule(`dom(*), p(X,Y) -> q(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.UsesDom {
		t.Fatal("dom(*) not recognized")
	}
	r, err = ParseRule(`dom(Y), p(X,Y) -> q(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DomVars) != 1 || r.DomVars[0] != "Y" {
		t.Fatalf("dom vars: %v", r.DomVars)
	}
}

func TestParseAnnotations(t *testing.T) {
	prog, err := Parse(`
		@input("own").
		@output("control").
		@bind("own","csv","/tmp/own.csv").
		@post("control","orderBy",2).
		@mapping("own","src","dst","w").
		own(X,Y,W) -> control(X,Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Inputs["own"] || !prog.Outputs["control"] {
		t.Error("input/output lost")
	}
	if len(prog.Bindings) != 1 || prog.Bindings[0].Target != "/tmp/own.csv" {
		t.Errorf("bindings: %v", prog.Bindings)
	}
	if len(prog.Posts) != 1 || prog.Posts[0].Arg != 2 {
		t.Errorf("posts: %v", prog.Posts)
	}
	if len(prog.Mappings) != 1 || len(prog.Mappings[0].Columns) != 3 {
		t.Errorf("mappings: %v", prog.Mappings)
	}
	if prog.Bindings[0].Query != "" {
		t.Errorf("@bind grew a query: %q", prog.Bindings[0].Query)
	}
	if prog.Bindings[0].Line != 4 || prog.Mappings[0].Line != 6 {
		t.Errorf("positions: bind %d:%d mapping %d:%d",
			prog.Bindings[0].Line, prog.Bindings[0].Col, prog.Mappings[0].Line, prog.Mappings[0].Col)
	}
}

func TestParseQbind(t *testing.T) {
	prog, err := Parse(`
		@qbind("own","csv","/tmp/own.csv","$3 > 0.5").
		own(X,Y,W) -> control(X,Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Bindings) != 1 {
		t.Fatalf("bindings: %v", prog.Bindings)
	}
	b := prog.Bindings[0]
	if b.Query != "$3 > 0.5" || b.Driver != "csv" || b.Pred != "own" {
		t.Errorf("qbind binding: %+v", b)
	}
	// The query argument is mandatory and distinct from @bind.
	for _, bad := range []string{
		`@qbind("own","csv","/tmp/own.csv").`,
		`@qbind("own","csv","/tmp/own.csv","").`,
		`@bind("own","csv","/tmp/own.csv","$1 > 0").`,
	} {
		if _, err := Parse(bad + "\nown(X,Y,W) -> control(X,Y)."); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	// The rendered program re-parses with the query intact.
	re, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(re.Bindings) != 1 || re.Bindings[0].Query != "$3 > 0.5" {
		t.Errorf("reparse bindings: %+v", re.Bindings)
	}
}

func TestParseFacts(t *testing.T) {
	prog, err := Parse(`
		own(acme, subco, 0.7).
		own("Quoted Co", other, -3).
		flag(x, #t).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 3 {
		t.Fatalf("facts: %v", prog.Facts)
	}
	if prog.Facts[1].Args[0] != term.String("Quoted Co") {
		t.Errorf("quoted: %v", prog.Facts[1])
	}
	if prog.Facts[1].Args[2] != term.Int(-3) {
		t.Errorf("negative: %v", prog.Facts[1])
	}
	if prog.Facts[2].Args[1] != term.Bool(true) {
		t.Errorf("bool: %v", prog.Facts[2])
	}
}

func TestParseNegation(t *testing.T) {
	r, err := ParseRule(`node(X), not bad(X) -> good(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Body[1].Negated {
		t.Fatal("negation lost")
	}
}

func TestParseExpressions(t *testing.T) {
	r, err := ParseRule(`emp(N,S), T = S * 2 + 1 -> out(N, T).`)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]term.Value{"S": term.Int(10)}
	v, err := r.Assignments[0].Expr.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v != term.Int(21) {
		t.Errorf("precedence: got %v want 21", v)
	}
}

func TestParsePrecedence(t *testing.T) {
	r, err := ParseRule(`p(A,B,C), T = A + B * C -> q(T).`)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]term.Value{"A": term.Int(1), "B": term.Int(2), "C": term.Int(3)}
	v, err := r.Assignments[0].Expr.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v != term.Int(7) {
		t.Errorf("1+2*3: got %v", v)
	}
}

func TestParseSkolemCall(t *testing.T) {
	r, err := ParseRule(`p(X), Z = #f(X, 1) -> q(Z).`)
	if err != nil {
		t.Fatal(err)
	}
	fe, ok := r.Assignments[0].Expr.(ast.FuncExpr)
	if !ok || !fe.IsSkolem() || fe.Name != "#f" {
		t.Fatalf("skolem expr: %#v", r.Assignments[0].Expr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`p(X) -> q(X)`,                    // missing dot
		`p(X) q(X).`,                      // missing arrow
		`p(X,) -> q(X).`,                  // trailing comma
		`p(X) -> q(Y), Y = Z.`,            // EGD mixed with atoms
		`-> q(a).`,                        // empty body is not a rule
		`p(X), T = T + 1 -> q(T).`,        // self-referential assignment
		`node(X), not bad(Y) -> good(X).`, // unsafe negation
		`p(X), Y > 1 -> q(X).`,            // unbound condition var
		`p("unterminated) -> q(X).`,       // bad string
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	prog, err := Parse(`
		% a comment
		p(X) -> q(X). % trailing comment
		% final comment
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Fatalf("rules: %d", len(prog.Rules))
	}
}

func TestParseModulo(t *testing.T) {
	r, err := ParseRule(`p(X), M = X %% 3 -> q(M).`)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]term.Value{"X": term.Int(10)}
	v, err := r.Assignments[0].Expr.Eval(env)
	if err != nil || v != term.Int(1) {
		t.Errorf("10 %% 3: %v %v", v, err)
	}
}

// TestRoundTrip parses, renders and reparses programs, checking the
// rendered forms converge (String is a faithful printer).
func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`own(X,Y,W), W > 0.5 -> control(X,Y).`,
		`company(X) -> keyPerson(P, X).`,
		`p(X,Y), p(X,Z) -> Y = Z.`,
		`own(X,X,W) -> #fail.`,
		`node(X), not bad(X) -> good(X).`,
		`dom(*), p(X,Y) -> q(X,Y).`,
		`control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rendered := p1.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse %q: %v", rendered, err)
		}
		if got := p2.String(); got != rendered {
			t.Errorf("round trip diverges:\n%s\nvs\n%s", rendered, got)
		}
	}
}

func TestArityMismatchRejected(t *testing.T) {
	// Parse itself accepts arity drift (the lint layer reports it per use
	// site as A001); Predicates(), which every engine consults at compile
	// time, rejects it.
	prog, err := Parse(`
		p(X) -> q(X).
		p(X,Y) -> r(X).
	`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := prog.Predicates(); err == nil || !strings.Contains(err.Error(), "arities") {
		t.Fatalf("want arity error from Predicates, got %v", err)
	}
}
