package parser

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/ast"
)

// Error is a positioned syntax error. Every error produced by the lexer
// and parser is an *Error, so callers (diagnostics, editors) can recover
// the source location with errors.As instead of scraping the message.
type Error struct {
	File      string // "" when the source did not come from a file
	Line, Col int    // 1-based position of the offending token
	Msg       string
}

// Error renders the go-vet-style "file:line:col: message" form, or the
// historical "parser: line:col: message" form when no file is known.
func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("parser: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// ParseFile reads and parses a Vadalog program from path, labelling any
// syntax error with the filename.
func ParseFile(path string) (*ast.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := Parse(string(src))
	if err != nil {
		var pe *Error
		if errors.As(err, &pe) {
			pe.File = path
		}
		return nil, err
	}
	return prog, nil
}
