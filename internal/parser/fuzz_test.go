package parser

import (
	"testing"
)

// fuzzSeeds covers every surface form the grammar accepts: facts of
// each literal kind, rules with negation, conditions, assignments,
// aggregates with contributor groups, existentials, constraints, EGDs,
// dom guards, every annotation, comments and the %% modulo operator.
var fuzzSeeds = []string{
	`own("a","b",0.6).`,
	`age("bob", 42). flag(#t). flag(#f). pi(3.5e-2).`,
	`weird("line\nbreak\t\"quoted\"", "é\U0001F600").`,
	`own(X,Y,W), W > 0.5 -> control(X,Y).`,
	`control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).`,
	`company(X) -> keyPerson(P, X).`,
	`node(X), not bad(X) -> good(X).`,
	`own(X,X,W) -> #fail.`,
	`p(X,Y), p(X,Z) -> Y = Z.`,
	`dom(*), p(X,Y) -> q(X,Y).`,
	`dom(Y), p(X,Y) -> q(X,Y).`,
	`emp(N,S), T = S * 2 + 1, U = S %% 7 -> out(N, T, U).`,
	`p(X), Z = #f(X, 1) -> q(Z).`,
	`p(X), J = munion(X) -> s(J).`,
	`p(X), W = mcount(X, <X>) -> c(W).`,
	"% a comment\np(X) -> q(X). % trailing\n",
	`@input("own"). @output("control"). own(X,Y,W) -> control(X,Y).`,
	`@bind("own","csv","/tmp/own.csv"). @mapping("own","src","dst","w"). own(X,Y,W) -> control(X,Y). @output("control").`,
	`@qbind("own","csv","/tmp/own.csv","$3 > 0.5"). own(X,Y,W) -> control(X,Y).`,
	`@post("control","orderBy",2). @post("control","certain"). own(X,Y,W) -> control(X,Y). @output("control").`,
	`p(X), X >= 1, X <= 10, X != 5 -> q(X).`,
	`p(A), Q = concat(toString(A), "s"), L = length(Q) -> r(Q, L).`,
}

// FuzzParse checks that the parser never panics, and that the renderer
// is a fixpoint of parsing: any program the parser accepts must render
// to a string that reparses to an identically-rendered program. This is
// the invariant the golden lint positions and vet output lean on.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		s1 := prog.String()
		prog2, err := Parse(s1)
		if err != nil {
			t.Fatalf("rendered program does not reparse: %v\nsource: %q\nrendered: %q", err, src, s1)
		}
		if s2 := prog2.String(); s2 != s1 {
			t.Fatalf("renderer is not a fixpoint:\nfirst:  %q\nsecond: %q\nsource: %q", s1, s2, src)
		}
	})
}
