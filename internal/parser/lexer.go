// Package parser implements the lexer and recursive-descent parser for the
// Vadalog surface syntax used throughout this repository (see DESIGN.md).
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF     tokKind = iota
	tokIdent           // lowercase-initial identifier: predicate / function / constant
	tokVar             // uppercase-initial identifier or _: variable
	tokNumber          // integer or float literal
	tokString          // quoted string literal
	tokHash            // #ident: #fail, #t, #f, or skolem function name
	tokAt              // @
	tokLParen          // (
	tokRParen          // )
	tokComma           // ,
	tokDot             // .
	tokArrow           // ->
	tokAssign          // =
	tokEq              // ==
	tokNeq             // !=
	tokLt              // <
	tokLe              // <=
	tokGt              // >
	tokGe              // >=
	tokPlus            // +
	tokMinus           // -
	tokStar            // *
	tokSlash           // /
	tokPercent         // %%  (escaped: '%' starts a comment)
	tokCaret           // ^
	tokAndAnd          // &&
	tokOrOr            // ||
	tokNot             // keyword not
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokHash:
		return "#-token"
	case tokAt:
		return "@"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokComma:
		return ","
	case tokDot:
		return "."
	case tokArrow:
		return "->"
	case tokAssign:
		return "="
	case tokEq:
		return "=="
	case tokNeq:
		return "!="
	case tokLt:
		return "<"
	case tokLe:
		return "<="
	case tokGt:
		return ">"
	case tokGe:
		return ">="
	case tokPlus:
		return "+"
	case tokMinus:
		return "-"
	case tokStar:
		return "*"
	case tokSlash:
		return "/"
	case tokPercent:
		return "%"
	case tokCaret:
		return "^"
	case tokAndAnd:
		return "&&"
	case tokOrOr:
		return "||"
	case tokNot:
		return "not"
	default:
		return "?"
	}
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%' && (l.pos+1 >= len(l.src) || l.src[l.pos+1] != '%'):
			// '%' starts a line comment; '%%' is the modulo operator.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	t := token{line: l.line, col: l.col}
	if l.pos >= len(l.src) {
		t.kind = tokEOF
		return t, nil
	}
	c := l.peekByte()
	switch {
	case c == '(':
		l.advance()
		t.kind = tokLParen
	case c == ')':
		l.advance()
		t.kind = tokRParen
	case c == ',':
		l.advance()
		t.kind = tokComma
	case c == '.':
		l.advance()
		t.kind = tokDot
	case c == '@':
		l.advance()
		t.kind = tokAt
	case c == '+':
		l.advance()
		t.kind = tokPlus
	case c == '*':
		l.advance()
		t.kind = tokStar
	case c == '/':
		l.advance()
		t.kind = tokSlash
	case c == '^':
		l.advance()
		t.kind = tokCaret
	case c == '%':
		l.advance()
		if l.peekByte() != '%' {
			return t, l.errorf("stray %% (use %%%% for modulo; %% starts a comment)")
		}
		l.advance()
		t.kind = tokPercent
	case c == '&':
		l.advance()
		if l.peekByte() != '&' {
			return t, l.errorf("expected && after &")
		}
		l.advance()
		t.kind = tokAndAnd
	case c == '|':
		l.advance()
		if l.peekByte() != '|' {
			return t, l.errorf("expected || after |")
		}
		l.advance()
		t.kind = tokOrOr
	case c == '-':
		l.advance()
		if l.peekByte() == '>' {
			l.advance()
			t.kind = tokArrow
		} else {
			t.kind = tokMinus
		}
	case c == '=':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			t.kind = tokEq
		} else {
			t.kind = tokAssign
		}
	case c == '!':
		l.advance()
		if l.peekByte() != '=' {
			return t, l.errorf("expected != after !")
		}
		l.advance()
		t.kind = tokNeq
	case c == '<':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			t.kind = tokLe
		} else {
			t.kind = tokLt
		}
	case c == '>':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			t.kind = tokGe
		} else {
			t.kind = tokGt
		}
	case c == '"':
		return l.lexString()
	case c == '#':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.advance()
		}
		if l.pos == start {
			return t, l.errorf("expected identifier after #")
		}
		t.kind = tokHash
		t.text = l.src[start:l.pos]
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.advance()
		}
		t.text = l.src[start:l.pos]
		switch {
		case t.text == "not":
			t.kind = tokNot
		case t.text == "_" || unicode.IsUpper(rune(t.text[0])):
			t.kind = tokVar
		default:
			t.kind = tokIdent
		}
	default:
		return t, l.errorf("unexpected character %q", c)
	}
	return t, nil
}

func (l *lexer) lexString() (token, error) {
	t := token{kind: tokString, line: l.line, col: l.col}
	l.advance() // opening quote
	var sb strings.Builder
	for {
		if l.pos >= len(l.src) {
			return t, l.errorf("unterminated string literal")
		}
		c := l.advance()
		switch c {
		case '"':
			t.text = sb.String()
			return t, nil
		case '\\':
			if l.pos >= len(l.src) {
				return t, l.errorf("unterminated escape in string literal")
			}
			// The escape set matches what strconv.Quote emits, so any
			// rendered string constant parses back to the same value.
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case 'a':
				sb.WriteByte('\a')
			case 'b':
				sb.WriteByte('\b')
			case 'f':
				sb.WriteByte('\f')
			case 'v':
				sb.WriteByte('\v')
			case '\\', '"', '\'':
				sb.WriteByte(e)
			case 'x':
				v, err := l.hexDigits(2)
				if err != nil {
					return t, err
				}
				sb.WriteByte(byte(v))
			case 'u':
				v, err := l.hexDigits(4)
				if err != nil {
					return t, err
				}
				sb.WriteRune(rune(v))
			case 'U':
				v, err := l.hexDigits(8)
				if err != nil {
					return t, err
				}
				if v > 0x10FFFF {
					return t, l.errorf("rune escape \\U%08X out of range", v)
				}
				sb.WriteRune(rune(v))
			default:
				return t, l.errorf("unknown escape \\%c", e)
			}
		case '\n':
			return t, l.errorf("newline in string literal")
		default:
			sb.WriteByte(c)
		}
	}
}

// hexDigits consumes exactly n hex digits and returns their value.
func (l *lexer) hexDigits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		if l.pos >= len(l.src) {
			return 0, l.errorf("unterminated escape in string literal")
		}
		c := l.advance()
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint32(c-'A') + 10
		default:
			return 0, l.errorf("bad hex digit %q in string escape", c)
		}
		v = v<<4 | d
	}
	return v, nil
}

func (l *lexer) lexNumber() (token, error) {
	t := token{kind: tokNumber, line: l.line, col: l.col}
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.advance()
	}
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.advance()
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.advance()
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.advance()
		if l.peekByte() == '+' || l.peekByte() == '-' {
			l.advance()
		}
		if d := l.peekByte(); d < '0' || d > '9' {
			l.pos = save // not an exponent after all
		} else {
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.advance()
			}
		}
	}
	t.text = l.src[start:l.pos]
	return t, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
