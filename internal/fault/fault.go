// Package fault is the deterministic fault-injection registry behind the
// resilience test matrix: named injection sites compiled into the
// engine's seams (source cursor reads, storage freeze/insert, chase
// worker matching, pipeline chunk loads) that do nothing — one atomic
// load — until a plan arms them, and then fail at exact per-site hit
// counts, so every chaos run is reproducible.
//
// A site is declared once at package level:
//
//	var siteRead = fault.NewSite("source.read")
//
// and consulted on the guarded path with Site.Check (error seams) or
// Site.Hit (seams with no error path, which can only crash). Arming is
// global, via the test API (Enable/Disable) or the REPRO_FAULT
// environment variable at process start. A plan is a comma-separated
// list of terms:
//
//	site          fire at hit 1
//	site@N        fire at exactly the N-th hit (1-based) since arming
//	site@N+       fire at every hit from the N-th on (persistent fault)
//	site@N!       panic instead of returning an error
//
// e.g. REPRO_FAULT="source.read@2+,storage.insert@5!". Hit counters are
// reset by Enable and Disable, so counts are relative to the arming
// point — the "seed" of a chaos run is the plan itself. The special
// value REPRO_FAULT="seed:N" arms nothing; it hands the chaos suite a
// numeric seed (Seed) from which it derives per-site hit positions.
//
// Injected failures are typed (*Error); the source layer classifies
// them as transient I/O, which is what makes retry paths testable.
package fault

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Error is an injected failure: which site fired and at which hit. The
// source layer classifies it as transient I/O; engine recover paths
// carry it as the panic value.
type Error struct {
	Site string
	Hit  uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected failure at %s (hit %d)", e.Site, e.Hit)
}

// Site is one named injection point. Sites are created at package init
// (NewSite/NewPanicSite) and live for the process; their hit counters
// reset whenever the armed plan changes.
type Site struct {
	name      string
	panicOnly bool
	hits      atomic.Uint64
}

// Name returns the site's registry name.
func (s *Site) Name() string { return s.name }

// SiteInfo describes one registered site for matrix iteration.
type SiteInfo struct {
	Name string
	// PanicOnly marks a seam with no error path: any arming of the site
	// panics, whatever the plan term asked for.
	PanicOnly bool
}

type plan struct {
	hit    uint64
	every  bool
	panics bool
}

var (
	armed atomic.Bool

	mu    sync.Mutex
	sites = map[string]*Site{}
	plans = map[string]plan{}
)

func register(name string, panicOnly bool) *Site {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := sites[name]; dup {
		panic(fmt.Sprintf("fault: site %q registered twice", name))
	}
	s := &Site{name: name, panicOnly: panicOnly}
	sites[name] = s
	return s
}

// NewSite registers an injection site whose guarded seam has an error
// path: Check returns the injected *Error (or panics under a "!" term).
func NewSite(name string) *Site { return register(name, false) }

// NewPanicSite registers an injection site whose guarded seam has no
// error path (storage mutation): any arming panics with *Error.
func NewPanicSite(name string) *Site { return register(name, true) }

// Sites lists every registered site, sorted by name — the chaos suite's
// iteration space.
func Sites() []SiteInfo {
	mu.Lock()
	defer mu.Unlock()
	out := make([]SiteInfo, 0, len(sites))
	for _, s := range sites {
		out = append(out, SiteInfo{Name: s.name, PanicOnly: s.panicOnly})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Check counts a hit against the site when injection is armed and
// returns the injected *Error when the plan fires at this hit (panicking
// instead under a "!" term or for panic-only sites). When injection is
// off it is a single atomic load and returns nil.
func (s *Site) Check() error {
	if !armed.Load() {
		return nil
	}
	return s.fire()
}

// Hit is Check for seams with no error path: when the plan fires it
// panics with *Error.
func (s *Site) Hit() {
	if !armed.Load() {
		return
	}
	if err := s.fire(); err != nil {
		panic(err)
	}
}

func (s *Site) fire() error {
	h := s.hits.Add(1)
	mu.Lock()
	p, ok := plans[s.name]
	mu.Unlock()
	if !ok || (h != p.hit && !(p.every && h > p.hit)) {
		return nil
	}
	e := &Error{Site: s.name, Hit: h}
	if s.panicOnly || p.panics {
		panic(e)
	}
	return e
}

// Hits returns how many times the named site has been consulted since
// the last Enable/Disable (test introspection; 0 for unknown sites).
func Hits(site string) uint64 {
	mu.Lock()
	s := sites[site]
	mu.Unlock()
	if s == nil {
		return 0
	}
	return s.hits.Load()
}

// Enabled reports whether a plan is armed.
func Enabled() bool { return armed.Load() }

// Enable parses spec (see the package comment for the grammar), resets
// every site's hit counter and arms the plan. Unknown site names are
// rejected so a typo cannot silently disarm a chaos run.
func Enable(spec string) error {
	parsed, err := parseSpec(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	for name := range parsed {
		if _, ok := sites[name]; !ok {
			known := make([]string, 0, len(sites))
			for n := range sites {
				known = append(known, n)
			}
			sort.Strings(known)
			mu.Unlock()
			return fmt.Errorf("fault: unknown site %q (registered: %s)", name, strings.Join(known, ", "))
		}
	}
	plans = parsed
	for _, s := range sites {
		s.hits.Store(0)
	}
	mu.Unlock()
	armed.Store(true)
	return nil
}

// Disable disarms injection and resets every site's hit counter.
func Disable() {
	armed.Store(false)
	mu.Lock()
	plans = map[string]plan{}
	for _, s := range sites {
		s.hits.Store(0)
	}
	mu.Unlock()
}

func parseSpec(spec string) (map[string]plan, error) {
	out := map[string]plan{}
	for _, termSpec := range strings.Split(spec, ",") {
		termSpec = strings.TrimSpace(termSpec)
		if termSpec == "" {
			continue
		}
		p := plan{hit: 1}
		name := termSpec
		if i := strings.IndexByte(termSpec, '@'); i >= 0 {
			name = termSpec[:i]
			rest := termSpec[i+1:]
			for strings.HasSuffix(rest, "+") || strings.HasSuffix(rest, "!") {
				switch rest[len(rest)-1] {
				case '+':
					p.every = true
				case '!':
					p.panics = true
				}
				rest = rest[:len(rest)-1]
			}
			n, err := strconv.ParseUint(rest, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("fault: bad term %q (want site@N[+][!], N >= 1)", termSpec)
			}
			p.hit = n
		}
		if name == "" {
			return nil, fmt.Errorf("fault: bad term %q (empty site name)", termSpec)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("fault: site %q armed twice in one plan", name)
		}
		out[name] = p
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault: empty plan %q", spec)
	}
	return out, nil
}

// Seed returns the numeric seed of a REPRO_FAULT="seed:N" value, used by
// the chaos suite to derive per-site hit positions; ok is false when the
// variable is unset or holds a concrete plan instead.
func Seed() (seed uint64, ok bool) {
	v := os.Getenv("REPRO_FAULT")
	rest, found := strings.CutPrefix(v, "seed:")
	if !found {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func init() {
	// A concrete REPRO_FAULT plan arms the process from the start, so any
	// binary (cmd/vada included) can run under injection; seed: values are
	// left to the chaos suite. This init runs before the engine packages
	// register their sites (they import this package), so the plan can
	// only be parsed here, not name-checked: a grammar error is loud, but
	// a misspelled site name silently never fires. The test API (Enable)
	// validates names strictly.
	if spec := os.Getenv("REPRO_FAULT"); spec != "" && !strings.HasPrefix(spec, "seed:") {
		parsed, err := parseSpec(spec)
		if err != nil {
			panic(err)
		}
		mu.Lock()
		plans = parsed
		mu.Unlock()
		armed.Store(true)
	}
}
