package fault

import (
	"errors"
	"testing"
)

// testSite/testCrash are the package's own fixture sites; real sites
// live in the packages whose seams they guard.
var (
	testSite  = NewSite("fault.test")
	testCrash = NewPanicSite("fault.test.crash")
)

func TestDisarmedIsNil(t *testing.T) {
	Disable()
	for i := 0; i < 10; i++ {
		if err := testSite.Check(); err != nil {
			t.Fatalf("disarmed Check returned %v", err)
		}
	}
	if Hits("fault.test") != 0 {
		t.Fatalf("disarmed sites must not count hits, got %d", Hits("fault.test"))
	}
}

func TestFiresAtExactHit(t *testing.T) {
	if err := Enable("fault.test@3"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	for i := 1; i <= 5; i++ {
		err := testSite.Check()
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v", i, err)
		}
		if err != nil {
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != "fault.test" || fe.Hit != 3 {
				t.Fatalf("wrong error %v", err)
			}
		}
	}
}

func TestPersistentFiresFromHitOn(t *testing.T) {
	if err := Enable("fault.test@2+"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	var fired []int
	for i := 1; i <= 4; i++ {
		if testSite.Check() != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 2 {
		t.Fatalf("persistent arming fired at %v, want [2 3 4]", fired)
	}
}

func TestPanicTermAndPanicOnlySite(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if _, ok := r.(*Error); !ok {
				t.Fatalf("%s: panic value %v (%T), want *fault.Error", name, r, r)
			}
		}()
		f()
	}
	if err := Enable("fault.test@1!"); err != nil {
		t.Fatal(err)
	}
	mustPanic("error site with ! term", func() { _ = testSite.Check() })
	Disable()

	// A panic-only site panics even when the term does not say "!".
	if err := Enable("fault.test.crash@1"); err != nil {
		t.Fatal(err)
	}
	mustPanic("panic-only site", func() { testCrash.Hit() })
	Disable()
}

func TestEnableResetsCounters(t *testing.T) {
	if err := Enable("fault.test@1"); err != nil {
		t.Fatal(err)
	}
	if testSite.Check() == nil {
		t.Fatal("expected fire at hit 1")
	}
	// Re-arming resets the counter, so hit 1 fires again.
	if err := Enable("fault.test@1"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	if testSite.Check() == nil {
		t.Fatal("expected fire at hit 1 after re-arm")
	}
}

func TestSpecErrors(t *testing.T) {
	for _, bad := range []string{"", "fault.test@0", "fault.test@x", "@1", "no.such.site", "fault.test@1,fault.test@2"} {
		if err := Enable(bad); err == nil {
			Disable()
			t.Fatalf("Enable(%q) accepted", bad)
		}
	}
	if Enabled() {
		t.Fatal("failed Enable must not arm")
	}
}

func TestSitesListsRegistrations(t *testing.T) {
	var found, foundCrash bool
	for _, si := range Sites() {
		switch si.Name {
		case "fault.test":
			found = true
			if si.PanicOnly {
				t.Fatal("fault.test marked panic-only")
			}
		case "fault.test.crash":
			foundCrash = true
			if !si.PanicOnly {
				t.Fatal("fault.test.crash not marked panic-only")
			}
		}
	}
	if !found || !foundCrash {
		t.Fatalf("Sites() misses fixtures: %v", Sites())
	}
}
