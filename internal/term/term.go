// Package term implements the Vadalog value model: typed constants,
// labelled nulls and Skolem functions.
//
// Runtime facts contain only constants and labelled nulls; variables exist
// in rules and are compiled away before execution. Value is a small
// comparable struct so it can be used directly as a map key, which the
// engine relies on for hash joins, indexes and isomorphism checks.
package term

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types of a Value.
type Kind uint8

// The Vadalog data types. Null is a labelled null (marked null in data
// exchange terminology); it is not a SQL NULL.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindDate // days since epoch, kept as an integer
	KindNull // labelled null ν_i
	KindSet  // composite set (monotonic union), canonical "{a,b,c}" form
)

// String returns the lowercase name of the kind as used in error messages.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindDate:
		return "date"
	case KindNull:
		return "null"
	case KindSet:
		return "set"
	default:
		return "invalid"
	}
}

// Value is a single Vadalog runtime value. The zero Value is invalid.
// Value is comparable: two Values are == iff they denote the same constant
// or the same labelled null.
type Value struct {
	kind Kind
	i    int64 // int, bool (0/1), date, null id
	f    float64
	s    string
}

// String constructs a string constant.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int constructs an integer constant.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float constructs a floating-point constant.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool constructs a boolean constant.
func Bool(b bool) Value {
	if b {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool}
}

// Date constructs a date constant from days since the epoch.
func Date(days int64) Value { return Value{kind: KindDate, i: days} }

// Null constructs the labelled null with the given id.
func Null(id int64) Value { return Value{kind: KindNull, i: id} }

// Set constructs a set constant, the composite type produced by monotonic
// union (munion, paper Sec. 5): elements are deduplicated, sorted in the
// total order of Compare (ties between numerically equal Int/Float
// elements broken by kind, so the canonical form is unique) and rendered
// as "{e1,e2,...}", so two sets are == iff they contain the same elements
// and sets remain usable as comparable map keys. Elements render with
// Value.String except integral floats, which keep a ".0" suffix so
// Int(1) and Float(1.0) — distinct values since the interned-ID cleanup —
// stay distinguishable; SetElems is the inverse.
func Set(elems []Value) Value {
	dedup := make(map[Value]bool, len(elems))
	uniq := make([]Value, 0, len(elems))
	for _, v := range elems {
		if !dedup[v] {
			dedup[v] = true
			uniq = append(uniq, v)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if c := Compare(uniq[i], uniq[j]); c != 0 {
			return c < 0
		}
		return uniq[i].kind < uniq[j].kind
	})
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range uniq {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(setElemString(v))
	}
	sb.WriteByte('}')
	return Value{kind: KindSet, s: sb.String()}
}

// setElemString renders a set element: like Value.String, but integral
// floats keep an explicit ".0" so they cannot collide with the rendering
// of the equal Int (strings that look numeric are already quoted by
// needsQuoting, so no other kinds can collide).
func setElemString(v Value) string {
	s := v.String()
	if v.kind == KindFloat && !math.IsNaN(v.f) && !math.IsInf(v.f, 0) &&
		!strings.ContainsAny(s, ".eE") {
		return s + ".0"
	}
	return s
}

// SetElems decodes the elements of a set constant, the inverse of Set: it
// splits the canonical "{...}" form at top-level commas (respecting quoted
// strings and nested braces) and parses each element back into a Value.
// Quoted elements decode to strings, "_:nK" to labelled nulls, "{...}" to
// nested sets, and the rest through ParseLiteral — so, like every rendered
// key in this repository, a bare string that happens to look like a date
// ("d123") or a float whose rendering drops the decimal point ("1")
// decodes to the literal ParseLiteral chooses. It returns nil on non-set
// values.
func (v Value) SetElems() []Value {
	if v.kind != KindSet || len(v.s) < 2 {
		return nil
	}
	body := v.s[1 : len(v.s)-1]
	if body == "" {
		return nil
	}
	var elems []Value
	depth, start := 0, 0
	inQuote := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case inQuote:
			if c == '\\' {
				i++
			} else if c == '"' {
				inQuote = false
			}
		case c == '"':
			inQuote = true
		case c == '{':
			depth++
		case c == '}':
			depth--
		case c == ',' && depth == 0:
			elems = append(elems, parseSetElem(body[start:i]))
			start = i + 1
		}
	}
	elems = append(elems, parseSetElem(body[start:]))
	return elems
}

func parseSetElem(s string) Value {
	if len(s) > 1 && s[0] == '{' && s[len(s)-1] == '}' {
		return Value{kind: KindSet, s: s}
	}
	if len(s) > 3 && s[:3] == "_:n" {
		if id, err := strconv.ParseInt(s[3:], 10, 64); err == nil {
			return Null(id)
		}
	}
	v, err := ParseLiteral(s)
	if err != nil {
		return String(s)
	}
	return v
}

// Kind reports the runtime type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is a labelled null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsGround reports whether v is a constant (not a labelled null).
func (v Value) IsGround() bool { return v.kind != KindNull && v.kind != KindInvalid }

// NullID returns the id of a labelled null; it panics on other kinds.
func (v Value) NullID() int64 {
	if v.kind != KindNull {
		panic("term: NullID on non-null value " + v.String())
	}
	return v.i
}

// Str returns the string payload of a string constant.
func (v Value) Str() string { return v.s }

// IntVal returns the integer payload of an int or date constant.
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the float payload; for int values it widens.
func (v Value) FloatVal() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// BoolVal returns the boolean payload.
func (v Value) BoolVal() bool { return v.i != 0 }

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders v in the textual syntax used across the repository:
// strings are quoted only when needed, nulls render as _:nK.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		if needsQuoting(v.s) {
			return strconv.Quote(v.s)
		}
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		if v.i != 0 {
			return "#t"
		}
		return "#f"
	case KindDate:
		return "d" + strconv.FormatInt(v.i, 10)
	case KindNull:
		return "_:n" + strconv.FormatInt(v.i, 10)
	case KindSet:
		return v.s
	default:
		return "<invalid>"
	}
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return true
			}
		case r == '_' || r == '-' || r == '.':
		default:
			return true
		}
	}
	return false
}

// Compare totally orders values: first by kind, then by payload.
// The order on kinds is arbitrary but fixed; numeric int/float compare by
// numeric value when kinds coincide with the widened comparison used by
// conditions (see CompareNumeric).
func Compare(a, b Value) int {
	if a.kind != b.kind {
		// Numeric cross-kind comparison keeps ints and floats in one order.
		if a.IsNumeric() && b.IsNumeric() {
			return compareFloat(a.FloatVal(), b.FloatVal())
		}
		return int(a.kind) - int(b.kind)
	}
	switch a.kind {
	case KindString, KindSet:
		return strings.Compare(a.s, b.s)
	case KindInt, KindDate, KindBool, KindNull:
		return compareInt(a.i, b.i)
	case KindFloat:
		return compareFloat(a.f, b.f)
	default:
		return 0
	}
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports semantic equality: identical values, or int/float with the
// same numeric value.
func Equal(a, b Value) bool {
	if a == b {
		return true
	}
	if a.IsNumeric() && b.IsNumeric() {
		return a.FloatVal() == b.FloatVal()
	}
	return false
}

// Hash returns a 64-bit hash of v, mixing kind and payload (FNV-1a).
func (v Value) Hash() uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	h ^= uint64(v.kind)
	h *= 1099511628211
	switch v.kind {
	case KindString, KindSet:
		for i := 0; i < len(v.s); i++ {
			h ^= uint64(v.s[i])
			h *= 1099511628211
		}
	case KindFloat:
		mix(math.Float64bits(v.f))
	default:
		mix(uint64(v.i))
	}
	return h
}

// NullFactory mints fresh labelled nulls and memoizes Skolem applications.
// Skolem functions are deterministic (same function + arguments yield the
// same null), injective, and range disjoint (distinct functions never
// produce the same null), as required by Section 5 of the paper.
// Every null has a canonical ground key (its Skolem term rendered as a
// string) used by the dynamic harmful-join elimination to reify null
// identity into the constant domain.
type NullFactory struct {
	next   int64
	skolem map[string]int64
	keys   map[int64]string
}

// NewNullFactory returns a factory whose first fresh null has id 1.
func NewNullFactory() *NullFactory {
	return &NullFactory{next: 1, skolem: make(map[string]int64), keys: make(map[int64]string)}
}

// Fresh returns a brand-new labelled null.
func (nf *NullFactory) Fresh() Value {
	id := nf.next
	nf.next++
	return Null(id)
}

// Count returns how many nulls have been minted so far.
func (nf *NullFactory) Count() int64 { return nf.next - 1 }

// Reserve advances the factory past id, so nulls imported with explicit
// ids (record-manager loads of "_:nK" cells) can never collide with
// nulls the session mints afterwards.
func (nf *NullFactory) Reserve(id int64) {
	if id >= nf.next {
		nf.next = id + 1
	}
}

// SkolemKey renders the canonical ground key of fn applied to args; two
// Skolem applications yield equal nulls iff their keys are equal.
func (nf *NullFactory) SkolemKey(fn string, args ...Value) string {
	var sb strings.Builder
	sb.WriteString(fn)
	for _, a := range args {
		sb.WriteByte('\x00')
		sb.WriteString(strconv.Itoa(int(a.kind)))
		sb.WriteByte('\x01')
		sb.WriteString(a.String())
	}
	return sb.String()
}

// Skolem returns the labelled null for function fn applied to args,
// minting it on first use.
func (nf *NullFactory) Skolem(fn string, args ...Value) Value {
	key := nf.SkolemKey(fn, args...)
	if id, ok := nf.skolem[key]; ok {
		return Null(id)
	}
	id := nf.next
	nf.next++
	nf.skolem[key] = id
	nf.keys[id] = key
	return Null(id)
}

// KeyOf returns the canonical ground key of a labelled null: its Skolem
// term when minted by Skolem, or a positional key for fresh nulls.
func (nf *NullFactory) KeyOf(v Value) string {
	if !v.IsNull() {
		return v.String()
	}
	if k, ok := nf.keys[v.NullID()]; ok {
		return k
	}
	return "_:n" + strconv.FormatInt(v.NullID(), 10)
}

// ParseLiteral parses the textual form of a constant: quoted strings,
// integers, floats, #t/#f booleans. Bare identifiers are returned as
// string constants. It is the inverse of Value.String for ground values.
func ParseLiteral(s string) (Value, error) {
	switch {
	case s == "":
		return Value{}, fmt.Errorf("term: empty literal")
	case s == "#t":
		return Bool(true), nil
	case s == "#f":
		return Bool(false), nil
	case s[0] == '"':
		u, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("term: bad string literal %s: %w", s, err)
		}
		return String(u), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f), nil
	}
	return String(s), nil
}

// ParseCanonicalSet parses the braced "{...}" rendering of a set value
// (the form Value.String produces) back into a set, re-canonicalizing
// the elements so the result is == to the set that was rendered. ok is
// false when s is not braced.
func ParseCanonicalSet(s string) (Value, bool) {
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return Value{}, false
	}
	raw := Value{kind: KindSet, s: s}
	return Set(raw.SetElems()), true
}

// SortValues sorts a slice of values in the total order of Compare.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
}
