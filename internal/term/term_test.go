package term

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{String("x"), KindString},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{Bool(true), KindBool},
		{Date(100), KindDate},
		{Null(7), KindNull},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !Null(1).IsNull() || String("a").IsNull() {
		t.Error("IsNull misclassifies")
	}
	if Null(1).IsGround() || !Int(1).IsGround() {
		t.Error("IsGround misclassifies")
	}
}

func TestValueStringRoundTrip(t *testing.T) {
	cases := []Value{
		String("abc"), String("with space"), String(""), String("0leading"),
		Int(-5), Int(0), Float(2.25), Bool(true), Bool(false),
	}
	for _, v := range cases {
		if v.Kind() == KindString && v.Str() == "0leading" {
			continue // quoted form round-trips via ParseLiteral below
		}
		got, err := ParseLiteral(v.String())
		if err != nil {
			t.Fatalf("ParseLiteral(%q): %v", v.String(), err)
		}
		if got != v {
			t.Errorf("round trip %v -> %q -> %v", v, v.String(), got)
		}
	}
}

func TestParseLiteralErrors(t *testing.T) {
	if _, err := ParseLiteral(""); err == nil {
		t.Error("empty literal should fail")
	}
	if v, err := ParseLiteral(`"quoted"`); err != nil || v != String("quoted") {
		t.Errorf("quoted literal: %v %v", v, err)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// Property: Compare is antisymmetric and transitive on random values.
	gen := func(r *rand.Rand) Value {
		switch r.Intn(5) {
		case 0:
			return Int(int64(r.Intn(20) - 10))
		case 1:
			return Float(float64(r.Intn(20)) / 2)
		case 2:
			return String(string(rune('a' + r.Intn(5))))
		case 3:
			return Bool(r.Intn(2) == 0)
		default:
			return Null(int64(r.Intn(5)))
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated: %v vs %v", a, b)
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

func TestNumericCrossKindCompare(t *testing.T) {
	if Compare(Int(2), Float(2.5)) >= 0 {
		t.Error("2 < 2.5 across kinds")
	}
	if !Equal(Int(2), Float(2.0)) {
		t.Error("2 == 2.0 across kinds")
	}
	if Equal(Int(2), String("2")) {
		t.Error("int and string never equal")
	}
}

func TestHashConsistentWithEquality(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va == vb && va.Hash() != vb.Hash() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if String("x").Hash() == String("y").Hash() {
		t.Error("suspicious collision on tiny strings")
	}
}

func TestSkolemDeterministicInjective(t *testing.T) {
	nf := NewNullFactory()
	a := nf.Skolem("f", String("x"), Int(1))
	b := nf.Skolem("f", String("x"), Int(1))
	if a != b {
		t.Error("skolem must be deterministic")
	}
	c := nf.Skolem("f", String("x"), Int(2))
	if a == c {
		t.Error("skolem must be injective")
	}
	d := nf.Skolem("g", String("x"), Int(1))
	if a == d {
		t.Error("skolem ranges must be disjoint across functions")
	}
}

func TestSkolemKeyMirrorsNullIdentity(t *testing.T) {
	// Property: two skolem applications yield the same null iff their keys
	// are equal (the tag-twin soundness condition).
	nf := NewNullFactory()
	type app struct {
		fn  string
		arg int64
	}
	f := func(a, b app) bool {
		if a.fn == "" || b.fn == "" {
			return true
		}
		na := nf.Skolem(a.fn, Int(a.arg))
		nb := nf.Skolem(b.fn, Int(b.arg))
		ka := nf.SkolemKey(a.fn, Int(a.arg))
		kb := nf.SkolemKey(b.fn, Int(b.arg))
		return (na == nb) == (ka == kb)
	}
	cfg := &quick.Config{Values: func(vs []reflect.Value, r *rand.Rand) {
		for i := range vs {
			vs[i] = reflect.ValueOf(app{fn: string(rune('f' + r.Intn(3))), arg: int64(r.Intn(5))})
		}
	}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestKeyOfRecoversSkolemKey(t *testing.T) {
	nf := NewNullFactory()
	n := nf.Skolem("#r1:z", String("acme"))
	if got, want := nf.KeyOf(n), nf.SkolemKey("#r1:z", String("acme")); got != want {
		t.Errorf("KeyOf: %q want %q", got, want)
	}
	fresh := nf.Fresh()
	if nf.KeyOf(fresh) == "" {
		t.Error("fresh nulls need keys too")
	}
	if nf.KeyOf(String("abc")) != "abc" {
		t.Error("ground KeyOf should be the value's text")
	}
}

func TestFreshNullsDistinct(t *testing.T) {
	nf := NewNullFactory()
	seen := map[Value]bool{}
	for i := 0; i < 100; i++ {
		n := nf.Fresh()
		if seen[n] {
			t.Fatal("fresh null repeated")
		}
		seen[n] = true
	}
	if nf.Count() != 100 {
		t.Errorf("count: %d", nf.Count())
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{String("b"), Int(2), String("a"), Int(1)}
	SortValues(vs)
	for i := 1; i < len(vs); i++ {
		if Compare(vs[i-1], vs[i]) > 0 {
			t.Fatalf("not sorted at %d: %v", i, vs)
		}
	}
}

func TestSetCanonical(t *testing.T) {
	a := Set([]Value{String("b"), String("a"), String("b")})
	b := Set([]Value{String("a"), String("b")})
	if a != b {
		t.Fatalf("sets with equal elements must be ==: %v vs %v", a, b)
	}
	if a.Kind() != KindSet || a.String() != "{a,b}" {
		t.Errorf("canonical form: %v (%s)", a, a.Kind())
	}
	if Set(nil).String() != "{}" {
		t.Errorf("empty set: %v", Set(nil))
	}
}

func TestSetElemsRoundTrip(t *testing.T) {
	elems := []Value{
		String("plain"),
		String("with,comma"),
		String("with{brace"),
		String(`with"quote`),
		Int(42),
		Float(1.5),
		Bool(true),
		Null(7),
		Set([]Value{String("x"), Int(1)}),
	}
	s := Set(elems)
	got := s.SetElems()
	if len(got) != len(elems) {
		t.Fatalf("element count: %d, want %d (%v)", len(got), len(elems), got)
	}
	want := append([]Value(nil), elems...)
	SortValues(want)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("elem %d: %v != %v", i, got[i], want[i])
		}
	}
	if Set(got) != s {
		t.Error("re-encoding the decoded elements must reproduce the set")
	}
}

func TestSetCompareHash(t *testing.T) {
	a := Set([]Value{String("a")})
	b := Set([]Value{String("b")})
	if Compare(a, b) >= 0 || Compare(b, a) <= 0 || Compare(a, a) != 0 {
		t.Error("set ordering inconsistent")
	}
	if a.Hash() == b.Hash() {
		t.Error("distinct sets should hash apart (probabilistic, fixed input)")
	}
	// A set is not its string rendering: the kinds differ.
	if a == String("{a}") || Equal(a, String("{a}")) {
		t.Error("set must not equal the string with the same rendering")
	}
}

func TestSetDistinguishesIntFromFloat(t *testing.T) {
	// Int(1) and Float(1.0) are distinct values (strict identity since the
	// interned-ID cleanup); their set renderings must not collide.
	a := Set([]Value{Int(1)})
	b := Set([]Value{Float(1.0)})
	if a == b {
		t.Fatalf("Set([Int(1)]) == Set([Float(1.0)]): %v", a)
	}
	mixed := Set([]Value{Int(1), Float(1.0)})
	if got := mixed.SetElems(); len(got) != 2 || got[0] != Int(1) || got[1] != Float(1.0) {
		t.Errorf("mixed set round-trip: %v -> %v", mixed, got)
	}
	if Set(mixed.SetElems()) != mixed {
		t.Error("mixed set canonical form not stable under round-trip")
	}
	// Numerically equal elements sort deterministically (kind tie-break).
	if Set([]Value{Float(1.0), Int(1)}) != mixed {
		t.Error("canonical form depends on element order")
	}
}
