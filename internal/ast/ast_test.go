package ast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/term"
)

func TestFactKeys(t *testing.T) {
	f1 := NewFact("p", term.String("a"), term.Null(1))
	f2 := NewFact("p", term.String("a"), term.Null(2))
	f3 := NewFact("p", term.String("b"), term.Null(1))
	if f1.Key() == f2.Key() {
		t.Error("exact keys must distinguish null identities")
	}
	if f1.IsoKey() != f2.IsoKey() {
		t.Error("iso keys must identify isomorphic facts")
	}
	if f1.IsoKey() == f3.IsoKey() {
		t.Error("iso keys must distinguish constants")
	}
}

// TestIsomorphicMatchesIsoKey is the property the strategy relies on:
// Isomorphic(a,b) iff IsoKey(a) == IsoKey(b).
func TestIsomorphicMatchesIsoKey(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	genFact := func() Fact {
		n := 1 + rng.Intn(4)
		args := make([]term.Value, n)
		for i := range args {
			if rng.Intn(2) == 0 {
				args[i] = term.String(string(rune('a' + rng.Intn(3))))
			} else {
				args[i] = term.Null(int64(rng.Intn(3)))
			}
		}
		return Fact{Pred: "p", Args: args}
	}
	for i := 0; i < 3000; i++ {
		a, b := genFact(), genFact()
		if len(a.Args) != len(b.Args) {
			continue
		}
		if Isomorphic(a, b) != (a.IsoKey() == b.IsoKey()) {
			t.Fatalf("iso mismatch: %v vs %v (iso=%v keys %q %q)",
				a, b, Isomorphic(a, b), a.IsoKey(), b.IsoKey())
		}
	}
}

// TestIsomorphismIsEquivalence checks reflexivity, symmetry, transitivity.
func TestIsomorphismIsEquivalence(t *testing.T) {
	mk := func(ids ...int64) Fact {
		args := make([]term.Value, len(ids))
		for i, id := range ids {
			if id < 0 {
				args[i] = term.Int(-id)
			} else {
				args[i] = term.Null(id)
			}
		}
		return Fact{Pred: "p", Args: args}
	}
	a := mk(1, 2, -5)
	b := mk(7, 8, -5)
	c := mk(3, 4, -5)
	if !Isomorphic(a, a) {
		t.Error("reflexive")
	}
	if Isomorphic(a, b) != Isomorphic(b, a) {
		t.Error("symmetric")
	}
	if Isomorphic(a, b) && Isomorphic(b, c) && !Isomorphic(a, c) {
		t.Error("transitive")
	}
	// Repeated nulls need a consistent bijection.
	d := mk(1, 1, -5)
	e := mk(2, 3, -5)
	if Isomorphic(d, e) {
		t.Error("p(n1,n1) is not isomorphic to p(n2,n3)")
	}
}

func TestPatternKey(t *testing.T) {
	f1 := NewFact("p", term.Int(1), term.Int(2), term.Null(3), term.Null(4))
	f2 := NewFact("p", term.Int(3), term.Int(4), term.Null(9), term.Null(4))
	f3 := NewFact("p", term.Int(5), term.Int(5), term.Null(1), term.Null(2))
	if f1.PatternKey() != f2.PatternKey() {
		t.Error("pattern-isomorphic facts must share a pattern (paper example)")
	}
	if f1.PatternKey() == f3.PatternKey() {
		t.Error("repeated constants change the pattern (paper example)")
	}
}

func TestRuleExistentialsAndVars(t *testing.T) {
	r := &Rule{
		Body:  []Atom{NewAtom("p", V("X"), V("Y"))},
		Heads: []Atom{NewAtom("q", V("X"), V("Z"), V("W"))},
	}
	ex := r.Existentials()
	if len(ex) != 2 || ex[0] != "Z" || ex[1] != "W" {
		t.Fatalf("existentials: %v", ex)
	}
	r.Assignments = append(r.Assignments, Assignment{Var: "Z", Expr: VarExpr{Name: "X"}})
	ex = r.Existentials()
	if len(ex) != 1 || ex[0] != "W" {
		t.Fatalf("assignment binds Z: %v", ex)
	}
}

func TestRuleLinear(t *testing.T) {
	r := &Rule{Body: []Atom{NewAtom("p", V("X"))}, Heads: []Atom{NewAtom("q", V("X"))}}
	if !r.IsLinear() {
		t.Error("single atom is linear")
	}
	r.Body = append(r.Body, Atom{Pred: DomPred, Args: []Arg{V("*")}})
	if !r.IsLinear() {
		t.Error("dom guard does not count")
	}
	r.Body = append(r.Body, NewAtom("r", V("X")))
	if r.IsLinear() {
		t.Error("two positive atoms is non-linear")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := &Rule{
		Body:  []Atom{NewAtom("p", V("X"))},
		Heads: []Atom{NewAtom("q", V("X"))},
		Conds: []Condition{{Op: CmpGt, L: VarExpr{Name: "X"}, R: ConstExpr{Val: term.Int(1)}}},
	}
	c := r.Clone()
	c.Body[0].Args[0] = C(term.Int(9))
	if !r.Body[0].Args[0].IsVar {
		t.Error("clone shares body args")
	}
}

func TestProgramPredicates(t *testing.T) {
	p := NewProgram()
	p.AddRule(&Rule{Body: []Atom{NewAtom("p", V("X"))}, Heads: []Atom{NewAtom("q", V("X"), V("Y"))}})
	preds, err := p.Predicates()
	if err != nil {
		t.Fatal(err)
	}
	if preds["p"] != 1 || preds["q"] != 2 {
		t.Errorf("preds: %v", preds)
	}
	p.AddRule(&Rule{Body: []Atom{NewAtom("q", V("X"))}, Heads: []Atom{NewAtom("r", V("X"))}})
	if _, err := p.Predicates(); err == nil {
		t.Error("arity clash must error")
	}
}

func TestEvalConditionNullSemantics(t *testing.T) {
	env := map[string]term.Value{"N": term.Null(1), "M": term.Null(2), "X": term.Int(5)}
	c := func(op CmpOp, l, r string) bool {
		ok, err := EvalCondition(Condition{Op: op, L: VarExpr{Name: l}, R: VarExpr{Name: r}}, env)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if !c(CmpEq, "N", "N") {
		t.Error("null == itself")
	}
	if c(CmpEq, "N", "M") {
		t.Error("distinct nulls are not equal")
	}
	if !c(CmpNeq, "N", "M") {
		t.Error("distinct nulls are !=")
	}
	if c(CmpLt, "N", "X") || c(CmpGt, "N", "X") {
		t.Error("ordering undefined on nulls")
	}
}

func TestExprVars(t *testing.T) {
	e := BinExpr{Op: "+", L: VarExpr{Name: "X"}, R: FuncExpr{Name: "abs", Args: []Expr{VarExpr{Name: "Y"}}}}
	vs := e.Vars(nil)
	if len(vs) != 2 {
		t.Errorf("vars: %v", vs)
	}
}

func TestBuiltins(t *testing.T) {
	env := map[string]term.Value{"S": term.String("hello"), "X": term.Int(-3)}
	cases := []struct {
		expr Expr
		want term.Value
	}{
		{FuncExpr{Name: "length", Args: []Expr{VarExpr{Name: "S"}}}, term.Int(5)},
		{FuncExpr{Name: "upper", Args: []Expr{VarExpr{Name: "S"}}}, term.String("HELLO")},
		{FuncExpr{Name: "startsWith", Args: []Expr{VarExpr{Name: "S"}, ConstExpr{Val: term.String("he")}}}, term.Bool(true)},
		{FuncExpr{Name: "abs", Args: []Expr{VarExpr{Name: "X"}}}, term.Int(3)},
		{FuncExpr{Name: "substring", Args: []Expr{VarExpr{Name: "S"}, ConstExpr{Val: term.Int(1)}, ConstExpr{Val: term.Int(3)}}}, term.String("el")},
		{FuncExpr{Name: "toString", Args: []Expr{VarExpr{Name: "X"}}}, term.String("-3")},
		{FuncExpr{Name: "min", Args: []Expr{VarExpr{Name: "X"}, ConstExpr{Val: term.Int(0)}}}, term.Int(-3)},
	}
	for _, c := range cases {
		got, err := c.expr.Eval(env)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: got %v want %v", c.expr, got, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	env := map[string]term.Value{"X": term.Int(1), "Z": term.Int(0)}
	_, err := BinExpr{Op: "/", L: VarExpr{Name: "X"}, R: VarExpr{Name: "Z"}}.Eval(env)
	if err == nil {
		t.Error("integer division by zero must error")
	}
}

func TestIsoKeyQuick(t *testing.T) {
	// Renaming nulls consistently preserves IsoKey.
	f := func(a, b, c uint8) bool {
		base := NewFact("p", term.Null(int64(a%4)+1), term.Null(int64(b%4)+1), term.Int(int64(c)))
		shift := NewFact("p", term.Null(int64(a%4)+100), term.Null(int64(b%4)+100), term.Int(int64(c)))
		return base.IsoKey() == shift.IsoKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
