// Package ast defines the abstract syntax of Vadalog programs: atoms,
// existential rules, conditions, expressions, aggregations, constraints,
// equality-generating dependencies and annotations, plus runtime facts.
package ast

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/term"
)

// Arg is one argument position of an atom in a rule: either a variable or
// a constant. The special variable "*" (Dom(*)) and the anonymous variable
// "_" are represented as variables with those names.
type Arg struct {
	IsVar bool
	Var   string
	Const term.Value
	// Line/Col locate the argument in the source text (0 when the program
	// was built programmatically) for positioned diagnostics.
	Line, Col int
}

// V returns a variable argument.
func V(name string) Arg { return Arg{IsVar: true, Var: name} }

// C returns a constant argument.
func C(v term.Value) Arg { return Arg{Const: v} }

// String renders the argument in surface syntax.
func (a Arg) String() string {
	if a.IsVar {
		return a.Var
	}
	return SourceString(a.Const)
}

// SourceString renders a constant so that the parser reads it back as the
// same value: string constants are rendered bare only when they re-lex as
// a plain identifier (lowercase-initial, alphanumeric/underscore, not a
// keyword); everything else is quoted. Value.String is looser (it keeps
// '-', '.' and uppercase-initial strings bare), which is fine for keys and
// display but breaks parse round-trips.
func SourceString(v term.Value) string {
	if v.Kind() != term.KindString {
		return v.String()
	}
	s := v.Str()
	if !safeBareIdent(s) {
		return strconv.Quote(s)
	}
	return s
}

// safeBareIdent reports whether s lexes as a single lowercase-initial
// identifier token (and not the keyword "not").
func safeBareIdent(s string) bool {
	if s == "" || s == "not" {
		return false
	}
	if s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			return false
		}
	}
	return true
}

// Atom is a predicate applied to arguments, possibly negated (stratified
// negation in rule bodies only).
type Atom struct {
	Pred    string
	Args    []Arg
	Negated bool
	// Line/Col locate the predicate name in the source text (0 when the
	// program was built programmatically) for positioned diagnostics.
	Line, Col int
}

// NewAtom builds a positive atom.
func NewAtom(pred string, args ...Arg) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of argument positions.
func (a Atom) Arity() int { return len(a.Args) }

// Vars appends the distinct variable names occurring in a to dst in order
// of first occurrence and returns the extended slice.
func (a Atom) Vars(dst []string) []string {
	for _, arg := range a.Args {
		if arg.IsVar && arg.Var != "_" && !containsStr(dst, arg.Var) {
			dst = append(dst, arg.Var)
		}
	}
	return dst
}

// String renders the atom in surface syntax.
func (a Atom) String() string {
	var sb strings.Builder
	if a.Negated {
		sb.WriteString("not ")
	}
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, arg := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(arg.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// CmpOp is a comparison operator in a condition.
type CmpOp int

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNeq
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String renders the operator in surface syntax.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "=="
	case CmpNeq:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// Condition is a comparison between two expressions, filtering bindings.
type Condition struct {
	Op   CmpOp
	L, R Expr
	// Line/Col locate the condition in the source text (0 when the program
	// was built programmatically) for positioned diagnostics.
	Line, Col int
}

// String renders the condition in surface syntax.
func (c Condition) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

// Assignment binds a fresh head variable to the value of an expression
// evaluated under the body bindings (paper Sec. 5, "expressions as the LHS
// of an assignment").
type Assignment struct {
	Var  string
	Expr Expr
	// Line/Col locate the assignment in the source text (0 when the program
	// was built programmatically) for positioned diagnostics.
	Line, Col int
}

// String renders the assignment in surface syntax.
func (a Assignment) String() string { return a.Var + " = " + a.Expr.String() }

// AggregateSpec describes a monotonic aggregation z = maggr(x, <c1,...>)
// with optional contributor variables (windowing) per paper Sec. 5.
// Group-by arguments are implicitly the head variables other than Result.
type AggregateSpec struct {
	Result       string // z, the monotonic aggregate variable
	Func         string // msum, mprod, mmin, mmax, mcount, munion
	Arg          Expr   // x, the aggregated expression
	Contributors []string
	// Line/Col locate the aggregation in the source text (0 when the
	// program was built programmatically) for positioned diagnostics.
	Line, Col int
}

// String renders the aggregation in surface syntax.
func (a AggregateSpec) String() string {
	var sb strings.Builder
	sb.WriteString(a.Result)
	sb.WriteString(" = ")
	sb.WriteString(a.Func)
	sb.WriteByte('(')
	sb.WriteString(a.Arg.String())
	if len(a.Contributors) > 0 {
		sb.WriteString(",<")
		sb.WriteString(strings.Join(a.Contributors, ","))
		sb.WriteByte('>')
	}
	sb.WriteByte(')')
	return sb.String()
}

// EGDSpec is an equality-generating dependency head: body -> X = Y.
type EGDSpec struct {
	Left, Right string
}

// Rule is one Vadalog rule. Exactly one of the following holds:
//   - len(Heads) > 0: an existential rule (tgd);
//   - IsConstraint: a negative constraint body -> ⊥;
//   - EGD != nil: an equality-generating dependency.
//
// Head variables that do not occur in the body, in an assignment or as an
// aggregate result are existentially quantified.
type Rule struct {
	ID           int
	Heads        []Atom
	Body         []Atom
	Conds        []Condition
	Assignments  []Assignment
	Aggregate    *AggregateSpec
	IsConstraint bool
	EGD          *EGDSpec
	// UsesDom marks rules whose body contains the dom(*) guard restricting
	// all body variables to active-domain constants.
	UsesDom bool
	// DomVars lists variables restricted individually by dom(V) guards
	// (the single-variable grounding used by harmful-join elimination).
	DomVars []string
	// Skolem optionally overrides the rule's Skolem base name; rewriting
	// passes set it so that split or composed rules mint the same labelled
	// nulls as the original rule (see SkolemBase).
	Skolem string
	// Line/Col locate the rule's first token in the source text (0 when the
	// program was built programmatically) for positioned diagnostics.
	// Rewriting passes preserve the position of the originating rule.
	Line, Col int
}

// SkolemBase returns the base name used to derive the deterministic Skolem
// functions instantiating this rule's existential variables.
func (r *Rule) SkolemBase() string {
	if r.Skolem != "" {
		return r.Skolem
	}
	return fmt.Sprintf("r%d", r.ID)
}

// BodyVars returns the distinct variable names of the positive body in
// order of first occurrence.
func (r *Rule) BodyVars() []string {
	var vs []string
	for _, a := range r.Body {
		if a.Negated {
			continue
		}
		vs = a.Vars(vs)
	}
	return vs
}

// HeadVars returns the distinct variable names of all head atoms.
func (r *Rule) HeadVars() []string {
	var vs []string
	for _, a := range r.Heads {
		vs = a.Vars(vs)
	}
	return vs
}

// BoundVars returns the variables bound by the body, assignments and
// aggregation, i.e. every head variable that is NOT existential.
func (r *Rule) BoundVars() map[string]bool {
	bound := make(map[string]bool)
	for _, v := range r.BodyVars() {
		bound[v] = true
	}
	for _, as := range r.Assignments {
		bound[as.Var] = true
	}
	if r.Aggregate != nil {
		bound[r.Aggregate.Result] = true
	}
	return bound
}

// Existentials returns the head variables that are existentially
// quantified, in order of first occurrence in the head.
func (r *Rule) Existentials() []string {
	bound := r.BoundVars()
	var ex []string
	for _, v := range r.HeadVars() {
		if !bound[v] && !containsStr(ex, v) {
			ex = append(ex, v)
		}
	}
	return ex
}

// IsLinear reports whether the rule has at most one positive body atom
// (dom(*) guards do not count).
func (r *Rule) IsLinear() bool {
	n := 0
	for _, a := range r.Body {
		if !a.Negated && a.Pred != DomPred {
			n++
		}
	}
	return n <= 1
}

// IsFact reports whether the rule has an empty body and a single ground
// head, i.e. is an inline fact.
func (r *Rule) IsFact() bool {
	if len(r.Body) != 0 || len(r.Heads) != 1 || r.IsConstraint || r.EGD != nil {
		return false
	}
	for _, a := range r.Heads[0].Args {
		if a.IsVar {
			return false
		}
	}
	return true
}

// String renders the rule in surface syntax.
func (r *Rule) String() string {
	var parts []string
	if r.UsesDom {
		parts = append(parts, DomPred+"(*)")
	}
	for _, v := range r.DomVars {
		parts = append(parts, DomPred+"("+v+")")
	}
	for _, a := range r.Body {
		parts = append(parts, a.String())
	}
	for _, c := range r.Conds {
		parts = append(parts, c.String())
	}
	for _, as := range r.Assignments {
		parts = append(parts, as.String())
	}
	if r.Aggregate != nil {
		parts = append(parts, r.Aggregate.String())
	}
	body := strings.Join(parts, ", ")
	var head string
	switch {
	case r.IsConstraint:
		head = "#fail"
	case r.EGD != nil:
		head = r.EGD.Left + " = " + r.EGD.Right
	default:
		var hs []string
		for _, h := range r.Heads {
			hs = append(hs, h.String())
		}
		head = strings.Join(hs, ", ")
	}
	if body == "" {
		return head + "."
	}
	return body + " -> " + head + "."
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	c := *r
	c.Heads = cloneAtoms(r.Heads)
	c.Body = cloneAtoms(r.Body)
	c.Conds = append([]Condition(nil), r.Conds...)
	c.Assignments = append([]Assignment(nil), r.Assignments...)
	c.DomVars = append([]string(nil), r.DomVars...)
	if r.Aggregate != nil {
		ag := *r.Aggregate
		ag.Contributors = append([]string(nil), r.Aggregate.Contributors...)
		c.Aggregate = &ag
	}
	if r.EGD != nil {
		egd := *r.EGD
		c.EGD = &egd
	}
	return &c
}

func cloneAtoms(as []Atom) []Atom {
	out := make([]Atom, len(as))
	for i, a := range as {
		out[i] = a
		out[i].Args = append([]Arg(nil), a.Args...)
	}
	return out
}

// DomPred is the reserved predicate name of the active-domain guard
// dom(*) (paper Sec. 2, "Modeling Features").
const DomPred = "dom"

// Fact is a ground atom: a predicate over constants and labelled nulls.
type Fact struct {
	Pred string
	Args []term.Value
	// Line/Col locate an inline program fact in the source text (0 for
	// runtime facts) for positioned diagnostics.
	Line, Col int
}

// NewFact builds a fact.
func NewFact(pred string, args ...term.Value) Fact { return Fact{Pred: pred, Args: args} }

// IsGround reports whether the fact contains no labelled nulls.
func (f Fact) IsGround() bool {
	for _, a := range f.Args {
		if a.IsNull() {
			return false
		}
	}
	return true
}

// Key returns a canonical string key identifying the fact exactly
// (constants and null identities included).
func (f Fact) Key() string {
	var sb strings.Builder
	sb.WriteString(f.Pred)
	for _, a := range f.Args {
		sb.WriteByte('\x00')
		sb.WriteString(a.String())
	}
	return sb.String()
}

// PatternKey returns the canonical pattern of the fact per the paper's
// pattern-isomorphism: constants are numbered by first occurrence and so
// are nulls, e.g. P(1,2,x,y) and P(3,4,z,y) share pattern P(c1,c2,n1,n2).
func (f Fact) PatternKey() string {
	var sb strings.Builder
	sb.WriteString(f.Pred)
	consts := make(map[term.Value]int)
	nulls := make(map[int64]int)
	for _, a := range f.Args {
		sb.WriteByte('\x00')
		if a.IsNull() {
			id, ok := nulls[a.NullID()]
			if !ok {
				id = len(nulls) + 1
				nulls[a.NullID()] = id
			}
			sb.WriteByte('n')
			sb.WriteByte(byte('0' + id%10))
			if id >= 10 {
				fmt.Fprintf(&sb, "%d", id/10)
			}
		} else {
			id, ok := consts[a]
			if !ok {
				id = len(consts) + 1
				consts[a] = id
			}
			sb.WriteByte('c')
			sb.WriteByte(byte('0' + id%10))
			if id >= 10 {
				fmt.Fprintf(&sb, "%d", id/10)
			}
		}
	}
	return sb.String()
}

// String renders the fact in surface syntax; constants are rendered with
// SourceString, so the rendering parses back to the same fact.
func (f Fact) String() string {
	var sb strings.Builder
	sb.WriteString(f.Pred)
	sb.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(SourceString(a))
	}
	sb.WriteByte(')')
	return sb.String()
}

// Isomorphic reports whether facts a and b are isomorphic per Sec. 3.1:
// same predicate, equal constants in the same positions, and a bijection
// between their labelled nulls.
func Isomorphic(a, b Fact) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	var fwd, bwd map[int64]int64
	for i, x := range a.Args {
		y := b.Args[i]
		if x.IsNull() != y.IsNull() {
			return false
		}
		if !x.IsNull() {
			if x != y {
				return false
			}
			continue
		}
		if fwd == nil {
			fwd = make(map[int64]int64, 4)
			bwd = make(map[int64]int64, 4)
		}
		xi, yi := x.NullID(), y.NullID()
		if m, ok := fwd[xi]; ok {
			if m != yi {
				return false
			}
		} else {
			fwd[xi] = yi
		}
		if m, ok := bwd[yi]; ok {
			if m != xi {
				return false
			}
		} else {
			bwd[yi] = xi
		}
	}
	return true
}

// IsoKey returns a canonical key identifying the fact up to isomorphism of
// labelled nulls: constants stay as-is, nulls are numbered by first
// occurrence. Two facts are isomorphic iff their IsoKeys are equal.
func (f Fact) IsoKey() string {
	var sb strings.Builder
	sb.WriteString(f.Pred)
	nulls := make(map[int64]int)
	for _, a := range f.Args {
		sb.WriteByte('\x00')
		if a.IsNull() {
			id, ok := nulls[a.NullID()]
			if !ok {
				id = len(nulls) + 1
				nulls[a.NullID()] = id
			}
			fmt.Fprintf(&sb, "\x02%d", id)
		} else {
			sb.WriteString(a.String())
		}
	}
	return sb.String()
}

// Binding is an @bind or @qbind annotation attaching a predicate to an
// external source or sink via a record manager. @qbind carries a query —
// a constant selection over predicate positions like "$2 > 10" — that the
// binding layer pushes into the driver when supported (post-filtering
// otherwise); @bind has none.
type Binding struct {
	Pred   string
	Driver string // registry name, e.g. "csv"
	Target string // driver-interpreted locator, e.g. a file path
	Query  string // @qbind selection; "" for @bind
	// Line/Col locate the annotation in the source text (0 when the
	// program was built programmatically) for positioned compile errors.
	Line, Col int
}

// PostDirective is an @post annotation: a post-processing step applied to
// an output predicate (orderBy, certain, limit).
type PostDirective struct {
	Pred string
	Kind string // "orderBy" | "certain" | "limit"
	Arg  int    // column for orderBy (1-based), count for limit
}

// Mapping is an @mapping annotation harmonizing named external columns
// with Vadalog's positional perspective: the named source columns are
// selected, in order, onto the predicate's argument positions.
type Mapping struct {
	Pred    string
	Columns []string
	// Line/Col locate the annotation in the source text (0 when the
	// program was built programmatically) for positioned compile errors.
	Line, Col int
}

// Program is a parsed Vadalog program: rules, inline facts and
// annotations.
type Program struct {
	Rules    []*Rule
	Facts    []Fact
	Inputs   map[string]bool
	Outputs  map[string]bool
	Bindings []Binding
	Posts    []PostDirective
	Mappings []Mapping
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Inputs: make(map[string]bool), Outputs: make(map[string]bool)}
}

// AddRule appends r, assigning it the next rule ID.
func (p *Program) AddRule(r *Rule) {
	r.ID = len(p.Rules)
	p.Rules = append(p.Rules, r)
}

// Predicates returns every predicate mentioned in rules or facts, with its
// arity. It returns an error on inconsistent arities.
func (p *Program) Predicates() (map[string]int, error) {
	ar := make(map[string]int)
	note := func(pred string, n int) error {
		if pred == DomPred {
			return nil
		}
		if old, ok := ar[pred]; ok && old != n {
			return fmt.Errorf("ast: predicate %s used with arities %d and %d", pred, old, n)
		}
		ar[pred] = n
		return nil
	}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if err := note(a.Pred, a.Arity()); err != nil {
				return nil, err
			}
		}
		for _, h := range r.Heads {
			if err := note(h.Pred, h.Arity()); err != nil {
				return nil, err
			}
		}
	}
	for _, f := range p.Facts {
		if err := note(f.Pred, len(f.Args)); err != nil {
			return nil, err
		}
	}
	return ar, nil
}

// IDBPreds returns the set of predicates appearing in some rule head.
func (p *Program) IDBPreds() map[string]bool {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		for _, h := range r.Heads {
			idb[h.Pred] = true
		}
	}
	return idb
}

// String renders the whole program in surface syntax. The rendering is
// deterministic (@input/@output sets are sorted) and parses back to an
// equivalent program.
func (p *Program) String() string {
	var sb strings.Builder
	for _, pred := range sortedPreds(p.Inputs) {
		fmt.Fprintf(&sb, "@input(%q).\n", pred)
	}
	for _, pred := range sortedPreds(p.Outputs) {
		fmt.Fprintf(&sb, "@output(%q).\n", pred)
	}
	for _, b := range p.Bindings {
		if b.Query != "" {
			fmt.Fprintf(&sb, "@qbind(%q,%q,%q,%q).\n", b.Pred, b.Driver, b.Target, b.Query)
		} else {
			fmt.Fprintf(&sb, "@bind(%q,%q,%q).\n", b.Pred, b.Driver, b.Target)
		}
	}
	for _, m := range p.Mappings {
		fmt.Fprintf(&sb, "@mapping(%q", m.Pred)
		for _, c := range m.Columns {
			fmt.Fprintf(&sb, ",%q", c)
		}
		sb.WriteString(").\n")
	}
	for _, d := range p.Posts {
		if d.Kind == "certain" {
			fmt.Fprintf(&sb, "@post(%q,%q).\n", d.Pred, d.Kind)
		} else {
			fmt.Fprintf(&sb, "@post(%q,%q,%d).\n", d.Pred, d.Kind, d.Arg)
		}
	}
	for _, f := range p.Facts {
		sb.WriteString(f.String())
		sb.WriteString(".\n")
	}
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func sortedPreds(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for pred := range set {
		out = append(out, pred)
	}
	sort.Strings(out)
	return out
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
