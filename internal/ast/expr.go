package ast

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/term"
)

// Expr is an expression over rule variables (paper Sec. 5): a term is an
// expression; a combination of expressions by typed operators is an
// expression. Expressions appear in conditions and assignments.
type Expr interface {
	// Eval computes the expression under the variable bindings env.
	Eval(env map[string]term.Value) (term.Value, error)
	// Vars appends the variables the expression reads to dst.
	Vars(dst []string) []string
	// String renders the expression in surface syntax.
	String() string
}

// ConstExpr is a literal constant.
type ConstExpr struct{ Val term.Value }

// Eval returns the constant.
func (e ConstExpr) Eval(map[string]term.Value) (term.Value, error) { return e.Val, nil }

// Vars returns dst unchanged.
func (e ConstExpr) Vars(dst []string) []string { return dst }

// String renders the constant so that the parser reads it back as the
// same value (see SourceString).
func (e ConstExpr) String() string { return SourceString(e.Val) }

// VarExpr reads a rule variable.
type VarExpr struct{ Name string }

// Eval looks the variable up in env.
func (e VarExpr) Eval(env map[string]term.Value) (term.Value, error) {
	v, ok := env[e.Name]
	if !ok {
		return term.Value{}, fmt.Errorf("ast: unbound variable %s in expression", e.Name)
	}
	return v, nil
}

// Vars appends the variable name if absent.
func (e VarExpr) Vars(dst []string) []string {
	if !containsStr(dst, e.Name) {
		dst = append(dst, e.Name)
	}
	return dst
}

// String renders the variable name.
func (e VarExpr) String() string { return e.Name }

// BinExpr applies a binary operator: + - * / % for numerics, + as string
// concatenation, && and || for booleans.
type BinExpr struct {
	Op   string
	L, R Expr
}

// Eval evaluates both sides and applies the operator with the numeric
// widening rules of the paper's typed expressions.
func (e BinExpr) Eval(env map[string]term.Value) (term.Value, error) {
	l, err := e.L.Eval(env)
	if err != nil {
		return term.Value{}, err
	}
	r, err := e.R.Eval(env)
	if err != nil {
		return term.Value{}, err
	}
	switch e.Op {
	case "&&", "||":
		if l.Kind() != term.KindBool || r.Kind() != term.KindBool {
			return term.Value{}, fmt.Errorf("ast: %s requires booleans, got %s and %s", e.Op, l.Kind(), r.Kind())
		}
		if e.Op == "&&" {
			return term.Bool(l.BoolVal() && r.BoolVal()), nil
		}
		return term.Bool(l.BoolVal() || r.BoolVal()), nil
	}
	if l.Kind() == term.KindString || r.Kind() == term.KindString {
		if e.Op != "+" {
			return term.Value{}, fmt.Errorf("ast: operator %s not defined on strings", e.Op)
		}
		return term.String(valueToStr(l) + valueToStr(r)), nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return term.Value{}, fmt.Errorf("ast: operator %s requires numerics, got %s and %s", e.Op, l.Kind(), r.Kind())
	}
	if l.Kind() == term.KindInt && r.Kind() == term.KindInt {
		a, b := l.IntVal(), r.IntVal()
		switch e.Op {
		case "+":
			return term.Int(a + b), nil
		case "-":
			return term.Int(a - b), nil
		case "*":
			return term.Int(a * b), nil
		case "/":
			if b == 0 {
				return term.Value{}, fmt.Errorf("ast: integer division by zero")
			}
			return term.Int(a / b), nil
		case "%":
			if b == 0 {
				return term.Value{}, fmt.Errorf("ast: integer modulo by zero")
			}
			return term.Int(a % b), nil
		case "^":
			return term.Float(math.Pow(float64(a), float64(b))), nil
		}
	}
	a, b := l.FloatVal(), r.FloatVal()
	switch e.Op {
	case "+":
		return term.Float(a + b), nil
	case "-":
		return term.Float(a - b), nil
	case "*":
		return term.Float(a * b), nil
	case "/":
		return term.Float(a / b), nil
	case "^":
		return term.Float(math.Pow(a, b)), nil
	}
	return term.Value{}, fmt.Errorf("ast: unknown operator %s", e.Op)
}

// Vars appends variables of both operands.
func (e BinExpr) Vars(dst []string) []string { return e.R.Vars(e.L.Vars(dst)) }

// String renders the expression parenthesized. The modulo operator is
// written %% — a single % starts a comment in the surface syntax.
func (e BinExpr) String() string {
	op := e.Op
	if op == "%" {
		op = "%%"
	}
	return "(" + e.L.String() + " " + op + " " + e.R.String() + ")"
}

// FuncExpr applies a built-in typed function (string, date, numeric and
// conversion operators of Sec. 5) or a Skolem function (#name).
type FuncExpr struct {
	Name string
	Args []Expr
}

// Eval evaluates the arguments and applies the builtin. Skolem functions
// are not evaluated here; the engine intercepts them (they need the null
// factory) — Eval reports an error if one reaches it.
func (e FuncExpr) Eval(env map[string]term.Value) (term.Value, error) {
	if strings.HasPrefix(e.Name, "#") {
		return term.Value{}, fmt.Errorf("ast: skolem function %s must be evaluated by the engine", e.Name)
	}
	args := make([]term.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(env)
		if err != nil {
			return term.Value{}, err
		}
		args[i] = v
	}
	return applyBuiltin(e.Name, args)
}

// Vars appends variables of every argument.
func (e FuncExpr) Vars(dst []string) []string {
	for _, a := range e.Args {
		dst = a.Vars(dst)
	}
	return dst
}

// String renders the call.
func (e FuncExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ",") + ")"
}

// IsSkolem reports whether the call is a Skolem function (#name).
func (e FuncExpr) IsSkolem() bool { return strings.HasPrefix(e.Name, "#") }

func valueToStr(v term.Value) string {
	if v.Kind() == term.KindString {
		return v.Str()
	}
	return v.String()
}

func applyBuiltin(name string, args []term.Value) (term.Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("ast: %s expects %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "startsWith":
		if err := need(2); err != nil {
			return term.Value{}, err
		}
		return term.Bool(strings.HasPrefix(args[0].Str(), args[1].Str())), nil
	case "endsWith":
		if err := need(2); err != nil {
			return term.Value{}, err
		}
		return term.Bool(strings.HasSuffix(args[0].Str(), args[1].Str())), nil
	case "contains":
		if err := need(2); err != nil {
			return term.Value{}, err
		}
		return term.Bool(strings.Contains(args[0].Str(), args[1].Str())), nil
	case "indexOf":
		if err := need(2); err != nil {
			return term.Value{}, err
		}
		return term.Int(int64(strings.Index(args[0].Str(), args[1].Str()))), nil
	case "substring":
		if err := need(3); err != nil {
			return term.Value{}, err
		}
		s := args[0].Str()
		lo, hi := int(args[1].IntVal()), int(args[2].IntVal())
		if lo < 0 || hi > len(s) || lo > hi {
			return term.Value{}, fmt.Errorf("ast: substring bounds [%d,%d) out of range for %q", lo, hi, s)
		}
		return term.String(s[lo:hi]), nil
	case "length":
		if err := need(1); err != nil {
			return term.Value{}, err
		}
		return term.Int(int64(len(args[0].Str()))), nil
	case "upper":
		if err := need(1); err != nil {
			return term.Value{}, err
		}
		return term.String(strings.ToUpper(args[0].Str())), nil
	case "lower":
		if err := need(1); err != nil {
			return term.Value{}, err
		}
		return term.String(strings.ToLower(args[0].Str())), nil
	case "concat":
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(valueToStr(a))
		}
		return term.String(sb.String()), nil
	case "abs":
		if err := need(1); err != nil {
			return term.Value{}, err
		}
		if args[0].Kind() == term.KindInt {
			v := args[0].IntVal()
			if v < 0 {
				v = -v
			}
			return term.Int(v), nil
		}
		return term.Float(math.Abs(args[0].FloatVal())), nil
	case "min":
		if err := need(2); err != nil {
			return term.Value{}, err
		}
		if term.Compare(args[0], args[1]) <= 0 {
			return args[0], nil
		}
		return args[1], nil
	case "max":
		if err := need(2); err != nil {
			return term.Value{}, err
		}
		if term.Compare(args[0], args[1]) >= 0 {
			return args[0], nil
		}
		return args[1], nil
	case "toInt":
		if err := need(1); err != nil {
			return term.Value{}, err
		}
		switch args[0].Kind() {
		case term.KindInt:
			return args[0], nil
		case term.KindFloat:
			return term.Int(int64(args[0].FloatVal())), nil
		case term.KindString:
			v, err := term.ParseLiteral(args[0].Str())
			if err != nil || v.Kind() != term.KindInt {
				return term.Value{}, fmt.Errorf("ast: cannot convert %q to int", args[0].Str())
			}
			return v, nil
		}
		return term.Value{}, fmt.Errorf("ast: cannot convert %s to int", args[0].Kind())
	case "toFloat":
		if err := need(1); err != nil {
			return term.Value{}, err
		}
		if args[0].IsNumeric() {
			return term.Float(args[0].FloatVal()), nil
		}
		return term.Value{}, fmt.Errorf("ast: cannot convert %s to float", args[0].Kind())
	case "toString":
		if err := need(1); err != nil {
			return term.Value{}, err
		}
		return term.String(valueToStr(args[0])), nil
	}
	return term.Value{}, fmt.Errorf("ast: unknown function %s", name)
}

// EvalCondition evaluates a condition under env. Comparisons between a
// labelled null and anything else succeed only for == of the same null
// and != of different values, mirroring the paper's treatment of nulls as
// plain (distinct) symbols.
func EvalCondition(c Condition, env map[string]term.Value) (bool, error) {
	l, err := c.L.Eval(env)
	if err != nil {
		return false, err
	}
	r, err := c.R.Eval(env)
	if err != nil {
		return false, err
	}
	if l.IsNull() || r.IsNull() {
		switch c.Op {
		case CmpEq:
			return l == r, nil
		case CmpNeq:
			return l != r, nil
		default:
			return false, nil // ordering undefined on labelled nulls
		}
	}
	cmp := term.Compare(l, r)
	switch c.Op {
	case CmpEq:
		return term.Equal(l, r), nil
	case CmpNeq:
		return !term.Equal(l, r), nil
	case CmpLt:
		return cmp < 0, nil
	case CmpLe:
		return cmp <= 0, nil
	case CmpGt:
		return cmp > 0, nil
	case CmpGe:
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("ast: unknown comparison operator")
}
