package planner

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/storage"
)

// fakeCat is a hand-set statistics catalog.
type fakeCat struct {
	gen   uint64
	stats map[string]storage.RelStats
}

func (c *fakeCat) RelStats(pred string) (storage.RelStats, bool) {
	st, ok := c.stats[pred]
	return st, ok
}

func (c *fakeCat) Gen() uint64 { return c.gen }

func compileRule(t *testing.T, src string) *eval.CompiledRule {
	t.Helper()
	prog := parser.MustParse(src)
	res := analysis.Analyze(prog)
	cr, err := eval.Compile(prog.Rules[0], res.Rules[0])
	if err != nil {
		t.Fatal(err)
	}
	return cr
}

func skewCat() *fakeCat {
	return &fakeCat{stats: map[string]storage.RelStats{
		"s":     {Live: 1, Distinct: []float64{1}},
		"big":   {Live: 100000, Distinct: []float64{1000, 1000}},
		"small": {Live: 10, Distinct: []float64{10, 10}},
	}}
}

// TestGreedySkewOrder: with the delta pinned on the tiny source atom, the
// planner matches the small relation before the huge one — the
// smallest-estimated-intermediate-first objective.
func TestGreedySkewOrder(t *testing.T) {
	cr := compileRule(t, `s(X), big(X,Y), small(Y,Z) -> out(X,Z).`)
	pl := New(skewCat())
	p := pl.PlanFor(cr, 0)
	if len(p.Order) != 2 || p.Order[0] != 2 || p.Order[1] != 1 {
		t.Fatalf("order: %v, want [2 1] (small before big)", p.Order)
	}
	// big is probed on both columns once small bound Y: its presize hint
	// carries the mask and a key estimate capped at the live count.
	var found bool
	for _, pr := range p.Probes {
		if pr.Pred == "big" && pr.Mask == 0b11 {
			found = true
			if pr.Keys <= 0 || pr.Keys > 100000 {
				t.Errorf("big probe keys: %d", pr.Keys)
			}
		}
	}
	if !found {
		t.Errorf("no presize probe for big: %+v", p.Probes)
	}
	if pl.Derives() != 1 {
		t.Errorf("derives: %d, want 1", pl.Derives())
	}
}

// TestWorstInvertsObjective: Worst mode picks the largest estimated
// intermediate at every step (the deliberately terrible plan used to
// prove plan-independence of results).
func TestWorstInvertsObjective(t *testing.T) {
	cr := compileRule(t, `s(X), big(X,Y), small(Y,Z) -> out(X,Z).`)
	pl := New(skewCat())
	pl.Worst = true
	p := pl.PlanFor(cr, 0)
	if len(p.Order) != 2 || p.Order[0] != 1 || p.Order[1] != 2 {
		t.Fatalf("worst order: %v, want [1 2] (big before small)", p.Order)
	}
}

// TestGreedyTieBreakSourceOrder: equal estimates resolve to the earliest
// source-order atom — the same documented tie-break as the static
// schedule, pinned so plans are reproducible run to run.
func TestGreedyTieBreakSourceOrder(t *testing.T) {
	cr := compileRule(t, `a(X), b(X), c(X) -> h(X).`)
	same := storage.RelStats{Live: 100, Distinct: []float64{50}}
	pl := New(&fakeCat{stats: map[string]storage.RelStats{"a": {Live: 1}, "b": same, "c": same}})
	p := pl.PlanFor(cr, 0)
	if len(p.Order) != 2 || p.Order[0] != 1 || p.Order[1] != 2 {
		t.Fatalf("order: %v, want [1 2] (source-order tie-break)", p.Order)
	}
}

// TestPlanCacheAndDriftReplan: plans are cached per (rule, pinned) while
// the generation stands; a new generation revalidates cheaply and only a
// drift past the threshold recomputes.
func TestPlanCacheAndDriftReplan(t *testing.T) {
	cr := compileRule(t, `s(X), big(X,Y), small(Y,Z) -> out(X,Z).`)
	cat := skewCat()
	pl := New(cat)
	p1 := pl.PlanFor(cr, 0)
	if p2 := pl.PlanFor(cr, 0); p2 != p1 {
		t.Fatal("same generation must serve the cached plan")
	}
	// New generation, same sizes: revalidate, no recompute.
	cat.gen++
	if p2 := pl.PlanFor(cr, 0); p2 != p1 || pl.Derives() != 1 || pl.Replans() != 0 {
		t.Fatalf("undrifted revalidation recomputed: derives=%d replans=%d", pl.Derives(), pl.Replans())
	}
	// small explodes past the drift threshold: the plan is recomputed and
	// the join order flips.
	cat.gen++
	cat.stats["small"] = storage.RelStats{Live: 1_000_000, Distinct: []float64{2, 2}}
	p3 := pl.PlanFor(cr, 0)
	if pl.Derives() != 2 || pl.Replans() != 1 {
		t.Fatalf("drift must recompute: derives=%d replans=%d", pl.Derives(), pl.Replans())
	}
	if len(p3.Order) != 2 || p3.Order[0] != 1 {
		t.Fatalf("replanned order: %v, want big first", p3.Order)
	}
}

// TestDescribe: the -explain rendering names the pinned atom, the chosen
// order with estimates, and the row counts that drove it.
func TestDescribe(t *testing.T) {
	cr := compileRule(t, `s(X), big(X,Y), small(Y,Z) -> out(X,Z).`)
	pl := New(skewCat())
	line := pl.Describe(cr, 0)
	for _, want := range []string{"Δs: s*", "small(est", "big(est", "rows", "big=100000"} {
		if !strings.Contains(line, want) {
			t.Errorf("describe %q missing %q", line, want)
		}
	}
	if strings.Index(line, "small(est") > strings.Index(line, "big(est") {
		t.Errorf("describe orders big before small: %q", line)
	}
}
