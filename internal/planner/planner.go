// Package planner derives cost-based join schedules for compiled rules
// from per-relation statistics — the statistics-driven half of the
// paper's execution optimizer (Sec. 6, Optimizations). Where the static
// schedule compiled into an eval.CompiledRule orders body atoms by how
// many positions are bound, the planner orders them by how many rows it
// expects them to contribute: per-atom selectivity is estimated from
// live-row counts and per-column distinct-ID sketches
// (storage.RelStats), and the atom with the smallest estimated
// intermediate is matched first.
//
// Plans are cached per (rule, pinned atom) and revalidated against the
// statistics generation at every batch/epoch boundary: when the live
// size of a body relation has drifted past a threshold since the plan
// was derived, the plan is recomputed (adaptive re-planning — early
// chase rounds see empty derived relations, late rounds see them
// dominating). Plans only reorder candidate enumeration; the engines
// admit candidates in a canonical order (eval.BindingLog.CanonicalOrder)
// so reasoning output stays byte-identical for every plan choice.
//
// Entry points: New builds a Planner over a statistics Catalog;
// PlanFor returns (deriving or revalidating as needed) the plan for one
// pinned rule evaluation; Describe renders a plan with the estimates
// that drove it for -explain output.
package planner

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/eval"
	"repro/internal/storage"
)

// Catalog supplies per-predicate statistics and the generation counter
// that tells the planner a new consistent snapshot exists.
type Catalog interface {
	// RelStats returns the statistics for pred; false when the predicate
	// has no relation (yet), which the planner treats as an empty one.
	RelStats(pred string) (storage.RelStats, bool)
	// Gen identifies the statistics snapshot; it must change whenever the
	// numbers RelStats reports may have changed.
	Gen() uint64
}

// LiveCatalog reads statistics computed from the database's current
// contents — the single-threaded pipeline engine's view, always current.
type LiveCatalog struct{ DB *storage.Database }

// RelStats implements Catalog.
func (c LiveCatalog) RelStats(pred string) (storage.RelStats, bool) {
	return c.DB.RelStats(pred, false)
}

// Gen implements Catalog. The live view has no epochs; advancing the
// generation on every Freeze keeps the cache honest without making every
// PlanFor a recomputation.
func (c LiveCatalog) Gen() uint64 { return c.DB.StatsGen() }

// FrozenCatalog reads the snapshots captured by the last Database.Freeze
// — what the parallel chase must plan against, so workers plan with
// exactly the numbers they match against.
type FrozenCatalog struct{ DB *storage.Database }

// RelStats implements Catalog.
func (c FrozenCatalog) RelStats(pred string) (storage.RelStats, bool) {
	return c.DB.RelStats(pred, true)
}

// Gen implements Catalog.
func (c FrozenCatalog) Gen() uint64 { return c.DB.StatsGen() }

// Probe is a presize hint: the plan expects to probe pred through an
// index over the positions in Mask holding about Keys distinct keys.
// Engines pass the hint to storage.Relation.EnsureIndexSized at a safe
// (single-threaded) boundary so the index's bucket table is allocated
// once instead of growing through rehashes.
type Probe struct {
	Pred string
	Mask uint32
	Keys int
}

// Plan is a derived schedule for one (rule, pinned atom) evaluation.
type Plan struct {
	// Steps is the full execution schedule (matches, assignments,
	// conditions) to hand to eval.Matcher.MatchPinnedSteps.
	Steps []eval.Step
	// Order lists the non-pinned positive atoms in chosen match order.
	Order []int
	// Est[k] is the estimated intermediate-result size after matching
	// Order[k] (candidate bindings in flight at that depth).
	Est []float64
	// Rows[i] is the live-row count of Pos[i]'s relation at planning time
	// (the re-planning basis, also rendered by Describe).
	Rows []int
	// Probes are the index presize hints for the chosen order.
	Probes []Probe
	// Cost is the total estimated probe work of the chosen order.
	Cost float64

	gen uint64 // statistics generation the plan was derived (or revalidated) at
}

type planKey struct {
	cr     *eval.CompiledRule
	pinned int
}

// Planner derives and caches plans against a statistics catalog. A
// Planner is not safe for concurrent use; the engines call it only from
// their serial sections (batch boundaries, the pipeline's single
// goroutine) and share the resulting immutable step slices with workers.
type Planner struct {
	cat Catalog

	// DriftFactor and MinDrift control adaptive re-planning: a cached
	// plan is recomputed when some body relation's live-row count has
	// grown or shrunk by more than DriftFactor× since the plan was
	// derived, provided the absolute change is at least MinDrift rows
	// (tiny relations churn ratios without changing any good order).
	DriftFactor float64
	MinDrift    int

	// Worst inverts the cost objective: the planner picks the largest
	// estimated intermediate at every step. A deliberately terrible
	// plan, used by tests to force the worst-case order and assert that
	// reasoning output is plan-independent.
	Worst bool

	plans   map[planKey]*Plan
	derives int
	replans int
}

// New returns a Planner over cat with default re-planning thresholds.
func New(cat Catalog) *Planner {
	return &Planner{cat: cat, DriftFactor: 2, MinDrift: 16, plans: make(map[planKey]*Plan)}
}

// Derives returns how many plans were computed from scratch; Replans
// how many of those replaced a cached plan after statistics drift.
func (pl *Planner) Derives() int { return pl.derives }

// Replans returns the number of drift-triggered recomputations.
func (pl *Planner) Replans() int { return pl.replans }

// PlanFor returns the plan for evaluating cr with Pos[pinned] bound to a
// delta fact (pinned == len(cr.Pos) plans the unpinned evaluation). The
// cached plan is reused while the statistics generation is unchanged;
// at a new generation it is revalidated cheaply against current live-row
// counts and recomputed only when they drifted past the threshold. The
// returned Plan (and its Steps) must be treated as immutable.
func (pl *Planner) PlanFor(cr *eval.CompiledRule, pinned int) *Plan {
	key := planKey{cr, pinned}
	gen := pl.cat.Gen()
	if p := pl.plans[key]; p != nil {
		if p.gen == gen {
			return p
		}
		if !pl.drifted(cr, p) {
			p.gen = gen
			return p
		}
		pl.replans++
	}
	p := pl.derive(cr, pinned, gen)
	pl.plans[key] = p
	return p
}

// drifted reports whether some body relation's live size moved past the
// re-planning threshold since p was derived.
func (pl *Planner) drifted(cr *eval.CompiledRule, p *Plan) bool {
	f := pl.DriftFactor
	if f < 1 {
		f = 1
	}
	for i := range cr.Pos {
		was := p.Rows[i]
		st, _ := pl.cat.RelStats(cr.Pos[i].Pred)
		cur := st.Live
		diff := cur - was
		if diff < 0 {
			diff = -diff
		}
		if diff < pl.MinDrift {
			continue
		}
		if float64(cur) > float64(was)*f || float64(was) > float64(cur)*f {
			return true
		}
	}
	return false
}

// derive computes a fresh plan: greedy smallest-estimated-intermediate
// ordering over the non-pinned atoms, with source order breaking ties —
// the same tie-break the static schedule documents.
func (pl *Planner) derive(cr *eval.CompiledRule, pinned int, gen uint64) *Plan {
	pl.derives++
	n := len(cr.Pos)
	p := &Plan{Order: make([]int, 0, n), Rows: make([]int, n), gen: gen}

	stats := make([]storage.RelStats, n)
	for i := range cr.Pos {
		st, _ := pl.cat.RelStats(cr.Pos[i].Pred)
		stats[i] = st
		p.Rows[i] = st.Live
	}

	bound := make([]bool, cr.NSlots)
	matched := make([]bool, n)
	bindAtom := func(i int) {
		for pos, isv := range cr.Pos[i].IsVar {
			if isv {
				bound[cr.Pos[i].Slot[pos]] = true
			}
		}
	}
	// Assignments bind further slots as soon as their dependencies are
	// matched; mirror that so selectivity sees assignment-bound probes.
	asgDone := make([]bool, len(cr.Assigns))
	flushAssigns := func() {
		for progress := true; progress; {
			progress = false
			for i, a := range cr.Assigns {
				if asgDone[i] {
					continue
				}
				ok := true
				for _, s := range a.Deps {
					ok = ok && bound[s]
				}
				if ok {
					asgDone[i] = true
					bound[a.Slot] = true
					progress = true
				}
			}
		}
	}

	if pinned < n {
		matched[pinned] = true
		bindAtom(pinned)
	}
	flushAssigns()

	inter := 1.0 // candidate bindings in flight (the pinned delta is one row)
	for len(p.Order) < n-boolToInt(pinned < n) {
		best, bestEst := -1, 0.0
		var bestMask uint32
		var bestKeys float64
		for i := 0; i < n; i++ {
			if matched[i] {
				continue
			}
			est, mask, keys := estimateAtom(&cr.Pos[i], stats[i], bound)
			better := best == -1 || est < bestEst
			if pl.Worst {
				better = best == -1 || est > bestEst
			}
			if better {
				best, bestEst, bestMask, bestKeys = i, est, mask, keys
			}
		}
		if best == -1 {
			break
		}
		matched[best] = true
		p.Cost += inter
		inter *= bestEst
		p.Order = append(p.Order, best)
		p.Est = append(p.Est, inter)
		if bestMask != 0 {
			p.Probes = append(p.Probes, Probe{
				Pred: cr.Pos[best].Pred,
				Mask: bestMask,
				Keys: int(math.Ceil(bestKeys)),
			})
		}
		bindAtom(best)
		flushAssigns()
	}

	p.Steps = cr.ScheduleFor(pinned, p.Order)
	return p
}

// estimateAtom estimates how many rows of a's relation match one
// in-flight binding: live rows scaled by the selectivity of every
// position that is a constant or an already-bound slot, using the
// per-column distinct estimates. It also returns the probe mask those
// positions form and the expected distinct key count under that mask
// (capped at the live count) for index presizing.
func estimateAtom(a *eval.CAtom, st storage.RelStats, bound []bool) (est float64, mask uint32, keys float64) {
	live := float64(st.Live)
	est, keys = live, 1.0
	for p := 0; p < a.Arity(); p++ {
		if p >= 32 {
			break // masks are 32-bit; wider atoms scan their tail positions
		}
		if !a.IsVar[p] || bound[a.Slot[p]] {
			mask |= 1 << uint(p)
			d := distinctAt(st, p)
			est /= d
			keys *= d
		}
	}
	if keys > live {
		keys = live
	}
	if est < 0.1 {
		est = 0.1 // a probe is never free: keep ordering sensitive to it
	}
	return est, mask, keys
}

// distinctAt returns the distinct-ID estimate of column p, at least 1.
func distinctAt(st storage.RelStats, p int) float64 {
	if p < len(st.Distinct) && st.Distinct[p] > 1 {
		return st.Distinct[p]
	}
	return 1
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Describe renders the plan for (cr, pinned) with the estimates that
// drove it, as annotation lines under a rule's access-plan entry:
//
//	Δown: own* ⋈ control(est 1) ⋈ company(est 4) — rows own=10 control=1200 company=400
//
// The pinned atom is marked with a trailing *; each joined atom carries
// the estimated intermediate-result size after matching it.
func (pl *Planner) Describe(cr *eval.CompiledRule, pinned int) string {
	p := pl.PlanFor(cr, pinned)
	var sb strings.Builder
	if pinned < len(cr.Pos) {
		fmt.Fprintf(&sb, "Δ%s: %s*", cr.Pos[pinned].Pred, cr.Pos[pinned].Pred)
	} else {
		sb.WriteString("full: ")
	}
	for k, i := range p.Order {
		if k > 0 || pinned < len(cr.Pos) {
			sb.WriteString(" ⋈ ")
		}
		fmt.Fprintf(&sb, "%s(est %s)", cr.Pos[i].Pred, fmtEst(p.Est[k]))
	}
	sb.WriteString(" — rows")
	for i := range cr.Pos {
		fmt.Fprintf(&sb, " %s=%d", cr.Pos[i].Pred, p.Rows[i])
	}
	return sb.String()
}

// fmtEst renders an estimate compactly (integers below 10k, scientific
// notation above).
func fmtEst(v float64) string {
	if v < 10000 {
		return fmt.Sprintf("%.3g", v)
	}
	return fmt.Sprintf("%.2e", v)
}
