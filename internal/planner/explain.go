package planner

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/eval"
)

// RenderPlan renders the reasoning access plan of a compiled program
// (paper Sec. 4, step 2: the logic compiler's pipeline of filters and
// pipes): one line per source predicate, one per rule filter with its
// generating-rule kind and termination-wrapper role, and one per sink.
// Both engines render their plans through it, so -explain output has one
// format regardless of engine.
//
// annotate, when non-nil, is called once per rule and may return extra
// detail lines — the cost-based join orders with their driving estimates
// (Planner.Describe) — which are indented under the rule's line.
func RenderPlan(prog *ast.Program, preds map[string]int, rules []*eval.CompiledRule, annotate func(ri int, cr *eval.CompiledRule) []string) string {
	var sb strings.Builder
	sb.WriteString("reasoning access plan (filters and pipes)\n")

	// Source filters: EDB predicates (never produced by a rule).
	idb := prog.IDBPreds()
	var sources []string
	for pred := range preds {
		if !idb[pred] {
			sources = append(sources, pred)
		}
	}
	sort.Strings(sources)
	for _, pred := range sources {
		fmt.Fprintf(&sb, "  source  %s\n", pred)
	}

	for ri, cr := range rules {
		r := cr.Rule
		var reads []string
		for _, a := range cr.Pos {
			reads = append(reads, a.Pred)
		}
		role := "filter"
		switch {
		case r.IsConstraint:
			role = "constraint"
		case r.EGD != nil:
			role = "egd"
		case r.Aggregate != nil:
			role = "aggregate"
		}
		head := "⊥"
		if len(r.Heads) > 0 {
			head = r.Heads[0].Pred
		} else if r.EGD != nil {
			head = r.EGD.Left + "=" + r.EGD.Right
		}
		fmt.Fprintf(&sb, "  %-10s r%-3d [%s] %s -> %s\n",
			role, r.ID, cr.Info.Kind, strings.Join(reads, " ⋈ "), head)
		if annotate != nil {
			for _, line := range annotate(ri, cr) {
				fmt.Fprintf(&sb, "      %s\n", line)
			}
		}
	}

	var sinks []string
	for pred := range prog.Outputs {
		sinks = append(sinks, pred)
	}
	sort.Strings(sinks)
	for _, pred := range sinks {
		fmt.Fprintf(&sb, "  sink    %s\n", pred)
	}
	return sb.String()
}
