// Package doctors generates the Doctors / DoctorsFD data-integration
// scenarios of paper Sec. 6.5: a non-recursive schema-mapping task from
// the mapping literature (IQ-METER), with source relations about doctors,
// prescriptions and hospitals, s-t tgds with existentials, and — in the
// FD variant — equality-generating dependencies acting as functional
// dependencies on the target.
package doctors

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/term"
)

// Program is the Doctors mapping: source doctor/prescription/hospital
// relations mapped into target physician/worksAt/prescription/treatment
// relations with invented identifiers.
const Program = `
	doctor(Npi, Name, Spec, Hosp, Conf) -> physician(Npi, Name, Spec, W).
	doctor(Npi, Name, Spec, Hosp, Conf), hospital(Hosp, City) -> worksAt(Npi, Hosp, City).
	medprescription(Id, Npi, Drug, Date) -> targetprescription(Id, Npi, Drug, P).
	medprescription(Id, Npi, Drug, Date), doctor(Npi, Name, Spec, Hosp, Conf) -> treatment(Id, Name, Spec).
	physician(Npi, Name, Spec, W), worksAt(Npi, Hosp, City) -> doctorcity(Npi, City).
	targetprescription(Id, Npi, Drug, P), physician(Npi, Name, Spec, W) -> prescribedby(Id, Name).
`

// FDProgram extends Program with target functional dependencies as EGDs:
// a physician has one workplace record, a prescription one pharmacy.
const FDProgram = Program + `
	physician(Npi, N1, S1, W1), physician(Npi, N2, S2, W2) -> W1 = W2.
	targetprescription(Id, N1, D1, P1), targetprescription(Id, N2, D2, P2) -> P1 = P2.
`

// Queries are the measured query mix (9 queries, as in the paper's
// averaged response times).
func Queries() []string {
	qs := []string{
		`doctorcity(Npi, City) -> q0(Npi, City).`,
		`prescribedby(Id, Name) -> q1(Id, Name).`,
		`physician(Npi, Name, Spec, W) -> q2(Npi, Spec).`,
		`worksAt(Npi, Hosp, City) -> q3(Hosp, City).`,
		`treatment(Id, Name, Spec) -> q4(Id, Spec).`,
		`physician(Npi, Name, Spec, W), worksAt(Npi, Hosp, City), targetprescription(Id, Npi, Drug, P) -> q5(Name, Hosp, Drug).`,
		`targetprescription(Id, Npi, Drug, P), treatment(Id, Name, Spec) -> q6(Drug, Name).`,
		`physician(Npi, Name, onco, W) -> q7(Npi, Name).`,
		`worksAt(Npi, Hosp, City), physician(Npi, Name, Spec, W), treatment(Id, Name, Spec) -> q8(Id, City).`,
	}
	for i := range qs {
		qs[i] = qs[i] + fmt.Sprintf("\n@output(%q).\n", fmt.Sprintf("q%d", i))
	}
	return qs
}

// Generate produces a source instance with about n facts distributed over
// doctor, hospital and medprescription.
func Generate(n int, seed int64) []ast.Fact {
	rng := rand.New(rand.NewSource(seed))
	nDoctors := n / 2
	nHospitals := max(1, n/20)
	nPrescriptions := n - nDoctors - nHospitals
	specs := []string{"onco", "cardio", "neuro", "gastro", "derma"}
	var facts []ast.Fact
	for h := 0; h < nHospitals; h++ {
		facts = append(facts, ast.NewFact("hospital",
			term.String(fmt.Sprintf("h%d", h)),
			term.String(fmt.Sprintf("city%d", h%97))))
	}
	for d := 0; d < nDoctors; d++ {
		facts = append(facts, ast.NewFact("doctor",
			term.String(fmt.Sprintf("npi%d", d)),
			term.String(fmt.Sprintf("dr%d", d)),
			term.String(specs[rng.Intn(len(specs))]),
			term.String(fmt.Sprintf("h%d", rng.Intn(nHospitals))),
			term.Int(int64(rng.Intn(100)))))
	}
	for p := 0; p < nPrescriptions; p++ {
		facts = append(facts, ast.NewFact("medprescription",
			term.String(fmt.Sprintf("rx%d", p)),
			term.String(fmt.Sprintf("npi%d", rng.Intn(max(1, nDoctors)))),
			term.String(fmt.Sprintf("drug%d", rng.Intn(500))),
			term.Int(int64(20000+rng.Intn(3000)))))
	}
	return facts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
