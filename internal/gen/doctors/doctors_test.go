package doctors

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/parser"
	"repro/internal/pipeline"
)

func TestProgramsParseAndAreWarded(t *testing.T) {
	for name, src := range map[string]string{"doctors": Program, "doctorsFD": FDProgram} {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := analysis.Analyze(prog)
		if !res.Warded {
			t.Errorf("%s: not warded: %v", name, res.Violations)
		}
	}
	for i, q := range Queries() {
		if _, err := parser.Parse(Program + q); err != nil {
			t.Errorf("q%d: %v", i, err)
		}
	}
}

func TestGenerateRatios(t *testing.T) {
	facts := Generate(10_000, 1)
	if len(facts) < 9_000 || len(facts) > 11_000 {
		t.Fatalf("facts: %d", len(facts))
	}
	counts := map[string]int{}
	for _, f := range facts {
		counts[f.Pred]++
	}
	if counts["doctor"] == 0 || counts["hospital"] == 0 || counts["medprescription"] == 0 {
		t.Fatalf("relation mix: %v", counts)
	}
}

func TestMappingEndToEnd(t *testing.T) {
	facts := Generate(2000, 2)
	for qi, q := range Queries() {
		prog := parser.MustParse(Program + q)
		s, err := pipeline.New(prog, pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(context.Background(), facts); err != nil {
			t.Fatalf("q%d: %v", qi, err)
		}
		// Queries over populated targets should mostly return answers.
		if qi <= 5 && len(s.Output(fmt.Sprintf("q%d", qi))) == 0 {
			t.Errorf("q%d: empty result", qi)
		}
	}
}

func TestFDVariantUnifiesNulls(t *testing.T) {
	facts := Generate(1000, 3)
	prog := parser.MustParse(FDProgram + Queries()[2])
	s, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), facts); err != nil {
		t.Fatalf("FD variant must be consistent on generated data: %v", err)
	}
}
