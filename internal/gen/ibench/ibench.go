// Package ibench generates data-integration scenarios with the structural
// statistics the paper reports for the iBench-derived STB-128 and ONT-256
// workloads (Sec. 6.2): hundreds of non-trivially warded rules with a
// controlled share of existentials, warded null propagations and harmful
// joins, 1000 facts per source predicate, and a query mix joining target
// predicates. The original iBench tool is a closed Java pipeline; this
// generator reproduces the rule-set statistics the experiment depends on.
package ibench

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ast"
	"repro/internal/term"
)

// Config controls the generated scenario.
type Config struct {
	Name        string
	SourcePreds int // source relations (arity 3)
	TargetPreds int // target relations (arity 3)
	STTgds      int // source-to-target rules
	ExistST     int // how many st-tgds have existential heads
	GroundProps int // target-to-target propagations without nulls
	WardedProps int // warded rules propagating labelled nulls
	Harmful     int // harmful joins over propagated nulls
	Queries     int // number of output queries (≈5 joins each)

	FactsPerSource int
	ComponentSize  int
	Seed           int64
}

// STB128 returns the STB-128 preset: ≈250 warded rules over 112
// predicates, 25% with existentials, 15 harmful joins, 30 warded null
// propagations, 16 queries.
func STB128() Config {
	return Config{
		Name: "STB-128", SourcePreds: 56, TargetPreds: 56,
		STTgds: 140, ExistST: 62, GroundProps: 65, WardedProps: 30,
		Harmful: 15, Queries: 16, FactsPerSource: 1000, ComponentSize: 6, Seed: 128,
	}
}

// ONT256 returns the ONT-256 preset: 789 rules over 220 predicates, 35%
// with existentials, 295 harmful joins, 300+ warded null propagations, 11
// queries.
func ONT256() Config {
	return Config{
		Name: "ONT-256", SourcePreds: 110, TargetPreds: 110,
		STTgds: 194, ExistST: 276, GroundProps: 0, WardedProps: 300,
		Harmful: 295, Queries: 11, FactsPerSource: 1000, ComponentSize: 6, Seed: 256,
	}
}

// Generated holds the scenario: the mapping program, its queries (each a
// separate program fragment with an ans predicate) and the source data.
type Generated struct {
	Config  Config
	Source  string
	Queries []string
	Facts   []ast.Fact
}

// RuleCount returns the number of mapping rules generated.
func (g *Generated) RuleCount() int { return strings.Count(g.Source, "\n") }

// Generate builds the scenario.
func Generate(cfg Config) *Generated {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sb strings.Builder
	src := func(i int) string { return fmt.Sprintf("s%d", i%cfg.SourcePreds) }
	tgt := func(i int) string { return fmt.Sprintf("t%d", i%cfg.TargetPreds) }
	emit := func(format string, args ...any) {
		fmt.Fprintf(&sb, format, args...)
		sb.WriteByte('\n')
	}

	// Source-to-target tgds. ExistST may exceed STTgds (ONT-256 reports
	// 35% of 789 rules with existentials); the surplus becomes existential
	// propagation rules below, so track the budget globally.
	existLeft := cfg.ExistST
	for i := 0; i < cfg.STTgds; i++ {
		if existLeft > 0 {
			emit("%s(X,Y,Z) -> %s(X,Y,N).", src(i), tgt(i))
			existLeft--
		} else {
			emit("%s(X,Y,Z) -> %s(X,Y,Z).", src(i), tgt(i))
		}
	}

	// Warded null propagations: t_a(X,Y,N̂) joined with a ground source
	// link moves the null to another target predicate (the ward is t_a).
	// A share of them is recursive (the paper calls the rule sets
	// "highly recursive"). Propagation rules form short chain segments so
	// a null visits a handful of predicates — matching the ~20x
	// source-to-target growth of the paper's instances — rather than
	// circulating through the whole target schema.
	for i := 0; i < cfg.WardedProps; i++ {
		seg, off := i/2, i%2
		a := tgt(seg*5 + off)
		b := tgt(seg*5 + off + 1)
		if i%4 == 0 {
			b = a // recursive propagation
		}
		if existLeft > 0 {
			// Existential propagation: a fresh null is created as well.
			emit("%s(X,Y,N), %s(Y,Y2,Z) -> %s(X,Y2,N), tx%d(X, M).", a, src(i), b, i)
			existLeft--
		} else {
			emit("%s(X,Y,N), %s(Y,Y2,Z) -> %s(X,Y2,N).", a, src(i), b)
		}
	}
	for existLeft > 0 {
		// Surplus existential budget: linear target expansions.
		i := existLeft
		emit("%s(X,Y,N) -> te%d(X, M).", tgt(i), i)
		existLeft--
	}

	// Ground propagations (copies/joins without nulls). Joins match on
	// both the link column and the z column so fan-out stays bounded by
	// the component structure of the source data; copies keep the column
	// orientation so relations do not saturate their component's cross
	// product.
	for i := 0; i < cfg.GroundProps; i++ {
		if i%3 == 0 {
			emit("%s(X,Y,Z), %s(Y,W,Z) -> %s(X,W,Z).", tgt(i), src(i+2), tgt(i+3))
		} else {
			emit("%s(X,Y,Z) -> %s(X,Y,Z).", tgt(i), tgt(i+2))
		}
	}

	// Harmful joins: two target atoms sharing a propagated null, guarded
	// by a ground source link between the carriers so output stays
	// proportional to the source (the paper's queries join ~5 atoms too).
	for i := 0; i < cfg.Harmful; i++ {
		a := tgt(i)
		b := tgt(i + 1)
		emit("%s(X,Y,N), %s(X2,Y2,N), %s(X,X2,Z) -> hj%d(X,X2,Y).", a, b, src(i), i)
	}

	// Queries: ~5-way joins over target predicates carrying the third
	// column through every hop, so each join is component- or
	// null-consistent. The third column can hold labelled nulls, so these
	// joins are harmful in the Y-chained cases and plainly harmful in the
	// null-pair cases (the paper: harmful in 8 of 16 / 5 of 11 cases).
	var queries []string
	for q := 0; q < cfg.Queries; q++ {
		// Queries align with the propagation segments (base multiple of 5)
		// so the null-joined atoms actually share nulls; chain queries use
		// segments whose first hop is non-recursive (odd segments), where
		// nulls traverse three consecutive predicates.
		b := q * 5
		if q%2 == 0 {
			b = (q + 1) * 5
		}
		var qb strings.Builder
		if q%2 == 0 {
			fmt.Fprintf(&qb, "%s(X,Y,Z), %s(Y,W,Z), %s(W,U,Z), %s(U,R,Z2), %s(R,Q,Z3) -> ans%d(X,Q).\n",
				tgt(b), tgt(b+1), tgt(b+2), src(q), src(q+1), q)
		} else {
			// Null-pair query: two target atoms sharing the (possibly
			// null) third column, link-guarded on both carrier columns.
			fmt.Fprintf(&qb, "%s(X,Y,N), %s(X2,Y2,N), %s(X,X2,Z), %s(Y,Y2,Z2) -> ans%d(X,X2).\n",
				tgt(b), tgt(b+1), src(q), src(q+1), q)
		}
		fmt.Fprintf(&qb, "@output(\"ans%d\").\n", q)
		queries = append(queries, qb.String())
	}

	g := &Generated{Config: cfg, Source: sb.String(), Queries: queries}

	// Source instances: 1000 facts per source predicate, values drawn from
	// small components so joins stay selective; the z column identifies
	// the component, keeping the ground-propagation joins local.
	for i := 0; i < cfg.SourcePreds; i++ {
		pred := fmt.Sprintf("s%d", i)
		for k := 0; k < cfg.FactsPerSource; k++ {
			comp := k / cfg.ComponentSize
			u := comp*cfg.ComponentSize + rng.Intn(cfg.ComponentSize)
			v := comp*cfg.ComponentSize + rng.Intn(cfg.ComponentSize)
			g.Facts = append(g.Facts, ast.NewFact(pred,
				term.String(fmt.Sprintf("v%d", u)),
				term.String(fmt.Sprintf("v%d", v)),
				term.String(fmt.Sprintf("z%d", comp))))
		}
	}
	return g
}
