package ibench

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/parser"
	"repro/internal/pipeline"
)

// TestPresetStatistics checks the generated rule sets against the
// statistics the paper reports for STB-128 and ONT-256.
func TestPresetStatistics(t *testing.T) {
	for _, tc := range []struct {
		cfg      Config
		rules    int
		existMin int
		harmful  int
		predsMin int
		queries  int
	}{
		{STB128(), 250, 62, 15, 112, 16},
		{ONT256(), 789, 276, 295, 220, 11},
	} {
		cfg := tc.cfg
		cfg.FactsPerSource = 10
		g := Generate(cfg)
		if got := g.RuleCount(); got != tc.rules {
			t.Errorf("%s: %d rules, want %d", cfg.Name, got, tc.rules)
		}
		prog, err := parser.Parse(g.Source)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		st := analysis.ComputeStats(prog)
		if st.ExistentialRules < tc.existMin {
			t.Errorf("%s: %d existential rules, want ≥ %d", cfg.Name, st.ExistentialRules, tc.existMin)
		}
		if st.HarmfulJoins != tc.harmful {
			t.Errorf("%s: %d harmful joins, want %d", cfg.Name, st.HarmfulJoins, tc.harmful)
		}
		preds, _ := prog.Predicates()
		if len(preds) < tc.predsMin {
			t.Errorf("%s: %d predicates, want ≥ %d", cfg.Name, len(preds), tc.predsMin)
		}
		if len(g.Queries) != tc.queries {
			t.Errorf("%s: %d queries, want %d", cfg.Name, len(g.Queries), tc.queries)
		}
		res := analysis.Analyze(prog)
		if !res.Warded {
			t.Errorf("%s: not warded: %v", cfg.Name, res.Violations[:min(3, len(res.Violations))])
		}
	}
}

// TestScenariosRunWithAnswers materializes both scenarios at small scale
// and checks queries return answers.
func TestScenariosRunWithAnswers(t *testing.T) {
	for _, cfg := range []Config{STB128(), ONT256()} {
		cfg.FactsPerSource = 50
		g := Generate(cfg)
		withAnswers := 0
		for qi := 0; qi < 4; qi++ {
			prog, err := parser.Parse(g.Source + g.Queries[qi])
			if err != nil {
				t.Fatal(err)
			}
			s, err := pipeline.New(prog, pipeline.Options{MaxDerivations: 2_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(context.Background(), g.Facts); err != nil {
				t.Fatalf("%s q%d: %v", cfg.Name, qi, err)
			}
			if len(s.Output(fmt.Sprintf("ans%d", qi))) > 0 {
				withAnswers++
			}
		}
		if withAnswers < 2 {
			t.Errorf("%s: only %d/4 queries returned answers", cfg.Name, withAnswers)
		}
	}
}
