package graphs

import (
	"context"
	"testing"

	"repro/internal/parser"
	"repro/internal/pipeline"
)

func TestScaleFreeShape(t *testing.T) {
	g := ScaleFree(2000, PaperParams(), 7)
	if g.N != 2000 {
		t.Fatalf("nodes: %d", g.N)
	}
	if len(g.Edges) == 0 {
		t.Fatal("no edges")
	}
	// Preferential attachment must produce hubs: max in-degree far above
	// the mean.
	indeg := make(map[int]int)
	for _, e := range g.Edges {
		indeg[e.Dst]++
	}
	maxIn := 0
	for _, d := range indeg {
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(len(g.Edges)) / float64(g.N)
	if float64(maxIn) < 8*mean {
		t.Errorf("no hub structure: max in-degree %d vs mean %.2f", maxIn, mean)
	}
}

func TestScaleFreeDeterministic(t *testing.T) {
	a := ScaleFree(500, PaperParams(), 3)
	b := ScaleFree(500, PaperParams(), 3)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed must give the same graph")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("edge mismatch under same seed")
		}
	}
	c := ScaleFree(500, PaperParams(), 4)
	same := len(a.Edges) == len(c.Edges)
	if same {
		diff := false
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				diff = true
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestWeightsAreShares(t *testing.T) {
	g := ScaleFree(1000, PaperParams(), 5)
	byDst := make(map[int]float64)
	for _, e := range g.Edges {
		if e.W < 0 || e.W > 1 {
			t.Fatalf("weight out of range: %v", e.W)
		}
		byDst[e.Dst] += e.W
	}
	for dst, total := range byDst {
		if total > 1.0001 {
			t.Fatalf("company %d is over-owned: %v", dst, total)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 2)
	if len(g.Edges) != 300 {
		t.Fatalf("edges: %d", len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Fatal("self loop")
		}
	}
}

func TestRealLikeShallow(t *testing.T) {
	g := RealLike(5000, 11)
	if len(g.Edges) == 0 {
		t.Fatal("no edges")
	}
	ratio := float64(len(g.Edges)) / float64(g.N)
	if ratio < 0.5 || ratio > 1.2 {
		t.Errorf("edge/node ratio %.2f outside the 42K/50K regime", ratio)
	}
}

func TestControlProgramEndToEnd(t *testing.T) {
	g := ScaleFree(300, PaperParams(), 9)
	prog := parser.MustParse(ControlProgram)
	s, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), g.OwnFacts()); err != nil {
		t.Fatal(err)
	}
	direct := 0
	for _, e := range g.Edges {
		if e.W > 0.5 {
			direct++
		}
	}
	if got := len(s.Output("control")); got < direct {
		t.Errorf("control pairs %d < direct majorities %d", got, direct)
	}
}

func TestQueryControlProgramParses(t *testing.T) {
	if _, err := parser.Parse(QueryControlProgram(3)); err != nil {
		t.Fatal(err)
	}
}
