// Package graphs generates the ownership/control graphs of the paper's
// industrial validation (Sec. 6.4): directed scale-free networks following
// the Bollobás–Borgs–Chayes–Riordan model with the parameters the paper
// learned from the European graph of financial companies (α=0.71, β=0.09,
// γ=0.2), Erdős–Rényi graphs, and "real-like" graphs standing in for the
// proprietary European ownership data (shorter chains, many hub
// companies, as the paper describes).
package graphs

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ast"
	"repro/internal/term"
)

// Edge is one weighted ownership edge: Src owns W of Dst.
type Edge struct {
	Src, Dst int
	W        float64
}

// Graph is a directed multigraph over companies 0..N-1.
type Graph struct {
	N     int
	Edges []Edge
}

// ScaleFreeParams are the Bollobás model probabilities; they must sum to 1
// with β = 1 - α - γ.
type ScaleFreeParams struct {
	Alpha float64 // new node -> existing node by in-degree
	Beta  float64 // edge between existing nodes
	Gamma float64 // existing node by out-degree -> new node
}

// PaperParams returns the parameters learned in Sec. 6.4: α=0.71, β=0.09,
// γ=0.2.
func PaperParams() ScaleFreeParams { return ScaleFreeParams{Alpha: 0.71, Beta: 0.09, Gamma: 0.2} }

// ScaleFree grows a directed scale-free graph with n nodes using the
// preferential-attachment process of Bollobás et al. (SODA'03). The
// deterministic rng seed makes workloads reproducible.
func ScaleFree(n int, p ScaleFreeParams, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{}
	if n <= 0 {
		return g
	}
	// Degree-biased sampling with +1 smoothing (δ_in = δ_out = 1).
	var inDeg, outDeg []int
	addNode := func() int {
		inDeg = append(inDeg, 0)
		outDeg = append(outDeg, 0)
		g.N++
		return g.N - 1
	}
	pickByIn := func() int {
		total := len(g.Edges) + g.N
		t := rng.Intn(total)
		acc := 0
		for v := 0; v < g.N; v++ {
			acc += inDeg[v] + 1
			if t < acc {
				return v
			}
		}
		return g.N - 1
	}
	pickByOut := func() int {
		total := len(g.Edges) + g.N
		t := rng.Intn(total)
		acc := 0
		for v := 0; v < g.N; v++ {
			acc += outDeg[v] + 1
			if t < acc {
				return v
			}
		}
		return g.N - 1
	}
	addEdge := func(u, v int) {
		g.Edges = append(g.Edges, Edge{Src: u, Dst: v, W: 0})
		outDeg[u]++
		inDeg[v]++
	}
	addNode()
	for g.N < n {
		r := rng.Float64()
		switch {
		case r < p.Alpha:
			v := pickByIn()
			u := addNode()
			addEdge(u, v)
		case r < p.Alpha+p.Beta:
			if g.N >= 2 {
				addEdge(pickByOut(), pickByIn())
			}
		default:
			u := pickByOut()
			v := addNode()
			addEdge(u, v)
		}
	}
	assignWeights(g, rng)
	return g
}

// ErdosRenyi generates a directed G(n, m) graph with m uniformly random
// edges (no self-loops).
func ErdosRenyi(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n}
	for len(g.Edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		g.Edges = append(g.Edges, Edge{Src: u, Dst: v})
	}
	assignWeights(g, rng)
	return g
}

// RealLike builds a graph resembling the European financial ownership
// data: a forest of shallow control chains around hub companies, plus
// cross-ownership noise — "shorter chains and many hub companies"
// (Sec. 6.4). Roughly 0.85 edges per node, as in the paper's 50K
// companies / 42K edges subset.
func RealLike(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n}
	if n < 2 {
		return g
	}
	hubs := n / 20
	if hubs < 1 {
		hubs = 1
	}
	edges := int(float64(n) * 0.85)
	for i := 0; i < edges; i++ {
		src := rng.Intn(hubs) // hubs own
		dst := hubs + rng.Intn(n-hubs)
		if rng.Float64() < 0.25 {
			// Short chain: a subsidiary owns further down.
			src = hubs + rng.Intn(n-hubs)
			dst = hubs + rng.Intn(n-hubs)
			if src == dst {
				dst = (dst + 1) % n
			}
		}
		g.Edges = append(g.Edges, Edge{Src: src, Dst: dst})
	}
	assignWeights(g, rng)
	return g
}

// assignWeights distributes ownership weights per target so that roughly
// half the companies have a majority owner and joint control arises.
// Destinations are processed in sorted order for determinism.
func assignWeights(g *Graph, rng *rand.Rand) {
	byDst := make(map[int][]int)
	for i, e := range g.Edges {
		byDst[e.Dst] = append(byDst[e.Dst], i)
	}
	dsts := make([]int, 0, len(byDst))
	for d := range byDst {
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	for _, d := range dsts {
		idxs := byDst[d]
		if len(idxs) == 1 {
			// Single owner: majority with probability 0.6.
			if rng.Float64() < 0.6 {
				g.Edges[idxs[0]].W = 0.5 + rng.Float64()*0.5
			} else {
				g.Edges[idxs[0]].W = rng.Float64() * 0.5
			}
			continue
		}
		// Multiple owners: draw shares from a stick-breaking split.
		remaining := 1.0
		for k, i := range idxs {
			if k == len(idxs)-1 {
				g.Edges[i].W = remaining * rng.Float64()
				break
			}
			share := remaining * rng.Float64()
			g.Edges[i].W = share
			remaining -= share
		}
	}
}

// CompanyName renders node i as a company constant.
func CompanyName(i int) term.Value { return term.String(fmt.Sprintf("c%d", i)) }

// OwnFacts converts the graph to own(src, dst, w) facts.
func (g *Graph) OwnFacts() []ast.Fact {
	out := make([]ast.Fact, 0, len(g.Edges))
	for _, e := range g.Edges {
		out = append(out, ast.NewFact("own", CompanyName(e.Src), CompanyName(e.Dst), term.Float(e.W)))
	}
	return out
}

// CompanyFacts lists company(ci) facts.
func (g *Graph) CompanyFacts() []ast.Fact {
	out := make([]ast.Fact, 0, g.N)
	for i := 0; i < g.N; i++ {
		out = append(out, ast.NewFact("company", CompanyName(i)))
	}
	return out
}

// ControlProgram is the company-control reasoning task of Example 2: a
// company controls another when it directly or jointly (via controlled
// companies, monotonic sum) owns more than half of it.
const ControlProgram = `
	own(X,Y,W), W > 0.5 -> control(X,Y).
	control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).
	@output("control").
`

// QueryControlProgram restricts the control relationship to a source
// company (query-style reasoning, scenario QueryReal/QueryRand).
func QueryControlProgram(src int) string {
	return fmt.Sprintf(`
		own(%[1]s,Y,W), W > 0.5 -> control(%[1]s,Y).
		control(%[1]s,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(%[1]s,Z).
		@output("control").
	`, CompanyName(src))
}
