package iwarded

import (
	"context"
	"testing"

	"repro/internal/analysis"
	"repro/internal/parser"
	"repro/internal/pipeline"
)

// TestFigure6ScenarioTable verifies that the generated scenarios reproduce
// the rule statistics of Figure 6 exactly.
func TestFigure6ScenarioTable(t *testing.T) {
	for _, cfg := range Scenarios() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			cfg.FactsPerRel = 20
			g, err := Generate(cfg)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			prog, err := parser.Parse(g.Source)
			if err != nil {
				t.Fatalf("parse: %v\nsource:\n%s", err, g.Source)
			}
			res := analysis.Analyze(prog)
			if !res.Warded {
				t.Fatalf("scenario %s is not warded: %v", cfg.Name, res.Violations)
			}
			st := analysis.ComputeStats(prog)
			checks := []struct {
				name      string
				got, want int
			}{
				{"L rules", st.LinearRules, cfg.Linear},
				{"1 rules", st.JoinRules, cfg.Join},
				{"L recursive", st.RecursiveLinear, cfg.LinearRec},
				{"1 recursive", st.RecursiveJoin, cfg.JoinRec},
				{"exist rules", st.ExistentialRules, cfg.Exist},
				{"hrml⋈hrmf", st.MixedJoins, cfg.JoinMixed},
				{"hrml⋈hrml ward", st.HarmlessWithWard, cfg.JoinWard},
				{"hrml⋈hrml no ward", st.HarmlessNoWard, cfg.JoinNoWard},
				{"hrmf⋈hrmf", st.HarmfulJoins, cfg.JoinHarmful},
			}
			for _, c := range checks {
				if c.got != c.want {
					t.Errorf("%s: got %d want %d", c.name, c.got, c.want)
				}
			}
		})
	}
}

// TestScenariosTerminate runs every Figure 6 scenario end to end at small
// scale and checks the chase terminates with bounded derivations.
func TestScenariosTerminate(t *testing.T) {
	for _, cfg := range Scenarios() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			cfg.FactsPerRel = 30
			cfg.ComponentSize = 4
			g, err := Generate(cfg)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			prog, err := parser.Parse(g.Source)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			s, err := pipeline.New(prog, pipeline.Options{MaxDerivations: 2_000_000})
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			if err := s.Run(context.Background(), g.Facts); err != nil {
				t.Fatalf("run: %v", err)
			}
			if s.Derivations() == 0 {
				t.Fatal("no derivations at all")
			}
		})
	}
}

func TestBlocksScaling(t *testing.T) {
	cfg, _ := Scenario("synthB")
	cfg.FactsPerRel = 10
	cfg.Blocks = 3
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	prog, err := parser.Parse(g.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got, want := len(prog.Rules), 3*100; got != want {
		t.Fatalf("blocks: got %d rules, want %d", got, want)
	}
}

func TestAtomAndArityScaling(t *testing.T) {
	cfg, _ := Scenario("synthB")
	cfg.FactsPerRel = 10
	cfg.ExtraBodyAtoms = 2
	cfg.Arity = 4
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	prog, err := parser.Parse(g.Source)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, g.Source)
	}
	res := analysis.Analyze(prog)
	if !res.Warded {
		t.Fatalf("padded scenario is not warded: %v", res.Violations[:min(3, len(res.Violations))])
	}
	s, err := pipeline.New(prog, pipeline.Options{MaxDerivations: 2_000_000})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := s.Run(context.Background(), g.Facts); err != nil {
		t.Fatalf("run: %v", err)
	}
}
