// Package iwarded reimplements the iWarded generator of paper Sec. 6.1: a
// parameterized generator of warded Datalog± scenarios controlling the
// number of linear and join rules, recursion, existential quantification
// and the four join categories of Figure 6 (hrml⋈hrmf, hrml⋈hrml with and
// without ward, hrmf⋈hrmf), plus the scaling knobs of Figure 8 (database
// size, rule blocks, body atoms, arity).
package iwarded

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ast"
	"repro/internal/term"
)

// Config drives one scenario generation.
type Config struct {
	Name string

	Linear    int // linear rules ("L rules")
	Join      int // non-linear rules ("1 rules")
	LinearRec int // recursive linear rules
	JoinRec   int // recursive join rules
	Exist     int // rules with existential quantification

	JoinMixed   int // hrml⋈hrmf joins
	JoinWard    int // hrml⋈hrml joins with ward
	JoinNoWard  int // hrml⋈hrml joins without ward
	JoinHarmful int // hrmf⋈hrmf joins

	// EDBRelations is the number of extensional binary relations (≥2).
	EDBRelations int
	// FactsPerRel is the number of facts generated per EDB relation.
	FactsPerRel int
	// ComponentSize bounds the EDB graph components to keep null
	// propagation local (shallow forests, as in corporate data).
	ComponentSize int
	// ExtraBodyAtoms appends chained EDB atoms to every join rule
	// (Fig. 8c: scaling the number of atoms).
	ExtraBodyAtoms int
	// Arity is the arity of every predicate (default 2; Fig. 8d pads
	// positions with pass-through columns).
	Arity int
	// Blocks replicates the whole scenario into independent copies with
	// renamed predicates (Fig. 8b: scaling the number of rules).
	Blocks int

	Seed int64
}

func (c *Config) defaults() {
	if c.EDBRelations < 2 {
		c.EDBRelations = 4
	}
	if c.FactsPerRel <= 0 {
		c.FactsPerRel = 1000
	}
	if c.ComponentSize <= 0 {
		c.ComponentSize = 5
	}
	if c.Arity < 2 {
		c.Arity = 2
	}
	if c.Blocks < 1 {
		c.Blocks = 1
	}
}

// Scenarios returns the eight synthetic scenarios of Figure 6 with the
// paper's exact rule counts.
func Scenarios() []Config {
	mk := func(name string, lin, join, linRec, joinRec, exist, mixed, ward, noWard, harmful int) Config {
		return Config{Name: name, Linear: lin, Join: join, LinearRec: linRec, JoinRec: joinRec,
			Exist: exist, JoinMixed: mixed, JoinWard: ward, JoinNoWard: noWard, JoinHarmful: harmful, Seed: 11}
	}
	return []Config{
		mk("synthA", 90, 10, 27, 3, 20, 5, 4, 1, 0),
		mk("synthB", 10, 90, 3, 27, 20, 45, 40, 5, 0),
		mk("synthC", 30, 70, 9, 20, 40, 25, 20, 5, 20),
		mk("synthD", 30, 70, 9, 20, 22, 10, 9, 1, 50),
		mk("synthE", 30, 70, 15, 40, 20, 35, 29, 1, 5),
		mk("synthF", 30, 70, 25, 20, 50, 35, 29, 1, 5),
		mk("synthG", 30, 70, 9, 21, 30, 0, 10, 60, 0),
		mk("synthH", 30, 70, 9, 21, 30, 0, 60, 10, 0),
	}
}

// Scenario looks a preset up by name (synthA..synthH).
func Scenario(name string) (Config, bool) {
	for _, c := range Scenarios() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// Generated is the output of Generate: the program source and EDB.
type Generated struct {
	Config Config
	Source string
	Facts  []ast.Fact
}

// Generate builds the scenario program and data. The construction keeps
// the program warded: nulls are injected by a linear existential rule into
// a chain of "warded" predicates w_i(company, person-null, pads...),
// propagated by ward joins along the EDB graph, and consumed by mixed and
// harmful joins exactly as the join-category budget demands.
func Generate(cfg Config) (*Generated, error) {
	cfg.defaults()
	if cfg.Join != cfg.JoinMixed+cfg.JoinWard+cfg.JoinNoWard+cfg.JoinHarmful {
		return nil, fmt.Errorf("iwarded: join categories (%d) must sum to join rules (%d)",
			cfg.JoinMixed+cfg.JoinWard+cfg.JoinNoWard+cfg.JoinHarmful, cfg.Join)
	}
	if cfg.JoinRec > cfg.Join {
		return nil, fmt.Errorf("iwarded: recursive join rules (%d) exceed join rules (%d)", cfg.JoinRec, cfg.Join)
	}
	if cfg.LinearRec > cfg.Linear {
		return nil, fmt.Errorf("iwarded: recursive linear rules (%d) exceed linear rules (%d)", cfg.LinearRec, cfg.Linear)
	}
	var sb strings.Builder
	for b := 0; b < cfg.Blocks; b++ {
		suffix := ""
		if cfg.Blocks > 1 {
			suffix = fmt.Sprintf("_b%d", b)
		}
		if err := genBlock(&sb, cfg, suffix); err != nil {
			return nil, err
		}
	}
	g := &Generated{Config: cfg, Source: sb.String()}
	g.Facts = genFacts(cfg)
	return g, nil
}

// plan is the deterministic budget allocation for one block.
type plan struct {
	needChain  bool
	needFeeder bool

	// Recursive joins per category (ward first, then mixed, harmful,
	// noward). Non-ward recursive joins each need one linear seed rule.
	recWard, recMixed, recHarmful, recNoWard int

	// Existential rules per site.
	existInjector int // the chain injector (1 when a chain exists)
	existFill     int // plain linear copies turned into ∃ injectors
	existCycle    int // recursive-cycle linear rules with ∃ heads
	existJoin     int // join rules with an extra existential head column

	anchor int // 1 when a recursive linear cycle exists
	fill   int // plain linear copies
}

func makePlan(cfg Config) (plan, error) {
	var p plan
	p.needChain = cfg.JoinWard+cfg.JoinHarmful+cfg.JoinMixed > 0
	p.needFeeder = cfg.JoinMixed > 0

	// Distribute recursive joins: ward self-joins host recursion for free;
	// the rest need one linear seed each.
	rec := cfg.JoinRec
	take := func(avail int) int {
		n := min(rec, avail)
		rec -= n
		return n
	}
	p.recWard = take(cfg.JoinWard)
	p.recMixed = take(cfg.JoinMixed)
	p.recHarmful = take(cfg.JoinHarmful)
	p.recNoWard = take(cfg.JoinNoWard)
	if rec > 0 {
		return p, fmt.Errorf("iwarded(%s): cannot host %d recursive joins", cfg.Name, rec)
	}
	seeds := p.recMixed + p.recHarmful + p.recNoWard

	mandatory := seeds
	if p.needChain {
		mandatory++ // injector
	}
	if p.needFeeder {
		mandatory++
	}
	if cfg.LinearRec > 0 {
		p.anchor = 1
	}
	p.fill = cfg.Linear - mandatory - p.anchor - cfg.LinearRec
	if p.fill < 0 {
		return p, fmt.Errorf("iwarded(%s): linear budget %d too small (need %d plumbing + %d recursion)",
			cfg.Name, cfg.Linear, mandatory, p.anchor+cfg.LinearRec)
	}

	exist := cfg.Exist
	if p.needChain {
		if exist == 0 {
			return p, fmt.Errorf("iwarded(%s): warded joins need at least one existential rule", cfg.Name)
		}
		p.existInjector = 1
		exist--
	}
	p.existFill = min(exist, p.fill)
	exist -= p.existFill
	p.existCycle = min(exist, cfg.LinearRec)
	exist -= p.existCycle
	p.existJoin = min(exist, cfg.Join)
	exist -= p.existJoin
	if exist > 0 {
		return p, fmt.Errorf("iwarded(%s): existential budget exceeds hosting capacity by %d", cfg.Name, exist)
	}
	return p, nil
}

// genBlock emits one copy of the scenario into sb.
func genBlock(sb *strings.Builder, cfg Config, sfx string) error {
	p, err := makePlan(cfg)
	if err != nil {
		return err
	}
	ar := cfg.Arity
	edb := func(i int) string { return fmt.Sprintf("e%d%s", i%cfg.EDBRelations, sfx) }
	w := func(i int) string { return fmt.Sprintf("w%d%s", i, sfx) }
	emit := func(format string, args ...any) {
		fmt.Fprintf(sb, format, args...)
		sb.WriteByte('\n')
	}
	// pads(prefix) renders pass-through columns for positions ≥ 2.
	pads := func(prefix string) string {
		var ps []string
		for i := 2; i < ar; i++ {
			ps = append(ps, fmt.Sprintf("%s%d", prefix, i))
		}
		if len(ps) == 0 {
			return ""
		}
		return "," + strings.Join(ps, ",")
	}
	// extraAtoms chains additional EDB atoms onto a join body (Fig. 8c).
	extraAtoms := func(startVar string) string {
		var parts []string
		cur := startVar
		for i := 0; i < cfg.ExtraBodyAtoms; i++ {
			next := fmt.Sprintf("X%d", i+10)
			parts = append(parts, fmt.Sprintf("%s(%s,%s%s)", edb(i), cur, next, pads("M"+fmt.Sprint(i))))
			cur = next
		}
		if len(parts) == 0 {
			return ""
		}
		return ", " + strings.Join(parts, ", ")
	}

	if p.needChain {
		emit("%s(X,Y%s) -> %s(X,P%s).", edb(0), pads("A"), w(0), pads("A"))
	}
	if p.needFeeder {
		emit("%s(X,Y%s) -> %s(X,Y%s).", edb(1), pads("A"), w(0), pads("A"))
	}

	// Ward joins: recursive self-joins stay at their chain position,
	// plain ones advance the chain, ∃-variants emit side predicates with
	// an extra existential column.
	existJoinLeft := p.existJoin
	cur := 0
	recLeft := p.recWard
	for j := 0; j < cfg.JoinWard; j++ {
		dir := "X,Y"
		if j%2 == 1 {
			dir = "Y,X"
		}
		switch {
		case recLeft > 0:
			emit("%s(X,P%s), %s(%s%s)%s -> %s(Y,P%s).",
				w(cur), pads("A"), edb(j), dir, pads("B"), extraAtoms("Y"), w(cur), pads("A"))
			recLeft--
		case existJoinLeft > 0:
			emit("%s(X,P%s), %s(%s%s)%s -> wz%d%s(Y,P,Q%s).",
				w(cur), pads("A"), edb(j), dir, pads("B"), extraAtoms("Y"), j, sfx, pads("A"))
			existJoinLeft--
		default:
			emit("%s(X,P%s), %s(%s%s)%s -> %s(Y,P%s).",
				w(cur), pads("A"), edb(j), dir, pads("B"), extraAtoms("Y"), w(cur+1), pads("A"))
			cur++
		}
	}
	chain := cur + 1 // w0..w(cur) hold facts

	// Harmful joins: adjacent chain predicates share nulls.
	recLeft = p.recHarmful
	for j := 0; j < cfg.JoinHarmful; j++ {
		a := j % chain
		b := (a + 1) % chain
		switch {
		case recLeft > 0:
			emit("%s(X,Y%s) -> ghr%d%s(X,Y%s).", edb(j+1), pads("A"), j, sfx, pads("A")) // seed
			emit("%s(X,P%s), %s(Y,P%s), ghr%d%s(Y,Z%s)%s -> ghr%d%s(X,Z%s).",
				w(a), pads("A"), w(b), pads("B"), j, sfx, pads("C"), extraAtoms("Z"), j, sfx, pads("A"))
			recLeft--
		case existJoinLeft > 0:
			emit("%s(X,P%s), %s(Y,P%s), X > Y%s -> ghz%d%s(X,Y,Q%s).",
				w(a), pads("A"), w(b), pads("B"), extraAtoms("Y"), j, sfx, pads("A"))
			existJoinLeft--
		default:
			emit("%s(X,P%s), %s(Y,P%s), X > Y%s -> gh%d%s(X,Y%s).",
				w(a), pads("A"), w(b), pads("B"), extraAtoms("Y"), j, sfx, pads("A"))
		}
	}

	// Mixed joins: the null position joined against a ground EDB column —
	// fires only for the ground values the feeder pushed through.
	recLeft = p.recMixed
	for j := 0; j < cfg.JoinMixed; j++ {
		a := j % chain
		switch {
		case recLeft > 0:
			emit("%s(X,Y%s) -> gmr%d%s(X,Y%s).", edb(j+1), pads("A"), j, sfx, pads("A")) // seed
			emit("%s(X,P%s), gmr%d%s(P,Z%s)%s -> gmr%d%s(X,Z%s).",
				w(a), pads("A"), j, sfx, pads("B"), extraAtoms("Z"), j, sfx, pads("A"))
			recLeft--
		case existJoinLeft > 0:
			emit("%s(X,P%s), %s(P,Z%s)%s -> gmz%d%s(X,Z,Q%s).",
				w(a), pads("A"), edb(j+1), pads("B"), extraAtoms("Z"), j, sfx, pads("A"))
			existJoinLeft--
		default:
			emit("%s(X,P%s), %s(P,Z%s)%s -> gm%d%s(X,Z%s).",
				w(a), pads("A"), edb(j+1), pads("B"), extraAtoms("Z"), j, sfx, pads("A"))
		}
	}

	// Harmless joins without ward: ground joins over the EDB.
	recLeft = p.recNoWard
	for j := 0; j < cfg.JoinNoWard; j++ {
		switch {
		case recLeft > 0:
			emit("%s(X,Y%s) -> gnr%d%s(X,Y%s).", edb(j+1), pads("A"), j, sfx, pads("A")) // seed
			emit("gnr%d%s(X,Y%s), %s(Y,Z%s)%s -> gnr%d%s(X,Z%s).",
				j, sfx, pads("A"), edb(j), pads("B"), extraAtoms("Z"), j, sfx, pads("A"))
			recLeft--
		case existJoinLeft > 0:
			emit("%s(X,Y%s), %s(Y,Z%s)%s -> wn%d%s(X,Q%s).",
				edb(j), pads("A"), edb(j+1), pads("B"), extraAtoms("Z"), j, sfx, pads("A"))
			existJoinLeft--
		default:
			emit("%s(X,Y%s), %s(Y,Z%s)%s -> gn%d%s(X,Z%s).",
				edb(j), pads("A"), edb(j+1), pads("B"), extraAtoms("Z"), j, sfx, pads("A"))
		}
	}

	// Recursive linear cycle: anchor copy feeding a cycle of LinearRec
	// rules closed back on the anchor predicate; ∃-cycle rules generate
	// fresh nulls (the SynthF stressor, cut by the termination strategy).
	if cfg.LinearRec > 0 {
		emit("%s(X,Y%s) -> cyc0%s(X,Y%s).", edb(0), pads("A"), sfx, pads("A")) // anchor
		existCycleLeft := p.existCycle
		for j := 0; j < cfg.LinearRec; j++ {
			from := fmt.Sprintf("cyc%d%s", j, sfx)
			to := fmt.Sprintf("cyc%d%s", (j+1)%cfg.LinearRec, sfx)
			if existCycleLeft > 0 {
				emit("%s(X,Y%s) -> %s(X,Q%s).", from, pads("A"), to, pads("A"))
				existCycleLeft--
			} else {
				emit("%s(X,Y%s) -> %s(Y,X%s).", from, pads("A"), to, pads("A"))
			}
		}
	}

	// Fill: plain copies, ∃ injector copies first.
	existFillLeft := p.existFill
	for c := 0; c < p.fill; c++ {
		if existFillLeft > 0 {
			emit("%s(X,Y%s) -> wc%d%s(X,P%s).", edb(c), pads("A"), c, sfx, pads("A"))
			existFillLeft--
		} else {
			emit("%s(X,Y%s) -> gc%d%s(Y,X%s).", edb(c), pads("A"), c, sfx, pads("A"))
		}
	}
	return nil
}

// genFacts builds the EDB: each relation is a union of small random
// components (bounded reachability keeps null propagation local), with
// pad columns repeating the source node.
func genFacts(cfg Config) []ast.Fact {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var facts []ast.Fact
	// All relations of a block share one node space so cross-relation
	// joins (mixed, noward, extra atoms) actually match; components keep
	// reachability local.
	node := func(i int) term.Value { return term.String(fmt.Sprintf("n%d", i)) }
	for b := 0; b < cfg.Blocks; b++ {
		sfx := ""
		if cfg.Blocks > 1 {
			sfx = fmt.Sprintf("_b%d", b)
		}
		for r := 0; r < cfg.EDBRelations; r++ {
			pred := fmt.Sprintf("e%d%s", r, sfx)
			for k := 0; k < cfg.FactsPerRel; k++ {
				comp := k / cfg.ComponentSize
				u := comp*cfg.ComponentSize + rng.Intn(cfg.ComponentSize)
				v := comp*cfg.ComponentSize + rng.Intn(cfg.ComponentSize)
				args := []term.Value{node(u), node(v)}
				for len(args) < cfg.Arity {
					args = append(args, node(u))
				}
				facts = append(facts, ast.Fact{Pred: pred, Args: args})
			}
		}
	}
	return facts
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
