package lubm

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/parser"
	"repro/internal/pipeline"
)

func TestOntologyParsesAndIsWarded(t *testing.T) {
	prog, err := parser.Parse(Ontology)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(prog)
	if !res.Warded {
		t.Fatalf("ontology not warded: %v", res.Violations)
	}
	st := analysis.ComputeStats(prog)
	if st.ExistentialRules < 2 {
		t.Errorf("ontology needs existential axioms, got %d", st.ExistentialRules)
	}
}

func TestQueriesParse(t *testing.T) {
	qs := Queries()
	if len(qs) != 14 {
		t.Fatalf("queries: %d, want 14", len(qs))
	}
	for i, q := range qs {
		if _, err := parser.Parse(Ontology + q); err != nil {
			t.Errorf("q%d: %v", i+1, err)
		}
	}
}

func TestGenerateScale(t *testing.T) {
	facts := Generate(Config{Universities: 2, Seed: 1})
	perUni := len(facts) / 2
	if perUni < 3500 || perUni > 8000 {
		t.Errorf("facts per university: %d (constant says %d)", perUni, FactsPerUniversity)
	}
}

func TestQueriesReturnAnswers(t *testing.T) {
	facts := Generate(Config{Universities: 1, Seed: 2})
	nonEmpty := 0
	for qi, q := range Queries() {
		prog := parser.MustParse(Ontology + q)
		s, err := pipeline.New(prog, pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(context.Background(), facts); err != nil {
			t.Fatalf("q%d: %v", qi+1, err)
		}
		if len(s.Output(fmt.Sprintf("q%d", qi+1))) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 10 {
		t.Errorf("only %d/14 queries returned answers", nonEmpty)
	}
}
