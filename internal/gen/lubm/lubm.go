// Package lubm generates a LUBM-style university-domain benchmark (paper
// Sec. 6.5): a parametric instance generator with the documented LUBM
// ratios (departments per university, professors, students, courses,
// publications), an OWL-2-QL-style ontology rendered as warded Datalog±
// rules (class/property hierarchy, inverse and transitive properties,
// existential axioms), and the 14 LUBM queries over this vocabulary.
package lubm

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/term"
)

// Ontology is the rule set: subclass and subproperty axioms, domain/range
// typing, transitive subOrganizationOf, and the existential axioms that
// make the task properly ontological (every professor has a degree-
// granting university; every student has an advisor).
const Ontology = `
	fullProfessor(X) -> professor(X).
	associateProfessor(X) -> professor(X).
	assistantProfessor(X) -> professor(X).
	lecturer(X) -> faculty(X).
	professor(X) -> faculty(X).
	faculty(X) -> person(X).
	undergraduateStudent(X) -> student(X).
	graduateStudent(X) -> student(X).
	student(X) -> person(X).
	university(X) -> organization(X).
	department(X) -> organization(X).
	researchGroup(X) -> organization(X).
	graduateCourse(X) -> course(X).

	headOf(X,Y) -> worksFor(X,Y).
	worksFor(X,Y) -> memberOf(X,Y).
	memberOf(X,Y) -> affiliatedWith(Y,X).
	subOrganizationOf(X,Y), subOrganizationOf(Y,Z) -> subOrganizationOf(X,Z).
	memberOf(X,D), subOrganizationOf(D,U) -> memberOfOrg(X,U).

	teacherOf(X,C) -> taughtBy(C,X).
	takesCourse(S,C), taughtBy(C,P) -> hasStudent(P,S).
	advisorOf(P,S) -> hasAdvisor(S,P).

	professor(X) -> degreeFrom(X, U).
	degreeFrom(X,U) -> hasAlumnus(U,X).
	graduateStudent(X) -> hasAdvisor(X, A).
	publicationAuthor(Pub,A) -> authorOf(A,Pub).
`

// Queries returns the 14 LUBM queries restated over this vocabulary.
func Queries() []string {
	qs := []string{
		// Q1: graduate students taking a specific course.
		`takesCourse(X, c0_d0_u0) , graduateStudent(X) -> q1(X).`,
		// Q2: graduate students with degree from the university of their department.
		`graduateStudent(X), memberOf(X,D), subOrganizationOf(D,U), degreeFrom(X,U) -> q2(X,U).`,
		// Q3: publications of a specific professor.
		`authorOf(p0_d0_u0, Pub) -> q3(Pub).`,
		// Q4: professors working for a department with name/email (projected).
		`professor(X), worksFor(X, d0_u0) -> q4(X).`,
		// Q5: members of a department.
		`memberOf(X, d0_u0) -> q5(X).`,
		// Q6: all students.
		`student(X) -> q6(X).`,
		// Q7: students taking courses taught by a professor.
		`takesCourse(X,C), teacherOf(p0_d0_u0, C) -> q7(X,C).`,
		// Q8: students member of departments of a university.
		`student(X), memberOf(X,D), subOrganizationOf(D, u0) -> q8(X,D).`,
		// Q9: students whose advisor teaches a course they take.
		`hasAdvisor(X,P), teacherOf(P,C), takesCourse(X,C) -> q9(X,C).`,
		// Q10: students taking a graduate course.
		`takesCourse(X,C), graduateCourse(C) -> q10(X).`,
		// Q11: research groups of a university (transitive subOrganizationOf).
		`researchGroup(X), subOrganizationOf(X, u0) -> q11(X).`,
		// Q12: heads of departments of a university.
		`headOf(X,D), department(D), subOrganizationOf(D, u0) -> q12(X,D).`,
		// Q13: alumni of a university.
		`hasAlumnus(u0, X) -> q13(X).`,
		// Q14: all undergraduate students.
		`undergraduateStudent(X) -> q14(X).`,
	}
	for i := range qs {
		qs[i] = qs[i] + fmt.Sprintf("\n@output(%q).\n", fmt.Sprintf("q%d", i+1))
	}
	return qs
}

// Config scales the instance.
type Config struct {
	Universities int
	Seed         int64
}

// Generate produces the instance: LUBM's documented ratios are 15-25
// departments per university, 7-10 full + 10-14 associate + 8-11
// assistant professors per department, undergrads ~4x grads, 10-20
// courses per department, and 8-14 undergrad courses per student.
// The generator uses fixed midpoints for reproducibility.
func Generate(cfg Config) []ast.Fact {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var facts []ast.Fact
	add := func(pred string, args ...term.Value) {
		facts = append(facts, ast.NewFact(pred, args...))
	}
	for u := 0; u < cfg.Universities; u++ {
		uni := term.String(fmt.Sprintf("u%d", u))
		add("university", uni)
		nDept := 15 + rng.Intn(5)
		for d := 0; d < nDept; d++ {
			dept := term.String(fmt.Sprintf("d%d_u%d", d, u))
			add("department", dept)
			add("subOrganizationOf", dept, uni)
			rg := term.String(fmt.Sprintf("rg%d_u%d", d, u))
			add("researchGroup", rg)
			add("subOrganizationOf", rg, dept)

			// Faculty.
			nProf := 0
			prof := func(kind string, n int) []term.Value {
				out := make([]term.Value, 0, n)
				for i := 0; i < n; i++ {
					p := term.String(fmt.Sprintf("p%d_%s", nProf, dept.Str()))
					nProf++
					add(kind, p)
					add("worksFor", p, dept)
					out = append(out, p)
				}
				return out
			}
			fulls := prof("fullProfessor", 8)
			prof("associateProfessor", 10)
			assts := prof("assistantProfessor", 8)
			add("headOf", fulls[0], dept)

			// Courses taught by faculty.
			nCourses := 12 + rng.Intn(4)
			var courses, gradCourses []term.Value
			for c := 0; c < nCourses; c++ {
				co := term.String(fmt.Sprintf("c%d_%s", c, dept.Str()))
				if c%3 == 0 {
					add("graduateCourse", co)
					gradCourses = append(gradCourses, co)
				} else {
					add("course", co)
					courses = append(courses, co)
				}
				teacher := fulls[c%len(fulls)]
				if c%2 == 1 {
					teacher = assts[c%len(assts)]
				}
				add("teacherOf", teacher, co)
			}

			// Students.
			nGrad := 12 + rng.Intn(4)
			nUndergrad := nGrad * 4
			for s := 0; s < nGrad; s++ {
				st := term.String(fmt.Sprintf("gs%d_%s", s, dept.Str()))
				add("graduateStudent", st)
				add("memberOf", st, dept)
				add("advisorOf", fulls[s%len(fulls)], st)
				add("degreeFrom", st, uni)
				for k := 0; k < 2 && len(gradCourses) > 0; k++ {
					add("takesCourse", st, gradCourses[(s+k)%len(gradCourses)])
				}
			}
			for s := 0; s < nUndergrad; s++ {
				st := term.String(fmt.Sprintf("us%d_%s", s, dept.Str()))
				add("undergraduateStudent", st)
				add("memberOf", st, dept)
				for k := 0; k < 3 && len(courses) > 0; k++ {
					add("takesCourse", st, courses[(s+k)%len(courses)])
				}
			}

			// Publications by faculty.
			for pb := 0; pb < 10; pb++ {
				pub := term.String(fmt.Sprintf("pub%d_%s", pb, dept.Str()))
				add("publicationAuthor", pub, fulls[pb%len(fulls)])
			}
		}
	}
	return facts
}

// Size estimates the facts per university (for scaling tables).
const FactsPerUniversity = 5200
