// Package dbpedia generates the synthetic substitute for the DBpedia
// company/person datasets of paper Sec. 6.3 (the dump itself is not
// redistributable offline). The generator reproduces the structural
// properties the PSC/StrongLink scenarios depend on: ~67K companies
// forming shallow control forests (dbo:parentCompany), a large person
// pool (~1.5M), and skewed key-person attachment (dbo:keyPerson), at
// configurable scales.
package dbpedia

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/term"
)

// Config scales the synthetic dataset.
type Config struct {
	Companies int
	Persons   int
	// KeyPersonRate is the expected number of key persons per company.
	KeyPersonRate float64
	// ControlRate is the fraction of companies with a parent company.
	ControlRate float64
	Seed        int64
}

// PaperScale returns the full DBpedia-like scale (67K companies, persons
// as given).
func PaperScale(persons int) Config {
	return Config{Companies: 67_000, Persons: persons, KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7}
}

// Dataset holds the generated facts.
type Dataset struct {
	Companies  []ast.Fact // company(c)
	Controls   []ast.Fact // control(parent, child)
	KeyPersons []ast.Fact // keyPerson(company, person)
	Persons    []ast.Fact // person(p)
}

// All concatenates every relation.
func (d *Dataset) All() []ast.Fact {
	out := make([]ast.Fact, 0, len(d.Companies)+len(d.Controls)+len(d.KeyPersons)+len(d.Persons))
	out = append(out, d.Companies...)
	out = append(out, d.Controls...)
	out = append(out, d.KeyPersons...)
	out = append(out, d.Persons...)
	return out
}

// Size returns the total number of facts.
func (d *Dataset) Size() int {
	return len(d.Companies) + len(d.Controls) + len(d.KeyPersons) + len(d.Persons)
}

func company(i int) term.Value { return term.String(fmt.Sprintf("co%d", i)) }

func person(i int) term.Value { return term.String(fmt.Sprintf("p%d", i)) }

// Generate builds the dataset. Control edges form a forest of shallow
// trees (parents have smaller ids), matching the short corporate chains
// of the real extraction; key persons are drawn with a skew so that a few
// persons serve on many boards (what makes StrongLink dense).
func Generate(cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{}
	for i := 0; i < cfg.Companies; i++ {
		d.Companies = append(d.Companies, ast.NewFact("company", company(i)))
	}
	for i := 1; i < cfg.Companies; i++ {
		if rng.Float64() >= cfg.ControlRate {
			continue
		}
		// Parent skewed toward low ids: hubs control many subsidiaries,
		// chains stay shallow (expected depth O(log) with this skew).
		parent := int(float64(i) * rng.Float64() * rng.Float64())
		d.Controls = append(d.Controls, ast.NewFact("control", company(parent), company(i)))
	}
	if cfg.Persons > 0 {
		for i := 0; i < cfg.Persons; i++ {
			d.Persons = append(d.Persons, ast.NewFact("person", person(i)))
		}
		expected := float64(cfg.Companies) * cfg.KeyPersonRate
		for n := 0; n < int(expected); n++ {
			c := rng.Intn(cfg.Companies)
			// Zipf-ish person choice: square the uniform draw so low-id
			// persons appear on many boards.
			p := int(float64(cfg.Persons) * rng.Float64() * rng.Float64())
			if p >= cfg.Persons {
				p = cfg.Persons - 1
			}
			d.KeyPersons = append(d.KeyPersons, ast.NewFact("keyPerson", company(c), person(p)))
		}
	}
	return d
}

// PSCProgram is Example 11: persons with significant control, i.e. key
// persons propagated along the control relation.
const PSCProgram = `
	keyPerson(X,P), person(P) -> psc(X,P).
	control(Y,X), psc(Y,P) -> psc(X,P).
	@output("psc").
`

// AllPSCProgram is Example 12: the PSCs of each company grouped into one
// set with monotonic union.
const AllPSCProgram = `
	keyPerson(X,P), person(P), J = munion(P) -> pscSet(X,J).
	control(Y,X), pscSet(Y,S), J = munion(S) -> pscSet(X,J).
	@output("pscSet").
`

// StrongLinksProgram is Example 13 parameterized by the threshold N: two
// companies sharing more than N persons of significant control (including
// invented ones) are strongly linked.
func StrongLinksProgram(n int) string {
	return fmt.Sprintf(`
		keyPerson(X,P) -> psc(X,P).
		company(X) -> psc(X, P).
		control(Y,X), psc(Y,P) -> psc(X,P).
		psc(X,P), psc(Y,P), X > Y, W = mcount(P), W >= %d -> strongLink(X,Y,W).
		@output("strongLink").
	`, n)
}

// SpecStrongLinksProgram restricts strong links to one target company
// (scenario SpecStrongLinks; the paper uses Premier Foods).
func SpecStrongLinksProgram(companyID, n int) string {
	c := company(companyID)
	return fmt.Sprintf(`
		keyPerson(X,P) -> psc(X,P).
		company(X) -> psc(X, P).
		control(Y,X), psc(Y,P) -> psc(X,P).
		psc(%[1]s,P), psc(Y,P), %[1]s != Y, W = mcount(P), W >= %[2]d -> strongLink(%[1]s,Y,W).
		@output("strongLink").
	`, c, n)
}
