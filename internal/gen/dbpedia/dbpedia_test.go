package dbpedia

import (
	"context"
	"testing"

	"repro/internal/analysis"
	"repro/internal/parser"
	"repro/internal/pipeline"
)

func TestGenerateShape(t *testing.T) {
	d := Generate(Config{Companies: 1000, Persons: 4000, KeyPersonRate: 1.2, ControlRate: 0.35, Seed: 7})
	if len(d.Companies) != 1000 || len(d.Persons) != 4000 {
		t.Fatalf("sizes: %d companies %d persons", len(d.Companies), len(d.Persons))
	}
	// Control edges ≈ rate × companies.
	if got := len(d.Controls); got < 250 || got > 450 {
		t.Errorf("control edges: %d, want ≈350", got)
	}
	// Key persons ≈ rate × companies.
	if got := len(d.KeyPersons); got < 1000 || got > 1400 {
		t.Errorf("key persons: %d, want ≈1200", got)
	}
	// Parents have smaller ids: the control relation is acyclic.
	for _, f := range d.Controls {
		if f.Args[0].Str() >= f.Args[1].Str() && len(f.Args[0].Str()) == len(f.Args[1].Str()) {
			t.Fatalf("parent id must be smaller: %v", f)
		}
	}
	if d.Size() != len(d.All()) {
		t.Error("Size and All disagree")
	}
}

func TestProgramsAreWarded(t *testing.T) {
	for name, src := range map[string]string{
		"psc":         PSCProgram,
		"allpsc":      AllPSCProgram,
		"stronglinks": StrongLinksProgram(3),
		"spec":        SpecStrongLinksProgram(0, 1),
	} {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := analysis.Analyze(prog)
		if !res.Warded {
			t.Errorf("%s: not warded: %v", name, res.Violations)
		}
	}
}

func TestPSCPropagation(t *testing.T) {
	d := Generate(Config{Companies: 400, Persons: 1600, KeyPersonRate: 1.2, ControlRate: 0.5, Seed: 3})
	prog := parser.MustParse(PSCProgram)
	s, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), d.All()); err != nil {
		t.Fatal(err)
	}
	psc := s.Output("psc")
	if len(psc) <= len(d.KeyPersons) {
		t.Errorf("psc (%d) must exceed direct key persons (%d): control propagation",
			len(psc), len(d.KeyPersons))
	}
}

func TestStrongLinksProducePairs(t *testing.T) {
	d := Generate(Config{Companies: 150, Persons: 300, KeyPersonRate: 1.5, ControlRate: 0.4, Seed: 5})
	prog := parser.MustParse(StrongLinksProgram(1))
	s, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), d.All()); err != nil {
		t.Fatal(err)
	}
	if len(s.Output("strongLink")) == 0 {
		t.Error("expected some strong links")
	}
}
