package source

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/term"
)

// ParseCell parses the textual form of one record cell into a typed
// value. It extends term.ParseLiteral with the rendered forms of the
// remaining kinds so that EncodeCell∘ParseCell is the identity: "dN" is
// a date, "_:nK" a labelled null, "{...}" a set; quoted cells are
// strings, and anything unparseable falls back to a string (the
// historical CSV behavior).
func ParseCell(s string) term.Value {
	if v, ok := parseTaggedCell(s); ok {
		return v
	}
	v, err := term.ParseLiteral(s)
	if err != nil {
		return term.String(s)
	}
	return v
}

func parseTaggedCell(s string) (term.Value, bool) {
	switch {
	case len(s) >= 2 && s[0] == 'd' && allDigits(s[1:]):
		n, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return term.Value{}, false
		}
		return term.Date(n), true
	case len(s) > 3 && strings.HasPrefix(s, "_:n") && allDigits(s[3:]):
		n, err := strconv.ParseInt(s[3:], 10, 64)
		if err != nil {
			return term.Value{}, false
		}
		return term.Null(n), true
	case len(s) >= 2 && s[0] == '{' && s[len(s)-1] == '}':
		return term.ParseCanonicalSet(s)
	}
	return term.Value{}, false
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// EncodeCell renders v so that ParseCell(EncodeCell(v)) == v for every
// value kind: strings are written bare when re-reading bare gives the
// same string back and Vadalog-quoted otherwise (a string "42" must not
// come back as the integer 42); integral floats keep an explicit ".0" so
// they cannot collide with the equal int's rendering; the other kinds
// use their canonical textual form, which ParseCell recognizes.
func EncodeCell(v term.Value) string {
	switch v.Kind() {
	case term.KindString:
		s := v.Str()
		if rt := ParseCell(s); rt.Kind() == term.KindString && rt.Str() == s {
			return s
		}
		return strconv.Quote(s)
	case term.KindFloat:
		f := v.FloatVal()
		s := strconv.FormatFloat(f, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") && !math.IsNaN(f) && !math.IsInf(f, 0) {
			s += ".0"
		}
		return s
	default:
		return v.String()
	}
}
