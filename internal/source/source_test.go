package source

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/term"
)

func writeFile(t *testing.T, name, data string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery(`$2 > 10, $1 != "acme", 3 <= $3`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Conjunct{
		{Col: 2, Op: ast.CmpGt, Val: term.Int(10)},
		{Col: 1, Op: ast.CmpNeq, Val: term.String("acme")},
		{Col: 3, Op: ast.CmpGe, Val: term.Int(3)}, // flipped
	}
	if !reflect.DeepEqual(q.Conjuncts, want) {
		t.Errorf("conjuncts = %+v, want %+v", q.Conjuncts, want)
	}
	if q.MaxCol() != 3 {
		t.Errorf("MaxCol = %d", q.MaxCol())
	}
	// A quoted constant containing a comma and an operator stays one conjunct.
	q, err = ParseQuery(`$1 == "a,<b"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Conjuncts) != 1 || q.Conjuncts[0].Val != term.String("a,<b") {
		t.Errorf("quoted constant mangled: %+v", q.Conjuncts)
	}
	for _, bad := range []string{"", "$1", "$1 ~ 2", "$1 > $2", "1 > 2", "$0 > 1", "$x > 1", "$1 >"} {
		if _, err := ParseQuery(bad); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", bad)
		}
	}
}

func TestQueryMatchSemantics(t *testing.T) {
	q := mustQuery(t, "$1 >= 2.5")
	if !q.Matches([]term.Value{term.Int(3)}) { // numeric cross-kind ordering
		t.Error("Int(3) !>= 2.5")
	}
	if q.Matches([]term.Value{term.String("z")}) { // string vs float ordering: kind order, but
		// term.Compare across non-numeric kinds orders by kind; strings sort before floats
		// is an implementation detail — just pin the current EvalCondition-mirroring result.
		t.Log("string ordered against float (kind order)")
	}
	eq := mustQuery(t, "$1 == 1")
	if !eq.Matches([]term.Value{term.Float(1.0)}) {
		t.Error("Float(1.0) != Int(1) under semantic equality")
	}
	if eq.Matches([]term.Value{term.Int(2)}) {
		t.Error("2 == 1")
	}
	if eq.Matches(nil) { // missing column never matches
		t.Error("empty row matched")
	}
}

func mustQuery(t *testing.T, s string) *Query {
	t.Helper()
	q, err := ParseQuery(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestCSVQueryPushdown(t *testing.T) {
	path := writeFile(t, "p.csv", "a,5\nb,11\nc,20\nd,3\n")
	q := mustQuery(t, "$2 > 10")
	cur, err := Open(context.Background(), CSV{Comma: ','}, Binding{Pred: "p", Target: path, Query: q})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// The csv driver pushes the query: the cursor itself only surfaces
	// matching rows (no post-filter wrapper involved).
	if _, wrapped := cur.(*checkedCursor).cur.(*filteredCursor); wrapped {
		t.Fatal("csv driver did not push the query down (post-filter wrapper applied)")
	}
	rows := drain(t, cur)
	if len(rows) != 2 {
		t.Fatalf("surfaced %d rows, want 2: %v", len(rows), rows)
	}
	if rows[0][0] != term.String("b") || rows[1][0] != term.String("c") {
		t.Errorf("rows = %v", rows)
	}
}

// stubSource yields fixed rows and does not implement PushdownSource:
// Open must post-filter its rows.
type stubSource struct{ rows [][]term.Value }

func (s stubSource) Open(context.Context, Binding) (RecordCursor, error) {
	return &memCursor{rows: s.rows}, nil
}

func TestPostFilterFallback(t *testing.T) {
	src := stubSource{rows: [][]term.Value{
		{term.Int(1)}, {term.Int(15)}, {term.Int(30)},
	}}
	cur, err := Open(context.Background(), src, Binding{Pred: "p", Query: mustQuery(t, "$1 > 10")})
	if err != nil {
		t.Fatal(err)
	}
	if _, wrapped := cur.(*checkedCursor).cur.(*filteredCursor); !wrapped {
		t.Fatal("non-pushdown source was not post-filtered")
	}
	rows := drain(t, cur)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// @mapping over a driver without column pushdown is rejected.
	if _, err := Open(context.Background(), src, Binding{Pred: "p", Columns: []string{"a"}}); err == nil {
		t.Fatal("mapping over a non-pushdown source succeeded")
	}
	// The post-filter must not compact the driver's chunk in place: a
	// second scan over the same retained rows sees them intact.
	if !reflect.DeepEqual(src.rows, [][]term.Value{
		{term.Int(1)}, {term.Int(15)}, {term.Int(30)},
	}) {
		t.Fatalf("post-filter corrupted driver-owned rows: %v", src.rows)
	}
}

func TestCSVMappingProjection(t *testing.T) {
	path := writeFile(t, "wide.csv", "id,name,score,junk\n1,ann,9,x\n2,bo,4,y\n")
	cur, err := Open(context.Background(), CSV{Comma: ','},
		Binding{Pred: "p", Target: path, Columns: []string{"score", "name"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	rows := drain(t, cur)
	want := [][]term.Value{
		{term.Int(9), term.String("ann")},
		{term.Int(4), term.String("bo")},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("rows = %v, want %v", rows, want)
	}
	// Unknown mapped column fails at Open.
	if _, err := Open(context.Background(), CSV{Comma: ','},
		Binding{Pred: "p", Target: path, Columns: []string{"nope"}}); err == nil {
		t.Fatal("unknown mapped column succeeded")
	}
}

// roundTripValues covers every value kind, including the adversarial
// strings whose bare rendering would re-parse as another kind.
func roundTripValues() []term.Value {
	return []term.Value{
		term.Int(42), term.Int(-7),
		term.Float(0.5), term.Float(1.0), term.Float(-2e30),
		term.Bool(true), term.Bool(false),
		term.Date(12345),
		term.Null(3),
		term.Set([]term.Value{term.Int(1), term.String("a"), term.Float(1.0)}),
		term.String("plain"), term.String("two words"),
		term.String("42"), term.String("1.5"), term.String("#t"), term.String("#f"),
		term.String("d99"), term.String("_:n4"), term.String("{1,2}"),
		term.String(""), term.String(`"already quoted"`),
		term.String("comma,and\"quote"), term.String("NaN"),
	}
}

func TestCSVRoundTripAllKinds(t *testing.T) {
	vals := roundTripValues()
	rows := make([][]term.Value, len(vals))
	for i, v := range vals {
		rows[i] = []term.Value{v, term.Int(int64(i))}
	}
	for _, name := range []string{"csv", "tsv"} {
		d, _ := Lookup(name)
		path := filepath.Join(t.TempDir(), "rt."+name)
		b := Binding{Pred: "p", Target: path}
		if err := d.(Sink).WriteAll(context.Background(), b, rows); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(context.Background(), d, b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rows) {
			for i := range rows {
				if i < len(got) && !reflect.DeepEqual(got[i], rows[i]) {
					t.Errorf("%s row %d: wrote %v (kind %v), read %v (kind %v)",
						name, i, rows[i][0], rows[i][0].Kind(), got[i][0], got[i][0].Kind())
				}
			}
			t.Fatalf("%s round trip not identity", name)
		}
	}
}

func TestJSONLRoundTripAllKinds(t *testing.T) {
	vals := roundTripValues()
	rows := make([][]term.Value, len(vals))
	for i, v := range vals {
		rows[i] = []term.Value{v}
	}
	path := filepath.Join(t.TempDir(), "rt.jsonl")
	b := Binding{Pred: "p", Target: path}
	if err := (JSONL{}).WriteAll(context.Background(), b, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(context.Background(), JSONL{}, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		for i := range rows {
			if i < len(got) && !reflect.DeepEqual(got[i], rows[i]) {
				t.Errorf("row %d: wrote %v (kind %v), read %v (kind %v)",
					i, rows[i][0], rows[i][0].Kind(), got[i][0], got[i][0].Kind())
			}
		}
		t.Fatal("jsonl round trip not identity")
	}
}

func TestJSONLObjectsWithMapping(t *testing.T) {
	path := writeFile(t, "p.jsonl",
		`{"name":"ann","score":9,"junk":true}`+"\n"+
			`{"name":"bo","score":4}`+"\n")
	b := Binding{Pred: "p", Target: path, Columns: []string{"score", "name"}}
	rows, err := ReadAll(context.Background(), JSONL{}, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]term.Value{
		{term.Int(9), term.String("ann")},
		{term.Int(4), term.String("bo")},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("rows = %v, want %v", rows, want)
	}
	// Objects without a mapping are an error.
	if _, err := ReadAll(context.Background(), JSONL{}, Binding{Pred: "p", Target: path}); err == nil {
		t.Fatal("object rows without @mapping succeeded")
	}
}

func TestMemDriverStoreScanWrite(t *testing.T) {
	m := NewMem()
	m.StoreColumns("t", []string{"a", "b"}, [][]term.Value{
		{term.Int(1), term.String("x")},
		{term.Int(20), term.String("y")},
	})
	rows, err := ReadAll(context.Background(), m, Binding{Pred: "p", Target: "t",
		Columns: []string{"b"}, Query: mustQuery(t, "$1 == \"y\"")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != term.String("y") {
		t.Errorf("rows = %v", rows)
	}
	if _, err := ReadAll(context.Background(), m, Binding{Pred: "p", Target: "absent"}); err == nil {
		t.Fatal("absent table succeeded")
	}
	// A mapped binding over an absent table reports the data-level cause
	// (table not stored), not a bogus capability complaint.
	_, err = ReadAll(context.Background(), m,
		Binding{Pred: "p", Target: "absent", Columns: []string{"a"}})
	if err == nil || !strings.Contains(err.Error(), "not stored") {
		t.Fatalf("mapped absent table: %v", err)
	}
	if err := m.WriteAll(context.Background(), Binding{Target: "out"}, rows); err != nil {
		t.Fatal(err)
	}
	if got := m.Rows("out"); !reflect.DeepEqual(got, rows) {
		t.Errorf("Rows(out) = %v", got)
	}
}

func TestMemStoreFuncDrainsOnce(t *testing.T) {
	m := NewMem()
	i := 0
	m.StoreFunc("t", func() ([]term.Value, bool) {
		if i >= 5 {
			return nil, false
		}
		i++
		return []term.Value{term.Int(int64(i))}, true
	})
	for pass := 0; pass < 2; pass++ {
		rows, err := ReadAll(context.Background(), m, Binding{Pred: "p", Target: "t"})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("pass %d: %d rows", pass, len(rows))
		}
	}
	if i != 5 {
		t.Errorf("iterator pulled %d times", i)
	}
}

// TestMemConcurrency scans and stores concurrently under -race.
func TestMemConcurrency(t *testing.T) {
	m := NewMem()
	base := [][]term.Value{{term.Int(1)}, {term.Int(2)}, {term.Int(3)}}
	m.Store("shared", base)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				switch g % 3 {
				case 0: // scan the shared table
					rows, err := ReadAll(context.Background(), m, Binding{Pred: "p", Target: "shared"})
					if err != nil || len(rows) != 3 {
						t.Errorf("scan: %v (%d rows)", err, len(rows))
						return
					}
				case 1: // churn a private table
					name := fmt.Sprintf("t%d", g)
					m.Store(name, base)
					m.Rows(name)
				default: // write through the sink
					name := fmt.Sprintf("out%d", g)
					if err := m.WriteAll(context.Background(), Binding{Target: name}, base); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRegistryBuiltins(t *testing.T) {
	for _, name := range []string{"csv", "tsv", "jsonl", "mem"} {
		d, ok := Lookup(name)
		if !ok {
			t.Fatalf("builtin driver %q not registered", name)
		}
		if _, ok := d.(Source); !ok {
			t.Errorf("driver %q is not a Source", name)
		}
		if _, ok := d.(Sink); !ok {
			t.Errorf("driver %q is not a Sink", name)
		}
		if _, ok := d.(PushdownSource); !ok {
			t.Errorf("driver %q is not a PushdownSource", name)
		}
	}
	names := DriverNames()
	if len(names) < 4 {
		t.Errorf("DriverNames = %v", names)
	}
}

func TestChunkedScan(t *testing.T) {
	n := 2*ChunkSize + 17
	var sb []byte
	for i := 0; i < n; i++ {
		sb = append(sb, []byte(fmt.Sprintf("r%d,%d\n", i, i))...)
	}
	path := writeFile(t, "big.csv", string(sb))
	cur, err := Open(context.Background(), CSV{Comma: ','}, Binding{Pred: "p", Target: path})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	chunks, rows := 0, 0
	for {
		chunk, err := cur.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk) == 0 {
			break
		}
		if len(chunk) > ChunkSize {
			t.Fatalf("chunk of %d rows", len(chunk))
		}
		chunks++
		rows += len(chunk)
	}
	if rows != n {
		t.Fatalf("scanned %d rows, want %d", rows, n)
	}
	if chunks < 3 {
		t.Fatalf("scan took %d chunks, want >= 3", chunks)
	}
}

func TestCursorCancelIsResumable(t *testing.T) {
	path := writeFile(t, "p.csv", "a,1\nb,2\n")
	cur, err := Open(context.Background(), CSV{Comma: ','}, Binding{Pred: "p", Target: path})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cur.Next(cancelled); err == nil {
		t.Fatal("cancelled Next succeeded")
	}
	rows := drain(t, cur) // nothing was consumed by the cancelled pull
	if len(rows) != 2 {
		t.Fatalf("resumed scan got %d rows", len(rows))
	}
}

func drain(t *testing.T, cur RecordCursor) [][]term.Value {
	t.Helper()
	var rows [][]term.Value
	for {
		chunk, err := cur.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk) == 0 {
			return rows
		}
		rows = append(rows, chunk...)
	}
}
