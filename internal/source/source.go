// Package source is the record-manager layer of the reproduction (paper
// Sec. 6): it binds predicates to heterogeneous external sources and
// sinks through a pluggable driver registry, streams typed rows into the
// engines chunk by chunk, and pushes @qbind constant selections and
// @mapping column projections into the driver when it supports them
// (post-filtering otherwise).
//
// A Driver is registered once under a name (Register) and resolved at
// compile time from @bind/@qbind annotations; built-in drivers are "csv",
// "tsv", "jsonl" and "mem". Drivers implement Source to serve input
// bindings, Sink to serve output bindings, and PushdownSource to take
// over selection/projection work.
package source

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/term"
)

// Injection sites guarding the two seams every driver funnels through:
// opening a scan and pulling a chunk. Both fire as transient errors, so
// the chaos suite exercises the binding layer's retry path for every
// driver without per-driver hooks.
var (
	siteOpen = fault.NewSite("source.open")
	siteRead = fault.NewSite("source.read")
)

// ChunkSize is how many rows a built-in driver yields per RecordCursor
// pull. The binding layer checks for cancellation between chunks, so the
// constant also bounds cancellation latency during loads.
const ChunkSize = 1024

// Binding describes one resolved predicate binding: which external
// target to scan (or write), and the selection/projection the consumer
// wants applied.
type Binding struct {
	// Pred is the bound predicate (facts produced by the source carry it).
	Pred string
	// Driver is the registry name the binding resolved through
	// (diagnostics only; the driver itself is passed alongside).
	Driver string
	// Target locates the data within the driver: a file path for the
	// file-backed drivers, a table name for the mem driver.
	Target string
	// Arity is the declared width of the bound predicate when the
	// program determines one, 0 otherwise. It feeds compile-time
	// validation (a Query may not reference columns beyond it); row
	// widths themselves are not enforced against it — rows pass through
	// as scanned, preserving the historical permissive CSV behavior.
	Arity int
	// Columns is the @mapping projection: named source columns selected,
	// in order, onto the predicate's positions. Empty means positional
	// pass-through. Projection is inherently driver-side (column names
	// only exist at the source), so drivers must support it via
	// PushdownSource; Open rejects the binding otherwise.
	Columns []string
	// Query is the parsed @qbind selection over predicate positions
	// (post-projection), nil when absent. Drivers that push it down
	// evaluate it during the scan; Open post-filters for the rest.
	Query *Query
}

// RecordCursor streams typed rows in chunks. Next returns the next chunk
// (at most ChunkSize rows for the built-in drivers) and an empty chunk
// once the source is exhausted. A cursor whose Next returned a context
// error has consumed nothing for that call and may be resumed with a
// live context.
type RecordCursor interface {
	Next(ctx context.Context) ([][]term.Value, error)
	Close() error
}

// Source is the input half of a record manager: Open begins a streaming
// scan of the binding's target.
type Source interface {
	Open(ctx context.Context, b Binding) (RecordCursor, error)
}

// Sink is the output half of a record manager: WriteAll persists the
// rows of an output predicate to the binding's target.
type Sink interface {
	WriteAll(ctx context.Context, b Binding, rows [][]term.Value) error
}

// Pushdown reports which parts of a Binding a driver evaluates natively.
type Pushdown struct {
	// Query: the driver applies b.Query during the scan, so filtered rows
	// never surface to the engine.
	Query bool
	// Columns: the driver applies the @mapping projection (it can resolve
	// the binding's column names).
	Columns bool
}

// PushdownSource is implemented by sources that take over selection
// and/or projection work; sources without it get selections applied as a
// post-filter by Open, and cannot serve @mapping bindings.
type PushdownSource interface {
	Source
	Pushdown(b Binding) Pushdown
}

// Driver is a registered record manager: a Source, a Sink, or both. The
// binding layer type-asserts per direction; compile-time validation
// reports drivers lacking the direction a binding needs.
type Driver interface{}

// Pushes returns what d applies natively for b (the zero Pushdown when d
// does not implement PushdownSource).
func Pushes(d Driver, b Binding) Pushdown {
	if ps, ok := d.(PushdownSource); ok {
		return ps.Pushdown(b)
	}
	return Pushdown{}
}

// Open begins a streaming scan of b through d, pushing the binding's
// query into the driver when it supports it and wrapping the cursor in a
// post-filter otherwise. Bindings with an @mapping projection require a
// driver that pushes columns (names only exist at the source).
func Open(ctx context.Context, d Driver, b Binding) (RecordCursor, error) {
	src, ok := d.(Source)
	if !ok {
		return nil, fmt.Errorf("source: driver %q for %s cannot read (no Source)", b.Driver, b.Pred)
	}
	push := Pushes(d, b)
	if len(b.Columns) > 0 && !push.Columns {
		return nil, fmt.Errorf("source: driver %q for %s does not support @mapping", b.Driver, b.Pred)
	}
	if err := siteOpen.Check(); err != nil {
		return nil, Classify(fmt.Errorf("source: open %s via %q: %w", b.Pred, b.Driver, err))
	}
	inner := b
	if b.Query != nil && !push.Query {
		inner.Query = nil
	}
	cur, err := src.Open(ctx, inner)
	if err != nil {
		return nil, Classify(err)
	}
	if b.Query != nil && !push.Query {
		cur = &filteredCursor{cur: cur, q: b.Query}
	}
	return &checkedCursor{cur: cur}, nil
}

// checkedCursor guards every chunk pull with the source.read injection
// site and classifies driver errors as transient where they qualify. The
// site check runs before the pull, so an injected read failure consumes
// nothing — like a context error, the cursor stays positioned and a
// retry resumes exactly where the fault struck.
type checkedCursor struct {
	cur RecordCursor
}

func (c *checkedCursor) Next(ctx context.Context) ([][]term.Value, error) {
	if err := siteRead.Check(); err != nil {
		return nil, Classify(fmt.Errorf("source: read: %w", err))
	}
	chunk, err := c.cur.Next(ctx)
	if err != nil {
		return nil, Classify(err)
	}
	return chunk, nil
}

func (c *checkedCursor) Close() error { return c.cur.Close() }

// filteredCursor applies a Query the driver did not push down. It never
// returns a non-final empty chunk: empty post-filter results pull again
// until a row survives or the underlying cursor is exhausted.
type filteredCursor struct {
	cur RecordCursor
	q   *Query
}

func (f *filteredCursor) Next(ctx context.Context) ([][]term.Value, error) {
	for {
		chunk, err := f.cur.Next(ctx)
		if err != nil || len(chunk) == 0 {
			return nil, err
		}
		// Survivors go into a fresh slice: the chunk may alias storage the
		// driver still owns, so compacting it in place could corrupt a
		// concurrent or later scan.
		var kept [][]term.Value
		for _, row := range chunk {
			if f.q.Matches(row) {
				kept = append(kept, row)
			}
		}
		if len(kept) > 0 {
			return kept, nil
		}
	}
}

func (f *filteredCursor) Close() error { return f.cur.Close() }

// resolveColumns maps a binding's @mapping column names onto indexes in
// available, the driver's column inventory (a CSV header, a mem table's
// stored names); where names the source for the error message.
func resolveColumns(available, wanted []string, where string) ([]int, error) {
	idx := make(map[string]int, len(available))
	for i, name := range available {
		idx[name] = i
	}
	proj := make([]int, len(wanted))
	for j, col := range wanted {
		i, ok := idx[col]
		if !ok {
			return nil, fmt.Errorf("source: %s: @mapping column %q not among %v", where, col, available)
		}
		proj[j] = i
	}
	return proj, nil
}

// ReadAll drains a binding through d into a single row slice (tests,
// small inputs, the compatibility CSV helpers). Streaming consumers
// should drive the cursor chunk by chunk instead.
func ReadAll(ctx context.Context, d Driver, b Binding) ([][]term.Value, error) {
	cur, err := Open(ctx, d, b)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var rows [][]term.Value
	for {
		chunk, err := cur.Next(ctx)
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			return rows, nil
		}
		rows = append(rows, chunk...)
	}
}
