package source

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/term"
)

// CSV is the delimited-text record manager behind the "csv" (comma) and
// "tsv" (tab) drivers. It is a Source, a Sink and a PushdownSource:
// @qbind selections are evaluated during the scan (filtered rows never
// surface to the engine) and @mapping projections resolve against a
// header row, which the file must carry iff the binding is mapped.
type CSV struct {
	// Comma is the field delimiter (',' for csv, '\t' for tsv).
	Comma rune
}

// Pushdown reports that the driver applies both selections and
// projections natively.
func (CSV) Pushdown(Binding) Pushdown { return Pushdown{Query: true, Columns: true} }

// Open starts a streaming scan of the file at b.Target. With an
// @mapping projection the first record is read as a header naming the
// file's columns; without one every record maps positionally.
func (d CSV) Open(_ context.Context, b Binding) (RecordCursor, error) {
	f, err := os.Open(b.Target)
	if err != nil {
		return nil, Classify(fmt.Errorf("source: open %s: %w", b.Target, err))
	}
	r := csv.NewReader(f)
	if d.Comma != 0 {
		r.Comma = d.Comma
	}
	r.FieldsPerRecord = -1
	r.ReuseRecord = true
	proj, err := headerProjection(r, b)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &csvCursor{f: f, r: r, target: b.Target, q: b.Query, proj: proj}, nil
}

// headerProjection consumes the header row and resolves the binding's
// mapped columns to field indexes; it returns nil when the binding has
// no mapping (positional rows, no header).
func headerProjection(r *csv.Reader, b Binding) ([]int, error) {
	if len(b.Columns) == 0 {
		return nil, nil
	}
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("source: %s: reading header for @mapping: %w", b.Target, err)
	}
	return resolveColumns(header, b.Columns, b.Target)
}

type csvCursor struct {
	f      *os.File
	r      *csv.Reader
	target string
	q      *Query
	proj   []int
	done   bool
}

func (c *csvCursor) Next(ctx context.Context) ([][]term.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err // nothing consumed: the cursor stays resumable
	}
	if c.done {
		return nil, nil
	}
	out := make([][]term.Value, 0, ChunkSize)
	for len(out) < ChunkSize {
		rec, err := c.r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				c.done = true
				break
			}
			return nil, Classify(fmt.Errorf("source: read %s: %w", c.target, err))
		}
		row, err := projectRecord(rec, c.proj, c.target)
		if err != nil {
			return nil, err
		}
		if c.q != nil && !c.q.Matches(row) {
			continue
		}
		out = append(out, row)
	}
	return out, nil
}

func projectRecord(rec []string, proj []int, target string) ([]term.Value, error) {
	if proj == nil {
		row := make([]term.Value, len(rec))
		for i, cell := range rec {
			row[i] = ParseCell(cell)
		}
		return row, nil
	}
	row := make([]term.Value, len(proj))
	for j, i := range proj {
		if i >= len(rec) {
			return nil, fmt.Errorf("source: %s: record %v misses mapped column %d", target, rec, i+1)
		}
		row[j] = ParseCell(rec[i])
	}
	return row, nil
}

func (c *csvCursor) Close() error { return c.f.Close() }

// WriteAll persists rows to the file at b.Target, one record per row.
// Cells are encoded with EncodeCell, so a write→read round trip is the
// identity on every value kind. A mapped binding writes its @mapping
// columns as the header row.
func (d CSV) WriteAll(_ context.Context, b Binding, rows [][]term.Value) error {
	f, err := os.Create(b.Target)
	if err != nil {
		return Classify(fmt.Errorf("source: create %s: %w", b.Target, err))
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if d.Comma != 0 {
		w.Comma = d.Comma
	}
	if len(b.Columns) > 0 {
		if err := w.Write(b.Columns); err != nil {
			return Classify(fmt.Errorf("source: write %s: %w", b.Target, err))
		}
	}
	rec := make([]string, 0, 8)
	for _, row := range rows {
		rec = rec[:0]
		for _, v := range row {
			rec = append(rec, EncodeCell(v))
		}
		if err := w.Write(rec); err != nil {
			return Classify(fmt.Errorf("source: write %s: %w", b.Target, err))
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return Classify(fmt.Errorf("source: write %s: %w", b.Target, err))
	}
	return nil
}
