package source

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/term"
)

// Mem is the in-memory record manager behind the "mem" driver: the Go
// API stores rows — or a lazy row iterator — under a table name, and
// @bind("p","mem","name") serves them to the engines. It is a Source, a
// Sink and a PushdownSource, and is safe for concurrent use: concurrent
// sessions each scan a consistent snapshot of the stored rows.
//
// The process-global instance is DefaultMem (registry name "mem");
// per-Reasoner instances can be injected through the compile options to
// keep data private to one program.
type Mem struct {
	mu     sync.RWMutex
	tables map[string]*memTable
}

type memTable struct {
	cols []string
	rows [][]term.Value

	// feed is an optional lazy iterator; pulls are serialized by mu and
	// the yielded rows are appended to rows, so the table converges to a
	// materialized snapshot however many cursors raced over it.
	feedMu   sync.Mutex
	feed     func() ([]term.Value, bool)
	feedDone bool
}

// NewMem returns an empty in-memory driver.
func NewMem() *Mem { return &Mem{tables: make(map[string]*memTable)} }

// Store replaces table name with the given positional rows.
func (m *Mem) Store(name string, rows [][]term.Value) {
	m.StoreColumns(name, nil, rows)
}

// StoreColumns replaces table name with rows whose positions are named
// by cols, enabling @mapping projections over the table.
func (m *Mem) StoreColumns(name string, cols []string, rows [][]term.Value) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tables[name] = &memTable{cols: cols, rows: rows}
}

// StoreFunc replaces table name with a lazy row iterator: next is pulled
// until it reports false, the first time a cursor needs the rows. Pulls
// are serialized; the yielded rows are retained so later scans see the
// same data.
func (m *Mem) StoreFunc(name string, next func() ([]term.Value, bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tables[name] = &memTable{feed: next}
}

// Rows returns a snapshot of table name's rows (nil when absent) — the
// readback path for @bind'ed outputs written through the mem sink.
func (m *Mem) Rows(name string) [][]term.Value {
	m.mu.RLock()
	t, ok := m.tables[name]
	m.mu.RUnlock()
	if !ok {
		return nil
	}
	t.materialize()
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([][]term.Value, len(t.rows))
	copy(out, t.rows)
	return out
}

// materialize drains the table's lazy feed into rows, exactly once.
func (t *memTable) materialize() {
	t.feedMu.Lock()
	defer t.feedMu.Unlock()
	if t.feed == nil || t.feedDone {
		return
	}
	for {
		row, ok := t.feed()
		if !ok {
			break
		}
		t.rows = append(t.rows, row)
	}
	t.feedDone = true
}

// Pushdown reports that the driver applies both selections and
// projections natively. Projection capability is a property of the
// driver, not of the bound table's current state: Open reports the
// accurate data-level error (absent table, unnamed columns) when a
// mapped scan cannot actually resolve.
func (m *Mem) Pushdown(Binding) Pushdown { return Pushdown{Query: true, Columns: true} }

// Open starts a scan over a snapshot of table b.Target.
func (m *Mem) Open(_ context.Context, b Binding) (RecordCursor, error) {
	m.mu.RLock()
	t, ok := m.tables[b.Target]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("source: mem table %q not stored (Store/StoreFunc it before running)", b.Target)
	}
	t.materialize()
	var proj []int
	if len(b.Columns) > 0 {
		var err error
		if proj, err = resolveColumns(t.cols, b.Columns, "mem table "+b.Target); err != nil {
			return nil, err
		}
	}
	m.mu.RLock()
	rows := t.rows[:len(t.rows):len(t.rows)]
	m.mu.RUnlock()
	return &memCursor{rows: rows, proj: proj, q: b.Query, table: b.Target}, nil
}

type memCursor struct {
	rows  [][]term.Value
	proj  []int
	q     *Query
	table string
	pos   int
}

func (c *memCursor) Next(ctx context.Context) ([][]term.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err // nothing consumed: the cursor stays resumable
	}
	out := make([][]term.Value, 0, ChunkSize)
	for c.pos < len(c.rows) && len(out) < ChunkSize {
		row := c.rows[c.pos]
		c.pos++
		if c.proj != nil {
			prow := make([]term.Value, len(c.proj))
			for j, i := range c.proj {
				if i >= len(row) {
					return nil, fmt.Errorf("source: mem table %q row %v misses column %d", c.table, row, i+1)
				}
				prow[j] = row[i]
			}
			row = prow
		}
		if c.q != nil && !c.q.Matches(row) {
			continue
		}
		out = append(out, row)
	}
	return out, nil
}

func (c *memCursor) Close() error { return nil }

// WriteAll replaces table b.Target with rows (the mem sink). The written
// table is positional; read it back with Rows or a positional binding.
func (m *Mem) WriteAll(_ context.Context, b Binding, rows [][]term.Value) error {
	snap := make([][]term.Value, len(rows))
	copy(snap, rows)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tables[b.Target] = &memTable{rows: snap}
	return nil
}
