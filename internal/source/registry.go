package source

import (
	"fmt"
	"sort"
	"sync"
)

var (
	regMu   sync.RWMutex
	drivers = make(map[string]Driver)
)

// Register makes a record-manager driver available to @bind/@qbind
// annotations under name, like database/sql.Register. It panics when
// name is already taken or d is nil: registration happens once at init
// time, and a silent overwrite would change what existing programs mean.
func Register(name string, d Driver) {
	regMu.Lock()
	defer regMu.Unlock()
	if d == nil {
		panic("source: Register driver is nil")
	}
	if name == "" {
		panic("source: Register with empty name")
	}
	if _, dup := drivers[name]; dup {
		panic(fmt.Sprintf("source: Register called twice for driver %q", name))
	}
	drivers[name] = d
}

// Lookup resolves a registered driver by name.
func Lookup(name string) (Driver, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := drivers[name]
	return d, ok
}

// DriverNames returns the sorted names of all registered drivers (error
// messages, CLI help).
func DriverNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(drivers))
	for name := range drivers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DefaultMem is the process-global in-memory driver registered as "mem":
// the Go API stores rows or iterators in it by name and @bind'ed
// programs read them back.
var DefaultMem = NewMem()

func init() {
	Register("csv", CSV{Comma: ','})
	Register("tsv", CSV{Comma: '\t'})
	Register("jsonl", JSONL{})
	Register("mem", DefaultMem)
}
