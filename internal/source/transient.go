package source

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"syscall"

	"repro/internal/fault"
)

// Transient marks a source error as a retryable I/O condition: the scan
// failed for a reason that may clear on its own (interrupted syscall,
// reset connection, injected fault), not because the binding or the data
// is wrong. The binding layer retries Transient errors with backoff;
// everything else surfaces immediately.
//
// Transient wraps the underlying error (%w semantics), so errors.Is /
// errors.As see through it to the root cause.
type Transient struct {
	Err error
}

func (t *Transient) Error() string { return "source: transient: " + t.Err.Error() }

// Unwrap exposes the wrapped cause to errors.Is/As.
func (t *Transient) Unwrap() error { return t.Err }

// IsTransient reports whether err is (or wraps) a transient source
// error, i.e. whether a retry is worthwhile.
func IsTransient(err error) bool {
	var t *Transient
	return errors.As(err, &t)
}

// Classify wraps err in *Transient when it matches a retryable I/O
// class, and returns it unchanged otherwise. Retryable classes:
//
//   - injected faults (*fault.Error) — what makes retry paths testable
//   - net.Error timeouts and os.ErrDeadlineExceeded
//   - interrupted / flaky syscalls: EINTR, EAGAIN, ECONNRESET,
//     ETIMEDOUT, EPIPE
//   - io.ErrUnexpectedEOF (a stream cut mid-record; resumable cursors
//     re-read nothing, so retrying is safe)
//
// Context cancellation and deadline errors are deliberately NOT
// transient: they are the caller's intent and must surface at once.
// Classify is idempotent — an already-Transient error passes through.
func Classify(err error) error {
	if err == nil || IsTransient(err) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	var fe *fault.Error
	if errors.As(err, &fe) {
		return &Transient{Err: err}
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return &Transient{Err: err}
	}
	for _, class := range []error{
		os.ErrDeadlineExceeded,
		io.ErrUnexpectedEOF,
		syscall.EINTR,
		syscall.EAGAIN,
		syscall.ECONNRESET,
		syscall.ETIMEDOUT,
		syscall.EPIPE,
	} {
		if errors.Is(err, class) {
			return &Transient{Err: err}
		}
	}
	return err
}
