package source

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/term"
)

// JSONL is the JSON-lines record manager behind the "jsonl" driver: one
// JSON value per line, either an array of cells (positional) or an
// object (requires an @mapping naming the keys to project). It is a
// Source, a Sink and a PushdownSource. JSON carries types natively, so
// strings never collide with numbers on a round trip; the kinds JSON
// cannot express (dates, labelled nulls, sets, non-finite floats) are
// type-tagged as {"$k": kind, "$v": payload} cells.
type JSONL struct{}

// Pushdown reports that the driver applies both selections and
// projections natively.
func (JSONL) Pushdown(Binding) Pushdown { return Pushdown{Query: true, Columns: true} }

// Open starts a streaming scan of the file at b.Target.
func (JSONL) Open(_ context.Context, b Binding) (RecordCursor, error) {
	f, err := os.Open(b.Target)
	if err != nil {
		return nil, Classify(fmt.Errorf("source: open %s: %w", b.Target, err))
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &jsonlCursor{f: f, sc: sc, target: b.Target, cols: b.Columns, q: b.Query}, nil
}

type jsonlCursor struct {
	f      *os.File
	sc     *bufio.Scanner
	target string
	cols   []string
	q      *Query
	line   int
	done   bool
}

func (c *jsonlCursor) Next(ctx context.Context) ([][]term.Value, error) {
	if err := ctx.Err(); err != nil {
		return nil, err // nothing consumed: the cursor stays resumable
	}
	if c.done {
		return nil, nil
	}
	out := make([][]term.Value, 0, ChunkSize)
	for len(out) < ChunkSize {
		if !c.sc.Scan() {
			if err := c.sc.Err(); err != nil {
				return nil, Classify(fmt.Errorf("source: read %s: %w", c.target, err))
			}
			c.done = true
			break
		}
		c.line++
		data := bytes.TrimSpace(c.sc.Bytes())
		if len(data) == 0 {
			continue
		}
		row, err := decodeJSONRow(data, c.cols, c.target, c.line)
		if err != nil {
			return nil, err
		}
		if c.q != nil && !c.q.Matches(row) {
			continue
		}
		out = append(out, row)
	}
	return out, nil
}

func (c *jsonlCursor) Close() error { return c.f.Close() }

func decodeJSONRow(data []byte, cols []string, target string, line int) ([]term.Value, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("source: %s:%d: %w", target, line, err)
	}
	switch rec := raw.(type) {
	case []any:
		if len(cols) > 0 {
			return nil, fmt.Errorf("source: %s:%d: @mapping binds named keys, but the row is an array", target, line)
		}
		row := make([]term.Value, len(rec))
		for i, cell := range rec {
			v, err := decodeJSONCell(cell)
			if err != nil {
				return nil, fmt.Errorf("source: %s:%d: cell %d: %w", target, line, i+1, err)
			}
			row[i] = v
		}
		return row, nil
	case map[string]any:
		if len(cols) == 0 {
			return nil, fmt.Errorf("source: %s:%d: object rows need an @mapping naming the keys to project", target, line)
		}
		row := make([]term.Value, len(cols))
		for j, col := range cols {
			cell, ok := rec[col]
			if !ok {
				return nil, fmt.Errorf("source: %s:%d: object misses mapped key %q", target, line, col)
			}
			v, err := decodeJSONCell(cell)
			if err != nil {
				return nil, fmt.Errorf("source: %s:%d: key %q: %w", target, line, col, err)
			}
			row[j] = v
		}
		return row, nil
	default:
		return nil, fmt.Errorf("source: %s:%d: row must be a JSON array or object", target, line)
	}
}

func decodeJSONCell(cell any) (term.Value, error) {
	switch v := cell.(type) {
	case string:
		return term.String(v), nil
	case bool:
		return term.Bool(v), nil
	case json.Number:
		if i, err := strconv.ParseInt(string(v), 10, 64); err == nil {
			return term.Int(i), nil
		}
		f, err := v.Float64()
		if err != nil {
			return term.Value{}, fmt.Errorf("bad number %q: %w", v, err)
		}
		return term.Float(f), nil
	case map[string]any:
		return decodeTaggedJSONCell(v)
	default:
		return term.Value{}, fmt.Errorf("unsupported JSON cell %v (%T)", cell, cell)
	}
}

func decodeTaggedJSONCell(m map[string]any) (term.Value, error) {
	kind, _ := m["$k"].(string)
	switch kind {
	case "date", "null":
		num, ok := m["$v"].(json.Number)
		if !ok {
			return term.Value{}, fmt.Errorf("tagged %q cell needs a numeric $v", kind)
		}
		i, err := strconv.ParseInt(string(num), 10, 64)
		if err != nil {
			return term.Value{}, err
		}
		if kind == "date" {
			return term.Date(i), nil
		}
		return term.Null(i), nil
	case "float":
		s, ok := m["$v"].(string)
		if !ok {
			return term.Value{}, fmt.Errorf("tagged float cell needs a string $v")
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return term.Value{}, err
		}
		return term.Float(f), nil
	case "set":
		s, ok := m["$v"].(string)
		if !ok {
			return term.Value{}, fmt.Errorf("tagged set cell needs a string $v")
		}
		set, ok := term.ParseCanonicalSet(s)
		if !ok {
			return term.Value{}, fmt.Errorf("bad set rendering %q", s)
		}
		return set, nil
	default:
		return term.Value{}, fmt.Errorf("unknown tagged cell kind %q", kind)
	}
}

func encodeJSONCell(v term.Value) any {
	switch v.Kind() {
	case term.KindString:
		return v.Str()
	case term.KindInt:
		return v.IntVal()
	case term.KindBool:
		return v.BoolVal()
	case term.KindFloat:
		f := v.FloatVal()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return map[string]any{"$k": "float", "$v": strconv.FormatFloat(f, 'g', -1, 64)}
		}
		s := strconv.FormatFloat(f, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0" // keep the float kind distinguishable from the equal int
		}
		return json.RawMessage(s)
	case term.KindDate:
		return map[string]any{"$k": "date", "$v": v.IntVal()}
	case term.KindNull:
		return map[string]any{"$k": "null", "$v": v.NullID()}
	case term.KindSet:
		return map[string]any{"$k": "set", "$v": v.String()}
	default:
		return nil
	}
}

// WriteAll persists rows to the file at b.Target: with an @mapping, one
// JSON object per row keyed by the mapped columns; without, one JSON
// array per row.
func (JSONL) WriteAll(_ context.Context, b Binding, rows [][]term.Value) error {
	f, err := os.Create(b.Target)
	if err != nil {
		return Classify(fmt.Errorf("source: create %s: %w", b.Target, err))
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, row := range rows {
		if len(b.Columns) > 0 {
			if len(row) != len(b.Columns) {
				return fmt.Errorf("source: %s: row width %d != %d mapped columns", b.Target, len(row), len(b.Columns))
			}
			obj := make(map[string]any, len(row))
			for j, v := range row {
				obj[b.Columns[j]] = encodeJSONCell(v)
			}
			if err := enc.Encode(obj); err != nil {
				return Classify(fmt.Errorf("source: write %s: %w", b.Target, err))
			}
			continue
		}
		arr := make([]any, len(row))
		for i, v := range row {
			arr[i] = encodeJSONCell(v)
		}
		if err := enc.Encode(arr); err != nil {
			return Classify(fmt.Errorf("source: write %s: %w", b.Target, err))
		}
	}
	if err := w.Flush(); err != nil {
		return Classify(fmt.Errorf("source: write %s: %w", b.Target, err))
	}
	return nil
}
