package source

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/term"
)

// Query is a parsed @qbind selection: a conjunction of constant
// comparisons over predicate positions, e.g. "$2 > 10, $1 != \"acme\"".
// Positions are 1-based and refer to the row after @mapping projection
// (the predicate's argument positions).
type Query struct {
	Raw       string
	Conjuncts []Conjunct
}

// Conjunct is one comparison of a column against a constant.
type Conjunct struct {
	Col int // 1-based predicate position
	Op  ast.CmpOp
	Val term.Value
}

// ParseQuery parses the @qbind selection syntax: comma-separated
// conjuncts, each "$N op literal" or "literal op $N" with op one of
// ==, =, !=, <>, <, <=, >, >=. Literals use the Vadalog constant syntax
// (ints, floats, #t/#f, quoted strings; bare identifiers are strings).
func ParseQuery(s string) (*Query, error) {
	q := &Query{Raw: s}
	for _, part := range splitTop(s) {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("source: empty conjunct in query %q", s)
		}
		c, err := parseConjunct(part)
		if err != nil {
			return nil, err
		}
		q.Conjuncts = append(q.Conjuncts, c)
	}
	if len(q.Conjuncts) == 0 {
		return nil, fmt.Errorf("source: empty query")
	}
	return q, nil
}

// MaxCol returns the highest column referenced by the query.
func (q *Query) MaxCol() int {
	max := 0
	for _, c := range q.Conjuncts {
		if c.Col > max {
			max = c.Col
		}
	}
	return max
}

// Matches reports whether row satisfies every conjunct. A conjunct over
// a column the row does not have never matches. Comparison semantics
// mirror rule conditions (ast.EvalCondition): == and != are semantic
// equality (Int/Float conflated numerically), ordering is term.Compare,
// and ordering against labelled nulls is undefined (false).
func (q *Query) Matches(row []term.Value) bool {
	for _, c := range q.Conjuncts {
		if c.Col > len(row) {
			return false
		}
		if !evalCmp(c.Op, row[c.Col-1], c.Val) {
			return false
		}
	}
	return true
}

func evalCmp(op ast.CmpOp, l, r term.Value) bool {
	if l.IsNull() || r.IsNull() {
		switch op {
		case ast.CmpEq:
			return l == r
		case ast.CmpNeq:
			return l != r
		default:
			return false
		}
	}
	switch op {
	case ast.CmpEq:
		return term.Equal(l, r)
	case ast.CmpNeq:
		return !term.Equal(l, r)
	}
	cmp := term.Compare(l, r)
	switch op {
	case ast.CmpLt:
		return cmp < 0
	case ast.CmpLe:
		return cmp <= 0
	case ast.CmpGt:
		return cmp > 0
	case ast.CmpGe:
		return cmp >= 0
	default:
		return false
	}
}

// String renders the query in the surface syntax it was parsed from.
func (q *Query) String() string {
	var sb strings.Builder
	for i, c := range q.Conjuncts {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "$%d %s %s", c.Col, c.Op, c.Val)
	}
	return sb.String()
}

// splitTop splits s at top-level commas, respecting quoted strings.
func splitTop(s string) []string {
	var parts []string
	start := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inQuote:
			if c == '\\' {
				i++
			} else if c == '"' {
				inQuote = false
			}
		case c == '"':
			inQuote = true
		case c == ',':
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// cmpOps is ordered longest-first so two-character operators win.
var cmpOps = []struct {
	text string
	op   ast.CmpOp
}{
	{"==", ast.CmpEq}, {"!=", ast.CmpNeq}, {"<>", ast.CmpNeq},
	{"<=", ast.CmpLe}, {">=", ast.CmpGe},
	{"=", ast.CmpEq}, {"<", ast.CmpLt}, {">", ast.CmpGt},
}

func parseConjunct(s string) (Conjunct, error) {
	// Find the operator outside quotes.
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inQuote:
			if c == '\\' {
				i++
			} else if c == '"' {
				inQuote = false
			}
			continue
		case c == '"':
			inQuote = true
			continue
		}
		for _, cand := range cmpOps {
			if strings.HasPrefix(s[i:], cand.text) {
				lhs := strings.TrimSpace(s[:i])
				rhs := strings.TrimSpace(s[i+len(cand.text):])
				return buildConjunct(s, lhs, rhs, cand.op)
			}
		}
	}
	return Conjunct{}, fmt.Errorf("source: no comparison operator in conjunct %q", s)
}

func buildConjunct(orig, lhs, rhs string, op ast.CmpOp) (Conjunct, error) {
	lcol, lok, err := parseColRef(lhs)
	if err != nil {
		return Conjunct{}, err
	}
	rcol, rok, err := parseColRef(rhs)
	if err != nil {
		return Conjunct{}, err
	}
	switch {
	case lok && rok:
		return Conjunct{}, fmt.Errorf("source: conjunct %q compares two columns; one side must be a constant", orig)
	case !lok && !rok:
		return Conjunct{}, fmt.Errorf("source: conjunct %q has no $N column reference", orig)
	case lok:
		v, err := parseQueryConst(rhs)
		if err != nil {
			return Conjunct{}, err
		}
		return Conjunct{Col: lcol, Op: op, Val: v}, nil
	default:
		v, err := parseQueryConst(lhs)
		if err != nil {
			return Conjunct{}, err
		}
		return Conjunct{Col: rcol, Op: flipOp(op), Val: v}, nil
	}
}

func parseColRef(s string) (col int, ok bool, err error) {
	if !strings.HasPrefix(s, "$") {
		return 0, false, nil
	}
	n, perr := strconv.Atoi(s[1:])
	if perr != nil || n < 1 {
		return 0, false, fmt.Errorf("source: bad column reference %q (want $N, N >= 1)", s)
	}
	return n, true, nil
}

func parseQueryConst(s string) (term.Value, error) {
	if s == "" {
		return term.Value{}, fmt.Errorf("source: missing constant in query conjunct")
	}
	v, err := term.ParseLiteral(s)
	if err != nil {
		return term.Value{}, fmt.Errorf("source: bad query constant %q: %v", s, err)
	}
	return v, nil
}

func flipOp(op ast.CmpOp) ast.CmpOp {
	switch op {
	case ast.CmpLt:
		return ast.CmpGt
	case ast.CmpLe:
		return ast.CmpGe
	case ast.CmpGt:
		return ast.CmpLt
	case ast.CmpGe:
		return ast.CmpLe
	default:
		return op // ==, != are symmetric
	}
}
