// Package owlqa implements the ontological-reasoning layer the paper
// motivates in requirement (2) of the introduction: Warded Datalog±
// generalizes the OWL 2 QL profile (via TriQ-Lite 1.0, [32] in the
// paper), so OWL 2 QL ontologies translate into warded rules and SPARQL-
// style conjunctive queries evaluate under the entailment regime by plain
// reasoning. This package provides the axiom model, the translation to
// Vadalog rules, and an ABox loader for triple data.
//
// Supported axioms (the OWL 2 QL core):
//
//	SubClassOf(C, D)                  C(x) → D(x)
//	SubClassOfSome(C, R, D)           C(x) → ∃y R(x,y) ∧ D(y)
//	SomeSubClassOf(R, C)              R(x,y) → C(x)          (∃R ⊑ C, domain)
//	SomeInvSubClassOf(R, C)           R(x,y) → C(y)          (∃R⁻ ⊑ C, range)
//	SubPropertyOf(R, S)               R(x,y) → S(x,y)
//	InverseOf(R, S)                   R(x,y) ↔ S(y,x)
//	SymmetricProperty(R)              R(x,y) → R(y,x)
//	TransitiveProperty(R)             R(x,y), R(y,z) → R(x,z)   (QL⁺ extension)
//	DisjointClasses(C, D)             C(x), D(x) → ⊥
//	DisjointProperties(R, S)          R(x,y), S(x,y) → ⊥
//	ReflexiveOnClass(R, C)            C(x) → R(x,x)
//
// Classes become unary predicates, properties binary predicates. The
// translation is warded by construction: the only existential axiom,
// SubClassOfSome, is a linear rule.
package owlqa

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

// AxiomKind enumerates the supported axiom forms.
type AxiomKind int

// Axiom kinds.
const (
	SubClassOf AxiomKind = iota
	SubClassOfSome
	SomeSubClassOf
	SomeInvSubClassOf
	SubPropertyOf
	InverseOf
	SymmetricProperty
	TransitiveProperty
	DisjointClasses
	DisjointProperties
	ReflexiveOnClass
)

// Axiom is one ontology axiom; the meaning of the fields depends on Kind
// (see the package comment).
type Axiom struct {
	Kind    AxiomKind
	S, P, O string // subject / property / object names as applicable
}

// Ontology is a set of axioms (the TBox).
type Ontology struct {
	Axioms []Axiom
}

// Add appends an axiom and returns the ontology for chaining.
func (o *Ontology) Add(kind AxiomKind, names ...string) *Ontology {
	a := Axiom{Kind: kind}
	switch len(names) {
	case 1:
		a.S = names[0]
	case 2:
		a.S, a.O = names[0], names[1]
	case 3:
		a.S, a.P, a.O = names[0], names[1], names[2]
	}
	o.Axioms = append(o.Axioms, a)
	return o
}

// normalize lower-cases the first rune so names are valid Vadalog
// predicates.
func normalize(name string) string {
	if name == "" {
		return name
	}
	return strings.ToLower(name[:1]) + name[1:]
}

// Rules renders the ontology as Vadalog source text.
func (o *Ontology) Rules() (string, error) {
	var sb strings.Builder
	for i, a := range o.Axioms {
		s, p, obj := normalize(a.S), normalize(a.P), normalize(a.O)
		switch a.Kind {
		case SubClassOf:
			fmt.Fprintf(&sb, "%s(X) -> %s(X).\n", s, obj)
		case SubClassOfSome:
			fmt.Fprintf(&sb, "%s(X) -> %s(X, Y), %s(Y).\n", s, p, obj)
		case SomeSubClassOf:
			fmt.Fprintf(&sb, "%s(X, Y) -> %s(X).\n", s, obj)
		case SomeInvSubClassOf:
			fmt.Fprintf(&sb, "%s(X, Y) -> %s(Y).\n", s, obj)
		case SubPropertyOf:
			fmt.Fprintf(&sb, "%s(X, Y) -> %s(X, Y).\n", s, obj)
		case InverseOf:
			fmt.Fprintf(&sb, "%s(X, Y) -> %s(Y, X).\n", s, obj)
			fmt.Fprintf(&sb, "%s(X, Y) -> %s(Y, X).\n", obj, s)
		case SymmetricProperty:
			fmt.Fprintf(&sb, "%s(X, Y) -> %s(Y, X).\n", s, s)
		case TransitiveProperty:
			fmt.Fprintf(&sb, "%s(X, Y), %s(Y, Z) -> %s(X, Z).\n", s, s, s)
		case DisjointClasses:
			fmt.Fprintf(&sb, "%s(X), %s(X) -> #fail.\n", s, obj)
		case DisjointProperties:
			fmt.Fprintf(&sb, "%s(X, Y), %s(X, Y) -> #fail.\n", s, obj)
		case ReflexiveOnClass:
			fmt.Fprintf(&sb, "%s(X) -> %s(X, X).\n", obj, s)
		default:
			return "", fmt.Errorf("owlqa: axiom %d has unknown kind %d", i, a.Kind)
		}
	}
	return sb.String(), nil
}

// Program parses the translated rules (plus optional extra source such as
// queries) into a Vadalog program.
func (o *Ontology) Program(extra string) (*ast.Program, error) {
	rules, err := o.Rules()
	if err != nil {
		return nil, err
	}
	return parser.Parse(rules + extra)
}

// Triple is one ABox assertion: either a class assertion (P == "a") or a
// property assertion.
type Triple struct {
	S, P, O string
}

// ABoxFacts converts triples to facts: (s, a, C) becomes C(s); (s, R, o)
// becomes R(s, o).
func ABoxFacts(triples []Triple) []ast.Fact {
	out := make([]ast.Fact, 0, len(triples))
	for _, t := range triples {
		if t.P == "a" || strings.EqualFold(t.P, "rdf:type") {
			out = append(out, ast.NewFact(normalize(t.O), term.String(t.S)))
			continue
		}
		out = append(out, ast.NewFact(normalize(t.P), term.String(t.S), term.String(t.O)))
	}
	return out
}

// ParseTurtleLike reads a minimal triple syntax: one `s p o .` statement
// per line, `a` as the class-membership keyword, `#` comments. It exists
// so examples and tests can load ABoxes from text.
func ParseTurtleLike(src string) ([]Triple, error) {
	var out []Triple
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		line = strings.TrimSuffix(line, ".")
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("owlqa: line %d: want `s p o .`, got %q", ln+1, line)
		}
		out = append(out, Triple{S: fields[0], P: fields[1], O: fields[2]})
	}
	return out, nil
}

// Example1Spouse returns the introduction's Example 1 as an ontology-ish
// rule: the Spouse relation over quintuples is symmetric in its first two
// arguments — the MARS-style higher-arity reasoning most ontology
// languages cannot express but Vadalog can.
const Example1Spouse = `
	spouse(X, Y, Start, Loc, End) -> spouse(Y, X, Start, Loc, End).
`
