package owlqa

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/chase"
	"repro/internal/pipeline"
)

func universityOntology() *Ontology {
	o := &Ontology{}
	o.Add(SubClassOf, "FullProfessor", "", "Professor")
	o.Add(SubClassOf, "Professor", "", "Faculty")
	o.Add(SubClassOf, "Faculty", "", "Person")
	o.Add(SubPropertyOf, "headOf", "", "worksFor")
	o.Add(SomeSubClassOf, "worksFor", "", "Person")          // domain
	o.Add(SomeInvSubClassOf, "worksFor", "", "Organization") // range
	o.Add(InverseOf, "teacherOf", "", "taughtBy")
	o.Add(SubClassOfSome, "Professor", "degreeFrom", "University") // ∃-axiom
	o.Add(TransitiveProperty, "subOrgOf")
	o.Add(DisjointClasses, "Person", "Organization")
	return o
}

func TestTranslationIsWarded(t *testing.T) {
	prog, err := universityOntology().Program("")
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(prog)
	if !res.Warded {
		t.Fatalf("OWL 2 QL translation must be warded: %v", res.Violations)
	}
	st := analysis.ComputeStats(prog)
	if st.ExistentialRules != 1 {
		t.Errorf("existential rules: %d", st.ExistentialRules)
	}
}

func TestEntailmentRegime(t *testing.T) {
	abox, err := ParseTurtleLike(`
		# the running university ABox
		ada a FullProfessor .
		ada headOf cs .
		cs subOrgOf uni .
		uni subOrgOf system .
		ada teacherOf logic .
	`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := universityOntology().Program(`
		person(X) -> q1(X).
		worksFor(X, Y) -> q2(X, Y).
		taughtBy(C, X) -> q3(C, X).
		subOrgOf(X, Z) -> q4(X, Z).
		degreeFrom(X, U), university(U) -> q5(X).
		@output("q1"). @output("q2"). @output("q3"). @output("q4"). @output("q5").
	`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), ABoxFacts(abox)); err != nil {
		t.Fatal(err)
	}
	check := func(pred, want string) {
		t.Helper()
		for _, f := range s.Output(pred) {
			if f.String() == want {
				return
			}
		}
		t.Errorf("missing entailment %s; got %v", want, s.Output(pred))
	}
	check("q1", "q1(ada)")       // FullProfessor ⊑⊑ Person
	check("q2", "q2(ada,cs)")    // headOf ⊑ worksFor
	check("q3", "q3(logic,ada)") // inverseOf
	check("q4", "q4(cs,system)") // transitive subOrgOf
	check("q5", "q5(ada)")       // ∃degreeFrom.University entailed
}

func TestDisjointnessViolation(t *testing.T) {
	prog, err := universityOntology().Program("")
	if err != nil {
		t.Fatal(err)
	}
	abox := ABoxFacts([]Triple{
		{S: "thing", P: "a", O: "Person"},
		{S: "thing", P: "a", O: "Organization"},
	})
	_, err = chase.Run(context.Background(), prog, abox, chase.Options{})
	if !errors.Is(err, chase.ErrInconsistent) {
		t.Fatalf("disjointness must fire: %v", err)
	}
}

func TestInverseBothDirections(t *testing.T) {
	o := (&Ontology{}).Add(InverseOf, "teacherOf", "", "taughtBy")
	prog, err := o.Program(`@output("teacherOf").`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), ABoxFacts([]Triple{{S: "logic", P: "taughtBy", O: "ada"}})); err != nil {
		t.Fatal(err)
	}
	if len(s.Output("teacherOf")) != 1 {
		t.Errorf("inverse must derive teacherOf: %v", s.Output("teacherOf"))
	}
}

func TestParseTurtleLikeErrors(t *testing.T) {
	if _, err := ParseTurtleLike("a b ."); err == nil {
		t.Error("two-field statement must error")
	}
	ts, err := ParseTurtleLike("  \n# only comments\n")
	if err != nil || len(ts) != 0 {
		t.Errorf("comments-only: %v %v", ts, err)
	}
}

// TestExample1HigherArity runs the introduction's Example 1: symmetric
// Spouse over quintuples — the reasoning "most modern ontology languages
// are not able to express" but Vadalog handles directly.
func TestExample1HigherArity(t *testing.T) {
	prog, err := (&Ontology{}).Program(Example1Spouse + `
		spouse(alice, bob, 2001, rome, 2010).
		@output("spouse").
	`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range s.Output("spouse") {
		if strings.HasPrefix(f.String(), "spouse(bob,alice,") {
			found = true
		}
	}
	if !found {
		t.Errorf("symmetric quintuple missing: %v", s.Output("spouse"))
	}
}
