package chase

import (
	"context"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

func runWithOpts(t *testing.T, src string, facts []ast.Fact, opts Options) *Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(context.Background(), prog, facts, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// TestPlannerByteIdentical: the cost-based planner only reorders candidate
// enumeration — admission stays canonical — so for every scenario the
// final database is byte-identical with the planner on or off, serial or
// parallel.
func TestPlannerByteIdentical(t *testing.T) {
	for _, sc := range parallelScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			base := dbBytes(runWithOpts(t, sc.src, sc.facts, Options{Parallelism: 1, DisablePlanner: true}))
			for _, opts := range []Options{
				{Parallelism: 1},
				{Parallelism: 4},
			} {
				if got := dbBytes(runWithOpts(t, sc.src, sc.facts, opts)); got != base {
					t.Errorf("planner on (workers=%d) diverges from planner off (%d vs %d bytes)",
						opts.Parallelism, len(got), len(base))
				}
			}
		})
	}
}

// TestWorstPlanByteIdentical drives the same scenarios with the planner
// forced to pick the LARGEST estimated intermediate at every step: the
// adversarially worst join order must still produce byte-identical
// output, which is the strongest form of the plan-independence contract.
func TestWorstPlanByteIdentical(t *testing.T) {
	for _, sc := range parallelScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			base := dbBytes(runWithOpts(t, sc.src, sc.facts, Options{Parallelism: 1, DisablePlanner: true}))
			prog := parser.MustParse(sc.src)
			c, err := Compile(prog, Options{Parallelism: 2})
			if err != nil {
				t.Fatal(err)
			}
			e := c.NewEngine()
			e.pl.Worst = true
			res, err := e.Run(context.Background(), sc.facts)
			if err != nil {
				t.Fatal(err)
			}
			if got := dbBytes(res); got != base {
				t.Errorf("worst-case plan diverges from planner off (%d vs %d bytes)",
					len(got), len(base))
			}
		})
	}
}

// TestPlannerSkewOrder: on a tiny × huge join the planner matches the
// tiny side first. The static schedule ties wide and narrow (both probe
// on the bound X), so only cost-based ordering gets this right.
func TestPlannerSkewOrder(t *testing.T) {
	src := `src(X), wide(X,Y), narrow(X,Z) -> out(Y,Z).`
	var facts []ast.Fact
	for i := 0; i < 5; i++ {
		facts = append(facts, ast.NewFact("src", term.Int(int64(i))))
		facts = append(facts, ast.NewFact("narrow", term.Int(int64(i)), term.Int(int64(100+i))))
	}
	for j := 0; j < 2000; j++ {
		facts = append(facts, ast.NewFact("wide", term.Int(int64(j%5)), term.Int(int64(j))))
	}
	prog := parser.MustParse(src)
	c, err := Compile(prog, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := c.NewEngine()
	if _, err := e.Run(context.Background(), facts); err != nil {
		t.Fatal(err)
	}
	cr := e.c.rules[0]
	// Pos: src=0 wide=1 narrow=2; pinned on the src delta the planner
	// must join narrow (est ~1) before wide (est ~400).
	p := e.pl.PlanFor(cr, 0)
	if len(p.Order) != 2 || p.Order[0] != 2 {
		t.Fatalf("skew order: %v (ests %v, rows %v), want narrow (atom 2) first",
			p.Order, p.Est, p.Rows)
	}
}

// TestCSESharedBodies: rules sharing a positive body are matched through
// one shared cursor per delta; the shared-firing counter proves the
// sharing happened and the bytes prove it did not change the result.
func TestCSESharedBodies(t *testing.T) {
	src := `
		e(X,Y), e(Y,Z) -> grand(X,Z).
		e(X,Y), e(Y,Z) -> sibling(Z,X).
		e(X,Y), e(Y,Z), X != Z -> strict(X,Z).
	`
	var facts []ast.Fact
	for i := 0; i < 30; i++ {
		facts = append(facts, ast.NewFact("e", term.Int(int64(i)), term.Int(int64(i+1))))
	}
	base := dbBytes(runWithOpts(t, src, facts, Options{Parallelism: 1, DisablePlanner: true}))
	prog := parser.MustParse(src)
	for _, workers := range []int{1, 4} {
		c, err := Compile(prog, Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(c.groups) == 0 {
			t.Fatal("no CSE groups built for identical bodies")
		}
		e := c.NewEngine()
		res, err := e.Run(context.Background(), facts)
		if err != nil {
			t.Fatal(err)
		}
		if got := dbBytes(res); got != base {
			t.Errorf("workers=%d: CSE run diverges from planner-off run", workers)
		}
		if _, _, shared := e.PlannerStats(); shared == 0 {
			t.Errorf("workers=%d: no shared firings recorded", workers)
		}
	}
}

// TestFrozenStatsWorkerCountIndependent: batch partitioning is
// worker-count-independent, so the statistics snapshots workers plan
// against are too — same generations, same live counts, whatever the
// parallelism. Run under -race this also exercises concurrent frozen-stat
// reads against serial admission writes.
func TestFrozenStatsWorkerCountIndependent(t *testing.T) {
	sc := parallelScenarios(t)[3] // allpsc: aggregates, replacements, recursion
	res1 := runParallel(t, sc.src, sc.facts, 1)
	res8 := runParallel(t, sc.src, sc.facts, 8)
	for _, pred := range res1.DB.Predicates() {
		r1, r8 := res1.DB.Lookup(pred), res8.DB.Lookup(pred)
		if r8 == nil {
			t.Fatalf("%s missing at workers=8", pred)
		}
		s1, s8 := r1.FrozenStats(), r8.FrozenStats()
		if s1.Gen != s8.Gen || s1.Live != s8.Live {
			t.Errorf("%s: frozen stats diverge: gen %d/%d live %d/%d",
				pred, s1.Gen, s8.Gen, s1.Live, s8.Live)
		}
	}
}
