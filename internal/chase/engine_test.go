package chase

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

func run(t *testing.T, src string, edb []ast.Fact) *Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(context.Background(), prog, edb, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func factStrings(fs []ast.Fact) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

func wantFacts(t *testing.T, got []ast.Fact, want ...string) {
	t.Helper()
	gotSet := make(map[string]bool)
	for _, f := range got {
		gotSet[f.String()] = true
	}
	for _, w := range want {
		if !gotSet[w] {
			t.Errorf("missing fact %s; got %v", w, factStrings(got))
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d facts, want %d: %v", len(got), len(want), factStrings(got))
	}
}

func TestTransitiveClosure(t *testing.T) {
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
	`
	edb := []ast.Fact{
		ast.NewFact("edge", term.String("a"), term.String("b")),
		ast.NewFact("edge", term.String("b"), term.String("c")),
		ast.NewFact("edge", term.String("c"), term.String("a")), // cycle
	}
	res := run(t, src, edb)
	got := res.Output("path")
	if len(got) != 9 {
		t.Fatalf("want 9 paths over the 3-cycle, got %d: %v", len(got), factStrings(got))
	}
}

// TestPaperExample3 checks the KeyPerson scenario of paper Example 3: the
// chase must propagate Bob along Control and invent a key person only
// where needed.
func TestPaperExample3(t *testing.T) {
	src := `
		company(X) -> keyPerson(P, X).
		control(X,Y), keyPerson(P,X) -> keyPerson(P,Y).
	`
	edb := []ast.Fact{
		ast.NewFact("company", term.String("a")),
		ast.NewFact("company", term.String("b")),
		ast.NewFact("company", term.String("c")),
		ast.NewFact("control", term.String("a"), term.String("b")),
		ast.NewFact("control", term.String("a"), term.String("c")),
		ast.NewFact("keyPerson", term.String("bob"), term.String("a")),
	}
	res := run(t, src, edb)
	got := res.Output("keyPerson")
	// Bob must be a key person of a, b and c.
	want := map[string]bool{"a": false, "b": false, "c": false}
	for _, f := range got {
		if f.Args[0] == term.String("bob") {
			want[f.Args[1].Str()] = true
		}
	}
	for c, ok := range want {
		if !ok {
			t.Errorf("bob should be key person of %s; got %v", c, factStrings(got))
		}
	}
	// And the invented key persons must also propagate (nulls allowed).
	for _, c := range []string{"a", "b", "c"} {
		found := false
		for _, f := range got {
			if f.Args[1].Str() == c {
				found = true
			}
		}
		if !found {
			t.Errorf("no key person at all for company %s", c)
		}
	}
}

// TestPaperExample7 runs the full running example (Sec. 3) and checks that
// the chase terminates and produces the expected strong links.
func TestPaperExample7(t *testing.T) {
	src := `
		company(X) -> owns(P, S, X).
		owns(P,S,X) -> stock(X, S).
		owns(P,S,X) -> psc(X, P).
		psc(X,P), controls(X,Y) -> owns(P, S2, Y).
		psc(X,P), psc(Y,P) -> strongLink(X,Y).
		strongLink(X,Y) -> owns(P2, S3, X).
		strongLink(X,Y) -> owns(P3, S4, Y).
		stock(X,S) -> company(X).
	`
	edb := []ast.Fact{
		ast.NewFact("company", term.String("hsbc")),
		ast.NewFact("company", term.String("hsb")),
		ast.NewFact("company", term.String("iba")),
		ast.NewFact("controls", term.String("hsbc"), term.String("hsb")),
		ast.NewFact("controls", term.String("hsb"), term.String("iba")),
	}
	res := run(t, src, edb)
	got := res.Output("strongLink")
	set := make(map[string]bool)
	for _, f := range got {
		set[f.Args[0].Str()+"|"+f.Args[1].Str()] = true
	}
	// The person invented for hsbc propagates along controls to hsb and
	// iba, so all pairs among {hsbc,hsb,iba} must be strongly linked.
	for _, pair := range []string{"hsbc|hsb", "hsb|iba", "hsbc|iba", "hsb|hsbc", "iba|hsb", "iba|hsbc"} {
		if !set[pair] {
			t.Errorf("missing strong link %s; got %v", pair, factStrings(got))
		}
	}
	if res.Derivations > 10000 {
		t.Errorf("chase did not stay small: %d derivations", res.Derivations)
	}
}

// TestPaperExample10 reproduces the monotonic aggregation example verbatim.
func TestPaperExample10(t *testing.T) {
	src := `
		p(X,Y,W), J = msum(W, <Y>) -> q(X, J).
	`
	edb := []ast.Fact{
		ast.NewFact("p", term.Int(1), term.Int(2), term.Int(5)),
		ast.NewFact("p", term.Int(1), term.Int(2), term.Int(3)),
		ast.NewFact("p", term.Int(1), term.Int(3), term.Int(7)),
		ast.NewFact("p", term.Int(2), term.Int(4), term.Int(2)),
		ast.NewFact("p", term.Int(2), term.Int(4), term.Int(3)),
		ast.NewFact("p", term.Int(2), term.Int(5), term.Int(1)),
	}
	res := run(t, src, edb)
	got := res.Output("q")
	// The final aggregates must be q(1,12) and q(2,4); intermediate values
	// are allowed (monotonic aggregation emits increasing prefixes).
	max := map[int64]int64{}
	for _, f := range got {
		x, j := f.Args[0].IntVal(), f.Args[1].IntVal()
		if j > max[x] {
			max[x] = j
		}
	}
	if max[1] != 12 || max[2] != 4 {
		t.Errorf("final aggregates: got q(1,%d) q(2,%d), want q(1,12) q(2,4); facts %v",
			max[1], max[2], factStrings(got))
	}
}

// TestPaperExample2 is the company-control scenario with recursive msum.
func TestPaperExample2(t *testing.T) {
	src := `
		own(X,Y,W), W > 0.5 -> control(X,Y).
		control(X,Y), own(Y,Z,W), V = msum(W, <Y>), V > 0.5 -> control(X,Z).
	`
	edb := []ast.Fact{
		// a controls b directly (0.6); a controls c via b (0.3) + directly (0.25).
		ast.NewFact("own", term.String("a"), term.String("b"), term.Float(0.6)),
		ast.NewFact("own", term.String("b"), term.String("c"), term.Float(0.3)),
		ast.NewFact("own", term.String("a"), term.String("c"), term.Float(0.25)),
		// d owns 40% of b: no control.
		ast.NewFact("own", term.String("d"), term.String("b"), term.Float(0.4)),
	}
	res := run(t, src, edb)
	got := res.Output("control")
	set := make(map[string]bool)
	for _, f := range got {
		set[f.Args[0].Str()+">"+f.Args[1].Str()] = true
	}
	if !set["a>b"] {
		t.Errorf("a should control b directly")
	}
	// a controls c: jointly via b (0.3, a controls b) + a's own 0.25 = 0.55.
	// Note the paper's msum sums over controlled companies y; here the
	// contributors are y ∈ {b} plus... a's direct ownership only counts via
	// rule 2 when a controls a — it does not. So expected: 0.3 < 0.5: no
	// control of c unless a controls itself. Verify NO a>c.
	if set["a>c"] {
		t.Errorf("a must not control c (0.3 via b only)")
	}
	if set["d>b"] {
		t.Errorf("d must not control b (0.4)")
	}
}

func TestConstraintViolation(t *testing.T) {
	src := `
		own(X,X,W) -> #fail.
		own(X,Y,W) -> softLink(X,Y).
	`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	edb := []ast.Fact{ast.NewFact("own", term.String("a"), term.String("a"), term.Float(0.1))}
	_, err = Run(context.Background(), prog, edb, Options{})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("want ErrInconsistent, got %v", err)
	}
}

func TestEGDUnifiesNulls(t *testing.T) {
	// Incorporation: a single (unknown) owner must own both companies
	// (paper Example 6, simplified). The two invented owners get unified.
	src := `
		incorp(X,Y) -> own(Z, X).
		incorp(X,Y) -> own(W, Y).
		incorp(Y,Z), own(X1,Y), own(X2,Z) -> X1 = X2.
		own(P,X) -> owner(P).
	`
	edb := []ast.Fact{ast.NewFact("incorp", term.String("u"), term.String("v"))}
	res := run(t, src, edb)
	owners := res.Output("owner")
	if len(owners) != 1 {
		t.Fatalf("EGD should unify the two invented owners into one, got %v", factStrings(owners))
	}
}

func TestEGDConstantViolation(t *testing.T) {
	src := `
		samekey(X,Y), val(X,V1), val(Y,V2) -> V1 = V2.
	`
	prog := parser.MustParse(src)
	edb := []ast.Fact{
		ast.NewFact("samekey", term.String("a"), term.String("b")),
		ast.NewFact("val", term.String("a"), term.Int(1)),
		ast.NewFact("val", term.String("b"), term.Int(2)),
	}
	_, err := Run(context.Background(), prog, edb, Options{})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("want ErrInconsistent, got %v", err)
	}
}

func TestStratifiedNegation(t *testing.T) {
	src := `
		node(X), not bad(X) -> good(X).
		edge(X,Y) -> node(X).
		edge(X,Y) -> node(Y).
	`
	edb := []ast.Fact{
		ast.NewFact("edge", term.String("a"), term.String("b")),
		ast.NewFact("bad", term.String("b")),
	}
	res := run(t, src, edb)
	wantFacts(t, res.Output("good"), "good(a)")
}

// TestNullRecursionTerminates checks the core guarantee: a program whose
// Skolem chase is infinite terminates under the strategy.
func TestNullRecursionTerminates(t *testing.T) {
	src := `
		p(X) -> q(Z, X).
		q(Z, X) -> p(Z).
	`
	edb := []ast.Fact{ast.NewFact("p", term.String("a"))}
	res := run(t, src, edb)
	if res.Derivations > 100 {
		t.Fatalf("expected a tiny terminating chase, got %d derivations", res.Derivations)
	}
	if len(res.Output("q")) == 0 || len(res.Output("p")) < 2 {
		t.Fatalf("chase too aggressive: p=%v q=%v",
			factStrings(res.Output("p")), factStrings(res.Output("q")))
	}
}

// TestHarmfulJoinDynamic checks Example 13-style harmful joins: strong
// links via shared invented PSCs must be found (nulls joined via tags).
func TestHarmfulJoinDynamic(t *testing.T) {
	src := `
		keyPerson(X,P) -> psc(X,P).
		company(X) -> psc(X, P).
		control(Y,X), psc(Y,P) -> psc(X,P).
		psc(X,P), psc(Y,P), X != Y -> strongLink(X,Y).
	`
	edb := []ast.Fact{
		ast.NewFact("company", term.String("a")),
		ast.NewFact("company", term.String("b")),
		ast.NewFact("company", term.String("c")),
		ast.NewFact("control", term.String("a"), term.String("b")),
		ast.NewFact("control", term.String("a"), term.String("c")),
	}
	res := run(t, src, edb)
	got := res.Output("strongLink")
	set := make(map[string]bool)
	for _, f := range got {
		set[f.Args[0].Str()+"|"+f.Args[1].Str()] = true
	}
	// a's invented PSC flows to b and c: all pairs linked.
	for _, pair := range []string{"a|b", "a|c", "b|c", "b|a", "c|a", "c|b"} {
		if !set[pair] {
			t.Errorf("missing strong link %s (harmful join lost); got %v", pair, factStrings(got))
		}
	}
}

// TestHarmfulJoinGroundSide checks that ground values joining through the
// same (rewritten) harmful join still work: shared key persons.
func TestHarmfulJoinGroundSide(t *testing.T) {
	src := `
		keyPerson(X,P) -> psc(X,P).
		company(X) -> psc(X, P).
		control(Y,X), psc(Y,P) -> psc(X,P).
		psc(X,P), psc(Y,P), X != Y -> strongLink(X,Y).
	`
	edb := []ast.Fact{
		ast.NewFact("company", term.String("a")),
		ast.NewFact("company", term.String("b")),
		ast.NewFact("keyPerson", term.String("a"), term.String("bob")),
		ast.NewFact("keyPerson", term.String("b"), term.String("bob")),
	}
	res := run(t, src, edb)
	set := make(map[string]bool)
	for _, f := range res.Output("strongLink") {
		set[f.Args[0].Str()+"|"+f.Args[1].Str()] = true
	}
	if !set["a|b"] || !set["b|a"] {
		t.Errorf("bob links a and b; got %v", factStrings(res.Output("strongLink")))
	}
}

func TestPostDirectives(t *testing.T) {
	src := `
		company(X) -> psc(X, P).
		keyPerson(X,P) -> psc(X,P).
		@post("psc","certain").
		@output("psc").
	`
	edb := []ast.Fact{
		ast.NewFact("company", term.String("a")),
		ast.NewFact("keyPerson", term.String("a"), term.String("bob")),
	}
	res := run(t, src, edb)
	got := res.Output("psc")
	wantFacts(t, got, "psc(a,bob)") // certain answers only: null dropped
}

func TestBudgetExceeded(t *testing.T) {
	// Pure Datalog generating a large cross product exceeds a tiny budget.
	var sb strings.Builder
	sb.WriteString("a(X), a(Y) -> pair(X,Y).\n")
	prog := parser.MustParse(sb.String())
	var edb []ast.Fact
	for i := 0; i < 100; i++ {
		edb = append(edb, ast.NewFact("a", term.Int(int64(i))))
	}
	_, err := Run(context.Background(), prog, edb, Options{MaxDerivations: 50})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestExpressionsAndAssignments(t *testing.T) {
	src := `
		emp(N, S), T = S * 2, T > 50 -> rich(N, T).
	`
	edb := []ast.Fact{
		ast.NewFact("emp", term.String("ann"), term.Int(30)),
		ast.NewFact("emp", term.String("joe"), term.Int(20)),
	}
	res := run(t, src, edb)
	wantFacts(t, res.Output("rich"), "rich(ann,60)")
}

func TestSkolemAssignment(t *testing.T) {
	src := `
		p(X), Z = #f(X) -> q(X, Z).
	`
	edb := []ast.Fact{
		ast.NewFact("p", term.String("a")),
		ast.NewFact("p", term.String("b")),
	}
	res := run(t, src, edb)
	got := res.Output("q")
	if len(got) != 2 {
		t.Fatalf("want 2 facts, got %v", factStrings(got))
	}
	if got[0].Args[1] == got[1].Args[1] {
		t.Errorf("skolem nulls for distinct arguments must differ: %v", factStrings(got))
	}
}

func TestDomGuard(t *testing.T) {
	// dom(*) restricts an EGD to ground bindings: the invented owner is
	// exempted, so no violation occurs even though p's second argument is
	// an invented null that differs between companies.
	src := `
		company(X) -> own(P, X).
		dom(*), own(P1,X), own(P2,X) -> P1 = P2.
		own(P,X) -> hasOwner(X).
	`
	edb := []ast.Fact{
		ast.NewFact("company", term.String("a")),
		ast.NewFact("own", term.String("bob"), term.String("a")),
		ast.NewFact("own", term.String("alice"), term.String("a")),
	}
	prog := parser.MustParse(src)
	_, err := Run(context.Background(), prog, edb, Options{})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("two ground owners of a must violate the dom-guarded EGD, got %v", err)
	}
}

func TestMunion(t *testing.T) {
	src := `
		member(G, X), J = munion(X) -> team(G, J).
	`
	edb := []ast.Fact{
		ast.NewFact("member", term.String("g1"), term.String("ann")),
		ast.NewFact("member", term.String("g1"), term.String("joe")),
		ast.NewFact("member", term.String("g2"), term.String("sam")),
	}
	res := run(t, src, edb)
	found := false
	for _, f := range res.Output("team") {
		if f.Args[0].Str() == "g1" && f.Args[1].Str() == "{ann,joe}" {
			found = true
		}
	}
	if !found {
		t.Errorf("final munion for g1 should be {ann,joe}: %v", factStrings(res.Output("team")))
	}
}

func TestOutputDeterminism(t *testing.T) {
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
	`
	edb := []ast.Fact{}
	for i := 0; i < 20; i++ {
		edb = append(edb, ast.NewFact("edge",
			term.String(fmt.Sprintf("n%d", i)), term.String(fmt.Sprintf("n%d", (i+1)%20))))
	}
	first := factStrings(run(t, src, edb).Output("path"))
	for i := 0; i < 3; i++ {
		again := factStrings(run(t, src, edb).Output("path"))
		if strings.Join(first, ";") != strings.Join(again, ";") {
			t.Fatalf("non-deterministic output on run %d", i)
		}
	}
}

// TestCompiledSharedAcrossEngines: one Compiled artifact, several engines
// over different databases — per-run state must be fully isolated.
func TestCompiledSharedAcrossEngines(t *testing.T) {
	src := `
		edge(X,Y) -> path(X,Y).
		path(X,Y), edge(Y,Z) -> path(X,Z).
	`
	c, err := Compile(parser.MustParse(src), Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for k := 1; k <= 3; k++ {
		e := c.NewEngine()
		var edb []ast.Fact
		for i := 0; i < k; i++ {
			edb = append(edb, ast.NewFact("edge",
				term.String(fmt.Sprintf("s%d_%d", k, i)), term.String(fmt.Sprintf("s%d_%d", k, i+1))))
		}
		res, err := e.Run(context.Background(), edb)
		if err != nil {
			t.Fatalf("run %d: %v", k, err)
		}
		if got, want := len(res.Output("path")), k*(k+1)/2; got != want {
			t.Errorf("engine %d: %d paths, want %d", k, got, want)
		}
	}
}

// TestChaseCancellation: a cancelled context aborts the breadth-first
// loop.
func TestChaseCancellation(t *testing.T) {
	src := `a(X), a(Y) -> pair(X,Y).`
	var edb []ast.Fact
	for i := 0; i < 200; i++ {
		edb = append(edb, ast.NewFact("a", term.Int(int64(i))))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, parser.MustParse(src), edb, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestAggregateSupersession: an improving aggregate replaces its
// previously admitted fact in place, so at quiescence the relation holds
// exactly one live fact per group — the limit — and rules downstream of
// the aggregate observe the improved value (the replacement re-enters the
// delta queue).
func TestAggregateSupersession(t *testing.T) {
	src := `
		member(G, X), W = mcount(X) -> size(G, W).
		size(G, W), W >= 3 -> big(G).
	`
	edb := []ast.Fact{
		ast.NewFact("member", term.String("g1"), term.String("a")),
		ast.NewFact("member", term.String("g1"), term.String("b")),
		ast.NewFact("member", term.String("g1"), term.String("c")),
		ast.NewFact("member", term.String("g2"), term.String("z")),
	}
	res := run(t, src, edb)
	// Only the final counts survive: size(g1,3) and size(g2,1) — the
	// intermediates size(g1,1), size(g1,2) were superseded in place.
	wantFacts(t, res.Output("size"), "size(g1,3)", "size(g2,1)")
	if rel := res.DB.Lookup("size"); rel.Live() != 2 {
		t.Errorf("live size facts: %d, want 2 (one per group)", rel.Live())
	}
	// The downstream rule fired off the replaced (final) value.
	wantFacts(t, res.Output("big"), "big(g1)")
}

// TestAggregateSupersessionRecursive: the munion fixpoint over a control
// chain converges to one live fact per (rule, group) even though each
// parent's set improves several times while children consume it.
func TestAggregateSupersessionRecursive(t *testing.T) {
	src := `
		seed(X, P), J = munion(P) -> acc(X, J).
		next(Y, X), acc(Y, S), J = munion(S) -> acc(X, J).
	`
	edb := []ast.Fact{
		ast.NewFact("seed", term.String("a"), term.Int(1)),
		ast.NewFact("seed", term.String("a"), term.Int(2)),
		ast.NewFact("next", term.String("a"), term.String("b")),
		ast.NewFact("next", term.String("b"), term.String("c")),
	}
	res := run(t, src, edb)
	wantFacts(t, res.Output("acc"), "acc(a,{1,2})", "acc(b,{1,2})", "acc(c,{1,2})")
	if rel := res.DB.Lookup("acc"); rel.Live() != 3 {
		t.Errorf("live acc facts: %d, want 3", rel.Live())
	}
}

// TestAggregateBudgetCountsReplacements: supersessions are chase steps and
// count against the derivation budget, so mutually improving aggregates
// cannot loop unmetered.
func TestAggregateBudgetCountsReplacements(t *testing.T) {
	src := `
		member(G, X), W = mcount(X) -> size(G, W).
	`
	var edb []ast.Fact
	for i := 0; i < 50; i++ {
		edb = append(edb, ast.NewFact("member", term.String("g"), term.Int(int64(i))))
	}
	prog := parser.MustParse(src)
	// 50 EDB facts + 1 live size fact fit; the 49 replacements do not.
	_, err := Run(context.Background(), prog, edb, Options{MaxDerivations: 60})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected budget error from metered replacements, got %v", err)
	}
}
