// Package chase implements the reference reasoning engine: a breadth-first
// chase (Algorithm 2 of the paper) driven by the termination strategy of
// internal/core, over the compiled rules and indexed store of
// internal/eval and internal/storage. The streaming pipeline engine of
// internal/pipeline produces the same answers; this engine is the
// readable, correctness-first counterpart used for cross-validation.
//
// The chase is evaluated in delta batches: the queue is drained a batch at
// a time, the (rule, pinned atom, delta fact) firings of the batch are
// matched against a frozen storage epoch — in parallel when Options.
// Parallelism allows — and the candidate facts are admitted serially in
// canonical (task, match) order. Because matching is read-only and
// admission order is independent of scheduling, the final database is
// byte-identical for every worker count.
package chase

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fault"
	"repro/internal/lint"
	"repro/internal/planner"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/term"
)

// siteMatch guards the parallel match seam: it fires inside matchTask on
// worker goroutines, so error terms exercise the captured-error path and
// panic terms exercise worker panic isolation.
var siteMatch = fault.NewSite("chase.match")

// ErrInconsistent is returned (wrapped) when a negative constraint fires
// or an EGD equates two distinct constants.
var ErrInconsistent = errors.New("chase: knowledge base is inconsistent")

// ErrBudget is returned when MaxDerivations is exceeded; with the
// termination strategy enabled this indicates a genuinely enormous answer,
// with it disabled it is the expected outcome on non-terminating programs.
var ErrBudget = errors.New("chase: derivation budget exceeded")

// Options configures a reasoning run.
type Options struct {
	// Rewrite selects the logic-optimizer passes; zero value means
	// rewrite.DefaultOptions().
	Rewrite *rewrite.Options
	// DisableSummary turns off horizontal pruning (lifted linear forest)
	// for ablations.
	DisableSummary bool
	// MaxDerivations caps admitted facts (0 = 10_000_000).
	MaxDerivations int
	// RequireWarded makes Run fail when the (rewritten) program is not
	// warded instead of proceeding best-effort.
	RequireWarded bool
	// NewPolicy overrides the termination policy (nil = the full strategy
	// of Algorithm 1). Baselines live in internal/baseline.
	NewPolicy func(*analysis.Result) core.Policy
	// DisableDynamicIndex turns off the slot machine join's dynamic
	// in-memory indexing (ablation): lookups scan.
	DisableDynamicIndex bool
	// Parallelism sets how many worker goroutines evaluate each delta
	// batch's matches; 0 (the default) selects runtime.GOMAXPROCS(0) and 1
	// runs the whole batch on the calling goroutine. Workers only
	// parallelize the read-only match phase against a frozen storage
	// epoch; candidate facts are always admitted serially in canonical
	// order, so every setting produces a byte-identical final database.
	Parallelism int
	// DisablePlanner turns off the cost-based join planner and its CSE
	// body sharing: every firing runs the static bound-count schedule
	// compiled into the rule. Candidates are still admitted in canonical
	// order, so output is byte-identical with the planner on or off.
	DisablePlanner bool
	// Shards sets how many partitions the admission pre-pass (and every
	// relation's exact-duplicate table) uses; 0 selects GOMAXPROCS capped
	// at 8, any value is rounded up to a power of two, and 1 disables the
	// parallel dedup pre-pass. Like Parallelism it only moves work between
	// goroutines — candidates merge serially in canonical order, so every
	// shard count produces a byte-identical final database.
	Shards int
}

// Result is the outcome of a reasoning run.
type Result struct {
	DB       *storage.Database
	Program  *ast.Program // rewritten program actually executed
	Analysis *analysis.Result
	Strategy core.Policy
	Subst    *eval.NullSubst
	Rewrite  *rewrite.Result

	// Derivations counts admitted (inserted) facts, EDB included.
	Derivations int
	posts       []ast.PostDirective
}

// Output returns the facts of pred with the program's @post directives
// applied (certain-answer filtering, ordering, limit, keepMax/keepMin
// final aggregates) and the EGD null substitution resolved.
func (r *Result) Output(pred string) []ast.Fact {
	return eval.ApplyPost(r.DB.FactsOf(pred), r.posts, pred, r.Subst)
}

// Compiled is the immutable compile-time artifact of a program for the
// chase engine: rewritten rules, warded analysis and per-rule executable
// plans. Compilation happens exactly once; a Compiled is safe for
// concurrent use by any number of goroutines, each deriving cheap per-run
// state with NewEngine.
type Compiled struct {
	opts Options
	prog *ast.Program // rewritten program
	res  *analysis.Result
	rw   *rewrite.Result

	rules   []*eval.CompiledRule
	postAgg [][]eval.CCond // conditions depending on the aggregate result
	// byPred maps predicate -> (rule idx, pos idx) pairs for delta pinning.
	byPred map[string][][2]int
	// parSafe marks rules whose matching is free of shared-state writes
	// and may run on worker goroutines. Rules with Skolem assignments in
	// the body mint nulls while matching (a null-factory write), so their
	// firings are evaluated inline on the serial admit path instead.
	parSafe []bool
	// prepared marks rules eligible for the partitioned admission path:
	// parallel-safe, plain heads only — no aggregate (supersession must
	// see serial state), no constraint, no existentials (null minting must
	// stay in canonical admission order). EGDs disable preparation
	// program-wide: they mutate the null substitution during admission, so
	// head values resolved on match workers could go stale by merge time.
	prepared []bool

	// CSE body sharing (planner enabled only): rules whose positive
	// bodies are identical under canonical slot renaming form a group per
	// pinned position; one shared match-only cursor enumerates the body
	// per delta and every member replays its private post-match steps.
	groups    []cseGroup
	groupOf   map[[2]int]int // (rule idx, pinned pos) -> group idx
	postSteps [][]eval.Step  // per rule: assign/cond replay steps (grouped rules)

	budget int
}

// cseGroup is one set of rules sharing a positive body (see
// eval.CompiledRule.BodySignature) pinned at the same atom position.
type cseGroup struct {
	body    *eval.CompiledRule // shared match-only twin
	pos     int                // pinned atom index within the body
	members [][2]int           // the (rule idx, pos) firings sharing it
}

// Compile runs rewriting, wardedness analysis and rule compilation on
// prog and returns the shareable artifact.
func Compile(prog *ast.Program, opts Options) (*Compiled, error) {
	rwOpts := rewrite.DefaultOptions()
	if opts.Rewrite != nil {
		rwOpts = *opts.Rewrite
	}
	rw, err := rewrite.Apply(prog, rwOpts)
	if err != nil {
		return nil, err
	}
	res := analysis.Analyze(rw.Program)
	if opts.RequireWarded {
		if err := lint.RequireWarded(res); err != nil {
			return nil, fmt.Errorf("chase: %w", err)
		}
	}
	// Parse no longer rejects arity drift (the lint layer reports it as
	// A001); reject it here like the pipeline engine does via Predicates.
	if _, err := rw.Program.Predicates(); err != nil {
		return nil, err
	}
	c := &Compiled{
		opts:   opts,
		prog:   rw.Program,
		res:    res,
		rw:     rw,
		byPred: make(map[string][][2]int),
		budget: opts.MaxDerivations,
	}
	if c.budget <= 0 {
		c.budget = 10_000_000
	}
	for i, r := range rw.Program.Rules {
		cr, err := eval.Compile(r, res.Rules[i])
		if err != nil {
			return nil, err
		}
		if len(cr.Pos) == 0 {
			return nil, fmt.Errorf("chase: rule %d has no positive body atom: %s", r.ID, r.String())
		}
		c.rules = append(c.rules, cr)
		var pa []eval.CCond
		if cr.Agg != nil {
			for _, cond := range cr.Conds {
				for _, d := range cond.Deps {
					if d == cr.Agg.ResultSlot {
						pa = append(pa, cond)
						break
					}
				}
			}
		}
		c.postAgg = append(c.postAgg, pa)
		safe := true
		for _, asg := range cr.Assigns {
			if asg.IsSkolem {
				safe = false
			}
		}
		c.parSafe = append(c.parSafe, safe)
		c.prepared = append(c.prepared, safe && cr.Agg == nil && r.EGD == nil &&
			!r.IsConstraint && len(cr.Exists) == 0 && len(cr.Heads) > 0)
		for pi, a := range cr.Pos {
			c.byPred[a.Pred] = append(c.byPred[a.Pred], [2]int{i, pi})
		}
	}
	for _, r := range rw.Program.Rules {
		if r.EGD != nil {
			clear(c.prepared) // see the prepared field: EGDs disable preparation program-wide
			break
		}
	}
	if !opts.DisablePlanner {
		c.buildCSEGroups()
	}
	return c, nil
}

// buildCSEGroups clusters (rule, pinned pos) firings whose positive
// bodies coincide under canonical slot renaming. Each cluster with at
// least two members gets a shared match-only body rule; its members get
// their private post-match replay steps. Grouped firings enumerate the
// body once per delta instead of once per rule — the common-subexpression
// elimination of the paper's execution optimizer.
func (c *Compiled) buildCSEGroups() {
	c.groupOf = make(map[[2]int]int)
	c.postSteps = make([][]eval.Step, len(c.rules))
	type cluster struct {
		leader  int
		members [][2]int
	}
	byKey := make(map[string]*cluster)
	var order []string // deterministic group numbering (source order)
	for ri, cr := range c.rules {
		sig, ok := cr.BodySignature()
		if !ok || !c.parSafe[ri] {
			continue
		}
		for pi := range cr.Pos {
			key := fmt.Sprintf("%s#%d", sig, pi)
			cl := byKey[key]
			if cl == nil {
				cl = &cluster{leader: ri}
				byKey[key] = cl
				order = append(order, key)
			}
			cl.members = append(cl.members, [2]int{ri, pi})
		}
	}
	for _, key := range order {
		cl := byKey[key]
		if len(cl.members) < 2 {
			continue
		}
		gid := len(c.groups)
		c.groups = append(c.groups, cseGroup{
			body:    c.rules[cl.leader].BodyMatcher(),
			pos:     cl.members[0][1],
			members: cl.members,
		})
		for _, m := range cl.members {
			c.groupOf[m] = gid
			if c.postSteps[m[0]] == nil {
				c.postSteps[m[0]] = c.rules[m[0]].PostMatchSteps()
			}
		}
	}
}

// Program returns the rewritten program the artifact executes.
func (c *Compiled) Program() *ast.Program { return c.prog }

// Analysis returns the warded analysis of the rewritten program.
func (c *Compiled) Analysis() *analysis.Result { return c.res }

// Engine is the per-run state of a single reasoning session over a
// shared Compiled artifact. Engines are cheap to create and are for use
// by a single goroutine (the worker goroutines an engine spins up per
// delta batch are internal); share the Compiled, not the Engine.
type Engine struct {
	c     *Compiled
	db    *storage.Database
	strat core.Policy
	mt    *eval.Matcher
	subst *eval.NullSubst

	bindings []*eval.Binding
	aggs     []*eval.AggState

	queue []*core.FactMeta
	meter *core.Meter
	// overflow latches a failed worker-side meter reservation for the
	// current batch; step turns it into a whole-batch abort.
	overflow atomic.Bool

	// panicMu/panicErr latch the first recovered match-worker panic of the
	// current batch in canonical task order (minimum task index), so the
	// surfaced crash is the same whatever the worker count or scheduling.
	panicMu  sync.Mutex
	panicErr *core.PanicError
	panicTi  int
	// firing is the rule the serial admit path is currently evaluating,
	// giving step's crash recovery a source position.
	firing *ast.Rule

	// nworkers is the resolved Options.Parallelism; workers holds the
	// per-worker match state (snapshot Matcher + private Bindings),
	// created lazily at the first batch.
	nworkers int
	workers  []*matchWorker

	// tasks and results are the current batch: one (delta, rule, pinned
	// atom) firing per task, with the captured candidate bindings of
	// parallel-safe tasks in the matching results slot.
	tasks   []task
	results []eval.BindingLog

	// pl derives cost-based schedules from the frozen statistics snapshot
	// (nil when Options.DisablePlanner). batchSteps[ti] is task ti's
	// schedule for the current batch (nil = the static schedule); it is
	// filled serially at the batch boundary so workers read it lock-free.
	pl         *planner.Planner
	batchSteps [][]eval.Step
	planSeen   map[[2]int][]eval.Step
	cseSeen    map[cseSeenKey]int
	shared     int // follower firings served from a shared body log

	// Partitioned admission state. shards is the resolved Options.Shards
	// (power of two; matches the relations' duplicate-table shard count).
	// perms[ti] is task ti's canonical admission order, computed serially
	// at the batch boundary. cands is the batch's flattened candidate
	// array — one slot per (prepared task, canonical entry, head), in
	// exactly the order the merge consumes them — with the pre-pass
	// verdicts and the merge's inserted marks alongside; candStart[ti] is
	// task ti's first slot (-1 for tasks outside the prepared path).
	shards       int
	perms        [][]int32
	cands        []storage.PrepassCand
	candVerdict  []uint8
	candDupOf    []int32
	candInserted []bool
	candStart    []int

	// Wall-time split across the batch phases, for the -phases CLI report
	// and the scaling benchmarks: parallel match, dedup pre-pass, serial
	// admission/merge.
	phaseMatch   time.Duration
	phasePrepass time.Duration
	phaseAdmit   time.Duration

	// groupBuf/contribBuf/headsBuf/parentsBuf are reused across emissions
	// so emit allocates no per-match container slices (AggState keys copy
	// what they keep; stored facts retain only the per-head Args slices,
	// which stay freshly allocated).
	groupBuf   []term.Value
	contribBuf []term.Value
	headsBuf   []ast.Fact
	parentsBuf []*core.FactMeta
}

// task is one scheduled firing: rule ri with its pos-th body atom pinned
// to delta fact m. Firings of a CSE group carry the group id and the
// index of the group's leader task for this delta: the leader enumerates
// the shared body once, followers replay from its log.
type task struct {
	m    *core.FactMeta
	ri   int
	pos  int
	g    int // CSE group, -1 when ungrouped
	lead int // task index of the group leader for this delta, -1 ungrouped
}

// cseSeenKey identifies "this delta's firings of this group" while tasks
// are scheduled: the first one becomes the leader.
type cseSeenKey struct {
	m *core.FactMeta
	g int
}

// matchWorker is the per-goroutine match state: a snapshot Matcher (pure
// reads against the frozen epoch), private per-rule Bindings (plus one
// per CSE group body), and the (pred, mask) probes that had to scan for
// want of an index — promoted to real indexes at the batch boundary.
type matchWorker struct {
	mt        *eval.Matcher
	bindings  []*eval.Binding
	gbindings []*eval.Binding
	missed    []indexMiss
}

type indexMiss struct {
	pred string
	mask uint32
}

// NewEngine derives fresh run-time state (database, interner, strategy,
// bindings, queue) over the shared compiled artifact.
func (c *Compiled) NewEngine() *Engine {
	e := &Engine{
		c:     c,
		db:    storage.NewDatabase(),
		subst: eval.NewNullSubst(),
		meter: core.NewMeter(c.budget),
	}
	if c.opts.NewPolicy != nil {
		e.strat = c.opts.NewPolicy(c.res)
	} else {
		full := core.NewStrategy(c.res)
		full.DisableSummary = c.opts.DisableSummary
		e.strat = full
	}
	if c.opts.DisableDynamicIndex {
		e.db.DisableIndexes()
	}
	e.nworkers = c.opts.Parallelism
	if e.nworkers <= 0 {
		e.nworkers = runtime.GOMAXPROCS(0)
	}
	e.shards = c.opts.Shards
	if e.shards <= 0 {
		e.shards = runtime.GOMAXPROCS(0)
		if e.shards > 8 {
			e.shards = 8
		}
	}
	e.db.SetShards(e.shards)
	e.shards = e.db.Shards() // rounded to a power of two
	e.meter.SetShards(e.shards)
	e.mt = &eval.Matcher{DB: e.db}
	if !c.opts.DisablePlanner {
		e.pl = planner.New(planner.FrozenCatalog{DB: e.db})
	}
	e.planSeen = make(map[[2]int][]eval.Step)
	e.cseSeen = make(map[cseSeenKey]int)
	for _, cr := range c.rules {
		e.bindings = append(e.bindings, eval.NewBinding(cr))
		if cr.Rule.Aggregate != nil {
			e.aggs = append(e.aggs, eval.NewAggState(cr.Rule.Aggregate.Func, e.db.Interner()))
		} else {
			e.aggs = append(e.aggs, nil)
		}
	}
	return e
}

// New compiles prog and prepares an engine over it in one step. To share
// the compilation across runs, use Compile once and Compiled.NewEngine
// per run.
func New(prog *ast.Program, opts Options) (*Engine, error) {
	c, err := Compile(prog, opts)
	if err != nil {
		return nil, err
	}
	return c.NewEngine(), nil
}

// LoadFact admits one EDB fact (before or during Run).
func (e *Engine) LoadFact(f ast.Fact) {
	rel := e.db.Rel(f.Pred, len(f.Args))
	if rel.Contains(f) {
		return
	}
	e.db.InsertEDB(f, e.strat)
	m := rel.At(rel.Len() - 1)
	e.queue = append(e.queue, m)
	e.meter.Charge()
	e.insertTagTwin(f)
}

// DB exposes the engine's database (record-manager loads, diagnostics).
func (e *Engine) DB() *storage.Database { return e.db }

// LoadFacts admits one chunk of EDB facts — the streaming-load entry
// point: record managers feed their cursors through it chunk by chunk
// (duplicates are skipped, so re-feeding after an interrupted load is
// idempotent). Loaded facts queue as deltas for the next batch drain.
func (e *Engine) LoadFacts(facts []ast.Fact) {
	for _, f := range facts {
		e.LoadFact(f)
	}
}

// LoadProgramFacts admits the compiled program's inline facts — the same
// facts Run loads first. It is idempotent; callers streaming bound
// inputs before Run use it to establish the canonical admission order
// (program facts, then bound inputs, then staged facts).
func (e *Engine) LoadProgramFacts() {
	for _, f := range e.c.prog.Facts {
		e.LoadFact(f)
	}
}

// LoadChunk is LoadFacts with the load path's crashes converted into a
// typed error: a panic mid-chunk (storage fault) leaves the prefix
// admitted and the store consistent, and since loading skips duplicates,
// re-feeding the same chunk resumes exactly where the crash struck.
func (e *Engine) LoadChunk(facts []ast.Fact) (err error) {
	defer func() {
		if r := recover(); r != nil { //vadalint:panicguard load-path crash isolation: convert storage faults into typed resumable errors
			err = &core.PanicError{Engine: "chase load", Value: r, Stack: debug.Stack()}
		}
	}()
	e.LoadFacts(facts)
	return nil
}

// SetBudget replaces the derivation budget for subsequent admissions —
// how a session resumes after an ErrBudget partial result. Only safe
// between Run calls (no batch in flight).
func (e *Engine) SetBudget(n int) { e.meter.SetLimit(n) }

// Quiesced reports whether the chase has reached its fixpoint: no delta
// is waiting in the queue. After an interrupted run it distinguishes "the
// answer is complete" from "a resume would derive more".
func (e *Engine) Quiesced() bool { return len(e.queue) == 0 }

// Output returns pred's facts with the program's @post directives applied
// against the engine's current database. Unlike Result.Output it is
// readable mid-run — what a partial result reports after an interrupted
// chase.
func (e *Engine) Output(pred string) []ast.Fact {
	return eval.ApplyPost(e.db.FactsOf(pred), e.c.prog.Posts, pred, e.subst)
}

// Derivations reports admitted (inserted) facts so far, EDB included.
func (e *Engine) Derivations() int { return e.meter.Used() }

// insertTagTwin mirrors an admitted fact of a tagged predicate into its
// tag twin, with labelled nulls replaced by their canonical ground keys
// (dynamic harmful-join elimination; see rewrite.EliminateHarmfulJoinsDynamic).
func (e *Engine) insertTagTwin(f ast.Fact) {
	twin, ok := e.c.rw.TagPreds[f.Pred]
	if !ok {
		return
	}
	tf := e.tagTwinFact(twin, f)
	rel := e.db.Rel(twin, len(tf.Args))
	if rel.Contains(tf) {
		return
	}
	m := e.strat.NewEDBFact(tf)
	rel.Insert(m)
	e.queue = append(e.queue, m)
}

// tagTwinFact renders the tag-twin image of f: labelled nulls replaced by
// their canonical ground keys.
func (e *Engine) tagTwinFact(twin string, f ast.Fact) ast.Fact {
	args := make([]term.Value, len(f.Args))
	for i, v := range f.Args {
		if v.IsNull() {
			args[i] = term.String("\x00" + e.db.Nulls.KeyOf(v))
		} else {
			args[i] = v
		}
	}
	return ast.Fact{Pred: twin, Args: args}
}

// maxBatchDeltas caps how many delta facts one batch drains: candidate
// facts are buffered until the serial admit phase, so the cap bounds the
// buffering (and the first-batch index-miss scans) without affecting the
// fixpoint.
const maxBatchDeltas = 2048

// Run executes the chase to fixpoint and returns the result. Cancelling
// ctx aborts the loop between delta batches (and stops in-flight match
// workers between tasks).
func (e *Engine) Run(ctx context.Context, edb []ast.Fact) (*Result, error) {
	if err := e.loadGuarded(edb); err != nil {
		return nil, err
	}
	for len(e.queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := e.step(ctx); err != nil {
			return nil, err
		}
	}
	return &Result{
		DB:          e.db,
		Program:     e.c.prog,
		Analysis:    e.c.res,
		Strategy:    e.strat,
		Subst:       e.subst,
		Rewrite:     e.c.rw,
		Derivations: e.meter.Used(),
		posts:       e.c.prog.Posts,
	}, nil
}

// loadGuarded runs Run's initial loads under the same crash isolation as
// LoadChunk: both loads skip duplicates, so a resumed Run re-feeding them
// admits only what the crash cut off.
func (e *Engine) loadGuarded(edb []ast.Fact) (err error) {
	defer func() {
		if r := recover(); r != nil { //vadalint:panicguard load-path crash isolation: convert storage faults into typed resumable errors
			err = &core.PanicError{Engine: "chase load", Value: r, Stack: debug.Stack()}
		}
	}()
	e.LoadProgramFacts()
	e.LoadFacts(edb)
	return nil
}

// step drains one delta batch: it schedules every (rule, pinned atom,
// delta) firing of the batch as a task, matches the parallel-safe tasks
// against a frozen storage epoch (fanned out to the worker pool), then
// admits all candidates serially in task order. Tasks of rules whose
// matching mints nulls run inline during the admit phase, at their
// canonical position. New facts enqueue for the next batch.
//
// On ANY abnormal exit — cancellation, a captured match error, a
// recovered crash, budget exhaustion or candidate-buffer overflow — the
// whole batch is put back at the head of the queue: a resumed Run
// re-fires it, which is idempotent (duplicates are eliminated, aggregate
// updates retain per-contributor maxima, Skolem minting is memoized), so
// no delta's derivations are ever lost. On candidate-buffer overflow (a
// runaway batch) nothing of the batch is admitted, keeping the database
// state at the error deterministic.
func (e *Engine) step(ctx context.Context) (err error) {
	n := len(e.queue)
	if n > maxBatchDeltas {
		n = maxBatchDeltas
	}
	batch := e.queue[:n:n]
	e.queue = e.queue[n:]
	e.tasks = e.tasks[:0]
	clear(e.cseSeen)
	for _, m := range batch {
		if m.Retracted {
			continue // superseded aggregate intermediate, no longer a fact
		}
		for _, rp := range e.c.byPred[m.Fact.Pred] {
			t := task{m: m, ri: rp[0], pos: rp[1], g: -1, lead: -1}
			if gid, ok := e.c.groupOf[rp]; ok {
				t.g = gid
				key := cseSeenKey{m: m, g: gid}
				if li, seen := e.cseSeen[key]; seen {
					t.lead = li
				} else {
					t.lead = len(e.tasks)
					e.cseSeen[key] = t.lead
				}
			}
			e.tasks = append(e.tasks, t)
		}
	}
	if len(e.tasks) == 0 {
		return nil
	}
	requeue := func() {
		e.meter.ResetPending()
		e.queue = append(batch, e.queue...)
	}
	// Crash isolation for the serial phases (Freeze, planning, admission):
	// a panic here — a storage fault mid-admission, say — leaves the store
	// consistent (mutations are per-fact atomic), so requeueing the batch
	// keeps the session resumable and the crash surfaces as a positioned
	// engine error instead of killing the process.
	defer func() {
		if r := recover(); r != nil { //vadalint:panicguard serial chase phases: requeue the batch and surface a positioned resumable error
			requeue()
			err = &core.PanicError{Engine: "chase", Rule: e.firing, Value: r, Stack: debug.Stack()}
		}
	}()
	e.overflow.Store(false)
	e.panicErr, e.panicTi, e.firing = nil, 0, nil
	e.db.Freeze()
	e.planBatch()
	tMatch := time.Now()
	e.matchBatch(ctx)
	e.phaseMatch += time.Since(tMatch)
	if pe := e.batchPanic(); pe != nil {
		// A match worker crashed: nothing of the batch was admitted
		// (admission is skipped wholesale), so requeueing it keeps the
		// database exactly at the previous batch's state for every worker
		// count, and a resumed Run re-matches the whole batch.
		requeue()
		return pe
	}
	if e.overflow.Load() {
		// The batch buffered more candidates than the meter's runaway
		// ceiling allows. Nothing was admitted, so the database at the
		// error is the previous batch's state for every worker count
		// (which worker observed the crossing is scheduling-dependent;
		// what was admitted is not). The batch goes back on the queue: a
		// raised budget resumes it.
		requeue()
		return fmt.Errorf("%w (batch candidate buffer overflow)", ErrBudget)
	}
	// Partitioned admission pre-pass: canonical orders, the flattened
	// candidate array and the sharded dedup verdicts are all computed here,
	// between the read-only match phase and the serial merge. A crash in it
	// (the storage.merge fault seam, a shard-goroutine panic) unwinds
	// through the recover above with nothing admitted.
	tPre := time.Now()
	e.prepassBatch()
	e.phasePrepass += time.Since(tPre)
	tAdmit := time.Now()
	err = e.admitBatch(ctx)
	e.phaseAdmit += time.Since(tAdmit)
	if err != nil {
		// Whatever interrupted admission — cancellation, budget
		// exhaustion, a captured match error, an inconsistency — the
		// partially admitted batch is restored wholesale; re-firing the
		// admitted prefix is idempotent.
		requeue()
		return err
	}
	e.meter.ResetPending()
	e.promoteMisses()
	return nil
}

// batchPanic returns the crash latched for the current batch, nil if the
// match phase completed cleanly.
func (e *Engine) batchPanic() *core.PanicError {
	e.panicMu.Lock()
	defer e.panicMu.Unlock()
	return e.panicErr
}

// notePanic latches a recovered match-task crash, keeping the one with
// the smallest task index so the surfaced error is canonical.
func (e *Engine) notePanic(ti int, r any) {
	e.panicMu.Lock()
	defer e.panicMu.Unlock()
	if e.panicErr == nil || ti < e.panicTi {
		e.panicErr = &core.PanicError{
			Engine: "chase",
			Rule:   e.c.rules[e.tasks[ti].ri].Rule,
			Value:  r,
			Stack:  debug.Stack(),
		}
		e.panicTi = ti
	}
}

// planBatch derives (or revalidates) the schedule of every distinct
// firing shape in the batch against the statistics snapshot the Freeze
// just captured, presizing planned probe indexes while mutation is still
// safe. It runs serially between Freeze and worker fan-out, so workers
// read batchSteps lock-free and every worker plans against the same
// numbers it matches against. With the planner disabled batchSteps stays
// nil and every firing runs its static schedule.
func (e *Engine) planBatch() {
	if cap(e.batchSteps) < len(e.tasks) {
		e.batchSteps = make([][]eval.Step, len(e.tasks))
	}
	e.batchSteps = e.batchSteps[:len(e.tasks)]
	for ti := range e.batchSteps {
		e.batchSteps[ti] = nil
	}
	if e.pl == nil {
		return
	}
	clear(e.planSeen)
	for ti := range e.tasks {
		t := &e.tasks[ti]
		if !e.c.parSafe[t.ri] || (t.lead >= 0 && t.lead != ti) {
			continue // inline firings keep the static schedule; followers share
		}
		key := [2]int{t.ri, t.pos}
		cr := e.c.rules[t.ri]
		if t.lead == ti {
			key = [2]int{-1 - t.g, t.pos}
			cr = e.c.groups[t.g].body
		}
		steps, ok := e.planSeen[key]
		if !ok {
			plan := e.pl.PlanFor(cr, t.pos)
			for _, pr := range plan.Probes {
				if rel := e.db.Lookup(pr.Pred); rel != nil {
					rel.EnsureIndexSized(pr.Mask, pr.Keys)
				}
			}
			steps = plan.Steps
			e.planSeen[key] = steps
		}
		e.batchSteps[ti] = steps
	}
}

// matchBatch runs the read-only match phase: the batch's parallel-safe
// tasks are matched against the epoch step just froze by nworkers
// goroutines pulling task indexes off a shared counter. With one worker
// the phase runs inline on the calling goroutine — same algorithm, no
// pool.
func (e *Engine) matchBatch(ctx context.Context) {
	if cap(e.results) < len(e.tasks) {
		e.results = make([]eval.BindingLog, len(e.tasks))
	}
	e.results = e.results[:len(e.tasks)]
	// Small batches are not worth goroutine fan-out: run them inline. The
	// threshold depends only on the task count, never on the worker count
	// or scheduling, so determinism is unaffected.
	const fanoutThreshold = 64
	nw := e.nworkers
	if nw > len(e.tasks) {
		nw = len(e.tasks)
	}
	if len(e.tasks) < fanoutThreshold {
		nw = 1
	}
	e.ensureWorkers(nw)
	if nw <= 1 {
		w := e.workers[0]
		for ti := range e.tasks {
			if ctx.Err() != nil {
				return
			}
			e.matchTask(w, ti)
		}
		return
	}
	// Workers claim fixed-size chunks of the task array off one atomic
	// cursor: cheap, locality-friendly, and the assignment of tasks to
	// workers is irrelevant to the result (results land in per-task slots).
	const chunk = 16
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < nw; k++ {
		w := e.workers[k]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(chunk)) - chunk
				if start >= len(e.tasks) || ctx.Err() != nil {
					return
				}
				end := start + chunk
				if end > len(e.tasks) {
					end = len(e.tasks)
				}
				for ti := start; ti < end; ti++ {
					e.matchTask(w, ti)
				}
			}
		}()
	}
	wg.Wait()
}

// matchTask enumerates the matches of one firing against the frozen epoch
// and captures each complete binding into the task's log. Budget pressure
// is metered atomically: a batch that buffers far more candidates than the
// derivation budget aborts instead of growing without bound.
//
// A panicking task never kills the process (worker isolation): the crash
// is recovered here, latched in canonical task order, and step turns it
// into a positioned engine error with the whole batch requeued.
func (e *Engine) matchTask(w *matchWorker, ti int) {
	defer func() {
		if r := recover(); r != nil { //vadalint:panicguard worker panic isolation: latch the crash, step requeues the batch
			e.notePanic(ti, r)
		}
	}()
	t := &e.tasks[ti]
	if !e.c.parSafe[t.ri] {
		return // evaluated inline on the serial admit path
	}
	if t.lead >= 0 && t.lead != ti {
		return // follower: replays the leader's shared body log at admit
	}
	cr := e.c.rules[t.ri]
	b := w.bindings[t.ri]
	reserve := 1
	if t.lead == ti {
		// Leader of a CSE group: enumerate the shared body once; every
		// member admits each candidate, so reserve for all of them.
		cr = e.c.groups[t.g].body
		b = w.gbindings[t.g]
		reserve = len(e.c.groups[t.g].members)
	}
	steps := e.batchSteps[ti]
	if steps == nil {
		steps = cr.Schedule(t.pos)
	}
	lg := &e.results[ti]
	lg.Reset(cr)
	// Prepared tasks also materialize, intern and hash their head facts
	// here on the worker — the serial merge then only probes and appends.
	// The nil substitution is sound because preparation is disabled
	// program-wide when any EGD exists.
	prep := t.g < 0 && e.c.prepared[t.ri]
	if prep {
		lg.PrepareHeads(cr)
	}
	if err := siteMatch.Check(); err != nil {
		rule := e.c.rules[t.ri].Rule
		lg.Err = fmt.Errorf("chase: %d:%d: rule %d: %w", rule.Line, rule.Col, rule.ID, err)
		return
	}
	if err := w.mt.MatchPinnedSteps(cr, t.pos, t.m, steps, b, func(b *eval.Binding) error {
		if !e.meter.Reserve(reserve) {
			e.overflow.Store(true)
			return errBatchOverflow
		}
		lg.Capture(b)
		if prep {
			lg.CaptureHeads(cr, b, nil)
		}
		return nil
	}); err != nil {
		lg.Err = err
	}
}

// errBatchOverflow aborts a task's enumeration when candidate buffering
// overran the meter's runaway ceiling; step discards the whole batch and
// surfaces ErrBudget, so this sentinel never escapes the engine.
var errBatchOverflow = errors.New("chase: batch candidate buffer overflow")

// prepassBatch prepares the batch's serial merge. It runs serially,
// between the match phase and admission:
//
//  1. Every log-owning task's canonical admission order is computed into
//     perms (followers reuse their leader's).
//  2. The candidates of prepared tasks are flattened into one array — one
//     slot per (task, canonical entry, head), in exactly the order
//     admitBatch consumes them, target relations created here while
//     mutation is serial. Unprepared entries and arity-drifted heads get
//     placeholder slots (Rel nil).
//  3. storage.RunPrepass computes sharded dedup verdicts in parallel.
//
// Verdicts only ever skip work the merge would redo identically, so this
// phase is invisible to the final database for every shard count.
func (e *Engine) prepassBatch() {
	if cap(e.perms) < len(e.tasks) {
		perms := make([][]int32, len(e.tasks))
		copy(perms, e.perms)
		e.perms = perms
	}
	e.perms = e.perms[:len(e.tasks)]
	if cap(e.candStart) < len(e.tasks) {
		e.candStart = make([]int, len(e.tasks))
	}
	e.candStart = e.candStart[:len(e.tasks)]
	e.cands = e.cands[:0]
	for ti := range e.tasks {
		t := &e.tasks[ti]
		e.candStart[ti] = -1
		if !e.c.parSafe[t.ri] || (t.lead >= 0 && t.lead != ti) {
			e.perms[ti] = e.perms[ti][:0]
			continue
		}
		lg := &e.results[ti]
		e.perms[ti] = lg.CanonicalOrder(e.perms[ti])
		if t.g >= 0 || !e.c.prepared[t.ri] {
			continue
		}
		cr := e.c.rules[t.ri]
		nh := len(cr.Heads)
		e.candStart[ti] = len(e.cands)
		for _, i := range e.perms[ti] {
			if !lg.EntryPrepared(int(i)) {
				for hi := 0; hi < nh; hi++ {
					e.cands = append(e.cands, storage.PrepassCand{})
				}
				continue
			}
			for hi := 0; hi < nh; hi++ {
				f, row, h := lg.PreparedHead(int(i), hi)
				rel := e.db.Rel(f.Pred, len(f.Args))
				if rel.Arity() != len(row) {
					// Arity drifted since capture (restride): the merge
					// admits this head through the classic path.
					e.cands = append(e.cands, storage.PrepassCand{})
					continue
				}
				e.cands = append(e.cands, storage.PrepassCand{
					Rel: rel, Row: row, Hash: h, Gen: rel.RetractGen(),
				})
			}
		}
	}
	n := len(e.cands)
	if n == 0 {
		return
	}
	if cap(e.candVerdict) < n {
		e.candVerdict = make([]uint8, n)
		e.candDupOf = make([]int32, n)
		e.candInserted = make([]bool, n)
	}
	e.candVerdict = e.candVerdict[:n]
	e.candDupOf = e.candDupOf[:n]
	e.candInserted = e.candInserted[:n]
	for i := range e.candVerdict {
		e.candVerdict[i] = storage.PrepassUnknown
		e.candDupOf[i] = -1
		e.candInserted[i] = false
	}
	storage.RunPrepass(e.cands, e.candVerdict, e.candDupOf, e.shards, e.meter)
}

// admitBatch replays the batch's candidates in canonical (task, match)
// order through the serial emit path: aggregation state, EGD unification,
// existential instantiation and admission all happen here, on the calling
// goroutine, so the database evolves identically for every worker count.
// Within a task, candidates are admitted in the canonical order of their
// matched source rows (eval.BindingLog.CanonicalOrder), which depends
// only on what matched — never on the join order that found it — so the
// database also evolves identically for every plan choice. A task's
// captured error surfaces after its captured candidates — deterministic,
// since the canonical order is.
func (e *Engine) admitBatch(ctx context.Context) error {
	for ti := range e.tasks {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := &e.tasks[ti]
		// A delta superseded by an earlier task of this very batch (its
		// aggregate intermediate was retracted) no longer fires — the same
		// pop-time check the serial engine performed; its replacement fact
		// is already queued.
		if t.m.Retracted {
			continue
		}
		cr := e.c.rules[t.ri]
		e.firing = cr.Rule // positions a crash recovered by step
		if !e.c.parSafe[t.ri] {
			if err := e.fire(t.ri, t.pos, t.m); err != nil {
				return err
			}
			continue
		}
		lg := &e.results[ti]
		perm := e.perms[ti]
		if t.lead >= 0 && t.lead != ti {
			lg = &e.results[t.lead]
			perm = e.perms[t.lead]
			e.shared++
		}
		if e.candStart[ti] >= 0 {
			if err := e.mergeTask(ti, cr, lg, perm); err != nil {
				return err
			}
			if lg.Err != nil {
				return lg.Err
			}
			continue
		}
		b := e.bindings[t.ri]
		ri := t.ri
		var replayEmit func(b *eval.Binding) error
		if t.g >= 0 {
			replayEmit = func(b *eval.Binding) error { return e.emit(ri, cr, b) }
		}
		for _, i := range perm {
			lg.Restore(int(i), e.db.Interner(), b)
			if t.g >= 0 {
				// Group member: the log holds the shared body match; replay
				// this rule's private assignments and conditions, then emit.
				if err := e.mt.Replay(cr, e.c.postSteps[ri], b, replayEmit); err != nil {
					return err
				}
				continue
			}
			if err := e.emit(ri, cr, b); err != nil {
				return err
			}
		}
		if lg.Err != nil {
			return lg.Err
		}
	}
	e.firing = nil
	return nil
}

// mergeTask admits one prepared task's candidates in canonical order — the
// serial merge of partitioned admission. Per candidate it consumes the
// pre-pass verdict: duplicate verdicts skip outright while the relation's
// retraction generation still matches the candidate's snapshot (a
// mid-merge retraction by a serial-path task invalidates them); everything
// else takes an O(1) re-probe against live state, so the decision sequence
// is exactly the serial engine's. Fresh candidates run the same
// Derive/CheckTermination/TryCharge pipeline as admit, then append via
// InsertPrepared — no re-interning, no re-hashing. Entries whose heads did
// not prepare fall back to the classic Restore+emit path.
func (e *Engine) mergeTask(ti int, cr *eval.CompiledRule, lg *eval.BindingLog, perm []int32) error {
	t := &e.tasks[ti]
	nh := len(cr.Heads)
	base := e.candStart[ti]
	shardMask := uint64(e.shards - 1)
	for k, i := range perm {
		if !lg.EntryPrepared(int(i)) {
			b := e.bindings[t.ri]
			lg.Restore(int(i), e.db.Interner(), b)
			if err := e.emit(t.ri, cr, b); err != nil {
				return err
			}
			continue
		}
		var parents []*core.FactMeta
		for hi := 0; hi < nh; hi++ {
			ci := base + k*nh + hi
			c := &e.cands[ci]
			if c.Rel == nil {
				// Arity-drifted head: classic admission of the prepared fact.
				f, _, _ := lg.PreparedHead(int(i), hi)
				if parents == nil {
					parents = lg.ParentsAppend(cr, int(i), e.parentsBuf[:0])
					e.parentsBuf = parents
				}
				if _, err := e.admit(f, cr.Rule.ID, parents); err != nil {
					return err
				}
				continue
			}
			if c.Rel.RetractGen() == c.Gen {
				// Duplicate verdicts are exact for pre-batch state and for
				// earlier inserted candidates; restride preserves fact
				// equality, so they stay valid across arity drift too.
				v := e.candVerdict[ci]
				if v == storage.PrepassDupStored ||
					(v == storage.PrepassDupBatch && e.candInserted[e.candDupOf[ci]]) {
					continue
				}
			}
			if c.Rel.Arity() != len(c.Row) {
				// The relation restrided mid-merge: the prepared row no
				// longer matches its stride — admit classically.
				f, _, _ := lg.PreparedHead(int(i), hi)
				if parents == nil {
					parents = lg.ParentsAppend(cr, int(i), e.parentsBuf[:0])
					e.parentsBuf = parents
				}
				if _, err := e.admit(f, cr.Rule.ID, parents); err != nil {
					return err
				}
				continue
			}
			if c.Rel.ContainsRowHash(c.Row, c.Hash) {
				continue
			}
			f, _, _ := lg.PreparedHead(int(i), hi)
			if parents == nil {
				parents = lg.ParentsAppend(cr, int(i), e.parentsBuf[:0])
				e.parentsBuf = parents
			}
			m := e.strat.Derive(f, cr.Rule.ID, parents)
			if !e.strat.CheckTermination(m) {
				continue
			}
			if !e.meter.TryCharge() {
				return fmt.Errorf("%w (%d facts)", ErrBudget, e.meter.Used())
			}
			c.Rel.InsertPrepared(m, c.Row, c.Hash)
			e.candInserted[ci] = true
			e.meter.NoteShardAdmit(int(c.Hash & shardMask))
			e.queue = append(e.queue, m)
			e.insertTagTwin(f)
		}
	}
	return nil
}

// ensureWorkers grows the worker pool to n workers, each with its own
// snapshot Matcher and per-rule Bindings.
func (e *Engine) ensureWorkers(n int) {
	if n < 1 {
		n = 1
	}
	for len(e.workers) < n {
		w := &matchWorker{mt: &eval.Matcher{DB: e.db, Snapshot: true}}
		w.mt.OnIndexMiss = func(pred string, mask uint32) {
			w.missed = append(w.missed, indexMiss{pred: pred, mask: mask})
		}
		for _, cr := range e.c.rules {
			w.bindings = append(w.bindings, eval.NewBinding(cr))
		}
		for gi := range e.c.groups {
			w.gbindings = append(w.gbindings, eval.NewBinding(e.c.groups[gi].body))
		}
		e.workers = append(e.workers, w)
	}
}

// promoteMisses promotes every (pred, mask) a snapshot probe had to scan
// this batch, so subsequent batches probe them hashed — the slot machine
// join's lazy indexing, deferred to batch boundaries where mutation is
// safe. Promotion goes through Relation.PromoteIndex, which records the
// scan in the mask's usage counters and declines to rebuild a cold index
// (one that was built before and evicted without ever serving a probe),
// so never-paying masks stop being re-promoted every epoch.
func (e *Engine) promoteMisses() {
	for _, w := range e.workers {
		for _, ms := range w.missed {
			if rel := e.db.Lookup(ms.pred); rel != nil {
				rel.PromoteIndex(ms.mask, 0)
			}
		}
		w.missed = w.missed[:0]
	}
}

// PlannerStats reports, for diagnostics and tests: how many plans the
// cost-based planner derived and how many were drift-triggered
// recomputations (0, 0 with the planner disabled), and how many firings
// were served from a CSE-shared body enumeration.
func (e *Engine) PlannerStats() (derives, replans, sharedFirings int) {
	if e.pl != nil {
		derives, replans = e.pl.Derives(), e.pl.Replans()
	}
	return derives, replans, e.shared
}

// PhaseStats reports cumulative wall time spent in the three phases of the
// delta-batched loop: parallel match, sharded dedup pre-pass, and serial
// admission (the merge). The split shows whether a workload is
// admission-bound — the case partitioned admission targets.
func (e *Engine) PhaseStats() (match, prepass, admit time.Duration) {
	return e.phaseMatch, e.phasePrepass, e.phaseAdmit
}

// Shards returns the resolved duplicate-table shard count the engine runs
// with.
func (e *Engine) Shards() int { return e.shards }

// Meter exposes the engine's derivation meter (per-shard pre-pass
// statistics, budget usage) for diagnostics and tests.
func (e *Engine) Meter() *core.Meter { return e.meter }

// fire applies rule ri with its pos-th body atom pinned to delta fact m,
// matching and emitting fused on the calling goroutine (the serial path
// for rules whose matching mints nulls).
func (e *Engine) fire(ri, pos int, m *core.FactMeta) error {
	cr := e.c.rules[ri]
	b := e.bindings[ri]
	return e.mt.MatchPinned(cr, pos, m, b, func(b *eval.Binding) error {
		return e.emit(ri, cr, b)
	})
}

func (e *Engine) emit(ri int, cr *eval.CompiledRule, b *eval.Binding) error {
	rule := cr.Rule
	switch {
	case rule.IsConstraint:
		return fmt.Errorf("%w: constraint fired: %s", ErrInconsistent, rule.String())
	case rule.EGD != nil:
		l := b.Val(cr.VarSlot[rule.EGD.Left])
		r := b.Val(cr.VarSlot[rule.EGD.Right])
		if err := e.subst.Unify(l, r); err != nil {
			return fmt.Errorf("%w: %v (egd %s)", ErrInconsistent, err, rule.String())
		}
		return nil
	}
	if cr.Agg != nil {
		// The group/contrib tuples are assembled in engine-owned buffers
		// reused across firings: AggState keys copy what they retain, so
		// nothing here escapes the call.
		group := e.groupBuf[:0]
		for _, s := range cr.Agg.GroupSlots {
			group = append(group, b.Val(s))
		}
		e.groupBuf = group
		contrib := e.contribBuf[:0]
		for _, s := range cr.Agg.ContribSlots {
			contrib = append(contrib, b.Val(s))
		}
		e.contribBuf = contrib
		var x term.Value
		if cr.Agg.ArgSlot >= 0 {
			x = b.Val(cr.Agg.ArgSlot)
		} else {
			var err error
			x, err = cr.Agg.Arg.Eval(b.Env(cr, cr.Agg.ArgDeps))
			if err != nil {
				return err
			}
		}
		agg, improved, err := e.aggs[ri].Update(group, contrib, x)
		if err != nil {
			return err
		}
		if !improved && cr.Agg.SkipSafe {
			// The group's aggregate did not change and the post-aggregate
			// conditions depend only on (result, group): this match
			// evaluates exactly like the one that already emitted, so
			// there is nothing new to emit. Unsafe rules (conditions over
			// other body variables, existential heads) fall through to the
			// full path; supersession makes re-emission idempotent.
			return nil
		}
		b.Set(cr.Agg.ResultSlot, agg)
		for i := range e.c.postAgg[ri] {
			c := &e.c.postAgg[ri][i]
			if c.Fast {
				if !c.EvalFast(b) {
					return nil
				}
				continue
			}
			// The aggregate result reaches the environment through its
			// slot (set above), so the dependency-restricted env suffices.
			ok, err := ast.EvalCondition(c.Cond, b.Env(cr, c.Deps))
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}
	e.mt.InstantiateExistentials(cr, b)
	heads, err := eval.HeadFactsAppend(cr, b, e.subst, e.headsBuf[:0])
	e.headsBuf = heads
	if err != nil {
		return err
	}
	parents := eval.WardFirstParentsAppend(cr, b, e.parentsBuf[:0])
	e.parentsBuf = parents
	for hi, hf := range heads {
		// Existential aggregate heads mint per-binding nulls: each binding
		// is its own fact, not an improvement of the previous one, so they
		// take the plain admission path (no supersession).
		if cr.Agg != nil && len(cr.Exists) == 0 {
			if err := e.admitAggregate(ri, hi, hf, rule.ID, parents); err != nil {
				return err
			}
			continue
		}
		if _, err := e.admit(hf, rule.ID, parents); err != nil {
			return err
		}
	}
	return nil
}

// admitAggregate admits an aggregate-head fact with supersession: when the
// rule has previously admitted a fact for the current group (and this head
// index), the improved fact replaces it in place — same FactMeta, same
// forest roots and provenance — instead of accumulating next to the
// superseded intermediate. Replacements count against the derivation
// budget (they are chase steps) and re-enter the queue so dependent rules
// observe the improved value.
func (e *Engine) admitAggregate(ri, hi int, f ast.Fact, ruleID int, parents []*core.FactMeta) error {
	st := e.aggs[ri]
	prev, ok := st.LastEmitted(hi)
	if !ok {
		m, err := e.admit(f, ruleID, parents)
		if err != nil {
			return err
		}
		if m != nil {
			rel := e.db.Rel(f.Pred, len(f.Args))
			st.RecordEmitted(hi, m, rel.Len()-1)
		}
		return nil
	}
	old := prev.Meta.Fact
	rel := e.db.Rel(f.Pred, len(f.Args))
	switch rel.Replace(prev.Row, f) {
	case storage.ReplaceUnchanged:
		return nil // e.g. the aggregate result does not occur in the head
	case storage.ReplaceRetracted:
		// The improved value already exists as an independently stored
		// fact; the superseded intermediate was retracted and the group is
		// represented by that fact. The next improvement starts fresh.
		st.RecordEmitted(hi, nil, 0)
		e.noteSuperseded(old)
		return nil
	default: // ReplaceDone
		if !e.meter.TryCharge() {
			return fmt.Errorf("%w (%d facts)", ErrBudget, e.meter.Used())
		}
		e.queue = append(e.queue, prev.Meta)
		e.noteSuperseded(old)
		e.replaceTagTwin(old, f)
		return nil
	}
}

// noteSuperseded tells fact-memorizing termination policies that old is no
// longer stored.
func (e *Engine) noteSuperseded(old ast.Fact) {
	if obs, ok := e.strat.(core.SupersessionObserver); ok {
		obs.NoteSuperseded(old)
	}
}

// admit runs the set-semantics duplicate check, the termination strategy,
// and on success stores the fact and schedules it. It returns the stored
// metadata, nil when the fact was rejected.
func (e *Engine) admit(f ast.Fact, ruleID int, parents []*core.FactMeta) (*core.FactMeta, error) {
	rel := e.db.Rel(f.Pred, len(f.Args))
	if rel.Contains(f) {
		return nil, nil
	}
	m := e.strat.Derive(f, ruleID, parents)
	if !e.strat.CheckTermination(m) {
		return nil, nil
	}
	if !e.meter.TryCharge() {
		return nil, fmt.Errorf("%w (%d facts)", ErrBudget, e.meter.Used())
	}
	rel.Insert(m)
	e.queue = append(e.queue, m)
	e.insertTagTwin(f)
	return m, nil
}

// replaceTagTwin mirrors an aggregate supersession into the tag twin of a
// tagged predicate: the twin of the superseded fact is replaced by the
// twin of the improved one.
func (e *Engine) replaceTagTwin(old, f ast.Fact) {
	twin, ok := e.c.rw.TagPreds[f.Pred]
	if !ok {
		return
	}
	oldTwin := e.tagTwinFact(twin, old)
	newTwin := e.tagTwinFact(twin, f)
	rel := e.db.Rel(twin, len(newTwin.Args))
	idx, found := rel.FindExact(oldTwin)
	if !found {
		e.insertTagTwin(f)
		return
	}
	if rel.Replace(idx, newTwin) == storage.ReplaceDone {
		e.queue = append(e.queue, rel.At(idx))
	}
}

// Run is the convenience one-shot entry point.
func Run(ctx context.Context, prog *ast.Program, edb []ast.Fact, opts Options) (*Result, error) {
	e, err := New(prog, opts)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, edb)
}
