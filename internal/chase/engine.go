// Package chase implements the reference reasoning engine: a breadth-first
// chase (Algorithm 2 of the paper) driven by the termination strategy of
// internal/core, over the compiled rules and indexed store of
// internal/eval and internal/storage. The streaming pipeline engine of
// internal/pipeline produces the same answers; this engine is the
// readable, correctness-first counterpart used for cross-validation.
package chase

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/term"
)

// ErrInconsistent is returned (wrapped) when a negative constraint fires
// or an EGD equates two distinct constants.
var ErrInconsistent = errors.New("chase: knowledge base is inconsistent")

// ErrBudget is returned when MaxDerivations is exceeded; with the
// termination strategy enabled this indicates a genuinely enormous answer,
// with it disabled it is the expected outcome on non-terminating programs.
var ErrBudget = errors.New("chase: derivation budget exceeded")

// Options configures a reasoning run.
type Options struct {
	// Rewrite selects the logic-optimizer passes; zero value means
	// rewrite.DefaultOptions().
	Rewrite *rewrite.Options
	// DisableSummary turns off horizontal pruning (lifted linear forest)
	// for ablations.
	DisableSummary bool
	// MaxDerivations caps admitted facts (0 = 10_000_000).
	MaxDerivations int
	// RequireWarded makes Run fail when the (rewritten) program is not
	// warded instead of proceeding best-effort.
	RequireWarded bool
	// NewPolicy overrides the termination policy (nil = the full strategy
	// of Algorithm 1). Baselines live in internal/baseline.
	NewPolicy func(*analysis.Result) core.Policy
	// DisableDynamicIndex turns off the slot machine join's dynamic
	// in-memory indexing (ablation): lookups scan.
	DisableDynamicIndex bool
}

// Result is the outcome of a reasoning run.
type Result struct {
	DB       *storage.Database
	Program  *ast.Program // rewritten program actually executed
	Analysis *analysis.Result
	Strategy core.Policy
	Subst    *eval.NullSubst
	Rewrite  *rewrite.Result

	// Derivations counts admitted (inserted) facts, EDB included.
	Derivations int
	posts       []ast.PostDirective
}

// Output returns the facts of pred with the program's @post directives
// applied (certain-answer filtering, ordering, limit, keepMax/keepMin
// final aggregates) and the EGD null substitution resolved.
func (r *Result) Output(pred string) []ast.Fact {
	return eval.ApplyPost(r.DB.FactsOf(pred), r.posts, pred, r.Subst)
}

// Engine is a single reasoning session.
type Engine struct {
	opts  Options
	prog  *ast.Program
	res   *analysis.Result
	rw    *rewrite.Result
	db    *storage.Database
	strat core.Policy
	mt    *eval.Matcher
	subst *eval.NullSubst

	rules    []*eval.CompiledRule
	bindings []*eval.Binding
	aggs     []*eval.AggState
	postAgg  [][]eval.CCond // conditions depending on the aggregate result
	// byPred maps predicate -> (rule idx, pos idx) pairs for delta pinning.
	byPred map[string][][2]int

	queue       []*core.FactMeta
	derivations int
	budget      int
}

// New prepares an engine for prog: rewriting, analysis, compilation.
func New(prog *ast.Program, opts Options) (*Engine, error) {
	rwOpts := rewrite.DefaultOptions()
	if opts.Rewrite != nil {
		rwOpts = *opts.Rewrite
	}
	rw, err := rewrite.Apply(prog, rwOpts)
	if err != nil {
		return nil, err
	}
	res := analysis.Analyze(rw.Program)
	if opts.RequireWarded && !res.Warded {
		return nil, fmt.Errorf("chase: program is not warded: %s", strings.Join(res.Violations, "; "))
	}
	e := &Engine{
		opts:   opts,
		prog:   rw.Program,
		res:    res,
		rw:     rw,
		db:     storage.NewDatabase(),
		subst:  eval.NewNullSubst(),
		byPred: make(map[string][][2]int),
		budget: opts.MaxDerivations,
	}
	if e.budget <= 0 {
		e.budget = 10_000_000
	}
	if opts.NewPolicy != nil {
		e.strat = opts.NewPolicy(res)
	} else {
		full := core.NewStrategy(res)
		full.DisableSummary = opts.DisableSummary
		e.strat = full
	}
	if opts.DisableDynamicIndex {
		e.db.DisableIndexes()
	}
	e.mt = &eval.Matcher{DB: e.db}
	for i, r := range rw.Program.Rules {
		cr, err := eval.Compile(r, res.Rules[i])
		if err != nil {
			return nil, err
		}
		if len(cr.Pos) == 0 {
			return nil, fmt.Errorf("chase: rule %d has no positive body atom: %s", r.ID, r.String())
		}
		e.rules = append(e.rules, cr)
		e.bindings = append(e.bindings, eval.NewBinding(cr))
		if r.Aggregate != nil {
			e.aggs = append(e.aggs, eval.NewAggState(r.Aggregate.Func))
		} else {
			e.aggs = append(e.aggs, nil)
		}
		var pa []eval.CCond
		if cr.Agg != nil {
			for _, c := range cr.Conds {
				for _, d := range c.Deps {
					if d == cr.Agg.ResultSlot {
						pa = append(pa, c)
						break
					}
				}
			}
		}
		e.postAgg = append(e.postAgg, pa)
		for pi, a := range cr.Pos {
			e.byPred[a.Pred] = append(e.byPred[a.Pred], [2]int{i, pi})
		}
	}
	return e, nil
}

// LoadFact admits one EDB fact (before or during Run).
func (e *Engine) LoadFact(f ast.Fact) {
	rel := e.db.Rel(f.Pred, len(f.Args))
	if rel.Contains(f) {
		return
	}
	e.db.InsertEDB(f, e.strat)
	m := rel.At(rel.Len() - 1)
	e.queue = append(e.queue, m)
	e.derivations++
	e.insertTagTwin(f)
}

// insertTagTwin mirrors an admitted fact of a tagged predicate into its
// tag twin, with labelled nulls replaced by their canonical ground keys
// (dynamic harmful-join elimination; see rewrite.EliminateHarmfulJoinsDynamic).
func (e *Engine) insertTagTwin(f ast.Fact) {
	twin, ok := e.rw.TagPreds[f.Pred]
	if !ok {
		return
	}
	args := make([]term.Value, len(f.Args))
	for i, v := range f.Args {
		if v.IsNull() {
			args[i] = term.String("\x00" + e.db.Nulls.KeyOf(v))
		} else {
			args[i] = v
		}
	}
	tf := ast.Fact{Pred: twin, Args: args}
	rel := e.db.Rel(twin, len(args))
	if rel.Contains(tf) {
		return
	}
	m := e.strat.NewEDBFact(tf)
	rel.Insert(m)
	e.queue = append(e.queue, m)
}

// Run executes the chase to fixpoint and returns the result.
func (e *Engine) Run(edb []ast.Fact) (*Result, error) {
	for _, f := range e.prog.Facts {
		e.LoadFact(f)
	}
	for _, f := range edb {
		e.LoadFact(f)
	}
	for len(e.queue) > 0 {
		m := e.queue[0]
		e.queue = e.queue[1:]
		for _, rp := range e.byPred[m.Fact.Pred] {
			if err := e.fire(rp[0], rp[1], m); err != nil {
				return nil, err
			}
		}
	}
	return &Result{
		DB:          e.db,
		Program:     e.prog,
		Analysis:    e.res,
		Strategy:    e.strat,
		Subst:       e.subst,
		Rewrite:     e.rw,
		Derivations: e.derivations,
		posts:       e.prog.Posts,
	}, nil
}

// fire applies rule ri with its pos-th body atom pinned to delta fact m.
func (e *Engine) fire(ri, pos int, m *core.FactMeta) error {
	cr := e.rules[ri]
	b := e.bindings[ri]
	return e.mt.MatchPinned(cr, pos, m, b, func(b *eval.Binding) error {
		return e.emit(ri, cr, b)
	})
}

func (e *Engine) emit(ri int, cr *eval.CompiledRule, b *eval.Binding) error {
	rule := cr.Rule
	switch {
	case rule.IsConstraint:
		return fmt.Errorf("%w: constraint fired: %s", ErrInconsistent, rule.String())
	case rule.EGD != nil:
		l := b.Val(cr.VarSlot[rule.EGD.Left])
		r := b.Val(cr.VarSlot[rule.EGD.Right])
		if err := e.subst.Unify(l, r); err != nil {
			return fmt.Errorf("%w: %v (egd %s)", ErrInconsistent, err, rule.String())
		}
		return nil
	}
	if cr.Agg != nil {
		group := make([]term.Value, len(cr.Agg.GroupSlots))
		for i, s := range cr.Agg.GroupSlots {
			group[i] = b.Val(s)
		}
		contrib := make([]term.Value, len(cr.Agg.ContribSlots))
		for i, s := range cr.Agg.ContribSlots {
			contrib[i] = b.Val(s)
		}
		var x term.Value
		if cr.Agg.ArgSlot >= 0 {
			x = b.Val(cr.Agg.ArgSlot)
		} else {
			envVals := map[string]term.Value{}
			for v, s := range cr.VarSlot {
				if b.Bound[s] {
					envVals[v] = b.Val(s)
				}
			}
			var err error
			x, err = cr.Agg.Arg.Eval(envVals)
			if err != nil {
				return err
			}
		}
		agg, err := e.aggs[ri].Update(group, contrib, x)
		if err != nil {
			return err
		}
		b.Set(cr.Agg.ResultSlot, agg)
		for i := range e.postAgg[ri] {
			c := &e.postAgg[ri][i]
			if c.Fast {
				if !c.EvalFast(b) {
					return nil
				}
				continue
			}
			envVals := map[string]term.Value{rule.Aggregate.Result: agg}
			for v, s := range cr.VarSlot {
				if b.Bound[s] {
					envVals[v] = b.Val(s)
				}
			}
			ok, err := ast.EvalCondition(c.Cond, envVals)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}
	e.mt.InstantiateExistentials(cr, b)
	heads, err := eval.HeadFacts(cr, b, e.subst)
	if err != nil {
		return err
	}
	parents := eval.WardFirstParents(cr, b)
	for _, hf := range heads {
		if err := e.admit(hf, rule.ID, parents); err != nil {
			return err
		}
	}
	return nil
}

// admit runs the set-semantics duplicate check, the termination strategy,
// and on success stores the fact and schedules it.
func (e *Engine) admit(f ast.Fact, ruleID int, parents []*core.FactMeta) error {
	rel := e.db.Rel(f.Pred, len(f.Args))
	if rel.Contains(f) {
		return nil
	}
	m := e.strat.Derive(f, ruleID, parents)
	if !e.strat.CheckTermination(m) {
		return nil
	}
	if e.derivations >= e.budget {
		return fmt.Errorf("%w (%d facts)", ErrBudget, e.derivations)
	}
	rel.Insert(m)
	e.derivations++
	e.queue = append(e.queue, m)
	e.insertTagTwin(f)
	return nil
}

// Run is the convenience one-shot entry point.
func Run(prog *ast.Program, edb []ast.Fact, opts Options) (*Result, error) {
	e, err := New(prog, opts)
	if err != nil {
		return nil, err
	}
	return e.Run(edb)
}
