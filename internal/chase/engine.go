// Package chase implements the reference reasoning engine: a breadth-first
// chase (Algorithm 2 of the paper) driven by the termination strategy of
// internal/core, over the compiled rules and indexed store of
// internal/eval and internal/storage. The streaming pipeline engine of
// internal/pipeline produces the same answers; this engine is the
// readable, correctness-first counterpart used for cross-validation.
package chase

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/rewrite"
	"repro/internal/storage"
	"repro/internal/term"
)

// ErrInconsistent is returned (wrapped) when a negative constraint fires
// or an EGD equates two distinct constants.
var ErrInconsistent = errors.New("chase: knowledge base is inconsistent")

// ErrBudget is returned when MaxDerivations is exceeded; with the
// termination strategy enabled this indicates a genuinely enormous answer,
// with it disabled it is the expected outcome on non-terminating programs.
var ErrBudget = errors.New("chase: derivation budget exceeded")

// Options configures a reasoning run.
type Options struct {
	// Rewrite selects the logic-optimizer passes; zero value means
	// rewrite.DefaultOptions().
	Rewrite *rewrite.Options
	// DisableSummary turns off horizontal pruning (lifted linear forest)
	// for ablations.
	DisableSummary bool
	// MaxDerivations caps admitted facts (0 = 10_000_000).
	MaxDerivations int
	// RequireWarded makes Run fail when the (rewritten) program is not
	// warded instead of proceeding best-effort.
	RequireWarded bool
	// NewPolicy overrides the termination policy (nil = the full strategy
	// of Algorithm 1). Baselines live in internal/baseline.
	NewPolicy func(*analysis.Result) core.Policy
	// DisableDynamicIndex turns off the slot machine join's dynamic
	// in-memory indexing (ablation): lookups scan.
	DisableDynamicIndex bool
}

// Result is the outcome of a reasoning run.
type Result struct {
	DB       *storage.Database
	Program  *ast.Program // rewritten program actually executed
	Analysis *analysis.Result
	Strategy core.Policy
	Subst    *eval.NullSubst
	Rewrite  *rewrite.Result

	// Derivations counts admitted (inserted) facts, EDB included.
	Derivations int
	posts       []ast.PostDirective
}

// Output returns the facts of pred with the program's @post directives
// applied (certain-answer filtering, ordering, limit, keepMax/keepMin
// final aggregates) and the EGD null substitution resolved.
func (r *Result) Output(pred string) []ast.Fact {
	return eval.ApplyPost(r.DB.FactsOf(pred), r.posts, pred, r.Subst)
}

// Compiled is the immutable compile-time artifact of a program for the
// chase engine: rewritten rules, warded analysis and per-rule executable
// plans. Compilation happens exactly once; a Compiled is safe for
// concurrent use by any number of goroutines, each deriving cheap per-run
// state with NewEngine.
type Compiled struct {
	opts Options
	prog *ast.Program // rewritten program
	res  *analysis.Result
	rw   *rewrite.Result

	rules   []*eval.CompiledRule
	postAgg [][]eval.CCond // conditions depending on the aggregate result
	// byPred maps predicate -> (rule idx, pos idx) pairs for delta pinning.
	byPred map[string][][2]int

	budget int
}

// Compile runs rewriting, wardedness analysis and rule compilation on
// prog and returns the shareable artifact.
func Compile(prog *ast.Program, opts Options) (*Compiled, error) {
	rwOpts := rewrite.DefaultOptions()
	if opts.Rewrite != nil {
		rwOpts = *opts.Rewrite
	}
	rw, err := rewrite.Apply(prog, rwOpts)
	if err != nil {
		return nil, err
	}
	res := analysis.Analyze(rw.Program)
	if opts.RequireWarded && !res.Warded {
		return nil, fmt.Errorf("chase: program is not warded: %s", strings.Join(res.Violations, "; "))
	}
	c := &Compiled{
		opts:   opts,
		prog:   rw.Program,
		res:    res,
		rw:     rw,
		byPred: make(map[string][][2]int),
		budget: opts.MaxDerivations,
	}
	if c.budget <= 0 {
		c.budget = 10_000_000
	}
	for i, r := range rw.Program.Rules {
		cr, err := eval.Compile(r, res.Rules[i])
		if err != nil {
			return nil, err
		}
		if len(cr.Pos) == 0 {
			return nil, fmt.Errorf("chase: rule %d has no positive body atom: %s", r.ID, r.String())
		}
		c.rules = append(c.rules, cr)
		var pa []eval.CCond
		if cr.Agg != nil {
			for _, cond := range cr.Conds {
				for _, d := range cond.Deps {
					if d == cr.Agg.ResultSlot {
						pa = append(pa, cond)
						break
					}
				}
			}
		}
		c.postAgg = append(c.postAgg, pa)
		for pi, a := range cr.Pos {
			c.byPred[a.Pred] = append(c.byPred[a.Pred], [2]int{i, pi})
		}
	}
	return c, nil
}

// Program returns the rewritten program the artifact executes.
func (c *Compiled) Program() *ast.Program { return c.prog }

// Analysis returns the warded analysis of the rewritten program.
func (c *Compiled) Analysis() *analysis.Result { return c.res }

// Engine is the per-run state of a single reasoning session over a
// shared Compiled artifact. Engines are cheap to create and are for use
// by a single goroutine; share the Compiled, not the Engine.
type Engine struct {
	c     *Compiled
	db    *storage.Database
	strat core.Policy
	mt    *eval.Matcher
	subst *eval.NullSubst

	bindings []*eval.Binding
	aggs     []*eval.AggState

	queue       []*core.FactMeta
	derivations int
	budget      int
}

// NewEngine derives fresh run-time state (database, interner, strategy,
// bindings, queue) over the shared compiled artifact.
func (c *Compiled) NewEngine() *Engine {
	e := &Engine{
		c:      c,
		db:     storage.NewDatabase(),
		subst:  eval.NewNullSubst(),
		budget: c.budget,
	}
	if c.opts.NewPolicy != nil {
		e.strat = c.opts.NewPolicy(c.res)
	} else {
		full := core.NewStrategy(c.res)
		full.DisableSummary = c.opts.DisableSummary
		e.strat = full
	}
	if c.opts.DisableDynamicIndex {
		e.db.DisableIndexes()
	}
	e.mt = &eval.Matcher{DB: e.db}
	for _, cr := range c.rules {
		e.bindings = append(e.bindings, eval.NewBinding(cr))
		if cr.Rule.Aggregate != nil {
			e.aggs = append(e.aggs, eval.NewAggState(cr.Rule.Aggregate.Func, e.db.Interner()))
		} else {
			e.aggs = append(e.aggs, nil)
		}
	}
	return e
}

// New compiles prog and prepares an engine over it in one step. To share
// the compilation across runs, use Compile once and Compiled.NewEngine
// per run.
func New(prog *ast.Program, opts Options) (*Engine, error) {
	c, err := Compile(prog, opts)
	if err != nil {
		return nil, err
	}
	return c.NewEngine(), nil
}

// LoadFact admits one EDB fact (before or during Run).
func (e *Engine) LoadFact(f ast.Fact) {
	rel := e.db.Rel(f.Pred, len(f.Args))
	if rel.Contains(f) {
		return
	}
	e.db.InsertEDB(f, e.strat)
	m := rel.At(rel.Len() - 1)
	e.queue = append(e.queue, m)
	e.derivations++
	e.insertTagTwin(f)
}

// insertTagTwin mirrors an admitted fact of a tagged predicate into its
// tag twin, with labelled nulls replaced by their canonical ground keys
// (dynamic harmful-join elimination; see rewrite.EliminateHarmfulJoinsDynamic).
func (e *Engine) insertTagTwin(f ast.Fact) {
	twin, ok := e.c.rw.TagPreds[f.Pred]
	if !ok {
		return
	}
	tf := e.tagTwinFact(twin, f)
	rel := e.db.Rel(twin, len(tf.Args))
	if rel.Contains(tf) {
		return
	}
	m := e.strat.NewEDBFact(tf)
	rel.Insert(m)
	e.queue = append(e.queue, m)
}

// tagTwinFact renders the tag-twin image of f: labelled nulls replaced by
// their canonical ground keys.
func (e *Engine) tagTwinFact(twin string, f ast.Fact) ast.Fact {
	args := make([]term.Value, len(f.Args))
	for i, v := range f.Args {
		if v.IsNull() {
			args[i] = term.String("\x00" + e.db.Nulls.KeyOf(v))
		} else {
			args[i] = v
		}
	}
	return ast.Fact{Pred: twin, Args: args}
}

// Run executes the chase to fixpoint and returns the result. Cancelling
// ctx aborts the breadth-first loop between delta facts.
func (e *Engine) Run(ctx context.Context, edb []ast.Fact) (*Result, error) {
	for _, f := range e.c.prog.Facts {
		e.LoadFact(f)
	}
	for _, f := range edb {
		e.LoadFact(f)
	}
	for len(e.queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m := e.queue[0]
		e.queue = e.queue[1:]
		if m.Retracted {
			continue // superseded aggregate intermediate, no longer a fact
		}
		for _, rp := range e.c.byPred[m.Fact.Pred] {
			if err := e.fire(rp[0], rp[1], m); err != nil {
				return nil, err
			}
		}
	}
	return &Result{
		DB:          e.db,
		Program:     e.c.prog,
		Analysis:    e.c.res,
		Strategy:    e.strat,
		Subst:       e.subst,
		Rewrite:     e.c.rw,
		Derivations: e.derivations,
		posts:       e.c.prog.Posts,
	}, nil
}

// fire applies rule ri with its pos-th body atom pinned to delta fact m.
func (e *Engine) fire(ri, pos int, m *core.FactMeta) error {
	cr := e.c.rules[ri]
	b := e.bindings[ri]
	return e.mt.MatchPinned(cr, pos, m, b, func(b *eval.Binding) error {
		return e.emit(ri, cr, b)
	})
}

func (e *Engine) emit(ri int, cr *eval.CompiledRule, b *eval.Binding) error {
	rule := cr.Rule
	switch {
	case rule.IsConstraint:
		return fmt.Errorf("%w: constraint fired: %s", ErrInconsistent, rule.String())
	case rule.EGD != nil:
		l := b.Val(cr.VarSlot[rule.EGD.Left])
		r := b.Val(cr.VarSlot[rule.EGD.Right])
		if err := e.subst.Unify(l, r); err != nil {
			return fmt.Errorf("%w: %v (egd %s)", ErrInconsistent, err, rule.String())
		}
		return nil
	}
	if cr.Agg != nil {
		group := make([]term.Value, len(cr.Agg.GroupSlots))
		for i, s := range cr.Agg.GroupSlots {
			group[i] = b.Val(s)
		}
		contrib := make([]term.Value, len(cr.Agg.ContribSlots))
		for i, s := range cr.Agg.ContribSlots {
			contrib[i] = b.Val(s)
		}
		var x term.Value
		if cr.Agg.ArgSlot >= 0 {
			x = b.Val(cr.Agg.ArgSlot)
		} else {
			envVals := map[string]term.Value{}
			for v, s := range cr.VarSlot {
				if b.Bound[s] {
					envVals[v] = b.Val(s)
				}
			}
			var err error
			x, err = cr.Agg.Arg.Eval(envVals)
			if err != nil {
				return err
			}
		}
		agg, improved, err := e.aggs[ri].Update(group, contrib, x)
		if err != nil {
			return err
		}
		if !improved && cr.Agg.SkipSafe {
			// The group's aggregate did not change and the post-aggregate
			// conditions depend only on (result, group): this match
			// evaluates exactly like the one that already emitted, so
			// there is nothing new to emit. Unsafe rules (conditions over
			// other body variables, existential heads) fall through to the
			// full path; supersession makes re-emission idempotent.
			return nil
		}
		b.Set(cr.Agg.ResultSlot, agg)
		for i := range e.c.postAgg[ri] {
			c := &e.c.postAgg[ri][i]
			if c.Fast {
				if !c.EvalFast(b) {
					return nil
				}
				continue
			}
			envVals := map[string]term.Value{rule.Aggregate.Result: agg}
			for v, s := range cr.VarSlot {
				if b.Bound[s] {
					envVals[v] = b.Val(s)
				}
			}
			ok, err := ast.EvalCondition(c.Cond, envVals)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}
	e.mt.InstantiateExistentials(cr, b)
	heads, err := eval.HeadFacts(cr, b, e.subst)
	if err != nil {
		return err
	}
	parents := eval.WardFirstParents(cr, b)
	for hi, hf := range heads {
		// Existential aggregate heads mint per-binding nulls: each binding
		// is its own fact, not an improvement of the previous one, so they
		// take the plain admission path (no supersession).
		if cr.Agg != nil && len(cr.Exists) == 0 {
			if err := e.admitAggregate(ri, hi, hf, rule.ID, parents); err != nil {
				return err
			}
			continue
		}
		if _, err := e.admit(hf, rule.ID, parents); err != nil {
			return err
		}
	}
	return nil
}

// admitAggregate admits an aggregate-head fact with supersession: when the
// rule has previously admitted a fact for the current group (and this head
// index), the improved fact replaces it in place — same FactMeta, same
// forest roots and provenance — instead of accumulating next to the
// superseded intermediate. Replacements count against the derivation
// budget (they are chase steps) and re-enter the queue so dependent rules
// observe the improved value.
func (e *Engine) admitAggregate(ri, hi int, f ast.Fact, ruleID int, parents []*core.FactMeta) error {
	st := e.aggs[ri]
	prev, ok := st.LastEmitted(hi)
	if !ok {
		m, err := e.admit(f, ruleID, parents)
		if err != nil {
			return err
		}
		if m != nil {
			rel := e.db.Rel(f.Pred, len(f.Args))
			st.RecordEmitted(hi, m, rel.Len()-1)
		}
		return nil
	}
	old := prev.Meta.Fact
	rel := e.db.Rel(f.Pred, len(f.Args))
	switch rel.Replace(prev.Row, f) {
	case storage.ReplaceUnchanged:
		return nil // e.g. the aggregate result does not occur in the head
	case storage.ReplaceRetracted:
		// The improved value already exists as an independently stored
		// fact; the superseded intermediate was retracted and the group is
		// represented by that fact. The next improvement starts fresh.
		st.RecordEmitted(hi, nil, 0)
		e.noteSuperseded(old)
		return nil
	default: // ReplaceDone
		if e.derivations >= e.budget {
			return fmt.Errorf("%w (%d facts)", ErrBudget, e.derivations)
		}
		e.derivations++
		e.queue = append(e.queue, prev.Meta)
		e.noteSuperseded(old)
		e.replaceTagTwin(old, f)
		return nil
	}
}

// noteSuperseded tells fact-memorizing termination policies that old is no
// longer stored.
func (e *Engine) noteSuperseded(old ast.Fact) {
	if obs, ok := e.strat.(core.SupersessionObserver); ok {
		obs.NoteSuperseded(old)
	}
}

// admit runs the set-semantics duplicate check, the termination strategy,
// and on success stores the fact and schedules it. It returns the stored
// metadata, nil when the fact was rejected.
func (e *Engine) admit(f ast.Fact, ruleID int, parents []*core.FactMeta) (*core.FactMeta, error) {
	rel := e.db.Rel(f.Pred, len(f.Args))
	if rel.Contains(f) {
		return nil, nil
	}
	m := e.strat.Derive(f, ruleID, parents)
	if !e.strat.CheckTermination(m) {
		return nil, nil
	}
	if e.derivations >= e.budget {
		return nil, fmt.Errorf("%w (%d facts)", ErrBudget, e.derivations)
	}
	rel.Insert(m)
	e.derivations++
	e.queue = append(e.queue, m)
	e.insertTagTwin(f)
	return m, nil
}

// replaceTagTwin mirrors an aggregate supersession into the tag twin of a
// tagged predicate: the twin of the superseded fact is replaced by the
// twin of the improved one.
func (e *Engine) replaceTagTwin(old, f ast.Fact) {
	twin, ok := e.c.rw.TagPreds[f.Pred]
	if !ok {
		return
	}
	oldTwin := e.tagTwinFact(twin, old)
	newTwin := e.tagTwinFact(twin, f)
	rel := e.db.Rel(twin, len(newTwin.Args))
	idx, found := rel.FindExact(oldTwin)
	if !found {
		e.insertTagTwin(f)
		return
	}
	if rel.Replace(idx, newTwin) == storage.ReplaceDone {
		e.queue = append(e.queue, rel.At(idx))
	}
}

// Run is the convenience one-shot entry point.
func Run(ctx context.Context, prog *ast.Program, edb []ast.Fact, opts Options) (*Result, error) {
	e, err := New(prog, opts)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, edb)
}
